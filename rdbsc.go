// Package rdbsc is a Go implementation of Reliable Diversity-Based Spatial
// Crowdsourcing (RDB-SC) from "Reliable Diversity-Based Spatial
// Crowdsourcing by Moving Workers" (Cheng et al., PVLDB 8(10), VLDB 2015).
//
// RDB-SC assigns dynamically moving workers to time-constrained spatial
// tasks so that (1) the minimum task reliability — the probability that at
// least one assigned worker completes each task — and (2) the total
// expected spatial/temporal diversity of the collected answers are both
// maximized. The problem is NP-hard; this package exposes the paper's three
// approximation algorithms (greedy, sampling, divide-and-conquer), the
// polynomial expected-diversity computation, the cost-model-based
// RDB-SC-Grid spatial index, workload generators, and a platform simulator
// for incremental (periodic) reassignment.
//
// # Quick start (v2 API)
//
// Solvers are selected by name through the registry, and every solve is
// context-aware — cancel the context or let its deadline expire and the
// solver returns its best partial assignment with ErrInterrupted:
//
//	in := rdbsc.GenerateWorkload(rdbsc.DefaultWorkload().WithScale(100, 200))
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	res, err := rdbsc.Solve(ctx, in,
//		rdbsc.WithSolverName("dc"), // or WithSolver(rdbsc.NewDC())
//		rdbsc.WithSeed(42),
//		rdbsc.WithProgress(func(st rdbsc.Stage) { log.Println(st.Solver, st.Round) }),
//	)
//	switch {
//	case errors.Is(err, rdbsc.ErrInterrupted):
//		// res holds the best assignment found before the deadline.
//	case errors.Is(err, rdbsc.ErrInfeasible):
//		// no worker can reach any task in time.
//	case err != nil:
//		// invalid instance or unknown solver name.
//	}
//	fmt.Println(res.Eval.MinRel, res.Eval.TotalESTD)
//
// For repeated solves over a churning task/worker set — the shape of a
// long-running assignment service — use an Engine, which owns the prepared
// problem and its grid index and re-derives valid pairs incrementally:
//
//	eng := rdbsc.NewEngineFromInstance(in, rdbsc.EngineConfig{})
//	res, err := eng.Solve(ctx, &rdbsc.SolveOptions{Seed: 42})
//	eng.UpsertWorker(w)      // churn: workers move, tasks open and expire
//	eng.RemoveTask(taskID)
//	res, err = eng.Solve(ctx, nil) // incremental re-solve
//
// # Performance knobs
//
// The greedy solver maintains its candidate Δ-diversity bounds
// incrementally across rounds (only the previously assigned task's pairs
// are recomputed) and can evaluate the surviving candidates' exact Δ on
// all CPUs. Both knobs change cost only — the assignment is bit-identical
// across all variants:
//
//	rdbsc.NewGreedy()                                   // incremental (default)
//	&rdbsc.Greedy{Prune: true}                          // per-round full recompute
//	&rdbsc.Greedy{Prune: true, Incremental: true, Parallel: true}
//
// The same variants are registered as "greedy", "greedy-naive", and
// "greedy-parallel" for name-based selection (WithSolverName,
// EngineConfig.SolverName, the drivers' SolverName fields, and the CLIs'
// -solver flags). Result.Stats reports BoundsComputed/BoundsReused, the
// before/after of the incremental cache.
//
// # Sharded solving (connected-component decomposition)
//
// The objective aggregates per-task reliability with a min and per-task
// diversity with a sum, so the problem decomposes exactly over the
// connected components of the task-worker reachability graph. NewSharded
// (or any "sharded-<inner>" registry name: "sharded-greedy", "sharded-dc",
// …) solves the components concurrently under a GOMAXPROCS-bounded pool
// and merges the per-component results; single-component problems pass
// through to the inner solver bit-identically:
//
//	res, _ := rdbsc.Solve(ctx, in, rdbsc.WithSolverName("sharded-greedy"))
//	fmt.Println(res.Stats.Components, res.Stats.MaxComponentPairs)
//
// For churning engines, EngineConfig{Decompose: true} additionally caches
// per-component results across mutations and re-solves only the components
// whose entities, membership, or seeded commitments changed
// (Stats.ComponentsReused counts the cache hits); the stream and platform
// drivers expose the same knob as Config.Decompose. Decomposition is exact
// for min/sum-aggregated objectives only — see MIGRATION.md for the
// precise monolithic-equivalence guarantees (and their limits for
// heuristic tie-breaking on multi-component instances).
//
// β defaults to 0.5 when EngineConfig.Beta is unset; set
// EngineConfig.BetaSet to make an explicit β=0 (temporal diversity only)
// expressible through NewEngine, matching what NewEngineFromInstance
// always honored from its instance.
//
// # The assignment server (rdbsc-server)
//
// An Engine is single-threaded, so cmd/rdbsc-server (package
// internal/serve) wraps it in a concurrent HTTP/JSON service: a
// single-writer apply loop owns the engine and drains a bounded mutation
// queue in batches — coalescing repeated upserts of the same entity and
// applying each batch under one engine version bump — while solve and
// read requests run against immutable snapshots handed off copy-on-write,
// so an in-flight solve never observes a half-applied batch. Endpoints:
// POST/DELETE /v1/tasks and /v1/workers (batched upserts/removals; a full
// queue answers 429), POST /v1/solve (per-request deadline via
// timeout_ms; an expired deadline returns the best partial assignment
// flagged "partial"), GET /v1/assignment (last solve, with staleness
// versions), GET /v1/stats (batching, backpressure, and cumulative solver
// counters), and /healthz. SIGINT/SIGTERM drain the queue before exit.
// See MIGRATION.md for the endpoint reference and batching semantics.
//
// See MIGRATION.md for the v1 → v2 call-site mapping, and the examples/
// directory for runnable scenarios: the landmark photography task of the
// paper's Example 1, the parking-monitoring task of Example 2, and a live
// incremental platform.
package rdbsc

import (
	"context"
	"fmt"

	"rdbsc/internal/aggregate"
	"rdbsc/internal/core"
	"rdbsc/internal/dataset"
	"rdbsc/internal/diversity"
	"rdbsc/internal/engine"
	"rdbsc/internal/gen"
	"rdbsc/internal/geo"
	"rdbsc/internal/grid"
	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/platform"
	"rdbsc/internal/rng"
)

// Domain model (Section 2 of the paper).
type (
	// Task is a time-constrained spatial task (Definition 1).
	Task = model.Task
	// Worker is a dynamically moving worker (Definition 2).
	Worker = model.Worker
	// TaskID identifies a Task.
	TaskID = model.TaskID
	// WorkerID identifies a Worker.
	WorkerID = model.WorkerID
	// Instance is one RDB-SC problem: tasks, workers, β, options.
	Instance = model.Instance
	// Assignment maps workers to tasks.
	Assignment = model.Assignment
	// Options configures reachability semantics.
	Options = model.Options
	// Pair is a valid task-worker pair with arrival time and ray angle.
	Pair = model.Pair
	// Point is a location in the unit-square data space.
	Point = geo.Point
	// AngInterval is a worker's direction cone [α−, α+].
	AngInterval = geo.AngInterval
)

// Solvers (Sections 4–6).
type (
	// Solver is the common interface of the approximation algorithms: the
	// context-aware v2 contract Solve(ctx, p, opts) (*Result, error).
	Solver = core.Solver
	// SolveOptions configures one Solver.Solve call (seed, progress
	// callback, seeded states).
	SolveOptions = core.SolveOptions
	// Stage is one progress report emitted through SolveOptions.Progress.
	Stage = core.Stage
	// SolverFactory builds a fresh solver for the registry.
	SolverFactory = core.SolverFactory
	// Result bundles an assignment with its evaluation and diagnostics.
	Result = core.Result
	// Problem is a prepared instance (valid pairs indexed).
	Problem = core.Problem
	// Evaluation reports the two objective values of an assignment.
	Evaluation = objective.Evaluation
	// Greedy is the pair-by-pair solver of Section 4.
	Greedy = core.Greedy
	// Sampling is the random-sampling solver of Section 5.
	Sampling = core.Sampling
	// DC is the divide-and-conquer solver of Section 6.
	DC = core.DC
	// Sharded solves each connected component of the reachability graph
	// independently (and concurrently) with its inner solver.
	Sharded = core.Sharded
	// SampleSizeSpec carries the (ε,δ) accuracy target of Section 5.2.
	SampleSizeSpec = core.SampleSizeSpec
)

// Typed errors of the v2 solve contract.
var (
	// ErrInterrupted wraps context cancellation/deadline expiry; the
	// accompanying Result carries the best partial assignment.
	ErrInterrupted = core.ErrInterrupted
	// ErrInfeasible reports that the selected solver produced no feasible
	// assignment (no worker can reach any task in time).
	ErrInfeasible = core.ErrInfeasible
	// ErrPopulationTooLarge reports an exhaustive enumeration over its cap.
	ErrPopulationTooLarge = core.ErrPopulationTooLarge
)

// Register adds a solver factory to the registry under name (plus any
// aliases); names are matched case- and punctuation-insensitively. It
// panics when the name is empty or already taken.
func Register(name string, factory SolverFactory, aliases ...string) {
	core.Register(name, factory, aliases...)
}

// NewSolverByName builds a fresh solver by its registered name ("greedy",
// "sampling", "dc", "gtruth", "exhaustive", or anything added with
// Register). Unknown names return an error listing the registered solvers.
func NewSolverByName(name string) (Solver, error) { return core.NewByName(name) }

// Solvers returns the registered solver names, sorted.
func Solvers() []string { return core.Names() }

// NoTask marks an unassigned worker.
const NoTask = model.NoTask

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment { return model.NewAssignment() }

// FullCircle is the unconstrained direction cone.
var FullCircle = geo.FullCircle

// Pt constructs a Point.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// Sector returns the direction cone centered at mid with total width w.
func Sector(mid, w float64) AngInterval { return geo.AngIntervalAround(mid, w) }

// NewGreedy returns the greedy solver with Lemma 4.3 pruning enabled.
func NewGreedy() *Greedy { return core.NewGreedy() }

// NewSampling returns the sampling solver with the paper's default (ε=0.1,
// δ=0.9) sample-size guarantee.
func NewSampling() *Sampling { return core.NewSampling() }

// NewDC returns the divide-and-conquer solver with sampling leaves.
func NewDC() *DC { return core.NewDC() }

// NewSharded wraps a solver in connected-component decomposition: each
// component of the task-worker reachability graph is solved independently
// (concurrently, under a GOMAXPROCS-bounded pool) and the results merge
// exactly — the min/sum objective decomposes over components. Equivalent
// registry names: "sharded-greedy", "sharded-sampling", "sharded-dc", ….
func NewSharded(inner Solver) *Sharded { return core.NewSharded(inner) }

// GTruth returns the paper's G-TRUTH reference configuration (D&C with a
// 10× sampling budget).
func GTruth() Solver { return core.GTruth() }

// NewExhaustive returns the exact enumerator for tiny instances.
func NewExhaustive() *core.Exhaustive { return core.NewExhaustive() }

// NewProblem prepares an instance for solving, enumerating valid pairs by
// brute force. Use NewProblemWithIndex to retrieve pairs through the grid.
func NewProblem(in *Instance) *Problem { return core.NewProblem(in) }

// NewProblemWithIndex prepares an instance using the RDB-SC-Grid index for
// valid-pair retrieval.
func NewProblemWithIndex(in *Instance) *Problem {
	g := grid.NewFromInstance(grid.Config{}, in)
	return core.NewProblemWithPairs(in, g.ValidPairs())
}

// solveConfig carries Solve options.
type solveConfig struct {
	solver     Solver
	solverName string
	seed       int64
	useIndex   bool
	progress   func(Stage)
}

// SolveOption customizes Solve.
type SolveOption func(*solveConfig)

// WithSolver selects the algorithm (default: divide-and-conquer).
func WithSolver(s Solver) SolveOption { return func(c *solveConfig) { c.solver = s } }

// WithSolverName selects the algorithm through the solver registry; the
// name is resolved when Solve runs, so an unknown name surfaces as a Solve
// error rather than a construction-time panic.
func WithSolverName(name string) SolveOption {
	return func(c *solveConfig) { c.solverName = name }
}

// WithSeed seeds the solver's randomness (default 1).
func WithSeed(seed int64) SolveOption { return func(c *solveConfig) { c.seed = seed } }

// WithIndex routes valid-pair retrieval through the RDB-SC-Grid index.
func WithIndex() SolveOption { return func(c *solveConfig) { c.useIndex = true } }

// WithProgress streams per-round solver progress to fn (see Stage). fn is
// invoked synchronously from the solving goroutine and must be fast.
func WithProgress(fn func(Stage)) SolveOption {
	return func(c *solveConfig) { c.progress = fn }
}

// Solve validates the instance, prepares it, and runs the selected solver
// under ctx.
//
// On cancellation or deadline expiry the best partial result found so far
// is returned together with an error wrapping ErrInterrupted. When the
// solver completes but assigns no worker, Solve returns the evaluated empty
// result with ErrInfeasible, so the two objective values are still
// readable but the infeasibility cannot be silently ignored.
func Solve(ctx context.Context, in *Instance, opts ...SolveOption) (*Result, error) {
	cfg := solveConfig{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.solver == nil {
		if cfg.solverName != "" {
			s, err := core.NewByName(cfg.solverName)
			if err != nil {
				return nil, fmt.Errorf("rdbsc: %w", err)
			}
			cfg.solver = s
		} else {
			cfg.solver = core.NewDC()
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("rdbsc: %w", err)
	}
	var p *Problem
	if cfg.useIndex {
		p = NewProblemWithIndex(in)
	} else {
		p = core.NewProblem(in)
	}
	// An explicit Source (not Seed) so WithSeed(0) runs the literal seed-0
	// stream, as it did in v1.
	res, err := cfg.solver.Solve(ctx, p, &core.SolveOptions{
		Source:   rng.New(cfg.seed),
		Progress: cfg.progress,
	})
	if err != nil {
		return res, fmt.Errorf("rdbsc: %w", err)
	}
	if res.Assignment.Len() == 0 {
		return res, fmt.Errorf("rdbsc: %w", ErrInfeasible)
	}
	return res, nil
}

// SolveNoContext is the v1 entry point: Solve without cancellation.
//
// Deprecated: call Solve with a context (context.Background() for the old
// behavior). Kept for one release to ease migration (see MIGRATION.md).
func SolveNoContext(in *Instance, opts ...SolveOption) (*Result, error) {
	return Solve(context.Background(), in, opts...)
}

// Engine owns a live task/worker set, its RDB-SC-Grid index, and a cached
// prepared problem, supporting repeated solves and incremental re-solve
// after churn. See NewEngine and NewEngineFromInstance.
type Engine = engine.Engine

// EngineConfig parameterizes an Engine (β, reachability options, solver,
// index settings). The zero value means β=0.5, the D&C solver, and
// index-backed pair retrieval.
type EngineConfig = engine.Config

// NewEngine returns an empty engine; feed it with UpsertTask/UpsertWorker.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// NewEngineFromInstance returns an engine pre-loaded with the instance's
// tasks and workers, with the grid cell size derived from the instance's
// cost model.
func NewEngineFromInstance(in *Instance, cfg EngineConfig) *Engine {
	return engine.NewFromInstance(in, cfg)
}

// Evaluate computes the two objective values of an assignment.
func Evaluate(in *Instance, a *Assignment) Evaluation {
	return objective.Evaluate(in, a)
}

// Reliability returns 1 − Π(1−p) for a set of worker confidences (Eq. 1).
func Reliability(confidences []float64) float64 { return objective.Rel(confidences) }

// ExpectedSTD computes the expected spatial/temporal diversity of one
// task's worker set under possible-worlds semantics (Lemma 3.1): the
// workers' ray angles, arrival times, and confidences are given as parallel
// slices, with the task's valid period [start, end].
func ExpectedSTD(beta float64, angles, arrivals, confidences []float64, start, end float64) float64 {
	return diversity.ExpectedSTD(beta, angles, arrivals, confidences, start, end)
}

// STD computes the realized (deterministic) spatial/temporal diversity of
// answers actually collected (Eqs. 3–5).
func STD(beta float64, angles, times []float64, start, end float64) float64 {
	return diversity.STD(beta, angles, times, start, end)
}

// Workload generation (Section 8.1 / Table 2).
type (
	// WorkloadConfig mirrors Table 2's experimental parameters.
	WorkloadConfig = gen.Config
	// RealWorkloadConfig assembles the real-data-substitute workload.
	RealWorkloadConfig = gen.RealConfig
	// POIConfig parameterizes the Beijing-like POI generator.
	POIConfig = gen.POIConfig
	// TrajectoryConfig parameterizes the T-Drive-like taxi simulator.
	TrajectoryConfig = gen.TrajectoryConfig
)

// Distribution choices for synthetic workloads.
const (
	Uniform = gen.Uniform
	Skewed  = gen.Skewed
)

// DefaultWorkload returns Table 2's defaults at bench scale.
func DefaultWorkload() WorkloadConfig { return gen.Default() }

// GenerateWorkload draws a synthetic instance.
func GenerateWorkload(cfg WorkloadConfig) *Instance { return gen.Generate(cfg) }

// GenerateDenseWorkload draws a synthetic instance with task windows and
// worker check-ins clustered near time zero, keeping small instances well
// connected.
func GenerateDenseWorkload(cfg WorkloadConfig) *Instance { return gen.GenerateDense(cfg) }

// GenerateRealWorkload draws the real-data-substitute instance (clustered
// POIs as tasks, simulated taxi trajectories as workers).
func GenerateRealWorkload(cfg RealWorkloadConfig) *Instance { return gen.GenerateReal(cfg) }

// Spatial index (Section 7).
type (
	// Grid is the cost-model-based RDB-SC-Grid index.
	Grid = grid.Grid
	// GridConfig configures the index.
	GridConfig = grid.Config
)

// NewGrid builds the index for an instance, deriving the cell size from
// the cost model when cfg.Eta is zero.
func NewGrid(cfg GridConfig, in *Instance) *Grid { return grid.NewFromInstance(cfg, in) }

// Workload persistence (CSV, the rdbsc-gen / rdbsc-solve interchange
// format).

// SaveWorkload writes <prefix>_tasks.csv and <prefix>_workers.csv.
func SaveWorkload(prefix string, in *Instance) error {
	return dataset.SaveInstance(prefix, in)
}

// LoadWorkload reads a saved workload, attaching the given β.
func LoadWorkload(prefix string, beta float64) (*Instance, error) {
	return dataset.LoadInstance(prefix, beta)
}

// Answer aggregation (Section 2.3): group near-duplicate answers and keep
// one representative per group.
type (
	// AggregateItem is one answer to aggregate.
	AggregateItem = aggregate.Item
	// AggregateGroup is one cluster of similar answers.
	AggregateGroup = aggregate.Group
	// AggregateConfig tunes the grouping.
	AggregateConfig = aggregate.Config
)

// AggregateAnswers groups answers with similar (angle, time)
// characteristics under the β-weighted mixed metric.
func AggregateAnswers(items []AggregateItem, cfg AggregateConfig) []AggregateGroup {
	return aggregate.Aggregate(items, cfg)
}

// Platform simulation (Section 8.4).
type (
	// PlatformConfig parameterizes the incremental-update simulator.
	PlatformConfig = platform.Config
	// PlatformMetrics aggregates one simulated run.
	PlatformMetrics = platform.Metrics
	// Answer is one completed task answer.
	Answer = platform.Answer
)

// SimulatePlatform runs the gMission-substitute simulation with the
// incremental updating strategy of Figure 10.
func SimulatePlatform(cfg PlatformConfig) PlatformMetrics {
	return platform.New(cfg).Run()
}
