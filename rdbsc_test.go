package rdbsc

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestSolveEndToEnd(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(40, 80))
	for _, solver := range []Solver{NewGreedy(), NewSampling(), NewDC(), GTruth()} {
		res, err := Solve(context.Background(), in, WithSolver(solver), WithSeed(42))
		if err != nil {
			t.Fatalf("%s: %v", solver.Name(), err)
		}
		if err := in.CheckAssignment(res.Assignment); err != nil {
			t.Fatalf("%s produced invalid assignment: %v", solver.Name(), err)
		}
		if res.Eval.MinRel < 0 || res.Eval.MinRel > 1 {
			t.Errorf("%s MinRel = %v", solver.Name(), res.Eval.MinRel)
		}
	}
}

func TestSolveDefaultsToDC(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	res, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Len() == 0 {
		t.Error("default solve assigned nothing")
	}
}

func TestSolveWithIndexMatchesWithout(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(30, 60))
	a, err := Solve(context.Background(), in, WithSolver(NewGreedy()), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), in, WithSolver(NewGreedy()), WithSeed(1), WithIndex())
	if err != nil {
		t.Fatal(err)
	}
	// Greedy is deterministic given the same pair set; the index retrieves
	// the same pairs (possibly in different order, but greedy sorts by
	// worker), so the objective values must agree.
	if math.Abs(a.Eval.TotalESTD-b.Eval.TotalESTD) > 1e-9 {
		t.Errorf("index changed result: %v vs %v", a.Eval, b.Eval)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(5, 5))
	in.Beta = 2 // invalid
	if _, err := Solve(context.Background(), in); err == nil {
		t.Error("expected validation error")
	}
}

func TestReliabilityFacade(t *testing.T) {
	if got := Reliability([]float64{0.5, 0.5}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Reliability = %v, want 0.75", got)
	}
}

func TestDiversityFacade(t *testing.T) {
	angles := []float64{0, math.Pi}
	arrivals := []float64{0.5, 0.5}
	probs := []float64{1, 1}
	estd := ExpectedSTD(1, angles, arrivals, probs, 0, 1)
	if math.Abs(estd-math.Ln2) > 1e-12 {
		t.Errorf("ExpectedSTD = %v, want ln2", estd)
	}
	std := STD(1, angles, arrivals, 0, 1)
	if math.Abs(std-math.Ln2) > 1e-12 {
		t.Errorf("STD = %v, want ln2", std)
	}
}

func TestGridFacade(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	g := NewGrid(GridConfig{}, in)
	tasks, workers := g.Len()
	if tasks != 20 || workers != 40 {
		t.Errorf("grid holds (%d,%d), want (20,40)", tasks, workers)
	}
}

func TestPlatformFacade(t *testing.T) {
	m := SimulatePlatform(PlatformConfig{Horizon: 0.2, Seed: 3})
	if m.Rounds == 0 {
		t.Error("platform simulation executed no rounds")
	}
}

func TestGenerateRealWorkloadFacade(t *testing.T) {
	in := GenerateRealWorkload(RealWorkloadConfig{
		POI:        POIConfig{NumPOIs: 100, Seed: 1},
		Trajectory: TrajectoryConfig{NumTaxis: 50, Seed: 2},
		Tasks:      50,
		Synthetic:  DefaultWorkload(),
	})
	if len(in.Tasks) != 50 || len(in.Workers) != 50 {
		t.Errorf("real workload sizes: %d tasks, %d workers", len(in.Tasks), len(in.Workers))
	}
}

func TestSectorAndPt(t *testing.T) {
	s := Sector(0, math.Pi/2)
	if !s.Contains(math.Pi/5) || s.Contains(math.Pi) {
		t.Errorf("Sector misbehaves: %+v", s)
	}
	if p := Pt(0.1, 0.2); p.X != 0.1 || p.Y != 0.2 {
		t.Errorf("Pt = %v", p)
	}
}

func TestExhaustiveFacade(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(3, 5))
	p := NewProblem(in)
	ex := NewExhaustive()
	if !ex.CanSolve(p) {
		t.Skip("population too large for this seed")
	}
	res, err := ex.Solve(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestSolveReturnsErrInfeasible(t *testing.T) {
	// One task, one worker that cannot reach it: too slow, window too short.
	in := &Instance{
		Tasks: []Task{{ID: 0, Loc: Pt(0.9, 0.9), Start: 0, End: 0.01}},
		Workers: []Worker{{
			ID: 0, Loc: Pt(0.1, 0.1), Speed: 0.01, Dir: FullCircle, Confidence: 0.9,
		}},
		Beta: 0.5,
	}
	res, err := Solve(context.Background(), in)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if res == nil || res.Assignment.Len() != 0 {
		t.Fatalf("infeasible solve should return the evaluated empty result, got %v", res)
	}
}

func TestSolveWithSolverName(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	res, err := Solve(context.Background(), in, WithSolverName("d&c"), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Len() == 0 {
		t.Error("named solver assigned nothing")
	}
	if _, err := Solve(context.Background(), in, WithSolverName("no-such-algo")); err == nil {
		t.Error("expected an error for an unknown solver name")
	}
}

func TestSolversRegistryFacade(t *testing.T) {
	names := Solvers()
	want := map[string]bool{"greedy": true, "sampling": true, "dc": true, "gtruth": true, "exhaustive": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("Solvers() = %v, missing built-ins", names)
	}
	for _, n := range []string{"greedy", "SAMPLING", "D&C", "g-truth"} {
		if _, err := NewSolverByName(n); err != nil {
			t.Errorf("NewSolverByName(%q): %v", n, err)
		}
	}
}

func TestSolveHonorsDeadline(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(60, 120))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the solve must return immediately
	res, err := Solve(ctx, in, WithSolverName("greedy"))
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res == nil {
		t.Fatal("interrupted solve must return a partial result")
	}
}

func TestSolveProgressCallback(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	var stages []Stage
	_, err := Solve(context.Background(), in,
		WithSolverName("greedy"),
		WithProgress(func(st Stage) { stages = append(stages, st) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Fatal("no progress stages emitted")
	}
	for i, st := range stages {
		if st.Round != i+1 {
			t.Fatalf("stage %d has Round %d", i, st.Round)
		}
		if st.Solver != "GREEDY" {
			t.Fatalf("stage solver = %q", st.Solver)
		}
	}
}

func TestEngineFacadeIncrementalResolve(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	eng := NewEngineFromInstance(in, EngineConfig{})
	res1, err := eng.Solve(context.Background(), &SolveOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Assignment.Len() == 0 {
		t.Fatal("engine solve assigned nothing")
	}

	// Churn: drop half the workers, re-solve incrementally.
	for i := 0; i < len(in.Workers)/2; i++ {
		eng.RemoveWorker(in.Workers[i].ID)
	}
	res2, err := eng.Solve(context.Background(), &SolveOptions{Seed: 5})
	if err != nil && !errors.Is(err, ErrInfeasible) {
		t.Fatal(err)
	}
	if res2.Assignment.Len() > res1.Assignment.Len() {
		t.Errorf("fewer workers produced more assignments: %d > %d",
			res2.Assignment.Len(), res1.Assignment.Len())
	}
	inst := eng.Instance()
	if err := inst.CheckAssignment(res2.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestDeprecatedSolveNoContext(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	res, err := SolveNoContext(in, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Len() == 0 {
		t.Error("v1 wrapper assigned nothing")
	}
}
