package rdbsc

import (
	"math"
	"testing"
)

func TestSolveEndToEnd(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(40, 80))
	for _, solver := range []Solver{NewGreedy(), NewSampling(), NewDC(), GTruth()} {
		res, err := Solve(in, WithSolver(solver), WithSeed(42))
		if err != nil {
			t.Fatalf("%s: %v", solver.Name(), err)
		}
		if err := in.CheckAssignment(res.Assignment); err != nil {
			t.Fatalf("%s produced invalid assignment: %v", solver.Name(), err)
		}
		if res.Eval.MinRel < 0 || res.Eval.MinRel > 1 {
			t.Errorf("%s MinRel = %v", solver.Name(), res.Eval.MinRel)
		}
	}
}

func TestSolveDefaultsToDC(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Len() == 0 {
		t.Error("default solve assigned nothing")
	}
}

func TestSolveWithIndexMatchesWithout(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(30, 60))
	a, err := Solve(in, WithSolver(NewGreedy()), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(in, WithSolver(NewGreedy()), WithSeed(1), WithIndex())
	if err != nil {
		t.Fatal(err)
	}
	// Greedy is deterministic given the same pair set; the index retrieves
	// the same pairs (possibly in different order, but greedy sorts by
	// worker), so the objective values must agree.
	if math.Abs(a.Eval.TotalESTD-b.Eval.TotalESTD) > 1e-9 {
		t.Errorf("index changed result: %v vs %v", a.Eval, b.Eval)
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(5, 5))
	in.Beta = 2 // invalid
	if _, err := Solve(in); err == nil {
		t.Error("expected validation error")
	}
}

func TestReliabilityFacade(t *testing.T) {
	if got := Reliability([]float64{0.5, 0.5}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Reliability = %v, want 0.75", got)
	}
}

func TestDiversityFacade(t *testing.T) {
	angles := []float64{0, math.Pi}
	arrivals := []float64{0.5, 0.5}
	probs := []float64{1, 1}
	estd := ExpectedSTD(1, angles, arrivals, probs, 0, 1)
	if math.Abs(estd-math.Ln2) > 1e-12 {
		t.Errorf("ExpectedSTD = %v, want ln2", estd)
	}
	std := STD(1, angles, arrivals, 0, 1)
	if math.Abs(std-math.Ln2) > 1e-12 {
		t.Errorf("STD = %v, want ln2", std)
	}
}

func TestGridFacade(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(20, 40))
	g := NewGrid(GridConfig{}, in)
	tasks, workers := g.Len()
	if tasks != 20 || workers != 40 {
		t.Errorf("grid holds (%d,%d), want (20,40)", tasks, workers)
	}
}

func TestPlatformFacade(t *testing.T) {
	m := SimulatePlatform(PlatformConfig{Horizon: 0.2, Seed: 3})
	if m.Rounds == 0 {
		t.Error("platform simulation executed no rounds")
	}
}

func TestGenerateRealWorkloadFacade(t *testing.T) {
	in := GenerateRealWorkload(RealWorkloadConfig{
		POI:        POIConfig{NumPOIs: 100, Seed: 1},
		Trajectory: TrajectoryConfig{NumTaxis: 50, Seed: 2},
		Tasks:      50,
		Synthetic:  DefaultWorkload(),
	})
	if len(in.Tasks) != 50 || len(in.Workers) != 50 {
		t.Errorf("real workload sizes: %d tasks, %d workers", len(in.Tasks), len(in.Workers))
	}
}

func TestSectorAndPt(t *testing.T) {
	s := Sector(0, math.Pi/2)
	if !s.Contains(math.Pi/5) || s.Contains(math.Pi) {
		t.Errorf("Sector misbehaves: %+v", s)
	}
	if p := Pt(0.1, 0.2); p.X != 0.1 || p.Y != 0.2 {
		t.Errorf("Pt = %v", p)
	}
}

func TestExhaustiveFacade(t *testing.T) {
	in := GenerateDenseWorkload(DefaultWorkload().WithScale(3, 5))
	p := NewProblem(in)
	ex := NewExhaustive()
	if !ex.CanSolve(p) {
		t.Skip("population too large for this seed")
	}
	res := ex.Solve(p, nil)
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
}
