// Command rdbsc-bench regenerates the paper's evaluation tables and
// figures (Section 8 and Appendix J). Each experiment sweeps one Table 2
// parameter and prints the paper's two panels — minimum reliability and
// total_STD — for the four approaches (GREEDY, SAMPLING, D&C, G-TRUTH),
// plus CPU time and index metrics where the figure calls for them.
//
// Usage:
//
//	rdbsc-bench -list               # show available experiments
//	rdbsc-bench -fig 13             # run Figure 13
//	rdbsc-bench -fig all            # run everything (default)
//	rdbsc-bench -m 120 -n 240 -seeds 3 -fig 14
//
// Bench scale defaults to m=80, n=160 (the paper's 10K×10K full scale takes
// CPU-hours on the quadratic greedy); shapes, not absolute magnitudes, are
// the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rdbsc/internal/exp"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "experiment to run: a figure number (e.g. 13 or fig13), an ablation id, or 'all'")
		list  = flag.Bool("list", false, "list available experiments and exit")
		m     = flag.Int("m", 80, "base number of tasks")
		n     = flag.Int("n", 160, "base number of workers")
		seeds = flag.Int("seeds", 2, "workload seeds averaged per point")
		seed  = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := exp.Scale{M: *m, N: *n, Seeds: *seeds, Seed: *seed}
	ids := resolve(*fig)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: unknown experiment %q; try -list\n", *fig)
		os.Exit(2)
	}
	for _, id := range ids {
		e, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rows := e.Run(scale)
		fmt.Print(exp.RenderTable(e, rows))
		fmt.Printf("-- paper shape: %s\n", e.PaperShape)
		fmt.Printf("-- completed in %.1fs\n\n", time.Since(start).Seconds())
	}
}

// resolve maps the -fig argument to experiment ids.
func resolve(arg string) []string {
	arg = strings.TrimSpace(strings.ToLower(arg))
	if arg == "all" {
		return exp.IDs()
	}
	if _, ok := exp.ByID(arg); ok {
		return []string{arg}
	}
	// Bare figure numbers are accepted: "13" → "fig13".
	if _, ok := exp.ByID("fig" + arg); ok {
		return []string{"fig" + arg}
	}
	return nil
}
