// Command rdbsc-bench regenerates the paper's evaluation tables and
// figures (Section 8 and Appendix J). Each experiment sweeps one Table 2
// parameter and prints the paper's two panels — minimum reliability and
// total_STD — for the four approaches (GREEDY, SAMPLING, D&C, G-TRUTH),
// plus CPU time and index metrics where the figure calls for them.
//
// Usage:
//
//	rdbsc-bench -list               # show available experiments
//	rdbsc-bench -fig 13             # run Figure 13
//	rdbsc-bench -fig all            # run everything (default)
//	rdbsc-bench -m 120 -n 240 -seeds 3 -fig 14
//	rdbsc-bench -fig all -timeout 2m   # stop after 2 minutes, partial tables
//	rdbsc-bench -fig ablation-incremental   # greedy candidate-maintenance before/after
//	rdbsc-bench -greedy greedy-parallel -fig 16   # parallel exact-Δ greedy in the sweeps
//	rdbsc-bench -fig ablation-decompose     # component decomposition: monolithic vs sharded vs cached churn
//	rdbsc-bench -sharded -fig 13            # every approach through the sharded-* composites
//
// Scenario mode benchmarks one named workload scenario (package workload)
// and emits the machine-readable, versioned BENCH_<scenario>.json record
// (package benchreport) that the CI perf-smoke gate and cross-commit perf
// comparisons are built on:
//
//	rdbsc-bench -list-scenarios
//	rdbsc-bench -json -scenario dense                        # writes BENCH_dense.json
//	rdbsc-bench -json -scenario islands -solver dc -sharded -runs 7
//	rdbsc-bench -json -scenario dense -baseline BENCH_baseline.json -max-regress 3
//	rdbsc-bench -json -scenario dense -write-baseline BENCH_baseline.json
//
// Exit codes: 0 success; 1 the solve was infeasible (ErrInfeasible, also
// recorded in the JSON "error" field) or failed; 2 usage errors; 3 the
// baseline comparison found a regression.
//
// Bench scale defaults to m=80, n=160 (the paper's 10K×10K full scale takes
// CPU-hours on the quadratic greedy); shapes, not absolute magnitudes, are
// the reproduction target.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"rdbsc/internal/benchreport"
	"rdbsc/internal/core"
	"rdbsc/internal/decompose"
	"rdbsc/internal/engine"
	"rdbsc/internal/exp"
	"rdbsc/internal/serve"
	"rdbsc/internal/workload"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment to run: a figure number (e.g. 13 or fig13), an ablation id, or 'all'")
		list    = flag.Bool("list", false, "list available experiments and exit")
		m       = flag.Int("m", 80, "base number of tasks")
		n       = flag.Int("n", 160, "base number of workers")
		seeds   = flag.Int("seeds", 2, "workload seeds averaged per point")
		seed    = flag.Int64("seed", 1, "base random seed")
		greedy  = flag.String("greedy", "greedy", "registry name backing the GREEDY approach: greedy (incremental), greedy-naive, or greedy-parallel")
		sharded = flag.Bool("sharded", false, "wrap every approach in connected-component decomposition (the sharded-* composites)")
		timeout = flag.Duration("timeout", 0, "overall deadline; experiments report partial tables when it expires (0 = no limit)")

		// Scenario/benchmark-pipeline mode.
		scenario      = flag.String("scenario", "", "benchmark one named workload scenario instead of a figure sweep")
		listScenarios = flag.Bool("list-scenarios", false, "list the named workload scenarios and exit")
		jsonOut       = flag.Bool("json", false, "with -scenario: write the machine-readable BENCH_<scenario>.json record")
		runs          = flag.Int("runs", 5, "with -scenario: measured solves behind the latency percentiles")
		solver        = flag.String("solver", "greedy", "with -scenario: solver registry name")
		outDir        = flag.String("out", ".", "with -scenario -json: directory for BENCH_<scenario>.json")
		baseline      = flag.String("baseline", "", "with -scenario: compare against this baseline file (exit 3 on regression)")
		maxRegress    = flag.Float64("max-regress", 3, "with -baseline: fail when wall-clock p50 exceeds this multiple of the baseline")
		maxAllocs     = flag.Float64("max-allocs-regress", 0, "with -baseline: fail when allocs/op exceeds this multiple of the baseline (0 = off)")
		writeBaseline = flag.String("write-baseline", "", "with -scenario: merge this run into the given baseline file")
		solveCache    = flag.Bool("solve-cache", false, "with -scenario: replay repeat solves through the cross-request solve cache (variant 'cached')")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *listScenarios {
		for _, s := range workload.Registry() {
			fmt.Printf("%-12s %s\n", s.Name, s.Description)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *scenario != "" {
		os.Exit(runScenario(ctx, scenarioOpts{
			name: *scenario, solver: *solver, sharded: *sharded,
			m: *m, n: *n, seed: *seed, runs: *runs,
			jsonOut: *jsonOut, outDir: *outDir,
			baseline: *baseline, maxRegress: *maxRegress, maxAllocs: *maxAllocs,
			writeBaseline: *writeBaseline, solveCache: *solveCache,
		}))
	}
	if *jsonOut {
		fmt.Fprintln(os.Stderr, "rdbsc-bench: -json requires -scenario; try -list-scenarios")
		os.Exit(2)
	}

	if s, err := core.NewByName(*greedy); err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: -greedy: %v\n", err)
		os.Exit(2)
	} else if _, ok := s.(*core.Greedy); !ok {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: -greedy %q is not a greedy variant (want greedy, greedy-naive, or greedy-parallel)\n", *greedy)
		os.Exit(2)
	}
	scale := exp.Scale{M: *m, N: *n, Seeds: *seeds, Seed: *seed, Greedy: *greedy, Sharded: *sharded}
	ids := resolve(*fig)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: unknown experiment %q; try -list\n", *fig)
		os.Exit(2)
	}
	for _, id := range ids {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: deadline reached; skipping remaining experiments\n")
			break
		}
		e, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rows := e.Run(ctx, scale)
		fmt.Print(exp.RenderTable(e, rows))
		fmt.Printf("-- paper shape: %s\n", e.PaperShape)
		fmt.Printf("-- completed in %.1fs\n\n", time.Since(start).Seconds())
	}
}

// scenarioOpts carries the -scenario mode flags.
type scenarioOpts struct {
	name, solver            string
	sharded, jsonOut        bool
	solveCache              bool
	m, n, runs              int
	seed                    int64
	outDir                  string
	baseline, writeBaseline string
	maxRegress, maxAllocs   float64
}

// runScenario benchmarks one named workload scenario: retrieve the valid
// pairs through the engine's grid index once, solve the prepared problem
// opts.runs times, and summarize wall clock, objective, and solver stats as
// a benchreport.Report. Returns the process exit code.
func runScenario(ctx context.Context, opts scenarioOpts) int {
	sc, err := workload.ByName(opts.name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: %v\n", err)
		return 2
	}
	solver, err := core.NewByName(opts.solver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: -solver: %v\n", err)
		return 2
	}
	if opts.sharded {
		solver = core.NewSharded(solver)
	}
	if opts.runs <= 0 {
		opts.runs = 1
	}

	in := sc.Instance(workload.Params{M: opts.m, N: opts.n, Seed: opts.seed})
	eng := engine.NewFromInstance(in, engine.Config{})
	prob := eng.Problem()
	_, retrieve := eng.LastPrep()

	rep := benchreport.New("oneshot", opts.name, solver.Name(), opts.seed)
	rep.M, rep.N = len(in.Tasks), len(in.Workers)
	rep.Pairs = len(prob.Pairs)
	rep.Components = decompose.Build(prob.Pairs).Len()
	rep.RetrieveMS = float64(retrieve) / float64(time.Millisecond)

	// With -solve-cache, repeat solves replay through the serve plane's
	// cross-request cache (the state never changes between runs, so every
	// run after the first is a hit); the record is written under the
	// "cached" variant so it coexists with the uncached one.
	var cache *serve.SolveCache
	cacheVersions := []uint64{1}
	cacheKey := serve.SolveCacheKey{Fingerprint: 1, Solver: solver.Name(), Seed: opts.seed}
	if opts.solveCache {
		cache = serve.NewSolveCache(opts.runs)
		rep.Variant = "cached"
	}

	// Only clean solves enter the latency sample: an errored or interrupted
	// attempt's timing measures the failure, not the solver, and Runs must
	// reflect what the quantiles were computed over. The allocation profile
	// is the MemStats delta across the measured loop, averaged per run.
	wall := make([]float64, 0, opts.runs)
	var res *core.Result
	var solveErr error
	cacheHits := 0
	runtime.GC()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	for r := 0; r < opts.runs; r++ {
		start := time.Now()
		if v, ok := cache.Get(cacheKey, cacheVersions, 0); ok {
			res = v.(*core.Result)
			cacheHits++
			wall = append(wall, float64(time.Since(start))/float64(time.Millisecond))
			continue
		}
		res, solveErr = solver.Solve(ctx, prob, &core.SolveOptions{Seed: opts.seed})
		if solveErr != nil {
			break
		}
		cache.Put(cacheKey, cacheVersions, 0, res)
		wall = append(wall, float64(time.Since(start))/float64(time.Millisecond))
	}
	runtime.ReadMemStats(&msAfter)
	rep.Runs = len(wall)
	rep.WallMS = benchreport.Summarize(wall)
	if len(wall) > 0 {
		rep.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(len(wall))
		rep.BytesPerOp = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(len(wall))
	}
	if res != nil {
		rep.Feasible = res.Assignment != nil && res.Assignment.Len() > 0
		rep.Objective = benchreport.Objective{
			MinReliability:  res.Eval.MinRel,
			TotalDiversity:  res.Eval.TotalESTD,
			AssignedWorkers: res.Eval.AssignedWorkers,
			AssignedTasks:   res.Eval.AssignedTasks,
		}
		rep.Stats = res.Stats
	}

	// The bugfix half of this mode: infeasible (or failed) runs carry the
	// error in the JSON record AND signal it through the exit code, so CI
	// and scripts see it without parsing human-readable text.
	exit := 0
	switch {
	case solveErr != nil:
		rep.Error = solveErr.Error()
		exit = 1
	case !rep.Feasible:
		rep.Error = core.ErrInfeasible.Error()
		exit = 1
	}

	fmt.Printf("scenario %-10s solver %-14s m=%d n=%d pairs=%d components=%d\n",
		opts.name, solver.Name(), rep.M, rep.N, rep.Pairs, rep.Components)
	fmt.Printf("  wall p50=%.2fms p95=%.2fms p99=%.2fms (runs=%d, retrieve=%.2fms)\n",
		rep.WallMS.P50, rep.WallMS.P95, rep.WallMS.P99, len(wall), rep.RetrieveMS)
	fmt.Printf("  allocs/op=%.0f bytes/op=%.0f\n", rep.AllocsPerOp, rep.BytesPerOp)
	if opts.solveCache {
		fmt.Printf("  solve-cache hits=%d/%d\n", cacheHits, len(wall))
	}
	fmt.Printf("  minRel=%.4f totalSTD=%.4f assigned=%d/%d\n",
		rep.Objective.MinReliability, rep.Objective.TotalDiversity,
		rep.Objective.AssignedWorkers, rep.Objective.AssignedTasks)
	if rep.Error != "" {
		fmt.Printf("  error: %s\n", rep.Error)
	}

	if opts.jsonOut {
		path, err := benchreport.Write(opts.outDir, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: %v\n", err)
			return 1
		}
		fmt.Printf("  wrote %s\n", path)
	}
	if opts.writeBaseline != "" {
		bl, err := benchreport.LoadBaseline(opts.writeBaseline)
		if err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "rdbsc-bench: %v\n", err)
				return 1
			}
			bl = &benchreport.Baseline{}
		}
		bl.Merge(rep)
		if err := benchreport.WriteBaseline(opts.writeBaseline, bl); err != nil {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: %v\n", err)
			return 1
		}
		fmt.Printf("  merged into baseline %s\n", opts.writeBaseline)
	}
	if opts.baseline != "" {
		bl, err := benchreport.LoadBaseline(opts.baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: %v\n", err)
			return 1
		}
		failures, notes := bl.Compare(rep, opts.maxRegress)
		af, an := bl.CompareAllocs(rep, opts.maxAllocs)
		failures = append(failures, af...)
		notes = append(notes, an...)
		for _, n := range notes {
			fmt.Printf("  baseline note: %s\n", n)
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: baseline regression: %s\n", f)
		}
		if len(failures) > 0 {
			return 3
		}
		fmt.Printf("  baseline gate passed (max-regress %.1f×)\n", opts.maxRegress)
	}
	return exit
}

// resolve maps the -fig argument to experiment ids.
func resolve(arg string) []string {
	arg = strings.TrimSpace(strings.ToLower(arg))
	if arg == "all" {
		return exp.IDs()
	}
	if _, ok := exp.ByID(arg); ok {
		return []string{arg}
	}
	// Bare figure numbers are accepted: "13" → "fig13".
	if _, ok := exp.ByID("fig" + arg); ok {
		return []string{"fig" + arg}
	}
	return nil
}
