// Command rdbsc-bench regenerates the paper's evaluation tables and
// figures (Section 8 and Appendix J). Each experiment sweeps one Table 2
// parameter and prints the paper's two panels — minimum reliability and
// total_STD — for the four approaches (GREEDY, SAMPLING, D&C, G-TRUTH),
// plus CPU time and index metrics where the figure calls for them.
//
// Usage:
//
//	rdbsc-bench -list               # show available experiments
//	rdbsc-bench -fig 13             # run Figure 13
//	rdbsc-bench -fig all            # run everything (default)
//	rdbsc-bench -m 120 -n 240 -seeds 3 -fig 14
//	rdbsc-bench -fig all -timeout 2m   # stop after 2 minutes, partial tables
//	rdbsc-bench -fig ablation-incremental   # greedy candidate-maintenance before/after
//	rdbsc-bench -greedy greedy-parallel -fig 16   # parallel exact-Δ greedy in the sweeps
//	rdbsc-bench -fig ablation-decompose     # component decomposition: monolithic vs sharded vs cached churn
//	rdbsc-bench -sharded -fig 13            # every approach through the sharded-* composites
//
// Bench scale defaults to m=80, n=160 (the paper's 10K×10K full scale takes
// CPU-hours on the quadratic greedy); shapes, not absolute magnitudes, are
// the reproduction target.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/exp"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment to run: a figure number (e.g. 13 or fig13), an ablation id, or 'all'")
		list    = flag.Bool("list", false, "list available experiments and exit")
		m       = flag.Int("m", 80, "base number of tasks")
		n       = flag.Int("n", 160, "base number of workers")
		seeds   = flag.Int("seeds", 2, "workload seeds averaged per point")
		seed    = flag.Int64("seed", 1, "base random seed")
		greedy  = flag.String("greedy", "greedy", "registry name backing the GREEDY approach: greedy (incremental), greedy-naive, or greedy-parallel")
		sharded = flag.Bool("sharded", false, "wrap every approach in connected-component decomposition (the sharded-* composites)")
		timeout = flag.Duration("timeout", 0, "overall deadline; experiments report partial tables when it expires (0 = no limit)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if s, err := core.NewByName(*greedy); err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: -greedy: %v\n", err)
		os.Exit(2)
	} else if _, ok := s.(*core.Greedy); !ok {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: -greedy %q is not a greedy variant (want greedy, greedy-naive, or greedy-parallel)\n", *greedy)
		os.Exit(2)
	}
	scale := exp.Scale{M: *m, N: *n, Seeds: *seeds, Seed: *seed, Greedy: *greedy, Sharded: *sharded}
	ids := resolve(*fig)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "rdbsc-bench: unknown experiment %q; try -list\n", *fig)
		os.Exit(2)
	}
	for _, id := range ids {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: deadline reached; skipping remaining experiments\n")
			break
		}
		e, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "rdbsc-bench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rows := e.Run(ctx, scale)
		fmt.Print(exp.RenderTable(e, rows))
		fmt.Printf("-- paper shape: %s\n", e.PaperShape)
		fmt.Printf("-- completed in %.1fs\n\n", time.Since(start).Seconds())
	}
}

// resolve maps the -fig argument to experiment ids.
func resolve(arg string) []string {
	arg = strings.TrimSpace(strings.ToLower(arg))
	if arg == "all" {
		return exp.IDs()
	}
	if _, ok := exp.ByID(arg); ok {
		return []string{arg}
	}
	// Bare figure numbers are accepted: "13" → "fig13".
	if _, ok := exp.ByID("fig" + arg); ok {
		return []string{"fig" + arg}
	}
	return nil
}
