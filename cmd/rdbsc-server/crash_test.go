package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rdbsc/internal/serve"
	"rdbsc/internal/workload"
)

// The crash-restart differential harness: replay a deterministic churn
// trace against a real rdbsc-server process as synchronous single-mutation
// requests, SIGKILL the process at randomized cut points, restart it from
// the data directory, and require the final engine version and solve
// answer to be identical to an uninterrupted golden run of the same trace.
// Every mutation is acknowledged before the next is sent, so the WAL must
// hold exactly the acked prefix at each kill — any lost or double-applied
// batch shows up as a version or assignment divergence.

func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rdbsc-server")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building rdbsc-server: %v\n%s", err, out)
	}
	return bin
}

// proc is one live server process.
type proc struct {
	cmd *exec.Cmd
	url string
}

// startServer launches the binary and waits for the resolved listen
// address (the "-addr 127.0.0.1:0" log line) and a passing health check.
func startServer(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(func() { p.kill(t) })
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				if f := strings.Fields(line[i+len("listening on "):]); len(f) > 0 {
					select {
					case addrCh <- f[0]:
					default:
					}
				}
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	select {
	case addr := <-addrCh:
		p.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never announced its listen address")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(p.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never became healthy: %v", p.url, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the process — no shutdown grace, no final fsync; the crash
// under test.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if p.cmd.ProcessState != nil {
		return // already reaped
	}
	_ = p.cmd.Process.Kill()
	_ = p.cmd.Wait() // reaps and releases the pipe; error is the expected "killed"
}

// eventRequest renders one trace event as the HTTP mutation the loadgen
// would send.
func eventRequest(ev workload.Event) (method, path string, body []byte) {
	switch ev.Kind {
	case workload.TaskArrive:
		b, _ := json.Marshal(serve.NewTaskJSON(ev.Task))
		return http.MethodPost, "/v1/tasks", b
	case workload.TaskExpire:
		return http.MethodDelete, fmt.Sprintf("/v1/tasks/%d", ev.TaskID), nil
	case workload.WorkerArrive:
		b, _ := json.Marshal(serve.NewWorkerJSON(ev.Worker))
		return http.MethodPost, "/v1/workers", b
	case workload.WorkerLeave:
		return http.MethodDelete, fmt.Sprintf("/v1/workers/%d", ev.WorkerID), nil
	}
	panic("unknown event kind")
}

func mustJSON(t *testing.T, method, url string, body []byte) map[string]any {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s %s: %s %s", method, url, resp.Status, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding: %v", method, url, err)
	}
	return out
}

// finalState solves with a fixed seed and reads the engine version; the
// pair is the differential fingerprint.
func finalState(t *testing.T, url string) (float64, map[string]any) {
	t.Helper()
	solve := mustJSON(t, http.MethodPost, url+"/v1/solve", []byte(`{"solver":"greedy","seed":5}`))
	for _, volatile := range []string{"elapsed_ms", "at", "stats", "cached", "cluster"} {
		delete(solve, volatile)
	}
	health := mustJSON(t, http.MethodGet, url+"/healthz", nil)
	version, ok := health["version"].(float64)
	if !ok {
		t.Fatalf("healthz carries no version: %v", health)
	}
	return version, solve
}

// runTrace replays the trace synchronously, killing and restarting the
// server before the events whose index is in cuts. It returns the final
// (version, solve) fingerprint.
func runTrace(t *testing.T, bin, dataDir string, shards int, tr *workload.Trace, cuts map[int]bool) (float64, map[string]any) {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0", "-solver", "greedy",
		"-data-dir", dataDir, "-fsync", "off", "-snapshot-every", "8",
		"-shards", fmt.Sprint(shards),
	}
	p := startServer(t, bin, args...)
	for i, ev := range tr.Events {
		if cuts[i] {
			p.kill(t)
			p = startServer(t, bin, args...)
		}
		method, path, body := eventRequest(ev)
		mustJSON(t, method, p.url+path, body)
	}
	version, solve := finalState(t, p.url)
	p.kill(t)
	return version, solve
}

// TestCrashRestartDifferential is the durability pin: for both the churn
// and hotspot traces, at 1 and 4 shards, a run interrupted by three
// randomized SIGKILLs recovers to exactly the golden run's engine version
// and solve answer.
func TestCrashRestartDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	bin := buildServer(t)
	for _, scenario := range []string{"churn", "hotspot"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-shards%d", scenario, shards), func(t *testing.T) {
				t.Parallel()
				sc, err := workload.ByName(scenario)
				if err != nil {
					t.Fatal(err)
				}
				tr := sc.Trace(workload.Params{M: 20, N: 40, Seed: 1, Horizon: 2})
				if len(tr.Events) < 10 {
					t.Fatalf("trace too short to cut 3 times: %d events", len(tr.Events))
				}

				goldenVersion, goldenSolve := runTrace(t, bin, t.TempDir(), shards, tr, nil)

				// Three distinct cut points, seeded per subtest so reruns
				// reproduce; drawn from the middle so each restart has
				// state to recover and trace left to apply.
				rng := rand.New(rand.NewSource(int64(len(tr.Events)) + int64(shards)*1000))
				cuts := map[int]bool{}
				for len(cuts) < 3 {
					cuts[1+rng.Intn(len(tr.Events)-1)] = true
				}
				crashVersion, crashSolve := runTrace(t, bin, t.TempDir(), shards, tr, cuts)

				if crashVersion != goldenVersion {
					t.Errorf("recovered version %v, golden %v", crashVersion, goldenVersion)
				}
				if !reflect.DeepEqual(crashSolve, goldenSolve) {
					t.Errorf("solve diverged after crash-recovery:\n golden: %v\n crashed: %v", goldenSolve, crashSolve)
				}
			})
		}
	}
}
