// Command rdbsc-server runs the RDB-SC assignment service: an HTTP/JSON
// front end over a churning engine, with batched mutations and
// snapshot-isolated solves (see internal/serve for the concurrency model).
//
// The engine starts from a CSV workload (-in, as written by rdbsc-gen),
// from a synthetic instance (-m/-n), or empty; clients then stream churn
// through the API:
//
//	rdbsc-gen -m 500 -n 1000 -out w
//	rdbsc-server -addr :8080 -in w -solver greedy
//
//	curl -X POST localhost:8080/v1/tasks   -d '{"id":9000,"x":0.5,"y":0.5,"start":0,"end":4}'
//	curl -X POST localhost:8080/v1/workers -d '{"id":9000,"x":0.4,"y":0.4,"speed":1,"confidence":0.9}'
//	curl -X POST localhost:8080/v1/solve   -d '{"solver":"greedy","seed":7,"timeout_ms":200}'
//	curl localhost:8080/v1/assignment
//	curl localhost:8080/v1/stats
//	curl -X DELETE localhost:8080/v1/tasks/9000
//
// With -shards N (N > 1) the same API is served by the multi-shard cluster
// topology (internal/cluster): the space is tiled, entities route to the
// shard owning their tile, and solves go through the cross-shard
// coordinator — exact, bit-identical to the single-engine answer.
// -shards 1 (the default) keeps the plain single-engine serving path.
//
// SIGINT/SIGTERM shut the server down gracefully: intake stops (new
// mutations get 503), in-flight requests finish, and every queued mutation
// is applied before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rdbsc/internal/cluster"
	"rdbsc/internal/dataset"
	"rdbsc/internal/engine"
	"rdbsc/internal/gen"
	"rdbsc/internal/model"
	"rdbsc/internal/serve"
	"rdbsc/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		prefix       = flag.String("in", "", "load the initial instance from <prefix>_tasks.csv / <prefix>_workers.csv")
		m            = flag.Int("m", 0, "generate a synthetic instance with this many tasks (with -n; ignored when -in is set)")
		n            = flag.Int("n", 0, "generate a synthetic instance with this many workers (with -m)")
		genSeed      = flag.Int64("gen-seed", 1, "seed for the generated instance")
		beta         = flag.Float64("beta", 0.5, "diversity weight β (0 is honored: temporal diversity only)")
		wait         = flag.Bool("wait", false, "allow workers to wait for a task's period to open")
		useIndex     = flag.Bool("index", true, "retrieve valid pairs via the RDB-SC-Grid index")
		solverName   = flag.String("solver", "dc", "default solver for /v1/solve, by registry name")
		queueDepth   = flag.Int("queue", 1024, "mutation queue depth (full queue answers 429)")
		batchMax     = flag.Int("batch-max", 256, "max mutations applied per batch")
		batchLinger  = flag.Duration("batch-linger", 0, "extra wait to widen batches under bursty load")
		solveTimeout = flag.Duration("solve-timeout", 30*time.Second, "default and maximum per-request solve deadline")
		grace        = flag.Duration("grace", 15*time.Second, "graceful shutdown budget after SIGINT/SIGTERM")
		shards       = flag.Int("shards", 1, "spatial shard count; >1 serves the multi-shard cluster topology (internal/cluster)")
		tileSize     = flag.Float64("tile", 0, "tile side length for shard routing (0 = default 0.3; only with -shards > 1)")
		solveCache   = flag.Int("solve-cache", 0, "solve-cache capacity: repeat /v1/solve requests against an unchanged state replay the cached answer (0 = disabled)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		dataDir      = flag.String("data-dir", "", "durable state directory: WAL + snapshots per shard, recovered on boot (empty = memory only, nothing survives a restart)")
		fsyncMode    = flag.String("fsync", "batch", "WAL fsync policy with -data-dir: always (sync every batch), batch (group commit), off (process-crash durability only)")
		snapEvery    = flag.Int("snapshot-every", 1024, "compact each shard's WAL into a snapshot after this many applied batches (0 = never; only with -data-dir)")
		adaptiveOn   = flag.Bool("adaptive", false, "adaptive solve tier: route /v1/solve requests that name no solver through SLO-aware lane selection")
		sloP99       = flag.Duration("slo-p99", 50*time.Millisecond, "p99 solve-latency budget for the adaptive tier (setting it implies -adaptive)")
		maxStale     = flag.Duration("max-stale", 5*time.Second, "staleness bound for degraded answers: over-budget requests serve the last assignment only if it is at most this old, else 429")
	)
	flag.Parse()

	// An explicit -slo-p99 is an unambiguous ask for the adaptive tier, so
	// it switches the tier on without also requiring -adaptive.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "slo-p99" {
			*adaptiveOn = true
		}
	})

	if !(*beta >= 0 && *beta <= 1) { // phrased so NaN also fails
		fatal(fmt.Errorf("-beta %v outside [0,1]", *beta))
	}
	if *shards < 1 {
		fatal(fmt.Errorf("-shards %d must be >= 1", *shards))
	}

	var in *model.Instance
	switch {
	case *prefix != "":
		loaded, err := dataset.LoadInstance(*prefix, *beta)
		if err != nil {
			fatal(err)
		}
		loaded.Opt.WaitAllowed = *wait
		in = loaded
	case *m > 0 && *n > 0:
		in = gen.Generate(gen.Default().WithScale(*m, *n).WithSeed(*genSeed))
		in.Beta = *beta
		in.Opt.WaitAllowed = *wait
	}

	// Durable stores: one per shard, each in its own subdirectory so shard
	// WALs never interleave. When the data directory already holds state,
	// recovery wins and any requested preload (-in / -m) is ignored — the
	// recovered state IS the instance.
	var stores []store.Store
	if *dataDir != "" {
		mode, err := store.ParseFsyncMode(*fsyncMode)
		if err != nil {
			fatal(err)
		}
		hasState := false
		fileStores := make([]*store.FileStore, *shards)
		for i := range fileStores {
			fs, err := store.Open(filepath.Join(*dataDir, fmt.Sprintf("shard-%d", i)), store.FileOptions{Fsync: mode})
			if err != nil {
				fatal(err)
			}
			fileStores[i] = fs
			hasState = hasState || fs.HasState()
		}
		if hasState && in != nil {
			log.Printf("rdbsc-server: %s holds recovered state; ignoring -in/-m preload", *dataDir)
			in = nil
		}
		stores = make([]store.Store, len(fileStores))
		for i, fs := range fileStores {
			stores[i] = fs
		}
	}

	var (
		srv       server
		boot      string
		solverTag = *solverName
	)
	if *shards > 1 {
		cl, err := cluster.New(cluster.Config{
			Shards:        *shards,
			TileSize:      *tileSize,
			Beta:          *beta,
			BetaSet:       true,
			Opt:           model.Options{WaitAllowed: *wait},
			SolverName:    *solverName,
			QueueDepth:    *queueDepth,
			BatchMax:      *batchMax,
			BatchLinger:   *batchLinger,
			SolveTimeout:  *solveTimeout,
			DisableIndex:  !*useIndex,
			SolveCache:    *solveCache,
			Stores:        stores,
			SnapshotEvery: durableSnapEvery(*dataDir, *snapEvery),
			Adaptive:      *adaptiveOn,
			SLOp99:        *sloP99,
			MaxStale:      *maxStale,
		}, in)
		if err != nil {
			fatal(err)
		}
		srv = cl
		boot = fmt.Sprintf("%d shards, solver %s", cl.Shards(), solverTag)
	} else {
		cfg := engine.Config{
			Beta:         *beta,
			BetaSet:      true,
			Opt:          model.Options{WaitAllowed: *wait},
			DisableIndex: !*useIndex,
		}
		var eng *engine.Engine
		if in != nil {
			eng = engine.NewFromInstance(in, cfg)
		} else {
			eng = engine.New(cfg)
		}
		scfg := serve.Config{
			Engine:        eng,
			SolverName:    *solverName,
			QueueDepth:    *queueDepth,
			BatchMax:      *batchMax,
			BatchLinger:   *batchLinger,
			SolveTimeout:  *solveTimeout,
			SolveCache:    *solveCache,
			SnapshotEvery: durableSnapEvery(*dataDir, *snapEvery),
			Adaptive:      *adaptiveOn,
			SLOp99:        *sloP99,
			MaxStale:      *maxStale,
		}
		if stores != nil {
			scfg.Store = stores[0]
		}
		s, err := serve.New(scfg)
		if err != nil {
			fatal(err)
		}
		srv = s
		snap := s.Snapshot()
		boot = fmt.Sprintf("%d tasks, %d workers, %d valid pairs, solver %s",
			snap.Tasks(), snap.Workers(), len(snap.Problem.Pairs), solverTag)
	}
	if *adaptiveOn {
		boot += fmt.Sprintf(", adaptive SLO p99 %v (max-stale %v)", *sloP99, *maxStale)
	}
	// Bind before announcing: with -addr :0 the log then carries the real
	// resolved port, which the crash-restart harness (and humans) rely on.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("rdbsc-server: listening on %s (%s)", ln.Addr(), boot)

	// Profiling is opt-in and served on its own listener, so the /v1 API
	// surface never exposes /debug/pprof. The explicit mux avoids the
	// net/http/pprof side effect of registering on http.DefaultServeMux.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func(addr string) {
			log.Printf("rdbsc-server: pprof listening on %s", addr)
			ps := &http.Server{Addr: addr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			if err := ps.ListenAndServe(); err != nil {
				log.Printf("rdbsc-server: pprof server: %v", err)
			}
		}(*pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("rdbsc-server: shutting down (draining the mutation queues, %v grace)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("rdbsc-server: drained and stopped")
}

// server is the slice of serve.Server / cluster.Cluster the main loop
// needs; both satisfy it.
type server interface {
	Serve(ln net.Listener) error
	Shutdown(ctx context.Context) error
}

// durableSnapEvery returns the periodic-compaction cadence: snapshots only
// make sense with a data directory, so without one the trigger stays off
// regardless of -snapshot-every.
func durableSnapEvery(dataDir string, every int) int {
	if dataDir == "" {
		return 0
	}
	return every
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdbsc-server: %v\n", err)
	os.Exit(1)
}
