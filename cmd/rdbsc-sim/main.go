// Command rdbsc-sim runs the gMission-substitute platform simulation
// (Section 8.4): spatial tasks open at a set of sites, moving workers are
// periodically (re)assigned with the incremental updating strategy of
// Figure 10, answers arrive stochastically, and the run's quality measures
// are reported — including the angular-coverage proxy that stands in for
// the paper's 3D-reconstruction showcase (Figures 19–20).
//
// Usage:
//
//	rdbsc-sim -solver dc -tinterval 2 -horizon 2
//	rdbsc-sim -coverage            # sweep t_interval and report coverage
//	rdbsc-sim -solver greedy -timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"rdbsc/internal/core"
	"rdbsc/internal/platform"
)

func main() {
	var (
		solverName = flag.String("solver", "greedy", "assignment algorithm, by registry name")
		tinterval  = flag.Float64("tinterval", 1, "incremental update period in minutes")
		horizon    = flag.Float64("horizon", 2, "simulated time in hours")
		workers    = flag.Int("workers", 10, "worker pool size")
		beta       = flag.Float64("beta", 0.5, "diversity weight β")
		seed       = flag.Int64("seed", 1, "random seed")
		timeout    = flag.Duration("timeout", 0, "abort the simulation after this long, reporting partial metrics (0 = no limit)")
		coverage   = flag.Bool("coverage", false, "sweep t_interval 1..4 min and report the 3D-reconstruction coverage proxy")
		decompose  = flag.Bool("decompose", false, "solve connected components independently each round (cache hits are rare in this driver: every round re-stamps idle workers' departure times)")
	)
	flag.Parse()

	solver, err := core.NewByName(*solverName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-sim: %v\n", err)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *coverage {
		fmt.Printf("%-10s %10s %10s %10s %10s\n", "t_interval", "minRel", "total_STD", "coverage", "answers")
		for _, mins := range []float64{1, 2, 3, 4} {
			m, err := run(ctx, solver, mins, *horizon, *workers, *beta, *seed, *decompose)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-10s %10.4f %10.4f %10.4f %10d\n",
				fmt.Sprintf("%gmin", mins), m.MinRel, m.TotalSTD, m.Coverage, m.Answers)
		}
		return
	}

	m, err := run(ctx, solver, *tinterval, *horizon, *workers, *beta, *seed, *decompose)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("solver      %s\n", solver.Name())
	fmt.Printf("rounds      %d\n", m.Rounds)
	fmt.Printf("issued      %d tasks\n", m.TasksIssued)
	fmt.Printf("served      %d tasks\n", m.TasksServed)
	fmt.Printf("answers     %d\n", m.Answers)
	fmt.Printf("minRel      %.4f\n", m.MinRel)
	fmt.Printf("total_STD   %.4f\n", m.TotalSTD)
	fmt.Printf("accuracy    %.4f\n", m.MeanAccuracy)
	fmt.Printf("coverage    %.4f (angular, 3D-reconstruction proxy)\n", m.Coverage)
}

func run(ctx context.Context, solver core.Solver, mins, horizon float64, workers int, beta float64, seed int64, decompose bool) (platform.Metrics, error) {
	sim := platform.New(platform.Config{
		TInterval:  mins / 60,
		Horizon:    horizon,
		NumWorkers: workers,
		Beta:       beta,
		Solver:     solver,
		Decompose:  decompose,
		Seed:       seed,
	})
	m := sim.RunContext(ctx)
	return m, sim.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdbsc-sim: %v\n", err)
	os.Exit(1)
}
