// Command rdbsc-gen generates RDB-SC workloads and writes them as CSV for
// inspection or external tooling. It covers the synthetic UNIFORM/SKEWED
// settings of Table 2 and the real-data substitutes (clustered POIs,
// simulated taxi trajectories).
//
// Usage:
//
//	rdbsc-gen -m 1000 -n 2000 -dist skewed -out workload   # workload_{tasks,workers}.csv
//	rdbsc-gen -real -m 500 -n 300 -out beijing
//	rdbsc-gen -print-config                                # show Table 2 defaults
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rdbsc/internal/dataset"
	"rdbsc/internal/gen"
	"rdbsc/internal/model"
)

func main() {
	var (
		m        = flag.Int("m", 1000, "number of tasks")
		n        = flag.Int("n", 1000, "number of workers")
		dist     = flag.String("dist", "uniform", "spatial distribution: uniform or skewed")
		real     = flag.Bool("real", false, "generate the real-data substitute (POIs + trajectories)")
		dense    = flag.Bool("dense", false, "cluster task windows near time zero (well-connected small instances)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "workload", "output file prefix")
		printCfg = flag.Bool("print-config", false, "print the Table 2 default configuration and exit")
	)
	flag.Parse()

	if *printCfg {
		cfg := gen.Default()
		fmt.Printf("Table 2 defaults (bench scale):\n%+v\n", cfg)
		return
	}

	in := buildInstance(*m, *n, *dist, *real, *dense, *seed)
	if err := dataset.SaveInstance(*out, in); err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s_tasks.csv (%d tasks) and %s_workers.csv (%d workers), beta=%.3f\n",
		*out, len(in.Tasks), *out, len(in.Workers), in.Beta)
}

func buildInstance(m, n int, dist string, real, dense bool, seed int64) *model.Instance {
	if real {
		return gen.GenerateReal(gen.RealConfig{
			POI:        gen.POIConfig{NumPOIs: m * 4, Seed: seed},
			Trajectory: gen.TrajectoryConfig{NumTaxis: n, Seed: seed + 1},
			Tasks:      m,
			Synthetic:  gen.Default().WithSeed(seed),
		})
	}
	cfg := gen.Default().WithScale(m, n).WithSeed(seed)
	if strings.EqualFold(dist, "skewed") {
		cfg.Distribution = gen.Skewed
	}
	if dense {
		return gen.GenerateDense(cfg)
	}
	return gen.Generate(cfg)
}
