// Command rdbsc-loadgen replays a named workload scenario's churn trace
// against a running rdbsc-server as open-loop HTTP load: every task/worker
// arrival and departure becomes a mutation request fired at its scheduled
// wall-clock time (trace time compressed by -hours-per-sec), solve requests
// fire on a fixed cadence, and nothing waits for the previous response —
// so server slowdowns surface as latency and backpressure (429s), not as a
// slower generator. The run is summarized as a machine-readable
// BENCH_<scenario>.json record of kind "load" (package benchreport) with
// client-side throughput and latency percentiles; the server keeps its own
// view in GET /v1/stats (solve_latency_ms).
//
// Usage:
//
//	rdbsc-server -addr :8080 &
//	rdbsc-loadgen -addr http://127.0.0.1:8080 -scenario churn -hours-per-sec 30
//	rdbsc-loadgen -scenario rush-hour -solver greedy -solve-every 0.1 -out .
//
// Exit codes: 0 success; 1 replay or report errors; 2 usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rdbsc/internal/benchreport"
	"rdbsc/internal/workload"
)

func main() {
	var (
		addr          = flag.String("addr", "http://127.0.0.1:8080", "base URL of the rdbsc-server under load")
		scenario      = flag.String("scenario", "churn", "named workload scenario to replay (see rdbsc-bench -list-scenarios)")
		m             = flag.Int("m", 80, "scenario task scale")
		n             = flag.Int("n", 160, "scenario worker scale")
		seed          = flag.Int64("seed", 1, "scenario seed (same seed, same byte-identical trace)")
		horizon       = flag.Float64("horizon", 4, "trace span in simulated hours")
		hoursPerSec   = flag.Float64("hours-per-sec", 60, "time compression: trace hours replayed per wall second")
		solveEvery    = flag.Float64("solve-every", 0.25, "solve request cadence in trace hours (<0 disables)")
		solver        = flag.String("solver", "", "solver name for the solve requests (empty = server default)")
		solveTimeout  = flag.Int64("solve-timeout-ms", 2000, "server-side deadline per solve request")
		maxInFlight   = flag.Int("max-in-flight", 256, "cap on concurrently outstanding requests")
		retry429      = flag.Int("retry-429", 0, "retry budget per mutation on 429 backpressure (0 = record and move on)")
		retryBackoff  = flag.Duration("retry-backoff", 0, "base delay before the first 429 retry; doubles per attempt, jittered (default 5ms when -retry-429 > 0)")
		expectRestart = flag.Bool("expect-restart", false, "tolerate a bounded server outage mid-replay (planned kill/restart): transport failures inside the window are recorded as conn_errors, not mutation/solve errors")
		restartWindow = flag.Duration("restart-window", 0, "max tolerated outage with -expect-restart (default 10s)")
		sloBudget     = flag.Duration("slo", 0, "score solves against this latency budget (server-reported elapsed_ms): over-budget fresh responses count as slo_violations, degraded/shed answers are tallied separately (0 = off)")
		variant       = flag.String("variant", "", "record variant label, e.g. shards4 (suffixes the BENCH filename)")
		outDir        = flag.String("out", "", "directory for the BENCH_<scenario>.json record (empty = don't write)")
		timeout       = flag.Duration("timeout", 0, "overall wall-clock budget (0 = no limit)")
	)
	flag.Parse()

	sc, err := workload.ByName(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-loadgen: %v\n", err)
		os.Exit(2)
	}
	tr := sc.Trace(workload.Params{M: *m, N: *n, Seed: *seed, Horizon: *horizon})
	ta, te, wa, wl := tr.Counts()
	fmt.Printf("replaying %s: %d events (%d/%d task arrive/expire, %d/%d worker arrive/leave) over %.1fh at %.0fh/s against %s\n",
		tr.Scenario, len(tr.Events), ta, te, wa, wl, tr.Horizon, *hoursPerSec, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rep, err := workload.Replay(ctx, tr, workload.ReplayConfig{
		BaseURL:        *addr,
		HoursPerSecond: *hoursPerSec,
		SolveEvery:     *solveEvery,
		Solver:         *solver,
		SolveTimeoutMS: *solveTimeout,
		Seed:           *seed,
		MaxInFlight:    *maxInFlight,
		Retry429:       *retry429,
		RetryBackoff:   *retryBackoff,
		ExpectRestart:  *expectRestart,
		RestartWindow:  *restartWindow,
		SLOBudget:      *sloBudget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdbsc-loadgen: %v\n", err)
		os.Exit(1)
	}
	rep.M, rep.N = *m, *n
	rep.Variant = *variant

	l := rep.Load
	fmt.Printf("done in %.2fs: %.0f req/s, max schedule lag %.1fms\n",
		l.WallSeconds, l.RequestsPerSecond, l.MaxScheduleLagMS)
	fmt.Printf("  mutations: %d sent, %d ok (%.0f/s), %d backpressured (429), %d retries, %d errors; p50=%.2fms p95=%.2fms p99=%.2fms\n",
		l.MutationsSent, l.MutationsOK, l.MutationsPerSecond, l.MutationsRejected, l.MutationRetries, l.MutationErrors,
		l.MutationMS.P50, l.MutationMS.P95, l.MutationMS.P99)
	fmt.Printf("  solves:    %d sent, %d ok (%d partial), %d errors; p50=%.2fms p95=%.2fms p99=%.2fms\n",
		l.SolvesSent, l.SolvesOK, l.SolvePartials, l.SolveErrors,
		rep.WallMS.P50, rep.WallMS.P95, rep.WallMS.P99)
	if *expectRestart {
		fmt.Printf("  restart:   %d conn errors absorbed, max outage %.0fms\n", l.ConnErrors, l.MaxOutageMS)
	}
	if *sloBudget > 0 {
		fmt.Printf("  slo:       budget %.0fms, %d violations, %d degraded (max stale %.0fms), %d shed\n",
			l.SLOBudgetMS, l.SLOViolations, l.DegradedResponses, l.MaxServedStaleMS, l.SolvesShed)
	}
	fmt.Printf("  last feasible solve: feasible=%v minRel=%.4f totalSTD=%.4f assigned=%d/%d\n",
		rep.Feasible, rep.Objective.MinReliability, rep.Objective.TotalDiversity,
		rep.Objective.AssignedWorkers, rep.Objective.AssignedTasks)

	if *outDir != "" {
		path, err := benchreport.Write(*outDir, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdbsc-loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", path)
	}

	// A replay that reached the server but got nothing through is a failed
	// run, not a measurement: exit non-zero so smoke scripts catch a broken
	// serving path instead of green-lighting an empty report.
	switch {
	case l.MutationsSent > 0 && l.MutationsOK == 0:
		fmt.Fprintln(os.Stderr, "rdbsc-loadgen: no mutation succeeded")
		os.Exit(1)
	case l.SolvesSent > 0 && l.SolvesOK == 0:
		fmt.Fprintln(os.Stderr, "rdbsc-loadgen: no solve succeeded")
		os.Exit(1)
	}
}
