// Command rdbsc-solve loads a CSV workload (as written by rdbsc-gen),
// solves the RDB-SC assignment with the chosen algorithm, reports the two
// quality measures, and optionally writes the assignment as CSV.
//
// Usage:
//
//	rdbsc-gen -m 500 -n 1000 -out w
//	rdbsc-solve -in w -solver dc -beta 0.5 -assignment out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/dataset"
	"rdbsc/internal/grid"
	"rdbsc/internal/model"
	"rdbsc/internal/rng"
	"rdbsc/internal/viz"
)

func main() {
	var (
		prefix     = flag.String("in", "workload", "input file prefix (expects <prefix>_tasks.csv and <prefix>_workers.csv)")
		solverName = flag.String("solver", "dc", "algorithm: greedy, sampling, dc, gtruth")
		beta       = flag.Float64("beta", 0.5, "diversity weight β")
		seed       = flag.Int64("seed", 1, "random seed")
		useIndex   = flag.Bool("index", true, "retrieve valid pairs via the RDB-SC-Grid index")
		wait       = flag.Bool("wait", false, "allow workers to wait for a task's period to open")
		outFile    = flag.String("assignment", "", "write the assignment CSV to this path")
		svgFile    = flag.String("svg", "", "render the instance and assignment as SVG to this path")
	)
	flag.Parse()

	solver, err := pickSolver(*solverName)
	if err != nil {
		fatal(err)
	}
	in, err := dataset.LoadInstance(*prefix, *beta)
	if err != nil {
		fatal(err)
	}
	in.Opt.WaitAllowed = *wait

	start := time.Now()
	var p *core.Problem
	if *useIndex {
		g := grid.NewFromInstance(grid.Config{}, in)
		p = core.NewProblemWithPairs(in, g.ValidPairs())
	} else {
		p = core.NewProblem(in)
	}
	prepTime := time.Since(start)

	start = time.Now()
	res := solver.Solve(p, rng.New(*seed))
	solveTime := time.Since(start)

	fmt.Printf("instance     %d tasks, %d workers, %d valid pairs\n",
		len(in.Tasks), len(in.Workers), len(p.Pairs))
	fmt.Printf("solver       %s (seed %d)\n", solver.Name(), *seed)
	fmt.Printf("prep         %v (index=%v)\n", prepTime.Round(time.Microsecond), *useIndex)
	fmt.Printf("solve        %v\n", solveTime.Round(time.Microsecond))
	fmt.Printf("assigned     %d workers to %d tasks\n", res.Eval.AssignedWorkers, res.Eval.AssignedTasks)
	fmt.Printf("minRel       %.4f\n", res.Eval.MinRel)
	fmt.Printf("total_STD    %.4f\n", res.Eval.TotalESTD)

	if *outFile != "" {
		if err := writeAssignment(*outFile, res.Assignment); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment   written to %s\n", *outFile)
	}
	if *svgFile != "" {
		f, err := os.Create(*svgFile)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("%s: minRel=%.3f total_STD=%.3f", solver.Name(),
			res.Eval.MinRel, res.Eval.TotalESTD)
		err = viz.Render(f, in, res.Assignment, viz.Options{Title: title})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("svg          written to %s\n", *svgFile)
	}
}

func writeAssignment(path string, a *model.Assignment) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	type row struct {
		w model.WorkerID
		t model.TaskID
	}
	var rows []row
	a.Workers(func(w model.WorkerID, t model.TaskID) { rows = append(rows, row{w, t}) })
	sort.Slice(rows, func(i, j int) bool { return rows[i].w < rows[j].w })
	fmt.Fprintln(f, "worker_id,task_id")
	for _, r := range rows {
		fmt.Fprintf(f, "%d,%d\n", r.w, r.t)
	}
	return nil
}

func pickSolver(name string) (core.Solver, error) {
	switch strings.ToLower(name) {
	case "greedy":
		return core.NewGreedy(), nil
	case "sampling":
		return core.NewSampling(), nil
	case "dc", "d&c":
		return core.NewDC(), nil
	case "gtruth", "g-truth":
		return core.GTruth(), nil
	default:
		return nil, fmt.Errorf("unknown solver %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdbsc-solve: %v\n", err)
	os.Exit(1)
}
