// Command rdbsc-solve loads a CSV workload (as written by rdbsc-gen),
// solves the RDB-SC assignment with the chosen algorithm, reports the two
// quality measures, and optionally writes the assignment as CSV.
//
// Solvers are resolved through the registry (-solver accepts any name from
// `rdbsc-solve -list-solvers`), and -timeout bounds the solve with a
// context deadline: when it expires, the best partial assignment found so
// far is reported. The greedy solver's candidate-maintenance knobs are
// exposed as -greedy-naive (per-round full recomputation) and
// -greedy-parallel (sharded exact-Δ evaluation); both change cost only,
// never the assignment. -sharded decomposes the instance into the
// connected components of its reachability graph and solves them
// concurrently (equivalently, use a "sharded-<solver>" registry name).
//
// Usage:
//
//	rdbsc-gen -m 500 -n 1000 -out w
//	rdbsc-solve -in w -solver dc -beta 0.5 -assignment out.csv
//	rdbsc-solve -in w -solver greedy -timeout 5s -progress
//	rdbsc-solve -in w -solver greedy -sharded   # or: -solver sharded-greedy
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/dataset"
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
	"rdbsc/internal/rng"
	"rdbsc/internal/viz"
)

func main() {
	var (
		prefix      = flag.String("in", "workload", "input file prefix (expects <prefix>_tasks.csv and <prefix>_workers.csv)")
		solverName  = flag.String("solver", "dc", "algorithm, by registry name (see -list-solvers)")
		listSolvers = flag.Bool("list-solvers", false, "list registered solvers and exit")
		beta        = flag.Float64("beta", 0.5, "diversity weight β")
		seed        = flag.Int64("seed", 1, "random seed")
		useIndex    = flag.Bool("index", true, "retrieve valid pairs via the RDB-SC-Grid index")
		wait        = flag.Bool("wait", false, "allow workers to wait for a task's period to open")
		gNaive      = flag.Bool("greedy-naive", false, "greedy only: recompute every candidate bound every round (the pre-incremental baseline)")
		gParallel   = flag.Bool("greedy-parallel", false, "greedy only: evaluate exact Δ-diversity candidates on all CPUs")
		sharded     = flag.Bool("sharded", false, "decompose into connected components and solve them concurrently (equivalent to a sharded-<solver> registry name)")
		timeout     = flag.Duration("timeout", 0, "abort the solve after this long, reporting the partial result (0 = no limit)")
		progress    = flag.Bool("progress", false, "stream per-round solver progress to stderr")
		outFile     = flag.String("assignment", "", "write the assignment CSV to this path")
		svgFile     = flag.String("svg", "", "render the instance and assignment as SVG to this path")
	)
	flag.Parse()

	if *listSolvers {
		for _, name := range core.Names() {
			fmt.Println(name)
		}
		return
	}

	solver, err := core.NewByName(*solverName)
	if err != nil {
		fatal(err)
	}
	if g, ok := solver.(*core.Greedy); ok {
		// The candidate-maintenance knobs apply to any greedy variant the
		// registry resolved; they change cost, never the assignment.
		if *gNaive {
			g.Incremental = false
		}
		if *gParallel {
			g.Parallel = true
		}
	} else if *gNaive || *gParallel {
		fatal(fmt.Errorf("-greedy-naive/-greedy-parallel apply only to greedy solvers, not %q", solver.Name()))
	}
	if *sharded {
		solver = core.NewSharded(solver)
	}
	in, err := dataset.LoadInstance(*prefix, *beta)
	if err != nil {
		fatal(err)
	}
	in.Opt.WaitAllowed = *wait

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	eng := engine.NewFromInstance(in, engine.Config{
		Solver:       solver,
		DisableIndex: !*useIndex,
	})
	p := eng.Problem()
	prepTime := time.Since(start)

	opts := &core.SolveOptions{Source: rng.New(*seed)} // explicit source: -seed 0 is honored
	if *progress {
		opts.Progress = func(st core.Stage) {
			fmt.Fprintf(os.Stderr, "progress: %s round %d", st.Solver, st.Round)
			if st.Total > 0 {
				fmt.Fprintf(os.Stderr, "/%d", st.Total)
			}
			if st.Assigned > 0 {
				fmt.Fprintf(os.Stderr, " assigned %d", st.Assigned)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	start = time.Now()
	res, err := eng.Solve(ctx, opts)
	solveTime := time.Since(start)
	switch {
	case errors.Is(err, core.ErrInterrupted):
		fmt.Fprintf(os.Stderr, "rdbsc-solve: timed out after %v; reporting the partial assignment\n", *timeout)
	case errors.Is(err, core.ErrInfeasible):
		fmt.Fprintln(os.Stderr, "rdbsc-solve: no feasible assignment (no worker reaches any task in time)")
	case err != nil:
		fatal(err)
	}

	fmt.Printf("instance     %d tasks, %d workers, %d valid pairs\n",
		len(in.Tasks), len(in.Workers), len(p.Pairs))
	fmt.Printf("solver       %s (seed %d)\n", solver.Name(), *seed)
	fmt.Printf("prep         %v (index=%v)\n", prepTime.Round(time.Microsecond), *useIndex)
	fmt.Printf("solve        %v\n", solveTime.Round(time.Microsecond))
	fmt.Printf("assigned     %d workers to %d tasks\n", res.Eval.AssignedWorkers, res.Eval.AssignedTasks)
	fmt.Printf("minRel       %.4f\n", res.Eval.MinRel)
	fmt.Printf("total_STD    %.4f\n", res.Eval.TotalESTD)
	if st := res.Stats; st.BoundsComputed+st.BoundsReused > 0 {
		fmt.Printf("bounds       %d computed, %d served from the incremental cache\n",
			st.BoundsComputed, st.BoundsReused)
	}
	if st := res.Stats; st.Components > 0 {
		fmt.Printf("components   %d (largest: %d pairs)\n", st.Components, st.MaxComponentPairs)
	}

	if *outFile != "" {
		if err := writeAssignment(*outFile, res.Assignment); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment   written to %s\n", *outFile)
	}
	if *svgFile != "" {
		f, err := os.Create(*svgFile)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("%s: minRel=%.3f total_STD=%.3f", solver.Name(),
			res.Eval.MinRel, res.Eval.TotalESTD)
		err = viz.Render(f, in, res.Assignment, viz.Options{Title: title})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("svg          written to %s\n", *svgFile)
	}
}

func writeAssignment(path string, a *model.Assignment) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	type row struct {
		w model.WorkerID
		t model.TaskID
	}
	var rows []row
	a.Workers(func(w model.WorkerID, t model.TaskID) { rows = append(rows, row{w, t}) })
	sort.Slice(rows, func(i, j int) bool { return rows[i].w < rows[j].w })
	fmt.Fprintln(f, "worker_id,task_id")
	for _, r := range rows {
		fmt.Fprintf(f, "%d,%d\n", r.w, r.t)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rdbsc-solve: %v\n", strings.TrimPrefix(err.Error(), "core: "))
	os.Exit(1)
}
