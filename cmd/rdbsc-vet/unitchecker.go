package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"rdbsc/internal/analyze"
)

// vetConfig is the JSON configuration the go command writes for each
// compilation unit when driving a -vettool. Field names and semantics
// follow the x/tools unitchecker protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitChecker analyzes the single compilation unit described by
// cfgFile and exits: 0 clean, 1 with diagnostics on stderr, fatal on
// protocol errors. The vetx fact file is always written (empty — this
// suite is fact-free) so the go command's caching step finds it.
func runUnitChecker(cfgFile string, analyzers []*analyze.Analyzer) {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}

	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				os.Exit(0) // the compiler will report the parse error
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  makeVetImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			os.Exit(0)
		}
		log.Fatal(err)
	}

	writeVetx()
	if cfg.VetxOnly {
		os.Exit(0) // facts-only pass; this suite has no facts
	}

	diags, err := analyze.RunAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		exit = 1
	}
	os.Exit(exit)
}

func readVetConfig(filename string) (*vetConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// makeVetImporter resolves imports the way the go command instructs:
// import path -> ImportMap (vendoring) -> PackageFile (export data).
func makeVetImporter(cfg *vetConfig, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
