// Command rdbsc-vet runs the repository's custom invariant analyzers
// (internal/analyze): determinism, scratchpair, snapshotro, ctxflow and
// epochstamp.
//
// It supports two modes:
//
//	rdbsc-vet [packages]              standalone; loads packages itself
//	go vet -vettool=rdbsc-vet ./...   unit-checker; driven by the go command
//
// In standalone mode the default pattern is ./... and the exit status is
// 1 when any diagnostic is reported, 2 on load failure. In vettool mode
// the binary speaks the `go vet` unit-checker protocol (-V=full, -flags,
// and a single pkg.cfg argument per compilation unit).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"rdbsc/internal/analyze"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdbsc-vet: ")

	flag.Var(versionFlag{}, "V", "print version and exit (-V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rdbsc-vet [packages]\n       go vet -vettool=$(which rdbsc-vet) [packages]\n\nAnalyzers:\n")
		for _, a := range analyze.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *flagsFlag {
		// The go command interrogates the tool for its flags; this suite
		// has none beyond the protocol's own.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnitChecker(args[0], analyze.All())
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &analyze.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analyze.RunAnalyzers(analyze.All(), pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if found {
		os.Exit(1)
	}
}

// versionFlag implements the -V=full protocol `go vet` uses to stamp the
// tool's identity into the build cache key: print
// "<path> version devel comments-go-here buildID=<content hash>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
