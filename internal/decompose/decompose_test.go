package decompose

import (
	"fmt"
	"reflect"
	"testing"

	"rdbsc/internal/model"
	"rdbsc/internal/rng"
)

// randomPairs draws a random bipartite edge set over m tasks and n workers
// with the given edge probability. Entities may end up isolated (no edge),
// exercising the entities-without-pairs-belong-to-no-component rule.
func randomPairs(src *rng.Source, m, n int, prob float64) []model.Pair {
	var pairs []model.Pair
	for t := 0; t < m; t++ {
		for w := 0; w < n; w++ {
			if src.Bernoulli(prob) {
				pairs = append(pairs, model.Pair{
					Task:    model.TaskID(t),
					Worker:  model.WorkerID(w),
					Arrival: src.Float64(),
					Angle:   src.Float64(),
				})
			}
		}
	}
	return pairs
}

// TestPartitionIsTruePartition checks the defining properties on random
// edge sets: components are pairwise disjoint in tasks, workers, and pair
// indices; together they cover exactly the entities and pairs of the input;
// every pair is intra-component; and the reverse lookups agree with the
// component listings.
func TestPartitionIsTruePartition(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, density := range []float64{0.02, 0.08, 0.3} {
			t.Run(fmt.Sprintf("seed=%d/density=%v", seed, density), func(t *testing.T) {
				src := rng.New(seed)
				pairs := randomPairs(src, 20, 40, density)
				part := Build(pairs)

				seenTasks := make(map[model.TaskID]int)
				seenWorkers := make(map[model.WorkerID]int)
				seenPairs := make(map[int32]int)
				for ci, c := range part.Components {
					if len(c.Tasks) == 0 || len(c.Workers) == 0 {
						t.Fatalf("component %d lacks tasks or workers: %+v", ci, c)
					}
					if c.Key != c.Tasks[0] {
						t.Errorf("component %d key %d != smallest task %d", ci, c.Key, c.Tasks[0])
					}
					for _, id := range c.Tasks {
						if prev, dup := seenTasks[id]; dup {
							t.Fatalf("task %d in components %d and %d", id, prev, ci)
						}
						seenTasks[id] = ci
						if got, ok := part.ComponentOfTask(id); !ok || got != ci {
							t.Errorf("ComponentOfTask(%d) = %d,%v want %d,true", id, got, ok, ci)
						}
					}
					for _, id := range c.Workers {
						if prev, dup := seenWorkers[id]; dup {
							t.Fatalf("worker %d in components %d and %d", id, prev, ci)
						}
						seenWorkers[id] = ci
						if got, ok := part.ComponentOfWorker(id); !ok || got != ci {
							t.Errorf("ComponentOfWorker(%d) = %d,%v want %d,true", id, got, ok, ci)
						}
					}
					for _, pi := range c.Pairs {
						if prev, dup := seenPairs[pi]; dup {
							t.Fatalf("pair %d in components %d and %d", pi, prev, ci)
						}
						seenPairs[pi] = ci
						// Intra-component: the pair's endpoints belong to the
						// component holding the pair.
						pr := pairs[pi]
						if seenTasks[pr.Task] != ci {
							t.Errorf("pair %d: task %d not in component %d", pi, pr.Task, ci)
						}
						if wc, ok := part.ComponentOfWorker(pr.Worker); !ok || wc != ci {
							t.Errorf("pair %d: worker %d in component %d, want %d", pi, pr.Worker, wc, ci)
						}
					}
				}
				if len(seenPairs) != len(pairs) {
					t.Errorf("pairs covered %d times, want %d", len(seenPairs), len(pairs))
				}
				// Coverage: exactly the entities with at least one pair.
				for _, pr := range pairs {
					if _, ok := seenTasks[pr.Task]; !ok {
						t.Errorf("task %d has a pair but no component", pr.Task)
					}
					if _, ok := seenWorkers[pr.Worker]; !ok {
						t.Errorf("worker %d has a pair but no component", pr.Worker)
					}
				}
				// Connectivity within components: BFS over the pair edges
				// from each component's first task must reach every member.
				for ci, c := range part.Components {
					if !connected(c, pairs) {
						t.Errorf("component %d is not internally connected", ci)
					}
				}
				// Maximality: no two distinct components share an edge is
				// already implied; components sorted by key:
				for i := 1; i < len(part.Components); i++ {
					if part.Components[i-1].Key >= part.Components[i].Key {
						t.Errorf("components not sorted by key: %d >= %d",
							part.Components[i-1].Key, part.Components[i].Key)
					}
				}
			})
		}
	}
}

// connected checks by BFS that every member of c is reachable from c's
// first task through the component's own pairs.
func connected(c Component, pairs []model.Pair) bool {
	adjT := make(map[model.TaskID][]model.WorkerID)
	adjW := make(map[model.WorkerID][]model.TaskID)
	for _, pi := range c.Pairs {
		pr := pairs[pi]
		adjT[pr.Task] = append(adjT[pr.Task], pr.Worker)
		adjW[pr.Worker] = append(adjW[pr.Worker], pr.Task)
	}
	visT := make(map[model.TaskID]bool)
	visW := make(map[model.WorkerID]bool)
	queueT := []model.TaskID{c.Tasks[0]}
	visT[c.Tasks[0]] = true
	var queueW []model.WorkerID
	for len(queueT) > 0 || len(queueW) > 0 {
		if len(queueT) > 0 {
			tid := queueT[0]
			queueT = queueT[1:]
			for _, w := range adjT[tid] {
				if !visW[w] {
					visW[w] = true
					queueW = append(queueW, w)
				}
			}
			continue
		}
		w := queueW[0]
		queueW = queueW[1:]
		for _, tid := range adjW[w] {
			if !visT[tid] {
				visT[tid] = true
				queueT = append(queueT, tid)
			}
		}
	}
	return len(visT) == len(c.Tasks) && len(visW) == len(c.Workers)
}

// churnState simulates an engine's view of its live pair set while driving
// a Builder through the same operations.
type churnState struct {
	pairs   map[[2]int32]bool // (task, worker) edges currently live
	builder *Builder
}

// maxChurnID bounds the entity IDs the churn simulation can mint; the
// enumeration below must cover every ID or the reference pair set would
// silently drop edges the builder saw.
const maxChurnID = 128

func (cs *churnState) pairSlice() []model.Pair {
	var out []model.Pair
	// Deterministic order: by task then worker.
	for t := int32(0); t < maxChurnID; t++ {
		for w := int32(0); w < maxChurnID; w++ {
			if cs.pairs[[2]int32{t, w}] {
				out = append(out, model.Pair{Task: model.TaskID(t), Worker: model.WorkerID(w)})
			}
		}
	}
	return out
}

// TestBuilderChurnConvergesToRebuild drives random churn sequences —
// fresh insertions (incremental unions), removals and replacements
// (invalidation) — and checks after every step that the builder's
// partition equals a from-scratch Build of the current pair set.
func TestBuilderChurnConvergesToRebuild(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := rng.New(seed)
			cs := &churnState{pairs: make(map[[2]int32]bool), builder: NewBuilder()}
			liveTasks := map[int32]bool{}
			liveWorkers := map[int32]bool{}

			for step := 0; step < maxChurnID-8; step++ {
				switch op := src.Intn(10); {
				case op < 4: // fresh task insert with edges to some live workers
					tid := int32(step) // fresh IDs, never reused
					liveTasks[tid] = true
					for w := range liveWorkers {
						if src.Bernoulli(0.3) {
							cs.pairs[[2]int32{tid, w}] = true
							cs.builder.AddEdge(model.TaskID(tid), model.WorkerID(w))
						}
					}
				case op < 8: // fresh worker insert with edges to some live tasks
					wid := int32(step)
					liveWorkers[wid] = true
					for tid := range liveTasks {
						if src.Bernoulli(0.3) {
							cs.pairs[[2]int32{tid, wid}] = true
							cs.builder.AddEdge(model.TaskID(tid), model.WorkerID(wid))
						}
					}
				case op < 9: // task removal: edges vanish, builder invalidated
					for tid := range liveTasks {
						delete(liveTasks, tid)
						for key := range cs.pairs {
							if key[0] == tid {
								delete(cs.pairs, key)
							}
						}
						cs.builder.Invalidate()
						break
					}
				default: // worker removal
					for w := range liveWorkers {
						delete(liveWorkers, w)
						for key := range cs.pairs {
							if key[1] == w {
								delete(cs.pairs, key)
							}
						}
						cs.builder.Invalidate()
						break
					}
				}

				pairs := cs.pairSlice()
				got := cs.builder.Partition(pairs)
				want := Build(pairs)
				if !reflect.DeepEqual(got.Components, want.Components) {
					t.Fatalf("step %d: incremental partition diverged from rebuild:\n got %+v\nwant %+v",
						step, got.Components, want.Components)
				}
			}
		})
	}
}

// TestFingerprint checks the cache-invalidation contract: equal membership
// and versions hash equal; any membership or version change hashes
// different.
func TestFingerprint(t *testing.T) {
	pairs := []model.Pair{
		{Task: 1, Worker: 10}, {Task: 1, Worker: 11}, {Task: 2, Worker: 11},
		{Task: 5, Worker: 20},
	}
	part := Build(pairs)
	if part.Len() != 2 {
		t.Fatalf("want 2 components, got %d", part.Len())
	}
	vers := map[string]uint64{}
	tv := func(id model.TaskID) uint64 { return vers[fmt.Sprintf("t%d", id)] }
	wv := func(id model.WorkerID) uint64 { return vers[fmt.Sprintf("w%d", id)] }

	c0 := &part.Components[0]
	base := c0.Fingerprint(tv, wv)
	if again := c0.Fingerprint(tv, wv); again != base {
		t.Errorf("fingerprint not deterministic: %x vs %x", base, again)
	}
	vers["t1"] = 7
	if bumped := c0.Fingerprint(tv, wv); bumped == base {
		t.Errorf("fingerprint ignored a member version bump")
	}
	vers["t1"] = 0
	if restored := c0.Fingerprint(tv, wv); restored != base {
		t.Errorf("fingerprint not a pure function of members+versions")
	}
	// Membership change: drop one pair so component 0 loses worker 10.
	part2 := Build(pairs[1:])
	c0b := &part2.Components[0]
	if c0b.Key != c0.Key {
		t.Fatalf("expected same key after membership change, got %d vs %d", c0b.Key, c0.Key)
	}
	if c0b.Fingerprint(tv, wv) == base {
		t.Errorf("fingerprint ignored a membership change")
	}
	// The two distinct components hash differently.
	if part.Components[1].Fingerprint(tv, wv) == base {
		t.Errorf("distinct components share a fingerprint")
	}
}

// TestBuildEmpty covers the degenerate inputs.
func TestBuildEmpty(t *testing.T) {
	if got := Build(nil); got.Len() != 0 {
		t.Errorf("Build(nil).Len() = %d, want 0", got.Len())
	}
	if got := Build([]model.Pair{}); got.Len() != 0 {
		t.Errorf("Build(empty).Len() = %d, want 0", got.Len())
	}
	if _, ok := Build(nil).ComponentOfTask(3); ok {
		t.Errorf("ComponentOfTask on empty partition reported membership")
	}
	if Build(nil).MaxPairs() != 0 {
		t.Errorf("MaxPairs on empty partition != 0")
	}
}

// TestSingleEdge covers the smallest component.
func TestSingleEdge(t *testing.T) {
	part := Build([]model.Pair{{Task: 9, Worker: 4}})
	if part.Len() != 1 {
		t.Fatalf("want 1 component, got %d", part.Len())
	}
	c := part.Components[0]
	if c.Key != 9 || len(c.Tasks) != 1 || len(c.Workers) != 1 || len(c.Pairs) != 1 {
		t.Errorf("unexpected component: %+v", c)
	}
}
