// Package decompose partitions an RDB-SC instance into the connected
// components of its task-worker reachability graph. Because the objective
// aggregates per-task reliability with a min and per-task diversity with a
// sum, and because a valid pair never crosses components, the assignment
// problem decomposes exactly over this partition: the optimal value of the
// whole instance is the min/sum combination of the per-component optima,
// and any assignment splits losslessly into per-component assignments.
// Solvers can therefore run over the components independently — and
// concurrently — which is what core.Sharded and engine.Config.Decompose
// build on top of this package.
//
// The partition is computed with a union-find over the valid pairs (each
// pair is one edge of the bipartite reachability graph); Builder maintains
// the union-find incrementally under churn so a long-running engine does
// not pay a from-scratch rebuild on every insertion.
package decompose

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"rdbsc/internal/model"
)

// Component is one connected component of the reachability graph: the
// tasks and workers it spans plus the indices (into the source pair slice)
// of the pairs connecting them. Tasks, Workers and Pairs are ascending.
type Component struct {
	// Key identifies the component stably across rebuilds: the smallest
	// task ID it contains. (Every component holds at least one task and
	// one worker, since components are induced by task-worker edges.)
	Key     model.TaskID
	Tasks   []model.TaskID
	Workers []model.WorkerID
	Pairs   []int32 // indices into the pair slice the partition was built from
}

// Fingerprint hashes the component's membership together with
// caller-supplied per-entity versions (FNV-1a). Two fingerprints are equal
// only when the component spans the same tasks and workers and none of them
// mutated in between — the invalidation key of per-component result caches.
func (c *Component) Fingerprint(taskVer func(model.TaskID) uint64, workerVer func(model.WorkerID) uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, t := range c.Tasks {
		write(uint64(uint32(t)))
		if taskVer != nil {
			write(taskVer(t))
		}
	}
	write(fnvSep)
	for _, w := range c.Workers {
		write(uint64(uint32(w)))
		if workerVer != nil {
			write(workerVer(w))
		}
	}
	return h.Sum64()
}

// Partition is the component decomposition of one pair set. Components are
// ordered by Key, so iteration is deterministic regardless of the input
// pair order.
type Partition struct {
	Components []Component

	taskComp   map[model.TaskID]int
	workerComp map[model.WorkerID]int
}

// Len returns the number of components.
func (p *Partition) Len() int { return len(p.Components) }

// ComponentOfTask returns the index (into Components) of the component
// containing task t; ok is false for tasks with no valid pair.
func (p *Partition) ComponentOfTask(t model.TaskID) (int, bool) {
	i, ok := p.taskComp[t]
	return i, ok
}

// ComponentOfWorker returns the index of the component containing worker w;
// ok is false for workers with no valid pair.
func (p *Partition) ComponentOfWorker(w model.WorkerID) (int, bool) {
	i, ok := p.workerComp[w]
	return i, ok
}

// MaxPairs returns the size (in pairs) of the largest component, 0 for an
// empty partition.
func (p *Partition) MaxPairs() int {
	max := 0
	for i := range p.Components {
		if n := len(p.Components[i].Pairs); n > max {
			max = n
		}
	}
	return max
}

// Build computes the partition of a pair set from scratch. Entities that
// appear in no pair (unreachable tasks, out-of-range workers) belong to no
// component: they cannot influence any feasible assignment.
func Build(pairs []model.Pair) *Partition {
	return BuildSized(pairs, 0, 0)
}

// BuildSized is Build with capacity hints: numTasks and numWorkers bound
// the live entity populations (instance dimensions), pre-sizing the
// union-find and grouping maps so the from-scratch rebuild allocates once
// per map instead of growing through rehash doublings. Hints only size
// allocations — the partition is identical to Build's for any hint values
// (zero hints mean unknown).
func BuildSized(pairs []model.Pair, numTasks, numWorkers int) *Partition {
	b := NewBuilder()
	b.Invalidate()
	return b.PartitionSized(pairs, numTasks, numWorkers)
}

// node keys: tasks and workers share one union-find keyspace.
func taskNode(t model.TaskID) int64     { return int64(t)<<1 | 0 }
func workerNode(w model.WorkerID) int64 { return int64(w)<<1 | 1 }

// unionFind is a map-keyed disjoint-set with path halving, sized by the
// live entity set rather than a dense ID range (IDs churn upward forever in
// streaming use).
type unionFind struct {
	parent map[int64]int64
}

func newUnionFind() *unionFind {
	return newUnionFindSized(0)
}

// newUnionFindSized pre-sizes the parent map for n entities (tasks plus
// workers); n is a capacity hint only.
func newUnionFindSized(n int) *unionFind {
	return &unionFind{parent: make(map[int64]int64, n)}
}

func (u *unionFind) find(x int64) int64 {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	for p != x {
		gp, ok := u.parent[p]
		if !ok {
			gp = p
		}
		u.parent[x] = gp
		x = gp
		p = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int64) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// group builds the ordered component list from the union-find roots and the
// pair set. numTasks and numWorkers are capacity hints (0 = unknown).
func group(uf *unionFind, pairs []model.Pair, numTasks, numWorkers int) *Partition {
	type bucket struct {
		tasks   map[model.TaskID]bool
		workers map[model.WorkerID]bool
		pairIdx []int32
	}
	buckets := make(map[int64]*bucket)
	for i := range pairs {
		root := uf.find(taskNode(pairs[i].Task))
		b := buckets[root]
		if b == nil {
			b = &bucket{tasks: make(map[model.TaskID]bool), workers: make(map[model.WorkerID]bool)}
			buckets[root] = b
		}
		b.tasks[pairs[i].Task] = true
		b.workers[pairs[i].Worker] = true
		b.pairIdx = append(b.pairIdx, int32(i))
	}
	part := &Partition{
		taskComp:   make(map[model.TaskID]int, numTasks),
		workerComp: make(map[model.WorkerID]int, numWorkers),
	}
	for _, b := range buckets {
		c := Component{Pairs: b.pairIdx}
		for t := range b.tasks {
			c.Tasks = append(c.Tasks, t)
		}
		for w := range b.workers {
			c.Workers = append(c.Workers, w)
		}
		sort.Slice(c.Tasks, func(i, j int) bool { return c.Tasks[i] < c.Tasks[j] })
		sort.Slice(c.Workers, func(i, j int) bool { return c.Workers[i] < c.Workers[j] })
		c.Key = c.Tasks[0]
		part.Components = append(part.Components, c)
	}
	sort.Slice(part.Components, func(i, j int) bool {
		return part.Components[i].Key < part.Components[j].Key
	})
	for i := range part.Components {
		for _, t := range part.Components[i].Tasks {
			part.taskComp[t] = i
		}
		for _, w := range part.Components[i].Workers {
			part.workerComp[w] = i
		}
	}
	return part
}

// fnvSep separates the task and worker sections of a fingerprint so that
// membership cannot shift between them without changing the hash.
const fnvSep = 0x9e3779b97f4a7c15
