// Package decompose partitions an RDB-SC instance into the connected
// components of its task-worker reachability graph. Because the objective
// aggregates per-task reliability with a min and per-task diversity with a
// sum, and because a valid pair never crosses components, the assignment
// problem decomposes exactly over this partition: the optimal value of the
// whole instance is the min/sum combination of the per-component optima,
// and any assignment splits losslessly into per-component assignments.
// Solvers can therefore run over the components independently — and
// concurrently — which is what core.Sharded and engine.Config.Decompose
// build on top of this package.
//
// The partition is computed with a union-find over the valid pairs (each
// pair is one edge of the bipartite reachability graph); Builder maintains
// the union-find incrementally under churn so a long-running engine does
// not pay a from-scratch rebuild on every insertion.
package decompose

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"rdbsc/internal/model"
)

// Component is one connected component of the reachability graph: the
// tasks and workers it spans plus the indices (into the source pair slice)
// of the pairs connecting them. Tasks, Workers and Pairs are ascending.
type Component struct {
	// Key identifies the component stably across rebuilds: the smallest
	// task ID it contains. (Every component holds at least one task and
	// one worker, since components are induced by task-worker edges.)
	Key     model.TaskID
	Tasks   []model.TaskID
	Workers []model.WorkerID
	Pairs   []int32 // indices into the pair slice the partition was built from
}

// Fingerprint hashes the component's membership together with
// caller-supplied per-entity versions (FNV-1a). Two fingerprints are equal
// only when the component spans the same tasks and workers and none of them
// mutated in between — the invalidation key of per-component result caches.
func (c *Component) Fingerprint(taskVer func(model.TaskID) uint64, workerVer func(model.WorkerID) uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, t := range c.Tasks {
		write(uint64(uint32(t)))
		if taskVer != nil {
			write(taskVer(t))
		}
	}
	write(fnvSep)
	for _, w := range c.Workers {
		write(uint64(uint32(w)))
		if workerVer != nil {
			write(workerVer(w))
		}
	}
	return h.Sum64()
}

// Partition is the component decomposition of one pair set. Components are
// ordered by Key, so iteration is deterministic regardless of the input
// pair order.
type Partition struct {
	Components []Component

	taskComp   map[model.TaskID]int
	workerComp map[model.WorkerID]int
}

// Len returns the number of components.
func (p *Partition) Len() int { return len(p.Components) }

// ComponentOfTask returns the index (into Components) of the component
// containing task t; ok is false for tasks with no valid pair.
func (p *Partition) ComponentOfTask(t model.TaskID) (int, bool) {
	i, ok := p.taskComp[t]
	return i, ok
}

// ComponentOfWorker returns the index of the component containing worker w;
// ok is false for workers with no valid pair.
func (p *Partition) ComponentOfWorker(w model.WorkerID) (int, bool) {
	i, ok := p.workerComp[w]
	return i, ok
}

// MaxPairs returns the size (in pairs) of the largest component, 0 for an
// empty partition.
func (p *Partition) MaxPairs() int {
	max := 0
	for i := range p.Components {
		if n := len(p.Components[i].Pairs); n > max {
			max = n
		}
	}
	return max
}

// Build computes the partition of a pair set from scratch. Entities that
// appear in no pair (unreachable tasks, out-of-range workers) belong to no
// component: they cannot influence any feasible assignment.
func Build(pairs []model.Pair) *Partition {
	return BuildSized(pairs, 0, 0)
}

// BuildSized is Build with capacity hints: numTasks and numWorkers bound
// the live entity populations (instance dimensions), pre-sizing the
// union-find and grouping maps so the from-scratch rebuild allocates once
// per map instead of growing through rehash doublings. Hints only size
// allocations — the partition is identical to Build's for any hint values
// (zero hints mean unknown).
func BuildSized(pairs []model.Pair, numTasks, numWorkers int) *Partition {
	b := NewBuilder()
	b.Invalidate()
	return b.PartitionSized(pairs, numTasks, numWorkers)
}

// node keys: tasks and workers share one union-find keyspace.
func taskNode(t model.TaskID) int64     { return int64(t)<<1 | 0 }
func workerNode(w model.WorkerID) int64 { return int64(w)<<1 | 1 }

// unionFind is a map-keyed disjoint-set with path halving, sized by the
// live entity set rather than a dense ID range (IDs churn upward forever in
// streaming use).
type unionFind struct {
	parent map[int64]int64
}

func newUnionFind() *unionFind {
	return newUnionFindSized(0)
}

// newUnionFindSized pre-sizes the parent map for n entities (tasks plus
// workers); n is a capacity hint only.
func newUnionFindSized(n int) *unionFind {
	return &unionFind{parent: make(map[int64]int64, n)}
}

func (u *unionFind) find(x int64) int64 {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	for p != x {
		gp, ok := u.parent[p]
		if !ok {
			gp = p
		}
		u.parent[x] = gp
		x = gp
		p = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int64) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// group builds the ordered component list from the union-find roots and the
// pair set. numTasks and numWorkers are capacity hints (0 = unknown).
//
// The grouping is a two-pass counting sort over compact component indices:
// instead of one bucket (two membership maps plus a grown slice) per root,
// every component's pair indices, tasks, and workers are carved out of
// three shared backing arrays sized by the pair count, with per-component
// sort+dedup replacing the membership maps. One rebuild therefore costs a
// fixed handful of allocations regardless of how many components exist.
// The output is identical to the bucket formulation: Pairs ascending (pairs
// are visited in index order), Tasks/Workers sorted unique, components
// ordered by Key.
func group(uf *unionFind, pairs []model.Pair, numTasks, numWorkers int) *Partition {
	part := &Partition{
		taskComp:   make(map[model.TaskID]int, numTasks),
		workerComp: make(map[model.WorkerID]int, numWorkers),
	}
	if len(pairs) == 0 {
		return part
	}

	// Pass 1: map every pair to a compact component index via its root.
	rootIdx := make(map[int64]int)
	compOf := make([]int32, len(pairs))
	for i := range pairs {
		root := uf.find(taskNode(pairs[i].Task))
		ci, ok := rootIdx[root]
		if !ok {
			ci = len(rootIdx)
			rootIdx[root] = ci
		}
		compOf[i] = int32(ci)
	}
	nc := len(rootIdx)

	// Pass 2: counting sort of the pair indices into one shared backing.
	counts := make([]int, nc)
	for _, ci := range compOf {
		counts[ci]++
	}
	offsets := make([]int, nc+1)
	for ci, n := range counts {
		offsets[ci+1] = offsets[ci] + n
	}
	pairIdx := make([]int32, len(pairs))
	next := counts[:0] // reuse counts' backing as the write cursors
	next = next[:nc]
	copy(next, offsets[:nc])
	for i := range pairs {
		ci := compOf[i]
		pairIdx[next[ci]] = int32(i)
		next[ci]++
	}

	// Carve each component's membership out of shared backings: collect
	// with duplicates from its pair range, then sort+dedup in place.
	taskBacking := make([]model.TaskID, len(pairs))
	workerBacking := make([]model.WorkerID, len(pairs))
	part.Components = make([]Component, nc)
	for ci := 0; ci < nc; ci++ {
		lo, hi := offsets[ci], offsets[ci+1]
		pi := pairIdx[lo:hi:hi]
		ts := taskBacking[lo:lo:hi]
		ws := workerBacking[lo:lo:hi]
		for _, idx := range pi {
			ts = append(ts, pairs[idx].Task)
			ws = append(ws, pairs[idx].Worker)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		ut := ts[:1]
		for _, t := range ts[1:] {
			if t != ut[len(ut)-1] {
				ut = append(ut, t)
			}
		}
		uw := ws[:1]
		for _, w := range ws[1:] {
			if w != uw[len(uw)-1] {
				uw = append(uw, w)
			}
		}
		part.Components[ci] = Component{
			Key:     ut[0],
			Tasks:   ut[:len(ut):len(ut)],
			Workers: uw[:len(uw):len(uw)],
			Pairs:   pi,
		}
	}
	sort.Slice(part.Components, func(i, j int) bool {
		return part.Components[i].Key < part.Components[j].Key
	})
	for i := range part.Components {
		for _, t := range part.Components[i].Tasks {
			part.taskComp[t] = i
		}
		for _, w := range part.Components[i].Workers {
			part.workerComp[w] = i
		}
	}
	return part
}

// fnvSep separates the task and worker sections of a fingerprint so that
// membership cannot shift between them without changing the hash.
const fnvSep = 0x9e3779b97f4a7c15
