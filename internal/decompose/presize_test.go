package decompose

import (
	"math/rand"
	"reflect"
	"testing"

	"rdbsc/internal/model"
)

// presizePairs builds a synthetic pair set of comps disjoint components,
// each a complete bipartite block of tPer tasks × wPer workers, with the
// pair order shuffled so grouping cannot rely on component-contiguous
// input. Returns the pairs plus the entity counts (the sizing hints).
func presizePairs(comps, tPer, wPer int, seed int64) ([]model.Pair, int, int) {
	var pairs []model.Pair
	for c := 0; c < comps; c++ {
		for t := 0; t < tPer; t++ {
			for w := 0; w < wPer; w++ {
				pairs = append(pairs, model.Pair{
					Task:   model.TaskID(c*tPer + t),
					Worker: model.WorkerID(c*wPer + w),
				})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs, comps * tPer, comps * wPer
}

// TestBuildSizedMatchesBuild pins that capacity hints are allocation-only:
// the sized rebuild produces a partition identical to the unsized one —
// same components, same membership maps — for accurate, over-, under-, and
// zero hints alike.
func TestBuildSizedMatchesBuild(t *testing.T) {
	pairs, nt, nw := presizePairs(7, 5, 9, 42)
	want := Build(pairs)
	for _, hint := range [][2]int{{nt, nw}, {0, 0}, {1, 1}, {10 * nt, 10 * nw}} {
		got := BuildSized(pairs, hint[0], hint[1])
		if !reflect.DeepEqual(got.Components, want.Components) {
			t.Fatalf("hints %v changed the components", hint)
		}
		if !reflect.DeepEqual(got.taskComp, want.taskComp) || !reflect.DeepEqual(got.workerComp, want.workerComp) {
			t.Fatalf("hints %v changed the membership maps", hint)
		}
	}
}

// TestRebuildPresizingAllocs guards the pre-sizing win: a stale rebuild
// with accurate dimension hints must allocate strictly less than the
// unsized path (which grows its maps through rehash doublings).
func TestRebuildPresizingAllocs(t *testing.T) {
	pairs, nt, nw := presizePairs(10, 8, 16, 7)
	unsized := testing.AllocsPerRun(10, func() {
		_ = BuildSized(pairs, 0, 0)
	})
	sized := testing.AllocsPerRun(10, func() {
		_ = BuildSized(pairs, nt, nw)
	})
	if sized >= unsized {
		t.Errorf("sized rebuild allocs = %.0f, want < unsized %.0f", sized, unsized)
	}
}

// BenchmarkRebuildPartition measures the stale-rebuild path without
// dimension hints; its allocs/op is the baseline the pre-sized variant
// below is guarded against.
func BenchmarkRebuildPartition(b *testing.B) {
	pairs, _, _ := presizePairs(10, 8, 16, 7)
	bld := NewBuilder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Invalidate()
		_ = bld.Partition(pairs)
	}
}

// BenchmarkRebuildPartitionSized is the same rebuild with instance
// dimensions supplied, the path the engine, core.Sharded, and the cluster
// coordinator use.
func BenchmarkRebuildPartitionSized(b *testing.B) {
	pairs, nt, nw := presizePairs(10, 8, 16, 7)
	bld := NewBuilder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Invalidate()
		_ = bld.PartitionSized(pairs, nt, nw)
	}
}
