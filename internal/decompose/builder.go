package decompose

import "rdbsc/internal/model"

// Builder maintains the component union-find incrementally under churn,
// the Section 7.2 companion for the grid index: insertions union the new
// entity's edges in O(α) each (the engine derives them from grid neighbor
// queries), while removals and replacements — which a union-find cannot
// undo — mark the builder stale so the next Partition call rebuilds from
// the full pair set. Either way, Partition always reflects exactly the
// pair set it is handed: the incremental path is a pure optimization,
// verified by the differential property tests against Build.
//
// A Builder is not safe for concurrent use.
type Builder struct {
	uf    *unionFind
	stale bool
}

// NewBuilder returns a builder whose first Partition call rebuilds from the
// pair set it is handed (a bulk load has no incremental history), after
// which AddEdge keeps it current across insertions.
func NewBuilder() *Builder {
	return &Builder{uf: newUnionFind(), stale: true}
}

// AddEdge records one new valid pair (t, w) incrementally. Only edges that
// are genuinely new — pairs introduced by a fresh task or worker insertion —
// may be added this way; anything that can remove edges (entity removal or
// replacement) must go through Invalidate instead.
func (b *Builder) AddEdge(t model.TaskID, w model.WorkerID) {
	if b.stale {
		return // a rebuild is already pending; unions now would be wasted
	}
	b.uf.union(taskNode(t), workerNode(w))
}

// Invalidate marks the incremental state stale: the next Partition call
// rebuilds the union-find from the pair set it is given. Call it whenever
// an entity is removed or replaced (its old edges cannot be subtracted from
// the union-find).
func (b *Builder) Invalidate() { b.stale = true }

// Stale reports whether the next Partition call will rebuild from scratch.
func (b *Builder) Stale() bool { return b.stale }

// Partition returns the component decomposition of pairs. When the builder
// is stale the union-find is rebuilt from pairs; otherwise the incremental
// unions accumulated via AddEdge are reused and only the grouping pass
// touches the pair set.
func (b *Builder) Partition(pairs []model.Pair) *Partition {
	return b.PartitionSized(pairs, 0, 0)
}

// PartitionSized is Partition with capacity hints: numTasks and numWorkers
// bound the live entity populations, pre-sizing the rebuild path's
// union-find and the grouping maps so a stale rebuild allocates each map
// once instead of growing it through rehash doublings. Hints never change
// the partition — only allocation behavior (zero hints mean unknown).
// Callers that know the instance dimensions (the engine, core.Sharded, the
// cluster coordinator) should prefer this entry point.
func (b *Builder) PartitionSized(pairs []model.Pair, numTasks, numWorkers int) *Partition {
	if b.stale {
		b.uf = newUnionFindSized(numTasks + numWorkers)
		for i := range pairs {
			b.uf.union(taskNode(pairs[i].Task), workerNode(pairs[i].Worker))
		}
		b.stale = false
	}
	return group(b.uf, pairs, numTasks, numWorkers)
}
