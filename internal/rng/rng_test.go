package rng

import (
	"math"
	"testing"

	"rdbsc/internal/geo"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a1 := New(7)
	a2 := New(7)
	s1 := a1.Split()
	s2 := a2.Split()
	for i := 0; i < 50; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatal("Split from identical parents must match")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2.5, 3.5)
		if v < 2.5 || v >= 3.5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if got := s.Uniform(5, 5); got != 5 {
		t.Errorf("degenerate Uniform = %v, want 5", got)
	}
	if got := s.Uniform(5, 4); got != 5 {
		t.Errorf("inverted Uniform = %v, want lo", got)
	}
}

func TestUniformMean(t *testing.T) {
	s := New(2)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Uniform(0, 1)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(3)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) must be false")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestTruncNormalRange(t *testing.T) {
	s := New(4)
	// Paper setting: confidence in [0.9, 1], mean 0.95, σ=0.02.
	for i := 0; i < 5000; i++ {
		v := s.TruncNormal(0.95, 0.02, 0.9, 1.0)
		if v < 0.9 || v > 1.0 {
			t.Fatalf("TruncNormal out of range: %v", v)
		}
	}
}

func TestTruncNormalMean(t *testing.T) {
	s := New(5)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s.TruncNormal(0.95, 0.02, 0.9, 1.0)
	}
	mean := sum / n
	if math.Abs(mean-0.95) > 0.005 {
		t.Errorf("TruncNormal mean = %v, want ≈0.95", mean)
	}
}

func TestTruncNormalFarTruncationStaysTotal(t *testing.T) {
	s := New(6)
	// Interval 50σ away from the mean: rejection will fail, fallback must
	// still return an in-range value.
	v := s.TruncNormal(0, 0.01, 10, 11)
	if v < 10 || v > 11 {
		t.Errorf("far TruncNormal = %v, want in [10,11]", v)
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	s := New(61)
	if got := s.TruncNormal(0.5, 0.1, 2, 2); got != 2 {
		t.Errorf("degenerate TruncNormal = %v, want 2", got)
	}
}

func TestUniformPointInRect(t *testing.T) {
	s := New(7)
	r := geo.NewRect(geo.Pt(0.2, 0.4), geo.Pt(0.6, 0.9))
	for i := 0; i < 2000; i++ {
		p := s.UniformPoint(r)
		if !r.Contains(p) {
			t.Fatalf("UniformPoint outside rect: %v", p)
		}
	}
}

func TestSkewedPointInUnitSquare(t *testing.T) {
	s := New(8)
	for i := 0; i < 5000; i++ {
		p := s.SkewedPoint(geo.Pt(0.5, 0.5), 0.2, 0.9)
		if !p.In(geo.UnitSquare) {
			t.Fatalf("SkewedPoint outside unit square: %v", p)
		}
	}
}

func TestSkewedPointClusters(t *testing.T) {
	// With 90% clustering at σ=0.2, the fraction within 0.3 of the center
	// should be well above the uniform baseline.
	s := New(9)
	inner := 0
	const n = 20000
	c := geo.Pt(0.5, 0.5)
	for i := 0; i < n; i++ {
		if s.SkewedPoint(c, 0.2, 0.9).Dist(c) < 0.3 {
			inner++
		}
	}
	frac := float64(inner) / n
	if frac < 0.6 {
		t.Errorf("clustered fraction = %v, want > 0.6", frac)
	}
}

func TestGaussianPointIn(t *testing.T) {
	s := New(10)
	r := geo.NewRect(geo.Pt(0, 0), geo.Pt(0.1, 0.1))
	for i := 0; i < 1000; i++ {
		p := s.GaussianPointIn(geo.Pt(0.05, 0.05), 0.5, r)
		if !r.Contains(p) {
			t.Fatalf("GaussianPointIn outside rect: %v", p)
		}
	}
}

func TestAngleRange(t *testing.T) {
	s := New(11)
	for i := 0; i < 2000; i++ {
		a := s.Angle()
		if a < 0 || a >= geo.TwoPi {
			t.Fatalf("Angle out of range: %v", a)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestExp(t *testing.T) {
	s := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", mean)
	}
	if !math.IsInf(s.Exp(0), 1) {
		t.Error("Exp(0) must be +Inf")
	}
}
