// Package rng provides the seeded randomness substrate used by the workload
// generators and the sampling solver. All randomness in the repository flows
// through *rng.Source so that every experiment is reproducible from a single
// seed.
//
// It implements the distributions required by Table 2 of the paper:
// uniform ranges, truncated Gaussians (worker confidences: mean
// (p_min+p_max)/2, σ=0.02, truncated to [p_min, p_max]), the SKEWED spatial
// distribution (90% of points in a Gaussian cluster centered at (0.5, 0.5)
// with σ=0.2), and assorted helpers.
package rng

import (
	"math"
	"math/rand"

	"rdbsc/internal/geo"
)

// Source is a deterministic random source. It wraps math/rand.Rand with the
// domain-specific distributions used across the repository. It is NOT safe
// for concurrent use; derive independent sources with Split for parallel
// work.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new, independent Source from s. The derived source's seed
// is drawn from s, so a run remains reproducible even when sub-generators
// are used.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform value in [lo, hi). When hi <= lo it returns lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + s.r.Float64()*(hi-lo)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Normal returns a Gaussian value with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// TruncNormal returns a Gaussian value with the given mean and standard
// deviation, truncated by rejection to [lo, hi]. It falls back to a uniform
// draw if 64 rejections fail (possible when [lo,hi] lies many σ away from
// the mean), which keeps the generator total.
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	for i := 0; i < 64; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return s.Uniform(lo, hi)
}

// UniformPoint returns a point uniform in rect.
func (s *Source) UniformPoint(rect geo.Rect) geo.Point {
	return geo.Pt(
		s.Uniform(rect.Min.X, rect.Max.X),
		s.Uniform(rect.Min.Y, rect.Max.Y),
	)
}

// SkewedPoint returns a point following the paper's SKEWED distribution in
// the unit square: with probability clusterFrac (the paper uses 0.9) the
// point is Gaussian around center with the given σ (paper: center (0.5,0.5),
// σ = 0.2), otherwise uniform; in both cases the result is clamped by
// re-drawing until it falls inside the unit square.
func (s *Source) SkewedPoint(center geo.Point, sigma, clusterFrac float64) geo.Point {
	if !s.Bernoulli(clusterFrac) {
		return s.UniformPoint(geo.UnitSquare)
	}
	for i := 0; i < 256; i++ {
		p := geo.Pt(s.Normal(center.X, sigma), s.Normal(center.Y, sigma))
		if p.In(geo.UnitSquare) {
			return p
		}
	}
	return s.UniformPoint(geo.UnitSquare)
}

// GaussianPointIn returns a Gaussian point around center with the given σ,
// redrawn until inside rect (uniform fallback after 256 rejections).
func (s *Source) GaussianPointIn(center geo.Point, sigma float64, rect geo.Rect) geo.Point {
	for i := 0; i < 256; i++ {
		p := geo.Pt(s.Normal(center.X, sigma), s.Normal(center.Y, sigma))
		if p.In(rect) {
			return p
		}
	}
	return s.UniformPoint(rect)
}

// Angle returns a uniform direction in [0, 2π).
func (s *Source) Angle() float64 { return s.r.Float64() * geo.TwoPi }

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Exp returns an exponential value with the given rate λ (mean 1/λ).
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return s.r.ExpFloat64() / rate
}

// Zipf returns a generator of Zipf-distributed ranks in [0, imax]: rank k is
// drawn with probability proportional to (1+k)^(-skew). The workload
// scenarios use it for skewed task popularity (a few hotspots attract most
// tasks). skew must be > 1; it panics otherwise, matching math/rand.NewZipf.
// The generator shares s's underlying stream, so interleaving it with other
// draws stays reproducible for a fixed call order.
func (s *Source) Zipf(skew float64, imax uint64) func() uint64 {
	z := rand.NewZipf(s.r, skew, 1, imax)
	if z == nil {
		panic("rng: Zipf requires skew > 1")
	}
	return z.Uint64
}
