// Package docscheck keeps the documentation graph intact: its test walks
// every tracked markdown file (README.md, MIGRATION.md, CHANGES.md,
// docs/*.md, ...) and fails when a relative link points at a file that
// does not exist. It runs as part of tier-1 (`go test ./...`) and as an
// explicit CI step, so a doc rename or deletion cannot silently orphan
// references.
package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repo's docs use inline links.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// RelativeLinks returns the relative (non-URL, non-anchor) link targets in
// a markdown document, with any #fragment stripped.
func RelativeLinks(markdown string) []string {
	var out []string
	for _, m := range linkRE.FindAllStringSubmatch(markdown, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external
		}
		if strings.HasPrefix(target, "#") {
			continue // intra-document anchor
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target != "" {
			out = append(out, target)
		}
	}
	return out
}

// excluded names are reference material imported from outside the repo
// (exemplar snippets and paper abstracts quote other projects' documents
// verbatim, links and all) — they are not part of the repo's own doc graph.
var excluded = map[string]bool{
	"SNIPPETS.md": true,
	"PAPERS.md":   true,
	"PAPER.md":    true,
	"ISSUE.md":    true,
}

// MarkdownFiles lists the repo's own markdown files under root: every *.md
// at the top level (minus the imported reference material) plus everything
// under docs/.
func MarkdownFiles(root string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(root, "*.md"))
	if err != nil {
		return nil, err
	}
	kept := files[:0]
	for _, f := range files {
		if !excluded[filepath.Base(f)] {
			kept = append(kept, f)
		}
	}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	return append(kept, docs...), nil
}

// CheckFile returns the broken relative links in one markdown file: each
// returned string is "<target>" for a target that does not resolve to an
// existing file or directory relative to the file's location.
func CheckFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var broken []string
	for _, target := range RelativeLinks(string(data)) {
		if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(target))); err != nil {
			broken = append(broken, target)
		}
	}
	return broken, nil
}
