package docscheck

import (
	"reflect"
	"testing"
)

func TestRelativeLinks(t *testing.T) {
	md := `
See [the runbook](OPERATIONS.md) and [tuning](SLO_TUNING.md#picking--slo-p99).
External: [paper](https://example.org/p.pdf), [mail](mailto:x@y.z).
Anchor-only: [above](#section). Sibling dir: [migration](../MIGRATION.md).
`
	got := RelativeLinks(md)
	want := []string{"OPERATIONS.md", "SLO_TUNING.md", "../MIGRATION.md"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RelativeLinks = %v, want %v", got, want)
	}
}

// TestRepoDocLinksResolve is the real gate: every relative link in every
// tracked markdown file must point at an existing file.
func TestRepoDocLinksResolve(t *testing.T) {
	files, err := MarkdownFiles("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found only %d markdown files from the repo root; wrong root?", len(files))
	}
	sawDocs := false
	for _, f := range files {
		broken, err := CheckFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range broken {
			t.Errorf("%s: broken relative link %q", f, target)
		}
		if len(broken) == 0 {
			sawDocs = true
		}
	}
	if !sawDocs {
		t.Error("no markdown file checked cleanly")
	}
}
