package hardness

import (
	"context"
	"math"
	"testing"

	"rdbsc/internal/core"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

func TestReduceBuildsValidInstance(t *testing.T) {
	r := Reduce([]int64{3, 1, 4, 1, 5})
	if err := r.In.Validate(); err != nil {
		t.Fatalf("reduced instance invalid: %v", err)
	}
	if len(r.In.Tasks) != 2 || len(r.In.Workers) != 5 {
		t.Fatalf("shape: %d tasks, %d workers", len(r.In.Tasks), len(r.In.Workers))
	}
	// Every worker must reach both tasks (the proof's premise).
	p := core.NewProblem(r.In)
	for _, w := range r.In.Workers {
		if p.Degree(w.ID) != 2 {
			t.Errorf("worker %d degree %d, want 2", w.ID, p.Degree(w.ID))
		}
	}
}

func TestReducePanicsOnBadInput(t *testing.T) {
	for _, bad := range [][]int64{nil, {0}, {-3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reduce(%v) should panic", bad)
				}
			}()
			Reduce(bad)
		}()
	}
}

// The heart of Appendix B: each worker's additive reliability term equals
// a_i / a_max, so per-task R sums are partition sums.
func TestConfidenceEncodesNumbers(t *testing.T) {
	nums := []int64{7, 2, 9, 4}
	r := Reduce(nums)
	for i, w := range r.In.Workers {
		got := objective.RTerm(w.Confidence) * float64(r.AMax)
		if math.Abs(got-float64(nums[i])) > 1e-9 {
			t.Errorf("worker %d encodes %v, want %d", i, got, nums[i])
		}
	}
}

func TestObjectiveCorrespondence(t *testing.T) {
	// For every partition of a small input: RDB-SC's min-R (rescaled)
	// equals min(S0, S1) = (total − discrepancy)/2.
	nums := []int64{3, 1, 4, 1, 5, 9}
	var total int64
	for _, a := range nums {
		total += a
	}
	r := Reduce(nums)
	for mask := 0; mask < 1<<uint(len(nums)); mask++ {
		side := make([]int, len(nums))
		for i := range nums {
			if mask&(1<<uint(i)) != 0 {
				side[i] = 1
			}
		}
		a := r.AssignmentFor(side)
		minR := r.MinRScaled(a)
		want := float64(total-Discrepancy(nums, side)) / 2
		if math.Abs(minR-want) > 1e-6 {
			t.Fatalf("mask %b: minR %v, want %v", mask, minR, want)
		}
	}
}

func TestBestPartition(t *testing.T) {
	tests := []struct {
		nums []int64
		want int64 // optimal discrepancy
	}{
		{[]int64{1, 1}, 0},
		{[]int64{3, 1, 1, 1}, 0},
		{[]int64{5, 1, 1}, 3},
		{[]int64{2}, 2},
		{[]int64{4, 5, 6, 7, 8}, 0}, // 4+5+6 = 7+8
	}
	for _, tc := range tests {
		side := BestPartition(tc.nums)
		if got := Discrepancy(tc.nums, side); got != tc.want {
			t.Errorf("BestPartition(%v) discrepancy = %d, want %d", tc.nums, got, tc.want)
		}
	}
}

func TestBestPartitionPanicsOnHugeInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for N > 24")
		}
	}()
	BestPartition(make([]int64, 25))
}

// Solving the reduced RDB-SC instance with the exhaustive oracle recovers
// an optimal partition: the reduction is answer-preserving.
func TestReductionRoundTripThroughSolver(t *testing.T) {
	for _, nums := range [][]int64{
		{3, 1, 4, 1, 5},
		{10, 9, 8, 7, 6, 5},
		{2, 2, 2, 2},
	} {
		r := Reduce(nums)
		p := core.NewProblem(r.In)
		ex := core.NewExhaustive()
		if !ex.CanSolve(p) {
			t.Fatalf("population too large for %v", nums)
		}
		res, err := ex.Solve(context.Background(), p, &core.SolveOptions{Source: rng.New(1)})
		if err != nil {
			t.Fatal(err)
		}
		side := r.PartitionOf(res.Assignment)
		got := Discrepancy(nums, side)
		want := Discrepancy(nums, BestPartition(nums))
		if got != want {
			t.Errorf("nums %v: solver discrepancy %d, optimal %d", nums, got, want)
		}
	}
}

// The approximation algorithms, run on reduced instances, become partition
// heuristics; they must at least produce valid partitions and reasonable
// discrepancies.
func TestApproximationsOnReducedInstances(t *testing.T) {
	nums := []int64{12, 7, 5, 9, 3, 8, 4}
	var total int64
	for _, a := range nums {
		total += a
	}
	r := Reduce(nums)
	p := core.NewProblem(r.In)
	for _, s := range []core.Solver{core.NewGreedy(), core.NewSampling(), core.NewDC()} {
		res, err := s.Solve(context.Background(), p, &core.SolveOptions{Source: rng.New(2)})
		if err != nil {
			t.Fatal(err)
		}
		side := r.PartitionOf(res.Assignment)
		d := Discrepancy(nums, side)
		if d > total {
			t.Errorf("%s: discrepancy %d exceeds total %d", s.Name(), d, total)
		}
	}
}
