package hardness

import (
	"rdbsc/internal/core"
)

// This file is the package's online face: the reduction machinery proves
// the problem NP-hard, and Score turns that same source of hardness — the
// size of the complete-assignment search space — into a per-instance
// difficulty estimate cheap enough to compute on every request. The
// adaptive solve tier (internal/adaptive) uses it to route components to
// solver lanes under a latency budget.

// Difficulty is an online difficulty estimate for one prepared problem (or
// component subproblem). LnPopulation is the log of the number of complete
// assignments, ln N = Σ_w ln deg(w) — the exact quantity the Section 5.2
// sample-size model and the exhaustive oracle's population cap are stated
// in, so thresholds expressed against it compose with both.
type Difficulty struct {
	// Pairs is the instance's valid-pair count.
	Pairs int
	// Workers is the number of workers with at least one valid pair.
	Workers int
	// LnPopulation is ln of the complete-assignment population; 0 means a
	// trivially enumerable instance (every connected worker has one
	// choice).
	LnPopulation float64
}

// Score computes the difficulty estimate for a prepared problem. It is
// O(workers) on top of the problem's existing pair index — cheap enough
// for the per-request hot path.
func Score(p *core.Problem) Difficulty {
	workers := p.ConnectedWorkers()
	degrees := make([]int, 0, len(workers))
	for _, wid := range workers {
		degrees = append(degrees, p.Degree(wid))
	}
	return Difficulty{
		Pairs:        len(p.Pairs),
		Workers:      len(workers),
		LnPopulation: LogPopulation(degrees),
	}
}

// LogPopulation returns ln N = Σ ln deg over the given worker candidate
// degrees, ignoring degree ≤ 1 workers (they contribute no choice). It is
// the hardness scale the rest of this package's estimates are expressed
// in; the computation is shared with the sampling solver's sample-size
// determination (core.LogPopulation).
func LogPopulation(degrees []int) float64 {
	return core.LogPopulation(degrees)
}
