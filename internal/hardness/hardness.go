// Package hardness makes the paper's NP-hardness proof executable
// (Lemma 3.2, Appendix B): it reduces the number partition problem to
// RDB-SC and maps RDB-SC answers back to partitions.
//
// Given positive integers A = {a_1..a_N}, the reduction builds two tasks
// and N workers, all collinear, with task periods so generous that every
// worker reaches both tasks (total_STD is constant zero in this geometry,
// so only the reliability goal matters). Worker i gets confidence
// p_i = 1 − e^(−a_i / a_max), so its additive reliability contribution is
// exactly −ln(1−p_i) = a_i / a_max. Maximizing the minimum per-task R is
// then exactly minimizing the partition discrepancy.
//
// The package also includes a small exact partitioner (used by tests and
// demos to verify the mapping) and the direct objective correspondence
// check.
package hardness

import (
	"math"

	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// Reduction holds the constructed RDB-SC instance together with the
// mapping metadata.
type Reduction struct {
	Numbers []int64
	AMax    int64
	In      *model.Instance
}

// Reduce builds the RDB-SC instance for a number-partition input. It
// panics on empty or non-positive inputs.
func Reduce(numbers []int64) *Reduction {
	if len(numbers) == 0 {
		panic("hardness: empty input")
	}
	var amax int64
	for _, a := range numbers {
		if a <= 0 {
			panic("hardness: numbers must be positive")
		}
		if a > amax {
			amax = a
		}
	}
	in := &model.Instance{
		Beta: 0.5,
		// Two tasks on the same line as all workers (Figure 21), with
		// periods long enough for every worker.
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(0, 0), Start: 0, End: 1e9},
			{ID: 1, Loc: geo.Pt(1, 0), Start: 0, End: 1e9},
		},
	}
	for i, a := range numbers {
		p := 1 - math.Exp(-float64(a)/float64(amax))
		in.Workers = append(in.Workers, model.Worker{
			ID:         model.WorkerID(i),
			Loc:        geo.Pt(0.5, 0), // on the segment between the tasks
			Speed:      1,
			Dir:        geo.FullCircle,
			Confidence: p,
		})
	}
	return &Reduction{Numbers: numbers, AMax: amax, In: in}
}

// PartitionOf maps an RDB-SC assignment back to a partition: side[i] is 0
// when worker i serves task 0, 1 otherwise (unassigned workers land on
// side 1, preserving totality).
func (r *Reduction) PartitionOf(a *model.Assignment) []int {
	side := make([]int, len(r.Numbers))
	for i := range side {
		if a.TaskOf(model.WorkerID(i)) == 0 {
			side[i] = 0
		} else {
			side[i] = 1
		}
	}
	return side
}

// Discrepancy returns |Σ_{side 0} a_i − Σ_{side 1} a_i| for a partition.
func Discrepancy(numbers []int64, side []int) int64 {
	var d int64
	for i, a := range numbers {
		if side[i] == 0 {
			d += a
		} else {
			d -= a
		}
	}
	if d < 0 {
		d = -d
	}
	return d
}

// MinRScaled returns the smaller of the two per-task additive reliability
// sums, rescaled by a_max — i.e. min(Σ_{side 0} a_i, Σ_{side 1} a_i) in the
// original integers (up to floating error). It demonstrates the objective
// correspondence of the proof: maximizing RDB-SC's min R is minimizing the
// partition discrepancy.
func (r *Reduction) MinRScaled(a *model.Assignment) float64 {
	sums := [2]float64{}
	for i := range r.Numbers {
		w := r.In.Workers[i]
		rterm := -math.Log1p(-w.Confidence) // = a_i / a_max by construction
		t := a.TaskOf(model.WorkerID(i))
		if t == 0 {
			sums[0] += rterm
		} else {
			sums[1] += rterm
		}
	}
	return math.Min(sums[0], sums[1]) * float64(r.AMax)
}

// BestPartition solves number partition exactly by meet-free enumeration
// (2^N), returning the side labels of one optimal partition. It panics for
// N > 24.
func BestPartition(numbers []int64) []int {
	n := len(numbers)
	if n > 24 {
		panic("hardness: exact partition limited to 24 numbers")
	}
	var total int64
	for _, a := range numbers {
		total += a
	}
	bestMask, bestD := 0, int64(math.MaxInt64)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var s int64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s += numbers[i]
			}
		}
		d := 2*s - total
		if d < 0 {
			d = -d
		}
		if d < bestD {
			bestD, bestMask = d, mask
		}
	}
	side := make([]int, n)
	for i := 0; i < n; i++ {
		if bestMask&(1<<uint(i)) != 0 {
			side[i] = 0
		} else {
			side[i] = 1
		}
	}
	return side
}

// AssignmentFor converts a partition into the corresponding RDB-SC
// assignment of the reduction.
func (r *Reduction) AssignmentFor(side []int) *model.Assignment {
	a := model.NewAssignment()
	for i, s := range side {
		a.Assign(model.WorkerID(i), model.TaskID(s))
	}
	return a
}
