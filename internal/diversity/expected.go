package diversity

import (
	"math"
	"sort"

	"rdbsc/internal/geo"
)

// ExpectedSD computes E[SD] over possible worlds (the Σ M_SD[j][k] of
// Lemma 3.1) in O(r²) time. angles[i] is worker i's ray angle and probs[i]
// its confidence p_i. The two slices must have equal length.
//
// The formulation sums, over every ordered worker pair (j, k), the entropy
// of the counter-clockwise angular span from ray j to ray k multiplied by
// the probability that j and k both succeed while every worker whose ray
// lies strictly between them (counter-clockwise) fails — exactly the
// marginal probability that this span is one of the realized angular gaps.
func ExpectedSD(angles, probs []float64) float64 {
	return ExpectedSDBuf(nil, angles, probs)
}

// ExpectedSDCubic is the paper's literal O(r³) evaluation of Σ M_SD[j][k]
// (Eq. 9): each matrix entry recomputes its in-between failure product.
// It exists for the ablation benchmark; ExpectedSD is the production path.
func ExpectedSDCubic(angles, probs []float64) float64 {
	r := len(angles)
	if r != len(probs) {
		panic("diversity: angles and probs length mismatch")
	}
	if r < 2 {
		return 0
	}
	ws := newSortedByAngle(angles, probs)
	var sum float64
	for j := 0; j < r; j++ {
		for step := 1; step < r; step++ {
			k := (j + step) % r
			span := geo.AngularDiff(ws.a[j], ws.a[k])
			prod := ws.p[j] * ws.p[k]
			for x := 1; x < step; x++ {
				prod *= 1 - ws.p[(j+x)%r]
			}
			sum += H(span/geo.TwoPi) * prod
		}
	}
	return sum
}

// ExpectedTD computes E[TD] over possible worlds (the Σ M_TD[j][k] of
// Lemma 3.1) in O(r²) time. arrivals[i] is worker i's arrival time within
// [start, end] and probs[i] its confidence.
//
// The boundaries are the sorted arrivals plus the two period endpoints,
// which are "realized" with probability one. Each boundary pair (a, b)
// contributes the entropy of its normalized length times the probability
// that a and b are realized while every boundary strictly between them
// fails.
func ExpectedTD(arrivals, probs []float64, start, end float64) float64 {
	return ExpectedTDBuf(nil, arrivals, probs, start, end)
}

// ExpectedTDCubic is the literal O(r³) evaluation of E[TD] (Eq. 10 shape),
// kept for the ablation benchmark.
func ExpectedTDCubic(arrivals, probs []float64, start, end float64) float64 {
	r := len(arrivals)
	if r != len(probs) {
		panic("diversity: arrivals and probs length mismatch")
	}
	total := end - start
	if total <= 0 || r == 0 {
		return 0
	}
	bs := newBoundaries(arrivals, probs, start, end)
	n := len(bs.t)
	var sum float64
	for a := 0; a < n-1; a++ {
		for b := a + 1; b < n; b++ {
			prod := bs.p[a] * bs.p[b]
			for x := a + 1; x < b; x++ {
				prod *= 1 - bs.p[x]
			}
			sum += H((bs.t[b]-bs.t[a])/total) * prod
		}
	}
	return sum
}

// ExpectedSTD computes E[STD] = β·E[SD] + (1−β)·E[TD] (Lemma 3.1) for one
// task. The three slices are parallel: worker i has ray angle angles[i],
// arrival arrivals[i], and confidence probs[i].
func ExpectedSTD(beta float64, angles, arrivals, probs []float64, start, end float64) float64 {
	return ExpectedSTDBuf(nil, beta, angles, arrivals, probs, start, end)
}

// sortedWorkers holds worker rays sorted by angle with parallel
// confidences.
type sortedWorkers struct {
	a []float64
	p []float64
}

func newSortedByAngle(angles, probs []float64) sortedWorkers {
	r := len(angles)
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	norm := make([]float64, r)
	for i, a := range angles {
		norm[i] = geo.NormalizeAngle(a)
	}
	sort.Slice(idx, func(x, y int) bool { return norm[idx[x]] < norm[idx[y]] })
	ws := sortedWorkers{a: make([]float64, r), p: make([]float64, r)}
	for i, id := range idx {
		ws.a[i] = norm[id]
		ws.p[i] = clampProb(probs[id])
	}
	return ws
}

// boundaries holds the temporal boundaries: start, sorted clamped arrivals,
// end — with realization probabilities (1 for the endpoints).
type boundaries struct {
	t []float64
	p []float64
}

func newBoundaries(arrivals, probs []float64, start, end float64) boundaries {
	r := len(arrivals)
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	clamped := make([]float64, r)
	for i, a := range arrivals {
		clamped[i] = math.Max(start, math.Min(end, a))
	}
	sort.Slice(idx, func(x, y int) bool { return clamped[idx[x]] < clamped[idx[y]] })
	bs := boundaries{t: make([]float64, 0, r+2), p: make([]float64, 0, r+2)}
	bs.t = append(bs.t, start)
	bs.p = append(bs.p, 1)
	for _, id := range idx {
		bs.t = append(bs.t, clamped[id])
		bs.p = append(bs.p, clampProb(probs[id]))
	}
	bs.t = append(bs.t, end)
	bs.p = append(bs.p, 1)
	return bs
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
