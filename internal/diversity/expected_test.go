package diversity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rdbsc/internal/geo"
)

// randomCase draws r worker angles, arrivals in [0,1], and confidences.
func randomCase(r *rand.Rand, n int) (angles, arrivals, probs []float64) {
	angles = make([]float64, n)
	arrivals = make([]float64, n)
	probs = make([]float64, n)
	for i := 0; i < n; i++ {
		angles[i] = r.Float64() * geo.TwoPi
		arrivals[i] = r.Float64()
		probs[i] = r.Float64()
	}
	return
}

func TestExpectedSDMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(9)
		angles, _, probs := randomCase(r, n)
		got := ExpectedSD(angles, probs)
		want := ExactExpectedSD(angles, probs)
		if !almostEq(got, want, 1e-9) {
			t.Fatalf("trial %d (n=%d): ExpectedSD = %v, oracle = %v", trial, n, got, want)
		}
	}
}

func TestExpectedTDMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(9)
		_, arrivals, probs := randomCase(r, n)
		got := ExpectedTD(arrivals, probs, 0, 1)
		want := ExactExpectedTD(arrivals, probs, 0, 1)
		if !almostEq(got, want, 1e-9) {
			t.Fatalf("trial %d (n=%d): ExpectedTD = %v, oracle = %v", trial, n, got, want)
		}
	}
}

func TestExpectedTDMatchesOracleShiftedPeriod(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(7)
		arrivals := make([]float64, n)
		probs := make([]float64, n)
		for i := range arrivals {
			arrivals[i] = 5 + 3*r.Float64()
			probs[i] = r.Float64()
		}
		got := ExpectedTD(arrivals, probs, 5, 8)
		want := ExactExpectedTD(arrivals, probs, 5, 8)
		if !almostEq(got, want, 1e-9) {
			t.Fatalf("trial %d: ExpectedTD = %v, oracle = %v", trial, got, want)
		}
	}
}

func TestExpectedSTDMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(8)
		angles, arrivals, probs := randomCase(r, n)
		beta := r.Float64()
		got := ExpectedSTD(beta, angles, arrivals, probs, 0, 1)
		want := ExactExpectedSTD(beta, angles, arrivals, probs, 0, 1)
		if !almostEq(got, want, 1e-9) {
			t.Fatalf("trial %d: ExpectedSTD = %v, oracle = %v", trial, got, want)
		}
	}
}

func TestQuadraticMatchesCubic(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(14)
		angles, arrivals, probs := randomCase(r, n)
		if sd2, sd3 := ExpectedSD(angles, probs), ExpectedSDCubic(angles, probs); !almostEq(sd2, sd3, 1e-9) {
			t.Fatalf("trial %d: SD quadratic %v vs cubic %v", trial, sd2, sd3)
		}
		if td2, td3 := ExpectedTD(arrivals, probs, 0, 1), ExpectedTDCubic(arrivals, probs, 0, 1); !almostEq(td2, td3, 1e-9) {
			t.Fatalf("trial %d: TD quadratic %v vs cubic %v", trial, td2, td3)
		}
	}
}

func TestExpectedWithCertainWorkers(t *testing.T) {
	// With all p=1 the expectation equals the deterministic diversity.
	angles := []float64{0, math.Pi / 2, math.Pi, 4.0}
	arrivals := []float64{0.2, 0.4, 0.6, 0.8}
	probs := []float64{1, 1, 1, 1}
	if got, want := ExpectedSD(angles, probs), SD(angles); !almostEq(got, want, 1e-12) {
		t.Errorf("ExpectedSD(all certain) = %v, want %v", got, want)
	}
	if got, want := ExpectedTD(arrivals, probs, 0, 1), TD(arrivals, 0, 1); !almostEq(got, want, 1e-12) {
		t.Errorf("ExpectedTD(all certain) = %v, want %v", got, want)
	}
}

func TestExpectedWithImpossibleWorkers(t *testing.T) {
	angles := []float64{0, math.Pi}
	arrivals := []float64{0.3, 0.7}
	probs := []float64{0, 0}
	if got := ExpectedSD(angles, probs); got != 0 {
		t.Errorf("ExpectedSD(all zero) = %v", got)
	}
	if got := ExpectedTD(arrivals, probs, 0, 1); got != 0 {
		t.Errorf("ExpectedTD(all zero) = %v", got)
	}
}

func TestExpectedSDSingleWorkerZero(t *testing.T) {
	if got := ExpectedSD([]float64{1.0}, []float64{0.9}); got != 0 {
		t.Errorf("single-worker E[SD] = %v, want 0", got)
	}
}

func TestExpectedTDSingleWorker(t *testing.T) {
	// One worker at midpoint with prob p: E[TD] = p·ln2.
	p := 0.73
	got := ExpectedTD([]float64{0.5}, []float64{p}, 0, 1)
	if !almostEq(got, p*math.Ln2, 1e-12) {
		t.Errorf("E[TD] = %v, want p·ln2 = %v", got, p*math.Ln2)
	}
}

func TestExpectedSDTwoWorkers(t *testing.T) {
	// Two opposite rays with probs p,q: E[SD] = p·q·ln2 (SD=ln2 iff both).
	p, q := 0.6, 0.8
	got := ExpectedSD([]float64{0, math.Pi}, []float64{p, q})
	if !almostEq(got, p*q*math.Ln2, 1e-12) {
		t.Errorf("E[SD] = %v, want pq·ln2 = %v", got, p*q*math.Ln2)
	}
}

// Lemma 4.2: adding a worker never decreases the expected diversity.
func TestMonotonicityLemma42(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(8)
		angles, arrivals, probs := randomCase(r, n)
		beta := r.Float64()
		before := ExpectedSTD(beta, angles, arrivals, probs, 0, 1)
		// Add one more random worker.
		angles2 := append(append([]float64(nil), angles...), r.Float64()*geo.TwoPi)
		arrivals2 := append(append([]float64(nil), arrivals...), r.Float64())
		probs2 := append(append([]float64(nil), probs...), r.Float64())
		after := ExpectedSTD(beta, angles2, arrivals2, probs2, 0, 1)
		if after < before-1e-9 {
			t.Fatalf("trial %d: E[STD] decreased from %v to %v on worker insertion", trial, before, after)
		}
	}
}

func TestExpectedSDPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		angles, _, probs := randomCase(r, n)
		base := ExpectedSD(angles, probs)
		perm := r.Perm(n)
		pa := make([]float64, n)
		pp := make([]float64, n)
		for i, j := range perm {
			pa[i], pp[i] = angles[j], probs[j]
		}
		return almostEq(ExpectedSD(pa, pp), base, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExpectedPanicsOnLengthMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"sd":      func() { ExpectedSD([]float64{1}, []float64{1, 2}) },
		"sdCubic": func() { ExpectedSDCubic([]float64{1}, []float64{1, 2}) },
		"td":      func() { ExpectedTD([]float64{1}, []float64{1, 2}, 0, 1) },
		"tdCubic": func() { ExpectedTDCubic([]float64{1}, []float64{1, 2}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestBoundsContainExpected(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 80; trial++ {
		n := 1 + r.Intn(8)
		angles, arrivals, probs := randomCase(r, n)
		beta := r.Float64()

		sd := ExpectedSD(angles, probs)
		if b := BoundsESD(angles, probs); !b.Contains(sd) {
			t.Fatalf("trial %d: E[SD]=%v outside bounds %+v", trial, sd, b)
		}
		td := ExpectedTD(arrivals, probs, 0, 1)
		if b := BoundsETD(arrivals, probs, 0, 1); !b.Contains(td) {
			t.Fatalf("trial %d: E[TD]=%v outside bounds %+v", trial, td, b)
		}
		std := ExpectedSTD(beta, angles, arrivals, probs, 0, 1)
		if b := BoundsESTD(beta, angles, arrivals, probs, 0, 1); !b.Contains(std) {
			t.Fatalf("trial %d: E[STD]=%v outside bounds %+v", trial, std, b)
		}
	}
}

func TestDeltaBoundsContainTrueDelta(t *testing.T) {
	r := rand.New(rand.NewSource(707))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(7)
		angles, arrivals, probs := randomCase(r, n)
		beta := r.Float64()
		before := ExpectedSTD(beta, angles, arrivals, probs, 0, 1)
		bBefore := BoundsESTD(beta, angles, arrivals, probs, 0, 1)

		angles2 := append(append([]float64(nil), angles...), r.Float64()*geo.TwoPi)
		arrivals2 := append(append([]float64(nil), arrivals...), r.Float64())
		probs2 := append(append([]float64(nil), probs...), r.Float64())
		after := ExpectedSTD(beta, angles2, arrivals2, probs2, 0, 1)
		bAfter := BoundsESTD(beta, angles2, arrivals2, probs2, 0, 1)

		db := DeltaBounds(bBefore, bAfter)
		if !db.Contains(after - before) {
			t.Fatalf("trial %d: ΔE[STD]=%v outside delta bounds %+v", trial, after-before, db)
		}
	}
}

func TestProbHelpers(t *testing.T) {
	if got := probAtLeastOne([]float64{0.5, 0.5}); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("probAtLeastOne = %v", got)
	}
	if got := probAtLeastTwo([]float64{0.5, 0.5}); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("probAtLeastTwo = %v", got)
	}
	if got := probAtLeastTwo([]float64{1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("probAtLeastTwo(certain) = %v", got)
	}
	if got := probAtLeastTwo([]float64{0.9}); !almostEq(got, 0, 1e-12) {
		t.Errorf("probAtLeastTwo(single) = %v", got)
	}
}
