// Package diversity implements the paper's quality measures: the spatial
// diversity SD (Eq. 3), the temporal diversity TD (Eq. 4), their weighted
// combination STD (Eq. 5), and — centrally — the expected diversity
// E[STD] under possible-worlds semantics (Eq. 6), reduced from the
// exponential possible-world sum to polynomial time via the diversity
// matrices of Section 3.2 (Eqs. 9–10, Lemma 3.1).
//
// Two polynomial evaluators are provided: the paper's O(r³) formulation
// (per-entry failure products) and an O(r²) formulation using running
// products. An exponential exact enumerator serves as the test oracle, and
// the lower/upper bounds of Section 4.3 support the greedy solver's
// pruning.
//
// All entropies use the natural logarithm with the convention 0·log 0 = 0.
package diversity

import (
	"math"
	"sort"

	"rdbsc/internal/geo"
)

// H returns the entropy term −q·ln(q), with H(0) = H(1) = 0 by convention.
// Fractions outside [0,1] (possible only through floating-point noise) are
// clamped.
func H(q float64) float64 {
	if q <= 0 || q >= 1 {
		return 0
	}
	return -q * math.Log(q)
}

// SD computes the realized spatial diversity (Eq. 3) of a set of ray angles
// drawn from the task location toward its workers: the entropy of the r
// angular gaps A_1..A_r between consecutive rays, which sum to 2π.
// Fewer than two rays yield zero diversity (a single photo direction gives
// no angular spread).
func SD(angles []float64) float64 {
	r := len(angles)
	if r < 2 {
		return 0
	}
	sorted := make([]float64, r)
	for i, a := range angles {
		sorted[i] = geo.NormalizeAngle(a)
	}
	sort.Float64s(sorted)
	var sd float64
	for i := 0; i < r; i++ {
		var gap float64
		if i == r-1 {
			gap = geo.TwoPi - sorted[r-1] + sorted[0]
		} else {
			gap = sorted[i+1] - sorted[i]
		}
		sd += H(gap / geo.TwoPi)
	}
	return sd
}

// TD computes the realized temporal diversity (Eq. 4) of worker arrival
// times within the task's valid period [start, end]: the entropy of the
// r+1 sub-interval lengths the arrivals induce. Arrivals are clamped to
// [start, end]. A degenerate period (end <= start) yields zero.
func TD(arrivals []float64, start, end float64) float64 {
	total := end - start
	if total <= 0 || len(arrivals) == 0 {
		return 0
	}
	sorted := make([]float64, len(arrivals))
	for i, a := range arrivals {
		sorted[i] = math.Max(start, math.Min(end, a))
	}
	sort.Float64s(sorted)
	var td float64
	prev := start
	for _, a := range sorted {
		td += H((a - prev) / total)
		prev = a
	}
	td += H((end - prev) / total)
	return td
}

// STD combines spatial and temporal diversity with the requester weight β
// (Eq. 5): β·SD + (1−β)·TD.
func STD(beta float64, angles, arrivals []float64, start, end float64) float64 {
	return beta*SD(angles) + (1-beta)*TD(arrivals, start, end)
}

// MaxSD returns the maximum achievable spatial diversity with r workers,
// ln(r), attained by evenly spread rays. Useful for normalization in
// reports.
func MaxSD(r int) float64 {
	if r < 2 {
		return 0
	}
	return math.Log(float64(r))
}

// MaxTD returns the maximum achievable temporal diversity with r workers,
// ln(r+1), attained by evenly spread arrivals.
func MaxTD(r int) float64 {
	if r < 1 {
		return 0
	}
	return math.Log(float64(r + 1))
}
