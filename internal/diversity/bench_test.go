package diversity

import (
	"math/rand"
	"testing"
)

func benchInput(n int) (angles, arrivals, probs []float64) {
	r := rand.New(rand.NewSource(1))
	angles = make([]float64, n)
	arrivals = make([]float64, n)
	probs = make([]float64, n)
	for i := 0; i < n; i++ {
		angles[i] = r.Float64() * 6.28
		arrivals[i] = r.Float64()
		probs[i] = r.Float64()
	}
	return
}

func BenchmarkSD(b *testing.B) {
	angles, _, _ := benchInput(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SD(angles)
	}
}

func BenchmarkTD(b *testing.B) {
	_, arrivals, _ := benchInput(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TD(arrivals, 0, 1)
	}
}

func BenchmarkExpectedSD(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		angles, _, probs := benchInput(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ExpectedSD(angles, probs)
			}
		})
	}
}

func BenchmarkExpectedSDCubic(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		angles, _, probs := benchInput(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ExpectedSDCubic(angles, probs)
			}
		})
	}
}

func BenchmarkExpectedTD(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		_, arrivals, probs := benchInput(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ExpectedTD(arrivals, probs, 0, 1)
			}
		})
	}
}

func BenchmarkExactOracle(b *testing.B) {
	angles, arrivals, probs := benchInput(12)
	b.Run("sd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ExactExpectedSD(angles, probs)
		}
	})
	b.Run("td", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ExactExpectedTD(arrivals, probs, 0, 1)
		}
	})
}

func BenchmarkBoundsESTD(b *testing.B) {
	angles, arrivals, probs := benchInput(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BoundsESTD(0.5, angles, arrivals, probs, 0, 1)
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "r=8"
	case 32:
		return "r=32"
	default:
		return "r=128"
	}
}
