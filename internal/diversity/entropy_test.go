package diversity

import (
	"math"
	"testing"

	"rdbsc/internal/geo"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestH(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{1, 0},
		{-0.5, 0},
		{1.5, 0},
		{0.5, 0.5 * math.Ln2},
	}
	for _, tc := range tests {
		if got := H(tc.in); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("H(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Maximum of -q ln q on (0,1) is at q = 1/e.
	if got := H(1 / math.E); !almostEq(got, 1/math.E, 1e-12) {
		t.Errorf("H(1/e) = %v, want 1/e", got)
	}
}

func TestSDEmptyAndSingle(t *testing.T) {
	if got := SD(nil); got != 0 {
		t.Errorf("SD(nil) = %v", got)
	}
	if got := SD([]float64{1.2}); got != 0 {
		t.Errorf("SD(single) = %v, want 0 (one ray gives the full 2π gap)", got)
	}
}

func TestSDUniformMaximizes(t *testing.T) {
	// r evenly spaced rays yield SD = ln r, the maximum.
	for r := 2; r <= 8; r++ {
		angles := make([]float64, r)
		for i := range angles {
			angles[i] = geo.TwoPi * float64(i) / float64(r)
		}
		if got := SD(angles); !almostEq(got, math.Log(float64(r)), 1e-9) {
			t.Errorf("r=%d: SD(uniform) = %v, want ln r = %v", r, got, math.Log(float64(r)))
		}
		if got := MaxSD(r); !almostEq(got, math.Log(float64(r)), 1e-12) {
			t.Errorf("MaxSD(%d) = %v", r, got)
		}
	}
}

func TestSDTwoOppositeRays(t *testing.T) {
	// Two opposite rays split the circle evenly: SD = ln 2.
	if got := SD([]float64{0, math.Pi}); !almostEq(got, math.Ln2, 1e-12) {
		t.Errorf("SD = %v, want ln 2", got)
	}
	// Two identical rays: gaps 0 and 2π, SD = 0.
	if got := SD([]float64{1, 1}); !almostEq(got, 0, 1e-12) {
		t.Errorf("SD(coincident) = %v, want 0", got)
	}
}

func TestSDInvariantUnderRotation(t *testing.T) {
	angles := []float64{0.3, 1.7, 2.9, 4.4}
	base := SD(angles)
	for _, rot := range []float64{0.5, 1.9, math.Pi, 5.0} {
		rotated := make([]float64, len(angles))
		for i, a := range angles {
			rotated[i] = geo.NormalizeAngle(a + rot)
		}
		if got := SD(rotated); !almostEq(got, base, 1e-9) {
			t.Errorf("rotation %v changed SD: %v vs %v", rot, got, base)
		}
	}
}

func TestSDNeverExceedsMax(t *testing.T) {
	angles := []float64{0.1, 0.2, 3.0, 4.0, 5.5}
	if got := SD(angles); got > MaxSD(len(angles))+1e-12 {
		t.Errorf("SD = %v exceeds ln r", got)
	}
	if got := SD(angles); got < 0 {
		t.Errorf("SD = %v negative", got)
	}
}

func TestTDEmptyAndDegenerate(t *testing.T) {
	if got := TD(nil, 0, 1); got != 0 {
		t.Errorf("TD(nil) = %v", got)
	}
	if got := TD([]float64{0.5}, 1, 1); got != 0 {
		t.Errorf("TD(degenerate period) = %v", got)
	}
	if got := TD([]float64{0.5}, 2, 1); got != 0 {
		t.Errorf("TD(reversed period) = %v", got)
	}
}

func TestTDMidpointSingle(t *testing.T) {
	// One arrival at the midpoint splits [0,1] into two halves: TD = ln 2.
	if got := TD([]float64{0.5}, 0, 1); !almostEq(got, math.Ln2, 1e-12) {
		t.Errorf("TD = %v, want ln 2", got)
	}
	// Arrival at the boundary gives a zero and a full interval: TD = 0.
	if got := TD([]float64{0}, 0, 1); !almostEq(got, 0, 1e-12) {
		t.Errorf("TD(boundary) = %v, want 0", got)
	}
}

func TestTDUniformMaximizes(t *testing.T) {
	for r := 1; r <= 6; r++ {
		arr := make([]float64, r)
		for i := range arr {
			arr[i] = float64(i+1) / float64(r+1)
		}
		want := math.Log(float64(r + 1))
		if got := TD(arr, 0, 1); !almostEq(got, want, 1e-9) {
			t.Errorf("r=%d: TD(uniform) = %v, want ln(r+1) = %v", r, got, want)
		}
		if got := MaxTD(r); !almostEq(got, want, 1e-12) {
			t.Errorf("MaxTD(%d) = %v", r, got)
		}
	}
}

func TestTDClampsOutOfRangeArrivals(t *testing.T) {
	// Arrivals outside the period behave as if on the boundary.
	if got := TD([]float64{-5, 0.5, 9}, 0, 1); !almostEq(got, math.Ln2, 1e-12) {
		t.Errorf("TD(clamped) = %v, want ln 2", got)
	}
}

func TestTDShiftAndScaleInvariance(t *testing.T) {
	// TD depends only on relative positions within the period.
	a := TD([]float64{0.25, 0.75}, 0, 1)
	b := TD([]float64{2.5, 7.5}, 0, 10)
	c := TD([]float64{102.5, 107.5}, 100, 110)
	if !almostEq(a, b, 1e-12) || !almostEq(b, c, 1e-12) {
		t.Errorf("TD not shift/scale invariant: %v %v %v", a, b, c)
	}
}

func TestSTDWeighting(t *testing.T) {
	angles := []float64{0, math.Pi}
	arrivals := []float64{0.5, 0.5}
	sd := SD(angles)
	td := TD(arrivals, 0, 1)
	if got := STD(1, angles, arrivals, 0, 1); !almostEq(got, sd, 1e-12) {
		t.Errorf("β=1: STD = %v, want SD=%v", got, sd)
	}
	if got := STD(0, angles, arrivals, 0, 1); !almostEq(got, td, 1e-12) {
		t.Errorf("β=0: STD = %v, want TD=%v", got, td)
	}
	if got := STD(0.3, angles, arrivals, 0, 1); !almostEq(got, 0.3*sd+0.7*td, 1e-12) {
		t.Errorf("β=0.3: STD = %v", got)
	}
}
