package diversity

// This file contains the exponential possible-worlds enumerator (Eq. 6
// evaluated literally). It is the correctness oracle for the polynomial
// evaluators in expected.go and is also usable directly for tiny worker
// sets. Enumeration over r workers costs O(2^r · r log r).

// maxOracleWorkers bounds the enumeration to keep it total; 2^24 worlds is
// already ~16M evaluations.
const maxOracleWorkers = 24

// ExactExpectedSD evaluates E[SD] by enumerating all 2^r possible worlds.
// It panics if r exceeds 24 workers.
func ExactExpectedSD(angles, probs []float64) float64 {
	return enumerate(probs, func(world []int) float64 {
		sub := make([]float64, len(world))
		for i, idx := range world {
			sub[i] = angles[idx]
		}
		return SD(sub)
	})
}

// ExactExpectedTD evaluates E[TD] by enumerating all 2^r possible worlds.
// It panics if r exceeds 24 workers.
func ExactExpectedTD(arrivals, probs []float64, start, end float64) float64 {
	return enumerate(probs, func(world []int) float64 {
		sub := make([]float64, len(world))
		for i, idx := range world {
			sub[i] = arrivals[idx]
		}
		return TD(sub, start, end)
	})
}

// ExactExpectedSTD evaluates E[STD] by full enumeration (test oracle).
func ExactExpectedSTD(beta float64, angles, arrivals, probs []float64, start, end float64) float64 {
	return beta*ExactExpectedSD(angles, probs) +
		(1-beta)*ExactExpectedTD(arrivals, probs, start, end)
}

// enumerate sums value(world)·Pr(world) over every subset of workers, where
// Pr(world) = Π_{i∈world} p_i · Π_{i∉world} (1−p_i) (Eq. 2).
func enumerate(probs []float64, value func(world []int) float64) float64 {
	r := len(probs)
	if r > maxOracleWorkers {
		panic("diversity: oracle limited to 24 workers")
	}
	var sum float64
	world := make([]int, 0, r)
	for mask := 0; mask < 1<<uint(r); mask++ {
		pr := 1.0
		world = world[:0]
		for i := 0; i < r; i++ {
			if mask&(1<<uint(i)) != 0 {
				pr *= clampProb(probs[i])
				world = append(world, i)
			} else {
				pr *= 1 - clampProb(probs[i])
			}
		}
		if pr == 0 {
			continue
		}
		sum += pr * value(world)
	}
	return sum
}
