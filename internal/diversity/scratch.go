package diversity

import (
	"math"
	"sort"

	"rdbsc/internal/geo"
	"rdbsc/internal/scratch"
)

// This file holds the scratch-threaded variants of the expected-diversity
// evaluators and bounds. They are the same algorithms as expected.go /
// bounds.go — same operations on the same values in the same order, so the
// results are bit-identical — with every temporary slice drawn from a
// *scratch.Buffers instead of make. A nil Buffers degrades to plain
// allocation, and the non-Buf entry points simply delegate with nil.

// SDBuf is SD with pooled scratch.
func SDBuf(bufs *scratch.Buffers, angles []float64) float64 {
	r := len(angles)
	if r < 2 {
		return 0
	}
	sorted := bufs.F64(r)
	for i, a := range angles {
		sorted[i] = geo.NormalizeAngle(a)
	}
	sort.Float64s(sorted)
	var sd float64
	for i := 0; i < r; i++ {
		var gap float64
		if i == r-1 {
			gap = geo.TwoPi - sorted[r-1] + sorted[0]
		} else {
			gap = sorted[i+1] - sorted[i]
		}
		sd += H(gap / geo.TwoPi)
	}
	bufs.PutF64(sorted)
	return sd
}

// TDBuf is TD with pooled scratch.
func TDBuf(bufs *scratch.Buffers, arrivals []float64, start, end float64) float64 {
	total := end - start
	if total <= 0 || len(arrivals) == 0 {
		return 0
	}
	sorted := bufs.F64(len(arrivals))
	for i, a := range arrivals {
		sorted[i] = math.Max(start, math.Min(end, a))
	}
	sort.Float64s(sorted)
	var td float64
	prev := start
	for _, a := range sorted {
		td += H((a - prev) / total)
		prev = a
	}
	td += H((end - prev) / total)
	bufs.PutF64(sorted)
	return td
}

// ExpectedSDBuf is ExpectedSD with pooled scratch.
func ExpectedSDBuf(bufs *scratch.Buffers, angles, probs []float64) float64 {
	r := len(angles)
	if r != len(probs) {
		panic("diversity: angles and probs length mismatch")
	}
	if r < 2 {
		return 0
	}
	ws := newSortedByAngleBuf(bufs, angles, probs)
	var sum float64
	for j := 0; j < r; j++ {
		pj := ws.p[j]
		if pj == 0 {
			continue
		}
		failBetween := 1.0
		for step := 1; step < r; step++ {
			k := j + step
			if k >= r {
				k -= r
			}
			span := geo.AngularDiff(ws.a[j], ws.a[k])
			sum += H(span/geo.TwoPi) * pj * ws.p[k] * failBetween
			failBetween *= 1 - ws.p[k]
			if failBetween == 0 {
				break
			}
		}
	}
	ws.release(bufs)
	return sum
}

// ExpectedTDBuf is ExpectedTD with pooled scratch.
func ExpectedTDBuf(bufs *scratch.Buffers, arrivals, probs []float64, start, end float64) float64 {
	r := len(arrivals)
	if r != len(probs) {
		panic("diversity: arrivals and probs length mismatch")
	}
	total := end - start
	if total <= 0 || r == 0 {
		return 0
	}
	bs := newBoundariesBuf(bufs, arrivals, probs, start, end)
	n := len(bs.t) // r + 2
	var sum float64
	for a := 0; a < n-1; a++ {
		pa := bs.p[a]
		if pa == 0 {
			continue
		}
		failBetween := 1.0
		for b := a + 1; b < n; b++ {
			length := bs.t[b] - bs.t[a]
			sum += H(length/total) * pa * bs.p[b] * failBetween
			failBetween *= 1 - bs.p[b]
			if failBetween == 0 {
				break
			}
		}
	}
	bs.release(bufs)
	return sum
}

// ExpectedSTDBuf is ExpectedSTD with pooled scratch.
func ExpectedSTDBuf(bufs *scratch.Buffers, beta float64, angles, arrivals, probs []float64, start, end float64) float64 {
	var sd, td float64
	if beta > 0 {
		sd = ExpectedSDBuf(bufs, angles, probs)
	}
	if beta < 1 {
		td = ExpectedTDBuf(bufs, arrivals, probs, start, end)
	}
	return beta*sd + (1-beta)*td
}

// BoundsESDBuf is BoundsESD with pooled scratch.
func BoundsESDBuf(bufs *scratch.Buffers, angles, probs []float64) Bounds {
	r := len(angles)
	if r < 2 {
		return Bounds{}
	}
	hi := SDBuf(bufs, angles)
	minPair := math.Inf(1)
	ws := newSortedByAngleBuf(bufs, angles, probs)
	for j := 0; j < r; j++ {
		k := (j + 1) % r
		d := geo.AngularDiff(ws.a[j], ws.a[k])
		v := H(d/geo.TwoPi) + H(1-d/geo.TwoPi)
		if v < minPair {
			minPair = v
		}
	}
	ws.release(bufs)
	lo := probAtLeastTwo(probs) * minPair
	return Bounds{Lo: lo, Hi: hi}
}

// BoundsETDBuf is BoundsETD with pooled scratch. The per-arrival singleton
// TD of the lower bound is written out inline (entropy of the arrival's two
// induced sub-intervals) so no one-element slices form; the float operation
// sequence matches TD([]float64{a}, start, end) exactly.
func BoundsETDBuf(bufs *scratch.Buffers, arrivals, probs []float64, start, end float64) Bounds {
	r := len(arrivals)
	if r == 0 || end <= start {
		return Bounds{}
	}
	hi := TDBuf(bufs, arrivals, start, end)
	total := end - start
	minSingle := math.Inf(1)
	for _, a := range arrivals {
		c := math.Max(start, math.Min(end, a))
		v := H((c-start)/total) + H((end-c)/total)
		if v < minSingle {
			minSingle = v
		}
	}
	lo := probAtLeastOne(probs) * minSingle
	return Bounds{Lo: lo, Hi: hi}
}

// BoundsESTDBuf is BoundsESTD with pooled scratch.
func BoundsESTDBuf(bufs *scratch.Buffers, beta float64, angles, arrivals, probs []float64, start, end float64) Bounds {
	sd := BoundsESDBuf(bufs, angles, probs)
	td := BoundsETDBuf(bufs, arrivals, probs, start, end)
	return Bounds{
		Lo: beta*sd.Lo + (1-beta)*td.Lo,
		Hi: beta*sd.Hi + (1-beta)*td.Hi,
	}
}

// newSortedByAngleBuf is newSortedByAngle with pooled scratch; release the
// result with sortedWorkers.release.
func newSortedByAngleBuf(bufs *scratch.Buffers, angles, probs []float64) sortedWorkers {
	r := len(angles)
	idx := bufs.Int(r)
	for i := range idx {
		idx[i] = i
	}
	norm := bufs.F64(r)
	for i, a := range angles {
		norm[i] = geo.NormalizeAngle(a)
	}
	sort.Slice(idx, func(x, y int) bool { return norm[idx[x]] < norm[idx[y]] })
	ws := sortedWorkers{a: bufs.F64(r), p: bufs.F64(r)}
	for i, id := range idx {
		ws.a[i] = norm[id]
		ws.p[i] = clampProb(probs[id])
	}
	bufs.PutF64(norm)
	bufs.PutInt(idx)
	return ws
}

func (ws sortedWorkers) release(bufs *scratch.Buffers) {
	bufs.PutF64(ws.a)
	bufs.PutF64(ws.p)
}

// newBoundariesBuf is newBoundaries with pooled scratch; release the result
// with boundaries.release.
func newBoundariesBuf(bufs *scratch.Buffers, arrivals, probs []float64, start, end float64) boundaries {
	r := len(arrivals)
	idx := bufs.Int(r)
	for i := range idx {
		idx[i] = i
	}
	clamped := bufs.F64(r)
	for i, a := range arrivals {
		clamped[i] = math.Max(start, math.Min(end, a))
	}
	sort.Slice(idx, func(x, y int) bool { return clamped[idx[x]] < clamped[idx[y]] })
	bs := boundaries{t: bufs.F64Cap(r + 2), p: bufs.F64Cap(r + 2)}
	bs.t = append(bs.t, start)
	bs.p = append(bs.p, 1)
	for _, id := range idx {
		bs.t = append(bs.t, clamped[id])
		bs.p = append(bs.p, clampProb(probs[id]))
	}
	bs.t = append(bs.t, end)
	bs.p = append(bs.p, 1)
	bufs.PutF64(clamped)
	bufs.PutInt(idx)
	return bs
}

func (bs boundaries) release(bufs *scratch.Buffers) {
	bufs.PutF64(bs.t)
	bufs.PutF64(bs.p)
}
