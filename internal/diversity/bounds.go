package diversity

// This file implements the lower/upper bounds on the expected diversity
// from Section 4.3 of the paper. The greedy solver uses them to bound the
// diversity *increase* of a candidate task-worker pair without evaluating
// the full expected diversity (Lemma 4.3 pruning).

// Bounds is a [Lo, Hi] interval.
type Bounds struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval (inclusive, with a small
// tolerance for floating-point noise).
func (b Bounds) Contains(v float64) bool {
	const tol = 1e-9
	return v >= b.Lo-tol && v <= b.Hi+tol
}

// BoundsESD returns lower and upper bounds on E[SD].
//
// Upper bound: by the monotonicity of SD in the worker set (Lemma 4.2),
// every possible world's SD is at most SD of the full set, so
// E[SD] ≤ SD(all angles).
//
// Lower bound: SD is zero in worlds with fewer than two successes; in any
// world with at least two successes, SD is at least the minimum SD over
// two-worker worlds (again by monotonicity). Hence
// E[SD] ≥ Pr[≥2 successes] · min_{j<k} SD({j,k}).
func BoundsESD(angles, probs []float64) Bounds {
	return BoundsESDBuf(nil, angles, probs)
}

// BoundsETD returns lower and upper bounds on E[TD].
//
// Upper bound: TD of the full arrival set (monotonicity, Lemma 4.2).
// Lower bound: TD is zero only when no worker succeeds (or all successful
// arrivals sit on the period boundary); any world containing worker j has
// TD at least TD({j}), so E[TD] ≥ Pr[≥1 success] · min_j TD({j}).
func BoundsETD(arrivals, probs []float64, start, end float64) Bounds {
	return BoundsETDBuf(nil, arrivals, probs, start, end)
}

// BoundsESTD combines the SD and TD bounds with weight β.
func BoundsESTD(beta float64, angles, arrivals, probs []float64, start, end float64) Bounds {
	return BoundsESTDBuf(nil, beta, angles, arrivals, probs, start, end)
}

// DeltaBounds bounds the increase of the expected diversity when the
// bounds move from before to after a worker insertion (Section 4.3):
//
//	lb_ΔD = lb_after − ub_before,  ub_ΔD = ub_after − lb_before.
func DeltaBounds(before, after Bounds) Bounds {
	return Bounds{Lo: after.Lo - before.Hi, Hi: after.Hi - before.Lo}
}

// probAtLeastOne returns 1 − Π(1−p_i).
func probAtLeastOne(probs []float64) float64 {
	allFail := 1.0
	for _, p := range probs {
		allFail *= 1 - clampProb(p)
	}
	return 1 - allFail
}

// probAtLeastTwo returns the probability that at least two workers succeed.
func probAtLeastTwo(probs []float64) float64 {
	allFail := 1.0
	for _, p := range probs {
		allFail *= 1 - clampProb(p)
	}
	exactlyOne := 0.0
	for i, pi := range probs {
		pi = clampProb(pi)
		if pi == 0 {
			continue
		}
		term := pi
		for j, pj := range probs {
			if j != i {
				term *= 1 - clampProb(pj)
			}
		}
		exactlyOne += term
	}
	return 1 - allFail - exactlyOne
}
