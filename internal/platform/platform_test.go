package platform

import (
	"math"
	"testing"

	"rdbsc/internal/core"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

func TestSimulatorRunsAndServesTasks(t *testing.T) {
	sim := New(Config{Horizon: 0.5, Seed: 1})
	m := sim.Run()
	if m.Rounds == 0 {
		t.Fatal("no rounds executed")
	}
	if m.TasksIssued == 0 {
		t.Fatal("no tasks issued")
	}
	if m.TasksServed == 0 {
		t.Fatal("no tasks served — simulation is disconnected")
	}
	if m.TotalSTD < 0 {
		t.Errorf("negative TotalSTD %v", m.TotalSTD)
	}
	if m.MinRel < 0 || m.MinRel > 1 {
		t.Errorf("MinRel %v outside [0,1]", m.MinRel)
	}
	if m.Coverage < 0 || m.Coverage > 1 {
		t.Errorf("Coverage %v outside [0,1]", m.Coverage)
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	a := New(Config{Horizon: 0.3, Seed: 9}).Run()
	b := New(Config{Horizon: 0.3, Seed: 9}).Run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSimulatorAnswersHaveSaneAccuracy(t *testing.T) {
	sim := New(Config{Horizon: 0.5, Seed: 2})
	m := sim.Run()
	if m.Answers == 0 {
		t.Skip("no answers produced on this seed")
	}
	if m.MeanAccuracy < 0 || m.MeanAccuracy > 1 {
		t.Errorf("MeanAccuracy %v outside [0,1]", m.MeanAccuracy)
	}
}

func TestLargerIntervalReducesDiversity(t *testing.T) {
	// Figure 18(b): total_STD decreases as t_interval grows, because each
	// task sees fewer assignment rounds. Use generous horizon to smooth
	// noise; allow a small tolerance for stochasticity.
	short := New(Config{Horizon: 2, TInterval: 1.0 / 60, Seed: 3}).Run()
	long := New(Config{Horizon: 2, TInterval: 4.0 / 60, Seed: 3}).Run()
	if long.TotalSTD > short.TotalSTD*1.1 {
		t.Errorf("t_interval=4min STD (%v) should not exceed 1min STD (%v)",
			long.TotalSTD, short.TotalSTD)
	}
}

func TestSimulatorWithDifferentSolvers(t *testing.T) {
	for _, s := range []core.Solver{core.NewGreedy(), core.NewSampling(), core.NewDC()} {
		m := New(Config{Horizon: 0.3, Seed: 4, Solver: s}).Run()
		if m.TasksServed == 0 {
			t.Errorf("%s: no tasks served", s.Name())
		}
	}
}

func TestCoverage(t *testing.T) {
	task := model.Task{ID: 1, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 1}
	_ = task
	tol := math.Pi / 2 // each answer covers half the circle
	if got := coverage(nil, tol); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	one := []Answer{{Angle: 0}}
	if got := coverage(one, tol); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("single answer coverage = %v, want 0.5", got)
	}
	two := []Answer{{Angle: 0}, {Angle: math.Pi}}
	if got := coverage(two, tol); math.Abs(got-1) > 1e-9 {
		t.Errorf("opposite answers coverage = %v, want 1", got)
	}
	overlapping := []Answer{{Angle: 0}, {Angle: 0.1}}
	if got := coverage(overlapping, tol); got > 0.55 {
		t.Errorf("overlapping coverage = %v, want ≈0.5", got)
	}
}

func TestDiversityOfAnswers(t *testing.T) {
	task := model.Task{ID: 1, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 1}
	answers := []Answer{
		{Angle: 0, Time: 0.25},
		{Angle: math.Pi, Time: 0.75},
	}
	got := DiversityOfAnswers(task, 0.5, answers)
	// SD = ln2 (opposite angles), TD = entropy of {0.25,0.5,0.25}.
	wantSD := math.Ln2
	wantTD := -(0.25*math.Log(0.25) + 0.5*math.Log(0.5) + 0.25*math.Log(0.25))
	want := 0.5*wantSD + 0.5*wantTD
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DiversityOfAnswers = %v, want %v", got, want)
	}
	if got := DiversityOfAnswers(task, 0.5, nil); got != 0 {
		t.Errorf("no answers diversity = %v", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if len(c.Sites) != 5 || c.NumWorkers != 10 {
		t.Errorf("defaults: %+v", c)
	}
	if c.TaskOpen != 0.25 {
		t.Errorf("TaskOpen default = %v, want 0.25 (15 min)", c.TaskOpen)
	}
	if c.Solver == nil {
		t.Error("nil default solver")
	}
}

func TestAnswersAccessor(t *testing.T) {
	sim := New(Config{Horizon: 0.5, Seed: 1})
	m := sim.Run()
	answers := sim.Answers()
	if len(answers) != m.Answers {
		t.Fatalf("Answers() returned %d, metrics counted %d", len(answers), m.Answers)
	}
	for i := 1; i < len(answers); i++ {
		a, b := answers[i-1], answers[i]
		if a.Task > b.Task || (a.Task == b.Task && a.Time > b.Time) {
			t.Fatalf("answers not ordered at %d: %+v then %+v", i, a, b)
		}
	}
}
