// Package platform simulates a live spatial-crowdsourcing deployment — the
// substitute for the paper's customized gMission platform (Section 8.4).
// It implements the incremental updating strategy of Figure 10: every
// t_interval the platform gathers the available workers and the open tasks,
// runs an RDB-SC solver over them while keeping the existing commitments,
// and dispatches the new assignments. Workers travel to their tasks, finish
// successfully with probability p_j (producing an answer whose accuracy
// follows the paper's Accuracy_ij = β·Δθ/π + (1−β)·Δt/(e−s) model), and
// return to the available pool.
//
// The simulator reports the paper's two quality measures aggregated over
// the whole run, plus the angular-coverage proxy that stands in for the 3D
// reconstruction showcase of Figures 19–20.
package platform

import (
	"context"
	"math"
	"sort"

	"rdbsc/internal/core"
	"rdbsc/internal/diversity"
	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

// Config parameterizes a simulation run.
type Config struct {
	// Sites are the task locations (the paper used 5 nearby sites). When
	// empty, five default sites in the unit square's center are used.
	Sites []geo.Point
	// NumWorkers is the size of the worker pool (paper: 10 active users).
	NumWorkers int
	// TaskOpen is each task's open duration in hours (paper: 15 minutes).
	TaskOpen float64
	// TInterval is the incremental update period in hours (paper: 1–4 min).
	TInterval float64
	// Horizon is the total simulated time in hours.
	Horizon float64
	// Beta is the requester diversity weight β.
	Beta float64
	// Solver performs each round's assignment (default: greedy, with
	// incremental candidate maintenance). SolverName selects one through
	// the registry instead when Solver is nil — e.g. "greedy-parallel" for
	// sharded exact-Δ evaluation, or "greedy-naive" for the per-round
	// full-recomputation baseline.
	Solver     core.Solver
	SolverName string
	// Decompose enables the engine's connected-component path (see
	// engine.Config.Decompose). In this driver the benefit is the
	// concurrent per-component solving: each round re-stamps every idle
	// worker's departure time to "now", which genuinely changes arrival
	// times, so components are almost always dirty and the result cache
	// rarely hits — unlike the stream driver, where workers keep their
	// check-in time and untouched islands skip re-solving entirely.
	Decompose bool
	// WorkerSpeedMin/Max bound worker speeds (default 0.4/0.8 — the paper's
	// sites are walkable within ~2 minutes).
	WorkerSpeedMin, WorkerSpeedMax float64
	// ConfMin/Max bound worker confidences (default 0.8/1.0, the
	// peer-rating substitute).
	ConfMin, ConfMax float64
	// AngleTolerance is the angular half-window one answer covers in the
	// coverage proxy (default π/8).
	AngleTolerance float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Sites) == 0 {
		c.Sites = []geo.Point{
			geo.Pt(0.45, 0.45), geo.Pt(0.55, 0.45), geo.Pt(0.5, 0.55),
			geo.Pt(0.42, 0.55), geo.Pt(0.58, 0.55),
		}
	}
	if c.NumWorkers <= 0 {
		c.NumWorkers = 10
	}
	if c.TaskOpen <= 0 {
		c.TaskOpen = 0.25
	}
	if c.TInterval <= 0 {
		c.TInterval = 1.0 / 60
	}
	if c.Horizon <= 0 {
		c.Horizon = 1
	}
	if c.Beta <= 0 || c.Beta > 1 {
		c.Beta = 0.5
	}
	if c.Solver == nil && c.SolverName == "" {
		c.Solver = core.NewGreedy()
	}
	if c.WorkerSpeedMin <= 0 {
		c.WorkerSpeedMin = 0.4
	}
	if c.WorkerSpeedMax < c.WorkerSpeedMin {
		c.WorkerSpeedMax = c.WorkerSpeedMin + 0.4
	}
	if c.ConfMin <= 0 {
		c.ConfMin = 0.8
	}
	if c.ConfMax < c.ConfMin || c.ConfMax > 1 {
		c.ConfMax = 1
	}
	if c.AngleTolerance <= 0 {
		c.AngleTolerance = math.Pi / 8
	}
	return c
}

// Answer is one completed task answer (a "photo").
type Answer struct {
	Task     model.TaskID
	Worker   model.WorkerID
	Time     float64 // completion time
	Angle    float64 // approach ray angle at the task
	Accuracy float64 // paper's Accuracy_ij in [0,1], 1 is perfect
}

// Metrics aggregates a run.
type Metrics struct {
	// MinRel is the minimum, over tasks that received assignments, of the
	// assigned reliability.
	MinRel float64
	// TotalSTD is the summed expected diversity over all tasks, computed
	// from assigned workers (Figure 18's total_STD).
	TotalSTD float64
	// Answers and TasksIssued/TasksServed count raw activity.
	Answers     int
	TasksIssued int
	TasksServed int
	// Rounds is the number of incremental update rounds executed.
	Rounds int
	// MeanAccuracy averages the paper's per-answer accuracy.
	MeanAccuracy float64
	// Coverage is the mean angular coverage (fraction of the 2π view circle
	// within AngleTolerance of some answer) over served tasks — the
	// 3D-reconstruction showcase proxy.
	Coverage float64
}

// liveTask is a task instance during simulation.
type liveTask struct {
	task    model.Task
	site    int
	workers []model.WorkerID // committed workers (travelling)
	state   *objective.TaskState
	answers []Answer
}

// liveWorker is a worker during simulation.
type liveWorker struct {
	worker   model.Worker
	busyTill float64
	target   model.TaskID // NoTask when idle
}

// Simulator runs the incremental platform loop. Each round synchronizes
// the engine with the live state — available workers (with their current
// departure time) and open tasks — and re-solves through it, so the grid
// index and the prepared problem are maintained incrementally instead of
// being rebuilt from scratch every tick.
type Simulator struct {
	cfg Config
	src *rng.Source
	eng *engine.Engine

	workers  []*liveWorker
	open     map[model.TaskID]*liveTask
	done     []*liveTask
	nextID   model.TaskID
	solveErr error
}

// Err returns the terminal solver error that stopped the run early (nil
// for a clean run). Infeasible and interrupted rounds are not errors.
func (s *Simulator) Err() error { return s.solveErr }

// New prepares a simulator.
func New(cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	s := &Simulator{
		cfg: cfg,
		src: rng.New(cfg.Seed),
		eng: engine.New(engine.Config{
			Beta:       cfg.Beta,
			Opt:        model.Options{WaitAllowed: true},
			Solver:     cfg.Solver,
			SolverName: cfg.SolverName,
			Decompose:  cfg.Decompose,
		}),
		open: make(map[model.TaskID]*liveTask),
	}
	for j := 0; j < cfg.NumWorkers; j++ {
		s.workers = append(s.workers, &liveWorker{
			worker: model.Worker{
				ID:         model.WorkerID(j),
				Loc:        s.src.GaussianPointIn(geo.Pt(0.5, 0.5), 0.1, geo.UnitSquare),
				Speed:      s.src.Uniform(cfg.WorkerSpeedMin, cfg.WorkerSpeedMax),
				Dir:        geo.FullCircle,
				Confidence: s.src.Uniform(cfg.ConfMin, cfg.ConfMax),
			},
			target: model.NoTask,
		})
	}
	return s
}

// Answers returns every collected answer, ordered by task then completion
// time. Valid after Run; the platform's answer-aggregation step (package
// aggregate) consumes this.
func (s *Simulator) Answers() []Answer {
	all := append(append([]*liveTask(nil), s.done...), s.openSlice()...)
	sort.Slice(all, func(i, j int) bool { return all[i].task.ID < all[j].task.ID })
	var out []Answer
	for _, lt := range all {
		out = append(out, lt.answers...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Time < out[j].Time
	})
	return out
}

// Run executes the simulation and returns the aggregated metrics.
func (s *Simulator) Run() Metrics { return s.RunContext(context.Background()) }

// RunContext executes the simulation until the horizon or until ctx is
// done, whichever comes first, and returns the metrics accumulated so far.
func (s *Simulator) RunContext(ctx context.Context) Metrics {
	var m Metrics
	for now := 0.0; now < s.cfg.Horizon && ctx.Err() == nil && s.solveErr == nil; now += s.cfg.TInterval {
		s.issueTasks(now, &m)
		s.completeArrivals(now, &m)
		s.expireTasks(now)
		s.assignRound(ctx, now, &m)
		m.Rounds++
	}
	s.completeArrivals(s.cfg.Horizon+1, &m) // flush in-flight workers
	s.expireTasks(math.Inf(1))
	return s.finalize(m)
}

// issueTasks keeps one open task per site (a new one opens when the
// previous expires), as in the paper's five-site deployment.
func (s *Simulator) issueTasks(now float64, m *Metrics) {
	active := make(map[int]bool)
	for _, lt := range s.open {
		active[lt.site] = true
	}
	for i, site := range s.cfg.Sites {
		if active[i] {
			continue
		}
		t := model.Task{
			ID:    s.nextID,
			Loc:   site,
			Start: now,
			End:   now + s.cfg.TaskOpen,
		}
		s.nextID++
		s.open[t.ID] = &liveTask{
			task:  t,
			site:  i,
			state: objective.NewTaskState(t, s.cfg.Beta),
		}
		s.eng.UpsertTask(t)
		m.TasksIssued++
	}
}

// completeArrivals resolves workers whose travel finished by now: with
// probability p they produce an answer; either way they become available at
// their arrival location.
func (s *Simulator) completeArrivals(now float64, m *Metrics) {
	for _, lw := range s.workers {
		if lw.target == model.NoTask || lw.busyTill > now {
			continue
		}
		lt := s.open[lw.target]
		if lt != nil && s.src.Bernoulli(lw.worker.Confidence) {
			ans := s.makeAnswer(lt, lw)
			lt.answers = append(lt.answers, ans)
			m.Answers++
		}
		if lt != nil {
			lw.worker.Loc = lt.task.Loc
		}
		lw.target = model.NoTask
	}
}

// makeAnswer synthesizes an answer with the paper's accuracy model: the
// angular error Δθ and timing error Δt are the deviations of the actual
// photo from the ideal (we draw a small angular deviation; the timing error
// is the arrival offset from the period start).
func (s *Simulator) makeAnswer(lt *liveTask, lw *liveWorker) Answer {
	angle := model.ApproachAngle(lt.task, lw.worker)
	dTheta := math.Abs(s.src.Normal(0, math.Pi/16))
	if dTheta > math.Pi {
		dTheta = math.Pi
	}
	dT := math.Max(0, math.Min(lw.busyTill-lt.task.Start, lt.task.Duration()))
	acc := 1 - (s.cfg.Beta*dTheta/math.Pi + (1-s.cfg.Beta)*dT/lt.task.Duration())
	return Answer{
		Task:     lt.task.ID,
		Worker:   lw.worker.ID,
		Time:     lw.busyTill,
		Angle:    geo.NormalizeAngle(angle + dTheta),
		Accuracy: acc,
	}
}

// expireTasks retires tasks whose period ended.
func (s *Simulator) expireTasks(now float64) {
	for id, lt := range s.open {
		if lt.task.End <= now {
			s.done = append(s.done, lt)
			delete(s.open, id)
			s.eng.RemoveTask(id)
		}
	}
}

// assignRound is line 6 of Figure 10: assign the available workers to the
// opening tasks, considering current commitments (each task's objective
// state already contains its committed workers, so the solver's incremental
// additions compound correctly). The engine carries the open tasks between
// rounds; only worker availability (and departure time) is churned here.
func (s *Simulator) assignRound(ctx context.Context, now float64, m *Metrics) {
	avail := 0
	for _, lw := range s.workers {
		if lw.target == model.NoTask {
			w := lw.worker
			w.Depart = now
			s.eng.UpsertWorker(w)
			avail++
		} else {
			s.eng.RemoveWorker(lw.worker.ID)
		}
	}
	if avail == 0 || len(s.open) == 0 {
		return
	}

	// The live per-task states seed the solve so new pairs are chosen
	// "considering A and S_c" (Figure 10, line 6): committed workers and
	// received answers shape every Δ-objective. Greedy honors the seeds;
	// the other solvers assign from scratch over the available workers,
	// which the paper's experiments also did for SAMPLING/D&C.
	seed := make(map[model.TaskID]*objective.TaskState, len(s.open))
	for id, lt := range s.open {
		if lt.state.Len() > 0 {
			seed[id] = lt.state
		}
	}
	res, err := s.eng.Solve(ctx, &core.SolveOptions{
		Source:     s.src.Split(),
		SeedStates: seed,
	})
	if err != nil {
		// Benign: infeasible rounds (no reachable pairs this tick),
		// interrupted rounds (the run winds down via ctx). Terminal errors
		// — a misconfigured solver, e.g. exhaustive over its population
		// cap — stop the run and surface through Err.
		if core.IsTerminal(err) {
			s.solveErr = err
		}
		return
	}
	// Apply the new pairs in worker-ID order: diversity updates are
	// floating-point sums, so application order must be deterministic.
	type wt struct {
		w model.WorkerID
		t model.TaskID
	}
	var pairs []wt
	res.Assignment.Workers(func(wid model.WorkerID, tid model.TaskID) {
		pairs = append(pairs, wt{wid, tid})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].w < pairs[j].w })
	for _, pr := range pairs {
		wid, tid := pr.w, pr.t
		lw := s.workerByID(wid)
		lt := s.open[tid]
		if lw == nil || lt == nil {
			continue
		}
		w := lw.worker
		w.Depart = now
		arr, ok := model.Arrival(lt.task, w, model.Options{WaitAllowed: true})
		if !ok {
			continue
		}
		lw.target = tid
		lw.busyTill = arr
		lt.workers = append(lt.workers, wid)
		lt.state.Add(wid, w.Confidence, arr, model.ApproachAngle(lt.task, w))
	}
}

func (s *Simulator) workerByID(id model.WorkerID) *liveWorker {
	for _, lw := range s.workers {
		if lw.worker.ID == id {
			return lw
		}
	}
	return nil
}

// finalize aggregates metrics over all retired and still-open tasks, in
// task-ID order so floating-point totals are reproducible (expiration
// handling drains a map, which would otherwise randomize summation order).
func (s *Simulator) finalize(m Metrics) Metrics {
	all := append(append([]*liveTask(nil), s.done...), s.openSlice()...)
	sort.Slice(all, func(i, j int) bool { return all[i].task.ID < all[j].task.ID })
	minR := math.Inf(1)
	var accSum float64
	var covSum float64
	for _, lt := range all {
		if lt.state.Len() == 0 {
			continue
		}
		m.TasksServed++
		m.TotalSTD += lt.state.ESTD()
		if r := lt.state.R(); r < minR {
			minR = r
		}
		covSum += coverage(lt.answers, s.cfg.AngleTolerance)
	}
	for _, lt := range all {
		for _, a := range lt.answers {
			accSum += a.Accuracy
		}
	}
	if m.TasksServed > 0 {
		m.MinRel = objective.RelFromR(minR)
		m.Coverage = covSum / float64(m.TasksServed)
	}
	if m.Answers > 0 {
		m.MeanAccuracy = accSum / float64(m.Answers)
	}
	return m
}

func (s *Simulator) openSlice() []*liveTask {
	ids := make([]model.TaskID, 0, len(s.open))
	for id := range s.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*liveTask, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.open[id])
	}
	return out
}

// coverage returns the fraction of the 2π view circle within tol of some
// answer's angle — the 3D-reconstruction proxy. It merges the per-answer
// arcs and measures their union.
func coverage(answers []Answer, tol float64) float64 {
	if len(answers) == 0 {
		return 0
	}
	type arc struct{ lo, hi float64 } // hi may exceed 2π for wrapping arcs
	arcs := make([]arc, 0, len(answers))
	for _, a := range answers {
		lo := geo.NormalizeAngle(a.Angle - tol)
		arcs = append(arcs, arc{lo, lo + 2*tol})
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].lo < arcs[j].lo })
	var covered float64
	curLo, curHi := arcs[0].lo, arcs[0].hi
	for _, a := range arcs[1:] {
		if a.lo <= curHi {
			if a.hi > curHi {
				curHi = a.hi
			}
			continue
		}
		covered += curHi - curLo
		curLo, curHi = a.lo, a.hi
	}
	covered += curHi - curLo
	// Wrapping arcs double-count the seam; clamp.
	if covered > geo.TwoPi {
		covered = geo.TwoPi
	}
	return covered / geo.TwoPi
}

// DiversityOfAnswers computes the realized STD of a task's answers — the
// quality actually delivered (distinct from the expected STD used during
// assignment). Exposed for reports and the landmark example.
func DiversityOfAnswers(task model.Task, beta float64, answers []Answer) float64 {
	angles := make([]float64, len(answers))
	times := make([]float64, len(answers))
	for i, a := range answers {
		angles[i] = a.Angle
		times[i] = a.Time
	}
	return diversity.STD(beta, angles, times, task.Start, task.End)
}
