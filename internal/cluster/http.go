package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"rdbsc/internal/adaptive"
	"rdbsc/internal/applyloop"
	"rdbsc/internal/benchreport"
	"rdbsc/internal/core"
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
	"rdbsc/internal/serve"
)

// The cluster exposes the same /v1 surface as internal/serve — same wire
// types (serve.TaskJSON, serve.WorkerJSON, serve.SolveRequest), same
// status-code semantics (429 on a full shard queue, 503 while shutting
// down, 202 when a request context ends before its batch applies) — so
// rdbsc-loadgen and every other client drive a 1-shard serve server and an
// N-shard cluster identically. /v1/stats adds the per-shard breakdown and
// the coordinator's escalation metrics.

func (c *Cluster) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", c.handleUpsertTasks)
	mux.HandleFunc("DELETE /v1/tasks/{id}", c.handleRemoveTask)
	mux.HandleFunc("POST /v1/workers", c.handleUpsertWorkers)
	mux.HandleFunc("DELETE /v1/workers/{id}", c.handleRemoveWorker)
	mux.HandleFunc("POST /v1/solve", c.handleSolve)
	mux.HandleFunc("GET /v1/assignment", c.handleAssignment)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func enqueueStatus(err error) int {
	if errors.Is(err, applyloop.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusTooManyRequests
}

// enqueueAndWait mirrors the serve layer's handler contract over the
// routed shard queues.
func (c *Cluster) enqueueAndWait(w http.ResponseWriter, r *http.Request, muts []engine.Mutation) {
	reply := make(chan applyloop.Ack, len(muts))
	for i, m := range muts {
		if err := c.Enqueue(m, reply); err != nil {
			writeJSON(w, enqueueStatus(err), map[string]any{"error": err.Error(), "enqueued": i})
			return
		}
	}
	var changed, coalesced int
	var version uint64
	var ackErr error
	for n := 0; n < len(muts); n++ {
		select {
		case ack := <-reply:
			if ack.Err != nil {
				ackErr = ack.Err
			}
			if ack.Changed {
				changed++
			}
			if ack.Coalesced {
				coalesced++
			}
			if ack.Version > version {
				version = ack.Version
			}
		case <-r.Context().Done():
			writeJSON(w, http.StatusAccepted, map[string]any{
				"queued": len(muts),
				"note":   "request ended before the batch applied; the mutations remain queued",
			})
			return
		}
	}
	if ackErr != nil {
		// The shard's durability append failed, so its batch was dropped
		// before reaching the engine: report the loss loudly (503).
		writeError(w, http.StatusServiceUnavailable, ackErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted":  len(muts),
		"applied":   len(muts) - coalesced,
		"changed":   changed,
		"coalesced": coalesced,
		"version":   version,
	})
}

func (c *Cluster) handleUpsertTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := serve.DecodeBody[serve.TaskJSON](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	muts := make([]engine.Mutation, 0, len(tasks))
	for _, tj := range tasks {
		t := tj.ToModel()
		if err := t.Valid(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		muts = append(muts, engine.TaskUpsert(t))
	}
	c.enqueueAndWait(w, r, muts)
}

func (c *Cluster) handleUpsertWorkers(w http.ResponseWriter, r *http.Request) {
	workers, err := serve.DecodeBody[serve.WorkerJSON](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	muts := make([]engine.Mutation, 0, len(workers))
	for _, wj := range workers {
		wk := wj.ToModel()
		if err := wk.Valid(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		muts = append(muts, engine.WorkerUpsert(wk))
	}
	c.enqueueAndWait(w, r, muts)
}

func (c *Cluster) handleRemove(w http.ResponseWriter, r *http.Request, mut engine.Mutation) {
	reply := make(chan applyloop.Ack, 1)
	if err := c.Enqueue(mut, reply); err != nil {
		writeError(w, enqueueStatus(err), err)
		return
	}
	select {
	case ack := <-reply:
		if ack.Err != nil {
			writeError(w, http.StatusServiceUnavailable, ack.Err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"removed": ack.Changed, "coalesced": ack.Coalesced, "version": ack.Version,
		})
	case <-r.Context().Done():
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": 1})
	}
}

func (c *Cluster) handleRemoveTask(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.handleRemove(w, r, engine.TaskRemoval(model.TaskID(id)))
}

func (c *Cluster) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.handleRemove(w, r, engine.WorkerRemoval(model.WorkerID(id)))
}

// SolveResponse is the cluster's /v1/solve answer: the serve layer's
// response shape (so clients parse both identically) plus the
// coordinator-plane escalation fields.
type SolveResponse struct {
	serve.SolveResponse
	EscalatedComponents int  `json:"escalated_components"`
	InteriorComponents  int  `json:"interior_components"`
	CrossShardPairs     int  `json:"cross_shard_pairs"`
	AssemblyReused      bool `json:"assembly_reused"`
}

func (c *Cluster) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req serve.SolveRequest
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	// Assemble first so the adaptive plan and the cache are both consulted
	// against the exact shard version vector and routing generation the
	// solve would run under.
	a, reused := c.assemble()

	// The adaptive tier handles only requests that name no solver; an
	// explicit solver always bypasses it. No core.Sharded wrapping on
	// either path: the coordinator itself decomposes the assembled problem
	// by connected components and hands each one to the solver — which for
	// the adaptive dispatcher means per-component lane selection.
	var solver core.Solver
	var dispatcher *adaptive.Solver
	adaptiveActive := c.adapt != nil && req.Solver == ""
	if adaptiveActive {
		plan := c.adapt.PlanRequest(a.shape)
		if plan.OverBudget {
			if resp, ok := c.degradeResponse(); ok {
				c.adapt.NoteDegraded(true)
				writeJSON(w, http.StatusOK, resp)
				return
			}
			c.adapt.NoteDegraded(false)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				errors.New("predicted solve time exceeds the SLO budget and no assignment within the staleness bound exists"))
			return
		}
		dispatcher = adaptive.NewSolver(c.adapt)
		solver = dispatcher
	} else {
		name := req.Solver
		if name == "" {
			name = c.cfg.SolverName
		}
		named, err := core.NewByName(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		solver = named
	}

	timeout := c.cfg.SolveTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	key := serve.SolveCacheKey{
		Fingerprint: solveFingerprint(a.versions, a.routeGen),
		Solver:      solver.Name(),
		Seed:        req.Seed,
	}
	if v, ok := c.cache.Get(key, a.versions, a.routeGen); ok {
		resp := *v.(*SolveResponse) // shallow copy; the cached value is never mutated
		resp.Cached = true
		c.lastRes.Store(&resp)
		writeJSON(w, http.StatusOK, &resp)
		return
	}

	start := time.Now()
	res, info, err := c.solveWith(ctx, a, reused, solver, &core.SolveOptions{Seed: req.Seed})
	elapsed := time.Since(start)

	c.solves.Add(1)
	partial := errors.Is(err, core.ErrInterrupted)
	if partial {
		c.partials.Add(1)
	}
	if err != nil && !partial {
		if errors.Is(err, core.ErrPopulationTooLarge) {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		c.solveErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	c.statsMu.Lock()
	c.solveStats = c.solveStats.Add(res.Stats)
	c.solveLatMS[c.latN%len(c.solveLatMS)] = float64(elapsed) / float64(time.Millisecond)
	c.latN++
	c.statsMu.Unlock()

	pairs := make([]serve.AssignedPair, 0, res.Assignment.Len())
	res.Assignment.Workers(func(wid model.WorkerID, tid model.TaskID) {
		pairs = append(pairs, serve.AssignedPair{Worker: wid, Task: tid})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Worker < pairs[j].Worker })

	resp := &SolveResponse{
		SolveResponse: serve.SolveResponse{
			Version:         info.Version,
			Solver:          solver.Name(),
			Seed:            req.Seed,
			Partial:         partial,
			Feasible:        len(pairs) > 0,
			ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
			AssignedWorkers: res.Eval.AssignedWorkers,
			AssignedTasks:   res.Eval.AssignedTasks,
			MinReliability:  res.Eval.MinRel,
			TotalDiversity:  res.Eval.TotalESTD,
			Assignment:      pairs,
			Stats:           res.Stats,
			At:              time.Now().UTC(),
		},
		EscalatedComponents: info.Escalated,
		InteriorComponents:  info.Interior,
		CrossShardPairs:     info.CrossShardPairs,
		AssemblyReused:      info.AssemblyReused,
	}
	if adaptiveActive {
		c.adapt.ObserveRequest(elapsed)
		resp.Lanes = dispatcher.LaneCounts()
	}
	c.lastRes.Store(resp)
	if err == nil {
		// Only clean, complete solves are cached; a partial depends on how
		// far the deadline let the solver run, which is not a state key.
		c.cache.Put(key, a.versions, a.routeGen, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// degradeResponse renders the graceful-degradation answer from the most
// recent completed solve: the cached last assignment stamped with its
// explicit staleness ("stale_ms") and the degraded marker. ok is false
// when no previous solve exists or the last one is older than the
// staleness bound — the caller must then shed (429).
func (c *Cluster) degradeResponse() (*SolveResponse, bool) {
	last := c.lastRes.Load()
	if last == nil {
		return nil, false
	}
	stale := time.Since(last.At)
	if stale < 0 {
		stale = 0
	}
	if stale > c.adapt.MaxStale() {
		return nil, false
	}
	resp := *last // shallow copy; the stored value is never mutated
	resp.Degraded = true
	resp.StaleMS = float64(stale) / float64(time.Millisecond)
	resp.CurrentVersion = c.currentVersion()
	return &resp, true
}

func (c *Cluster) handleAssignment(w http.ResponseWriter, r *http.Request) {
	last := c.lastRes.Load()
	if last == nil {
		writeError(w, http.StatusNotFound, errors.New("no solve has completed yet"))
		return
	}
	resp := *last // shallow copy; the stored value is never mutated
	resp.CurrentVersion = c.currentVersion()
	writeJSON(w, http.StatusOK, &resp)
}

func (c *Cluster) currentVersion() uint64 {
	var sum uint64
	for _, sh := range c.shards {
		sum += sh.snap.Load().Version
	}
	return sum
}

// shardStatsJSON is one shard's row in /v1/stats.
type shardStatsJSON struct {
	Shard             int     `json:"shard"`
	Version           uint64  `json:"version"`
	Tasks             int     `json:"tasks"`
	Workers           int     `json:"workers"`
	Pairs             int     `json:"pairs"`
	QueueLen          int     `json:"queue_len"`
	QueueCap          int     `json:"queue_cap"`
	Enqueued          uint64  `json:"mutations_enqueued"`
	Applied           uint64  `json:"mutations_applied"`
	Coalesced         uint64  `json:"mutations_coalesced"`
	Batches           uint64  `json:"batches"`
	Rebuilds          uint64  `json:"rebuilds"`
	RetrieveMS        float64 `json:"retrieve_ms"`
	RejectedQueueFull uint64  `json:"rejected_queue_full"`

	Durability serve.DurabilityJSON `json:"durability"`
}

// statsResponse is the cluster's /v1/stats view. The top-level fields keep
// the serve layer's names (aggregated across shards) so dashboards and the
// CI smoke checks read both server kinds identically; "shards" breaks the
// mutation plane down per shard and "cluster" carries the coordinator
// metrics.
type statsResponse struct {
	Version uint64  `json:"version"`
	Tasks   int     `json:"tasks"`
	Workers int     `json:"workers"`
	Pairs   int     `json:"pairs"`
	Beta    float64 `json:"beta"`

	QueueLen          int    `json:"queue_len"`
	QueueCap          int    `json:"queue_cap"`
	Enqueued          uint64 `json:"mutations_enqueued"`
	Applied           uint64 `json:"mutations_applied"`
	Coalesced         uint64 `json:"mutations_coalesced"`
	Batches           uint64 `json:"batches"`
	Rebuilds          uint64 `json:"rebuilds"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`

	Shards  []shardStatsJSON `json:"shards"`
	Cluster clusterStatsJSON `json:"cluster"`

	Solves      uint64                `json:"solves"`
	SolveErrors uint64                `json:"solve_errors"`
	Partials    uint64                `json:"partial_solves"`
	SolverStats core.Stats            `json:"solver_stats"`
	SolveLatMS  benchreport.Quantiles `json:"solve_latency_ms"`

	// Solve-cache counters (same names as the serve layer's; all zero when
	// the cache is disabled).
	SolveCacheHits      uint64 `json:"solve_cache_hits"`
	SolveCacheMisses    uint64 `json:"solve_cache_misses"`
	SolveCacheEvictions uint64 `json:"solve_cache_evictions"`

	// Durability aggregates the per-shard durability rows (same shape as
	// the serve layer's block; backend is shard 0's label — the shards are
	// configured uniformly).
	Durability serve.DurabilityJSON `json:"durability"`

	// Adaptive is the SLO tier's controller view (same shape as the serve
	// layer's block); omitted when the tier is off.
	Adaptive *adaptive.Stats `json:"adaptive,omitempty"`

	UptimeMS float64 `json:"uptime_ms"`
}

// clusterStatsJSON carries the coordinator-plane metrics.
type clusterStatsJSON struct {
	ShardCount          int     `json:"shard_count"`
	TileSize            float64 `json:"tile_size"`
	CrossShardMoves     uint64  `json:"cross_shard_moves"`
	MoveRetirements     uint64  `json:"move_retirements"`
	MoveRetireFailures  uint64  `json:"move_retire_failures"`
	EscalatedComponents uint64  `json:"escalated_components"`
	InteriorComponents  uint64  `json:"interior_components"`
	CrossShardPairs     int     `json:"cross_shard_pairs"`
	Assemblies          uint64  `json:"assemblies"`
	AssemblyReuses      uint64  `json:"assembly_reuses"`
	ConsistencyFailures uint64  `json:"consistency_failures"`
}

func (c *Cluster) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := &statsResponse{Beta: c.beta, UptimeMS: float64(time.Since(c.started)) / float64(time.Millisecond)}
	for i, sh := range c.shards {
		snap := sh.snap.Load()
		ls := sh.loop.Stats()
		row := shardStatsJSON{
			Shard:             i,
			Version:           snap.Version,
			Tasks:             snap.Tasks(),
			Workers:           snap.Workers(),
			Pairs:             len(snap.Problem.Pairs),
			QueueLen:          sh.loop.Len(),
			QueueCap:          sh.loop.Cap(),
			Enqueued:          ls.Enqueued,
			Applied:           ls.Applied,
			Coalesced:         ls.Coalesced,
			Batches:           ls.Batches,
			Rebuilds:          sh.rebuilds.Load(),
			RetrieveMS:        float64(sh.retrieveNS.Load()) / float64(time.Millisecond),
			RejectedQueueFull: ls.RejectedFull,
			Durability: serve.NewDurabilityJSON(sh.store,
				ls.AppendFailed, sh.snapErrors.Load(), sh.recoveredBatches),
		}
		resp.Shards = append(resp.Shards, row)
		if i == 0 {
			resp.Durability.Backend = row.Durability.Backend
		}
		resp.Durability.WALAppends += row.Durability.WALAppends
		resp.Durability.WALSyncs += row.Durability.WALSyncs
		resp.Durability.WALAppendFailures += row.Durability.WALAppendFailures
		resp.Durability.Snapshots += row.Durability.Snapshots
		resp.Durability.SnapshotErrors += row.Durability.SnapshotErrors
		resp.Durability.RecoveredBatches += row.Durability.RecoveredBatches
		resp.Version += row.Version
		resp.Tasks += row.Tasks
		resp.Workers += row.Workers
		resp.Pairs += row.Pairs
		resp.QueueLen += row.QueueLen
		resp.QueueCap += row.QueueCap
		resp.Enqueued += row.Enqueued
		resp.Applied += row.Applied
		resp.Coalesced += row.Coalesced
		resp.Batches += row.Batches
		resp.Rebuilds += row.Rebuilds
		resp.RejectedQueueFull += row.RejectedQueueFull
	}
	cross := 0
	if a := c.asm.Load(); a != nil {
		// The global pair count (intra + cross) from the latest assembly;
		// the aggregate Pairs above counts intra-shard pairs only.
		resp.Pairs = len(a.problem.Pairs)
		cross = a.crossPairs
	}
	resp.Cluster = clusterStatsJSON{
		ShardCount:          len(c.shards),
		TileSize:            c.tiling.TileSize,
		CrossShardMoves:     c.moves.Load(),
		MoveRetirements:     c.retirements.Load(),
		MoveRetireFailures:  c.retireFailures.Load(),
		EscalatedComponents: c.escalated.Load(),
		InteriorComponents:  c.interior.Load(),
		CrossShardPairs:     cross,
		Assemblies:          c.assemblies.Load(),
		AssemblyReuses:      c.assemblyReuses.Load(),
		ConsistencyFailures: c.consistencyFailures.Load(),
	}
	c.statsMu.Lock()
	resp.SolverStats = c.solveStats
	n := c.latN
	if n > len(c.solveLatMS) {
		n = len(c.solveLatMS)
	}
	sample := append([]float64(nil), c.solveLatMS[:n]...)
	c.statsMu.Unlock()
	resp.Solves = c.solves.Load()
	resp.SolveErrors = c.solveErrors.Load()
	resp.Partials = c.partials.Load()
	resp.SolveLatMS = benchreport.Summarize(sample)
	cacheStats := c.cache.Stats()
	resp.SolveCacheHits = cacheStats.Hits
	resp.SolveCacheMisses = cacheStats.Misses
	resp.SolveCacheEvictions = cacheStats.Evictions
	if c.adapt != nil {
		st := c.adapt.StatsSnapshot()
		resp.Adaptive = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"version": c.currentVersion(),
		"shards":  len(c.shards),
	})
}
