package cluster

import (
	"context"
	"math"
	"sort"
	"testing"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/workload"
)

// canonicalProblem re-sorts a monolithic engine's prepared pairs into the
// canonical (task, worker) order the cluster assembles in. Solver
// tie-breaking is pair-order sensitive, so the bit-identity contract is
// stated — on both sides — over the canonical order; the pair SET is
// order-independent and must match exactly either way.
func canonicalProblem(eng *engine.Engine) *core.Problem {
	p := eng.Problem()
	pairs := append([]model.Pair(nil), p.Pairs...)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Task != pairs[j].Task {
			return pairs[i].Task < pairs[j].Task
		}
		return pairs[i].Worker < pairs[j].Worker
	})
	return core.NewProblemWithPairs(eng.Instance(), pairs)
}

func assignmentMap(res *core.Result) map[model.WorkerID]model.TaskID {
	m := make(map[model.WorkerID]model.TaskID)
	if res.Assignment != nil {
		res.Assignment.Workers(func(w model.WorkerID, t model.TaskID) { m[w] = t })
	}
	return m
}

// comparePairSets asserts the cluster-assembled global pair set is
// bit-identical (IDs, arrivals, angles) to the monolithic engine's, in
// canonical order.
func comparePairSets(t *testing.T, got, want *core.Problem) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("assembled %d pairs, monolithic has %d", len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("pair %d differs: cluster %+v, monolithic %+v", i, got.Pairs[i], want.Pairs[i])
		}
	}
}

// compareSolves asserts the cluster solve and the monolithic sharded solve
// returned the same assignment and the same objective, bitwise.
func compareSolves(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	gm, wm := assignmentMap(got), assignmentMap(want)
	if len(gm) != len(wm) {
		t.Fatalf("%s: cluster assigned %d workers, monolithic %d", label, len(gm), len(wm))
	}
	for w, tk := range wm {
		if gm[w] != tk {
			t.Fatalf("%s: worker %d assigned to %d (cluster) vs %d (monolithic)", label, w, gm[w], tk)
		}
	}
	if got.Eval.MinRel != want.Eval.MinRel || got.Eval.TotalESTD != want.Eval.TotalESTD ||
		got.Eval.AssignedWorkers != want.Eval.AssignedWorkers || got.Eval.AssignedTasks != want.Eval.AssignedTasks {
		t.Fatalf("%s: objective differs: cluster %+v, monolithic %+v", label, got.Eval, want.Eval)
	}
	if got.Stats.Components != want.Stats.Components {
		t.Fatalf("%s: components %d (cluster) vs %d (monolithic)", label, got.Stats.Components, want.Stats.Components)
	}
}

// TestDifferentialAllScenarios replays every workload scenario's churn
// trace into an N-shard cluster and a monolithic engine side by side and
// asserts, at several checkpoints, that the assembled global problem and
// the solve result are bit-identical to the monolithic sharded solve over
// the canonically ordered problem. Runs under -race in CI, so it also
// exercises the concurrent shard loops.
func TestDifferentialAllScenarios(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	totalEscalated := 0
	for _, sc := range workload.Registry() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr := sc.Trace(workload.Params{M: 30, N: 60, Seed: 5, Horizon: 2})
			for _, nShards := range []int{1, 2, 4} {
				cl, err := New(Config{
					Shards: nShards, Beta: tr.Beta, BetaSet: true, Opt: tr.Opt,
					SolverName: "greedy",
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				mono := engine.New(engine.Config{Beta: tr.Beta, BetaSet: true, Opt: tr.Opt})

				const chunk = 50
				checkpoint := 0
				for lo := 0; lo < len(tr.Events); lo += chunk {
					hi := lo + chunk
					if hi > len(tr.Events) {
						hi = len(tr.Events)
					}
					muts := make([]engine.Mutation, 0, hi-lo)
					for _, ev := range tr.Events[lo:hi] {
						muts = append(muts, ev.Mutation())
					}
					if _, err := cl.Mutate(ctx, muts...); err != nil {
						t.Fatal(err)
					}
					mono.ApplyBatch(muts)
					if err := cl.Quiesce(ctx); err != nil {
						t.Fatal(err)
					}
					checkpoint++

					ref := canonicalProblem(mono)
					a, _ := cl.assemble()
					comparePairSets(t, a.problem, ref)
					totalEscalated += a.nEscalated

					seed := int64(1000*checkpoint + nShards)
					inner, err := core.NewByName("greedy")
					if err != nil {
						t.Fatal(err)
					}
					got, _, gErr := cl.Solve(ctx, inner, &core.SolveOptions{Seed: seed})
					inner2, _ := core.NewByName("greedy")
					want, wErr := core.NewSharded(inner2).Solve(ctx, ref, &core.SolveOptions{Seed: seed})
					if (gErr == nil) != (wErr == nil) {
						t.Fatalf("checkpoint %d: error mismatch: cluster %v, monolithic %v", checkpoint, gErr, wErr)
					}
					label := sc.Name + "/" +
						"shards=" + string(rune('0'+nShards)) + "/cp=" + string(rune('0'+checkpoint))
					compareSolves(t, label, got, want)
				}
				sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := cl.Shutdown(sctx); err != nil {
					t.Fatal(err)
				}
				scancel()
			}
		})
	}
	if totalEscalated == 0 {
		t.Errorf("no component ever spanned a tile boundary across the whole suite; escalation path untested")
	}
}

// TestDifferentialDCSolver repeats the differential check with the
// divide-and-conquer solver (the server default) on two scenarios, pinning
// that bit-identity is a property of the coordinator, not of one solver.
func TestDifferentialDCSolver(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, name := range []string{"hotspot", "islands"} {
		sc, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := sc.Trace(workload.Params{M: 24, N: 48, Seed: 9, Horizon: 2})
		cl, err := New(Config{Shards: 4, Beta: tr.Beta, BetaSet: true, Opt: tr.Opt, SolverName: "dc"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		mono := engine.New(engine.Config{Beta: tr.Beta, BetaSet: true, Opt: tr.Opt})
		muts := make([]engine.Mutation, 0, len(tr.Events))
		for _, ev := range tr.Events {
			muts = append(muts, ev.Mutation())
		}
		if _, err := cl.Mutate(ctx, muts...); err != nil {
			t.Fatal(err)
		}
		mono.ApplyBatch(muts)
		if err := cl.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
		ref := canonicalProblem(mono)
		inner, _ := core.NewByName("dc")
		got, _, _ := cl.Solve(ctx, inner, &core.SolveOptions{Seed: 77})
		inner2, _ := core.NewByName("dc")
		want, _ := core.NewSharded(inner2).Solve(ctx, ref, &core.SolveOptions{Seed: 77})
		compareSolves(t, name+"/dc", got, want)
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = cl.Shutdown(sctx)
		scancel()
	}
}

// TestDifferentialCrossBoundaryMoves drives explicit worker re-upserts
// that walk workers across tile boundaries — the escalation-and-migration
// path no generated trace exercises (trace entities arrive once and leave
// once). After each wave of moves the cluster must match the monolithic
// engine exactly, the move counter must grow, and at least one checkpoint
// must hold an escalated (boundary-crossing) component.
func TestDifferentialCrossBoundaryMoves(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	const nShards = 4
	cl, err := New(Config{Shards: nShards, Beta: 0.5, BetaSet: true, SolverName: "greedy"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mono := engine.New(engine.Config{Beta: 0.5, BetaSet: true})

	// A diagonal band of tasks so workers near any tile corner have
	// cross-tile reach.
	var setup []engine.Mutation
	for i := 0; i < 24; i++ {
		f := float64(i) / 23
		setup = append(setup, engine.TaskUpsert(model.Task{
			ID: model.TaskID(i), Loc: geo.Pt(0.05+0.9*f, 0.05+0.9*f), Start: 0, End: 8,
		}))
	}
	for i := 0; i < 32; i++ {
		f := float64(i) / 31
		setup = append(setup, engine.WorkerUpsert(model.Worker{
			ID: model.WorkerID(i), Loc: geo.Pt(0.95-0.9*f, 0.05+0.9*f),
			Speed: 1.2, Dir: geo.FullCircle, Confidence: 0.8, Depart: 0,
		}))
	}
	if _, err := cl.Mutate(ctx, setup...); err != nil {
		t.Fatal(err)
	}
	mono.ApplyBatch(setup)

	sawEscalation := false
	for wave := 1; wave <= 4; wave++ {
		// March every worker along its row; most waves carry several
		// workers across a 0.3-sized tile edge.
		var moves []engine.Mutation
		for i := 0; i < 32; i++ {
			f := float64(i) / 31
			x := math.Mod(0.95-0.9*f+0.17*float64(wave), 0.9) + 0.05
			moves = append(moves, engine.WorkerUpsert(model.Worker{
				ID: model.WorkerID(i), Loc: geo.Pt(x, 0.05+0.9*f),
				Speed: 1.2, Dir: geo.FullCircle, Confidence: 0.8, Depart: 0,
			}))
		}
		if _, err := cl.Mutate(ctx, moves...); err != nil {
			t.Fatal(err)
		}
		mono.ApplyBatch(moves)
		if err := cl.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}

		ref := canonicalProblem(mono)
		a, _ := cl.assemble()
		comparePairSets(t, a.problem, ref)
		if a.staleDuplicates != 0 {
			t.Fatalf("wave %d: %d stale duplicates survived a quiesced assembly", wave, a.staleDuplicates)
		}
		if a.nEscalated > 0 {
			sawEscalation = true
		}
		inner, _ := core.NewByName("greedy")
		got, _, _ := cl.Solve(ctx, inner, &core.SolveOptions{Seed: int64(wave)})
		inner2, _ := core.NewByName("greedy")
		want, _ := core.NewSharded(inner2).Solve(ctx, ref, &core.SolveOptions{Seed: int64(wave)})
		compareSolves(t, "moves/wave", got, want)
	}
	if cl.moves.Load() == 0 {
		t.Error("no cross-shard move was recorded; the waves never crossed a tile boundary")
	}
	if !sawEscalation {
		t.Error("no escalated component in any wave; boundary components never formed")
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := cl.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
}
