package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestClusterSolveCacheInvalidation exercises the cluster-plane cache key:
// a repeat solve against unchanged shards replays the cached answer, any
// shard's version bump misses, and a routing-generation bump alone — the
// versions untouched — also misses (a move can strand a stale copy the
// version vector does not see).
func TestClusterSolveCacheInvalidation(t *testing.T) {
	cl, err := New(Config{Shards: 2, Beta: 0.5, BetaSet: true, SolverName: "greedy", SolveCache: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, cl)
	ts := httptest.NewServer(cl.Handler())
	defer ts.Close()

	post := func(path string, body any) map[string]any {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %s", path, resp.Status)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	var tasks, workers []map[string]any
	for i := 0; i < 8; i++ {
		f := float64(i) / 7
		tasks = append(tasks, map[string]any{"id": i, "x": 0.05 + 0.9*f, "y": 0.5, "start": 0, "end": 6})
		workers = append(workers, map[string]any{
			"id": i, "x": 0.05 + 0.9*f, "y": 0.45, "speed": 1.0, "confidence": 0.8, "depart": 0,
		})
	}
	post("/v1/tasks", tasks)
	post("/v1/workers", workers)

	first := post("/v1/solve", map[string]any{"seed": 3})
	if first["cached"] == true {
		t.Fatal("first solve reported cached")
	}
	second := post("/v1/solve", map[string]any{"seed": 3})
	if second["cached"] != true {
		t.Fatalf("repeat solve not served from cache: %v", second)
	}
	for _, field := range []string{"version", "min_reliability", "total_diversity", "assigned_workers"} {
		if first[field] != second[field] {
			t.Fatalf("cached %s diverged: %v vs %v", field, first[field], second[field])
		}
	}

	// A routing-generation bump alone (shard versions untouched) must
	// invalidate: this is what a cross-shard move does before the stale
	// copy's removal applies.
	cl.mu.Lock()
	cl.routeGen++
	cl.mu.Unlock()
	third := post("/v1/solve", map[string]any{"seed": 3})
	if third["cached"] == true {
		t.Fatal("solve after a routeGen bump hit the cache")
	}

	// A shard version bump (one applied mutation) must invalidate too.
	post("/v1/workers", map[string]any{
		"id": 50, "x": 0.5, "y": 0.45, "speed": 1.0, "confidence": 0.8, "depart": 0,
	})
	fourth := post("/v1/solve", map[string]any{"seed": 3})
	if fourth["cached"] == true {
		t.Fatal("solve after a shard mutation hit the cache")
	}

	// Stats surface: 1 hit, 3 misses, hits do not count as solves.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if hits := stats["solve_cache_hits"].(float64); hits != 1 {
		t.Fatalf("solve_cache_hits = %v, want 1", hits)
	}
	if misses := stats["solve_cache_misses"].(float64); misses != 3 {
		t.Fatalf("solve_cache_misses = %v, want 3", misses)
	}
	if solves := stats["solves"].(float64); solves != 3 {
		t.Fatalf("solves = %v, want 3 (cache hits must not count)", solves)
	}
}
