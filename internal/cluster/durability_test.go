package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/store"
)

// doJSON issues one request and decodes the JSON response body.
func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

func openShardStores(t *testing.T, dir string, shards int) []store.Store {
	t.Helper()
	stores := make([]store.Store, shards)
	for i := range stores {
		fs, err := store.Open(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), store.FileOptions{Fsync: store.FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = fs
	}
	return stores
}

func startDurableCluster(t *testing.T, dir string, shards int) (*Cluster, *httptest.Server, func()) {
	t.Helper()
	cl, err := New(Config{
		Shards: shards, Beta: 0.5, BetaSet: true, SolverName: "greedy",
		Stores: openShardStores(t, dir, shards), SnapshotEvery: 3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cl.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cl.Shutdown(ctx); err != nil {
			t.Fatalf("cluster shutdown: %v", err)
		}
	}
	t.Cleanup(stop)
	return cl, ts, stop
}

// TestClusterDurableRecoveryExact pins multi-shard recovery: every shard
// recovers from its own store, and the reassembled cluster answers solves
// identically to the pre-stop one.
func TestClusterDurableRecoveryExact(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	_, ts, stop := startDurableCluster(t, dir, shards)

	// A population spread over the unit square so every shard owns some
	// entities (tile size 0.3 over 4 shards).
	for i := 0; i < 12; i++ {
		x, y := 0.1+0.08*float64(i), 0.9-0.07*float64(i)
		code, body := doJSON(t, "POST", ts.URL+"/v1/tasks",
			fmt.Sprintf(`{"id":%d,"x":%f,"y":%f,"start":0,"end":10}`, i, x, y))
		if code != http.StatusOK {
			t.Fatalf("task %d: %d %v", i, code, body)
		}
		code, body = doJSON(t, "POST", ts.URL+"/v1/workers",
			fmt.Sprintf(`{"id":%d,"x":%f,"y":%f,"speed":1,"confidence":0.9}`, i, y, x))
		if code != http.StatusOK {
			t.Fatalf("worker %d: %d %v", i, code, body)
		}
	}
	_, statsBefore := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	code, solveBefore := doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"greedy","seed":7}`)
	if code != http.StatusOK {
		t.Fatalf("pre-stop solve: %d %v", code, solveBefore)
	}
	stop()

	_, ts2, _ := startDurableCluster(t, dir, shards)
	_, statsAfter := doJSON(t, "GET", ts2.URL+"/v1/stats", "")
	for _, k := range []string{"tasks", "workers"} {
		if statsBefore[k] != statsAfter[k] {
			t.Errorf("recovered %s = %v, want %v", k, statsAfter[k], statsBefore[k])
		}
	}
	// Per-shard versions must come back exactly (shard order is fixed by
	// the tiling, which is deterministic).
	shBefore := statsBefore["shards"].([]any)
	shAfter := statsAfter["shards"].([]any)
	if len(shBefore) != len(shAfter) {
		t.Fatalf("shard count changed across recovery: %d vs %d", len(shBefore), len(shAfter))
	}
	for i := range shBefore {
		b, a := shBefore[i].(map[string]any), shAfter[i].(map[string]any)
		for _, k := range []string{"version", "tasks", "workers", "pairs"} {
			if b[k] != a[k] {
				t.Errorf("shard %d %s = %v, want %v", i, k, a[k], b[k])
			}
		}
		if dur := a["durability"].(map[string]any); dur["backend"] != "file" {
			t.Errorf("shard %d backend %v, want file", i, dur["backend"])
		}
	}
	code, solveAfter := doJSON(t, "POST", ts2.URL+"/v1/solve", `{"solver":"greedy","seed":7}`)
	if code != http.StatusOK {
		t.Fatalf("post-recovery solve: %d %v", code, solveAfter)
	}
	for _, volatile := range []string{"elapsed_ms", "at", "stats", "cached", "cluster"} {
		delete(solveBefore, volatile)
		delete(solveAfter, volatile)
	}
	if !reflect.DeepEqual(solveBefore, solveAfter) {
		t.Errorf("solve diverged across recovery:\n before: %v\n after:  %v", solveBefore, solveAfter)
	}
}

// TestClusterRecoveryResolvesDuplicateEntities simulates the cross-shard
// move crash window: the destination shard logged the moved worker's upsert
// but the source shard crashed before logging the retirement, so both
// stores recover a copy. The registry rebuild must keep exactly the copy on
// the shard the tiling routes to and retire the stale one.
func TestClusterRecoveryResolvesDuplicateEntities(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	tl := Tiling{Shards: shards}.withDefaults()
	loc := geo.Pt(0.85, 0.15)
	home := tl.ShardOf(loc)
	stale := (home + 1) % shards

	w := model.Worker{ID: 42, Loc: loc, Speed: 1, Dir: geo.FullCircle, Confidence: 0.9, Depart: 10}
	stores := openShardStores(t, dir, shards)
	// The home shard holds the entity at its current location; the stale
	// shard holds a pre-move copy of the same ID at its old location.
	if err := stores[home].AppendBatch([]engine.Mutation{engine.WorkerUpsert(w)}); err != nil {
		t.Fatal(err)
	}
	old := w
	old.Loc = geo.Pt(0.15, 0.85)
	if err := stores[stale].AppendBatch([]engine.Mutation{engine.WorkerUpsert(old)}); err != nil {
		t.Fatal(err)
	}
	for _, s := range stores {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	_, ts, _ := startDurableCluster(t, dir, shards)
	_, stats := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	if got := stats["workers"].(float64); got != 1 {
		t.Fatalf("recovered %v workers for one duplicated ID, want 1", got)
	}
	for i, sh := range stats["shards"].([]any) {
		m := sh.(map[string]any)
		want := 0.0
		if i == home {
			want = 1
		}
		if m["workers"].(float64) != want {
			t.Errorf("shard %d holds %v workers, want %v", i, m["workers"], want)
		}
	}
	// The surviving copy must be addressable: removing it routes by its
	// current location.
	code, body := doJSON(t, "DELETE", ts.URL+fmt.Sprintf("/v1/workers/%d", w.ID), "")
	if code != http.StatusOK {
		t.Fatalf("removing the surviving copy: %d %v", code, body)
	}
	_, stats = doJSON(t, "GET", ts.URL+"/v1/stats", "")
	if got := stats["workers"].(float64); got != 0 {
		t.Fatalf("%v workers after removal, want 0", got)
	}
}
