package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/store"
)

// doJSON issues one request and decodes the JSON response body.
func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

func openShardStores(t *testing.T, dir string, shards int) []store.Store {
	t.Helper()
	stores := make([]store.Store, shards)
	for i := range stores {
		fs, err := store.Open(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), store.FileOptions{Fsync: store.FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = fs
	}
	return stores
}

func startDurableCluster(t *testing.T, dir string, shards int) (*Cluster, *httptest.Server, func()) {
	t.Helper()
	cl, err := New(Config{
		Shards: shards, Beta: 0.5, BetaSet: true, SolverName: "greedy",
		Stores: openShardStores(t, dir, shards), SnapshotEvery: 3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cl.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cl.Shutdown(ctx); err != nil {
			t.Fatalf("cluster shutdown: %v", err)
		}
	}
	t.Cleanup(stop)
	return cl, ts, stop
}

// TestClusterDurableRecoveryExact pins multi-shard recovery: every shard
// recovers from its own store, and the reassembled cluster answers solves
// identically to the pre-stop one.
func TestClusterDurableRecoveryExact(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	_, ts, stop := startDurableCluster(t, dir, shards)

	// A population spread over the unit square so every shard owns some
	// entities (tile size 0.3 over 4 shards).
	for i := 0; i < 12; i++ {
		x, y := 0.1+0.08*float64(i), 0.9-0.07*float64(i)
		code, body := doJSON(t, "POST", ts.URL+"/v1/tasks",
			fmt.Sprintf(`{"id":%d,"x":%f,"y":%f,"start":0,"end":10}`, i, x, y))
		if code != http.StatusOK {
			t.Fatalf("task %d: %d %v", i, code, body)
		}
		code, body = doJSON(t, "POST", ts.URL+"/v1/workers",
			fmt.Sprintf(`{"id":%d,"x":%f,"y":%f,"speed":1,"confidence":0.9}`, i, y, x))
		if code != http.StatusOK {
			t.Fatalf("worker %d: %d %v", i, code, body)
		}
	}
	_, statsBefore := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	code, solveBefore := doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"greedy","seed":7}`)
	if code != http.StatusOK {
		t.Fatalf("pre-stop solve: %d %v", code, solveBefore)
	}
	stop()

	_, ts2, _ := startDurableCluster(t, dir, shards)
	_, statsAfter := doJSON(t, "GET", ts2.URL+"/v1/stats", "")
	for _, k := range []string{"tasks", "workers"} {
		if statsBefore[k] != statsAfter[k] {
			t.Errorf("recovered %s = %v, want %v", k, statsAfter[k], statsBefore[k])
		}
	}
	// Per-shard versions must come back exactly (shard order is fixed by
	// the tiling, which is deterministic).
	shBefore := statsBefore["shards"].([]any)
	shAfter := statsAfter["shards"].([]any)
	if len(shBefore) != len(shAfter) {
		t.Fatalf("shard count changed across recovery: %d vs %d", len(shBefore), len(shAfter))
	}
	for i := range shBefore {
		b, a := shBefore[i].(map[string]any), shAfter[i].(map[string]any)
		for _, k := range []string{"version", "tasks", "workers", "pairs"} {
			if b[k] != a[k] {
				t.Errorf("shard %d %s = %v, want %v", i, k, a[k], b[k])
			}
		}
		if dur := a["durability"].(map[string]any); dur["backend"] != "file" {
			t.Errorf("shard %d backend %v, want file", i, dur["backend"])
		}
	}
	code, solveAfter := doJSON(t, "POST", ts2.URL+"/v1/solve", `{"solver":"greedy","seed":7}`)
	if code != http.StatusOK {
		t.Fatalf("post-recovery solve: %d %v", code, solveAfter)
	}
	for _, volatile := range []string{"elapsed_ms", "at", "stats", "cached", "cluster"} {
		delete(solveBefore, volatile)
		delete(solveAfter, volatile)
	}
	if !reflect.DeepEqual(solveBefore, solveAfter) {
		t.Errorf("solve diverged across recovery:\n before: %v\n after:  %v", solveBefore, solveAfter)
	}
}

// distinctShardLocs returns two in-square locations the tiling routes to
// different shards (shard assignment hashes tile coordinates, so the pair
// is found by probing rather than construction).
func distinctShardLocs(t *testing.T, tl Tiling) (geo.Point, geo.Point) {
	t.Helper()
	a := geo.Pt(0.05, 0.05)
	sa := tl.ShardOf(a)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b := geo.Pt(0.05+tl.TileSize*float64(i), 0.05+tl.TileSize*float64(j))
			if tl.ShardOf(b) != sa {
				return a, b
			}
		}
	}
	t.Fatal("no location on a second shard within the probe window")
	return a, a
}

// TestClusterRecoveryResolvesDuplicateEntities simulates the cross-shard
// move crash window: the destination shard logged the moved worker's upsert
// (with a later recency epoch) but the source shard crashed before logging
// the retirement, so both stores recover a copy. The registry rebuild must
// keep exactly the copy carrying the higher epoch — the acknowledged
// post-move write — and retire the stale one, no matter which of the two
// shards has the lower index. (The destination-on-lower-index direction is
// the one a location-based or iteration-order tie-break gets wrong.)
func TestClusterRecoveryResolvesDuplicateEntities(t *testing.T) {
	const shards = 4
	tl := Tiling{Shards: shards}.withDefaults()
	// Two locations on different shards; run the move in both directions so
	// the newer copy sits once on the higher-index shard and once on the
	// lower-index one.
	locA, locB := distinctShardLocs(t, tl)
	for name, dir := range map[string][2]geo.Point{
		"newer copy on A": {locB, locA}, // moved old→new
		"newer copy on B": {locA, locB},
	} {
		t.Run(name, func(t *testing.T) {
			oldLoc, newLoc := dir[0], dir[1]
			home, stale := tl.ShardOf(newLoc), tl.ShardOf(oldLoc)
			w := model.Worker{ID: 42, Loc: newLoc, Speed: 1, Dir: geo.FullCircle, Confidence: 0.9, Depart: 10}

			tmp := t.TempDir()
			stores := openShardStores(t, tmp, shards)
			// The stale shard holds the pre-move copy (epoch 1); the home
			// shard logged the acked post-move upsert (epoch 2) but the
			// crash hit before the source retirement was logged.
			old := engine.WorkerUpsert(w)
			old.Worker.Loc = oldLoc
			old.Epoch = 1
			if err := stores[stale].AppendBatch([]engine.Mutation{old}); err != nil {
				t.Fatal(err)
			}
			moved := engine.WorkerUpsert(w)
			moved.Epoch = 2
			if err := stores[home].AppendBatch([]engine.Mutation{moved}); err != nil {
				t.Fatal(err)
			}
			for _, s := range stores {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}

			_, ts, _ := startDurableCluster(t, tmp, shards)
			_, stats := doJSON(t, "GET", ts.URL+"/v1/stats", "")
			if got := stats["workers"].(float64); got != 1 {
				t.Fatalf("recovered %v workers for one duplicated ID, want 1", got)
			}
			for i, sh := range stats["shards"].([]any) {
				m := sh.(map[string]any)
				want := 0.0
				if i == home {
					want = 1
				}
				if m["workers"].(float64) != want {
					t.Errorf("shard %d holds %v workers, want %v", i, m["workers"], want)
				}
			}
			// The surviving copy must be addressable: removing it routes
			// through the rebuilt registry.
			code, body := doJSON(t, "DELETE", ts.URL+fmt.Sprintf("/v1/workers/%d", w.ID), "")
			if code != http.StatusOK {
				t.Fatalf("removing the surviving copy: %d %v", code, body)
			}
			_, stats = doJSON(t, "GET", ts.URL+"/v1/stats", "")
			if got := stats["workers"].(float64); got != 0 {
				t.Fatalf("%v workers after removal, want 0", got)
			}
		})
	}
}

// TestClusterRecoveryUnstampedTieBreak covers duplicate copies that carry
// no epochs at all (state written outside the cluster plane): the tie
// falls back to the registry invariant, keeping the copy on the shard its
// own location routes to.
func TestClusterRecoveryUnstampedTieBreak(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	tl := Tiling{Shards: shards}.withDefaults()
	loc := geo.Pt(0.85, 0.15)
	home := tl.ShardOf(loc)
	stale := (home + 1) % shards

	w := model.Worker{ID: 42, Loc: loc, Speed: 1, Dir: geo.FullCircle, Confidence: 0.9, Depart: 10}
	stores := openShardStores(t, dir, shards)
	if err := stores[home].AppendBatch([]engine.Mutation{engine.WorkerUpsert(w)}); err != nil {
		t.Fatal(err)
	}
	old := w
	old.Loc = geo.Pt(0.15, 0.85)
	if err := stores[stale].AppendBatch([]engine.Mutation{engine.WorkerUpsert(old)}); err != nil {
		t.Fatal(err)
	}
	for _, s := range stores {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cl, _, _ := startDurableCluster(t, dir, shards)
	cl.mu.Lock()
	got, ok := cl.workerShard[w.ID]
	cl.mu.Unlock()
	if !ok || got != home {
		t.Fatalf("unstamped duplicate routed to shard %d (ok=%v), want %d", got, ok, home)
	}
	if n := len(cl.shards[stale].eng.Instance().Workers); n != 0 {
		t.Fatalf("stale shard still holds %d workers", n)
	}
}

// TestClusterMoveRetiresSourceCopy drives a live cross-shard move end to
// end: after the destination acks, the source copy is retired (visible in
// move_retirements) and a restart recovers exactly one copy — the
// destination's.
func TestClusterMoveRetiresSourceCopy(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	cl, ts, stop := startDurableCluster(t, dir, shards)
	tl := cl.tiling
	locA, locB := distinctShardLocs(t, tl)
	from, to := tl.ShardOf(locA), tl.ShardOf(locB)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	w := model.Worker{ID: 7, Loc: locA, Speed: 1, Dir: geo.FullCircle, Confidence: 0.9, Depart: 10}
	if _, err := cl.Mutate(ctx, engine.WorkerUpsert(w)); err != nil {
		t.Fatal(err)
	}
	w.Loc = locB
	acks, err := cl.Mutate(ctx, engine.WorkerUpsert(w))
	if err != nil {
		t.Fatal(err)
	}
	if acks[0].Err != nil {
		t.Fatalf("move upsert acked with error: %v", acks[0].Err)
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	_, stats := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	clStats := stats["cluster"].(map[string]any)
	if got := clStats["cross_shard_moves"].(float64); got != 1 {
		t.Errorf("cross_shard_moves = %v, want 1", got)
	}
	if got := clStats["move_retirements"].(float64); got != 1 {
		t.Errorf("move_retirements = %v, want 1", got)
	}
	if got := clStats["move_retire_failures"].(float64); got != 0 {
		t.Errorf("move_retire_failures = %v, want 0", got)
	}
	if n := len(cl.shards[from].eng.Instance().Workers); n != 0 {
		t.Errorf("source shard %d still holds %d workers after retirement", from, n)
	}
	if n := len(cl.shards[to].eng.Instance().Workers); n != 1 {
		t.Errorf("destination shard %d holds %d workers, want 1", to, n)
	}
	stop()

	// Recovery sees exactly one copy, on the destination.
	cl2, _, _ := startDurableCluster(t, dir, shards)
	for i, sh := range cl2.shards {
		want := 0
		if i == to {
			want = 1
		}
		if n := len(sh.eng.Instance().Workers); n != want {
			t.Errorf("recovered shard %d holds %d workers, want %d", i, n, want)
		}
	}
}

// failingStore fails every append the way a full disk would; everything
// else is the no-op memory backend.
type failingStore struct {
	store.Memory
	err error
}

func (f *failingStore) AppendBatch([]engine.Mutation) error { return f.err }

// TestClusterMoveDestinationFailureKeepsSource pins the destination-first
// contract: when the destination shard cannot log the move's upsert, the
// caller gets the error, the source copy stays live, and the registry
// routes back to it — no acknowledged or pre-existing state is lost.
func TestClusterMoveDestinationFailureKeepsSource(t *testing.T) {
	const shards = 4
	tl := Tiling{Shards: shards}.withDefaults()
	locA, locB := distinctShardLocs(t, tl)
	from, to := tl.ShardOf(locA), tl.ShardOf(locB)

	boom := fmt.Errorf("no space left on device")
	stores := make([]store.Store, shards)
	for i := range stores {
		if i == to {
			stores[i] = &failingStore{err: boom}
		} else {
			stores[i] = store.NewMemory()
		}
	}
	cl, err := New(Config{
		Shards: shards, Beta: 0.5, BetaSet: true, SolverName: "greedy",
		Stores: stores,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	defer func() {
		if err := cl.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	w := model.Worker{ID: 7, Loc: locA, Speed: 1, Dir: geo.FullCircle, Confidence: 0.9, Depart: 10}
	if acks, err := cl.Mutate(ctx, engine.WorkerUpsert(w)); err != nil || acks[0].Err != nil {
		t.Fatalf("seeding source shard: %v / %v", err, acks)
	}
	moved := w
	moved.Loc = locB
	acks, err := cl.Mutate(ctx, engine.WorkerUpsert(moved))
	if err != nil {
		t.Fatal(err)
	}
	if acks[0].Err == nil {
		t.Fatal("move onto a failing destination store was acknowledged")
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}

	cl.mu.Lock()
	got, ok := cl.workerShard[w.ID]
	cl.mu.Unlock()
	if !ok || got != from {
		t.Fatalf("registry routes worker to shard %d (ok=%v) after failed move, want source %d", got, ok, from)
	}
	if n := len(cl.shards[from].eng.Instance().Workers); n != 1 {
		t.Errorf("source shard holds %d workers, want the surviving copy", n)
	}
	if got := cl.retirements.Load(); got != 0 {
		t.Errorf("move_retirements = %d after a failed move, want 0", got)
	}
	// The surviving copy is fully addressable: a removal drains it.
	if acks, err := cl.Mutate(ctx, engine.WorkerRemoval(w.ID)); err != nil || acks[0].Err != nil {
		t.Fatalf("removing the surviving copy: %v / %v", err, acks)
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if n := len(cl.shards[from].eng.Instance().Workers); n != 0 {
		t.Errorf("source shard holds %d workers after removal, want 0", n)
	}
}
