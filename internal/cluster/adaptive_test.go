package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClusterAdaptiveTier drives the cluster's adaptive solve path over
// HTTP: within-budget unnamed solves route through the lane dispatcher
// (lanes in the response, controller block in /v1/stats), and after the
// budget collapses the tier degrades to the last assignment and then sheds.
func TestClusterAdaptiveTier(t *testing.T) {
	cl, err := New(Config{
		Shards: 3, Beta: 0.5, BetaSet: true, SolverName: "greedy",
		Adaptive: true, SLOp99: 5 * time.Second,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, cl)
	ts := httptest.NewServer(cl.Handler())
	defer ts.Close()

	post := func(path string, body any) (*http.Response, error) {
		b, _ := json.Marshal(body)
		return http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	}
	var tasks, workers []map[string]any
	for i := 0; i < 10; i++ {
		f := float64(i) / 9
		tasks = append(tasks, map[string]any{"id": i, "x": 0.05 + 0.9*f, "y": 0.5, "start": 0, "end": 6})
		workers = append(workers, map[string]any{
			"id": i, "x": 0.05 + 0.9*f, "y": 0.45, "speed": 1.0, "confidence": 0.8, "depart": 0,
		})
	}
	for path, body := range map[string]any{"/v1/tasks": tasks, "/v1/workers": workers} {
		resp, err := post(path, body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %v %v", path, err, resp.Status)
		}
		resp.Body.Close()
	}

	resp, err := post("/v1/solve", map[string]any{"seed": 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive cluster solve: %s", resp.Status)
	}
	var solve SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&solve); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if solve.Solver != "ADAPTIVE" {
		t.Errorf("solver = %q, want ADAPTIVE", solve.Solver)
	}
	if !solve.Feasible || solve.AssignedWorkers == 0 {
		t.Fatalf("adaptive solve infeasible: %+v", solve)
	}
	total := 0
	for _, n := range solve.Lanes {
		total += n
	}
	if total != solve.Stats.Components {
		t.Errorf("lane counts %v sum to %d, want one dispatch per component (%d)",
			solve.Lanes, total, solve.Stats.Components)
	}
	if solve.Degraded {
		t.Errorf("within-budget solve marked degraded")
	}

	// Stats carry the controller block.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Adaptive *struct {
			BudgetMS float64 `json:"budget_ms"`
		} `json:"adaptive"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Adaptive == nil || stats.Adaptive.BudgetMS != 5000 {
		t.Errorf("stats adaptive block = %+v, want budget_ms 5000", stats.Adaptive)
	}
}

// TestClusterAdaptiveDegrade: an impossible budget makes the cluster serve
// the last assignment stale (inside the bound) and shed past it.
func TestClusterAdaptiveDegrade(t *testing.T) {
	const maxStale = 250 * time.Millisecond
	cl, err := New(Config{
		Shards: 2, Beta: 0.5, BetaSet: true, SolverName: "greedy",
		Adaptive: true, SLOp99: time.Nanosecond, MaxStale: maxStale,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, cl)
	ts := httptest.NewServer(cl.Handler())
	defer ts.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post("/v1/tasks", []map[string]any{{"id": 1, "x": 0.5, "y": 0.5, "start": 0, "end": 6}})
	resp.Body.Close()
	resp = post("/v1/workers", []map[string]any{{"id": 1, "x": 0.45, "y": 0.5, "speed": 1.0, "confidence": 0.8, "depart": 0}})
	resp.Body.Close()

	// Seed the last assignment through the explicit-solver bypass.
	resp = post("/v1/solve", map[string]any{"solver": "greedy", "seed": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit solve: %s", resp.Status)
	}
	resp.Body.Close()

	// Immediately after, the unnamed solve degrades inside the bound.
	resp = post("/v1/solve", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degrade solve: %s", resp.Status)
	}
	var solve SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&solve); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !solve.Degraded {
		t.Fatalf("over-budget solve not degraded: %+v", solve)
	}
	if bound := float64(maxStale) / float64(time.Millisecond); solve.StaleMS > bound {
		t.Errorf("stale_ms %.1f exceeds the bound %.0f", solve.StaleMS, bound)
	}

	// Past the bound, the tier sheds.
	time.Sleep(maxStale + 100*time.Millisecond)
	resp = post("/v1/solve", map[string]any{})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("solve past the staleness bound: %s, want 429", resp.Status)
	}
	resp.Body.Close()
}
