package cluster

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"sort"

	"rdbsc/internal/adaptive"
	"rdbsc/internal/core"
	"rdbsc/internal/decompose"
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
	"rdbsc/internal/objective"
)

// assembled is the coordinator's view of the global problem at one shard
// version vector: the union instance, the canonically ordered global pair
// set, its component partition, and the per-component escalation verdicts.
// It is immutable once built and cached across solves until any shard
// version (or the entity routing) changes.
type assembled struct {
	versions []uint64 // per-shard snapshot versions (cache key)
	routeGen uint64   // registry generation (cache key; bumped on moves)

	problem *core.Problem
	part    *decompose.Partition
	// shape is the adaptive controller's planning input derived from part;
	// nil when the adaptive tier is off. Cached here because the assembly
	// is already keyed on exactly the state the shape depends on.
	shape *adaptive.Shape
	// escalated[i] is true when component i's entities span more than one
	// shard — its pair edges cross a tile boundary, so a shard-local solve
	// cannot see all of it.
	escalated             []bool
	nEscalated, nInterior int
	crossPairs            int
	staleDuplicates       int // entity IDs seen on >1 shard (move in flight)
}

// SolveInfo reports the coordinator-plane shape of one solve.
type SolveInfo struct {
	// Components partitions found in the assembled global problem.
	Components int
	// Escalated counts components spanning >1 shard (solved over the
	// assembled boundary sub-instance); Interior counts single-shard
	// components.
	Escalated int
	Interior  int
	// CrossShardPairs is the number of valid pairs whose task and worker
	// live on different shards.
	CrossShardPairs int
	// AssemblyReused is true when the solve ran against a cached assembly
	// (no shard changed since it was built).
	AssemblyReused bool
	// Version is the aggregate engine version (sum of shard versions).
	Version uint64
}

// assemble builds (or reuses) the global problem from the current shard
// snapshots. Reads are lock-free on the snapshot plane; only the entity
// registry copy takes the routing mutex.
func (c *Cluster) assemble() (*assembled, bool) {
	snaps := make([]*engine.Snapshot, len(c.shards))
	versions := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		snaps[i] = sh.snap.Load()
		versions[i] = snaps[i].Version
	}
	c.mu.Lock()
	routeGen := c.routeGen
	var taskHome map[model.TaskID]int
	var workerHome map[model.WorkerID]int
	if cached := c.asm.Load(); cached != nil &&
		cached.routeGen == routeGen && versionsEqual(cached.versions, versions) {
		c.mu.Unlock()
		c.assemblyReuses.Add(1)
		return cached, true
	}
	// Copy the registry under the lock: assembly itself must not hold up
	// the mutation path.
	taskHome = make(map[model.TaskID]int, len(c.taskShard))
	for id, s := range c.taskShard {
		taskHome[id] = s
	}
	workerHome = make(map[model.WorkerID]int, len(c.workerShard))
	for id, s := range c.workerShard {
		workerHome[id] = s
	}
	c.mu.Unlock()

	a := &assembled{versions: versions, routeGen: routeGen}

	// Union the shard populations. An entity ID present on several shards
	// is a move whose old-shard removal has not applied yet; the registry
	// names the authoritative copy, and the stale one is dropped from the
	// assembled view (exactly what the monolithic engine would hold after
	// the in-flight removal applies).
	in := &model.Instance{Beta: c.beta, Opt: c.opt}
	perShardTasks := make([][]model.Task, len(c.shards))
	perShardWorkers := make([][]model.Worker, len(c.shards))
	keepTask := func(s int, id model.TaskID) bool {
		home, ok := taskHome[id]
		return !ok || home == s
	}
	keepWorker := func(s int, id model.WorkerID) bool {
		home, ok := workerHome[id]
		return !ok || home == s
	}
	for s, snap := range snaps {
		for _, t := range snap.Problem.In.Tasks {
			if keepTask(s, t.ID) {
				perShardTasks[s] = append(perShardTasks[s], t)
				in.Tasks = append(in.Tasks, t)
			} else {
				a.staleDuplicates++
			}
		}
		for _, w := range snap.Problem.In.Workers {
			if keepWorker(s, w.ID) {
				perShardWorkers[s] = append(perShardWorkers[s], w)
				in.Workers = append(in.Workers, w)
			} else {
				a.staleDuplicates++
			}
		}
	}
	sortEntities(in)

	// Intra-shard pairs come from the shard snapshots verbatim (their
	// engines already enumerated them through their grid indexes); pairs
	// touching a dropped stale copy are skipped.
	pairs := make([]model.Pair, 0, totalPairs(snaps))
	for s, snap := range snaps {
		for _, pr := range snap.Problem.Pairs {
			if keepTask(s, pr.Task) && keepWorker(s, pr.Worker) {
				pairs = append(pairs, pr)
			}
		}
	}

	// Cross-shard pairs: for each worker, bound its reach by the latest
	// task deadline (arrival >= depart + distance/speed, so a pair is only
	// valid within radius speed·(maxEnd−depart)), find the foreign shards
	// whose tiles intersect that disc, and check each candidate pair with
	// the exact model predicate — the same predicate the grid index
	// enumerates from, so the assembled pair set equals the monolithic one.
	maxEnd := 0.0
	for _, t := range in.Tasks {
		if t.End > maxEnd {
			maxEnd = t.End
		}
	}
	for b := range c.shards {
		for _, w := range perShardWorkers[b] {
			r := w.Speed * (maxEnd - w.Depart)
			if r < 0 {
				continue
			}
			reach := c.tiling.ShardsInDisc(w.Loc, r)
			for s := range c.shards {
				if s == b || !reach[s] {
					continue
				}
				for _, t := range perShardTasks[s] {
					if arr, ok := model.Arrival(t, w, c.opt); ok {
						pairs = append(pairs, model.Pair{
							Task: t.ID, Worker: w.ID,
							Arrival: arr, Angle: model.ApproachAngle(t, w),
						})
						a.crossPairs++
					}
				}
			}
		}
	}

	// Canonical order: the monolithic reference and the cluster must hand
	// solvers the identical pair sequence, since solver tie-breaking is
	// pair-order sensitive.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Task != pairs[j].Task {
			return pairs[i].Task < pairs[j].Task
		}
		return pairs[i].Worker < pairs[j].Worker
	})

	a.problem = core.NewProblemWithPairs(in, pairs)
	a.part = decompose.BuildSized(pairs, len(in.Tasks), len(in.Workers))
	if c.adapt != nil {
		a.shape = adaptive.NewShape(a.problem, a.part)
	}

	// Escalation verdicts: a component is interior iff every entity lives
	// on one shard. (Entities connected by an intra-shard pair share a
	// shard, so a component escalates exactly when it contains a
	// cross-shard pair.)
	a.escalated = make([]bool, a.part.Len())
	for i := range a.part.Components {
		comp := &a.part.Components[i]
		home := -1
		for _, tid := range comp.Tasks {
			s := taskHome[tid]
			if home == -1 {
				home = s
			} else if s != home {
				a.escalated[i] = true
				break
			}
		}
		if !a.escalated[i] {
			for _, wid := range comp.Workers {
				if workerHome[wid] != home {
					a.escalated[i] = true
					break
				}
			}
		}
		if a.escalated[i] {
			a.nEscalated++
		} else {
			a.nInterior++
		}
	}

	c.assemblies.Add(1)
	c.asm.Store(a)
	return a, false
}

// Solve runs one cluster-wide solve over the assembled global problem,
// mirroring core.Sharded.Solve exactly: single-component problems pass
// through to the solver verbatim; otherwise per-component seeds are drawn
// from the options' source in component order, components solve
// independently (interior ones shard-local by construction — their
// subproblem is exactly what their shard's engine holds — and escalated
// ones over the assembled boundary sub-instance), and the results merge
// through the exact min/sum merge. The returned result is bit-identical to
// core.NewSharded(solver).Solve over the same population in canonical pair
// order.
func (c *Cluster) Solve(ctx context.Context, solver core.Solver, opts *core.SolveOptions) (*core.Result, SolveInfo, error) {
	a, reused := c.assemble()
	return c.solveWith(ctx, a, reused, solver, opts)
}

// solveWith is Solve over an already-assembled global problem (the HTTP
// layer assembles first so it can consult the solve cache against the exact
// version vector before committing to a solve).
func (c *Cluster) solveWith(ctx context.Context, a *assembled, reused bool, solver core.Solver, opts *core.SolveOptions) (*core.Result, SolveInfo, error) {
	info := SolveInfo{
		Components:      a.part.Len(),
		Escalated:       a.nEscalated,
		Interior:        a.nInterior,
		CrossShardPairs: a.crossPairs,
		AssemblyReused:  reused,
		Version:         sumVersions(a.versions),
	}
	c.escalated.Add(uint64(a.nEscalated))
	c.interior.Add(uint64(a.nInterior))

	res, err := c.solveAssembled(ctx, a, solver, opts)
	if res != nil && c.checkConsistency(a, res) > 0 {
		c.consistencyFailures.Add(1)
	}
	return res, info, err
}

// solveAssembled is the core.Sharded.Solve body over a precomputed
// partition.
func (c *Cluster) solveAssembled(ctx context.Context, a *assembled, solver core.Solver, opts *core.SolveOptions) (*core.Result, error) {
	p, part := a.problem, a.part
	if part.Len() <= 1 {
		res, err := solver.Solve(ctx, p, opts)
		if res != nil {
			res.Stats.Components = part.Len()
			res.Stats.MaxComponentPairs = part.MaxPairs()
		}
		return res, err
	}
	src := opts.Rand()
	seeds := make([]int64, part.Len())
	for i := range seeds {
		seeds[i] = src.Int63()
	}
	var seedStates map[model.TaskID]*objective.TaskState
	var progress func(core.Stage)
	if opts != nil {
		seedStates = opts.SeedStates
		progress = opts.Progress
	}
	sel := make([]bool, part.Len())
	css := make([]map[model.TaskID]*objective.TaskState, part.Len())
	for i := range sel {
		sel[i] = true
		css[i] = core.ComponentSeedStates(seedStates, &part.Components[i])
	}
	results, errs := core.SolveComponents(ctx, solver, p, part.Components, sel,
		seeds, css, 0, progress)
	res := core.MergeComponentResults(p, results)
	res.Stats.Components = part.Len()
	res.Stats.MaxComponentPairs = part.MaxPairs()
	return res, core.CombineComponentErrors(errs)
}

// checkConsistency verifies the solve's cluster-level invariants against
// the assembled problem: every assigned (worker, task) pair must be a
// valid global pair. Returns the number of violations (0 in any correct
// run; surfaced through /v1/stats as consistency_failures, the smoke
// test's tripwire).
func (c *Cluster) checkConsistency(a *assembled, res *core.Result) int {
	if res.Assignment == nil {
		return 0
	}
	bad := 0
	res.Assignment.Workers(func(wid model.WorkerID, tid model.TaskID) {
		for _, pi := range a.problem.WorkerPairs(wid) {
			if a.problem.Pairs[pi].Task == tid {
				return
			}
		}
		bad++
	})
	return bad
}

// Snapshot-plane helpers.

// solveFingerprint condenses a shard version vector plus the routing
// generation into the solve-cache key hash (FNV-1a). Collisions are
// harmless: the cache stores — and Get re-verifies — the exact vector.
func solveFingerprint(versions []uint64, routeGen uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range versions {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	binary.LittleEndian.PutUint64(b[:], routeGen)
	h.Write(b[:])
	return h.Sum64()
}

func versionsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sumVersions(vs []uint64) uint64 {
	var sum uint64
	for _, v := range vs {
		sum += v
	}
	return sum
}

func totalPairs(snaps []*engine.Snapshot) int {
	n := 0
	for _, s := range snaps {
		n += len(s.Problem.Pairs)
	}
	return n
}
