package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdbsc/internal/adaptive"
	"rdbsc/internal/applyloop"
	"rdbsc/internal/core"
	"rdbsc/internal/engine"
	"rdbsc/internal/grid"
	"rdbsc/internal/model"
	"rdbsc/internal/serve"
	"rdbsc/internal/store"
)

// Config parameterizes a Cluster. The engine-level knobs (Beta, Opt, Grid)
// apply to every shard identically — cross-shard exactness requires one
// objective and one reachability semantics across the cluster.
type Config struct {
	// Shards is the shard count. Required (>= 1); a one-shard cluster is a
	// valid degenerate topology, though cmd/rdbsc-server keeps -shards 1 on
	// the plain serve path.
	Shards int
	// TileSize is the spatial tile side length (default 0.3). Smaller
	// tiles spread load more evenly across shards but put more components
	// on tile boundaries, escalating more solves.
	TileSize float64
	// Beta is the requester diversity weight β (same semantics as
	// engine.Config: zero means unset unless BetaSet).
	Beta    float64
	BetaSet bool
	// Opt configures reachability semantics for pair enumeration.
	Opt model.Options
	// SolverName selects the default solver for solve requests that name
	// none. Default "dc".
	SolverName string
	// QueueDepth bounds each shard's mutation queue (default 1024).
	QueueDepth int
	// BatchMax caps how many queued mutations one shard batch drains
	// (default 256).
	BatchMax int
	// BatchLinger is each shard loop's batch-widening wait (default 0).
	BatchLinger time.Duration
	// SolveTimeout is the default and upper bound for per-request solve
	// deadlines (default 30s).
	SolveTimeout time.Duration
	// Grid configures each shard's index; DisableIndex switches every shard
	// to brute-force pair retrieval (same semantics, no grid).
	Grid         grid.Config
	DisableIndex bool
	// SolveCache is the capacity of the cross-request solve cache, keyed on
	// (shard version vector, routing generation, solver, seed): a repeat
	// solve against an unchanged cluster replays the cached answer verbatim.
	// Any shard's version bump or a cross-shard move invalidates every
	// affected entry by construction. Default 0 (disabled).
	SolveCache int
	// Stores are the per-shard durability backends, exactly one per shard
	// (nil = all memory, nothing persists). Each shard appends its batches
	// to its own store and recovers from it at boot; when any store holds
	// recovered state the bulk-load instance must be nil, and the entity
	// registry is rebuilt from the recovered shard populations.
	Stores []store.Store
	// SnapshotEvery compacts each shard's WAL into a snapshot after every
	// N applied batches on that shard (0 = never).
	SnapshotEvery int
	// Adaptive enables the latency-SLO solve tier (internal/adaptive) on
	// the coordinator: solve requests naming no explicit solver are routed
	// per component of the assembled global problem to a lane picked to
	// fit SLOp99, degrading to the cached last assignment (stamped
	// "stale_ms") before shedding with 429. Off by default.
	Adaptive bool
	// SLOp99 is the solve-latency p99 budget (only with Adaptive; default
	// 50ms).
	SLOp99 time.Duration
	// MaxStale bounds the staleness of degraded responses (only with
	// Adaptive; default 5s).
	MaxStale time.Duration
}

func (c Config) withDefaults() Config {
	if c.SolverName == "" {
		c.SolverName = "dc"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	if c.Adaptive {
		if c.SLOp99 <= 0 {
			c.SLOp99 = 50 * time.Millisecond
		}
		if c.MaxStale <= 0 {
			c.MaxStale = 5 * time.Second
		}
	}
	return c
}

// shard is one spatial partition: an engine owned by a single-writer apply
// loop, publishing copy-on-write snapshots, persisting through its own
// store.
type shard struct {
	eng   *engine.Engine
	loop  *applyloop.Loop
	snap  atomic.Pointer[engine.Snapshot]
	store store.Store

	// epochs tracks each live entity's recency stamp (the Epoch of its last
	// applied upsert). It is folded into every snapshot the shard writes,
	// so after a crash the registry rebuild can compare the two copies a
	// half-done cross-shard move leaves behind and keep the newer one.
	// Touched single-threaded at boot, then only on this shard's loop
	// goroutine.
	epochs store.EntityEpochs

	// snapEvery/batchesSince drive periodic WAL compaction; touched only
	// on this shard's loop goroutine.
	snapEvery    int
	batchesSince int

	rebuilds         atomic.Uint64 // batches whose snapshot re-derived the pairs
	retrieveNS       atomic.Int64  // cumulative pair-retrieval time
	snapErrors       atomic.Uint64 // periodic WAL compactions that failed
	recoveredBatches uint64        // WAL batches replayed at boot (read-only after New)
}

// Cluster is the sharded assignment service: a Router mapping entities to
// shards by location, one apply loop per shard, and a solve Coordinator
// that assembles the exact global problem from the shard snapshots.
// Construct with New, expose Handler over HTTP or call ListenAndServe, and
// stop with Shutdown.
type Cluster struct {
	cfg    Config
	tiling Tiling
	shards []*shard
	beta   float64
	opt    model.Options

	// The entity registry maps live entity IDs to their owning shard, so
	// removals — which carry only an ID, no location — route correctly, and
	// upserts that change an entity's tile ("moves") retire the stale copy
	// from the old shard. Enqueues happen under mu in registry order, and
	// each shard's queue is FIFO, so per-entity mutation order is preserved
	// cluster-wide. The one asynchronous enqueue — a move's retirement
	// removal, which waits for the destination shard's durable ack — also
	// takes mu and re-checks the registry before enqueueing, so it can
	// never land behind a later same-entity upsert on the same shard.
	mu          sync.Mutex
	taskShard   map[model.TaskID]int
	workerShard map[model.WorkerID]int
	pendTask    map[model.TaskID]*pendingMove   // latest in-flight move per task
	pendWorker  map[model.WorkerID]*pendingMove // latest in-flight move per worker
	routeGen    uint64                          // bumped when a registry change can strand a stale copy
	epoch       uint64                          // recency stamp counter (see engine.Mutation.Epoch)
	moveWG      sync.WaitGroup                  // in-flight cross-shard moves (ack + retirement)

	asm   atomic.Pointer[assembled] // cached assembled global problem
	cache *serve.SolveCache         // nil when Config.SolveCache == 0
	adapt *adaptive.Controller      // nil when Config.Adaptive is off

	mux     *http.ServeMux
	httpMu  sync.Mutex
	closing bool
	http    *http.Server

	lastRes atomic.Pointer[SolveResponse]
	started time.Time

	// Counters behind /v1/stats.
	moves               atomic.Uint64 // cross-shard entity migrations
	retirements         atomic.Uint64 // move source copies retired after destination ack
	retireFailures      atomic.Uint64 // retirements abandoned (stale copy until next recovery)
	solves              atomic.Uint64
	solveErrors         atomic.Uint64
	partials            atomic.Uint64
	escalated           atomic.Uint64 // components spanning >1 shard, cumulative
	interior            atomic.Uint64 // components interior to one shard, cumulative
	assemblies          atomic.Uint64 // global-problem assemblies (cache misses)
	assemblyReuses      atomic.Uint64 // solves served by a cached assembly
	consistencyFailures atomic.Uint64 // post-solve invariant violations

	statsMu    sync.Mutex
	solveStats core.Stats
	solveLatMS [1024]float64
	latN       int
}

// pendingMove tracks one in-flight cross-shard move: the upsert has been
// enqueued to the destination shard and the source copy awaits retirement
// once the destination acks durably. The pend maps hold only the LATEST
// move per entity — an older move finding a different token in the map
// knows it was superseded and must not touch the registry.
type pendingMove struct {
	from, to int
}

// retireAttempts bounds how many times a move retries the source-copy
// retirement removal before abandoning it (counted in retireFailures; the
// stale copy is unreachable through the registry and the next recovery's
// epoch-based rebuild removes it).
const retireAttempts = 5

// New validates the configuration, splits the optional bulk-load instance
// across the shards by entity location, starts one apply loop per shard,
// and returns the cluster. in may be nil (an empty cluster); when set, its
// β and reachability options override the config's, mirroring
// engine.NewFromInstance.
func New(cfg Config, in *model.Instance) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, errors.New("cluster: Config.Shards must be >= 1")
	}
	if _, err := core.NewByName(cfg.SolverName); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// Size the entity registry from the bulk-load dimensions so a large
	// initial load fills pre-sized maps instead of rehashing through
	// doublings. The hints only affect allocation; an empty cluster (nil in)
	// starts with default-sized maps.
	numTasks, numWorkers := 0, 0
	if in != nil {
		numTasks, numWorkers = len(in.Tasks), len(in.Workers)
	}
	c := &Cluster{
		cfg:         cfg,
		tiling:      Tiling{Shards: cfg.Shards, TileSize: cfg.TileSize}.withDefaults(),
		shards:      make([]*shard, cfg.Shards),
		taskShard:   make(map[model.TaskID]int, numTasks),
		workerShard: make(map[model.WorkerID]int, numWorkers),
		pendTask:    make(map[model.TaskID]*pendingMove),
		pendWorker:  make(map[model.WorkerID]*pendingMove),
		cache:       serve.NewSolveCache(cfg.SolveCache),
		started:     time.Now(),
	}
	if cfg.Adaptive {
		c.adapt = adaptive.New(adaptive.Config{Budget: cfg.SLOp99, MaxStale: cfg.MaxStale})
	}
	engCfg := engine.Config{
		Beta: cfg.Beta, BetaSet: cfg.BetaSet, Opt: cfg.Opt,
		Grid: cfg.Grid, DisableIndex: cfg.DisableIndex,
	}

	// Per-shard durability: recover every store before any loop starts, so
	// no request can observe a pre-replay shard. Recovered state and a
	// bulk-load instance are mutually exclusive — merging them would
	// fabricate a state neither run had.
	stores := cfg.Stores
	if stores == nil {
		stores = make([]store.Store, cfg.Shards)
		for i := range stores {
			stores[i] = store.NewMemory()
		}
	}
	if len(stores) != cfg.Shards {
		return nil, fmt.Errorf("cluster: %d stores for %d shards", len(stores), cfg.Shards)
	}
	recovered := make([]store.RecoveredState, cfg.Shards)
	anyState := false
	for i, st := range stores {
		rs, err := st.Recover()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		recovered[i] = rs
		anyState = anyState || !rs.Empty()
	}
	if anyState && in != nil {
		return nil, errors.New("cluster: stores hold recovered state but an initial instance was supplied; drop the preload or the data directory")
	}

	// Split the bulk load by location; every entity lands on exactly one
	// shard and is registered there.
	subs := make([]*model.Instance, cfg.Shards)
	if in != nil {
		for i := range subs {
			subs[i] = &model.Instance{Beta: in.Beta, Opt: in.Opt}
		}
		for _, t := range in.Tasks {
			s := c.tiling.ShardOf(t.Loc)
			subs[s].Tasks = append(subs[s].Tasks, t)
			c.taskShard[t.ID] = s
		}
		for _, w := range in.Workers {
			s := c.tiling.ShardOf(w.Loc)
			subs[s].Workers = append(subs[s].Workers, w)
			c.workerShard[w.ID] = s
		}
	}

	for i := range c.shards {
		sh := &shard{store: stores[i], snapEvery: cfg.SnapshotEvery}
		switch {
		case anyState:
			// Recovery path: rebuild the shard engine from its store, then
			// the routing registry from the recovered population.
			sh.eng = engine.New(engCfg)
			batches, epochs, err := store.Replay(recovered[i], sh.eng)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
			}
			sh.recoveredBatches = uint64(batches)
			sh.epochs = epochs
			// Resume the stamp counter past everything recovered, so
			// post-recovery upserts always outrank recovered copies.
			c.epoch = max(c.epoch, epochs.Max())
		case in != nil:
			sh.eng = engine.NewFromInstance(subs[i], engCfg)
			// Fresh store under a bulk load: persist the shard's slice of
			// it as the boot snapshot, or a crash before the first
			// compaction would silently drop the preload.
			if err := sh.store.WriteSnapshot(sh.eng.Version(), sh.eng.GridEta(), sh.eng.Instance(), sh.epochs); err != nil {
				return nil, fmt.Errorf("cluster: shard %d: seeding boot snapshot: %w", i, err)
			}
		default:
			sh.eng = engine.New(engCfg)
		}
		c.shards[i] = sh
	}
	if anyState {
		c.rebuildRegistry()
	}
	for i, sh := range c.shards {
		// Publish the initial snapshot before the loop starts: this is the
		// last single-threaded touch of the engine (registry rebuild — which
		// may retire duplicate copies — is done by now).
		snap := sh.eng.Snapshot()
		sh.snap.Store(&snap)
		loop, err := applyloop.New(applyloop.Config{
			QueueDepth:  cfg.QueueDepth,
			BatchMax:    cfg.BatchMax,
			BatchLinger: cfg.BatchLinger,
			Apply:       sh.apply,
			Append:      sh.store.AppendBatch,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sh.loop = loop
	}
	// The effective β/Opt (post-default, post-instance-override) come back
	// from a shard engine so the assembled global instance always agrees
	// with the shards.
	c.beta = c.shards[0].eng.Beta()
	c.opt = cfg.Opt
	if in != nil {
		c.opt = in.Opt
	}
	c.mux = c.routes()
	return c, nil
}

// rebuildRegistry repopulates the entity→shard routing maps from the
// recovered shard populations. A crash (or an abandoned retirement) in the
// middle of a cross-shard move can leave the same entity on two shards:
// the destination logged and acked the upsert, but the source never logged
// the retirement removal. The copy with the higher recency epoch — the
// later acknowledged write — wins; a stale pre-move copy can never outrank
// the acked post-move state, whichever shard holds it. Epochs tie only
// when neither copy was stamped (state written outside the cluster plane),
// in which case the copy on the shard its own location routes to — the
// registry invariant — wins. The loser is retired directly from its
// engine (single-threaded: the loops have not started).
func (c *Cluster) rebuildRegistry() {
	for i, sh := range c.shards {
		in := sh.eng.Instance()
		for _, t := range in.Tasks {
			if prev, dup := c.taskShard[t.ID]; dup {
				here, there := sh.epochs.Task(t.ID), c.shards[prev].epochs.Task(t.ID)
				wins := here > there || (here == there && c.tiling.ShardOf(t.Loc) == i)
				if wins {
					c.shards[prev].eng.RemoveTask(t.ID)
					delete(c.shards[prev].epochs.Tasks, t.ID)
				} else {
					sh.eng.RemoveTask(t.ID)
					delete(sh.epochs.Tasks, t.ID)
					continue
				}
			}
			c.taskShard[t.ID] = i
		}
		for _, w := range in.Workers {
			if prev, dup := c.workerShard[w.ID]; dup {
				here, there := sh.epochs.Worker(w.ID), c.shards[prev].epochs.Worker(w.ID)
				wins := here > there || (here == there && c.tiling.ShardOf(w.Loc) == i)
				if wins {
					c.shards[prev].eng.RemoveWorker(w.ID)
					delete(c.shards[prev].epochs.Workers, w.ID)
				} else {
					sh.eng.RemoveWorker(w.ID)
					delete(sh.epochs.Workers, w.ID)
					continue
				}
			}
			c.workerShard[w.ID] = i
		}
	}
}

// apply is a shard's applyloop.Applier: single-writer batch application
// plus snapshot publication, identical to the serve layer's, plus the
// periodic WAL compaction trigger.
func (sh *shard) apply(muts []engine.Mutation) ([]bool, uint64) {
	changed := sh.eng.ApplyBatch(muts)
	sh.epochs.Apply(muts)
	snap := sh.eng.Snapshot()
	sh.snap.Store(&snap)
	if snap.Rebuilt {
		sh.rebuilds.Add(1)
		sh.retrieveNS.Add(int64(snap.Retrieve))
	}
	if sh.snapEvery > 0 {
		if sh.batchesSince++; sh.batchesSince >= sh.snapEvery {
			sh.batchesSince = 0
			// A failed compaction is not data loss — the WAL still holds
			// everything — so it is counted, not fatal.
			if err := sh.store.WriteSnapshot(snap.Version, sh.eng.GridEta(), sh.eng.Instance(), sh.epochs); err != nil {
				sh.snapErrors.Add(1)
			}
		}
	}
	return changed, snap.Version
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Enqueue routes one mutation to its shard, failing fast on a full queue
// (applyloop.ErrQueueFull, HTTP 429) or a closed cluster
// (applyloop.ErrClosed, HTTP 503). reply, when non-nil, must be buffered
// and receives the mutation's Ack after its shard batch applied.
//
// Upserts route by the entity's location; removals route through the
// entity registry (they carry no location). Every upsert is stamped with
// the next recency epoch before routing, so crash recovery can always tell
// which copy of an entity carries the later acknowledged write.
//
// An upsert that moves a live entity onto a tile owned by a different
// shard runs destination-first: the upsert is enqueued to the new shard,
// and only after that shard durably acks it is the retirement removal
// enqueued to the old shard (see finishMove). At every instant the
// entity's data exists durably on at least one shard — a crash at any
// point leaves either the pre-move copy, the post-move copy, or both, and
// recovery's epoch comparison keeps the newer one.
func (c *Cluster) Enqueue(mut engine.Mutation, reply chan<- applyloop.Ack) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch mut.Op {
	case engine.OpUpsertTask:
		c.epoch++
		mut.Epoch = c.epoch
		return routeUpsert(c, mut, reply, c.taskShard, c.pendTask, mut.Task.ID,
			c.tiling.ShardOf(mut.Task.Loc), engine.TaskRemoval(mut.Task.ID))
	case engine.OpUpsertWorker:
		c.epoch++
		mut.Epoch = c.epoch
		return routeUpsert(c, mut, reply, c.workerShard, c.pendWorker, mut.Worker.ID,
			c.tiling.ShardOf(mut.Worker.Loc), engine.WorkerRemoval(mut.Worker.ID))
	case engine.OpRemoveTask:
		return routeRemoval(c, mut, reply, c.taskShard, mut.TaskID)
	default:
		return routeRemoval(c, mut, reply, c.workerShard, mut.WorkerID)
	}
}

// routeUpsert enqueues an upsert to target; when the entity moved off a
// different shard it starts the destination-first move protocol. Caller
// holds c.mu. (A free function because methods cannot be generic over the
// two registry key types.)
func routeUpsert[K comparable](c *Cluster, mut engine.Mutation, reply chan<- applyloop.Ack, reg map[K]int, pend map[K]*pendingMove, id K, target int, removal engine.Mutation) error {
	old, moved := reg[id]
	moved = moved && old != target
	if !moved {
		if err := c.shards[target].loop.Enqueue(mut, reply); err != nil {
			return err
		}
		reg[id] = target
		return nil
	}
	// Cross-shard move. Enqueue the upsert to the destination with an
	// intercepting ack channel; the source copy is retired only after the
	// destination's durable ack arrives (finishMove). Routing flips to the
	// destination immediately — per-entity order is preserved because later
	// mutations land behind the upsert in the destination's FIFO queue, and
	// the retirement re-checks the registry before touching the source.
	ackCh := make(chan applyloop.Ack, 1)
	if err := c.shards[target].loop.Enqueue(mut, ackCh); err != nil {
		return err // entity stays on its old shard; registry unchanged
	}
	tok := &pendingMove{from: old, to: target}
	pend[id] = tok
	reg[id] = target
	c.moves.Add(1)
	c.routeGen++ // the old shard holds a stale copy until its removal applies
	c.moveWG.Add(1)
	go finishMove(c, ackCh, reply, reg, pend, id, tok, removal)
	return nil
}

// finishMove completes one cross-shard move: it waits for the destination
// shard's ack, forwards it to the caller, and then either retires the
// source copy (ack success) or rolls the registry back to the source (ack
// failure — the destination never logged the upsert, so the source copy is
// still the entity's only durable state).
func finishMove[K comparable](c *Cluster, ackCh <-chan applyloop.Ack, reply chan<- applyloop.Ack, reg map[K]int, pend map[K]*pendingMove, id K, tok *pendingMove, removal engine.Mutation) {
	defer c.moveWG.Done()
	ack := <-ackCh // the loop drains fully on Close, so this always arrives
	if reply != nil {
		reply <- ack
	}
	c.mu.Lock()
	if pend[id] == tok {
		delete(pend, id)
	} else if ack.Err != nil {
		// A newer move superseded this one; its own finishMove owns the
		// registry now, and the source copy this move would have rolled
		// back to has been handled by the interleaved mutations.
		c.mu.Unlock()
		return
	}
	if ack.Err != nil {
		if cur, ok := reg[id]; ok && cur == tok.to {
			// The destination rejected the upsert before logging it and no
			// later mutation re-routed the entity: the source copy is still
			// the live one. Restore the route.
			reg[id] = tok.from
			c.routeGen++
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	retire(c, reg, id, tok, removal)
}

// retire removes the stale source copy left behind by an acked cross-shard
// move, retrying transient failures. Each attempt re-checks the registry
// under c.mu: if the entity has moved BACK to the source shard, the copy
// there is live again and must not be removed. An abandoned retirement
// (store closed, or retries exhausted) leaves a stale unreachable copy;
// it is counted in retireFailures and the next recovery's epoch-based
// registry rebuild removes it.
func retire[K comparable](c *Cluster, reg map[K]int, id K, tok *pendingMove, removal engine.Mutation) {
	for attempt := 0; attempt < retireAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
		}
		ackCh := make(chan applyloop.Ack, 1)
		c.mu.Lock()
		if cur, ok := reg[id]; ok && cur == tok.from {
			c.mu.Unlock()
			return // entity moved back; the source copy is live
		}
		err := c.shards[tok.from].loop.Enqueue(removal, ackCh)
		c.mu.Unlock()
		if errors.Is(err, applyloop.ErrClosed) {
			break // shutting down; next boot's rebuild retires the copy
		}
		if err != nil {
			continue // transient (queue full): back off and retry
		}
		if ack := <-ackCh; ack.Err == nil {
			c.retirements.Add(1)
			return
		}
	}
	c.retireFailures.Add(1)
}

// routeRemoval enqueues a removal to the entity's registered shard. An
// unknown ID is a no-op removal, routed to shard 0 so the caller still
// gets its ack (changed=false). Caller holds c.mu.
func routeRemoval[K comparable](c *Cluster, mut engine.Mutation, reply chan<- applyloop.Ack, reg map[K]int, id K) error {
	target, ok := reg[id]
	if !ok {
		target = 0
	}
	if err := c.shards[target].loop.Enqueue(mut, reply); err != nil {
		return err
	}
	if ok {
		delete(reg, id)
	}
	return nil
}

// Mutate enqueues the mutations (in order) and blocks until every one is
// acknowledged or ctx ends — the engine-plane entry point used by tests
// and the differential harness; the HTTP layer uses Enqueue directly.
func (c *Cluster) Mutate(ctx context.Context, muts ...engine.Mutation) ([]applyloop.Ack, error) {
	reply := make(chan applyloop.Ack, len(muts))
	for i, m := range muts {
		if err := c.Enqueue(m, reply); err != nil {
			return nil, fmt.Errorf("cluster: enqueue %d/%d: %w", i, len(muts), err)
		}
	}
	acks := make([]applyloop.Ack, 0, len(muts))
	for range muts {
		select {
		case a := <-reply:
			acks = append(acks, a)
		case <-ctx.Done():
			return acks, ctx.Err()
		}
	}
	return acks, nil
}

// quiesceID is a task ID no workload ever uses (IDs are non-negative);
// removing it is a guaranteed no-op barrier mutation.
const quiesceID = model.TaskID(-1 << 30)

// Quiesce blocks until every mutation enqueued before the call has been
// applied on its shard: it waits out in-flight cross-shard moves (whose
// retirement removals are enqueued asynchronously, after the destination
// ack), then pushes a no-op barrier through each shard's FIFO queue and
// waits for all acks. Tests and the differential harness use it to reach a
// settled state before solving.
func (c *Cluster) Quiesce(ctx context.Context) error {
	if err := c.awaitMoves(ctx); err != nil {
		return fmt.Errorf("cluster: quiesce: %w", err)
	}
	reply := make(chan applyloop.Ack, len(c.shards))
	for i, sh := range c.shards {
		if err := sh.loop.Enqueue(engine.TaskRemoval(quiesceID), reply); err != nil {
			return fmt.Errorf("cluster: quiesce shard %d: %w", i, err)
		}
	}
	for range c.shards {
		select {
		case <-reply:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// awaitMoves blocks until every in-flight cross-shard move has finished
// (destination ack received and source retirement settled), or ctx ends.
func (c *Cluster) awaitMoves(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		c.moveWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the cluster's HTTP handler (the same /v1 surface as
// internal/serve, plus per-shard and escalation stats).
func (c *Cluster) Handler() http.Handler { return c.mux }

// ListenAndServe serves the handler on addr until Shutdown (which returns
// http.ErrServerClosed here) or a listener error.
func (c *Cluster) ListenAndServe(addr string) error {
	hs := &http.Server{Addr: addr, Handler: c.mux, ReadHeaderTimeout: 10 * time.Second}
	c.httpMu.Lock()
	if c.closing {
		c.httpMu.Unlock()
		return applyloop.ErrClosed
	}
	c.http = hs
	c.httpMu.Unlock()
	return hs.ListenAndServe()
}

// Serve is ListenAndServe over an already-bound listener, for callers that
// need to know the resolved address (e.g. -addr :0) before serving starts.
func (c *Cluster) Serve(ln net.Listener) error {
	hs := &http.Server{Handler: c.mux, ReadHeaderTimeout: 10 * time.Second}
	c.httpMu.Lock()
	if c.closing {
		c.httpMu.Unlock()
		return applyloop.ErrClosed
	}
	c.http = hs
	c.httpMu.Unlock()
	return hs.Serve(ln)
}

// Shutdown stops the cluster gracefully: the embedded HTTP server (if any)
// stops accepting, every shard loop closes and drains completely — every
// accepted mutation applies — and ctx bounds the whole wait.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.httpMu.Lock()
	c.closing = true
	hs := c.http
	c.httpMu.Unlock()

	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	// Let in-flight cross-shard moves finish while the loops still run:
	// their retirement removals need live source queues. A move that cannot
	// finish in time is safe to abandon — the destination copy is durable,
	// and the next boot's epoch-based rebuild retires the source copy.
	err = errors.Join(err, c.awaitMoves(ctx))
	for _, sh := range c.shards {
		sh.loop.Close()
	}
	for _, sh := range c.shards {
		select {
		case <-sh.loop.Drained():
		case <-ctx.Done():
			// An undrained loop may still be appending; leave its store
			// open rather than yank the WAL from under it.
			return errors.Join(err, ctx.Err())
		}
	}
	// Every shard's appender is gone; closing the stores group-commits any
	// unsynced tails.
	for _, sh := range c.shards {
		err = errors.Join(err, sh.store.Close())
	}
	return err
}

// sortEntities sorts tasks and workers by ID, the canonical instance
// order.
func sortEntities(in *model.Instance) {
	sort.Slice(in.Tasks, func(i, j int) bool { return in.Tasks[i].ID < in.Tasks[j].ID })
	sort.Slice(in.Workers, func(i, j int) bool { return in.Workers[i].ID < in.Workers[j].ID })
}
