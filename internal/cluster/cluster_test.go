package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

func TestTilingDeterministicAndInRange(t *testing.T) {
	tl := Tiling{Shards: 4}.withDefaults()
	rng := rand.New(rand.NewSource(11))
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		p := geo.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		s := tl.ShardOf(p)
		if s < 0 || s >= tl.Shards {
			t.Fatalf("ShardOf(%v) = %d out of [0,%d)", p, s, tl.Shards)
		}
		if s2 := tl.ShardOf(p); s2 != s {
			t.Fatalf("ShardOf(%v) not deterministic: %d then %d", p, s, s2)
		}
		seen[s] = true
	}
	if len(seen) != tl.Shards {
		t.Errorf("2000 random points over [-2,2)^2 hit only %d of %d shards", len(seen), tl.Shards)
	}
}

// TestShardsInDiscCoversDisc: the disc query must mark the shard of every
// point inside the disc — it is the pruning set for cross-shard pair
// discovery, so a miss would silently drop valid pairs.
func TestShardsInDiscCoversDisc(t *testing.T) {
	tl := Tiling{Shards: 5, TileSize: 0.25}.withDefaults()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		c := geo.Pt(rng.Float64()*2-1, rng.Float64()*2-1)
		r := rng.Float64() * 1.5
		reach := tl.ShardsInDisc(c, r)
		for k := 0; k < 40; k++ {
			ang := rng.Float64() * 2 * math.Pi
			d := rng.Float64() * r
			p := geo.Pt(c.X+d*math.Cos(ang), c.Y+d*math.Sin(ang))
			if !reach[tl.ShardOf(p)] {
				t.Fatalf("trial %d: point %v at distance %.3f inside disc(%v, %.3f) maps to unmarked shard %d",
					trial, p, d, c, r, tl.ShardOf(p))
			}
		}
	}
	// Zero radius still marks the center's own shard.
	reach := tl.ShardsInDisc(geo.Pt(0.1, 0.1), 0)
	if !reach[tl.ShardOf(geo.Pt(0.1, 0.1))] {
		t.Error("zero-radius disc must mark the center's shard")
	}
}

func TestRemovalOfUnknownIDAcksUnchanged(t *testing.T) {
	cl, err := New(Config{Shards: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, cl)
	ctx := context.Background()
	acks, err := cl.Mutate(ctx, engine.TaskRemoval(999), engine.WorkerRemoval(999))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range acks {
		if a.Changed {
			t.Errorf("removal of an unknown ID acked Changed=true: %+v", a)
		}
	}
}

func TestCrossShardMoveRetiresStaleCopy(t *testing.T) {
	cl, err := New(Config{Shards: 4, TileSize: 0.3, Beta: 0.5, BetaSet: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, cl)
	ctx := context.Background()

	// Find two locations on different shards.
	locA := geo.Pt(0.05, 0.05)
	var locB geo.Point
	for x := 0.05; ; x += 0.3 {
		locB = geo.Pt(x, 0.05)
		if cl.tiling.ShardOf(locB) != cl.tiling.ShardOf(locA) {
			break
		}
		if x > 5 {
			t.Skip("hash degenerate: every tile on one shard")
		}
	}
	w := model.Worker{ID: 1, Loc: locA, Speed: 1, Dir: geo.FullCircle, Confidence: 0.9}
	if _, err := cl.Mutate(ctx, engine.WorkerUpsert(w)); err != nil {
		t.Fatal(err)
	}
	w.Loc = locB
	if _, err := cl.Mutate(ctx, engine.WorkerUpsert(w)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cl.moves.Load(); got != 1 {
		t.Errorf("moves = %d, want 1", got)
	}
	// Exactly one live copy across all shards, at the new location.
	copies := 0
	for _, sh := range cl.shards {
		for _, sw := range sh.snap.Load().Problem.In.Workers {
			if sw.ID == 1 {
				copies++
				if sw.Loc != locB {
					t.Errorf("surviving copy at %v, want %v", sw.Loc, locB)
				}
			}
		}
	}
	if copies != 1 {
		t.Errorf("worker 1 has %d live copies across shards, want 1", copies)
	}
	cl.mu.Lock()
	home := cl.workerShard[1]
	cl.mu.Unlock()
	if home != cl.tiling.ShardOf(locB) {
		t.Errorf("registry routes worker 1 to shard %d, want %d", home, cl.tiling.ShardOf(locB))
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	cl, err := New(Config{Shards: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var muts []engine.Mutation
	for i := 0; i < 64; i++ {
		muts = append(muts, engine.TaskUpsert(model.Task{
			ID: model.TaskID(i), Loc: geo.Pt(float64(i)*0.07, 0.2), Start: 0, End: 5,
		}))
	}
	if _, err := cl.Mutate(ctx, muts...); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cl.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	// Every accepted mutation applied before shutdown returned.
	total := 0
	for _, sh := range cl.shards {
		total += sh.snap.Load().Tasks()
	}
	if total != 64 {
		t.Errorf("after drain, shards hold %d tasks, want 64", total)
	}
	if err := cl.Enqueue(engine.TaskUpsert(model.Task{ID: 99, End: 1}), nil); err == nil {
		t.Error("Enqueue after Shutdown should fail")
	}
}

func TestHTTPSurface(t *testing.T) {
	cl, err := New(Config{Shards: 4, Beta: 0.5, BetaSet: true, SolverName: "greedy"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, cl)
	ts := httptest.NewServer(cl.Handler())
	defer ts.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decode := func(resp *http.Response, v any) {
		t.Helper()
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}

	var tasks []map[string]any
	for i := 0; i < 12; i++ {
		f := float64(i) / 11
		tasks = append(tasks, map[string]any{"id": i, "x": 0.05 + 0.9*f, "y": 0.5, "start": 0, "end": 6})
	}
	resp := post("/v1/tasks", tasks)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/tasks: %s", resp.Status)
	}
	var ackBody struct {
		Accepted int `json:"accepted"`
	}
	decode(resp, &ackBody)
	if ackBody.Accepted != 12 {
		t.Fatalf("accepted %d tasks, want 12", ackBody.Accepted)
	}

	var workers []map[string]any
	for i := 0; i < 16; i++ {
		f := float64(i) / 15
		workers = append(workers, map[string]any{
			"id": i, "x": 0.05 + 0.9*f, "y": 0.45, "speed": 1.0, "confidence": 0.8, "depart": 0,
		})
	}
	resp = post("/v1/workers", workers)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/workers: %s", resp.Status)
	}
	resp.Body.Close()

	resp = post("/v1/solve", map[string]any{"seed": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve: %s", resp.Status)
	}
	var solve SolveResponse
	decode(resp, &solve)
	if !solve.Feasible || solve.AssignedWorkers == 0 {
		t.Fatalf("solve infeasible: %+v", solve)
	}
	if solve.EscalatedComponents+solve.InteriorComponents != solve.Stats.Components {
		t.Errorf("escalated %d + interior %d != components %d",
			solve.EscalatedComponents, solve.InteriorComponents, solve.Stats.Components)
	}

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp = get("/v1/assignment")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/assignment: %s", resp.Status)
	}
	resp.Body.Close()

	resp = get("/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: %s", resp.Status)
	}
	var stats struct {
		Version uint64 `json:"version"`
		Tasks   int    `json:"tasks"`
		Workers int    `json:"workers"`
		Pairs   int    `json:"pairs"`
		Shards  []struct {
			Shard   int    `json:"shard"`
			Version uint64 `json:"version"`
		} `json:"shards"`
		Cluster struct {
			ShardCount          int    `json:"shard_count"`
			ConsistencyFailures uint64 `json:"consistency_failures"`
			Assemblies          uint64 `json:"assemblies"`
		} `json:"cluster"`
		Solves uint64 `json:"solves"`
	}
	decode(resp, &stats)
	if stats.Tasks != 12 || stats.Workers != 16 {
		t.Errorf("stats population %d/%d, want 12/16", stats.Tasks, stats.Workers)
	}
	if len(stats.Shards) != 4 || stats.Cluster.ShardCount != 4 {
		t.Errorf("stats shard breakdown has %d rows, shard_count %d, want 4/4",
			len(stats.Shards), stats.Cluster.ShardCount)
	}
	if stats.Cluster.ConsistencyFailures != 0 {
		t.Errorf("consistency_failures = %d, want 0", stats.Cluster.ConsistencyFailures)
	}
	if stats.Cluster.Assemblies == 0 || stats.Solves != 1 {
		t.Errorf("assemblies %d / solves %d, want >0 / 1", stats.Cluster.Assemblies, stats.Solves)
	}

	// Remove a task; the stats population must shrink.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tasks/0", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rm struct {
		Removed bool `json:"removed"`
	}
	decode(dresp, &rm)
	if !rm.Removed {
		t.Error("DELETE /v1/tasks/0 reported removed=false")
	}

	resp = get("/healthz")
	var hz struct {
		OK     bool `json:"ok"`
		Shards int  `json:"shards"`
	}
	decode(resp, &hz)
	if !hz.OK || hz.Shards != 4 {
		t.Errorf("healthz %+v, want ok with 4 shards", hz)
	}
}

func shutdown(t *testing.T, cl *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
