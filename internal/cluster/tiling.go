// Package cluster is the multi-shard horizontal scale-out of the
// assignment service: the space is cut into square tiles, tiles are mapped
// to N shards by consistent hashing of their integer coordinates, and each
// shard owns its own engine.Engine behind its own single-writer apply loop
// (internal/applyloop, shared with internal/serve) and copy-on-write
// snapshot plane. Mutations route by entity location, so the write
// bandwidth scales with the shard count and each shard's per-batch
// valid-pair rebuild covers only its own tile set.
//
// Solves stay exact. The Coordinator assembles the global problem from the
// shard snapshots — the union of the per-shard pair sets plus the
// cross-shard pairs it derives from the model's reachability predicate —
// in canonical (task, worker) order, partitions it into connected
// components (internal/decompose), and solves it with exactly the
// machinery of core.Sharded: components interior to one shard solve
// shard-local, components whose entities span a tile boundary are
// escalated and solved over the assembled boundary sub-instance, and the
// per-component results merge through the exact min/sum merge. The
// differential suite pins the result bit-identical to a monolithic solve
// of the same population.
package cluster

import (
	"math"

	"rdbsc/internal/geo"
)

// defaultTileSize matches the default grid Lmax (0.3): a tile the size of
// the maximum travel distance keeps most reachability edges within one
// tile neighborhood while still splitting the unit square across shards.
const defaultTileSize = 0.3

// maxDiscTiles caps the tile enumeration of ShardsInDisc; a disc covering
// more tiles than this conservatively reports every shard reachable.
const maxDiscTiles = 4096

// Tiling maps locations to shards: the plane is cut into TileSize-sided
// square tiles and each tile's integer coordinates hash to one of Shards
// shards (FNV-1a). The mapping is deterministic — a pure function of the
// location and the tiling parameters — so every node, test, and replay
// routes an entity identically.
type Tiling struct {
	// Shards is the shard count (>= 1).
	Shards int
	// TileSize is the tile side length (default 0.3, the default grid
	// Lmax).
	TileSize float64
}

func (tl Tiling) withDefaults() Tiling {
	if tl.Shards <= 0 {
		tl.Shards = 1
	}
	if tl.TileSize <= 0 {
		tl.TileSize = defaultTileSize
	}
	return tl
}

// Tile returns the integer tile coordinates containing p.
func (tl Tiling) Tile(p geo.Point) (tx, ty int) {
	return int(math.Floor(p.X / tl.TileSize)), int(math.Floor(p.Y / tl.TileSize))
}

// ShardOfTile hashes tile coordinates to a shard index in [0, Shards).
func (tl Tiling) ShardOfTile(tx, ty int) int {
	// Inline FNV-1a over the two coordinates' little-endian bytes.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [2]uint64{uint64(int64(tx)), uint64(int64(ty))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return int(h % uint64(tl.Shards))
}

// ShardOf returns the shard owning location p.
func (tl Tiling) ShardOf(p geo.Point) int {
	tx, ty := tl.Tile(p)
	return tl.ShardOfTile(tx, ty)
}

// ShardsInDisc reports, per shard, whether any tile of that shard
// intersects the closed disc of radius r around c — the conservative
// "which shards could a worker starting at c reach" question behind
// cross-shard pair discovery. A non-positive radius still marks the
// center's own shard. Discs spanning more than maxDiscTiles tiles mark
// every shard (exactness is preserved: callers re-check every candidate
// pair with the model's reachability predicate; this set only prunes).
func (tl Tiling) ShardsInDisc(c geo.Point, r float64) []bool {
	out := make([]bool, tl.Shards)
	out[tl.ShardOf(c)] = true
	if r <= 0 {
		return out
	}
	x0, y0 := tl.Tile(geo.Point{X: c.X - r, Y: c.Y - r})
	x1, y1 := tl.Tile(geo.Point{X: c.X + r, Y: c.Y + r})
	if n := (int64(x1-x0) + 1) * (int64(y1-y0) + 1); n > maxDiscTiles {
		for i := range out {
			out[i] = true
		}
		return out
	}
	marked := 1 // the center's shard
	for tx := x0; tx <= x1; tx++ {
		for ty := y0; ty <= y1; ty++ {
			// Nearest point of the tile's rectangle to the disc center.
			nx := clamp(c.X, float64(tx)*tl.TileSize, float64(tx+1)*tl.TileSize)
			ny := clamp(c.Y, float64(ty)*tl.TileSize, float64(ty+1)*tl.TileSize)
			dx, dy := nx-c.X, ny-c.Y
			if dx*dx+dy*dy <= r*r {
				s := tl.ShardOfTile(tx, ty)
				if !out[s] {
					out[s] = true
					marked++
					if marked == tl.Shards {
						return out
					}
				}
			}
		}
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
