package geo

import (
	"fmt"
	"math"
)

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// NormalizeAngle maps any angle to the canonical range [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, TwoPi)
	if a < 0 {
		a += TwoPi
	}
	// math.Mod can return values equal to TwoPi after the correction when a
	// is a tiny negative number; fold them back to 0.
	if a >= TwoPi {
		a = 0
	}
	return a
}

// AngularDiff returns the cyclic distance from a to b going counter-clockwise,
// in [0, 2π). AngularDiff(a, a) == 0.
func AngularDiff(a, b float64) float64 {
	return NormalizeAngle(b - a)
}

// AbsAngularDiff returns the smallest absolute angle between directions a
// and b, in [0, π].
func AbsAngularDiff(a, b float64) float64 {
	d := AngularDiff(a, b)
	if d > math.Pi {
		d = TwoPi - d
	}
	return d
}

// AngInterval is a counter-clockwise angular interval [Lo, Lo+Width] on the
// circle, with Lo normalized to [0, 2π) and Width in [0, 2π]. A Width of 2π
// covers the full circle (a worker free to move in any direction). The zero
// value is the degenerate interval {0}.
//
// AngInterval models the worker direction cone [α−, α+] of Definition 2 in
// the paper as Lo = α− and Width = α+ − α−.
type AngInterval struct {
	Lo    float64 // start angle in [0, 2π)
	Width float64 // extent in [0, 2π]
}

// FullCircle is the unconstrained direction interval [0, 2π].
var FullCircle = AngInterval{Lo: 0, Width: TwoPi}

// NewAngInterval builds the counter-clockwise interval from lo to hi.
// If hi < lo (after normalization) the interval wraps through 0.
// NewAngInterval(a, a) is the degenerate single direction {a}; use
// FullCircle for an unconstrained worker.
func NewAngInterval(lo, hi float64) AngInterval {
	lo = NormalizeAngle(lo)
	w := AngularDiff(lo, NormalizeAngle(hi))
	return AngInterval{Lo: lo, Width: w}
}

// AngIntervalAround builds the interval centered at mid with total width w
// (clamped to [0, 2π]).
func AngIntervalAround(mid, w float64) AngInterval {
	if w >= TwoPi {
		return FullCircle
	}
	if w < 0 {
		w = 0
	}
	return AngInterval{Lo: NormalizeAngle(mid - w/2), Width: w}
}

// Hi returns the end angle of the interval, normalized to [0, 2π).
func (iv AngInterval) Hi() float64 { return NormalizeAngle(iv.Lo + iv.Width) }

// Mid returns the midpoint direction of the interval.
func (iv AngInterval) Mid() float64 { return NormalizeAngle(iv.Lo + iv.Width/2) }

// IsFull reports whether the interval covers the whole circle.
func (iv AngInterval) IsFull() bool { return iv.Width >= TwoPi }

// Contains reports whether direction a lies inside the interval
// (boundaries inclusive).
func (iv AngInterval) Contains(a float64) bool {
	if iv.IsFull() {
		return true
	}
	return AngularDiff(iv.Lo, a) <= iv.Width
}

// Intersects reports whether two angular intervals share at least one
// direction.
func (iv AngInterval) Intersects(other AngInterval) bool {
	if iv.IsFull() || other.IsFull() {
		return true
	}
	return AngularDiff(iv.Lo, other.Lo) <= iv.Width ||
		AngularDiff(other.Lo, iv.Lo) <= other.Width
}

// Union returns the smallest interval containing both iv and other.
// If the two intervals plus the gap exceed the circle the result is
// FullCircle.
func (iv AngInterval) Union(other AngInterval) AngInterval {
	if iv.IsFull() || other.IsFull() {
		return FullCircle
	}
	// Candidate 1: start at iv.Lo, extend to cover other.
	w1 := math.Max(iv.Width, AngularDiff(iv.Lo, other.Lo)+other.Width)
	// Candidate 2: start at other.Lo, extend to cover iv.
	w2 := math.Max(other.Width, AngularDiff(other.Lo, iv.Lo)+iv.Width)
	if w1 <= w2 {
		if w1 >= TwoPi {
			return FullCircle
		}
		return AngInterval{Lo: iv.Lo, Width: w1}
	}
	if w2 >= TwoPi {
		return FullCircle
	}
	return AngInterval{Lo: other.Lo, Width: w2}
}

// String implements fmt.Stringer.
func (iv AngInterval) String() string {
	return fmt.Sprintf("[%.4f, %.4f]", iv.Lo, iv.Lo+iv.Width)
}

// EnclosingSector returns the minimal angular interval, anchored at origin,
// that contains the bearings from origin to every point in pts. Points
// coincident with origin are ignored. When pts is empty (or all coincident)
// the zero interval is returned along with ok=false.
//
// This implements the worker-extraction step of Section 8.2: "we draw a
// sector at the start point and contain all the other points of the
// trajectory in the sector".
func EnclosingSector(origin Point, pts []Point) (AngInterval, bool) {
	bearings := make([]float64, 0, len(pts))
	for _, p := range pts {
		if p == origin {
			continue
		}
		bearings = append(bearings, origin.Bearing(p))
	}
	if len(bearings) == 0 {
		return AngInterval{}, false
	}
	return EnclosingAngles(bearings), true
}

// EnclosingAngles returns the minimal angular interval containing every
// direction in angles. It runs in O(k log k) by sorting and finding the
// largest gap between consecutive directions; the complement of that gap is
// the minimal enclosing interval.
func EnclosingAngles(angles []float64) AngInterval {
	if len(angles) == 0 {
		return AngInterval{}
	}
	sorted := make([]float64, len(angles))
	for i, a := range angles {
		sorted[i] = NormalizeAngle(a)
	}
	sortFloats(sorted)
	// Find the largest gap between consecutive angles (cyclically).
	bestGap := TwoPi - sorted[len(sorted)-1] + sorted[0] // wrap-around gap
	bestIdx := 0                                         // interval starts at sorted[bestIdx]
	for i := 1; i < len(sorted); i++ {
		if gap := sorted[i] - sorted[i-1]; gap > bestGap {
			bestGap = gap
			bestIdx = i
		}
	}
	n := len(sorted)
	lo := sorted[bestIdx]
	// The interval ends at the angle just before the gap. Computing the width
	// with AngularDiff keeps Contains exactly consistent for the extreme
	// input angles (avoiding one-ULP misses from the 2π−gap form).
	hi := sorted[(bestIdx+n-1)%n]
	w := AngularDiff(lo, hi)
	if n == 1 {
		w = 0
	}
	return AngInterval{Lo: lo, Width: w}
}

// BearingRange returns an angular interval guaranteed to contain the bearing
// from every point of rectangle from to every point of rectangle to. It is
// conservative (it may be wider than the exact hull) but never misses a
// feasible bearing, which is what the grid index's cell-level pruning needs.
//
// When the rectangles intersect, any bearing is possible and FullCircle is
// returned.
func BearingRange(from, to Rect) AngInterval {
	if from.Intersects(to) {
		return FullCircle
	}
	fc := from.Corners()
	tc := to.Corners()
	bearings := make([]float64, 0, 16)
	for _, a := range fc {
		for _, b := range tc {
			if a == b {
				continue
			}
			bearings = append(bearings, a.Bearing(b))
		}
	}
	if len(bearings) == 0 {
		return FullCircle
	}
	return EnclosingAngles(bearings)
}

// sortFloats is insertion sort for small slices and falls back to a simple
// heapsort for larger ones; it avoids pulling in package sort for a hot,
// small-input path.
func sortFloats(a []float64) {
	if len(a) < 32 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	heapSortFloats(a)
}

func heapSortFloats(a []float64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
