package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(0.3, 0.7), Pt(0.3, 0.7), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); !almostEq(got, tc.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Confine to a sane range; astronomically large coordinates overflow
		// d*d and are outside the [0,1]² data space anyway.
		p := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		q := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		if anyBad(p.X, p.Y, q.X, q.Y) {
			return true
		}
		d := p.Dist(q)
		return almostEq(p.Dist2(q), d*d, 1e-9*(1+d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Pt(ax, ay), Pt(bx, by)
		return p.Dist(q) == q.Dist(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBearing(t *testing.T) {
	o := Pt(0, 0)
	tests := []struct {
		name string
		to   Point
		want float64
	}{
		{"east", Pt(1, 0), 0},
		{"north", Pt(0, 1), math.Pi / 2},
		{"west", Pt(-1, 0), math.Pi},
		{"south", Pt(0, -1), 3 * math.Pi / 2},
		{"northeast", Pt(1, 1), math.Pi / 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := o.Bearing(tc.to); !almostEq(got, tc.want, 1e-12) {
				t.Errorf("Bearing = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, 5)
	if got := p.Add(q); got != Pt(4, 7) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != Pt(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Pt(1, 0), Pt(0, 1))
	if r.Min != Pt(0, 0) || r.Max != Pt(1, 1) {
		t.Errorf("NewRect = %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(1, 1))
	for _, p := range []Point{Pt(0, 0), Pt(1, 1), Pt(0.5, 0.5), Pt(0, 1)} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range []Point{Pt(-0.1, 0.5), Pt(1.1, 0.5), Pt(0.5, -0.1), Pt(0.5, 1.1)} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestRectClamp(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(1, 1))
	tests := []struct{ in, want Point }{
		{Pt(0.5, 0.5), Pt(0.5, 0.5)},
		{Pt(-1, 0.5), Pt(0, 0.5)},
		{Pt(2, 2), Pt(1, 1)},
		{Pt(0.5, -3), Pt(0.5, 0)},
	}
	for _, tc := range tests {
		if got := r.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRectMinDist(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(1, 1))
	tests := []struct {
		name string
		b    Rect
		want float64
	}{
		{"overlapping", NewRect(Pt(0.5, 0.5), Pt(2, 2)), 0},
		{"touching", NewRect(Pt(1, 0), Pt(2, 1)), 0},
		{"right gap", NewRect(Pt(2, 0), Pt(3, 1)), 1},
		{"diag gap", NewRect(Pt(4, 5), Pt(6, 7)), 5}, // gap (3,4) -> 5
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.MinDist(tc.b); !almostEq(got, tc.want, 1e-12) {
				t.Errorf("MinDist = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestRectMinMaxDistOrder(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := NewRect(Pt(math.Mod(ax, 10), math.Mod(ay, 10)), Pt(math.Mod(bx, 10), math.Mod(by, 10)))
		s := NewRect(Pt(math.Mod(cx, 10), math.Mod(cy, 10)), Pt(math.Mod(dx, 10), math.Mod(dy, 10)))
		return r.MinDist(s) <= s.MaxDist(r)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectMinDistBoundsSampledPoints(t *testing.T) {
	// Any concrete point pair must be at distance within [MinDist, MaxDist].
	r := NewRect(Pt(0, 0), Pt(1, 2))
	s := NewRect(Pt(3, 3), Pt(5, 4))
	lo, hi := r.MinDist(s), r.MaxDist(s)
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			p := Pt(float64(i)/4*r.Width(), float64(j)/4*r.Height())
			q := Pt(3+float64(i)/4*s.Width(), 3+float64(j)/4*s.Height())
			d := p.Dist(q)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("point dist %v outside [%v, %v]", d, lo, hi)
			}
		}
	}
}

func TestRectCenterAndSize(t *testing.T) {
	r := NewRect(Pt(1, 2), Pt(3, 6))
	if got := r.Center(); got != Pt(2, 4) {
		t.Errorf("Center = %v", got)
	}
	if r.Width() != 2 || r.Height() != 4 {
		t.Errorf("size = %v x %v", r.Width(), r.Height())
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(1, 1))
	if !a.Intersects(NewRect(Pt(1, 1), Pt(2, 2))) {
		t.Error("corner-touching rects should intersect")
	}
	if a.Intersects(NewRect(Pt(1.01, 1.01), Pt(2, 2))) {
		t.Error("separated rects should not intersect")
	}
}
