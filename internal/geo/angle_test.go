package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{TwoPi, 0},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{-0.1, TwoPi - 0.1},
		{7 * TwoPi, 0},
	}
	for _, tc := range tests {
		if got := NormalizeAngle(tc.in); !almostEq(got, tc.want, 1e-9) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		got := NormalizeAngle(a)
		return got >= 0 && got < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsAngularDiff(t *testing.T) {
	tests := []struct{ a, b, want float64 }{
		{0, math.Pi / 2, math.Pi / 2},
		{math.Pi / 2, 0, math.Pi / 2},
		{0.1, TwoPi - 0.1, 0.2},
		{0, math.Pi, math.Pi},
	}
	for _, tc := range tests {
		if got := AbsAngularDiff(tc.a, tc.b); !almostEq(got, tc.want, 1e-9) {
			t.Errorf("AbsAngularDiff(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAngIntervalContains(t *testing.T) {
	iv := NewAngInterval(math.Pi/4, 3*math.Pi/4)
	for _, a := range []float64{math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4} {
		if !iv.Contains(a) {
			t.Errorf("Contains(%v) = false, want true", a)
		}
	}
	for _, a := range []float64{0, math.Pi, 3 * math.Pi / 2} {
		if iv.Contains(a) {
			t.Errorf("Contains(%v) = true, want false", a)
		}
	}
}

func TestAngIntervalWrapsZero(t *testing.T) {
	iv := NewAngInterval(7*math.Pi/4, math.Pi/4) // wraps through 0
	for _, a := range []float64{7 * math.Pi / 4, 0, math.Pi / 8, math.Pi / 4} {
		if !iv.Contains(a) {
			t.Errorf("wrapping interval should contain %v", a)
		}
	}
	if iv.Contains(math.Pi) {
		t.Error("wrapping interval should not contain π")
	}
	if !almostEq(iv.Width, math.Pi/2, 1e-9) {
		t.Errorf("Width = %v, want %v", iv.Width, math.Pi/2)
	}
}

func TestFullCircleContainsEverything(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		return FullCircle.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngIntervalIntersects(t *testing.T) {
	a := NewAngInterval(0, math.Pi/2)
	tests := []struct {
		name string
		b    AngInterval
		want bool
	}{
		{"overlapping", NewAngInterval(math.Pi/4, math.Pi), true},
		{"disjoint", NewAngInterval(math.Pi, 3*math.Pi/2), false},
		{"touching at end", NewAngInterval(math.Pi/2, math.Pi), true},
		{"wrapping touches start", NewAngInterval(3*math.Pi/2, 0.0), true},
		{"full circle", FullCircle, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.Intersects(tc.b); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.b.Intersects(a); got != tc.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAngIntervalIntersectsSymmetric(t *testing.T) {
	f := func(lo1, w1, lo2, w2 float64) bool {
		if anyBad(lo1, w1, lo2, w2) {
			return true
		}
		a := AngInterval{NormalizeAngle(lo1), math.Mod(math.Abs(w1), TwoPi)}
		b := AngInterval{NormalizeAngle(lo2), math.Mod(math.Abs(w2), TwoPi)}
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngIntervalUnionContainsBoth(t *testing.T) {
	f := func(lo1, w1, lo2, w2 float64) bool {
		if anyBad(lo1, w1, lo2, w2) {
			return true
		}
		a := AngInterval{NormalizeAngle(lo1), math.Mod(math.Abs(w1), TwoPi)}
		b := AngInterval{NormalizeAngle(lo2), math.Mod(math.Abs(w2), TwoPi)}
		u := a.Union(b)
		// Sample both intervals; every sample must be in the union.
		for i := 0; i <= 8; i++ {
			fa := a.Lo + a.Width*float64(i)/8
			fb := b.Lo + b.Width*float64(i)/8
			if !u.Contains(NormalizeAngle(fa)) || !u.Contains(NormalizeAngle(fb)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAngIntervalMidHi(t *testing.T) {
	iv := NewAngInterval(3*math.Pi/2, math.Pi/2) // width π through 0
	if !almostEq(iv.Width, math.Pi, 1e-9) {
		t.Fatalf("Width = %v", iv.Width)
	}
	if !almostEq(iv.Mid(), 0, 1e-9) && !almostEq(iv.Mid(), TwoPi, 1e-9) {
		t.Errorf("Mid = %v, want 0", iv.Mid())
	}
	if !almostEq(iv.Hi(), math.Pi/2, 1e-9) {
		t.Errorf("Hi = %v", iv.Hi())
	}
}

func TestEnclosingAnglesSimple(t *testing.T) {
	iv := EnclosingAngles([]float64{0.1, 0.5, 1.0})
	if !almostEq(iv.Lo, 0.1, 1e-9) || !almostEq(iv.Width, 0.9, 1e-9) {
		t.Errorf("EnclosingAngles = %+v, want lo=0.1 width=0.9", iv)
	}
}

func TestEnclosingAnglesWrap(t *testing.T) {
	// Angles clustered around 0: the minimal interval must wrap.
	iv := EnclosingAngles([]float64{TwoPi - 0.2, 0.1, 0.3})
	if !almostEq(iv.Lo, TwoPi-0.2, 1e-9) || !almostEq(iv.Width, 0.5, 1e-9) {
		t.Errorf("EnclosingAngles = %+v, want lo=2π−0.2 width=0.5", iv)
	}
}

func TestEnclosingAnglesSingle(t *testing.T) {
	iv := EnclosingAngles([]float64{1.5})
	if iv.Lo != 1.5 || iv.Width != 0 {
		t.Errorf("EnclosingAngles single = %+v", iv)
	}
}

func TestEnclosingAnglesCoversAll(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(40)
		angles := make([]float64, k)
		for i := range angles {
			angles[i] = r.Float64() * TwoPi
		}
		iv := EnclosingAngles(angles)
		for _, a := range angles {
			if !iv.Contains(a) {
				t.Fatalf("trial %d: interval %+v misses angle %v", trial, iv, a)
			}
		}
	}
}

func TestEnclosingAnglesMinimal(t *testing.T) {
	// Check minimality against brute force over candidate start angles.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		k := 2 + r.Intn(10)
		angles := make([]float64, k)
		for i := range angles {
			angles[i] = r.Float64() * TwoPi
		}
		iv := EnclosingAngles(angles)
		// Brute force: try each angle as the start and compute needed width.
		best := TwoPi
		for _, start := range angles {
			var w float64
			for _, a := range angles {
				if d := AngularDiff(start, a); d > w {
					w = d
				}
			}
			if w < best {
				best = w
			}
		}
		if !almostEq(iv.Width, best, 1e-9) {
			t.Fatalf("trial %d: width %v, brute-force best %v", trial, iv.Width, best)
		}
	}
}

func TestEnclosingSector(t *testing.T) {
	origin := Pt(0, 0)
	iv, ok := EnclosingSector(origin, []Point{Pt(1, 0), Pt(1, 1), Pt(0, 1)})
	if !ok {
		t.Fatal("EnclosingSector returned ok=false")
	}
	if !almostEq(iv.Lo, 0, 1e-9) || !almostEq(iv.Width, math.Pi/2, 1e-9) {
		t.Errorf("EnclosingSector = %+v, want [0, π/2]", iv)
	}
	if _, ok := EnclosingSector(origin, []Point{origin}); ok {
		t.Error("EnclosingSector of coincident points should return ok=false")
	}
	if _, ok := EnclosingSector(origin, nil); ok {
		t.Error("EnclosingSector of no points should return ok=false")
	}
}

func TestBearingRangeConservative(t *testing.T) {
	from := NewRect(Pt(0, 0), Pt(1, 1))
	to := NewRect(Pt(3, 3), Pt(4, 4))
	iv := BearingRange(from, to)
	// Sample interior points of both rects; all bearings must be covered.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		p := Pt(r.Float64(), r.Float64())
		q := Pt(3+r.Float64(), 3+r.Float64())
		if !iv.Contains(p.Bearing(q)) {
			t.Fatalf("BearingRange %+v misses bearing %v", iv, p.Bearing(q))
		}
	}
}

func TestBearingRangeIntersecting(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(1, 1))
	b := NewRect(Pt(0.5, 0.5), Pt(2, 2))
	if got := BearingRange(a, b); !got.IsFull() {
		t.Errorf("BearingRange of intersecting rects = %+v, want full circle", got)
	}
}

func TestSortFloats(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 5, 31, 32, 33, 100, 500} {
		a := make([]float64, n)
		for i := range a {
			a[i] = r.Float64()
		}
		sortFloats(a)
		for i := 1; i < n; i++ {
			if a[i-1] > a[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
