// Package geo provides the planar geometry substrate used throughout the
// RDB-SC system: points, rectangles, angles, angular intervals (the
// "direction cones" of moving workers), and the rectangle-to-rectangle
// distance and bearing bounds needed by the grid index's cell-level pruning.
//
// The data space follows the paper's convention of the unit square [0,1]²,
// but nothing in this package assumes those bounds except where documented.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2D data space.
type Point struct {
	X, Y float64
}

// Pt is a convenience constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons and accumulation-heavy loops (KMeans).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f about the origin.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Bearing returns the angle of the ray from p to q, normalized to [0, 2π).
// It is the direction a worker at p must move to reach q.
func (p Point) Bearing(q Point) float64 {
	return NormalizeAngle(math.Atan2(q.Y-p.Y, q.X-p.X))
}

// In reports whether p lies inside the unit square [0,1]².
func (p Point) In(r Rect) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, used for grid cells and bounding boxes.
// Min is the lower-left corner and Max the upper-right corner.
type Rect struct {
	Min, Max Point
}

// UnitSquare is the paper's default data space [0,1]².
var UnitSquare = Rect{Min: Point{0, 0}, Max: Point{1, 1}}

// NewRect builds a rectangle from two opposite corners in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies in r (boundaries inclusive).
func (r Rect) Contains(p Point) bool { return p.In(r) }

// Corners returns the four corners of r in counter-clockwise order
// starting at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// MinDist returns the minimum Euclidean distance between any point of r and
// any point of s. It is zero when the rectangles intersect. The grid index
// uses it for the cell-level travel-time lower bound (Section 7 of the
// paper: t_min = d_min / v_max).
func (r Rect) MinDist(s Rect) float64 {
	dx := axisGap(r.Min.X, r.Max.X, s.Min.X, s.Max.X)
	dy := axisGap(r.Min.Y, r.Max.Y, s.Min.Y, s.Max.Y)
	return math.Hypot(dx, dy)
}

// MaxDist returns the maximum Euclidean distance between any point of r and
// any point of s, i.e. the farthest corner-to-corner distance.
func (r Rect) MaxDist(s Rect) float64 {
	var max float64
	for _, a := range r.Corners() {
		for _, b := range s.Corners() {
			if d := a.Dist(b); d > max {
				max = d
			}
		}
	}
	return max
}

// MinDistPoint returns the minimum distance from point p to rectangle s.
func (s Rect) MinDistPoint(p Point) float64 {
	return p.Dist(s.Clamp(p))
}

// axisGap returns the gap between intervals [aLo,aHi] and [bLo,bHi] on one
// axis, or 0 when they overlap.
func axisGap(aLo, aHi, bLo, bHi float64) float64 {
	switch {
	case bLo > aHi:
		return bLo - aHi
	case aLo > bHi:
		return aLo - bHi
	default:
		return 0
	}
}
