package model

import (
	"math"
	"testing"
	"testing/quick"

	"rdbsc/internal/geo"
)

// Property: Arrival's reported time is physically consistent — never before
// the worker could possibly get there, never outside the valid period.
func TestArrivalPhysicalConsistency(t *testing.T) {
	f := func(tx, ty, wx, wy uint16, v, dep uint8, wait bool) bool {
		tk := Task{ID: 0, Loc: geo.Pt(f01(tx), f01(ty)), Start: 0.5, End: 2}
		w := Worker{
			ID:     0,
			Loc:    geo.Pt(f01(wx), f01(wy)),
			Speed:  0.05 + float64(v)/128,
			Dir:    geo.FullCircle,
			Depart: float64(dep) / 128,
		}
		opt := Options{WaitAllowed: wait}
		arr, ok := Arrival(tk, w, opt)
		if !ok {
			return true
		}
		earliest := w.Depart + w.TravelTime(tk.Loc)
		if arr < earliest-1e-9 && !(wait && arr == tk.Start) {
			return false
		}
		return arr >= tk.Start-1e-9 && arr <= tk.End+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: widening the direction cone never invalidates a pair.
func TestWiderConeNeverHurts(t *testing.T) {
	f := func(tx, ty, wx, wy uint16, mid float64, wdt uint8) bool {
		if math.IsNaN(mid) || math.IsInf(mid, 0) {
			return true
		}
		tk := Task{ID: 0, Loc: geo.Pt(f01(tx), f01(ty)), Start: 0, End: 10}
		narrow := Worker{
			ID: 0, Loc: geo.Pt(f01(wx), f01(wy)), Speed: 1,
			Dir: geo.AngIntervalAround(mid, float64(wdt)/256*math.Pi),
		}
		wide := narrow
		wide.Dir = geo.AngIntervalAround(mid, float64(wdt)/256*math.Pi+0.5)
		if CanReach(tk, narrow, Options{}) && !CanReach(tk, wide, Options{}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: extending a task's deadline never invalidates a pair, and
// a faster worker never loses reachability.
func TestMonotoneRelaxations(t *testing.T) {
	f := func(tx, ty, wx, wy uint16, v uint8) bool {
		tk := Task{ID: 0, Loc: geo.Pt(f01(tx), f01(ty)), Start: 0, End: 1}
		w := Worker{
			ID: 0, Loc: geo.Pt(f01(wx), f01(wy)),
			Speed: 0.05 + float64(v)/256, Dir: geo.FullCircle,
		}
		if !CanReach(tk, w, Options{}) {
			return true
		}
		longer := tk
		longer.End = 5
		faster := w
		faster.Speed *= 2
		return CanReach(longer, w, Options{}) && CanReach(tk, faster, Options{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: assignments behave like a map worker→task under arbitrary
// operation sequences.
func TestAssignmentMapSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewAssignment()
		ref := map[WorkerID]TaskID{}
		for _, op := range ops {
			w := WorkerID(op % 16)
			t := TaskID(int32(op/16)%8 - 1) // includes NoTask = -1
			if t == NoTask {
				a.Unassign(w)
				delete(ref, w)
			} else {
				a.Assign(w, t)
				ref[w] = t
			}
		}
		if a.Len() != len(ref) {
			return false
		}
		for w, t := range ref {
			if a.TaskOf(w) != t {
				return false
			}
		}
		per := a.PerTask()
		total := 0
		for _, ws := range per {
			total += len(ws)
		}
		return total == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func f01(v uint16) float64 { return float64(v) / 65535 }
