package model

import (
	"math"
	"testing"
	"testing/quick"

	"rdbsc/internal/geo"
)

func task(id TaskID, x, y, s, e float64) Task {
	return Task{ID: id, Loc: geo.Pt(x, y), Start: s, End: e}
}

func worker(id WorkerID, x, y, v float64, dir geo.AngInterval, p float64) Worker {
	return Worker{ID: id, Loc: geo.Pt(x, y), Speed: v, Dir: dir, Confidence: p}
}

func TestArrivalBasic(t *testing.T) {
	// Worker at origin moving east at speed 1; task 0.5 east, open [0, 1].
	w := worker(1, 0, 0, 1, geo.NewAngInterval(-0.1, 0.1), 0.9)
	tk := task(1, 0.5, 0, 0, 1)
	arr, ok := Arrival(tk, w, Options{})
	if !ok {
		t.Fatal("pair should be valid")
	}
	if math.Abs(arr-0.5) > 1e-12 {
		t.Errorf("arrival = %v, want 0.5", arr)
	}
}

func TestArrivalDirectionConstraint(t *testing.T) {
	// Task is due west, worker can only go east.
	w := worker(1, 0.5, 0.5, 1, geo.NewAngInterval(-0.2, 0.2), 0.9)
	tk := task(1, 0.1, 0.5, 0, 10)
	if CanReach(tk, w, Options{}) {
		t.Error("task opposite to direction cone must be unreachable")
	}
	// Unconstrained worker reaches it.
	w.Dir = geo.FullCircle
	if !CanReach(tk, w, Options{}) {
		t.Error("full-circle worker must reach the task")
	}
}

func TestArrivalDeadline(t *testing.T) {
	w := worker(1, 0, 0, 0.1, geo.FullCircle, 0.9) // slow: needs 5h for 0.5
	tk := task(1, 0.5, 0, 0, 1)
	if CanReach(tk, w, Options{}) {
		t.Error("worker arriving after End must be invalid")
	}
	tk.End = 6
	if !CanReach(tk, w, Options{}) {
		t.Error("worker arriving before End must be valid")
	}
}

func TestArrivalEarlyStrictVsWait(t *testing.T) {
	w := worker(1, 0, 0, 1, geo.FullCircle, 0.9)
	tk := task(1, 0.5, 0, 2, 3) // opens at 2; worker arrives at 0.5
	if CanReach(tk, w, Options{}) {
		t.Error("strict semantics: early arrival must be invalid")
	}
	arr, ok := Arrival(tk, w, Options{WaitAllowed: true})
	if !ok {
		t.Fatal("WaitAllowed: early arrival must be valid")
	}
	if arr != 2 {
		t.Errorf("WaitAllowed arrival = %v, want clamp to Start=2", arr)
	}
}

func TestArrivalDepartOffset(t *testing.T) {
	w := worker(1, 0, 0, 1, geo.FullCircle, 0.9)
	w.Depart = 0.8
	tk := task(1, 0.5, 0, 0, 1)
	// Departing at 0.8 puts arrival at 1.3 > End=1: invalid.
	if CanReach(tk, w, Options{}) {
		t.Fatal("arrival 1.3 exceeds End=1, must have been rejected")
	}
	// With a longer valid period the same worker arrives at 1.3.
	tk.End = 2
	arr, ok := Arrival(tk, w, Options{})
	if !ok {
		t.Fatal("pair should be valid with End=2")
	}
	if math.Abs(arr-1.3) > 1e-9 {
		t.Errorf("arrival = %v, want 1.3", arr)
	}
}

func TestArrivalDepartLate(t *testing.T) {
	w := worker(1, 0, 0, 1, geo.FullCircle, 0.9)
	w.Depart = 2
	tk := task(1, 0.5, 0, 0, 1)
	if CanReach(tk, w, Options{}) {
		t.Error("worker departing after task End cannot be valid")
	}
}

func TestArrivalCoincidentLocation(t *testing.T) {
	w := worker(1, 0.3, 0.3, 1, geo.NewAngInterval(0, 0.01), 0.9)
	tk := task(1, 0.3, 0.3, 0, 1)
	arr, ok := Arrival(tk, w, Options{})
	if !ok {
		t.Fatal("coincident worker must be valid regardless of direction")
	}
	if arr != 0 {
		t.Errorf("arrival = %v, want Depart=0", arr)
	}
}

func TestApproachAngle(t *testing.T) {
	tk := task(1, 0.5, 0.5, 0, 1)
	w := worker(1, 1, 0.5, 1, geo.FullCircle, 0.9) // due east of task
	if got := ApproachAngle(tk, w); math.Abs(got) > 1e-12 {
		t.Errorf("ApproachAngle = %v, want 0", got)
	}
	w.Loc = geo.Pt(0.5, 1) // due north
	if got := ApproachAngle(tk, w); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("ApproachAngle = %v, want π/2", got)
	}
	// Coincident: falls back to direction-cone midpoint.
	w.Loc = tk.Loc
	w.Dir = geo.NewAngInterval(1.0, 2.0)
	if got := ApproachAngle(tk, w); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("coincident ApproachAngle = %v, want 1.5", got)
	}
}

func TestValidPairsBruteForce(t *testing.T) {
	in := &Instance{
		Tasks: []Task{
			task(0, 0.5, 0.5, 0, 1),
			task(1, 0.9, 0.9, 0, 0.1), // tight deadline
		},
		Workers: []Worker{
			worker(0, 0.4, 0.5, 1, geo.FullCircle, 0.9),                                // reaches task 0
			worker(1, 0.5, 0.4, 0.01, geo.FullCircle, 0.9),                             // too slow for both
			worker(2, 0.45, 0.5, 1, geo.NewAngInterval(math.Pi-0.1, math.Pi+0.1), 0.9), // wrong way
		},
		Beta: 0.5,
	}
	pairs := in.ValidPairs()
	if len(pairs) != 1 {
		t.Fatalf("ValidPairs = %v, want exactly 1 pair", pairs)
	}
	if pairs[0].Task != 0 || pairs[0].Worker != 0 {
		t.Errorf("unexpected pair %+v", pairs[0])
	}
}

func TestValidPairsConsistentWithCanReach(t *testing.T) {
	f := func(tx, ty, wx, wy, v, lo, wdt uint16) bool {
		in := &Instance{
			Tasks: []Task{task(0, float64(tx)/65535, float64(ty)/65535, 0, 1)},
			Workers: []Worker{{
				ID: 0, Loc: geo.Pt(float64(wx)/65535, float64(wy)/65535),
				Speed:      0.05 + float64(v)/65535,
				Dir:        geo.AngInterval{Lo: geo.NormalizeAngle(float64(lo)), Width: math.Mod(float64(wdt), geo.TwoPi)},
				Confidence: 0.9,
			}},
			Beta: 0.5,
		}
		pairs := in.ValidPairs()
		want := CanReach(in.Tasks[0], in.Workers[0], in.Opt)
		return (len(pairs) == 1) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment()
	if a.Assigned(3) {
		t.Error("fresh assignment should be empty")
	}
	a.Assign(3, 7)
	if got := a.TaskOf(3); got != 7 {
		t.Errorf("TaskOf = %v, want 7", got)
	}
	a.Assign(3, 9) // reassign
	if got := a.TaskOf(3); got != 9 {
		t.Errorf("TaskOf after reassign = %v, want 9", got)
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d, want 1", a.Len())
	}
	a.Assign(4, 9)
	per := a.PerTask()
	if len(per[9]) != 2 {
		t.Errorf("PerTask[9] = %v, want 2 workers", per[9])
	}
	a.Unassign(3)
	if a.Assigned(3) {
		t.Error("Unassign failed")
	}
	a.Assign(4, NoTask)
	if a.Len() != 0 {
		t.Error("Assign(NoTask) must clear the worker")
	}
}

func TestAssignmentClone(t *testing.T) {
	a := NewAssignment()
	a.Assign(1, 2)
	c := a.Clone()
	c.Assign(1, 5)
	if a.TaskOf(1) != 2 {
		t.Error("Clone must not alias the original")
	}
}

func TestInstanceValidate(t *testing.T) {
	good := &Instance{
		Tasks:   []Task{task(0, 0.1, 0.1, 0, 1)},
		Workers: []Worker{worker(0, 0.2, 0.2, 1, geo.FullCircle, 0.9)},
		Beta:    0.5,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Instance)
	}{
		{"bad beta", func(in *Instance) { in.Beta = 1.5 }},
		{"reversed period", func(in *Instance) { in.Tasks[0].End = -1 }},
		{"zero speed", func(in *Instance) { in.Workers[0].Speed = 0 }},
		{"bad confidence", func(in *Instance) { in.Workers[0].Confidence = 1.2 }},
		{"dup task", func(in *Instance) { in.Tasks = append(in.Tasks, in.Tasks[0]) }},
		{"dup worker", func(in *Instance) { in.Workers = append(in.Workers, in.Workers[0]) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := &Instance{
				Tasks:   []Task{task(0, 0.1, 0.1, 0, 1)},
				Workers: []Worker{worker(0, 0.2, 0.2, 1, geo.FullCircle, 0.9)},
				Beta:    0.5,
			}
			tc.mut(in)
			if err := in.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestCheckAssignment(t *testing.T) {
	in := &Instance{
		Tasks:   []Task{task(0, 0.5, 0.5, 0, 1)},
		Workers: []Worker{worker(0, 0.4, 0.5, 1, geo.FullCircle, 0.9)},
		Beta:    0.5,
	}
	a := NewAssignment()
	a.Assign(0, 0)
	if err := in.CheckAssignment(a); err != nil {
		t.Errorf("CheckAssignment(valid) = %v", err)
	}
	b := NewAssignment()
	b.Assign(0, 99)
	if err := in.CheckAssignment(b); err == nil {
		t.Error("unknown task must fail")
	}
	c := NewAssignment()
	c.Assign(99, 0)
	if err := in.CheckAssignment(c); err == nil {
		t.Error("unknown worker must fail")
	}
	in.Workers[0].Speed = 0.0001 // now unreachable
	if err := in.CheckAssignment(a); err == nil {
		t.Error("unreachable pair must fail")
	}
}

func TestLookupByID(t *testing.T) {
	in := &Instance{
		Tasks:   []Task{task(5, 0.1, 0.1, 0, 1), task(9, 0.3, 0.3, 0, 1)},
		Workers: []Worker{worker(7, 0.2, 0.2, 1, geo.FullCircle, 0.9)},
	}
	if got := in.TaskByID(9); got == nil || got.ID != 9 {
		t.Errorf("TaskByID(9) = %v", got)
	}
	if in.TaskByID(1) != nil {
		t.Error("TaskByID(1) should be nil")
	}
	if got := in.WorkerByID(7); got == nil || got.ID != 7 {
		t.Errorf("WorkerByID(7) = %v", got)
	}
	if in.WorkerByID(1) != nil {
		t.Error("WorkerByID(1) should be nil")
	}
}
