// Package model defines the RDB-SC domain objects from Section 2 of the
// paper: time-constrained spatial tasks (Definition 1), dynamically moving
// workers (Definition 2), the validity of a task-worker pair (condition 1 of
// Definition 4: the worker's arrival time must fall inside the task's valid
// period, and the task must lie within the worker's direction cone), and
// assignments of workers to tasks.
//
// Time is measured in hours (the paper's expiration ranges rt are fractions
// of a day) and space in the unit square [0,1]². Worker speeds are in data
// space units per hour, matching Table 2's velocity ranges.
package model

import (
	"errors"
	"fmt"

	"rdbsc/internal/geo"
)

// TaskID identifies a task. IDs are indices into the instance's task slice
// when produced by the generators, but any distinct values work.
type TaskID int32

// WorkerID identifies a worker.
type WorkerID int32

// NoTask marks an unassigned worker in an Assignment.
const NoTask TaskID = -1

// Task is a time-constrained spatial task (Definition 1): it must be
// accomplished at location Loc within the valid period [Start, End].
type Task struct {
	ID    TaskID
	Loc   geo.Point
	Start float64 // s_i: beginning of the valid period
	End   float64 // e_i: expiration of the valid period
}

// Duration returns the length of the task's valid period, e_i − s_i.
func (t Task) Duration() float64 { return t.End - t.Start }

// Valid reports whether the task is well formed.
func (t Task) Valid() error {
	if t.End < t.Start {
		return fmt.Errorf("model: task %d: End %v before Start %v", t.ID, t.End, t.Start)
	}
	return nil
}

// String implements fmt.Stringer.
func (t Task) String() string {
	return fmt.Sprintf("t%d@%v[%.2f,%.2f]", t.ID, t.Loc, t.Start, t.End)
}

// Worker is a dynamically moving worker (Definition 2): currently at Loc,
// moving with speed Speed, willing to move only in directions inside Dir,
// and completing an accepted task successfully with probability Confidence.
// Depart is the worker's check-in time: travel starts then.
type Worker struct {
	ID         WorkerID
	Loc        geo.Point
	Speed      float64         // v_j > 0, data-space units per hour
	Dir        geo.AngInterval // [α−_j, α+_j]; FullCircle when unconstrained
	Confidence float64         // p_j ∈ [0,1]
	Depart     float64         // check-in time (hours)
}

// Valid reports whether the worker is well formed.
func (w Worker) Valid() error {
	if w.Speed <= 0 {
		return fmt.Errorf("model: worker %d: non-positive speed %v", w.ID, w.Speed)
	}
	if w.Confidence < 0 || w.Confidence > 1 {
		return fmt.Errorf("model: worker %d: confidence %v outside [0,1]", w.ID, w.Confidence)
	}
	return nil
}

// String implements fmt.Stringer.
func (w Worker) String() string {
	return fmt.Sprintf("w%d@%v v=%.2f p=%.2f", w.ID, w.Loc, w.Speed, w.Confidence)
}

// TravelTime returns the time the worker needs to reach p, dist/Speed.
func (w Worker) TravelTime(p geo.Point) float64 {
	return w.Loc.Dist(p) / w.Speed
}

// Options configures the reachability semantics.
type Options struct {
	// WaitAllowed relaxes condition 1 of Definition 4: a worker arriving
	// before the task's Start may wait at the location, so the pair is valid
	// whenever arrival ≤ End, with the effective arrival clamped to Start.
	// The paper's strict semantics (arrival ∈ [Start, End]) is the default.
	WaitAllowed bool
}

// Arrival returns the worker's effective arrival time at task t and whether
// the pair (t, w) is valid: the bearing from the worker to the task must lie
// in the worker's direction cone and the arrival time must fall within the
// task's valid period (subject to opt.WaitAllowed).
//
// A worker standing exactly on the task location has no bearing constraint
// (it is already there) and arrives at its departure time.
func Arrival(t Task, w Worker, opt Options) (arrival float64, ok bool) {
	if w.Loc == t.Loc {
		arrival = w.Depart
	} else {
		if !w.Dir.Contains(w.Loc.Bearing(t.Loc)) {
			return 0, false
		}
		arrival = w.Depart + w.TravelTime(t.Loc)
	}
	if arrival > t.End {
		return 0, false
	}
	if arrival < t.Start {
		if !opt.WaitAllowed {
			return 0, false
		}
		arrival = t.Start
	}
	return arrival, true
}

// CanReach reports whether the pair (t, w) is valid under opt.
func CanReach(t Task, w Worker, opt Options) bool {
	_, ok := Arrival(t, w, opt)
	return ok
}

// ApproachAngle returns the direction of the ray drawn from the task
// location toward the worker's origin — the paper's spatial-diversity ray
// (Figure 2(a)): the side of the landmark the worker photographs from.
// A worker standing on the task location contributes the midpoint of its
// direction cone, an arbitrary but deterministic choice.
func ApproachAngle(t Task, w Worker) float64 {
	if w.Loc == t.Loc {
		return w.Dir.Mid()
	}
	return t.Loc.Bearing(w.Loc)
}

// Pair is a valid task-worker pair together with its arrival time and
// spatial-diversity ray angle, the precomputed quantities every solver
// needs.
type Pair struct {
	Task    TaskID
	Worker  WorkerID
	Arrival float64
	Angle   float64
}

// Instance is one RDB-SC problem: the task set T, the worker set W, the
// requester weight β balancing spatial and temporal diversity, and the
// reachability options.
type Instance struct {
	Tasks   []Task
	Workers []Worker
	Beta    float64 // β ∈ [0,1]; β=1 → SD only, β=0 → TD only
	Opt     Options
}

// Validate checks structural well-formedness of the instance.
func (in *Instance) Validate() error {
	if in.Beta < 0 || in.Beta > 1 {
		return fmt.Errorf("model: beta %v outside [0,1]", in.Beta)
	}
	seenT := make(map[TaskID]bool, len(in.Tasks))
	for _, t := range in.Tasks {
		if err := t.Valid(); err != nil {
			return err
		}
		if seenT[t.ID] {
			return fmt.Errorf("model: duplicate task id %d", t.ID)
		}
		seenT[t.ID] = true
	}
	seenW := make(map[WorkerID]bool, len(in.Workers))
	for _, w := range in.Workers {
		if err := w.Valid(); err != nil {
			return err
		}
		if seenW[w.ID] {
			return fmt.Errorf("model: duplicate worker id %d", w.ID)
		}
		seenW[w.ID] = true
	}
	return nil
}

// TaskByID returns the task with the given id, or nil.
func (in *Instance) TaskByID(id TaskID) *Task {
	for i := range in.Tasks {
		if in.Tasks[i].ID == id {
			return &in.Tasks[i]
		}
	}
	return nil
}

// WorkerByID returns the worker with the given id, or nil.
func (in *Instance) WorkerByID(id WorkerID) *Worker {
	for i := range in.Workers {
		if in.Workers[i].ID == id {
			return &in.Workers[i]
		}
	}
	return nil
}

// ValidPairs enumerates every valid (task, worker) pair by brute force in
// O(m·n). The grid index (package grid) provides the accelerated
// alternative; this is the paper's "retrieval without index" baseline in
// Figure 17(b).
func (in *Instance) ValidPairs() []Pair {
	var pairs []Pair
	for ti := range in.Tasks {
		t := in.Tasks[ti]
		for wi := range in.Workers {
			w := in.Workers[wi]
			if arr, ok := Arrival(t, w, in.Opt); ok {
				pairs = append(pairs, Pair{
					Task:    t.ID,
					Worker:  w.ID,
					Arrival: arr,
					Angle:   ApproachAngle(t, w),
				})
			}
		}
	}
	return pairs
}

// Assignment maps each worker to the task it was assigned, or NoTask.
// The zero value is not usable; construct with NewAssignment.
type Assignment struct {
	byWorker map[WorkerID]TaskID
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{byWorker: make(map[WorkerID]TaskID)}
}

// Assign records that worker w does task t, replacing any prior assignment
// of w.
func (a *Assignment) Assign(w WorkerID, t TaskID) {
	if t == NoTask {
		delete(a.byWorker, w)
		return
	}
	a.byWorker[w] = t
}

// Unassign removes worker w's assignment.
func (a *Assignment) Unassign(w WorkerID) { delete(a.byWorker, w) }

// TaskOf returns the task assigned to w, or NoTask.
func (a *Assignment) TaskOf(w WorkerID) TaskID {
	if t, ok := a.byWorker[w]; ok {
		return t
	}
	return NoTask
}

// Assigned reports whether worker w has a task.
func (a *Assignment) Assigned(w WorkerID) bool {
	_, ok := a.byWorker[w]
	return ok
}

// Len returns the number of assigned workers.
func (a *Assignment) Len() int { return len(a.byWorker) }

// Workers calls fn for every (worker, task) pair in unspecified order.
func (a *Assignment) Workers(fn func(w WorkerID, t TaskID)) {
	for w, t := range a.byWorker {
		fn(w, t)
	}
}

// PerTask groups the assignment by task: the paper's W_i sets.
func (a *Assignment) PerTask() map[TaskID][]WorkerID {
	out := make(map[TaskID][]WorkerID)
	for w, t := range a.byWorker {
		out[t] = append(out[t], w)
	}
	return out
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{byWorker: make(map[WorkerID]TaskID, len(a.byWorker))}
	for w, t := range a.byWorker {
		c.byWorker[w] = t
	}
	return c
}

// ErrInvalidAssignment is wrapped by CheckAssignment failures.
var ErrInvalidAssignment = errors.New("model: invalid assignment")

// CheckAssignment verifies that every assigned pair in a is valid for the
// instance: the worker and task exist and the pair satisfies reachability.
func (in *Instance) CheckAssignment(a *Assignment) error {
	var err error
	a.Workers(func(wid WorkerID, tid TaskID) {
		if err != nil {
			return
		}
		w := in.WorkerByID(wid)
		if w == nil {
			err = fmt.Errorf("%w: unknown worker %d", ErrInvalidAssignment, wid)
			return
		}
		t := in.TaskByID(tid)
		if t == nil {
			err = fmt.Errorf("%w: unknown task %d", ErrInvalidAssignment, tid)
			return
		}
		if !CanReach(*t, *w, in.Opt) {
			err = fmt.Errorf("%w: worker %d cannot reach task %d", ErrInvalidAssignment, wid, tid)
		}
	})
	return err
}
