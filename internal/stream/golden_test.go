package stream

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
)

// -update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/stream -run TestGoldenStream -update
var update = flag.Bool("update", false, "rewrite the golden stream files")

// goldenStep is one observed change of the standing commitments: the event
// time, the committed worker→task set, and the objective of the standing
// assignment evaluated against the then-live instance. Values are
// formatted as strings so the files diff cleanly and don't depend on JSON
// float rendering.
type goldenStep struct {
	T         string `json:"t"`
	Committed string `json:"committed"`
	MinRel    string `json:"minRel"`
	TotalSTD  string `json:"totalSTD"`
}

type goldenRun struct {
	Config string       `json:"config"`
	Report string       `json:"report"`
	Steps  []goldenStep `json:"steps"`
}

type goldenConfig struct {
	name string
	cfg  Config
}

// goldenConfigs are the pinned end-to-end scenarios: the default greedy
// stream and the same stream through the engine's connected-component
// decomposition. Any change to solver selection, engine caching, seed
// derivation, commitment accounting, or churn handling shifts these files
// and must be reviewed (and re-recorded with -update) explicitly.
func goldenConfigs() []goldenConfig {
	base := Config{
		TaskRate:    30,
		WorkerRate:  60,
		Horizon:     2.5,
		AssignEvery: 0.25,
		Seed:        7,
	}
	withDecompose := base
	withDecompose.Decompose = true
	return []goldenConfig{
		{name: "greedy", cfg: base},
		{name: "greedy-decompose", cfg: withDecompose},
	}
}

func commitKey(a *model.Assignment) string {
	type wt struct {
		w model.WorkerID
		t model.TaskID
	}
	var pairs []wt
	a.Workers(func(w model.WorkerID, t model.TaskID) { pairs = append(pairs, wt{w, t}) })
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].w < pairs[j].w })
	out := ""
	for _, pr := range pairs {
		out += fmt.Sprintf("%d->%d;", pr.w, pr.t)
	}
	return out
}

func recordGolden(gc goldenConfig) goldenRun {
	s := New(gc.cfg)
	run := goldenRun{Config: gc.name}
	last := ""
	s.Checkpoint = func(now float64) {
		committed := s.Committed()
		key := commitKey(committed)
		if key == last {
			return
		}
		last = key
		ev := objective.Evaluate(s.Instance(), committed)
		run.Steps = append(run.Steps, goldenStep{
			T:         fmt.Sprintf("%.6f", now),
			Committed: key,
			MinRel:    fmt.Sprintf("%.9g", ev.MinRel),
			TotalSTD:  fmt.Sprintf("%.9g", ev.TotalESTD),
		})
	}
	rep := s.Run()
	run.Report = rep.String()
	return run
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_stream_"+name+".json")
}

// TestGoldenStream replays the pinned scenarios and compares every
// commitment change and the final report against the committed golden
// files, so solver or engine changes cannot silently shift streaming
// behavior. Regenerate with -update after intentional changes.
func TestGoldenStream(t *testing.T) {
	for _, gc := range goldenConfigs() {
		t.Run(gc.name, func(t *testing.T) {
			got := recordGolden(gc)
			if len(got.Steps) == 0 {
				t.Fatalf("scenario %q produced no commitment changes; golden test is vacuous", gc.name)
			}
			path := goldenPath(gc.name)
			if *update {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				t.Logf("updated %s (%d steps)", path, len(got.Steps))
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (run with -update to record): %v", path, err)
			}
			var want goldenRun
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if got.Report != want.Report {
				t.Errorf("report diverged:\n got %s\nwant %s", got.Report, want.Report)
			}
			if len(got.Steps) != len(want.Steps) {
				t.Fatalf("step count diverged: got %d want %d", len(got.Steps), len(want.Steps))
			}
			for i := range got.Steps {
				if got.Steps[i] != want.Steps[i] {
					t.Errorf("step %d diverged:\n got %+v\nwant %+v", i, got.Steps[i], want.Steps[i])
				}
			}
		})
	}
}

// TestGoldenStreamDeterministic guards the premise of the golden files:
// the same configuration must replay to the identical step sequence.
func TestGoldenStreamDeterministic(t *testing.T) {
	gc := goldenConfigs()[0]
	a, b := recordGolden(gc), recordGolden(gc)
	if a.Report != b.Report || len(a.Steps) != len(b.Steps) {
		t.Fatalf("replay diverged: %q vs %q (%d vs %d steps)", a.Report, b.Report, len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatalf("replay step %d diverged: %+v vs %+v", i, a.Steps[i], b.Steps[i])
		}
	}
}
