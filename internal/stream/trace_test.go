package stream

import (
	"testing"

	"rdbsc/internal/workload"
)

// TestTraceReplay drives the simulator from a workload trace instead of
// generated Poisson churn: every scripted arrival must be processed, β and
// reachability options must default from the trace, and two runs of the
// same trace must agree exactly on counts and objectives (wall-clock
// fields aside, the replay is deterministic).
func TestTraceReplay(t *testing.T) {
	sc, err := workload.ByName("rush-hour")
	if err != nil {
		t.Fatal(err)
	}
	tr := sc.Trace(workload.Params{M: 30, N: 60, Seed: 5})
	ta, te, wa, wl := tr.Counts()

	run := func() Report {
		return New(Config{Trace: tr, Seed: 11}).Run()
	}
	rep := run()
	if rep.TasksArrived != ta {
		t.Errorf("TasksArrived %d, trace has %d", rep.TasksArrived, ta)
	}
	if rep.WorkersArrived != wa {
		t.Errorf("WorkersArrived %d, trace has %d", rep.WorkersArrived, wa)
	}
	if rep.TasksExpired != te {
		t.Errorf("TasksExpired %d, trace has %d", rep.TasksExpired, te)
	}
	if rep.WorkersLeft != wl {
		t.Errorf("WorkersLeft %d, trace has %d", rep.WorkersLeft, wl)
	}
	if rep.Rounds == 0 {
		t.Error("no assignment rounds ran")
	}
	if rep.Assignments == 0 {
		t.Error("no worker was ever dispatched on a rush-hour trace")
	}

	rep2 := run()
	rep.SolveSeconds, rep2.SolveSeconds = 0, 0
	rep.RetrieveSeconds, rep2.RetrieveSeconds = 0, 0
	if rep != rep2 {
		t.Errorf("trace replay not deterministic:\n  %+v\n  %+v", rep, rep2)
	}
}

// TestTraceReplayDefaults: an explicit Horizon shorter than the trace cuts
// the replay; explicit Beta overrides the trace's.
func TestTraceReplayDefaults(t *testing.T) {
	sc, _ := workload.ByName("churn")
	tr := sc.Trace(workload.Params{M: 20, N: 40, Seed: 2})
	full := New(Config{Trace: tr, Seed: 1}).Run()
	half := New(Config{Trace: tr, Seed: 1, Horizon: tr.Horizon / 2}).Run()
	if half.TasksArrived >= full.TasksArrived {
		t.Errorf("halved horizon should see fewer arrivals: %d vs %d",
			half.TasksArrived, full.TasksArrived)
	}
}
