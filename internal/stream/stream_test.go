package stream

import (
	"sort"
	"testing"

	"rdbsc/internal/model"
)

func TestChurnRunBasics(t *testing.T) {
	s := New(Config{Horizon: 1, Seed: 1})
	rep := s.Run()
	if rep.TasksArrived == 0 || rep.WorkersArrived == 0 {
		t.Fatalf("no churn: %+v", rep)
	}
	if rep.Rounds == 0 {
		t.Fatal("no assignment rounds")
	}
	if rep.PeakTasks == 0 || rep.PeakWorkers == 0 {
		t.Errorf("zero peaks: %+v", rep)
	}
	if rep.TasksExpired > rep.TasksArrived {
		t.Errorf("more expirations than arrivals: %+v", rep)
	}
	if rep.WorkersLeft > rep.WorkersArrived {
		t.Errorf("more departures than arrivals: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestChurnDeterministic(t *testing.T) {
	a := New(Config{Horizon: 0.5, Seed: 7}).Run()
	b := New(Config{Horizon: 0.5, Seed: 7}).Run()
	// Wall-clock fields differ run to run; compare the logical outcome.
	a.SolveSeconds, b.SolveSeconds = 0, 0
	a.RetrieveSeconds, b.RetrieveSeconds = 0, 0
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// The core dynamic-maintenance invariant (Section 7.2): at every point of
// the churn, the index's valid pairs equal a brute-force scan of the live
// instance.
func TestIndexConsistentUnderChurn(t *testing.T) {
	s := New(Config{Horizon: 0.5, Seed: 3, TaskRate: 60, WorkerRate: 120})
	checks := 0
	events := 0
	s.Checkpoint = func(now float64) {
		events++
		if events%25 != 0 { // check periodically; every event is too slow
			return
		}
		checks++
		got := keys(s.Grid().ValidPairs())
		want := keys(s.Instance().ValidPairs())
		if len(got) != len(want) {
			t.Fatalf("t=%.3f: index %d pairs, scan %d", now, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("t=%.3f: pair %d mismatch: %v vs %v", now, i, got[i], want[i])
			}
		}
	}
	s.Run()
	if checks == 0 {
		t.Fatal("checkpoint never ran")
	}
}

func TestChurnWithDifferentSolvers(t *testing.T) {
	rep := New(Config{Horizon: 0.5, Seed: 4}).Run()
	if rep.Assignments == 0 {
		t.Skip("no assignments on this seed; churn too sparse")
	}
	if rep.MeanMinRel < 0 || rep.MeanMinRel > 1 {
		t.Errorf("MeanMinRel = %v", rep.MeanMinRel)
	}
	if rep.MeanTotalSTD < 0 {
		t.Errorf("MeanTotalSTD = %v", rep.MeanTotalSTD)
	}
}

func keys(pairs []model.Pair) [][2]int32 {
	ks := make([][2]int32, len(pairs))
	for i, p := range pairs {
		ks[i] = [2]int32{int32(p.Task), int32(p.Worker)}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i][0] != ks[j][0] {
			return ks[i][0] < ks[j][0]
		}
		return ks[i][1] < ks[j][1]
	})
	return ks
}

// TestConfigBetaAndOptReachEngine covers the Config.Beta / Config.Opt
// knobs: the paper's β sweep and the strict no-wait reachability must be
// expressible, with the historical values as defaults.
func TestConfigBetaAndOptReachEngine(t *testing.T) {
	def := New(Config{}).Instance()
	if def.Beta != 0.5 || !def.Opt.WaitAllowed {
		t.Errorf("defaults changed: beta=%v opt=%+v, want 0.5 / WaitAllowed", def.Beta, def.Opt)
	}
	in := New(Config{Beta: 0.9, Opt: &model.Options{}}).Instance()
	if in.Beta != 0.9 {
		t.Errorf("Beta = %v, want 0.9", in.Beta)
	}
	if in.Opt.WaitAllowed {
		t.Error("explicit zero Options did not disable waiting")
	}
}

// TestAssignmentsCountOnlyNewDispatches verifies the incremental-round
// accounting: Report.Assignments must equal the number of times a worker
// newly enters the committed set, with standing commitments never
// re-counted, and every commitment must point at a live worker and task.
func TestAssignmentsCountOnlyNewDispatches(t *testing.T) {
	s := New(Config{Horizon: 1, Seed: 9, TaskRate: 60, WorkerRate: 120})
	prev := map[model.WorkerID]bool{}
	dispatches := 0
	s.Checkpoint = func(now float64) {
		cur := map[model.WorkerID]bool{}
		committed := s.Committed()
		committed.Workers(func(w model.WorkerID, tid model.TaskID) {
			cur[w] = true
			if !prev[w] {
				dispatches++
			}
			if _, ok := s.Engine().Worker(w); !ok {
				t.Fatalf("t=%.3f: committed worker %d is not live", now, w)
			}
			if _, ok := s.Engine().Task(tid); !ok {
				t.Fatalf("t=%.3f: committed task %d is not live", now, tid)
			}
		})
		prev = cur
	}
	rep := s.Run()
	if s.Err() != nil {
		t.Fatalf("run failed: %v", s.Err())
	}
	if rep.Assignments == 0 {
		t.Skip("no assignments on this seed; churn too sparse")
	}
	if rep.Assignments != dispatches {
		t.Errorf("Assignments = %d, but %d new dispatches observed", rep.Assignments, dispatches)
	}
}
