// Package stream drives the dynamic side of the RDB-SC system (Sections 2
// and 7.2 of the paper): tasks and workers continuously enter and leave the
// platform, the RDB-SC-Grid index is maintained incrementally under that
// churn, and the solver runs periodically over the index-retrieved valid
// pairs.
//
// The paper's Section 7.2 analyzes exactly these operations (worker
// insert/delete, task insert/delete, and their effect on the tcell lists);
// this package is the workload driver that exercises them end to end and
// measures their cost. Live state and index maintenance are owned by an
// engine.Engine; the simulator feeds it churn events and drives the
// assignment rounds through it.
package stream

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/engine"
	"rdbsc/internal/gen"
	"rdbsc/internal/geo"
	"rdbsc/internal/grid"
	"rdbsc/internal/model"
	"rdbsc/internal/rng"
	"rdbsc/internal/workload"
)

// Config parameterizes the churn simulation.
type Config struct {
	// TaskRate and WorkerRate are Poisson arrival rates per hour
	// (defaults 40 and 80).
	TaskRate, WorkerRate float64
	// TaskLifetime is the mean valid-period length of arriving tasks in
	// hours (default 0.5); WorkerLifetime the mean session length of
	// arriving workers (default 1).
	TaskLifetime, WorkerLifetime float64
	// Horizon is the simulated span in hours (default 4).
	Horizon float64
	// AssignEvery is the period between assignment rounds in hours
	// (default 0.25).
	AssignEvery float64
	// Beta is the requester diversity weight β (default 0.5) — the paper's
	// β sweep knob.
	Beta float64
	// Opt configures reachability semantics for pair enumeration. Nil
	// defaults to waiting allowed (the simulator's historical behavior);
	// point it at a zero model.Options for the paper's strict no-wait
	// reachability.
	Opt *model.Options
	// Solver performs the rounds (default: greedy). SolverName selects one
	// through the registry instead when Solver is nil.
	Solver     core.Solver
	SolverName string
	// Decompose enables the engine's connected-component path: rounds
	// re-solve only the components dirtied by churn or commitment changes
	// (see engine.Config.Decompose).
	Decompose bool
	// Template supplies worker attribute ranges (speeds, cones,
	// confidences) — the Table 2 knobs.
	Template gen.Config
	// Trace, when set, replays a pre-generated workload trace instead of
	// drawing Poisson arrivals: the simulator's churn events come verbatim
	// from the trace (arrivals carry full entities, departures are
	// explicit), while assignment rounds still fire every AssignEvery.
	// Beta, Opt, and Horizon default from the trace when unset, so a bare
	// Config{Trace: tr} reproduces the scenario faithfully. Seed then only
	// drives solver randomness, not the workload.
	Trace *workload.Trace
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Trace != nil {
		if (c.Beta <= 0 || c.Beta > 1) && c.Trace.Beta > 0 && c.Trace.Beta <= 1 {
			c.Beta = c.Trace.Beta
		}
		if c.Opt == nil {
			opt := c.Trace.Opt
			c.Opt = &opt
		}
		if c.Horizon <= 0 {
			c.Horizon = c.Trace.Horizon
		}
	}
	if c.TaskRate <= 0 {
		c.TaskRate = 40
	}
	if c.WorkerRate <= 0 {
		c.WorkerRate = 80
	}
	if c.TaskLifetime <= 0 {
		c.TaskLifetime = 0.5
	}
	if c.WorkerLifetime <= 0 {
		c.WorkerLifetime = 1
	}
	if c.Horizon <= 0 {
		c.Horizon = 4
	}
	if c.AssignEvery <= 0 {
		c.AssignEvery = 0.25
	}
	if c.Beta <= 0 || c.Beta > 1 {
		c.Beta = 0.5
	}
	if c.Opt == nil {
		c.Opt = &model.Options{WaitAllowed: true}
	}
	if c.Solver == nil && c.SolverName == "" {
		c.Solver = core.NewGreedy()
	}
	if c.Template.StartHorizon == 0 {
		c.Template = gen.Default()
	}
	return c
}

// Report aggregates one churn run.
type Report struct {
	// Arrival/departure counts.
	TasksArrived, TasksExpired  int
	WorkersArrived, WorkersLeft int
	// Rounds is the number of assignment rounds.
	Rounds int
	// Assignments is the total number of *new* worker dispatches: a worker
	// counts once when it is first committed to a task, and again only
	// after its commitment is released (the task expired or the worker
	// left) and it is re-dispatched. Standing commitments carried between
	// rounds via SeedStates are not re-counted.
	Assignments int
	// PairsRetrieved is the total valid pairs returned by the index across
	// rounds that actually retrieved (cache-served rounds contribute
	// nothing, matching RetrieveSeconds).
	PairsRetrieved int
	// PeakTasks/PeakWorkers are occupancy high-water marks.
	PeakTasks, PeakWorkers int
	// SolveSeconds and RetrieveSeconds are accumulated wall-clock costs.
	SolveSeconds, RetrieveSeconds float64
	// MeanMinRel and MeanTotalSTD average the per-round objectives over
	// rounds that assigned at least one worker.
	MeanMinRel, MeanTotalSTD float64
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf(
		"rounds=%d assignments=%d tasks(+%d/-%d peak %d) workers(+%d/-%d peak %d) minRel=%.3f STD=%.3f",
		r.Rounds, r.Assignments, r.TasksArrived, r.TasksExpired, r.PeakTasks,
		r.WorkersArrived, r.WorkersLeft, r.PeakWorkers, r.MeanMinRel, r.MeanTotalSTD)
}

// event kinds.
const (
	evTaskArrive = iota
	evTaskExpire
	evWorkerArrive
	evWorkerLeave
	evAssign
)

type event struct {
	at   float64
	kind int
	id   int64
	seq  int64 // tie-break for deterministic ordering

	// Trace-replay payloads: an arrival carrying an entity upserts it
	// verbatim and does not self-reschedule (the trace holds the follow-up
	// events explicitly). Nil for generated churn.
	task   *model.Task
	worker *model.Worker
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Sim is the churn simulator. Construct with New, drive with Run (or
// RunContext for a cancellable run), or use Snapshot mid-run from a
// Checkpoint callback.
type Sim struct {
	cfg Config
	src *rng.Source

	eng *engine.Engine

	// committed maps each dispatched worker to its task until the task
	// expires or the worker leaves. It seeds every round's solve (the
	// Figure 10 incremental updating strategy), so committed workers are
	// excluded from reassignment and Assignments counts only new
	// dispatches.
	committed *model.Assignment

	queue    eventQueue
	seq      int64
	rep      Report
	solveErr error

	// Checkpoint, when set, is invoked after every processed event with
	// the current time; tests use it to compare the index against a
	// brute-force scan.
	Checkpoint func(now float64)
}

// Err returns the terminal solver error that stopped the run early (nil
// for a clean run). Infeasible and interrupted rounds are not errors.
func (s *Sim) Err() error { return s.solveErr }

// New prepares a churn simulation.
func New(cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg: cfg,
		src: rng.New(cfg.Seed),
		eng: engine.New(engine.Config{
			Beta:       cfg.Beta,
			Opt:        *cfg.Opt,
			Solver:     cfg.Solver,
			SolverName: cfg.SolverName,
			Decompose:  cfg.Decompose,
			Grid:       grid.Config{},
		}),
		committed: model.NewAssignment(),
	}
	heap.Init(&s.queue)
	if cfg.Trace != nil {
		// Replay mode: the trace is the complete churn script. Events are
		// pushed in trace order, so equal-time events keep the trace's
		// tie-breaking via seq.
		for _, ev := range cfg.Trace.Events {
			s.seq++
			qe := event{at: ev.At, seq: s.seq}
			switch ev.Kind {
			case workload.TaskArrive:
				t := ev.Task
				qe.kind, qe.task, qe.id = evTaskArrive, &t, int64(t.ID)
			case workload.TaskExpire:
				qe.kind, qe.id = evTaskExpire, int64(ev.TaskID)
			case workload.WorkerArrive:
				w := ev.Worker
				qe.kind, qe.worker, qe.id = evWorkerArrive, &w, int64(w.ID)
			case workload.WorkerLeave:
				qe.kind, qe.id = evWorkerLeave, int64(ev.WorkerID)
			default:
				continue
			}
			heap.Push(&s.queue, qe)
		}
	} else {
		s.schedule(s.src.Exp(cfg.TaskRate), evTaskArrive, 0)
		s.schedule(s.src.Exp(cfg.WorkerRate), evWorkerArrive, 0)
	}
	s.schedule(cfg.AssignEvery, evAssign, 0)
	return s
}

// Instance snapshots the currently live tasks and workers as a static
// instance (brute-force pair baseline for tests), ordered by ID.
func (s *Sim) Instance() *model.Instance { return s.eng.Instance() }

// Grid exposes the live index (read-only use).
func (s *Sim) Grid() *grid.Grid { return s.eng.Grid() }

// Engine exposes the underlying solving engine.
func (s *Sim) Engine() *engine.Engine { return s.eng }

// Committed snapshots the standing worker commitments (a clone; mutating it
// does not affect the simulation). Tests use it to verify that every
// committed worker and task is still live and that Assignments counts only
// new dispatches.
func (s *Sim) Committed() *model.Assignment { return s.committed.Clone() }

// Run processes events until the horizon and returns the report.
func (s *Sim) Run() Report { return s.RunContext(context.Background()) }

// RunContext processes events until the horizon or until ctx is done,
// whichever comes first, and returns the report accumulated so far.
func (s *Sim) RunContext(ctx context.Context) Report {
	var relSum, stdSum float64
	activeRounds := 0
	var nextTaskID int64
	var nextWorkerID int64

	for s.queue.Len() > 0 && ctx.Err() == nil && s.solveErr == nil {
		e := heap.Pop(&s.queue).(event)
		if e.at > s.cfg.Horizon {
			break
		}
		switch e.kind {
		case evTaskArrive:
			if e.task != nil {
				// Trace replay: the entity and its expiry are scripted.
				s.eng.UpsertTask(*e.task)
				s.rep.TasksArrived++
				break
			}
			t := s.newTask(model.TaskID(nextTaskID), e.at)
			nextTaskID++
			s.eng.UpsertTask(t)
			s.rep.TasksArrived++
			s.schedule(t.End, evTaskExpire, int64(t.ID))
			s.schedule(e.at+s.src.Exp(s.cfg.TaskRate), evTaskArrive, 0)
		case evTaskExpire:
			if s.eng.RemoveTask(model.TaskID(e.id)) {
				s.rep.TasksExpired++
				s.releaseTask(model.TaskID(e.id))
			}
		case evWorkerArrive:
			if e.worker != nil {
				s.eng.UpsertWorker(*e.worker)
				s.rep.WorkersArrived++
				break
			}
			w := s.newWorker(model.WorkerID(nextWorkerID), e.at)
			nextWorkerID++
			s.eng.UpsertWorker(w)
			s.rep.WorkersArrived++
			s.schedule(e.at+s.src.Exp(1/s.cfg.WorkerLifetime), evWorkerLeave, int64(w.ID))
			s.schedule(e.at+s.src.Exp(s.cfg.WorkerRate), evWorkerArrive, 0)
		case evWorkerLeave:
			if s.eng.RemoveWorker(model.WorkerID(e.id)) {
				s.rep.WorkersLeft++
				s.committed.Unassign(model.WorkerID(e.id))
			}
		case evAssign:
			if rel, std, ok := s.assignRound(ctx); ok {
				relSum += rel
				stdSum += std
				activeRounds++
			}
			s.rep.Rounds++
			s.schedule(e.at+s.cfg.AssignEvery, evAssign, 0)
		}
		tasks, workers := s.eng.Len()
		if tasks > s.rep.PeakTasks {
			s.rep.PeakTasks = tasks
		}
		if workers > s.rep.PeakWorkers {
			s.rep.PeakWorkers = workers
		}
		if s.Checkpoint != nil {
			s.Checkpoint(e.at)
		}
	}
	if activeRounds > 0 {
		s.rep.MeanMinRel = relSum / float64(activeRounds)
		s.rep.MeanTotalSTD = stdSum / float64(activeRounds)
	}
	return s.rep
}

func (s *Sim) assignRound(ctx context.Context) (minRel, totalSTD float64, ok bool) {
	tasks, workers := s.eng.Len()
	if tasks == 0 || workers == 0 {
		return 0, 0, false
	}
	p := s.eng.Problem()
	// Cost accounting covers actual retrievals only: a round served from
	// the engine's cache asked the index for nothing, so it contributes to
	// neither the time nor the pair count.
	if rebuilt, retrieve := s.eng.LastPrep(); rebuilt {
		s.rep.RetrieveSeconds += retrieve.Seconds()
		s.rep.PairsRetrieved += len(p.Pairs)
	}
	if len(p.Pairs) == 0 {
		return 0, 0, false
	}
	// The previous rounds' commitments seed the solve (Figure 10's
	// incremental updating): committed workers shape every Δ-objective and
	// are excluded from reassignment, so the solver re-solves only the free
	// workers instead of from scratch — and the returned assignment
	// contains only the round's new dispatches.
	seed := p.NewStates(s.committed)
	start := time.Now()
	res, err := s.eng.Solve(ctx, &core.SolveOptions{
		Source:     s.src.Split(),
		SeedStates: seed,
	})
	s.rep.SolveSeconds += time.Since(start).Seconds()
	if err != nil {
		// Benign: infeasible rounds under churn, interrupted rounds (the
		// run loop winds down via ctx). Terminal errors — e.g. a solver
		// over its population cap — stop the run and surface through Err.
		if core.IsTerminal(err) {
			s.solveErr = err
		}
		return 0, 0, false
	}
	// Greedy honors the seeds, so res.Assignment holds only new workers;
	// solvers that assign from scratch (sampling, D&C) may re-list standing
	// commitments, which must be neither re-counted as dispatches nor
	// retargeted — the worker is already travelling and a commitment is
	// only released when its task expires or the worker leaves.
	added := 0
	res.Assignment.Workers(func(w model.WorkerID, t model.TaskID) {
		if s.committed.Assigned(w) {
			return
		}
		added++
		s.committed.Assign(w, t)
	})
	s.rep.Assignments += added
	if s.committed.Len() == 0 {
		return 0, 0, false
	}
	// The round's quality is that of the full standing assignment —
	// commitments carried over plus this round's dispatches.
	ev := p.Evaluate(s.committed)
	return ev.MinRel, ev.TotalESTD, true
}

// releaseTask frees the workers committed to an expired task so later
// rounds may re-dispatch (and re-count) them.
func (s *Sim) releaseTask(id model.TaskID) {
	var freed []model.WorkerID
	s.committed.Workers(func(w model.WorkerID, t model.TaskID) {
		if t == id {
			freed = append(freed, w)
		}
	})
	for _, w := range freed {
		s.committed.Unassign(w)
	}
}

func (s *Sim) newTask(id model.TaskID, now float64) model.Task {
	life := s.src.Exp(1 / s.cfg.TaskLifetime)
	return model.Task{
		ID:    id,
		Loc:   s.src.UniformPoint(gridSpace),
		Start: now,
		End:   now + life,
	}
}

func (s *Sim) newWorker(id model.WorkerID, now float64) model.Worker {
	tpl := s.cfg.Template
	width := s.src.Uniform(0, tpl.AngleMax)
	if width <= 0 {
		width = tpl.AngleMax / 2
	}
	return model.Worker{
		ID:         id,
		Loc:        s.src.UniformPoint(gridSpace),
		Speed:      s.src.Uniform(tpl.VMin, tpl.VMax),
		Dir:        sector(s.src.Angle(), width),
		Confidence: s.src.TruncNormal((tpl.PMin+tpl.PMax)/2, 0.02, tpl.PMin, tpl.PMax),
		Depart:     now,
	}
}

func (s *Sim) schedule(at float64, kind int, id int64) {
	s.seq++
	heap.Push(&s.queue, event{at: at, kind: kind, id: id, seq: s.seq})
}

// gridSpace is the unit-square data space shared with the rest of the
// system.
var gridSpace = geo.UnitSquare

// sector builds a worker direction cone.
func sector(mid, width float64) geo.AngInterval {
	return geo.AngIntervalAround(mid, width)
}
