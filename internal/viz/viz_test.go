package viz

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rdbsc/internal/core"
	"rdbsc/internal/gen"
	"rdbsc/internal/rng"
)

func TestRenderProducesWellFormedSVG(t *testing.T) {
	in := gen.GenerateDense(gen.Default().WithScale(20, 30))
	p := core.NewProblem(in)
	res := core.SolveSeeded(core.NewGreedy(), p, rng.New(1))

	var buf bytes.Buffer
	err := Render(&buf, in, res.Assignment, Options{Title: "test <&>", GridEta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "<circle", "<line", "test &lt;&amp;&gt;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 {
		t.Error("multiple svg roots")
	}
	// One task circle per task plus one dot per worker.
	if got := strings.Count(out, "<circle"); got < len(in.Tasks)+len(in.Workers) {
		t.Errorf("only %d circles for %d tasks + %d workers", got, len(in.Tasks), len(in.Workers))
	}
	// Direction cones are drawn for constrained workers.
	if !strings.Contains(out, "<path") {
		t.Error("no direction cones drawn")
	}
}

func TestRenderNilAssignment(t *testing.T) {
	in := gen.GenerateDense(gen.Default().WithScale(5, 5))
	var buf bytes.Buffer
	if err := Render(&buf, in, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `stroke="#7a9e7e"`) {
		t.Error("assignment edges drawn without an assignment")
	}
}

func TestRenderEmptyInstance(t *testing.T) {
	var buf bytes.Buffer
	in := gen.GenerateDense(gen.Default().WithScale(0, 0))
	if err := Render(&buf, in, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("truncated SVG")
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestRenderPropagatesWriteErrors(t *testing.T) {
	in := gen.GenerateDense(gen.Default().WithScale(5, 5))
	if err := Render(&failingWriter{after: 2}, in, nil, Options{}); err == nil {
		t.Error("write error swallowed")
	}
}
