// Package viz renders RDB-SC instances and assignments as SVG: tasks as
// circles scaled by remaining valid time, workers as dots with their
// direction cones, assignment edges, and (optionally) the grid index's
// cells. It has no dependencies beyond the standard library and is used by
// humans debugging workloads and by the examples.
package viz

import (
	"fmt"
	"io"
	"math"

	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// Options tunes the rendering.
type Options struct {
	// Size is the output width/height in pixels (default 640).
	Size int
	// GridEta draws grid lines with the given cell side when positive.
	GridEta float64
	// ConeLength is the drawn length of worker direction cones in data
	// units (default 0.05).
	ConeLength float64
	// Title is an optional caption.
	Title string
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 640
	}
	if o.ConeLength <= 0 {
		o.ConeLength = 0.05
	}
	return o
}

// Render writes an SVG view of the instance and (optionally nil)
// assignment to w.
func Render(w io.Writer, in *model.Instance, a *model.Assignment, opt Options) error {
	opt = opt.withDefaults()
	s := float64(opt.Size)
	px := func(p geo.Point) (float64, float64) {
		// SVG y grows downward; data space y grows upward.
		return p.X * s, (1 - p.Y) * s
	}

	var err error
	pr := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	pr(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Size, opt.Size, opt.Size, opt.Size)
	pr(`<rect width="%d" height="%d" fill="#fcfcf8"/>`+"\n", opt.Size, opt.Size)

	if opt.GridEta > 0 {
		pr(`<g stroke="#ddd" stroke-width="1">` + "\n")
		for x := opt.GridEta; x < 1; x += opt.GridEta {
			pr(`<line x1="%.1f" y1="0" x2="%.1f" y2="%.0f"/>`+"\n", x*s, x*s, s)
		}
		for y := opt.GridEta; y < 1; y += opt.GridEta {
			pr(`<line x1="0" y1="%.1f" x2="%.0f" y2="%.1f"/>`+"\n", y*s, s, y*s)
		}
		pr("</g>\n")
	}

	// Assignment edges under the nodes.
	if a != nil {
		tasks := make(map[model.TaskID]geo.Point, len(in.Tasks))
		for _, t := range in.Tasks {
			tasks[t.ID] = t.Loc
		}
		workers := make(map[model.WorkerID]geo.Point, len(in.Workers))
		for _, wk := range in.Workers {
			workers[wk.ID] = wk.Loc
		}
		pr(`<g stroke="#7a9e7e" stroke-width="1.2" opacity="0.8">` + "\n")
		a.Workers(func(wid model.WorkerID, tid model.TaskID) {
			wp, wok := workers[wid]
			tp, tok := tasks[tid]
			if !wok || !tok {
				return
			}
			x1, y1 := px(wp)
			x2, y2 := px(tp)
			pr(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x1, y1, x2, y2)
		})
		pr("</g>\n")
	}

	// Tasks: circles sized by period length.
	pr(`<g fill="#c0392b" fill-opacity="0.75">` + "\n")
	for _, t := range in.Tasks {
		x, y := px(t.Loc)
		r := 3 + math.Min(6, t.Duration())
		pr(`<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x, y, r)
	}
	pr("</g>\n")

	// Workers: dots with direction cones.
	pr(`<g>` + "\n")
	for _, wk := range in.Workers {
		x, y := px(wk.Loc)
		pr(`<circle cx="%.1f" cy="%.1f" r="2.5" fill="#2c3e50"/>`+"\n", x, y)
		if !wk.Dir.IsFull() {
			lo := wk.Dir.Lo
			hi := wk.Dir.Hi()
			l := opt.ConeLength * s
			// SVG y is flipped, so angles negate.
			x1, y1 := x+l*math.Cos(lo), y-l*math.Sin(lo)
			x2, y2 := x+l*math.Cos(hi), y-l*math.Sin(hi)
			large := 0
			if wk.Dir.Width > math.Pi {
				large = 1
			}
			pr(`<path d="M %.1f %.1f L %.1f %.1f A %.1f %.1f 0 %d 0 %.1f %.1f Z" fill="#3498db" fill-opacity="0.25"/>`+"\n",
				x, y, x1, y1, l, l, large, x2, y2)
		}
	}
	pr("</g>\n")

	if opt.Title != "" {
		pr(`<text x="8" y="18" font-family="sans-serif" font-size="14" fill="#333">%s</text>`+"\n",
			escape(opt.Title))
	}
	pr("</svg>\n")
	return err
}

func escape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
