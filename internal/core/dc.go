package core

import (
	"context"
	"errors"
	"sort"

	"rdbsc/internal/geo"
	"rdbsc/internal/kmeans"
	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
	"rdbsc/internal/scratch"
)

// DC implements the divide-and-conquer algorithm of Section 6 (Figure 6):
// recursively split the task-worker bipartite graph into two balanced,
// sparse halves with BG_Partition (Figure 7, k-means on task locations),
// solve small subproblems with the base solver, and combine the two
// sub-answers with SA_Merge (Figure 9), resolving the duplicated
// "conflicting workers" — independently for ICWs and jointly (by 2^k
// enumeration) for DCW groups (Lemmas 6.1 and 6.2).
type DC struct {
	// Gamma is the threshold γ: subproblems with at most Gamma tasks are
	// solved directly (default 8).
	Gamma int
	// Base solves the leaf subproblems (default: the sampling solver, as in
	// the paper's experiments).
	Base Solver
	// DCWGroupLimit caps the dependent-conflicting-worker group size that
	// is resolved by exhaustive 2^k enumeration; larger groups fall back to
	// a sequential greedy resolution (default 12).
	DCWGroupLimit int
}

// NewDC returns the default divide-and-conquer solver.
func NewDC() *DC { return &DC{} }

// Name implements Solver.
func (d *DC) Name() string { return "D&C" }

func (d *DC) gamma() int {
	if d.Gamma > 0 {
		return d.Gamma
	}
	return 8
}

func (d *DC) base() Solver {
	if d.Base != nil {
		return d.Base
	}
	return NewSampling()
}

func (d *DC) groupLimit() int {
	if d.DCWGroupLimit > 0 {
		return d.DCWGroupLimit
	}
	return 12
}

// Solve implements Solver. Cancellation is checked at every subproblem
// boundary: before each leaf solve and before each SA_Merge. On
// interruption the assignment combined from the completed subtrees is
// returned with ErrInterrupted — sub-answers already solved are still
// merged so the partial result is the best combination found so far.
func (d *DC) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error) {
	run := &dcRun{opts: opts, bufs: scratch.Get()}
	a, stats, err := d.solve(ctx, p, opts.source(), run)
	allocs, reuses := run.bufs.Counters()
	stats.ScratchAllocs += allocs
	stats.ScratchReused += reuses
	scratch.Put(run.bufs)
	return finishResult(p, a, stats), err
}

// dcRun threads the per-solve progress state — and the merge phase's
// scratch buffers — through the recursion. The recursion is sequential,
// so one Buffers serves the whole solve.
type dcRun struct {
	opts   *SolveOptions
	leaves int
	bufs   *scratch.Buffers
}

func (d *DC) solve(ctx context.Context, p *Problem, src *rng.Source, run *dcRun) (*model.Assignment, Stats, error) {
	if ctx.Err() != nil {
		return model.NewAssignment(), Stats{}, interrupted(ctx)
	}
	if len(p.In.Tasks) <= d.gamma() {
		return d.solveLeaf(ctx, p, src, run)
	}
	p1, p2, ok := bgPartition(p, src)
	if !ok {
		return d.solveLeaf(ctx, p, src, run)
	}
	a1, s1, err := d.solve(ctx, p1, src, run)
	if err != nil && !errors.Is(err, ErrInterrupted) {
		// Terminal failures (e.g. a base solver over its population cap)
		// abort the recursion; only interrupts fall through to the merge.
		return a1, s1, err
	}
	// An interrupt in the left subtree still proceeds to the right solve
	// (which returns immediately under the done context) and the merge,
	// symmetric with a right-subtree interrupt: the partial result returned
	// upward is always the best combination of the completed sub-answers.
	a2, s2, err2 := d.solve(ctx, p2, src, run)
	if err == nil {
		err = err2
	}
	stats := s1.Add(s2)
	// Merge even when a subtree was interrupted: its partial sub-answer
	// still improves the combined assignment.
	merged, ms := saMerge(p, a1, a2, d.groupLimit(), run.bufs)
	stats = stats.Add(ms)
	if err == nil {
		run.opts.emit(Stage{
			Solver:   d.Name(),
			Round:    run.leaves,
			Assigned: merged.Len(),
			Stats:    stats,
		})
	}
	return merged, stats, err
}

// solveLeaf runs the base solver on a subproblem small enough to solve
// directly.
func (d *DC) solveLeaf(ctx context.Context, p *Problem, src *rng.Source, run *dcRun) (*model.Assignment, Stats, error) {
	res, err := d.base().Solve(ctx, p, &SolveOptions{Source: src})
	if res == nil {
		res = finishResult(p, model.NewAssignment(), Stats{})
	}
	res.Stats.Rounds++
	run.leaves++
	if err == nil {
		run.opts.emit(Stage{
			Solver:   d.Name(),
			Round:    run.leaves,
			Assigned: res.Assignment.Len(),
			Stats:    res.Stats,
		})
	}
	return res.Assignment, res.Stats, err
}

// bgPartition implements BG_Partition (Figure 7): tasks are split into two
// balanced halves by spatial clustering; a worker whose reachable tasks lie
// wholly in one half joins only that half's subproblem, while workers
// reaching both halves are duplicated into both (becoming potential
// conflicting workers). Subproblem pairs are filtered from the parent, so
// no reachability is recomputed. ok is false when the split degenerates
// (all tasks on one side).
func bgPartition(p *Problem, src *rng.Source) (p1, p2 *Problem, ok bool) {
	tasks := p.In.Tasks
	locs := make([]geo.Point, len(tasks))
	for i, t := range tasks {
		locs[i] = t.Loc
	}
	side := kmeans.BalancedBisect(locs, src)

	taskSide := make(map[model.TaskID]int, len(tasks))
	var t1, t2 []model.Task
	for i, t := range tasks {
		taskSide[t.ID] = side[i]
		if side[i] == 0 {
			t1 = append(t1, t)
		} else {
			t2 = append(t2, t)
		}
	}
	if len(t1) == 0 || len(t2) == 0 {
		return nil, nil, false
	}

	var w1, w2 []model.Worker
	for i := range p.In.Workers {
		w := p.In.Workers[i]
		idxs := p.WorkerPairs(w.ID)
		if len(idxs) == 0 {
			continue
		}
		in1, in2 := false, false
		for _, pi := range idxs {
			if taskSide[p.Pairs[pi].Task] == 0 {
				in1 = true
			} else {
				in2 = true
			}
		}
		if in1 {
			w1 = append(w1, w)
		}
		if in2 {
			w2 = append(w2, w)
		}
	}

	pairs1 := filterPairs(p, taskSide, 0)
	pairs2 := filterPairs(p, taskSide, 1)
	in1 := &model.Instance{Tasks: t1, Workers: w1, Beta: p.In.Beta, Opt: p.In.Opt}
	in2 := &model.Instance{Tasks: t2, Workers: w2, Beta: p.In.Beta, Opt: p.In.Opt}
	return NewProblemWithPairs(in1, pairs1), NewProblemWithPairs(in2, pairs2), true
}

func filterPairs(p *Problem, taskSide map[model.TaskID]int, side int) []model.Pair {
	var out []model.Pair
	for _, pr := range p.Pairs {
		if taskSide[pr.Task] == side {
			out = append(out, pr)
		}
	}
	return out
}

// saMerge implements SA_Merge (Figure 9). Workers assigned in both
// sub-answers are conflicting; one of their two copies must be deleted.
// Conflicting workers that share a task with other conflicting workers form
// dependent groups (DCWs) whose copy deletions are decided jointly by 2^k
// enumeration; independent conflicting workers (ICWs) are groups of size
// one (Lemma 6.2). Non-conflicting assignments are untouched (Lemma 6.1).
func saMerge(p *Problem, a1, a2 *model.Assignment, groupLimit int, bufs *scratch.Buffers) (*model.Assignment, Stats) {
	var stats Stats
	merged := model.NewAssignment()
	var conflicting []model.WorkerID
	seen := make(map[model.WorkerID]bool)

	a1.Workers(func(w model.WorkerID, t model.TaskID) {
		if a2.Assigned(w) {
			if !seen[w] {
				seen[w] = true
				conflicting = append(conflicting, w)
			}
			return
		}
		merged.Assign(w, t)
	})
	a2.Workers(func(w model.WorkerID, t model.TaskID) {
		if !seen[w] {
			merged.Assign(w, t)
		}
	})
	if len(conflicting) == 0 {
		return merged, stats
	}
	sort.Slice(conflicting, func(i, j int) bool { return conflicting[i] < conflicting[j] })

	// Group conflicting workers into dependent components: two conflicting
	// workers are linked when either sub-answer assigns them to a common
	// task.
	taskMembers := make(map[model.TaskID][]int) // task -> conflicting indices
	for i, w := range conflicting {
		for _, t := range []model.TaskID{a1.TaskOf(w), a2.TaskOf(w)} {
			taskMembers[t] = append(taskMembers[t], i)
		}
	}
	uf := newUnionFind(len(conflicting))
	for _, members := range taskMembers {
		for i := 1; i < len(members); i++ {
			uf.union(members[0], members[i])
		}
	}
	groups := make(map[int][]int)
	for i := range conflicting {
		root := uf.find(i)
		groups[root] = append(groups[root], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	for _, root := range roots {
		group := groups[root]
		stats.MergeGroups++
		if len(group) <= groupLimit {
			stats.MergeExhaustive++
			resolveGroupExhaustive(p, a1, a2, conflicting, group, merged, bufs)
		} else {
			resolveGroupGreedy(p, a1, a2, conflicting, group, merged, bufs)
		}
	}
	return merged, stats
}

// resolveGroupExhaustive tries all 2^k side choices for the group's
// conflicting workers, evaluating the affected tasks only, and commits the
// dominance-score winner into merged.
func resolveGroupExhaustive(p *Problem, a1, a2 *model.Assignment, conflicting []model.WorkerID, group []int, merged *model.Assignment, bufs *scratch.Buffers) {
	affected := affectedTasks(a1, a2, conflicting, group)
	base := baseStates(p, merged, affected, bufs)

	k := len(group)
	total := 1 << uint(k)
	vecs := make([]objective.Vec2, total)
	for mask := 0; mask < total; mask++ {
		states := cloneStates(base)
		for bit, gi := range group {
			w := conflicting[gi]
			t := chooseSide(a1, a2, w, mask&(1<<uint(bit)) != 0)
			addToState(p, states, w, t, bufs)
		}
		vecs[mask] = statesVec(states)
	}
	scores := objective.DominanceScoresBuf(bufs, vecs)
	best := objective.ArgmaxScore(vecs, scores)
	bufs.PutInt(scores)
	for bit, gi := range group {
		w := conflicting[gi]
		merged.Assign(w, chooseSide(a1, a2, w, best&(1<<uint(bit)) != 0))
	}
}

// resolveGroupGreedy resolves an oversized DCW group sequentially: each
// worker in turn picks the side that leaves the affected tasks' objectives
// better, given the choices made so far.
func resolveGroupGreedy(p *Problem, a1, a2 *model.Assignment, conflicting []model.WorkerID, group []int, merged *model.Assignment, bufs *scratch.Buffers) {
	affected := affectedTasks(a1, a2, conflicting, group)
	states := baseStates(p, merged, affected, bufs)
	for _, gi := range group {
		w := conflicting[gi]
		t1, t2 := a1.TaskOf(w), a2.TaskOf(w)
		s1 := cloneStates(states)
		addToState(p, s1, w, t1, bufs)
		s2 := cloneStates(states)
		addToState(p, s2, w, t2, bufs)
		v1, v2 := statesVec(s1), statesVec(s2)
		if v2.Dominates(v1) {
			merged.Assign(w, t2)
			states = s2
		} else {
			merged.Assign(w, t1)
			states = s1
		}
	}
}

func chooseSide(a1, a2 *model.Assignment, w model.WorkerID, second bool) model.TaskID {
	if second {
		return a2.TaskOf(w)
	}
	return a1.TaskOf(w)
}

// affectedTasks collects the tasks any group member touches in either
// sub-answer.
func affectedTasks(a1, a2 *model.Assignment, conflicting []model.WorkerID, group []int) map[model.TaskID]bool {
	out := make(map[model.TaskID]bool)
	for _, gi := range group {
		w := conflicting[gi]
		out[a1.TaskOf(w)] = true
		out[a2.TaskOf(w)] = true
	}
	delete(out, model.NoTask)
	return out
}

// baseStates builds the objective states of the affected tasks from the
// already-merged (non-group) assignments.
func baseStates(p *Problem, merged *model.Assignment, affected map[model.TaskID]bool, bufs *scratch.Buffers) map[model.TaskID]*objective.TaskState {
	states := make(map[model.TaskID]*objective.TaskState, len(affected))
	for t := range affected {
		if task := p.Task(t); task != nil {
			states[t] = objective.NewTaskState(*task, p.In.Beta)
		}
	}
	merged.Workers(func(w model.WorkerID, t model.TaskID) {
		if affected[t] {
			addToState(p, states, w, t, bufs)
		}
	})
	return states
}

func addToState(p *Problem, states map[model.TaskID]*objective.TaskState, wid model.WorkerID, tid model.TaskID, bufs *scratch.Buffers) {
	if tid == model.NoTask {
		return
	}
	st := states[tid]
	w := p.Worker(wid)
	t := p.Task(tid)
	if st == nil || w == nil || t == nil {
		return
	}
	arr, ok := model.Arrival(*t, *w, p.In.Opt)
	if !ok {
		return
	}
	st.AddBuf(bufs, wid, w.Confidence, arr, model.ApproachAngle(*t, *w))
}

// statesVec reduces a set of task states to the (min R, Σ E[STD]) objective
// vector used to compare merge choices.
func statesVec(states map[model.TaskID]*objective.TaskState) objective.Vec2 {
	ev := objective.EvaluateStates(states)
	return objective.Vec2{R: ev.MinR, D: ev.TotalESTD}
}

func cloneStates(states map[model.TaskID]*objective.TaskState) map[model.TaskID]*objective.TaskState {
	c := make(map[model.TaskID]*objective.TaskState, len(states))
	for t, st := range states {
		c[t] = st.Clone()
	}
	return c
}

// unionFind is a standard disjoint-set structure with path halving.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
