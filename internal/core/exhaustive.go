package core

import (
	"context"
	"fmt"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
)

// Exhaustive enumerates every complete assignment (each connected worker
// picks one of its deg(w) reachable tasks, as in the paper's sampling
// population) and returns the dominance-score winner. It is the ground
// truth for tiny instances and the quality yardstick in tests; the
// population Π deg(w_j) explodes combinatorially, so Solve refuses
// instances whose population exceeds MaxAssignments.
type Exhaustive struct {
	// MaxAssignments caps the enumerated population (default 1<<20).
	MaxAssignments int
}

// NewExhaustive returns the default exhaustive oracle.
func NewExhaustive() *Exhaustive { return &Exhaustive{} }

// Name implements Solver.
func (e *Exhaustive) Name() string { return "EXHAUSTIVE" }

func (e *Exhaustive) cap() int {
	if e.MaxAssignments > 0 {
		return e.MaxAssignments
	}
	return 1 << 20
}

// Population returns the number of complete assignments of p, saturating
// at cap+1 to avoid overflow.
func (e *Exhaustive) Population(p *Problem) int {
	pop := 1
	limit := e.cap()
	for _, wid := range p.ConnectedWorkers() {
		pop *= p.Degree(wid)
		if pop > limit {
			return limit + 1
		}
	}
	return pop
}

// CanSolve reports whether the instance is small enough to enumerate.
func (e *Exhaustive) CanSolve(p *Problem) bool { return e.Population(p) <= e.cap() }

// ctxCheckEvery is how many enumerated assignments pass between context
// checks (and progress reports) in the exhaustive enumeration.
const ctxCheckEvery = 256

// Solve implements Solver. It returns ErrPopulationTooLarge (with a nil
// result) when the population exceeds the cap; call CanSolve first.
// Cancellation is checked every ctxCheckEvery enumerated assignments; on
// interruption the winner among the assignments enumerated so far is
// returned with ErrInterrupted.
func (e *Exhaustive) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error) {
	if !e.CanSolve(p) {
		return nil, fmt.Errorf("%w %d", ErrPopulationTooLarge, e.cap())
	}
	workers := p.ConnectedWorkers()
	if len(workers) == 0 {
		return finishResult(p, model.NewAssignment(), Stats{}), nil
	}
	pop := e.Population(p)

	choice := make([]int, len(workers)) // index into each worker's pair list
	var (
		vecs  []objective.Vec2
		evals []objective.Evaluation
		all   [][]int
	)
	stopped := false
	for {
		if len(vecs)%ctxCheckEvery == 0 {
			if ctx.Err() != nil {
				stopped = true
				break
			}
			if len(vecs) > 0 {
				opts.emit(Stage{
					Solver: e.Name(),
					Round:  len(vecs),
					Total:  pop,
					Stats:  Stats{Samples: len(vecs)},
				})
			}
		}
		a := model.NewAssignment()
		for i, wid := range workers {
			pi := p.WorkerPairs(wid)[choice[i]]
			a.Assign(wid, p.Pairs[pi].Task)
		}
		ev := p.Evaluate(a)
		vecs = append(vecs, objective.Vec2{R: ev.MinR, D: ev.TotalESTD})
		evals = append(evals, ev)
		all = append(all, append([]int(nil), choice...))

		// Advance the mixed-radix counter.
		i := 0
		for i < len(workers) {
			choice[i]++
			if choice[i] < p.Degree(workers[i]) {
				break
			}
			choice[i] = 0
			i++
		}
		if i == len(workers) {
			break
		}
	}
	if len(vecs) == 0 {
		return finishResult(p, model.NewAssignment(), Stats{}), interrupted(ctx)
	}

	scores := objective.DominanceScores(vecs)
	best := objective.ArgmaxScore(vecs, scores)
	a := model.NewAssignment()
	for i, wid := range workers {
		pi := p.WorkerPairs(wid)[all[best][i]]
		a.Assign(wid, p.Pairs[pi].Task)
	}
	res := &Result{Assignment: a, Eval: evals[best], Stats: Stats{Samples: len(vecs)}}
	if stopped {
		return res, interrupted(ctx)
	}
	return res, nil
}

// ParetoFront enumerates the population like Solve but returns the full
// set of non-dominated objective vectors. Intended for analysis of tiny
// instances and for tests that check approximation quality.
func (e *Exhaustive) ParetoFront(p *Problem) []objective.Vec2 {
	if !e.CanSolve(p) {
		panic(fmt.Sprintf("core: exhaustive population exceeds cap %d", e.cap()))
	}
	workers := p.ConnectedWorkers()
	if len(workers) == 0 {
		return nil
	}
	choice := make([]int, len(workers))
	var vecs []objective.Vec2
	for {
		a := model.NewAssignment()
		for i, wid := range workers {
			pi := p.WorkerPairs(wid)[choice[i]]
			a.Assign(wid, p.Pairs[pi].Task)
		}
		ev := p.Evaluate(a)
		vecs = append(vecs, objective.Vec2{R: ev.MinR, D: ev.TotalESTD})
		i := 0
		for i < len(workers) {
			choice[i]++
			if choice[i] < p.Degree(workers[i]) {
				break
			}
			choice[i] = 0
			i++
		}
		if i == len(workers) {
			break
		}
	}
	sky := objective.Skyline(vecs)
	out := make([]objective.Vec2, len(sky))
	for i, idx := range sky {
		out[i] = vecs[idx]
	}
	return out
}

// GTruth returns the paper's G-TRUTH reference configuration: the
// divide-and-conquer solver whose leaves run the sampling solver with a 10×
// sample budget (Section 8.1, "RDB-SC Approaches and Measures").
func GTruth() Solver {
	return &gtruth{dc: &DC{Base: &Sampling{
		Spec:       SampleSizeSpec{Epsilon: 0.1, Delta: 0.9},
		Multiplier: 10,
	}}}
}

type gtruth struct {
	dc *DC
}

func (g *gtruth) Name() string { return "G-TRUTH" }

func (g *gtruth) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error) {
	return g.dc.Solve(ctx, p, opts)
}
