package core

import (
	"fmt"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

// Exhaustive enumerates every complete assignment (each connected worker
// picks one of its deg(w) reachable tasks, as in the paper's sampling
// population) and returns the dominance-score winner. It is the ground
// truth for tiny instances and the quality yardstick in tests; the
// population Π deg(w_j) explodes combinatorially, so Solve refuses
// instances whose population exceeds MaxAssignments.
type Exhaustive struct {
	// MaxAssignments caps the enumerated population (default 1<<20).
	MaxAssignments int
}

// NewExhaustive returns the default exhaustive oracle.
func NewExhaustive() *Exhaustive { return &Exhaustive{} }

// Name implements Solver.
func (e *Exhaustive) Name() string { return "EXHAUSTIVE" }

func (e *Exhaustive) cap() int {
	if e.MaxAssignments > 0 {
		return e.MaxAssignments
	}
	return 1 << 20
}

// Population returns the number of complete assignments of p, saturating
// at cap+1 to avoid overflow.
func (e *Exhaustive) Population(p *Problem) int {
	pop := 1
	limit := e.cap()
	for _, wid := range p.ConnectedWorkers() {
		pop *= p.Degree(wid)
		if pop > limit {
			return limit + 1
		}
	}
	return pop
}

// CanSolve reports whether the instance is small enough to enumerate.
func (e *Exhaustive) CanSolve(p *Problem) bool { return e.Population(p) <= e.cap() }

// Solve implements Solver. It panics when the population exceeds the cap;
// call CanSolve first.
func (e *Exhaustive) Solve(p *Problem, _ *rng.Source) *Result {
	if !e.CanSolve(p) {
		panic(fmt.Sprintf("core: exhaustive population exceeds cap %d", e.cap()))
	}
	workers := p.ConnectedWorkers()
	if len(workers) == 0 {
		return finishResult(p, model.NewAssignment(), Stats{})
	}

	choice := make([]int, len(workers)) // index into each worker's pair list
	var (
		vecs  []objective.Vec2
		evals []objective.Evaluation
		all   [][]int
	)
	for {
		a := model.NewAssignment()
		for i, wid := range workers {
			pi := p.WorkerPairs(wid)[choice[i]]
			a.Assign(wid, p.Pairs[pi].Task)
		}
		ev := p.Evaluate(a)
		vecs = append(vecs, objective.Vec2{R: ev.MinR, D: ev.TotalESTD})
		evals = append(evals, ev)
		all = append(all, append([]int(nil), choice...))

		// Advance the mixed-radix counter.
		i := 0
		for i < len(workers) {
			choice[i]++
			if choice[i] < p.Degree(workers[i]) {
				break
			}
			choice[i] = 0
			i++
		}
		if i == len(workers) {
			break
		}
	}

	scores := objective.DominanceScores(vecs)
	best := objective.ArgmaxScore(vecs, scores)
	a := model.NewAssignment()
	for i, wid := range workers {
		pi := p.WorkerPairs(wid)[all[best][i]]
		a.Assign(wid, p.Pairs[pi].Task)
	}
	return &Result{Assignment: a, Eval: evals[best], Stats: Stats{Samples: len(vecs)}}
}

// ParetoFront enumerates the population like Solve but returns the full
// set of non-dominated objective vectors. Intended for analysis of tiny
// instances and for tests that check approximation quality.
func (e *Exhaustive) ParetoFront(p *Problem) []objective.Vec2 {
	if !e.CanSolve(p) {
		panic(fmt.Sprintf("core: exhaustive population exceeds cap %d", e.cap()))
	}
	workers := p.ConnectedWorkers()
	if len(workers) == 0 {
		return nil
	}
	choice := make([]int, len(workers))
	var vecs []objective.Vec2
	for {
		a := model.NewAssignment()
		for i, wid := range workers {
			pi := p.WorkerPairs(wid)[choice[i]]
			a.Assign(wid, p.Pairs[pi].Task)
		}
		ev := p.Evaluate(a)
		vecs = append(vecs, objective.Vec2{R: ev.MinR, D: ev.TotalESTD})
		i := 0
		for i < len(workers) {
			choice[i]++
			if choice[i] < p.Degree(workers[i]) {
				break
			}
			choice[i] = 0
			i++
		}
		if i == len(workers) {
			break
		}
	}
	sky := objective.Skyline(vecs)
	out := make([]objective.Vec2, len(sky))
	for i, idx := range sky {
		out[i] = vecs[idx]
	}
	return out
}

// GTruth returns the paper's G-TRUTH reference configuration: the
// divide-and-conquer solver whose leaves run the sampling solver with a 10×
// sample budget (Section 8.1, "RDB-SC Approaches and Measures").
func GTruth() Solver {
	return &gtruth{dc: &DC{Base: &Sampling{
		Spec:       SampleSizeSpec{Epsilon: 0.1, Delta: 0.9},
		Multiplier: 10,
	}}}
}

type gtruth struct {
	dc *DC
}

func (g *gtruth) Name() string { return "G-TRUTH" }

func (g *gtruth) Solve(p *Problem, src *rng.Source) *Result {
	return g.dc.Solve(p, src)
}
