package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdbsc/internal/rng"
)

// slowInstance is large enough that exhaustive enumeration and D&C cannot
// finish within a millisecond, so deadline tests observe a genuine
// interruption rather than a completed solve.
func slowInstance(t *testing.T) *Problem {
	t.Helper()
	in := randomInstance(rng.New(77), 24, 48)
	return NewProblem(in)
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestAllSolversReturnPromptlyOnCancelledContext(t *testing.T) {
	p := slowInstance(t)
	for _, s := range allSolvers() {
		t.Run(s.Name(), func(t *testing.T) {
			start := time.Now()
			res, err := s.Solve(cancelledCtx(), p, &SolveOptions{Seed: 1})
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("err = %v, want ErrInterrupted", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want context.Canceled in the chain", err)
			}
			if res == nil || res.Assignment == nil {
				t.Fatal("interrupted solve must return a non-nil partial result")
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Errorf("cancelled solve took %v, want prompt return", elapsed)
			}
		})
	}
}

func TestExhaustiveHonorsDeadline(t *testing.T) {
	// A population in the hundreds of thousands takes far longer than 1ms
	// to enumerate; the solve must stop at a chunk boundary and return the
	// winner of the enumerated prefix.
	in := randomInstance(rng.New(78), 4, 10)
	p := NewProblem(in)
	ex := &Exhaustive{MaxAssignments: 1 << 30}
	pop := ex.Population(p)
	if pop < 1<<16 {
		t.Skipf("population %d too small to observe a deadline", pop)
	}
	if !ex.CanSolve(p) {
		t.Fatalf("population %d exceeds the test cap", pop)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := ex.Solve(ctx, p, nil)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if res == nil {
		t.Fatal("interrupted exhaustive solve must return a partial result")
	}
	if res.Stats.Samples == 0 {
		t.Error("deadline hit before any assignment was enumerated; expected a partial prefix")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("deadline solve took %v, want prompt return", elapsed)
	}
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Errorf("partial assignment invalid: %v", err)
	}
}

func TestDCHonorsDeadline(t *testing.T) {
	in := randomInstance(rng.New(79), 60, 200)
	p := NewProblem(in)
	// A huge sampling budget at every leaf makes the full solve slow.
	dc := &DC{Gamma: 5, Base: &Sampling{FixedK: 200000}}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := dc.Solve(ctx, p, &SolveOptions{Seed: 2})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res == nil {
		t.Fatal("interrupted D&C solve must return a partial result")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline solve took %v, want prompt return", elapsed)
	}
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Errorf("partial assignment invalid: %v", err)
	}
}

func TestGreedyPartialResultGrowsUntilCancel(t *testing.T) {
	// Cancel after the third round via the progress callback: the partial
	// result must contain exactly the assignments committed so far.
	p := slowInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	res, err := NewGreedy().Solve(ctx, p, &SolveOptions{
		Progress: func(st Stage) {
			rounds++
			if rounds == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if got := res.Assignment.Len(); got != 3 {
		t.Errorf("partial assignment has %d workers, want 3", got)
	}
	if res.Eval.AssignedWorkers != 3 {
		t.Errorf("partial result not evaluated: %+v", res.Eval)
	}
}

func TestSamplingPartialKeepsEvaluatedPrefix(t *testing.T) {
	p := slowInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	draws := 0
	res, err := (&Sampling{FixedK: 500}).Solve(ctx, p, &SolveOptions{
		Seed: 9,
		Progress: func(st Stage) {
			draws++
			if draws == 10 {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res.Stats.Samples != 10 {
		t.Errorf("partial sampling evaluated %d samples, want 10", res.Stats.Samples)
	}
	if res.Assignment.Len() == 0 {
		t.Error("partial sampling returned no assignment despite evaluated samples")
	}
}

func TestCompletedSolveReturnsNilError(t *testing.T) {
	// A context with a generous deadline must not leak an error into a
	// solve that finishes in time.
	in := randomInstance(rng.New(80), 6, 15)
	p := NewProblem(in)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, s := range allSolvers() {
		if _, err := s.Solve(ctx, p, &SolveOptions{Seed: 1}); err != nil {
			t.Errorf("%s: unexpected error %v", s.Name(), err)
		}
	}
}

func TestSolveSeededMatchesV2(t *testing.T) {
	// The deprecated v1 wrapper must be behavior-identical to the v2 call
	// it wraps.
	in := randomInstance(rng.New(81), 6, 18)
	p := NewProblem(in)
	for _, mk := range []func() Solver{func() Solver { return NewGreedy() }, func() Solver { return NewDC() }} {
		v1 := SolveSeeded(mk(), p, rng.New(4))
		v2, err := mk().Solve(context.Background(), p, &SolveOptions{Source: rng.New(4)})
		if err != nil {
			t.Fatal(err)
		}
		if v1.Eval.MinRel != v2.Eval.MinRel || v1.Eval.TotalESTD != v2.Eval.TotalESTD {
			t.Errorf("v1 wrapper diverged: %v vs %v", v1.Eval, v2.Eval)
		}
	}
}
