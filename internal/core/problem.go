// Package core implements the paper's primary contribution: the three
// approximation algorithms for the NP-hard RDB-SC assignment problem —
// GREEDY (Section 4, with the Lemma 4.3 bound-based pruning), SAMPLING
// (Section 5, with the (ε,δ) sample-size determination of Section 5.2), and
// the divide-and-conquer D&C (Section 6, with BG_Partition and SA_Merge) —
// plus the exhaustive oracle for tiny instances and the paper's G-TRUTH
// reference configuration (D&C with a 10× sampling budget).
package core

import (
	"context"
	"fmt"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/scratch"
)

// Problem is an RDB-SC instance prepared for solving: the instance plus its
// valid task-worker pairs indexed by worker and by task. Construct with
// NewProblem (brute-force pair enumeration) or NewProblemWithPairs (pairs
// retrieved from the grid index).
type Problem struct {
	In    *model.Instance
	Pairs []model.Pair

	byWorker map[model.WorkerID][]int32 // worker -> indices into Pairs
	byTask   map[model.TaskID][]int32   // task -> indices into Pairs
	workers  map[model.WorkerID]*model.Worker
	tasks    map[model.TaskID]*model.Task
}

// NewProblem prepares the instance, enumerating valid pairs in O(m·n).
func NewProblem(in *model.Instance) *Problem {
	return NewProblemWithPairs(in, in.ValidPairs())
}

// NewProblemWithPairs prepares the instance with externally computed valid
// pairs (for example, retrieved via the RDB-SC-Grid index).
func NewProblemWithPairs(in *model.Instance, pairs []model.Pair) *Problem {
	p := &Problem{
		In:       in,
		Pairs:    pairs,
		byWorker: make(map[model.WorkerID][]int32),
		byTask:   make(map[model.TaskID][]int32),
		workers:  make(map[model.WorkerID]*model.Worker, len(in.Workers)),
		tasks:    make(map[model.TaskID]*model.Task, len(in.Tasks)),
	}
	for i := range in.Workers {
		p.workers[in.Workers[i].ID] = &in.Workers[i]
	}
	for i := range in.Tasks {
		p.tasks[in.Tasks[i].ID] = &in.Tasks[i]
	}
	for i := range pairs {
		pr := pairs[i]
		p.byWorker[pr.Worker] = append(p.byWorker[pr.Worker], int32(i))
		p.byTask[pr.Task] = append(p.byTask[pr.Task], int32(i))
	}
	return p
}

// Degree returns deg(w): the number of tasks worker w can do.
func (p *Problem) Degree(w model.WorkerID) int { return len(p.byWorker[w]) }

// WorkerPairs returns the pair indices for worker w.
func (p *Problem) WorkerPairs(w model.WorkerID) []int32 { return p.byWorker[w] }

// TaskPairs returns the pair indices for task t.
func (p *Problem) TaskPairs(t model.TaskID) []int32 { return p.byTask[t] }

// Worker returns the worker with the given id (nil if absent).
func (p *Problem) Worker(id model.WorkerID) *model.Worker { return p.workers[id] }

// Task returns the task with the given id (nil if absent).
func (p *Problem) Task(id model.TaskID) *model.Task { return p.tasks[id] }

// ConnectedWorkers returns the IDs of workers with at least one valid pair.
// Order follows the instance's worker slice for determinism.
func (p *Problem) ConnectedWorkers() []model.WorkerID {
	out := make([]model.WorkerID, 0, len(p.byWorker))
	for i := range p.In.Workers {
		id := p.In.Workers[i].ID
		if len(p.byWorker[id]) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// Evaluate computes the objective values of an assignment on this problem.
func (p *Problem) Evaluate(a *model.Assignment) objective.Evaluation {
	return objective.Evaluate(p.In, a)
}

// EvaluateBuf is Evaluate with pooled scratch (nil disables pooling); the
// result is bit-identical.
func (p *Problem) EvaluateBuf(bufs *scratch.Buffers, a *model.Assignment) objective.Evaluation {
	return objective.EvaluateBuf(bufs, p.In, a)
}

// NewStates returns a per-task objective state map initialized from an
// existing (possibly partial) assignment restricted to this problem's valid
// pairs. It delegates to objective.BuildStates, which applies workers in a
// deterministic order: per-task diversity is a floating-point sum over the
// insertion order, so the resulting states (and everything solved on top
// of them) are reproducible.
func (p *Problem) NewStates(a *model.Assignment) map[model.TaskID]*objective.TaskState {
	if a == nil {
		return make(map[model.TaskID]*objective.TaskState)
	}
	return objective.BuildStates(p.In, a)
}

// Stats carries per-solve diagnostics.
type Stats struct {
	Rounds          int // greedy rounds or D&C recursion leaves
	PairsEvaluated  int // exact Δ-diversity evaluations
	PairsPruned     int // candidates eliminated by Lemma 4.3 bounds
	BoundsComputed  int // candidate Δ-bound computations (cache misses)
	BoundsReused    int // candidate Δ-bounds served from the incremental cache
	Samples         int // random samples drawn (sampling / leaves)
	MergeGroups     int // DCW groups resolved during SA_Merge
	MergeExhaustive int // DCW groups resolved by 2^k enumeration

	// Decomposition diagnostics (sharded solves and engine.Config.Decompose).
	Components        int // connected components the solve decomposed into
	ComponentsReused  int // components served from the engine's result cache
	MaxComponentPairs int // pair count of the largest component

	// Scratch-memory diagnostics: how many hot-path slice requests hit the
	// allocator vs a pooled free-list (internal/scratch). Reuses/(Allocs+
	// Reuses) is the pool hit rate; steady-state solves should be almost
	// all reuses.
	ScratchAllocs int // scratch requests served by the allocator
	ScratchReused int // scratch requests served from a free-list
}

// Add returns the element-wise accumulation of two stats (MaxComponentPairs
// takes the max). Aggregating layers — SA_Merge, the component merger, the
// serving layer's cumulative /v1/stats counters — fold per-solve stats with
// it.
func (s Stats) Add(o Stats) Stats {
	s.Rounds += o.Rounds
	s.PairsEvaluated += o.PairsEvaluated
	s.PairsPruned += o.PairsPruned
	s.BoundsComputed += o.BoundsComputed
	s.BoundsReused += o.BoundsReused
	s.Samples += o.Samples
	s.MergeGroups += o.MergeGroups
	s.MergeExhaustive += o.MergeExhaustive
	s.Components += o.Components
	s.ComponentsReused += o.ComponentsReused
	if o.MaxComponentPairs > s.MaxComponentPairs {
		s.MaxComponentPairs = o.MaxComponentPairs
	}
	s.ScratchAllocs += o.ScratchAllocs
	s.ScratchReused += o.ScratchReused
	return s
}

// Result is a solver's output: the assignment, its evaluation, and
// diagnostics.
type Result struct {
	Assignment *model.Assignment
	Eval       objective.Evaluation
	Stats      Stats
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("%v stats=%+v", r.Eval, r.Stats)
}

// Solver is the common interface of the RDB-SC approximation algorithms
// (the v2 contract). Solve must not mutate the problem; all randomness
// flows from opts (seed or explicit source) so runs are reproducible.
//
// Solvers check ctx at iteration boundaries — greedy rounds, sampling
// draws, D&C subproblem merges, exhaustive enumeration chunks — and on
// cancellation or deadline expiry return their best-so-far partial result
// together with an error wrapping ErrInterrupted. The returned *Result is
// non-nil whenever the solve started (only Exhaustive's population-cap
// rejection returns a nil result). A nil opts is valid and means defaults.
type Solver interface {
	Name() string
	Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error)
}

// finishResult evaluates and packages an assignment.
func finishResult(p *Problem, a *model.Assignment, st Stats) *Result {
	return &Result{Assignment: a, Eval: p.Evaluate(a), Stats: st}
}
