package core

import (
	"context"
	"math"
	"sort"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
)

// Greedy implements the RDB-SC_Greedy algorithm of Figure 3: it repeatedly
// selects the task-worker pair whose assignment increases the two goals the
// most, ranking candidate pairs by their top-k dominating score [22] in the
// (Δmin-reliability, Δdiversity) plane, until no unassigned worker can
// reach any task.
//
// With Prune enabled (the default), candidate pairs are first filtered with
// the Lemma 4.3 bound-based pruning: a pair whose diversity-increase upper
// bound falls below another pair's lower bound (at equal-or-worse Δmin-R)
// is discarded before its exact Δdiversity is computed.
type Greedy struct {
	// Prune toggles the Lemma 4.3 bound-based candidate pruning.
	Prune bool
}

// NewGreedy returns the default greedy solver (pruning enabled).
func NewGreedy() *Greedy { return &Greedy{Prune: true} }

// Name implements Solver.
func (g *Greedy) Name() string { return "GREEDY" }

// candidate is one task-worker pair under consideration in a round.
type candidate struct {
	pairIdx int32
	dMinR   float64 // increase of the smallest per-task R across tasks
	dR      float64 // increase of the task's own R (−ln(1−p))
	lbD     float64 // lower bound on ΔE[STD]
	ubD     float64 // upper bound on ΔE[STD]
	dD      float64 // exact ΔE[STD] (filled after pruning survives)
	exact   bool
}

// Solve implements Solver. When opts carries SeedStates, the seeded
// contributions shape every Δ-objective and their workers are excluded from
// assignment (the returned assignment then contains only new workers).
func (g *Greedy) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error) {
	return g.SolveWithStates(ctx, p, opts.seedStates(), opts)
}

// SolveFrom runs the greedy assignment on top of an existing partial
// assignment: committed workers stay on their tasks and their contributions
// seed the per-task objective states, so new pairs are chosen "considering
// A and S_c" exactly as line 6 of the incremental updating strategy
// (Figure 10) prescribes. A nil existing assignment reduces to Solve.
func (g *Greedy) SolveFrom(ctx context.Context, p *Problem, existing *model.Assignment, opts *SolveOptions) (*Result, error) {
	var seed map[model.TaskID]*objective.TaskState
	if existing != nil {
		seed = p.NewStates(existing)
	}
	res, err := g.SolveWithStates(ctx, p, seed, opts)
	if existing != nil {
		existing.Workers(func(w model.WorkerID, t model.TaskID) {
			res.Assignment.Assign(w, t)
		})
		res.Eval = p.Evaluate(res.Assignment)
	}
	return res, err
}

// SolveWithStates runs the greedy assignment with externally seeded
// per-task objective states — contributions (answers already received,
// workers already travelling) that are not part of the problem's worker set
// but must influence the Δ-objective of every new pair. Workers appearing
// in the seeded states are excluded from assignment. The returned
// assignment contains only newly assigned workers.
func (g *Greedy) SolveWithStates(ctx context.Context, p *Problem, seed map[model.TaskID]*objective.TaskState, opts *SolveOptions) (*Result, error) {
	assignment := model.NewAssignment()
	states := make(map[model.TaskID]*objective.TaskState, len(p.In.Tasks))
	committed := make(map[model.WorkerID]bool)
	for i := range p.In.Tasks {
		t := p.In.Tasks[i]
		if st := seed[t.ID]; st != nil {
			states[t.ID] = st.Clone()
			for _, w := range st.Workers() {
				committed[w] = true
			}
			continue
		}
		states[t.ID] = objective.NewTaskState(t, p.In.Beta)
	}
	free := make(map[model.WorkerID]bool)
	for _, w := range p.ConnectedWorkers() {
		if !committed[w] {
			free[w] = true
		}
	}

	var stats Stats
	for len(free) > 0 {
		if ctx.Err() != nil {
			return finishResult(p, assignment, stats), interrupted(ctx)
		}
		cands := g.collectCandidates(p, states, free, &stats)
		if len(cands) == 0 {
			break
		}
		best := g.selectBest(p, states, cands, &stats)
		pr := p.Pairs[best.pairIdx]
		w := p.Worker(pr.Worker)
		states[pr.Task].AddPair(pr, w.Confidence)
		assignment.Assign(pr.Worker, pr.Task)
		delete(free, pr.Worker)
		stats.Rounds++
		opts.emit(Stage{
			Solver:   g.Name(),
			Round:    stats.Rounds,
			Assigned: assignment.Len(),
			Stats:    stats,
		})
	}
	return finishResult(p, assignment, stats), nil
}

// collectCandidates builds the per-round candidate list with Δmin-R and
// diversity-increase bounds for every valid pair of a free worker.
func (g *Greedy) collectCandidates(p *Problem, states map[model.TaskID]*objective.TaskState, free map[model.WorkerID]bool, stats *Stats) []candidate {
	minR, secondR := minTwoR(states)
	var cands []candidate
	for i := range p.In.Workers {
		wid := p.In.Workers[i].ID
		if !free[wid] {
			continue
		}
		w := &p.In.Workers[i]
		for _, pi := range p.WorkerPairs(wid) {
			pr := p.Pairs[pi]
			st := states[pr.Task]
			dR := objective.RTerm(w.Confidence)
			c := candidate{
				pairIdx: pi,
				dR:      dR,
				dMinR:   deltaMinR(st.R(), dR, minR, secondR),
			}
			b := st.DeltaBoundsIfAdd(w.Confidence, pr.Arrival, pr.Angle)
			c.lbD, c.ubD = b.Lo, b.Hi
			cands = append(cands, c)
		}
	}
	if g.Prune && len(cands) > 1 {
		cands = pruneCandidates(cands, stats)
	}
	return cands
}

// selectBest computes exact diversity increases for the surviving
// candidates, ranks them by dominance score, and returns the winner.
func (g *Greedy) selectBest(p *Problem, states map[model.TaskID]*objective.TaskState, cands []candidate, stats *Stats) candidate {
	vecs := make([]objective.Vec2, len(cands))
	for i := range cands {
		c := &cands[i]
		pr := p.Pairs[c.pairIdx]
		w := p.Worker(pr.Worker)
		_, dD := states[pr.Task].DeltaIfAdd(w.Confidence, pr.Arrival, pr.Angle)
		c.dD = dD
		c.exact = true
		stats.PairsEvaluated++
		vecs[i] = objective.Vec2{R: c.dMinR, D: c.dD}
	}
	// Skyline filter (line 6 of Figure 3) then top-k dominating rank
	// (line 7); the skyline restriction does not change the argmax but
	// mirrors the paper's two-step description.
	sky := objective.Skyline(vecs)
	if len(sky) == 1 {
		return cands[sky[0]]
	}
	scores := objective.DominanceScores(vecs)
	bestIdx := sky[0]
	for _, i := range sky[1:] {
		if betterCandidate(scores, vecs, i, bestIdx) {
			bestIdx = i
		}
	}
	return cands[bestIdx]
}

func betterCandidate(scores []int, vecs []objective.Vec2, i, j int) bool {
	if scores[i] != scores[j] {
		return scores[i] > scores[j]
	}
	if vecs[i].R != vecs[j].R {
		return vecs[i].R > vecs[j].R
	}
	return vecs[i].D > vecs[j].D
}

// pruneCandidates applies Lemma 4.3: discard candidate q when some
// candidate p has dMinR_p ≥ dMinR_q and lbD_p > ubD_q. Sorting by dMinR
// descending lets a running maximum of lbD decide each candidate in
// O(P log P).
func pruneCandidates(cands []candidate, stats *Stats) []candidate {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cands[idx[a]].dMinR > cands[idx[b]].dMinR })

	keep := make([]bool, len(cands))
	maxLb := math.Inf(-1)
	for g := 0; g < len(idx); {
		// Process one group of equal dMinR together: members of a group may
		// prune each other, so compute the group's own max lb first, but a
		// candidate is never pruned by its own bound (lb ≤ ub always).
		h := g
		groupMax := math.Inf(-1)
		for h < len(idx) && cands[idx[h]].dMinR == cands[idx[g]].dMinR {
			if lb := cands[idx[h]].lbD; lb > groupMax {
				groupMax = lb
			}
			h++
		}
		if groupMax > maxLb {
			maxLb = groupMax
		}
		for _, i := range idx[g:h] {
			keep[i] = !(maxLb > cands[i].ubD)
		}
		g = h
	}
	out := cands[:0]
	for i, k := range keep {
		if k {
			out = append(out, cands[i])
		} else {
			stats.PairsPruned++
		}
	}
	// Guard: bounds are sound, so at least the candidate carrying maxLb
	// survives; an empty result can only arise from NaNs, which we refuse
	// to propagate.
	if len(out) == 0 {
		return cands
	}
	return out
}

// minTwoR returns the smallest and second-smallest per-task additive
// reliability R across all task states. With one task, second is +Inf.
func minTwoR(states map[model.TaskID]*objective.TaskState) (min1, min2 float64) {
	min1, min2 = math.Inf(1), math.Inf(1)
	for _, st := range states {
		r := st.R()
		switch {
		case r < min1:
			min2 = min1
			min1 = r
		case r < min2:
			min2 = r
		}
	}
	return min1, min2
}

// deltaMinR returns the increase of the global minimum per-task R when a
// task currently at taskR gains dR. Only assignments to a task currently
// holding the minimum can raise it, and then only up to the second minimum.
func deltaMinR(taskR, dR, minR, secondR float64) float64 {
	if taskR > minR {
		return 0
	}
	after := taskR + dR
	if after > secondR {
		after = secondR
	}
	return after - minR
}
