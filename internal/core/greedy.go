package core

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/scratch"
)

// Greedy implements the RDB-SC_Greedy algorithm of Figure 3: it repeatedly
// selects the task-worker pair whose assignment increases the two goals the
// most, ranking candidate pairs by their top-k dominating score [22] in the
// (Δmin-reliability, Δdiversity) plane, until no unassigned worker can
// reach any task.
//
// With Prune enabled (the default), candidate pairs are first filtered with
// the Lemma 4.3 bound-based pruning: a pair whose diversity-increase upper
// bound falls below another pair's lower bound (at equal-or-worse Δmin-R)
// is discarded before its exact Δdiversity is computed.
//
// With Incremental enabled (the default), the per-pair Δ-diversity bounds
// are maintained across rounds instead of recomputed from scratch: a round
// mutates exactly one task's state, so only that task's pairs need fresh
// bounds — every other cached bound stays valid (keyed on the task state's
// version counter), and only the cheap Δmin-R term is refreshed from an
// incrementally maintained min/second-min R. The assignment produced is
// bit-identical to the non-incremental path; Greedy{Incremental: false}
// keeps the full-recomputation loop reachable for differential testing.
type Greedy struct {
	// Prune toggles the Lemma 4.3 bound-based candidate pruning.
	Prune bool
	// Incremental reuses candidate Δ-bounds across rounds via a per-pair
	// cache keyed on the task state's version, recomputing only the pairs
	// of the task assigned in the previous round.
	Incremental bool
	// Parallel evaluates the surviving candidates' exact Δ-diversity on all
	// CPUs (GOMAXPROCS-bounded shards). The winner is identical to the
	// sequential run: every candidate's exact Δ is a pure function of the
	// (unmutated) task states, and the tie-broken argmax scan stays
	// sequential over the stable candidate order, mirroring the seed-stable
	// design of Sampling.Parallel.
	Parallel bool
}

// NewGreedy returns the default greedy solver (pruning and incremental
// candidate maintenance enabled).
func NewGreedy() *Greedy { return &Greedy{Prune: true, Incremental: true} }

// Name implements Solver.
func (g *Greedy) Name() string { return "GREEDY" }

// greedyScratch bundles the buffers one greedy solve reuses across rounds:
// the candidate list, the objective vectors, and a scratch.Buffers feeding
// every slice temporary underneath (bound/delta evaluation, skyline,
// dominance scores, pruning). Solves check one out of a process-wide
// sync.Pool, so steady-state serving reuses warmed buffers across requests
// too. It is single-goroutine state; the parallel exact-Δ shards take their
// own scratch.Buffers instead of sharing this one.
type greedyScratch struct {
	bufs  *scratch.Buffers
	cands []candidate
	vecs  []objective.Vec2
}

var greedyScratchPool = sync.Pool{New: func() any { return &greedyScratch{bufs: new(scratch.Buffers)} }}

func getGreedyScratch() *greedyScratch {
	gs := greedyScratchPool.Get().(*greedyScratch)
	gs.bufs.ResetCounters()
	return gs
}

func putGreedyScratch(gs *greedyScratch) { greedyScratchPool.Put(gs) }

// fold records the solve's pool hit rate into its stats.
func (gs *greedyScratch) fold(stats *Stats) {
	allocs, reuses := gs.bufs.Counters()
	stats.ScratchAllocs += allocs
	stats.ScratchReused += reuses
}

// candidate is one task-worker pair under consideration in a round.
type candidate struct {
	pairIdx int32
	dMinR   float64 // increase of the smallest per-task R across tasks
	dR      float64 // increase of the task's own R (−ln(1−p))
	lbD     float64 // lower bound on ΔE[STD]
	ubD     float64 // upper bound on ΔE[STD]
	dD      float64 // exact ΔE[STD] (filled after pruning survives)
	exact   bool
}

// Solve implements Solver. When opts carries SeedStates, the seeded
// contributions shape every Δ-objective and their workers are excluded from
// assignment (the returned assignment then contains only new workers).
func (g *Greedy) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error) {
	return g.SolveWithStates(ctx, p, opts.seedStates(), opts)
}

// SolveFrom runs the greedy assignment on top of an existing partial
// assignment: committed workers stay on their tasks and their contributions
// seed the per-task objective states, so new pairs are chosen "considering
// A and S_c" exactly as line 6 of the incremental updating strategy
// (Figure 10) prescribes. A nil existing assignment reduces to Solve.
func (g *Greedy) SolveFrom(ctx context.Context, p *Problem, existing *model.Assignment, opts *SolveOptions) (*Result, error) {
	var seed map[model.TaskID]*objective.TaskState
	if existing != nil {
		seed = p.NewStates(existing)
	}
	res, err := g.SolveWithStates(ctx, p, seed, opts)
	if existing != nil {
		existing.Workers(func(w model.WorkerID, t model.TaskID) {
			res.Assignment.Assign(w, t)
		})
		res.Eval = p.Evaluate(res.Assignment)
	}
	return res, err
}

// SolveWithStates runs the greedy assignment with externally seeded
// per-task objective states — contributions (answers already received,
// workers already travelling) that are not part of the problem's worker set
// but must influence the Δ-objective of every new pair. Workers appearing
// in the seeded states are excluded from assignment. The returned
// assignment contains only newly assigned workers.
func (g *Greedy) SolveWithStates(ctx context.Context, p *Problem, seed map[model.TaskID]*objective.TaskState, opts *SolveOptions) (*Result, error) {
	states := make(map[model.TaskID]*objective.TaskState, len(p.In.Tasks))
	committed := make(map[model.WorkerID]bool)
	for i := range p.In.Tasks {
		t := p.In.Tasks[i]
		if st := seed[t.ID]; st != nil {
			states[t.ID] = st.Clone()
			for _, w := range st.Workers() {
				committed[w] = true
			}
			continue
		}
		states[t.ID] = objective.NewTaskState(t, p.In.Beta)
	}
	free := make(map[model.WorkerID]bool)
	for _, w := range p.ConnectedWorkers() {
		if !committed[w] {
			free[w] = true
		}
	}
	if g.Incremental {
		return g.runIncremental(ctx, p, states, free, opts)
	}
	return g.runNaive(ctx, p, states, free, opts)
}

// runNaive is the full-recomputation loop: every round rebuilds the Δ-bounds
// of every pair of every free worker. Kept reachable (Incremental: false) as
// the differential-testing baseline.
func (g *Greedy) runNaive(ctx context.Context, p *Problem, states map[model.TaskID]*objective.TaskState, free map[model.WorkerID]bool, opts *SolveOptions) (*Result, error) {
	assignment := model.NewAssignment()
	gs := getGreedyScratch()
	defer putGreedyScratch(gs)
	var stats Stats
	for len(free) > 0 {
		if ctx.Err() != nil {
			gs.fold(&stats)
			return finishResult(p, assignment, stats), interrupted(ctx)
		}
		cands := g.collectCandidates(p, states, free, gs, &stats)
		if len(cands) == 0 {
			break
		}
		best := g.selectBest(p, states, cands, gs, &stats)
		g.commitRound(p, states, free, assignment, best, nil, gs, &stats, opts)
	}
	gs.fold(&stats)
	return finishResult(p, assignment, stats), nil
}

// runIncremental maintains the candidate bounds across rounds: a per-pair
// cache keyed on the task state's version serves every pair whose task did
// not change in the previous round, and the global min/second-min R feeding
// the Δmin-R term is updated in O(log m) instead of rescanned.
func (g *Greedy) runIncremental(ctx context.Context, p *Problem, states map[model.TaskID]*objective.TaskState, free map[model.WorkerID]bool, opts *SolveOptions) (*Result, error) {
	assignment := model.NewAssignment()
	cache := newBoundCache(len(p.Pairs))
	tracker := newMinTwoTracker(states)
	gs := getGreedyScratch()
	defer putGreedyScratch(gs)
	var stats Stats
	for len(free) > 0 {
		if ctx.Err() != nil {
			gs.fold(&stats)
			return finishResult(p, assignment, stats), interrupted(ctx)
		}
		cands := g.collectCached(p, states, free, cache, tracker, gs, &stats)
		if len(cands) == 0 {
			break
		}
		best := g.selectBest(p, states, cands, gs, &stats)
		g.commitRound(p, states, free, assignment, best, tracker, gs, &stats, opts)
	}
	gs.fold(&stats)
	return finishResult(p, assignment, stats), nil
}

// commitRound applies the winning pair and emits the round's progress.
func (g *Greedy) commitRound(p *Problem, states map[model.TaskID]*objective.TaskState, free map[model.WorkerID]bool, assignment *model.Assignment, best candidate, tracker *minTwoTracker, gs *greedyScratch, stats *Stats, opts *SolveOptions) {
	pr := p.Pairs[best.pairIdx]
	w := p.Worker(pr.Worker)
	st := states[pr.Task]
	st.AddPairBuf(gs.bufs, pr, w.Confidence)
	if tracker != nil {
		tracker.update(pr.Task, st.R())
	}
	assignment.Assign(pr.Worker, pr.Task)
	delete(free, pr.Worker)
	stats.Rounds++
	opts.emit(Stage{
		Solver:   g.Name(),
		Round:    stats.Rounds,
		Assigned: assignment.Len(),
		Stats:    *stats,
	})
}

// collectCandidates builds the per-round candidate list with Δmin-R and
// diversity-increase bounds for every valid pair of a free worker.
func (g *Greedy) collectCandidates(p *Problem, states map[model.TaskID]*objective.TaskState, free map[model.WorkerID]bool, gs *greedyScratch, stats *Stats) []candidate {
	minR, secondR := minTwoR(states)
	cands := gs.cands[:0]
	for i := range p.In.Workers {
		wid := p.In.Workers[i].ID
		if !free[wid] {
			continue
		}
		w := &p.In.Workers[i]
		for _, pi := range p.WorkerPairs(wid) {
			pr := p.Pairs[pi]
			st := states[pr.Task]
			dR := objective.RTerm(w.Confidence)
			c := candidate{
				pairIdx: pi,
				dR:      dR,
				dMinR:   deltaMinR(st.R(), dR, minR, secondR),
			}
			b := st.DeltaBoundsIfAddBuf(gs.bufs, w.Confidence, pr.Arrival, pr.Angle)
			stats.BoundsComputed++
			c.lbD, c.ubD = b.Lo, b.Hi
			cands = append(cands, c)
		}
	}
	gs.cands = cands // keep the (possibly grown) backing for the next round
	if g.Prune && len(cands) > 1 {
		cands = pruneCandidates(cands, gs.bufs, stats)
	}
	return cands
}

// collectCached is collectCandidates with the per-pair bound cache: bounds
// are recomputed only for pairs whose task state changed since they were
// cached (after round k that is exactly the task assigned in round k), and
// the Δmin-R term comes from the incrementally maintained tracker. The
// candidate list is identical to collectCandidates' — same pairs, same
// order, same floating-point values.
func (g *Greedy) collectCached(p *Problem, states map[model.TaskID]*objective.TaskState, free map[model.WorkerID]bool, cache *boundCache, tracker *minTwoTracker, gs *greedyScratch, stats *Stats) []candidate {
	minR, secondR := tracker.minTwo()
	cands := gs.cands[:0]
	for i := range p.In.Workers {
		wid := p.In.Workers[i].ID
		if !free[wid] {
			continue
		}
		w := &p.In.Workers[i]
		for _, pi := range p.WorkerPairs(wid) {
			pr := p.Pairs[pi]
			st := states[pr.Task]
			dR := objective.RTerm(w.Confidence)
			lo, hi, ok := cache.get(pi, st.Version())
			if ok {
				stats.BoundsReused++
			} else {
				b := st.DeltaBoundsIfAddBuf(gs.bufs, w.Confidence, pr.Arrival, pr.Angle)
				lo, hi = b.Lo, b.Hi
				cache.put(pi, st.Version(), lo, hi)
				stats.BoundsComputed++
			}
			cands = append(cands, candidate{
				pairIdx: pi,
				dR:      dR,
				dMinR:   deltaMinR(st.R(), dR, minR, secondR),
				lbD:     lo,
				ubD:     hi,
			})
		}
	}
	gs.cands = cands // keep the (possibly grown) backing for the next round
	if g.Prune && len(cands) > 1 {
		cands = pruneCandidates(cands, gs.bufs, stats)
	}
	return cands
}

// selectBest computes exact diversity increases for the surviving
// candidates, ranks them by dominance score, and returns the winner. With
// Parallel set, the exact O(r²) Δ evaluations run in GOMAXPROCS-bounded
// shards; the states are only read, and the winner scan stays sequential
// over the stable candidate order, so the result matches the sequential
// path exactly.
func (g *Greedy) selectBest(p *Problem, states map[model.TaskID]*objective.TaskState, cands []candidate, gs *greedyScratch, stats *Stats) candidate {
	if cap(gs.vecs) < len(cands) {
		gs.vecs = make([]objective.Vec2, len(cands))
	}
	vecs := gs.vecs[:len(cands)]
	evalExact := func(bufs *scratch.Buffers, i int) {
		c := &cands[i]
		pr := p.Pairs[c.pairIdx]
		w := p.Worker(pr.Worker)
		_, dD := states[pr.Task].DeltaIfAddBuf(bufs, w.Confidence, pr.Arrival, pr.Angle)
		c.dD = dD
		c.exact = true
		vecs[i] = objective.Vec2{R: c.dMinR, D: c.dD}
	}
	if g.Parallel && len(cands) > 1 {
		shards := runtime.GOMAXPROCS(0)
		if shards > len(cands) {
			shards = len(cands)
		}
		// Buffers are single-goroutine: each shard checks its own out of
		// the process-wide reservoir and folds its counters back atomically.
		var pAllocs, pReuses atomic.Int64
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				bufs := scratch.Get()
				for i := s; i < len(cands); i += shards {
					evalExact(bufs, i)
				}
				a, r := bufs.Counters()
				pAllocs.Add(int64(a))
				pReuses.Add(int64(r))
				scratch.Put(bufs)
			}(s)
		}
		wg.Wait()
		stats.ScratchAllocs += int(pAllocs.Load())
		stats.ScratchReused += int(pReuses.Load())
	} else {
		for i := range cands {
			evalExact(gs.bufs, i)
		}
	}
	stats.PairsEvaluated += len(cands)
	// Skyline filter (line 6 of Figure 3) then top-k dominating rank
	// (line 7); the skyline restriction does not change the argmax but
	// mirrors the paper's two-step description.
	sky := objective.SkylineBuf(gs.bufs, vecs)
	if len(sky) == 1 {
		best := cands[sky[0]]
		gs.bufs.PutInt(sky)
		return best
	}
	scores := objective.DominanceScoresBuf(gs.bufs, vecs)
	bestIdx := sky[0]
	for _, i := range sky[1:] {
		if betterCandidate(scores, vecs, i, bestIdx) {
			bestIdx = i
		}
	}
	gs.bufs.PutInt(scores)
	gs.bufs.PutInt(sky)
	return cands[bestIdx]
}

func betterCandidate(scores []int, vecs []objective.Vec2, i, j int) bool {
	if scores[i] != scores[j] {
		return scores[i] > scores[j]
	}
	if vecs[i].R != vecs[j].R {
		return vecs[i].R > vecs[j].R
	}
	return vecs[i].D > vecs[j].D
}

// pruneCandidates applies Lemma 4.3: discard candidate q when some
// candidate p has dMinR_p ≥ dMinR_q and lbD_p > ubD_q. Sorting by dMinR
// descending lets a running maximum of lbD decide each candidate in
// O(P log P).
func pruneCandidates(cands []candidate, bufs *scratch.Buffers, stats *Stats) []candidate {
	idx := bufs.Int(len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cands[idx[a]].dMinR > cands[idx[b]].dMinR })

	keep := bufs.Bool(len(cands))
	maxLb := math.Inf(-1)
	for g := 0; g < len(idx); {
		// Process one group of equal dMinR together: members of a group may
		// prune each other, so compute the group's own max lb first, but a
		// candidate is never pruned by its own bound (lb ≤ ub always).
		h := g
		groupMax := math.Inf(-1)
		for h < len(idx) && cands[idx[h]].dMinR == cands[idx[g]].dMinR {
			if lb := cands[idx[h]].lbD; lb > groupMax {
				groupMax = lb
			}
			h++
		}
		if groupMax > maxLb {
			maxLb = groupMax
		}
		for _, i := range idx[g:h] {
			keep[i] = !(maxLb > cands[i].ubD)
		}
		g = h
	}
	out := cands[:0]
	for i, k := range keep {
		if k {
			out = append(out, cands[i])
		} else {
			stats.PairsPruned++
		}
	}
	bufs.PutBool(keep)
	bufs.PutInt(idx)
	// Guard: bounds are sound, so at least the candidate carrying maxLb
	// survives; an empty result can only arise from NaNs, which we refuse
	// to propagate.
	if len(out) == 0 {
		return cands
	}
	return out
}

// boundCache memoizes each pair's Δ-diversity bounds keyed on the pair's
// task state version: an entry stays valid until the task gains a worker,
// so after round k only the pairs of the task assigned in round k miss.
type boundCache struct {
	valid  []bool
	ver    []uint64
	lo, hi []float64
}

func newBoundCache(pairs int) *boundCache {
	return &boundCache{
		valid: make([]bool, pairs),
		ver:   make([]uint64, pairs),
		lo:    make([]float64, pairs),
		hi:    make([]float64, pairs),
	}
}

func (c *boundCache) get(pi int32, ver uint64) (lo, hi float64, ok bool) {
	if !c.valid[pi] || c.ver[pi] != ver {
		return 0, 0, false
	}
	return c.lo[pi], c.hi[pi], true
}

func (c *boundCache) put(pi int32, ver uint64, lo, hi float64) {
	c.valid[pi] = true
	c.ver[pi] = ver
	c.lo[pi] = lo
	c.hi[pi] = hi
}

// minTwoR returns the smallest and second-smallest per-task additive
// reliability R across all task states. With one task, second is +Inf.
func minTwoR(states map[model.TaskID]*objective.TaskState) (min1, min2 float64) {
	min1, min2 = math.Inf(1), math.Inf(1)
	for _, st := range states {
		r := st.R()
		switch {
		case r < min1:
			min2 = min1
			min1 = r
		case r < min2:
			min2 = r
		}
	}
	return min1, min2
}

// minTwoTracker maintains the smallest and second-smallest per-task R under
// the greedy's one-task-per-round updates, replacing the per-round minTwoR
// full scan with a lazy-deletion min-heap: updates push a fresh entry in
// O(log m), and reads discard entries that no longer match their task's
// current R. R only grows during a solve, so stale entries are always
// dominated and safe to drop.
type minTwoTracker struct {
	entries rHeap
	cur     map[model.TaskID]float64
}

type rEntry struct {
	task model.TaskID
	r    float64
}

type rHeap []rEntry

func (h rHeap) Len() int { return len(h) }
func (h rHeap) Less(i, j int) bool {
	if h[i].r != h[j].r {
		return h[i].r < h[j].r
	}
	return h[i].task < h[j].task
}
func (h rHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rHeap) Push(x interface{}) { *h = append(*h, x.(rEntry)) }
func (h *rHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func newMinTwoTracker(states map[model.TaskID]*objective.TaskState) *minTwoTracker {
	t := &minTwoTracker{cur: make(map[model.TaskID]float64, len(states))}
	entries := make(rHeap, 0, len(states))
	for id, st := range states {
		t.cur[id] = st.R()
		entries = append(entries, rEntry{task: id, r: st.R()})
	}
	// Sort before Init so the heap's array layout is canonical rather than
	// a function of map iteration order (a sorted array is already a valid
	// min-heap, but Init keeps the invariant explicit).
	sort.Sort(entries)
	t.entries = entries
	heap.Init(&t.entries)
	return t
}

// update records task's new R after an assignment.
func (t *minTwoTracker) update(task model.TaskID, r float64) {
	t.cur[task] = r
	heap.Push(&t.entries, rEntry{task: task, r: r})
}

// minTwo returns the same values as minTwoR over the tracked states: the
// smallest per-task R and the smallest over the remaining tasks (+Inf when
// fewer than two tasks exist).
func (t *minTwoTracker) minTwo() (min1, min2 float64) {
	min1, min2 = math.Inf(1), math.Inf(1)
	t.popStale()
	if len(t.entries) == 0 {
		return min1, min2
	}
	top := t.entries[0]
	min1 = top.r
	heap.Pop(&t.entries)
	for len(t.entries) > 0 {
		e := t.entries[0]
		if e.r != t.cur[e.task] || e.task == top.task {
			heap.Pop(&t.entries) // stale, or a duplicate of the minimum's task
			continue
		}
		min2 = e.r
		break
	}
	heap.Push(&t.entries, top)
	return min1, min2
}

func (t *minTwoTracker) popStale() {
	for len(t.entries) > 0 && t.entries[0].r != t.cur[t.entries[0].task] {
		heap.Pop(&t.entries)
	}
}

// deltaMinR returns the increase of the global minimum per-task R when a
// task currently at taskR gains dR. Only assignments to a task currently
// holding the minimum can raise it, and then only up to the second minimum.
func deltaMinR(taskR, dR, minR, secondR float64) float64 {
	if taskR > minR {
		return 0
	}
	after := taskR + dR
	if after > secondR {
		after = secondR
	}
	return after - minR
}
