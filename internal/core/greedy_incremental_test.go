package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

// assignmentKey flattens an assignment into a canonical comparable form.
func assignmentKey(a *model.Assignment) string {
	type wt struct {
		w model.WorkerID
		t model.TaskID
	}
	var pairs []wt
	a.Workers(func(w model.WorkerID, t model.TaskID) { pairs = append(pairs, wt{w, t}) })
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].w < pairs[j].w })
	out := ""
	for _, pr := range pairs {
		out += fmt.Sprintf("%d->%d;", pr.w, pr.t)
	}
	return out
}

// greedyVariants returns the candidate-maintenance variants that must all
// produce the same assignment as the naive baseline with the same Prune
// setting.
func greedyVariants(prune bool) []*Greedy {
	return []*Greedy{
		{Prune: prune, Incremental: true},
		{Prune: prune, Incremental: true, Parallel: true},
	}
}

// TestGreedyIncrementalMatchesNaive is the differential suite of the
// incremental candidate maintenance: across randomized instances, seeds,
// and pruning settings, the incremental path (with and without parallel
// exact-Δ evaluation) must return assignments identical to the per-round
// full-recomputation baseline.
func TestGreedyIncrementalMatchesNaive(t *testing.T) {
	builders := []struct {
		name string
		mk   func(src *rng.Source) *model.Instance
	}{
		{"random-small", func(src *rng.Source) *model.Instance { return randomInstance(src, 6, 14) }},
		{"random-mid", func(src *rng.Source) *model.Instance { return randomInstance(src, 14, 32) }},
		{"constrained", func(src *rng.Source) *model.Instance { return constrainedInstance(src, 12, 30) }},
	}
	for _, b := range builders {
		for seed := int64(1); seed <= 4; seed++ {
			for _, prune := range []bool{true, false} {
				name := fmt.Sprintf("%s/seed=%d/prune=%v", b.name, seed, prune)
				t.Run(name, func(t *testing.T) {
					in := b.mk(rng.New(seed))
					p := NewProblem(in)
					naive := &Greedy{Prune: prune}
					want := mustSolve(t, naive, p, rng.New(seed))
					wantKey := assignmentKey(want.Assignment)
					for _, g := range greedyVariants(prune) {
						got := mustSolve(t, g, p, rng.New(seed))
						if key := assignmentKey(got.Assignment); key != wantKey {
							t.Errorf("Greedy{Incremental:%v,Parallel:%v} diverged:\n got %s\nwant %s",
								g.Incremental, g.Parallel, key, wantKey)
						}
						if got.Eval != want.Eval {
							t.Errorf("eval diverged: got %+v want %+v", got.Eval, want.Eval)
						}
						if got.Stats.Rounds != want.Stats.Rounds {
							t.Errorf("rounds diverged: got %d want %d", got.Stats.Rounds, want.Stats.Rounds)
						}
					}
				})
			}
		}
	}
}

// TestGreedyIncrementalMatchesNaiveSeeded repeats the differential check on
// top of seeded states: committed workers from a partial assignment shape
// every Δ-objective, and the variants must still agree pair for pair.
func TestGreedyIncrementalMatchesNaiveSeeded(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := randomInstance(rng.New(seed), 10, 26)
		p := NewProblem(in)

		// Commit roughly a third of the workers via a full naive solve.
		full := mustSolve(t, &Greedy{Prune: true}, p, rng.New(seed))
		existing := model.NewAssignment()
		n := 0
		full.Assignment.Workers(func(w model.WorkerID, t model.TaskID) {
			if n%3 == 0 {
				existing.Assign(w, t)
			}
			n++
		})
		if existing.Len() == 0 {
			t.Fatalf("seed %d: no committed workers to seed with", seed)
		}

		solveFrom := func(g *Greedy) *Result {
			res, err := g.SolveFrom(context.Background(), p, existing, &SolveOptions{Source: rng.New(seed)})
			if err != nil {
				t.Fatalf("SolveFrom: %v", err)
			}
			return res
		}
		want := solveFrom(&Greedy{Prune: true})
		wantKey := assignmentKey(want.Assignment)
		for _, g := range greedyVariants(true) {
			got := solveFrom(g)
			if key := assignmentKey(got.Assignment); key != wantKey {
				t.Errorf("seed %d: Greedy{Incremental:%v,Parallel:%v} diverged:\n got %s\nwant %s",
					seed, g.Incremental, g.Parallel, key, wantKey)
			}
		}
	}
}

// TestGreedyIncrementalSavesBounds pins the point of the fix: on a
// moderately sized instance the incremental cache must cut the number of
// bound computations by at least 3× relative to the per-round full
// recomputation, without changing the assignment.
func TestGreedyIncrementalSavesBounds(t *testing.T) {
	in := randomInstance(rng.New(7), 30, 60)
	p := NewProblem(in)
	naive := mustSolve(t, &Greedy{Prune: true}, p, rng.New(1))
	inc := mustSolve(t, &Greedy{Prune: true, Incremental: true}, p, rng.New(1))
	if assignmentKey(naive.Assignment) != assignmentKey(inc.Assignment) {
		t.Fatal("incremental assignment diverged from naive")
	}
	nb, ib := naive.Stats.BoundsComputed, inc.Stats.BoundsComputed
	if nb == 0 || ib == 0 {
		t.Fatalf("no bound computations recorded: naive=%d incremental=%d", nb, ib)
	}
	if nb < 3*ib {
		t.Errorf("incremental cache saved too little: naive computed %d bounds, incremental %d (want ≥3×)", nb, ib)
	}
	if inc.Stats.BoundsReused == 0 {
		t.Error("incremental path never hit its bound cache")
	}
	t.Logf("bounds computed: naive=%d incremental=%d (%.1fx), reused=%d",
		nb, ib, float64(nb)/float64(ib), inc.Stats.BoundsReused)
}

// TestGreedyParallelShards exercises the GOMAXPROCS-sharded exact-Δ
// evaluation on an instance large enough for many concurrent shards; run
// under -race it doubles as the data-race check for the read-only state
// sharing.
func TestGreedyParallelShards(t *testing.T) {
	in := randomInstance(rng.New(11), 20, 80)
	p := NewProblem(in)
	seq := mustSolve(t, &Greedy{Prune: true, Incremental: true}, p, rng.New(1))
	par := mustSolve(t, &Greedy{Prune: true, Incremental: true, Parallel: true}, p, rng.New(1))
	if assignmentKey(seq.Assignment) != assignmentKey(par.Assignment) {
		t.Fatal("parallel exact-Δ evaluation changed the assignment")
	}
	if seq.Stats.PairsEvaluated != par.Stats.PairsEvaluated {
		t.Errorf("pairs evaluated diverged: seq=%d par=%d",
			seq.Stats.PairsEvaluated, par.Stats.PairsEvaluated)
	}
}

// TestGreedyRegistryVariants checks that the three greedy registry entries
// resolve to the intended knob settings.
func TestGreedyRegistryVariants(t *testing.T) {
	cases := []struct {
		name                 string
		incremental, paralll bool
	}{
		{"greedy", true, false},
		{"greedy-naive", false, false},
		{"greedy-parallel", true, true},
	}
	for _, c := range cases {
		s, err := NewByName(c.name)
		if err != nil {
			t.Fatalf("NewByName(%q): %v", c.name, err)
		}
		g, ok := s.(*Greedy)
		if !ok {
			t.Fatalf("NewByName(%q) = %T, want *Greedy", c.name, s)
		}
		if !g.Prune || g.Incremental != c.incremental || g.Parallel != c.paralll {
			t.Errorf("NewByName(%q) = %+v, want Prune=true Incremental=%v Parallel=%v",
				c.name, g, c.incremental, c.paralll)
		}
	}
}

// TestMinTwoTracker checks the lazy-heap min/second-min maintenance against
// the full-scan reference under randomized monotone updates.
func TestMinTwoTracker(t *testing.T) {
	src := rng.New(3)
	in := randomInstance(src, 12, 12)
	p := NewProblem(in)
	states := make(map[model.TaskID]*objective.TaskState, len(p.In.Tasks))
	for i := range p.In.Tasks {
		tk := p.In.Tasks[i]
		states[tk.ID] = objective.NewTaskState(tk, 0.5)
	}
	tracker := newMinTwoTracker(states)
	for step := 0; step < 200; step++ {
		wantMin, wantSecond := minTwoR(states)
		gotMin, gotSecond := tracker.minTwo()
		if gotMin != wantMin || gotSecond != wantSecond {
			t.Fatalf("step %d: tracker (%v, %v) != scan (%v, %v)",
				step, gotMin, gotSecond, wantMin, wantSecond)
		}
		// Grow a random task's R, as one greedy round would.
		tid := p.In.Tasks[src.Intn(len(p.In.Tasks))].ID
		st := states[tid]
		st.Add(model.WorkerID(1000+step), 0.5+0.4*src.Float64(), 0.1, src.Angle())
		tracker.update(tid, st.R())
	}
}
