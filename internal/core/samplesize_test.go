package core

import (
	"math"
	"testing"
)

func TestLogPopulation(t *testing.T) {
	tests := []struct {
		name string
		degs []int
		want float64
	}{
		{"empty", nil, 0},
		{"all ones", []int{1, 1, 1}, 0},
		{"zeros ignored", []int{0, 0}, 0},
		{"simple", []int{2, 4}, math.Log(8)},
		{"mixed", []int{1, 3, 0, 5}, math.Log(15)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := LogPopulation(tc.degs); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("LogPopulation = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSampleSizeSpecValidate(t *testing.T) {
	good := SampleSizeSpec{Epsilon: 0.1, Delta: 0.9}
	if !good.Validate() {
		t.Error("valid spec rejected")
	}
	for _, bad := range []SampleSizeSpec{
		{Epsilon: 0, Delta: 0.9},
		{Epsilon: 1, Delta: 0.9},
		{Epsilon: 0.1, Delta: 0},
		{Epsilon: 0.1, Delta: 1},
	} {
		if bad.Validate() {
			t.Errorf("invalid spec accepted: %+v", bad)
		}
	}
}

func TestSampleSizeMonotoneInDelta(t *testing.T) {
	lnN := 200.0 // astronomically large population
	prev := 0
	for _, delta := range []float64{0.5, 0.7, 0.9, 0.99, 0.999} {
		k := SampleSize(lnN, SampleSizeSpec{Epsilon: 0.1, Delta: delta})
		if k < prev {
			t.Fatalf("K decreased from %d to %d as δ grew to %v", prev, k, delta)
		}
		prev = k
	}
}

func TestSampleSizeMonotoneInEpsilon(t *testing.T) {
	lnN := 200.0
	prev := math.MaxInt32
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.3, 0.5} {
		k := SampleSize(lnN, SampleSizeSpec{Epsilon: eps, Delta: 0.9})
		if k > prev {
			t.Fatalf("K increased from %d to %d as ε grew to %v", prev, k, eps)
		}
		prev = k
	}
}

func TestSampleSizeSatisfiesTarget(t *testing.T) {
	// The returned K must actually push Pr{X ≤ M} below 1−δ,
	// and K−1 must not (unless K hit a boundary).
	for _, lnN := range []float64{5, 15, 50, 500} {
		for _, spec := range []SampleSizeSpec{
			{Epsilon: 0.1, Delta: 0.9},
			{Epsilon: 0.2, Delta: 0.8},
			{Epsilon: 0.05, Delta: 0.95},
		} {
			k := SampleSize(lnN, spec)
			target := math.Log(1 - spec.Delta)
			if got := logProbRankAtMost(lnN, spec.Epsilon, k); got > target+1e-9 {
				t.Errorf("lnN=%v %+v: K=%d gives lnPr=%v > target %v", lnN, spec, k, got, target)
			}
		}
	}
}

func TestSampleSizeCaps(t *testing.T) {
	k := SampleSize(500, SampleSizeSpec{Epsilon: 0.001, Delta: 0.999999, MaxK: 10})
	if k > 10 {
		t.Errorf("K = %d exceeds MaxK", k)
	}
	if k < 1 {
		t.Errorf("K = %d below 1", k)
	}
}

func TestSampleSizeDegenerate(t *testing.T) {
	if k := SampleSize(0, SampleSizeSpec{Epsilon: 0.1, Delta: 0.9}); k != 1 {
		t.Errorf("empty population K = %d, want 1", k)
	}
	if k := SampleSize(100, SampleSizeSpec{}); k != 1 {
		t.Errorf("invalid spec K = %d, want 1", k)
	}
}

func TestLogProbRankAtMostDecreasesInK(t *testing.T) {
	lnN := 100.0
	prev := math.Inf(1)
	for k := 1; k <= 64; k++ {
		cur := logProbRankAtMost(lnN, 0.1, k)
		if cur > prev+1e-9 {
			t.Fatalf("lnPr increased at K=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestLogProbSmallPopulationExact(t *testing.T) {
	// N = 16, ε = 0.5 → M = 8, p = 1/16. Compare against a direct
	// evaluation of Eq. 18.
	lnN := math.Log(16)
	p := 1.0 / 16
	for k := 1; k <= 8; k++ {
		direct := math.Pow(1-p, 16) * math.Pow(p/(1-p), float64(k)) * binom(8, k)
		got := logProbRankAtMost(lnN, 0.5, k)
		if math.Abs(math.Exp(got)-direct) > 1e-9 {
			t.Errorf("K=%d: exp(lnPr) = %v, direct = %v", k, math.Exp(got), direct)
		}
	}
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

func TestSimpleSampleSize(t *testing.T) {
	// K ≥ ln(1−δ)/ln(1−ε): for ε=0.1, δ=0.9 that is ≈ 22.
	k := SimpleSampleSize(SampleSizeSpec{Epsilon: 0.1, Delta: 0.9})
	if k != 22 {
		t.Errorf("SimpleSampleSize = %d, want 22", k)
	}
	if k := SimpleSampleSize(SampleSizeSpec{Epsilon: 0.1, Delta: 0.9, MaxK: 5}); k != 5 {
		t.Errorf("capped SimpleSampleSize = %d, want 5", k)
	}
	if k := SimpleSampleSize(SampleSizeSpec{}); k != 1 {
		t.Errorf("invalid spec SimpleSampleSize = %d, want 1", k)
	}
}
