package core

import (
	"context"
	"errors"
	"testing"

	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/rng"
)

func TestBGPartitionBalancedAndComplete(t *testing.T) {
	in := randomInstance(rng.New(20), 40, 80)
	p := NewProblem(in)
	p1, p2, ok := bgPartition(p, rng.New(1))
	if !ok {
		t.Fatal("partition failed on a healthy instance")
	}
	// Task split is balanced and a partition.
	if d := len(p1.In.Tasks) - len(p2.In.Tasks); d < -1 || d > 1 {
		t.Errorf("unbalanced task split: %d vs %d", len(p1.In.Tasks), len(p2.In.Tasks))
	}
	seen := make(map[model.TaskID]int)
	for _, tk := range p1.In.Tasks {
		seen[tk.ID]++
	}
	for _, tk := range p2.In.Tasks {
		seen[tk.ID]++
	}
	if len(seen) != len(in.Tasks) {
		t.Errorf("tasks lost in partition: %d of %d", len(seen), len(in.Tasks))
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("task %d appears %d times", id, c)
		}
	}
	// Every connected worker appears on at least one side, and every pair
	// of a side references a task of that side.
	w1 := make(map[model.WorkerID]bool)
	for _, w := range p1.In.Workers {
		w1[w.ID] = true
	}
	w2 := make(map[model.WorkerID]bool)
	for _, w := range p2.In.Workers {
		w2[w.ID] = true
	}
	for _, wid := range p.ConnectedWorkers() {
		if !w1[wid] && !w2[wid] {
			t.Errorf("connected worker %d lost in partition", wid)
		}
	}
	for _, pr := range p1.Pairs {
		if p1.Task(pr.Task) == nil {
			t.Errorf("side-1 pair references foreign task %d", pr.Task)
		}
	}
	for _, pr := range p2.Pairs {
		if p2.Task(pr.Task) == nil {
			t.Errorf("side-2 pair references foreign task %d", pr.Task)
		}
	}
	// Pair conservation: every parent pair lands on exactly one side.
	if len(p1.Pairs)+len(p2.Pairs) != len(p.Pairs) {
		t.Errorf("pairs not conserved: %d + %d != %d", len(p1.Pairs), len(p2.Pairs), len(p.Pairs))
	}
}

func TestBGPartitionDegenerate(t *testing.T) {
	// All tasks at the same location still split evenly (balanced bisect is
	// size-driven), so partition succeeds; single-task instances cannot
	// split.
	in := &model.Instance{Beta: 0.5}
	in.Tasks = []model.Task{{ID: 0, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 1}}
	in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(0.4, 0.5), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9}}
	p := NewProblem(in)
	if _, _, ok := bgPartition(p, rng.New(1)); ok {
		t.Error("single-task instance must not partition")
	}
}

// mergeFixture builds a parent problem with two explicit sub-answers
// containing one conflicting worker (w2) and two isolated ones.
func mergeFixture(t *testing.T) (*Problem, *model.Assignment, *model.Assignment) {
	t.Helper()
	in := &model.Instance{Beta: 0.5}
	in.Tasks = []model.Task{
		{ID: 0, Loc: geo.Pt(0.2, 0.5), Start: 0, End: 2},
		{ID: 1, Loc: geo.Pt(0.8, 0.5), Start: 0, End: 2},
	}
	in.Workers = []model.Worker{
		{ID: 0, Loc: geo.Pt(0.25, 0.5), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9},
		{ID: 1, Loc: geo.Pt(0.75, 0.5), Speed: 1, Dir: geo.FullCircle, Confidence: 0.8},
		{ID: 2, Loc: geo.Pt(0.5, 0.5), Speed: 1, Dir: geo.FullCircle, Confidence: 0.7}, // conflicting
	}
	p := NewProblem(in)
	a1 := model.NewAssignment()
	a1.Assign(0, 0)
	a1.Assign(2, 0) // copy 1 of w2
	a2 := model.NewAssignment()
	a2.Assign(1, 1)
	a2.Assign(2, 1) // copy 2 of w2
	return p, a1, a2
}

func TestSAMergeResolvesConflict(t *testing.T) {
	p, a1, a2 := mergeFixture(t)
	merged, stats := saMerge(p, a1, a2, 12, nil)
	// Non-conflicting assignments preserved (Lemma 6.1).
	if merged.TaskOf(0) != 0 || merged.TaskOf(1) != 1 {
		t.Errorf("non-conflicting assignments changed: w0->%d w1->%d",
			merged.TaskOf(0), merged.TaskOf(1))
	}
	// Conflicting worker keeps exactly one of its two copies.
	if got := merged.TaskOf(2); got != 0 && got != 1 {
		t.Errorf("conflicting worker assigned to %d, want 0 or 1", got)
	}
	if merged.Len() != 3 {
		t.Errorf("merged size %d, want 3", merged.Len())
	}
	if stats.MergeGroups != 1 || stats.MergeExhaustive != 1 {
		t.Errorf("stats = %+v, want one exhaustively resolved group", stats)
	}
}

func TestSAMergeNoConflicts(t *testing.T) {
	p, a1, a2 := mergeFixture(t)
	a1.Unassign(2)
	a2.Unassign(2)
	merged, stats := saMerge(p, a1, a2, 12, nil)
	if merged.Len() != 2 || stats.MergeGroups != 0 {
		t.Errorf("merge without conflicts: len=%d stats=%+v", merged.Len(), stats)
	}
}

func TestSAMergeGreedyFallbackForBigGroups(t *testing.T) {
	p, a1, a2 := mergeFixture(t)
	merged, stats := saMerge(p, a1, a2, 0, nil) // groupLimit 0 forces greedy path
	if got := merged.TaskOf(2); got != 0 && got != 1 {
		t.Errorf("greedy merge left worker 2 at %d", got)
	}
	if stats.MergeExhaustive != 0 {
		t.Errorf("expected greedy resolution, stats=%+v", stats)
	}
}

func TestSAMergePicksBetterSide(t *testing.T) {
	// Task 1 has no other worker in a2; task 0 already has w0 in a1.
	// Keeping w2 on task 1 lifts the minimum reliability (task 1 would
	// otherwise exist with... both tasks are covered either way), so the
	// merge must pick the side whose objective vector dominates. Verify the
	// choice agrees with direct evaluation of both options.
	p, a1, a2 := mergeFixture(t)
	merged, _ := saMerge(p, a1, a2, 12, nil)

	opt0 := model.NewAssignment() // w2 -> task 0
	opt0.Assign(0, 0)
	opt0.Assign(1, 1)
	opt0.Assign(2, 0)
	opt1 := model.NewAssignment() // w2 -> task 1
	opt1.Assign(0, 0)
	opt1.Assign(1, 1)
	opt1.Assign(2, 1)
	ev0 := p.Evaluate(opt0)
	ev1 := p.Evaluate(opt1)
	got := p.Evaluate(merged)
	if ev1.Dominates(ev0) && got.MinR != ev1.MinR {
		t.Errorf("merge picked dominated option: got %v, better is %v", got, ev1)
	}
	if ev0.Dominates(ev1) && got.MinR != ev0.MinR {
		t.Errorf("merge picked dominated option: got %v, better is %v", got, ev0)
	}
}

func TestDCMatchesBaseOnTinyInstances(t *testing.T) {
	// With γ larger than the task count, D&C must behave exactly like its
	// base solver.
	in := randomInstance(rng.New(21), 4, 10)
	p := NewProblem(in)
	base := &Sampling{FixedK: 50}
	dc := &DC{Gamma: 100, Base: base}
	r1 := mustSolve(t, dc, p, rng.New(9))
	r2 := mustSolve(t, base, p, rng.New(9))
	if r1.Eval.TotalESTD != r2.Eval.TotalESTD || r1.Eval.MinRel != r2.Eval.MinRel {
		t.Errorf("DC(γ=∞) diverged from base: %v vs %v", r1.Eval, r2.Eval)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 2)
	if uf.find(0) != uf.find(3) {
		t.Error("0 and 3 should be connected")
	}
	if uf.find(4) == uf.find(0) || uf.find(4) == uf.find(5) {
		t.Error("4 should be isolated")
	}
	uf.union(4, 4) // self-union is a no-op
	if uf.find(4) != uf.find(4) {
		t.Error("self-union broke the structure")
	}
}

// TestDCInterruptMergesCompletedSubtrees pins the symmetric interrupt
// behavior: cancelling mid-recursion (here after the first solved leaf,
// which interrupts while a *left* subtree path is still being combined)
// must still merge the completed sub-answers into the returned partial
// result instead of dropping everything solved so far.
func TestDCInterruptMergesCompletedSubtrees(t *testing.T) {
	in := randomInstance(rng.New(5), 40, 80)
	p := NewProblem(in)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	leaves := 0
	opts := &SolveOptions{
		Source: rng.New(1),
		Progress: func(st Stage) {
			leaves++
			if leaves == 1 {
				cancel() // interrupt right after the first completed leaf
			}
		},
	}
	res, err := NewDC().Solve(ctx, p, opts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res == nil {
		t.Fatal("interrupted D&C returned nil result")
	}
	if res.Assignment.Len() == 0 {
		t.Error("interrupted D&C dropped the completed subtree's assignments")
	}
}
