package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SolverFactory builds a fresh solver instance with its default
// configuration.
type SolverFactory func() Solver

// registry maps solver names to factories. Lookup keys are normalized
// (lowercased, punctuation stripped), so "D&C", "d-c" and "dc" all resolve
// to the same entry; Names reports the canonical spellings given at
// registration.
var registry = struct {
	sync.RWMutex
	byKey map[string]SolverFactory
	names []string // canonical names, as registered
}{byKey: make(map[string]SolverFactory)}

// normalizeName folds a solver name to its lookup key: lowercase
// alphanumerics only ("D&C" -> "dc", "G-TRUTH" -> "gtruth").
func normalizeName(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Register adds a solver factory under name plus any aliases. It panics on
// an empty or already-taken name (after normalization) and on a nil
// factory: registration conflicts are programming errors, caught at init.
func Register(name string, factory SolverFactory, aliases ...string) {
	if factory == nil {
		panic(fmt.Sprintf("core: Register(%q) with nil factory", name))
	}
	registry.Lock()
	defer registry.Unlock()
	for _, n := range append([]string{name}, aliases...) {
		key := normalizeName(n)
		if key == "" {
			panic(fmt.Sprintf("core: Register(%q): empty solver name", n))
		}
		if _, dup := registry.byKey[key]; dup {
			panic(fmt.Sprintf("core: solver %q already registered", n))
		}
		registry.byKey[key] = factory
	}
	registry.names = append(registry.names, name)
}

// NewByName builds a fresh solver by its registered name (or alias). Names
// are matched case- and punctuation-insensitively. Unknown names return an
// error listing the registered solvers.
func NewByName(name string) (Solver, error) {
	registry.RLock()
	factory, ok := registry.byKey[normalizeName(name)]
	known := append([]string(nil), registry.names...)
	registry.RUnlock()
	if !ok {
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown solver %q (registered: %s)",
			name, strings.Join(known, ", "))
	}
	return factory(), nil
}

// Names returns the canonical registered solver names, sorted.
func Names() []string {
	registry.RLock()
	names := append([]string(nil), registry.names...)
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// The built-in solvers of the paper. "d&c" and "g-truth" resolve to "dc"
// and "gtruth" through name normalization alone; the explicit aliases cover
// longer spellings. The greedy candidate-maintenance variants are
// registered alongside the default so drivers and CLIs can select them by
// name: "greedy-naive" is the per-round full-recomputation baseline and
// "greedy-parallel" adds sharded exact-Δ evaluation on top of the
// incremental cache — all three produce identical assignments.
func init() {
	Register("greedy", func() Solver { return NewGreedy() })
	Register("greedy-naive", func() Solver { return &Greedy{Prune: true} })
	Register("greedy-parallel", func() Solver {
		return &Greedy{Prune: true, Incremental: true, Parallel: true}
	})
	Register("sampling", func() Solver { return NewSampling() })
	Register("dc", func() Solver { return NewDC() }, "divide-and-conquer")
	Register("gtruth", func() Solver { return GTruth() })
	Register("exhaustive", func() Solver { return NewExhaustive() }, "exact")
}
