package core

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"

	"rdbsc/internal/decompose"
	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

// Sharded decomposes the problem into the connected components of its
// task-worker reachability graph and solves each component independently
// with the wrapped solver under a GOMAXPROCS-bounded pool, merging the
// per-component results into one. The RDB-SC objective aggregates per-task
// reliability with a min and per-task diversity with a sum, and no valid
// pair crosses components, so the decomposition is exact: any assignment
// splits losslessly into per-component assignments and the merged
// evaluation is the min/sum combination of the per-component evaluations.
//
// Determinism: per-component random sources are derived from the caller's
// source in component order before any solve starts, and results are merged
// in component order, so the outcome is independent of goroutine scheduling
// — a sequential run (Workers: 1) is bit-identical to a fully parallel one.
// A problem that is already a single component is passed through to the
// inner solver verbatim (same problem, same random source), making
// "sharded-X" bit-identical to "X" there.
//
// On multi-component problems the inner heuristics see each component in
// isolation, which can shift their tie-breaking relative to a monolithic
// run (a monolithic greedy, for example, ranks candidates against the
// global minimum reliability; randomized solvers consume their stream
// per-component): the merged objective is exact for the assignment the
// sharded run produces, and the sharded-vs-monolithic differential suite
// pins exactly which equalities hold.
//
// Cancellation: every component solve runs under its own context derived
// from the caller's; cancelling the caller's context interrupts all of
// them, and the components that already finished (or produced best-so-far
// partials) are still merged, so the returned partial result combines
// everything completed before the interruption. A terminal error from any
// component (e.g. an exhaustive population over its cap) cancels the
// remaining components and is returned with the merged partial result.
type Sharded struct {
	// Inner solves the component subproblems.
	Inner Solver
	// Workers caps the number of concurrently solved components
	// (default GOMAXPROCS).
	Workers int
}

// NewSharded wraps inner in component decomposition.
func NewSharded(inner Solver) *Sharded { return &Sharded{Inner: inner} }

// Name implements Solver.
func (s *Sharded) Name() string { return "SHARDED(" + s.Inner.Name() + ")" }

func (s *Sharded) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Solve implements Solver.
func (s *Sharded) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error) {
	part := decompose.BuildSized(p.Pairs, len(p.In.Tasks), len(p.In.Workers))
	if part.Len() <= 1 {
		// Zero or one component: the decomposition is the identity, so the
		// inner solver runs on the original problem with the original
		// options — bit-identical to the unwrapped solve.
		res, err := s.Inner.Solve(ctx, p, opts)
		if res != nil {
			res.Stats.Components = part.Len()
			res.Stats.MaxComponentPairs = part.MaxPairs()
		}
		return res, err
	}
	src := opts.source()
	seeds := make([]int64, part.Len())
	for i := range seeds {
		seeds[i] = src.Int63()
	}
	sel := make([]bool, part.Len())
	css := make([]map[model.TaskID]*objective.TaskState, part.Len())
	for i := range sel {
		sel[i] = true
		css[i] = ComponentSeedStates(opts.seedStates(), &part.Components[i])
	}
	var progress func(Stage)
	if opts != nil {
		progress = opts.Progress
	}
	results, errs := SolveComponents(ctx, s.Inner, p, part.Components, sel,
		seeds, css, s.workers(), progress)
	res := MergeComponentResults(p, results)
	res.Stats.Components = part.Len()
	res.Stats.MaxComponentPairs = part.MaxPairs()
	return res, CombineComponentErrors(errs)
}

// ComponentProblem extracts the subproblem induced by one component of p:
// its tasks and workers in ID order and its pairs in the original pair
// order. The instance-wide β and reachability options carry over.
func ComponentProblem(p *Problem, c *decompose.Component) *Problem {
	in := &model.Instance{Beta: p.In.Beta, Opt: p.In.Opt}
	in.Tasks = make([]model.Task, 0, len(c.Tasks))
	for _, tid := range c.Tasks {
		in.Tasks = append(in.Tasks, *p.Task(tid))
	}
	in.Workers = make([]model.Worker, 0, len(c.Workers))
	for _, wid := range c.Workers {
		in.Workers = append(in.Workers, *p.Worker(wid))
	}
	pairs := make([]model.Pair, len(c.Pairs))
	for i, pi := range c.Pairs {
		pairs[i] = p.Pairs[pi]
	}
	return NewProblemWithPairs(in, pairs)
}

// ComponentSeedStates restricts a seeded-state map to the entries that
// concern one component: entries for the component's own tasks, plus
// entries for tasks outside the component (pairless tasks that fell out of
// every component, or tasks whose committed worker no longer reaches them)
// that hold a commitment of one of the component's workers. The latter
// must travel with the component so its solve keeps those workers excluded
// from assignment — exactly as a monolithic solve, which sees every seeded
// task, would. The returned map is nil when nothing applies; states are
// shared, not cloned (solvers honoring seeds clone before mutating).
func ComponentSeedStates(seed map[model.TaskID]*objective.TaskState, c *decompose.Component) map[model.TaskID]*objective.TaskState {
	if len(seed) == 0 {
		return nil
	}
	inTask := make(map[model.TaskID]bool, len(c.Tasks))
	for _, tid := range c.Tasks {
		inTask[tid] = true
	}
	inWorker := make(map[model.WorkerID]bool, len(c.Workers))
	for _, wid := range c.Workers {
		inWorker[wid] = true
	}
	var out map[model.TaskID]*objective.TaskState
	add := func(tid model.TaskID, st *objective.TaskState) {
		if out == nil {
			out = make(map[model.TaskID]*objective.TaskState)
		}
		out[tid] = st
	}
	for tid, st := range seed {
		if st == nil {
			continue
		}
		if inTask[tid] {
			add(tid, st)
			continue
		}
		for _, wid := range st.Workers() {
			if inWorker[wid] {
				add(tid, st)
				break
			}
		}
	}
	return out
}

// componentProblemSeeded is ComponentProblem extended with the tasks of
// foreign seed entries: a seeded task outside the component carries no
// pairs, but it must be present in the subproblem instance so that solvers
// honoring seeds see its state — and keep its committed workers excluded.
func componentProblemSeeded(p *Problem, c *decompose.Component, css map[model.TaskID]*objective.TaskState) *Problem {
	var extra []model.TaskID
	if len(css) > 0 {
		inTask := make(map[model.TaskID]bool, len(c.Tasks))
		for _, tid := range c.Tasks {
			inTask[tid] = true
		}
		for tid := range css {
			if !inTask[tid] && p.Task(tid) != nil {
				extra = append(extra, tid)
			}
		}
	}
	if len(extra) == 0 {
		return ComponentProblem(p, c)
	}
	ids := append(append(make([]model.TaskID, 0, len(c.Tasks)+len(extra)), c.Tasks...), extra...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	in := &model.Instance{Beta: p.In.Beta, Opt: p.In.Opt}
	in.Tasks = make([]model.Task, 0, len(ids))
	for _, tid := range ids {
		in.Tasks = append(in.Tasks, *p.Task(tid))
	}
	in.Workers = make([]model.Worker, 0, len(c.Workers))
	for _, wid := range c.Workers {
		in.Workers = append(in.Workers, *p.Worker(wid))
	}
	pairs := make([]model.Pair, len(c.Pairs))
	for i, pi := range c.Pairs {
		pairs[i] = p.Pairs[pi]
	}
	return NewProblemWithPairs(in, pairs)
}

// SolveComponents runs inner over the selected components of p under a
// bounded worker pool. comps is the full component list; sel[i] selects the
// components to solve (unselected slots yield nil results, letting callers
// splice in cached results); seeds[i] seeds component i's random source;
// css[i] carries component i's pre-filtered seeded states (from
// ComponentSeedStates — callers typically need the filtered maps anyway,
// for fingerprinting, so they are computed once and threaded through; a
// nil css means no seeds at all). Each component solve runs under its own
// context derived from ctx; the first terminal error cancels the remaining
// components. progress, when non-nil, receives the inner solvers' stages
// serialized through a mutex (the Progress contract forbids concurrent
// invocation).
//
// results[i] and errs[i] are the component solves' outputs, positionally;
// the outcome is deterministic for fixed inputs regardless of pool size.
func SolveComponents(ctx context.Context, inner Solver, p *Problem, comps []decompose.Component, sel []bool, seeds []int64, css []map[model.TaskID]*objective.TaskState, workers int, progress func(Stage)) ([]*Result, []error) {
	n := len(comps)
	results := make([]*Result, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var progressMu sync.Mutex
	emit := func(st Stage) {
		progressMu.Lock()
		progress(st)
		progressMu.Unlock()
	}

	cancels := make([]context.CancelFunc, n)
	ctxs := make([]context.Context, n)
	for i := range comps {
		ctxs[i], cancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	var terminal sync.Once
	cancelAll := func() {
		for _, cancel := range cancels {
			cancel()
		}
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range comps {
		if !sel[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var compSeeds map[model.TaskID]*objective.TaskState
			if css != nil {
				compSeeds = css[i]
			}
			copts := &SolveOptions{
				Source:     rng.New(seeds[i]),
				SeedStates: compSeeds,
			}
			if progress != nil {
				copts.Progress = emit
			}
			res, err := inner.Solve(ctxs[i], componentProblemSeeded(p, &comps[i], compSeeds), copts)
			results[i] = res
			errs[i] = err
			if err != nil && !errors.Is(err, ErrInterrupted) {
				// Terminal: no point finishing the other components.
				terminal.Do(cancelAll)
			}
		}(i)
	}
	wg.Wait()
	return results, errs
}

// MergeComponentResults combines per-component results into one result for
// the full problem: assignments union (components are worker-disjoint),
// stats accumulate in component order, and the merged assignment is
// re-evaluated against p — identical to what a monolithic solver returning
// the same assignment would report. Nil results (skipped or refused
// components) contribute nothing.
func MergeComponentResults(p *Problem, results []*Result) *Result {
	merged := model.NewAssignment()
	var stats Stats
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Assignment != nil {
			r.Assignment.Workers(func(w model.WorkerID, t model.TaskID) {
				merged.Assign(w, t)
			})
		}
		stats = stats.Add(r.Stats)
	}
	return finishResult(p, merged, stats)
}

// CombineComponentErrors reduces per-component errors to the solve's error:
// the first terminal error in component order wins; otherwise the first
// interruption is propagated (the merged result still carries every
// completed component); nil when every component completed cleanly.
func CombineComponentErrors(errs []error) error {
	var interruptedErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrInterrupted) {
			if interruptedErr == nil {
				interruptedErr = err
			}
			continue
		}
		return err
	}
	return interruptedErr
}

// The sharded composites of the built-in solvers: "sharded-<inner>" wraps
// the registered inner solver in component decomposition. The inner solver
// is resolved lazily at construction time, so the composite factories do
// not depend on init order.
func init() {
	for _, inner := range []string{
		"greedy", "greedy-naive", "greedy-parallel",
		"sampling", "dc", "gtruth", "exhaustive",
	} {
		inner := inner
		Register("sharded-"+inner, func() Solver {
			s, err := NewByName(inner)
			if err != nil {
				panic("core: sharded composite: " + err.Error())
			}
			return NewSharded(s)
		})
	}
}
