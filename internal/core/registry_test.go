package core

import (
	"context"
	"strings"
	"testing"

	"rdbsc/internal/rng"
)

func TestRegistryBuiltinsResolve(t *testing.T) {
	cases := map[string]string{
		"greedy":             "GREEDY",
		"GREEDY":             "GREEDY",
		"sampling":           "SAMPLING",
		"dc":                 "D&C",
		"D&C":                "D&C",
		"d-c":                "D&C",
		"divide-and-conquer": "D&C",
		"gtruth":             "G-TRUTH",
		"G-TRUTH":            "G-TRUTH",
		"exhaustive":         "EXHAUSTIVE",
		"exact":              "EXHAUSTIVE",
	}
	for name, want := range cases {
		s, err := NewByName(name)
		if err != nil {
			t.Errorf("NewByName(%q): %v", name, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("NewByName(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
}

func TestRegistryReturnsFreshInstances(t *testing.T) {
	a, _ := NewByName("greedy")
	b, _ := NewByName("greedy")
	if a == b {
		t.Error("registry handed out the same solver instance twice")
	}
	// Mutating one must not affect the other.
	a.(*Greedy).Prune = false
	if !b.(*Greedy).Prune {
		t.Error("solver instances share state")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := NewByName("simulated-annealing")
	if err == nil {
		t.Fatal("expected an error for an unknown solver")
	}
	msg := err.Error()
	for _, want := range []string{"simulated-annealing", "greedy", "dc"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("greedy", func() Solver { return NewGreedy() })
}

func TestRegistryAliasCollisionPanics(t *testing.T) {
	// "D.C." normalizes to "dc", which is taken.
	defer func() {
		if recover() == nil {
			t.Error("alias collision did not panic")
		}
	}()
	Register("test-solver-xyzzy", func() Solver { return NewDC() }, "D.C.")
}

func TestRegistryNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil factory did not panic")
		}
	}()
	Register("nil-factory", nil)
}

func TestRegistryCustomSolver(t *testing.T) {
	Register("custom-greedy-noprune", func() Solver { return &Greedy{Prune: false} })
	s, err := NewByName("Custom-Greedy-NoPrune")
	if err != nil {
		t.Fatal(err)
	}
	if s.(*Greedy).Prune {
		t.Error("custom factory configuration lost")
	}
	found := false
	for _, n := range Names() {
		if n == "custom-greedy-noprune" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v, missing the custom solver", Names())
	}
	// The custom solver is usable end to end.
	in := randomInstance(rng.New(1), 4, 8)
	p := NewProblem(in)
	if _, err := s.Solve(context.Background(), p, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"D&C": "dc", "g-truth": "gtruth", "  GREEDY  ": "greedy", "π": "",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
