package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"rdbsc/internal/decompose"
	"rdbsc/internal/gen"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

// baseSolverNames returns the built-in non-composite solver names: the
// inner solvers the sharded wrapper must match. The list is static rather
// than scraped from the registry so that solvers registered ad hoc by
// other tests (registration is global) cannot make the suite
// order-dependent; TestShardedRegistryComposites cross-checks it against
// the registry.
func baseSolverNames() []string {
	return []string{
		"greedy", "greedy-naive", "greedy-parallel",
		"sampling", "dc", "gtruth", "exhaustive",
	}
}

func mustNewByName(t *testing.T, name string) Solver {
	t.Helper()
	s, err := NewByName(name)
	if err != nil {
		t.Fatalf("NewByName(%q): %v", name, err)
	}
	return s
}

// islandsInstance draws the standard multi-island differential topology:
// small islands keep every solver fast and the exhaustive population under
// its cap. The returned problem is asserted to decompose into more than
// one component.
func islandsInstance(t *testing.T, seed int64, islands, m, n int) *Problem {
	t.Helper()
	in := gen.GenerateIslands(gen.Default().WithScale(m, n).WithSeed(seed), islands)
	p := NewProblem(in)
	part := decompose.Build(p.Pairs)
	if part.Len() <= 1 {
		t.Fatalf("islands instance (seed %d) did not decompose: %d component(s)", seed, part.Len())
	}
	return p
}

// TestShardedRegistryComposites checks that every base solver has its
// sharded composite registered and that composites resolve to a Sharded
// wrapper around the right inner solver.
func TestShardedRegistryComposites(t *testing.T) {
	registered := make(map[string]bool)
	for _, name := range Names() {
		registered[name] = true
	}
	for _, name := range baseSolverNames() {
		if !registered[name] {
			t.Fatalf("base solver %q not registered", name)
		}
		if !registered["sharded-"+name] {
			t.Fatalf("composite sharded-%s not registered", name)
		}
	}
	for _, name := range baseSolverNames() {
		s := mustNewByName(t, "sharded-"+name)
		sh, ok := s.(*Sharded)
		if !ok {
			t.Fatalf("sharded-%s resolved to %T, want *Sharded", name, s)
		}
		inner := mustNewByName(t, name)
		if sh.Inner.Name() != inner.Name() {
			t.Errorf("sharded-%s wraps %q, want %q", name, sh.Inner.Name(), inner.Name())
		}
		if want := "SHARDED(" + inner.Name() + ")"; s.Name() != want {
			t.Errorf("sharded-%s Name() = %q, want %q", name, s.Name(), want)
		}
	}
}

// TestShardedSingleComponentBitIdentical is the single-giant-component half
// of the differential suite: on a problem that is one connected component,
// the sharded wrapper passes the problem and options through verbatim, so
// for EVERY registered solver the assignment, the objective values, and the
// randomness consumption are bit-identical to the monolithic solve.
func TestShardedSingleComponentBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := randomInstance(rng.New(seed), 3, 8)
		p := NewProblem(in)
		if part := decompose.Build(p.Pairs); part.Len() != 1 {
			t.Fatalf("seed %d: want a single component, got %d", seed, part.Len())
		}
		for _, name := range baseSolverNames() {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				want := mustSolve(t, mustNewByName(t, name), p, rng.New(seed))
				got := mustSolve(t, NewSharded(mustNewByName(t, name)), p, rng.New(seed))
				if gk, wk := assignmentKey(got.Assignment), assignmentKey(want.Assignment); gk != wk {
					t.Errorf("assignment diverged:\n got %s\nwant %s", gk, wk)
				}
				if got.Eval != want.Eval {
					t.Errorf("objective diverged: got %+v want %+v", got.Eval, want.Eval)
				}
				if got.Stats.Components != 1 {
					t.Errorf("Stats.Components = %d, want 1", got.Stats.Components)
				}
			})
		}
	}
}

// TestShardedMultiIslandMatchesPerComponentMonolithic is the multi-island
// half of the differential suite: the sharded solve must be exactly the
// merge of monolithic solves of the extracted component subproblems — same
// per-component seed derivation, same merge order — for every registered
// solver. This pins the whole wrapper pipeline (partitioning, subproblem
// extraction, seed derivation, concurrent execution, merging) against a
// sequential reference reconstruction.
func TestShardedMultiIslandMatchesPerComponentMonolithic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := islandsInstance(t, seed, 4, 2, 4)
		part := decompose.Build(p.Pairs)
		for _, name := range baseSolverNames() {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				got := mustSolve(t, NewSharded(mustNewByName(t, name)), p, rng.New(seed))

				// Reference: solve each component monolithically with the
				// same derived seeds, merge by hand.
				src := rng.New(seed)
				merged := model.NewAssignment()
				for i := range part.Components {
					compSeed := src.Int63()
					sub := ComponentProblem(p, &part.Components[i])
					res, err := mustNewByName(t, name).Solve(context.Background(), sub,
						&SolveOptions{Source: rng.New(compSeed)})
					if err != nil {
						t.Fatalf("component %d: %v", i, err)
					}
					res.Assignment.Workers(func(w model.WorkerID, tid model.TaskID) {
						merged.Assign(w, tid)
					})
				}
				want := p.Evaluate(merged)
				if gk, wk := assignmentKey(got.Assignment), assignmentKey(merged); gk != wk {
					t.Errorf("assignment diverged:\n got %s\nwant %s", gk, wk)
				}
				if got.Eval != want {
					t.Errorf("objective diverged: got %+v want %+v", got.Eval, want)
				}
				if got.Stats.Components != part.Len() {
					t.Errorf("Stats.Components = %d, want %d", got.Stats.Components, part.Len())
				}
				if got.Stats.MaxComponentPairs != part.MaxPairs() {
					t.Errorf("Stats.MaxComponentPairs = %d, want %d", got.Stats.MaxComponentPairs, part.MaxPairs())
				}
			})
		}
	}
}

// TestShardedParallelMatchesSequential pins scheduling independence: a
// fully parallel sharded run must be bit-identical to the sequential
// (Workers: 1) run for every solver, on the multi-island topology. Run
// under -race in CI, this also exercises the pool for data races.
func TestShardedParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		p := islandsInstance(t, seed, 6, 4, 8)
		for _, name := range baseSolverNames() {
			if name == "exhaustive" {
				continue // population too large at this island size
			}
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				seq := mustSolve(t, &Sharded{Inner: mustNewByName(t, name), Workers: 1}, p, rng.New(seed))
				par := mustSolve(t, &Sharded{Inner: mustNewByName(t, name), Workers: 8}, p, rng.New(seed))
				if sk, pk := assignmentKey(seq.Assignment), assignmentKey(par.Assignment); sk != pk {
					t.Errorf("assignment diverged:\n seq %s\n par %s", sk, pk)
				}
				if seq.Eval != par.Eval {
					t.Errorf("objective diverged: seq %+v par %+v", seq.Eval, par.Eval)
				}
			})
		}
	}
}

// TestShardedSeededStates runs the differential with committed seed states:
// a third of the workers are committed via a preliminary solve, the rest
// are re-solved sharded vs per-component monolithic. Greedy honors the
// seeds (committed workers excluded, Δ-objectives shaped); the others
// ignore them — in both cases the sharded run must match the reference.
func TestShardedSeededStates(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		p := islandsInstance(t, seed, 4, 3, 6)
		part := decompose.Build(p.Pairs)

		full := mustSolve(t, NewGreedy(), p, rng.New(seed))
		committed := model.NewAssignment()
		i := 0
		full.Assignment.Workers(func(w model.WorkerID, tid model.TaskID) {
			if i%3 == 0 {
				committed.Assign(w, tid)
			}
			i++
		})
		if committed.Len() == 0 {
			t.Fatalf("seed %d: nothing committed", seed)
		}
		seedStates := p.NewStates(committed)

		for _, name := range []string{"greedy", "greedy-naive", "greedy-parallel", "sampling", "dc"} {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				sharded := NewSharded(mustNewByName(t, name))
				got, err := sharded.Solve(context.Background(), p,
					&SolveOptions{Source: rng.New(seed), SeedStates: seedStates})
				if err != nil {
					t.Fatalf("sharded: %v", err)
				}
				src := rng.New(seed)
				merged := model.NewAssignment()
				for ci := range part.Components {
					compSeed := src.Int63()
					sub := ComponentProblem(p, &part.Components[ci])
					res, err := mustNewByName(t, name).Solve(context.Background(), sub,
						&SolveOptions{
							Source:     rng.New(compSeed),
							SeedStates: ComponentSeedStates(seedStates, &part.Components[ci]),
						})
					if err != nil {
						t.Fatalf("component %d: %v", ci, err)
					}
					res.Assignment.Workers(func(w model.WorkerID, tid model.TaskID) {
						merged.Assign(w, tid)
					})
				}
				if gk, wk := assignmentKey(got.Assignment), assignmentKey(merged); gk != wk {
					t.Errorf("assignment diverged:\n got %s\nwant %s", gk, wk)
				}
				if want := p.Evaluate(merged); got.Eval != want {
					t.Errorf("objective diverged: got %+v want %+v", got.Eval, want)
				}
			})
		}
	}
}

// TestShardedCancelledBeforeSolve: a context cancelled before the solve
// starts yields an empty (but evaluated, non-nil) result and
// ErrInterrupted from every solver, sharded or not.
func TestShardedCancelledBeforeSolve(t *testing.T) {
	p := islandsInstance(t, 1, 4, 2, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range baseSolverNames() {
		t.Run(name, func(t *testing.T) {
			res, err := NewSharded(mustNewByName(t, name)).Solve(ctx, p, &SolveOptions{Source: rng.New(1)})
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("err = %v, want ErrInterrupted", err)
			}
			if res == nil {
				t.Fatal("nil result on interruption")
			}
			if got, want := res.Eval, p.Evaluate(res.Assignment); got != want {
				t.Errorf("partial eval inconsistent: got %+v want %+v", got, want)
			}
		})
	}
}

// TestShardedMidSolveCancellation cancels from inside a progress callback:
// the merged partial must be a valid assignment whose evaluation is
// consistent, returned together with ErrInterrupted, and the components
// completed before the cancellation survive into the merge.
func TestShardedMidSolveCancellation(t *testing.T) {
	p := islandsInstance(t, 2, 6, 4, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stages atomic.Int64
	sharded := &Sharded{Inner: NewGreedy(), Workers: 2}
	res, err := sharded.Solve(ctx, p, &SolveOptions{
		Source: rng.New(2),
		Progress: func(st Stage) {
			if stages.Add(1) == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res == nil {
		t.Fatal("nil result on interruption")
	}
	if err := p.In.CheckAssignment(res.Assignment); err != nil {
		t.Fatalf("partial assignment invalid: %v", err)
	}
	if got, want := res.Eval, p.Evaluate(res.Assignment); got != want {
		t.Errorf("partial eval inconsistent: got %+v want %+v", got, want)
	}
}

// TestShardedTerminalErrorPropagates: a component whose population exceeds
// the exhaustive cap is a terminal error; the sharded solve must surface it
// (not swallow it into a partial merge with nil error).
func TestShardedTerminalErrorPropagates(t *testing.T) {
	p := islandsInstance(t, 1, 4, 3, 6)
	sharded := NewSharded(&Exhaustive{MaxAssignments: 1})
	_, err := sharded.Solve(context.Background(), p, &SolveOptions{Source: rng.New(1)})
	if !errors.Is(err, ErrPopulationTooLarge) {
		t.Fatalf("err = %v, want ErrPopulationTooLarge", err)
	}
}

// TestShardedForeignSeededCommitments: a committed worker whose seeded
// task fell out of every component (its window shrank to nothing) or whose
// seeded task lives in another component must stay excluded from
// assignment in the sharded solve, exactly as in a monolithic one — a
// travelling worker must never be double-booked just because its
// commitment's task lost its pairs.
func TestShardedForeignSeededCommitments(t *testing.T) {
	base := islandsInstance(t, 1, 4, 3, 6)
	part := decompose.Build(base.Pairs)

	// An orphan task nothing can reach: a sub-nanosecond window in an
	// empty corner of the data space.
	orphan := model.Task{ID: 9000, Loc: geo.Pt(0.9999, 0.9999), Start: 0, End: 1e-9}
	in := &model.Instance{
		Tasks:   append(append([]model.Task(nil), base.In.Tasks...), orphan),
		Workers: base.In.Workers,
		Beta:    base.In.Beta,
		Opt:     base.In.Opt,
	}
	p := NewProblem(in)
	if _, ok := decompose.Build(p.Pairs).ComponentOfTask(orphan.ID); ok {
		t.Fatal("orphan task unexpectedly reachable")
	}

	// Commit one worker from the first component to the orphan task, and a
	// worker from the second component to a task of the FIRST component
	// (simulating a stale commitment whose pair is no longer valid).
	wOrphan := part.Components[0].Workers[0]
	wForeign := part.Components[1].Workers[0]
	crossTask := *p.Task(part.Components[0].Tasks[0])

	stOrphan := objective.NewTaskState(orphan, in.Beta)
	stOrphan.Add(wOrphan, 0.9, orphan.Start, 0)
	stCross := objective.NewTaskState(crossTask, in.Beta)
	stCross.Add(wForeign, 0.9, crossTask.Start, 0)
	seeds := map[model.TaskID]*objective.TaskState{
		orphan.ID:    stOrphan,
		crossTask.ID: stCross,
	}

	for _, name := range []string{"greedy", "greedy-naive", "greedy-parallel"} {
		t.Run(name, func(t *testing.T) {
			res, err := NewSharded(mustNewByName(t, name)).Solve(context.Background(), p,
				&SolveOptions{Source: rng.New(1), SeedStates: seeds})
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if res.Assignment.Assigned(wOrphan) {
				t.Errorf("worker %d committed to the orphan task was re-assigned", wOrphan)
			}
			if res.Assignment.Assigned(wForeign) {
				t.Errorf("worker %d committed across components was re-assigned", wForeign)
			}
			mono, err := mustNewByName(t, name).Solve(context.Background(), p,
				&SolveOptions{Source: rng.New(1), SeedStates: seeds})
			if err != nil {
				t.Fatalf("monolithic: %v", err)
			}
			if mono.Assignment.Assigned(wOrphan) || mono.Assignment.Assigned(wForeign) {
				t.Fatalf("monolithic reference re-assigned a committed worker")
			}
			if err := in.CheckAssignment(res.Assignment); err != nil {
				t.Fatalf("invalid sharded assignment: %v", err)
			}
		})
	}
}
