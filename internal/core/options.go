package core

import (
	"context"
	"errors"
	"fmt"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

// ErrInterrupted is returned (wrapped) by every solver when its context is
// cancelled or its deadline expires. The accompanying *Result is never nil:
// it carries the best assignment found before the interruption (possibly
// empty), already evaluated, so callers can use partial answers from
// long-running solves. Use errors.Is(err, ErrInterrupted) to detect it; the
// context's cause (context.Canceled or context.DeadlineExceeded) is also in
// the wrap chain.
var ErrInterrupted = errors.New("solve interrupted")

// ErrInfeasible is returned by the facade layers (rdbsc.Solve, Engine.Solve)
// when the selected solver produces no feasible assignment — no worker can
// reach any task in time. The solver-level contract still returns an empty
// assignment without error, since emptiness is a valid answer for degenerate
// subproblems (D&C leaves, empty churn rounds).
var ErrInfeasible = errors.New("no feasible assignment")

// ErrPopulationTooLarge is returned by Exhaustive.Solve when the assignment
// population exceeds its cap; check Exhaustive.CanSolve first.
var ErrPopulationTooLarge = errors.New("exhaustive population exceeds cap")

// Stage is one progress report from a running solver, emitted through
// SolveOptions.Progress at iteration boundaries — one greedy round, one
// sampling draw, one D&C leaf or merge, one exhaustive enumeration chunk.
type Stage struct {
	// Solver is the reporting solver's Name().
	Solver string
	// Round is the 1-based iteration count: greedy rounds, samples drawn,
	// D&C leaves solved, exhaustive assignments enumerated.
	Round int
	// Total is the number of iterations known in advance (sampling's K,
	// exhaustive's population); 0 when the count is open-ended.
	Total int
	// Assigned is the number of workers assigned so far, where the solver
	// builds its answer incrementally (greedy, D&C merges).
	Assigned int
	// Stats is a snapshot of the cumulative diagnostics.
	Stats Stats
}

// SolveOptions configures one Solve call. The zero value (and a nil pointer)
// are valid: seed 1, no progress reporting, no seeded states.
type SolveOptions struct {
	// Seed seeds the solver's randomness. The zero value means "default"
	// and selects seed 1; to run the literal seed-0 stream, set Source to
	// rng.New(0) instead. Ignored when Source is set.
	Seed int64
	// Source supplies the solver's randomness directly, overriding Seed.
	// Use it to chain solves off one reproducible stream (src.Split()).
	Source *rng.Source
	// Progress, when non-nil, receives a Stage at every iteration boundary.
	// It is invoked synchronously from the solving goroutine and must be
	// fast; it is never invoked concurrently.
	Progress func(Stage)
	// SeedStates carries committed per-task contributions — workers already
	// travelling, answers already received — that must shape the
	// Δ-objective of every new pair (the incremental updating strategy of
	// Figure 10, line 6). Workers appearing in the seeded states are
	// excluded from assignment, and the returned assignment contains only
	// newly assigned workers. Honored by Greedy; the other solvers assign
	// from scratch and ignore it, as in the paper's experiments.
	SeedStates map[model.TaskID]*objective.TaskState
}

// source materializes the options' random source.
func (o *SolveOptions) source() *rng.Source {
	if o == nil {
		return rng.New(1)
	}
	if o.Source != nil {
		return o.Source
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return rng.New(seed)
}

// Rand materializes the options' random source — the same stream a solver
// receiving these options would draw from (Source verbatim when set, else a
// source seeded by Seed with the zero-means-1 default). Wrappers that stand
// in front of a solver (the sharded decomposition, the engine's
// per-component cache) use it to derive sub-streams deterministically.
func (o *SolveOptions) Rand() *rng.Source { return o.source() }

// emit forwards a progress stage when a callback is configured.
func (o *SolveOptions) emit(st Stage) {
	if o != nil && o.Progress != nil {
		o.Progress(st)
	}
}

// seedStates returns the configured seeded states (nil-safe).
func (o *SolveOptions) seedStates() map[model.TaskID]*objective.TaskState {
	if o == nil {
		return nil
	}
	return o.SeedStates
}

// SeededWorkerCount returns the number of committed workers carried by
// SeedStates (0 for nil options or empty seeds). Facade layers use it to
// tell a genuinely infeasible solve from one where every worker was already
// committed, so an empty *new* assignment is the correct answer.
func (o *SolveOptions) SeededWorkerCount() int {
	if o == nil {
		return 0
	}
	n := 0
	for _, st := range o.SeedStates {
		if st != nil {
			n += st.Len()
		}
	}
	return n
}

// interrupted builds the error a solver returns alongside its partial
// result when ctx is done.
func interrupted(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrInterrupted, context.Cause(ctx))
}

// IsTerminal reports whether a solve error should stop a driver loop:
// anything other than the benign ErrInfeasible (an empty round) and
// ErrInterrupted (context wind-down, already visible to the loop via its
// own ctx). The periodic-round drivers (stream, platform) use this to
// decide between skipping a round and aborting the run.
func IsTerminal(err error) bool {
	return err != nil && !errors.Is(err, ErrInfeasible) && !errors.Is(err, ErrInterrupted)
}

// SolveSeeded runs s with the v1 calling convention — a background context
// and an explicit random source — and panics on error, mirroring the v1
// Solve(p, src) signature which could not report one (only Exhaustive can
// fail under a background context, by exceeding its population cap).
//
// Deprecated: call s.Solve(ctx, p, &SolveOptions{Source: src}) instead; it
// adds cancellation, progress reporting, and error returns. This wrapper is
// kept for one release to ease migration (see MIGRATION.md).
func SolveSeeded(s Solver, p *Problem, src *rng.Source) *Result {
	res, err := s.Solve(context.Background(), p, &SolveOptions{Source: src})
	if err != nil {
		panic(fmt.Sprintf("core: %s: %v", s.Name(), err))
	}
	return res
}
