package core

import (
	"context"
	"testing"

	"rdbsc/internal/gen"
	"rdbsc/internal/rng"
)

func benchProblem(b *testing.B, m, n int) *Problem {
	b.Helper()
	in := randomInstance(rng.New(7), m, n)
	return NewProblem(in)
}

// benchGreedy runs one registered greedy variant and reports its
// bound-computation profile, the before/after of the incremental candidate
// maintenance.
func benchGreedy(b *testing.B, name string) {
	g, err := NewByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p := benchProblem(b, 40, 80)
	b.ReportAllocs()
	b.ResetTimer()
	var last *Result
	for i := 0; i < b.N; i++ {
		last, _ = g.Solve(context.Background(), p, nil)
	}
	b.ReportMetric(float64(last.Stats.BoundsComputed), "boundsComputed")
	b.ReportMetric(float64(last.Stats.BoundsReused), "boundsReused")
}

func BenchmarkGreedySolve(b *testing.B) { benchGreedy(b, "greedy") }

func BenchmarkGreedySolveNaive(b *testing.B) { benchGreedy(b, "greedy-naive") }

func BenchmarkGreedySolveParallel(b *testing.B) { benchGreedy(b, "greedy-parallel") }

func BenchmarkGreedySolveNoPrune(b *testing.B) {
	p := benchProblem(b, 40, 80)
	g := &Greedy{Prune: false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Solve(context.Background(), p, nil)
	}
}

func BenchmarkSamplingSolve(b *testing.B) {
	p := benchProblem(b, 40, 80)
	s := &Sampling{FixedK: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(context.Background(), p, &SolveOptions{Source: rng.New(int64(i))})
	}
}

func BenchmarkSamplingSolveParallel(b *testing.B) {
	p := benchProblem(b, 40, 80)
	s := &Sampling{FixedK: 64, Parallel: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(context.Background(), p, &SolveOptions{Source: rng.New(int64(i))})
	}
}

func BenchmarkDCSolve(b *testing.B) {
	p := benchProblem(b, 60, 120)
	dc := NewDC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Solve(context.Background(), p, &SolveOptions{Source: rng.New(int64(i))})
	}
}

func BenchmarkNewProblem(b *testing.B) {
	in := randomInstance(rng.New(7), 100, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewProblem(in)
	}
}

func BenchmarkSampleSize(b *testing.B) {
	spec := SampleSizeSpec{Epsilon: 0.1, Delta: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleSize(500, spec)
	}
}

// benchIslands prepares the multi-island decomposition workload: 8 islands
// of 10 tasks × 20 workers each.
func benchIslands(b *testing.B) *Problem {
	b.Helper()
	in := gen.GenerateIslands(gen.Default().WithScale(10, 20).WithSeed(7), 8)
	return NewProblem(in)
}

// BenchmarkGreedyMonolithicIslands / BenchmarkShardedGreedyIslands compare
// one joint greedy solve against the connected-component decomposition on
// the same multi-island instance (components solve concurrently).
func BenchmarkGreedyMonolithicIslands(b *testing.B) {
	p := benchIslands(b)
	g := NewGreedy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Solve(context.Background(), p, nil)
	}
}

func BenchmarkShardedGreedyIslands(b *testing.B) {
	p := benchIslands(b)
	s := NewSharded(NewGreedy())
	b.ReportAllocs()
	b.ResetTimer()
	var last *Result
	for i := 0; i < b.N; i++ {
		last, _ = s.Solve(context.Background(), p, nil)
	}
	b.ReportMetric(float64(last.Stats.Components), "components")
	b.ReportMetric(float64(last.Stats.MaxComponentPairs), "maxCompPairs")
}
