package core

import (
	"math"
)

// This file implements the sample-size determination of Section 5.2.
//
// The population is the set of all complete assignments, of size
// N = Π_j deg(w_j); each sample is accepted with probability
// p = Π_j 1/deg(w_j) = 1/N. The rank X of the best of K samples should
// fall in the top ε fraction of the population with probability > δ:
// Pr{X > (1−ε)·N} > δ, equivalently Pr{X ≤ M} ≤ 1−δ with M = (1−ε)·N.
//
// Eq. 18 of the paper gives Pr{X ≤ M} = (1−p)^N · (p/(1−p))^K · C(M,K).
// N is astronomically large for any real instance, so everything is
// evaluated in log space:
//
//	ln Pr = N·ln(1−p) + K·(ln p − ln(1−p)) + ln C(M,K)
//
// with N·ln(1−p) → −N·p = −1 as p = 1/N → 0, and
// ln C(M,K) ≈ K·ln M − lnΓ(K+1) for M ≫ K. The smallest K satisfying
// the bound is found by binary search above the paper's closed-form lower
// bound K > (p·M·e − 1 + p)/(1 − p + e·p) (Eq. 15).

// SampleSizeSpec carries the accuracy parameters of Section 5.2.
type SampleSizeSpec struct {
	Epsilon float64 // ε: the best sample should rank in the top ε·N
	Delta   float64 // δ: required confidence of that event
	MaxK    int     // hard cap on the sample budget (0 → 1<<20)
}

// Validate checks the spec.
func (s SampleSizeSpec) Validate() bool {
	return s.Epsilon > 0 && s.Epsilon < 1 && s.Delta > 0 && s.Delta < 1
}

// SampleSize returns K̂, the smallest sample count meeting the (ε,δ)
// guarantee for a population whose log-size is lnN = Σ_j ln deg(w_j).
// It returns at least 1 and at most spec.MaxK.
func SampleSize(lnN float64, spec SampleSizeSpec) int {
	maxK := spec.MaxK
	if maxK <= 0 {
		maxK = 1 << 20
	}
	if !spec.Validate() || lnN <= 0 {
		return 1
	}
	target := math.Log(1 - spec.Delta)

	// Closed-form lower bound (Eq. 15). With p = 1/N and M = (1−ε)N,
	// p·M = 1−ε, so the bound is ((1−ε)e − 1 + p) / (1 − p + e·p).
	p := math.Exp(-lnN) // may underflow to 0; handled below
	lower := ((1-spec.Epsilon)*math.E - 1 + p) / (1 - p + math.E*p)
	lo := int(math.Ceil(lower))
	if lo < 1 {
		lo = 1
	}
	hi := maxK

	// ln Pr{X ≤ M} decreases in K beyond the lower bound; find the first K
	// with ln Pr ≤ ln(1−δ).
	f := func(k int) float64 { return logProbRankAtMost(lnN, spec.Epsilon, k) }
	if f(hi) > target {
		return hi // cap reached; caller gets the best budget allowed
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if f(mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// logProbRankAtMost evaluates ln Pr{X ≤ M} of Eq. 18 in log space for
// population log-size lnN, M = (1−ε)·N and K samples.
func logProbRankAtMost(lnN, eps float64, k int) float64 {
	if k <= 0 {
		return 0 // Pr = 1: with no samples the "best rank" surely fails
	}
	lnM := math.Log(1-eps) + lnN
	kf := float64(k)

	// Term 1: N·ln(1−p) with p = 1/N. For small p this is −1 − p/2 − ...;
	// compute exactly when N is representable, else use the limit −1.
	var term1 float64
	if lnN < 25 { // N < ~7.2e10: exact arithmetic is safe
		n := math.Exp(lnN)
		p := 1 / n
		term1 = n * math.Log1p(-p)
	} else {
		term1 = -1
	}

	// Term 2: K·(ln p − ln(1−p)) = K·(−lnN − ln(1−1/N)) ≈ −K·lnN.
	term2 := -kf * lnN
	if lnN < 25 {
		p := math.Exp(-lnN)
		term2 = kf * (math.Log(p) - math.Log1p(-p))
	}

	// Term 3: ln C(M,K), evaluated continuously via lgamma (M = (1−ε)·N is
	// generally not an integer; the gamma extension is the natural reading
	// and avoids floating-point cliffs at integral M).
	var term3 float64
	if lnM < 30 { // M representable: use lgamma exactly
		m := math.Exp(lnM)
		if kf > m {
			return math.Inf(-1) // cannot choose K of M: Pr = 0
		}
		lg1, _ := math.Lgamma(m + 1)
		lg2, _ := math.Lgamma(kf + 1)
		lg3, _ := math.Lgamma(m - kf + 1)
		term3 = lg1 - lg2 - lg3
	} else {
		// M ≫ K: ln C(M,K) ≈ K·lnM − lnΓ(K+1).
		lg2, _ := math.Lgamma(kf + 1)
		term3 = kf*lnM - lg2
	}
	return term1 + term2 + term3
}

// SimpleSampleSize is the independent-uniform-rank alternative: the chance
// that the best of K independent samples ranks in the top ε fraction is
// 1 − (1−ε)^K ≥ δ, giving K ≥ ln(1−δ)/ln(1−ε). It is more conservative
// than the paper's Eq. 18 model and is exposed for comparison and as a
// practical floor.
func SimpleSampleSize(spec SampleSizeSpec) int {
	if !spec.Validate() {
		return 1
	}
	k := int(math.Ceil(math.Log(1-spec.Delta) / math.Log(1-spec.Epsilon)))
	if k < 1 {
		k = 1
	}
	if spec.MaxK > 0 && k > spec.MaxK {
		k = spec.MaxK
	}
	return k
}

// LogPopulation returns lnN = Σ ln deg for the workers' candidate degrees,
// ignoring zero-degree workers (they contribute no choice).
func LogPopulation(degrees []int) float64 {
	var lnN float64
	for _, d := range degrees {
		if d > 1 {
			lnN += math.Log(float64(d))
		}
	}
	return lnN
}
