package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
	"rdbsc/internal/scratch"
)

// Sampling implements the RDB-SC_Sampling algorithm of Figure 5: draw K
// random complete assignments (each worker independently picks one of its
// deg(w) reachable tasks uniformly), evaluate each on the two goals, rank
// the samples by top-k dominating score [22], and return the winner.
//
// K defaults to the (ε,δ)-derived sample size of Section 5.2 (Eq. 15/18),
// floored by MinSamples: the paper's model yields very small K̂ for typical
// ε/δ, and a modest floor buys substantial quality for negligible cost.
type Sampling struct {
	// Spec is the (ε,δ) accuracy target. The zero value falls back to
	// ε=0.1, δ=0.9.
	Spec SampleSizeSpec
	// FixedK overrides the derived sample size when positive.
	FixedK int
	// MinSamples floors the derived sample size (default 64).
	MinSamples int
	// Multiplier scales the final sample count (used by G-TRUTH's 10×
	// configuration). Values < 1 are treated as 1.
	Multiplier int
	// Parallel evaluates samples on all CPUs. Results are identical to the
	// sequential run for the same seed: each sample derives its own random
	// stream from a per-sample seed, so the draw order is independent of
	// goroutine scheduling. Progress reporting coarsens to one Stage per
	// batch (after all draws finish) so the callback is never invoked
	// concurrently; the sequential path reports per draw.
	Parallel bool
}

// NewSampling returns the default sampling solver (ε=0.1, δ=0.9, floor 64).
func NewSampling() *Sampling {
	return &Sampling{Spec: SampleSizeSpec{Epsilon: 0.1, Delta: 0.9}}
}

// Name implements Solver.
func (s *Sampling) Name() string { return "SAMPLING" }

// SampleCount returns the number of samples the solver will draw for the
// given problem.
func (s *Sampling) SampleCount(p *Problem) int {
	if s.FixedK > 0 {
		return s.scale(s.FixedK)
	}
	spec := s.Spec
	if !spec.Validate() {
		spec = SampleSizeSpec{Epsilon: 0.1, Delta: 0.9}
	}
	degrees := make([]int, 0, len(p.byWorker))
	for _, idxs := range p.byWorker {
		degrees = append(degrees, len(idxs))
	}
	// LogPopulation sums logs in slice order; sort so the floating-point
	// total (and with it the sample count) never varies with map order.
	sort.Ints(degrees)
	k := SampleSize(LogPopulation(degrees), spec)
	min := s.MinSamples
	if min <= 0 {
		min = 64
	}
	if k < min {
		k = min
	}
	return s.scale(k)
}

func (s *Sampling) scale(k int) int {
	if s.Multiplier > 1 {
		k *= s.Multiplier
	}
	return k
}

// Solve implements Solver. Cancellation is checked before every draw; on
// interruption the winner among the samples already evaluated is returned
// with ErrInterrupted (an empty assignment when no sample completed).
func (s *Sampling) Solve(ctx context.Context, p *Problem, opts *SolveOptions) (*Result, error) {
	workers := p.ConnectedWorkers()
	if len(workers) == 0 {
		return finishResult(p, model.NewAssignment(), Stats{}), nil
	}
	src := opts.source()
	k := s.SampleCount(p)

	// Per-sample seeds are drawn up front from the caller's source, making
	// the sample set identical whether evaluation is sequential or
	// parallel.
	seeds := make([]int64, k)
	for h := range seeds {
		seeds[h] = src.Int63()
	}

	choices := make([][]int32, k)
	evals := make([]objective.Evaluation, k)
	drawOne := func(bufs *scratch.Buffers, h int) {
		hs := rng.New(seeds[h])
		choice := make([]int32, len(workers))
		a := model.NewAssignment()
		for i, wid := range workers {
			cand := p.WorkerPairs(wid)
			pi := cand[hs.Intn(len(cand))]
			choice[i] = pi
			a.Assign(wid, p.Pairs[pi].Task)
		}
		choices[h] = choice
		evals[h] = p.EvaluateBuf(bufs, a)
	}

	// drawn counts the evaluated prefix: samples 0..drawn-1 are complete in
	// both the sequential and the parallel path, so a partial winner is
	// selected over exactly that prefix.
	drawn := 0
	var sAllocs, sReuses int
	if s.Parallel && k > 1 {
		var pAllocs, pReuses atomic.Int64
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for h := 0; h < k && ctx.Err() == nil; h++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(h int) {
				defer wg.Done()
				bufs := scratch.Get()
				drawOne(bufs, h)
				a, r := bufs.Counters()
				pAllocs.Add(int64(a))
				pReuses.Add(int64(r))
				scratch.Put(bufs)
				<-sem
			}(h)
			drawn++
		}
		wg.Wait()
		sAllocs, sReuses = int(pAllocs.Load()), int(pReuses.Load())
		if drawn > 0 {
			opts.emit(Stage{
				Solver: s.Name(),
				Round:  drawn,
				Total:  k,
				Stats:  Stats{Samples: drawn},
			})
		}
	} else {
		bufs := scratch.Get()
		for h := 0; h < k && ctx.Err() == nil; h++ {
			drawOne(bufs, h)
			drawn++
			opts.emit(Stage{
				Solver: s.Name(),
				Round:  drawn,
				Total:  k,
				Stats:  Stats{Samples: drawn},
			})
		}
		sAllocs, sReuses = bufs.Counters()
		scratch.Put(bufs)
	}
	if drawn == 0 {
		return finishResult(p, model.NewAssignment(), Stats{}), interrupted(ctx)
	}

	bufs := scratch.Get()
	vecs := make([]objective.Vec2, drawn)
	for h := 0; h < drawn; h++ {
		vecs[h] = objective.Vec2{R: evals[h].MinR, D: evals[h].TotalESTD}
	}
	scores := objective.DominanceScoresBuf(bufs, vecs)
	best := objective.ArgmaxScore(vecs, scores)
	bufs.PutInt(scores)
	ra, rr := bufs.Counters()
	sAllocs += ra
	sReuses += rr
	scratch.Put(bufs)
	a := model.NewAssignment()
	for i, wid := range workers {
		a.Assign(wid, p.Pairs[choices[best][i]].Task)
	}
	res := &Result{
		Assignment: a,
		Eval:       evals[best],
		Stats:      Stats{Samples: drawn, ScratchAllocs: sAllocs, ScratchReused: sReuses},
	}
	// drawn < k only when the context interrupted the draws; a deadline
	// expiring after the final draw still completed the solve.
	if drawn < k {
		return res, interrupted(ctx)
	}
	return res, nil
}
