package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/objective"
	"rdbsc/internal/rng"
)

// mustSolve runs s with the v2 contract and fails the test on error.
func mustSolve(tb testing.TB, s Solver, p *Problem, src *rng.Source) *Result {
	tb.Helper()
	res, err := s.Solve(context.Background(), p, &SolveOptions{Source: src})
	if err != nil {
		tb.Fatalf("%s: %v", s.Name(), err)
	}
	return res
}

// randomInstance builds a well-connected random instance: unconstrained
// fast workers and long task periods guarantee plenty of valid pairs.
func randomInstance(src *rng.Source, m, n int) *model.Instance {
	in := &model.Instance{Beta: 0.5}
	for i := 0; i < m; i++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:    model.TaskID(i),
			Loc:   src.UniformPoint(geo.UnitSquare),
			Start: 0,
			End:   1 + src.Float64(),
		})
	}
	for j := 0; j < n; j++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:         model.WorkerID(j),
			Loc:        src.UniformPoint(geo.UnitSquare),
			Speed:      1 + src.Float64(),
			Dir:        geo.FullCircle,
			Confidence: 0.7 + 0.3*src.Float64(),
		})
	}
	return in
}

// constrainedInstance builds an instance with narrow direction cones and
// short periods, so some workers are disconnected.
func constrainedInstance(src *rng.Source, m, n int) *model.Instance {
	in := &model.Instance{Beta: 0.5}
	for i := 0; i < m; i++ {
		st := src.Float64() * 0.5
		in.Tasks = append(in.Tasks, model.Task{
			ID:    model.TaskID(i),
			Loc:   src.UniformPoint(geo.UnitSquare),
			Start: st,
			End:   st + 0.25 + 0.25*src.Float64(),
		})
	}
	for j := 0; j < n; j++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:         model.WorkerID(j),
			Loc:        src.UniformPoint(geo.UnitSquare),
			Speed:      0.2 + 0.3*src.Float64(),
			Dir:        geo.AngIntervalAround(src.Angle(), math.Pi/6),
			Confidence: 0.8 + 0.2*src.Float64(),
		})
	}
	return in
}

func allSolvers() []Solver {
	return []Solver{NewGreedy(), &Greedy{Prune: false}, NewSampling(), NewDC(), GTruth()}
}

func TestSolversProduceValidAssignments(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func(*rng.Source) *model.Instance
	}{
		{"connected", func(s *rng.Source) *model.Instance { return randomInstance(s, 6, 15) }},
		{"constrained", func(s *rng.Source) *model.Instance { return constrainedInstance(s, 10, 20) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			in := mk.make(rng.New(42))
			p := NewProblem(in)
			for _, s := range allSolvers() {
				t.Run(s.Name(), func(t *testing.T) {
					res := mustSolve(t, s, p, rng.New(7))
					if err := in.CheckAssignment(res.Assignment); err != nil {
						t.Fatalf("invalid assignment: %v", err)
					}
				})
			}
		})
	}
}

func TestSolversAssignAllConnectedWorkers(t *testing.T) {
	in := randomInstance(rng.New(1), 5, 20)
	p := NewProblem(in)
	want := len(p.ConnectedWorkers())
	for _, s := range allSolvers() {
		res := mustSolve(t, s, p, rng.New(3))
		if got := res.Assignment.Len(); got != want {
			t.Errorf("%s assigned %d workers, want %d", s.Name(), got, want)
		}
	}
}

func TestSolversDeterministicForSeed(t *testing.T) {
	in := randomInstance(rng.New(2), 6, 18)
	p := NewProblem(in)
	for _, s := range allSolvers() {
		r1 := mustSolve(t, s, p, rng.New(11))
		r2 := mustSolve(t, s, p, rng.New(11))
		if r1.Eval.MinRel != r2.Eval.MinRel || r1.Eval.TotalESTD != r2.Eval.TotalESTD {
			t.Errorf("%s not deterministic: %v vs %v", s.Name(), r1.Eval, r2.Eval)
		}
	}
}

func TestSolversOnEmptyInstances(t *testing.T) {
	cases := []*model.Instance{
		{Beta: 0.5}, // nothing at all
		{Beta: 0.5, Tasks: []model.Task{{ID: 0, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 1}}},
		{Beta: 0.5, Workers: []model.Worker{{ID: 0, Loc: geo.Pt(0.5, 0.5), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9}}},
	}
	for _, in := range cases {
		p := NewProblem(in)
		for _, s := range allSolvers() {
			res := mustSolve(t, s, p, rng.New(5))
			if res.Assignment.Len() != 0 {
				t.Errorf("%s assigned workers on a degenerate instance", s.Name())
			}
			if res.Eval.TotalESTD != 0 {
				t.Errorf("%s nonzero STD on degenerate instance", s.Name())
			}
		}
	}
}

func TestGreedyPruningPreservesQuality(t *testing.T) {
	// Pruned candidates are Pareto-dominated, so pruning must not change
	// the quality class of the result: both variants should land within a
	// small relative gap.
	for seed := int64(0); seed < 5; seed++ {
		in := randomInstance(rng.New(seed), 5, 25)
		p := NewProblem(in)
		with := mustSolve(t, &Greedy{Prune: true}, p, rng.New(1))
		without := mustSolve(t, &Greedy{Prune: false}, p, rng.New(1))
		if with.Assignment.Len() != without.Assignment.Len() {
			t.Fatalf("seed %d: assignment sizes differ", seed)
		}
		lo, hi := with.Eval.TotalESTD, without.Eval.TotalESTD
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 0 && lo/hi < 0.85 {
			t.Errorf("seed %d: pruning changed diversity too much: %v vs %v",
				seed, with.Eval.TotalESTD, without.Eval.TotalESTD)
		}
	}
}

func TestGreedyPrunesSomething(t *testing.T) {
	in := randomInstance(rng.New(3), 8, 40)
	p := NewProblem(in)
	res := mustSolve(t, NewGreedy(), p, rng.New(1))
	if res.Stats.PairsPruned == 0 {
		t.Log("no pairs pruned on this instance (bounds too loose); acceptable but worth knowing")
	}
	if res.Stats.PairsEvaluated == 0 {
		t.Error("greedy evaluated no pairs")
	}
	if res.Stats.Rounds != res.Assignment.Len() {
		t.Errorf("rounds %d != assignments %d", res.Stats.Rounds, res.Assignment.Len())
	}
}

func TestSamplingUsesReportedSampleCount(t *testing.T) {
	in := randomInstance(rng.New(4), 4, 10)
	p := NewProblem(in)
	s := &Sampling{FixedK: 17}
	res := mustSolve(t, s, p, rng.New(1))
	if res.Stats.Samples != 17 {
		t.Errorf("Samples = %d, want 17", res.Stats.Samples)
	}
	if got := s.SampleCount(p); got != 17 {
		t.Errorf("SampleCount = %d, want 17", got)
	}
}

func TestSamplingMultiplier(t *testing.T) {
	in := randomInstance(rng.New(4), 4, 10)
	p := NewProblem(in)
	s := &Sampling{FixedK: 10, Multiplier: 10}
	if got := s.SampleCount(p); got != 100 {
		t.Errorf("SampleCount with multiplier = %d, want 100", got)
	}
}

func TestSamplingBestDominatesMedianQuality(t *testing.T) {
	// The selected sample must be at least as good as an average random
	// assignment: compare against a single-sample run.
	in := randomInstance(rng.New(5), 6, 20)
	p := NewProblem(in)
	many := mustSolve(t, &Sampling{FixedK: 200}, p, rng.New(9))
	one := mustSolve(t, &Sampling{FixedK: 1}, p, rng.New(9))
	if many.Eval.TotalESTD < one.Eval.TotalESTD-1e-9 &&
		many.Eval.MinR < one.Eval.MinR-1e-9 {
		t.Errorf("200 samples (%v) strictly worse than 1 sample (%v)", many.Eval, one.Eval)
	}
}

func TestDCPartitionsAndMerges(t *testing.T) {
	in := randomInstance(rng.New(6), 30, 60)
	p := NewProblem(in)
	dc := &DC{Gamma: 5}
	res := mustSolve(t, dc, p, rng.New(2))
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Fatalf("invalid D&C assignment: %v", err)
	}
	if res.Stats.Rounds < 2 {
		t.Errorf("expected multiple leaf solves, got %d", res.Stats.Rounds)
	}
	if got, want := res.Assignment.Len(), len(p.ConnectedWorkers()); got != want {
		t.Errorf("assigned %d, want %d", got, want)
	}
}

func TestDCSmallInstanceGoesDirect(t *testing.T) {
	in := randomInstance(rng.New(7), 3, 9)
	p := NewProblem(in)
	dc := &DC{Gamma: 10}
	res := mustSolve(t, dc, p, rng.New(2))
	if res.Stats.Rounds != 1 {
		t.Errorf("small instance should be solved directly (1 leaf), got %d", res.Stats.Rounds)
	}
}

func TestExhaustiveTinyInstance(t *testing.T) {
	in := randomInstance(rng.New(8), 3, 6)
	p := NewProblem(in)
	ex := NewExhaustive()
	if !ex.CanSolve(p) {
		t.Skip("population unexpectedly large")
	}
	res := mustSolve(t, ex, p, nil)
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Fatalf("invalid exhaustive assignment: %v", err)
	}
	// Nothing may dominate the exhaustive winner.
	front := ex.ParetoFront(p)
	for _, v := range front {
		if v.Dominates(vecOf(res)) {
			t.Errorf("exhaustive winner %v dominated by front point %v", vecOf(res), v)
		}
	}
}

func TestExhaustiveRefusesHugeInstance(t *testing.T) {
	in := randomInstance(rng.New(9), 20, 40)
	p := NewProblem(in)
	ex := &Exhaustive{MaxAssignments: 100}
	if ex.CanSolve(p) {
		t.Skip("population small enough; nothing to test")
	}
	res, err := ex.Solve(context.Background(), p, nil)
	if !errors.Is(err, ErrPopulationTooLarge) {
		t.Fatalf("err = %v, want ErrPopulationTooLarge", err)
	}
	if res != nil {
		t.Errorf("oversized population returned a result: %v", res)
	}
}

func TestApproximationQualityAgainstExhaustive(t *testing.T) {
	// On tiny instances, every approximation should recover a healthy
	// fraction of the exhaustive winner's diversity.
	for seed := int64(0); seed < 4; seed++ {
		in := randomInstance(rng.New(100+seed), 3, 7)
		p := NewProblem(in)
		ex := NewExhaustive()
		if !ex.CanSolve(p) {
			continue
		}
		truth := mustSolve(t, ex, p, nil)
		for _, s := range []Solver{NewGreedy(), &Sampling{FixedK: 300}, NewDC()} {
			res := mustSolve(t, s, p, rng.New(seed))
			if truth.Eval.TotalESTD > 0 && res.Eval.TotalESTD < 0.5*truth.Eval.TotalESTD {
				t.Errorf("seed %d %s: diversity %v below half of exhaustive %v",
					seed, s.Name(), res.Eval.TotalESTD, truth.Eval.TotalESTD)
			}
		}
	}
}

func TestProblemAccessors(t *testing.T) {
	in := randomInstance(rng.New(10), 3, 5)
	p := NewProblem(in)
	if p.Task(0) == nil || p.Worker(0) == nil {
		t.Fatal("accessors returned nil for existing ids")
	}
	if p.Task(99) != nil || p.Worker(99) != nil {
		t.Fatal("accessors returned non-nil for missing ids")
	}
	for _, wid := range p.ConnectedWorkers() {
		if p.Degree(wid) == 0 {
			t.Errorf("connected worker %d has zero degree", wid)
		}
		for _, pi := range p.WorkerPairs(wid) {
			if p.Pairs[pi].Worker != wid {
				t.Errorf("pair index mismatch for worker %d", wid)
			}
		}
	}
	for i := range in.Tasks {
		for _, pi := range p.TaskPairs(in.Tasks[i].ID) {
			if p.Pairs[pi].Task != in.Tasks[i].ID {
				t.Errorf("pair index mismatch for task %d", in.Tasks[i].ID)
			}
		}
	}
}

func vecOf(r *Result) objective.Vec2 {
	return objective.Vec2{R: r.Eval.MinR, D: r.Eval.TotalESTD}
}

func TestParallelSamplingMatchesSequential(t *testing.T) {
	in := randomInstance(rng.New(30), 8, 30)
	p := NewProblem(in)
	seq := mustSolve(t, &Sampling{FixedK: 80}, p, rng.New(5))
	par := mustSolve(t, &Sampling{FixedK: 80, Parallel: true}, p, rng.New(5))
	if seq.Eval.MinRel != par.Eval.MinRel || seq.Eval.TotalESTD != par.Eval.TotalESTD {
		t.Errorf("parallel sampling diverged: %v vs %v", par.Eval, seq.Eval)
	}
	// The winning assignments themselves must match.
	seq.Assignment.Workers(func(w model.WorkerID, tk model.TaskID) {
		if par.Assignment.TaskOf(w) != tk {
			t.Errorf("worker %d: parallel %d vs sequential %d", w, par.Assignment.TaskOf(w), tk)
		}
	})
}

func TestParallelSamplingRace(t *testing.T) {
	// Exercised under -race in CI; large K stresses the worker pool.
	in := randomInstance(rng.New(31), 10, 40)
	p := NewProblem(in)
	res := mustSolve(t, &Sampling{FixedK: 200, Parallel: true}, p, rng.New(6))
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestGreedySolveFromRespectsCommitments(t *testing.T) {
	in := randomInstance(rng.New(33), 6, 20)
	p := NewProblem(in)
	// Commit the first three connected workers to their first candidate.
	existing := model.NewAssignment()
	committed := map[model.WorkerID]model.TaskID{}
	for _, wid := range p.ConnectedWorkers()[:3] {
		tid := p.Pairs[p.WorkerPairs(wid)[0]].Task
		existing.Assign(wid, tid)
		committed[wid] = tid
	}
	res, err := NewGreedy().SolveFrom(context.Background(), p, existing, nil)
	if err != nil {
		t.Fatal(err)
	}
	for wid, tid := range committed {
		if got := res.Assignment.TaskOf(wid); got != tid {
			t.Errorf("committed worker %d moved from %d to %d", wid, tid, got)
		}
	}
	// All other connected workers must also end up assigned.
	if got, want := res.Assignment.Len(), len(p.ConnectedWorkers()); got != want {
		t.Errorf("assigned %d, want %d", got, want)
	}
	if err := in.CheckAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestGreedySolveFromNilMatchesSolve(t *testing.T) {
	in := randomInstance(rng.New(34), 5, 15)
	p := NewProblem(in)
	a := mustSolve(t, NewGreedy(), p, nil)
	b, err := NewGreedy().SolveFrom(context.Background(), p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval.TotalESTD != b.Eval.TotalESTD || a.Eval.MinRel != b.Eval.MinRel {
		t.Errorf("SolveFrom(nil) diverged: %v vs %v", b.Eval, a.Eval)
	}
}

func TestGreedySolveFromImprovesOnCommitments(t *testing.T) {
	// Adding workers on top of commitments can only raise both objectives
	// (Lemmas 4.1/4.2 at the per-task level; min-rel over served tasks can
	// only rise or new tasks appear).
	in := randomInstance(rng.New(35), 4, 16)
	p := NewProblem(in)
	existing := model.NewAssignment()
	wid := p.ConnectedWorkers()[0]
	existing.Assign(wid, p.Pairs[p.WorkerPairs(wid)[0]].Task)
	before := p.Evaluate(existing)
	after, err := NewGreedy().SolveFrom(context.Background(), p, existing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Eval.TotalESTD < before.TotalESTD-1e-9 {
		t.Errorf("diversity fell from %v to %v", before.TotalESTD, after.Eval.TotalESTD)
	}
}
