package objective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRel(t *testing.T) {
	tests := []struct {
		name  string
		probs []float64
		want  float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.9}, 0.9},
		{"two halves", []float64{0.5, 0.5}, 0.75},
		{"certain worker", []float64{0.2, 1}, 1},
		{"all zero", []float64{0, 0}, 0},
		{"clamped", []float64{1.5, -0.5}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Rel(tc.probs); !almostEq(got, tc.want, 1e-12) {
				t.Errorf("Rel = %v, want %v", got, tc.want)
			}
		})
	}
}

// Eq. 8 equivalence: R = −ln(1 − rel)  ⇔  rel = 1 − e^(−R).
func TestRRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		probs := make([]float64, 0, len(raw))
		for _, v := range raw {
			p := math.Abs(math.Mod(v, 1))
			if p > 0.999 {
				p = 0.999
			}
			probs = append(probs, p)
		}
		rel := Rel(probs)
		r := RFromProbs(probs)
		return almostEq(RelFromR(r), rel, 1e-9) &&
			almostEq(r, -math.Log(1-rel), 1e-6*(1+r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRTermMonotone(t *testing.T) {
	prev := -1.0
	for p := 0.0; p < 1; p += 0.01 {
		cur := RTerm(p)
		if cur <= prev {
			t.Fatalf("RTerm not strictly increasing at p=%v", p)
		}
		prev = cur
	}
	if !math.IsInf(RTerm(1), 1) {
		t.Error("RTerm(1) must be +Inf")
	}
	if got := RTerm(0); got != 0 {
		t.Errorf("RTerm(0) = %v", got)
	}
}

func TestRelFromRInf(t *testing.T) {
	if got := RelFromR(math.Inf(1)); got != 1 {
		t.Errorf("RelFromR(+Inf) = %v, want 1", got)
	}
	if got := RelFromR(0); got != 0 {
		t.Errorf("RelFromR(0) = %v, want 0", got)
	}
}

// Lemma 4.1: R(W ∪ {w}) = R(W) + (−ln(1−p_w)).
func TestLemma41Additivity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(10)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = r.Float64() * 0.99
		}
		before := RFromProbs(probs[:n-1])
		after := RFromProbs(probs)
		if !almostEq(after, before+RTerm(probs[n-1]), 1e-9) {
			t.Fatalf("additivity violated: %v + %v != %v", before, RTerm(probs[n-1]), after)
		}
	}
}
