package objective

import (
	"math"
	"math/rand"
	"testing"

	"rdbsc/internal/diversity"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

func newTestState(beta float64) *TaskState {
	return NewTaskState(model.Task{ID: 1, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 1}, beta)
}

func TestTaskStateEmpty(t *testing.T) {
	s := newTestState(0.5)
	if s.Len() != 0 || s.R() != 0 || s.Rel() != 0 || s.ESTD() != 0 {
		t.Errorf("empty state: len=%d R=%v rel=%v estd=%v", s.Len(), s.R(), s.Rel(), s.ESTD())
	}
}

func TestTaskStateAddUpdatesObjectives(t *testing.T) {
	s := newTestState(0.5)
	s.Add(1, 0.9, 0.5, 0)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !almostEq(s.Rel(), 0.9, 1e-12) {
		t.Errorf("Rel = %v, want 0.9", s.Rel())
	}
	// One worker: E[SD]=0, E[TD] = p·ln2 (arrival at midpoint).
	want := 0.5 * 0.9 * math.Ln2
	if !almostEq(s.ESTD(), want, 1e-12) {
		t.Errorf("ESTD = %v, want %v", s.ESTD(), want)
	}
}

func TestTaskStateMatchesDirectComputation(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		beta := r.Float64()
		s := NewTaskState(model.Task{ID: 1, Start: 2, End: 5}, beta)
		n := 1 + r.Intn(8)
		angles := make([]float64, n)
		arrivals := make([]float64, n)
		probs := make([]float64, n)
		for i := 0; i < n; i++ {
			angles[i] = r.Float64() * geo.TwoPi
			arrivals[i] = 2 + 3*r.Float64()
			probs[i] = r.Float64()
			s.Add(model.WorkerID(i), probs[i], arrivals[i], angles[i])
		}
		want := diversity.ExpectedSTD(beta, angles, arrivals, probs, 2, 5)
		if !almostEq(s.ESTD(), want, 1e-9) {
			t.Fatalf("trial %d: state ESTD %v, direct %v", trial, s.ESTD(), want)
		}
		if !almostEq(s.R(), RFromProbs(probs), 1e-9) {
			t.Fatalf("trial %d: state R %v, direct %v", trial, s.R(), RFromProbs(probs))
		}
	}
}

func TestTaskStateDeltaIfAddIsExact(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		s := newTestState(r.Float64())
		n := r.Intn(7)
		for i := 0; i < n; i++ {
			s.Add(model.WorkerID(i), r.Float64(), r.Float64(), r.Float64()*geo.TwoPi)
		}
		p, arr, ang := r.Float64(), r.Float64(), r.Float64()*geo.TwoPi
		dR, dSTD := s.DeltaIfAdd(p, arr, ang)
		before := s.ESTD()
		beforeR := s.R()
		s.Add(model.WorkerID(n), p, arr, ang)
		if !almostEq(s.ESTD()-before, dSTD, 1e-9) {
			t.Fatalf("trial %d: dSTD %v, actual %v", trial, dSTD, s.ESTD()-before)
		}
		if !almostEq(s.R()-beforeR, dR, 1e-9) {
			t.Fatalf("trial %d: dR %v, actual %v", trial, dR, s.R()-beforeR)
		}
		if dSTD < -1e-9 {
			t.Fatalf("trial %d: Lemma 4.2 violated, dSTD=%v", trial, dSTD)
		}
	}
}

func TestTaskStateDeltaBoundsContainExact(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		s := newTestState(r.Float64())
		n := r.Intn(7)
		for i := 0; i < n; i++ {
			s.Add(model.WorkerID(i), r.Float64(), r.Float64(), r.Float64()*geo.TwoPi)
		}
		p, arr, ang := r.Float64(), r.Float64(), r.Float64()*geo.TwoPi
		_, dSTD := s.DeltaIfAdd(p, arr, ang)
		b := s.DeltaBoundsIfAdd(p, arr, ang)
		if !b.Contains(dSTD) {
			t.Fatalf("trial %d: exact Δ %v outside bounds %+v", trial, dSTD, b)
		}
	}
}

func TestTaskStateRemove(t *testing.T) {
	s := newTestState(0.5)
	s.Add(1, 0.9, 0.3, 1.0)
	s.Add(2, 0.8, 0.7, 2.0)
	s.Add(3, 0.7, 0.5, 3.0)
	if !s.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if s.Remove(2) {
		t.Fatal("double Remove(2) = true")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Rebuild from scratch and compare.
	fresh := newTestState(0.5)
	fresh.Add(1, 0.9, 0.3, 1.0)
	fresh.Add(3, 0.7, 0.5, 3.0)
	if !almostEq(s.ESTD(), fresh.ESTD(), 1e-9) || !almostEq(s.R(), fresh.R(), 1e-9) {
		t.Errorf("after Remove: estd=%v r=%v, fresh estd=%v r=%v",
			s.ESTD(), s.R(), fresh.ESTD(), fresh.R())
	}
}

func TestTaskStateClone(t *testing.T) {
	s := newTestState(0.5)
	s.Add(1, 0.9, 0.5, 1.0)
	c := s.Clone()
	c.Add(2, 0.8, 0.2, 2.0)
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone aliases original: %d, %d", s.Len(), c.Len())
	}
	if s.ESTD() == c.ESTD() {
		t.Error("clone ESTD should diverge after Add")
	}
}

func TestEvaluateAssignment(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{
			{ID: 0, Loc: geo.Pt(0.3, 0.3), Start: 0, End: 1},
			{ID: 1, Loc: geo.Pt(0.7, 0.7), Start: 0, End: 1},
			{ID: 2, Loc: geo.Pt(0.9, 0.1), Start: 0, End: 1}, // unassigned
		},
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0.25, 0.3), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9},
			{ID: 1, Loc: geo.Pt(0.35, 0.3), Speed: 1, Dir: geo.FullCircle, Confidence: 0.8},
			{ID: 2, Loc: geo.Pt(0.7, 0.65), Speed: 1, Dir: geo.FullCircle, Confidence: 0.7},
		},
		Beta: 0.5,
	}
	a := model.NewAssignment()
	a.Assign(0, 0)
	a.Assign(1, 0)
	a.Assign(2, 1)
	ev := Evaluate(in, a)
	if ev.AssignedWorkers != 3 || ev.AssignedTasks != 2 {
		t.Fatalf("counts: %+v", ev)
	}
	// Task 0 rel = 1-(0.1·0.2) = 0.98; task 1 rel = 0.7 → min 0.7.
	if !almostEq(ev.MinRel, 0.7, 1e-9) {
		t.Errorf("MinRel = %v, want 0.7", ev.MinRel)
	}
	if ev.TotalESTD <= 0 {
		t.Errorf("TotalESTD = %v, want > 0", ev.TotalESTD)
	}
	// Strict reading: task 2 unassigned → literal min over all tasks is 0.
	if got := MinRelOverAllTasks(in, BuildStates(in, a)); got != 0 {
		t.Errorf("MinRelOverAllTasks = %v, want 0", got)
	}
}

func TestMinRelOverAllTasksFullyCovered(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{ID: 0, Loc: geo.Pt(0.3, 0.3), Start: 0, End: 1}},
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0.25, 0.3), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9},
		},
		Beta: 0.5,
	}
	a := model.NewAssignment()
	a.Assign(0, 0)
	if got := MinRelOverAllTasks(in, BuildStates(in, a)); !almostEq(got, 0.9, 1e-9) {
		t.Errorf("MinRelOverAllTasks = %v, want 0.9", got)
	}
}

func TestEvaluateEmptyAssignment(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{ID: 0, Loc: geo.Pt(0.3, 0.3), Start: 0, End: 1}},
		Beta:  0.5,
	}
	ev := Evaluate(in, model.NewAssignment())
	if ev.MinRel != 0 || ev.TotalESTD != 0 || ev.AssignedTasks != 0 {
		t.Errorf("empty evaluation: %+v", ev)
	}
}

func TestEvaluationDominates(t *testing.T) {
	a := Evaluation{MinR: 2, TotalESTD: 5}
	b := Evaluation{MinR: 1, TotalESTD: 5}
	c := Evaluation{MinR: 2, TotalESTD: 5}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("equal evaluations must not dominate each other")
	}
	if b.Dominates(a) {
		t.Error("b must not dominate a")
	}
}

// TestTaskStateVersion pins the monotonic version contract external bound
// caches key on: every mutation bumps it, reads never do, and Clone
// preserves it.
func TestTaskStateVersion(t *testing.T) {
	s := newTestState(0.5)
	if s.Version() != 0 {
		t.Fatalf("fresh state version = %d, want 0", s.Version())
	}
	s.Add(1, 0.9, 0.2, 1.0)
	s.Add(2, 0.8, 0.4, 2.0)
	if s.Version() != 2 {
		t.Errorf("version after two adds = %d, want 2", s.Version())
	}
	s.Bounds()
	s.DeltaIfAdd(0.7, 0.5, 0.5)
	s.DeltaBoundsIfAdd(0.7, 0.5, 0.5)
	if s.Version() != 2 {
		t.Errorf("read-only operations bumped the version to %d", s.Version())
	}
	if c := s.Clone(); c.Version() != s.Version() {
		t.Errorf("clone version = %d, want %d", c.Version(), s.Version())
	}
	if !s.Remove(1) {
		t.Fatal("remove failed")
	}
	if s.Version() != 3 {
		t.Errorf("version after remove = %d, want 3", s.Version())
	}
}

// TestTaskStateBoundsCached checks that the cached "before" bounds always
// match a direct computation, across mutations that invalidate the cache.
func TestTaskStateBoundsCached(t *testing.T) {
	s := newTestState(0.5)
	check := func(when string) {
		t.Helper()
		want := diversity.BoundsESTD(0.5, s.angles, s.arrivals, s.probs, s.Task.Start, s.Task.End)
		if got := s.Bounds(); got != want {
			t.Errorf("%s: cached bounds %+v != direct %+v", when, got, want)
		}
		if got := s.Bounds(); got != want {
			t.Errorf("%s: second (cache-served) read diverged: %+v", when, got)
		}
	}
	check("empty")
	s.Add(1, 0.9, 0.2, 1.0)
	check("after first add")
	s.Add(2, 0.8, 0.4, 2.5)
	check("after second add")
	s.Remove(1)
	check("after remove")
}
