package objective

import (
	"rdbsc/internal/diversity"
	"rdbsc/internal/model"
	"rdbsc/internal/scratch"
)

// TaskState incrementally maintains one task's objective values — the
// additive reliability R (Eq. 8) and the expected diversity E[STD]
// (Lemma 3.1) — as workers are assigned. It is the workhorse of the greedy
// solver's inner loop and of whole-assignment evaluation.
//
// Adding a worker costs O(r²) for the exact E[STD] refresh (r = workers on
// this task); DeltaBoundsIfAdd provides the O(r) lower/upper bounds of
// Section 4.3 so that the greedy can prune candidates without paying the
// exact cost (Lemma 4.3).
type TaskState struct {
	Task model.Task
	Beta float64

	workers  []model.WorkerID
	angles   []float64
	arrivals []float64
	probs    []float64

	r    float64 // Σ −ln(1−p): additive reliability
	estd float64 // cached E[STD]

	version uint64 // bumped on every mutation; keys external caches

	bounds      diversity.Bounds // cached BoundsESTD of the current set
	boundsValid bool
}

// NewTaskState returns the empty state for task t with diversity weight β.
func NewTaskState(t model.Task, beta float64) *TaskState {
	return &TaskState{Task: t, Beta: beta}
}

// Len returns the number of workers assigned to the task.
func (s *TaskState) Len() int { return len(s.workers) }

// Workers returns the assigned worker IDs. The caller must not mutate the
// returned slice.
func (s *TaskState) Workers() []model.WorkerID { return s.workers }

// R returns the additive reliability Σ −ln(1−p_j) of the current set.
func (s *TaskState) R() float64 { return s.r }

// Version returns a monotonic counter bumped on every mutation. External
// caches (the greedy solver's per-pair bound cache) key on it: any value
// derived from the state is valid exactly as long as the version matches.
func (s *TaskState) Version() uint64 { return s.version }

// Bounds returns the Section 4.3 lower/upper bounds on E[STD] of the
// current set, cached until the next mutation. DeltaBoundsIfAdd uses it as
// the "before" interval, so a round of candidate evaluations over the same
// task pays for the before-bounds once instead of once per pair.
func (s *TaskState) Bounds() diversity.Bounds { return s.BoundsBuf(nil) }

// BoundsBuf is Bounds with the temporaries of a cold bounds computation
// drawn from bufs (nil disables pooling). The cached value is identical
// either way.
func (s *TaskState) BoundsBuf(bufs *scratch.Buffers) diversity.Bounds {
	if !s.boundsValid {
		s.bounds = diversity.BoundsESTDBuf(bufs, s.Beta, s.angles, s.arrivals, s.probs, s.Task.Start, s.Task.End)
		s.boundsValid = true
	}
	return s.bounds
}

// Rel returns the reliability 1 − Π(1−p_j) of the current set.
func (s *TaskState) Rel() float64 { return RelFromR(s.r) }

// ESTD returns the expected spatial/temporal diversity of the current set.
func (s *TaskState) ESTD() float64 { return s.estd }

// Add assigns a worker with the given confidence, arrival time and ray
// angle to the task, updating R (Lemma 4.1: R += −ln(1−p)) and recomputing
// E[STD].
func (s *TaskState) Add(w model.WorkerID, prob, arrival, angle float64) {
	s.AddBuf(nil, w, prob, arrival, angle)
}

// AddBuf is Add with the E[STD] refresh temporaries drawn from bufs (nil
// disables pooling). The resulting state is identical either way.
func (s *TaskState) AddBuf(bufs *scratch.Buffers, w model.WorkerID, prob, arrival, angle float64) {
	s.workers = append(s.workers, w)
	s.probs = append(s.probs, prob)
	s.arrivals = append(s.arrivals, arrival)
	s.angles = append(s.angles, angle)
	s.r += RTerm(prob)
	s.estd = diversity.ExpectedSTDBuf(bufs, s.Beta, s.angles, s.arrivals, s.probs, s.Task.Start, s.Task.End)
	s.version++
	s.boundsValid = false
}

// AddPair is Add with the pair's precomputed arrival/angle and the worker's
// confidence.
func (s *TaskState) AddPair(p model.Pair, confidence float64) {
	s.Add(p.Worker, confidence, p.Arrival, p.Angle)
}

// AddPairBuf is AddPair with pooled scratch.
func (s *TaskState) AddPairBuf(bufs *scratch.Buffers, p model.Pair, confidence float64) {
	s.AddBuf(bufs, p.Worker, confidence, p.Arrival, p.Angle)
}

// Remove unassigns the worker with the given ID, recomputing both
// objectives. It reports whether the worker was present.
func (s *TaskState) Remove(w model.WorkerID) bool {
	for i, id := range s.workers {
		if id != w {
			continue
		}
		s.r -= RTerm(s.probs[i])
		if s.r < 0 {
			s.r = 0 // floating-point guard
		}
		last := len(s.workers) - 1
		s.workers[i] = s.workers[last]
		s.angles[i] = s.angles[last]
		s.arrivals[i] = s.arrivals[last]
		s.probs[i] = s.probs[last]
		s.workers = s.workers[:last]
		s.angles = s.angles[:last]
		s.arrivals = s.arrivals[:last]
		s.probs = s.probs[:last]
		s.estd = s.computeESTD(s.angles, s.arrivals, s.probs)
		s.version++
		s.boundsValid = false
		return true
	}
	return false
}

// DeltaIfAdd returns the exact objective increases (ΔR, ΔE[STD]) that
// assigning the candidate worker would produce, without mutating the state.
// ΔR is O(1) (Lemma 4.1); ΔE[STD] recomputes the expected diversity with
// the candidate included, O(r²).
func (s *TaskState) DeltaIfAdd(prob, arrival, angle float64) (dR, dSTD float64) {
	return s.DeltaIfAddBuf(nil, prob, arrival, angle)
}

// DeltaIfAddBuf is DeltaIfAdd with the candidate-extended copies and every
// evaluator temporary drawn from bufs (nil disables pooling). Same values
// in the same order, so the result is bit-identical.
func (s *TaskState) DeltaIfAddBuf(bufs *scratch.Buffers, prob, arrival, angle float64) (dR, dSTD float64) {
	dR = RTerm(prob)
	angles := append(append(bufs.F64Cap(len(s.angles)+1), s.angles...), angle)
	arrivals := append(append(bufs.F64Cap(len(s.arrivals)+1), s.arrivals...), arrival)
	probs := append(append(bufs.F64Cap(len(s.probs)+1), s.probs...), prob)
	after := diversity.ExpectedSTDBuf(bufs, s.Beta, angles, arrivals, probs, s.Task.Start, s.Task.End)
	bufs.PutF64(probs)
	bufs.PutF64(arrivals)
	bufs.PutF64(angles)
	return dR, after - s.estd
}

// DeltaBoundsIfAdd returns lower/upper bounds on ΔE[STD] for the candidate
// insertion (Section 4.3), cheaper than the exact Δ. The true Δ always lies
// within the returned interval.
func (s *TaskState) DeltaBoundsIfAdd(prob, arrival, angle float64) diversity.Bounds {
	return s.DeltaBoundsIfAddBuf(nil, prob, arrival, angle)
}

// DeltaBoundsIfAddBuf is DeltaBoundsIfAdd with pooled scratch (nil
// disables pooling); the returned interval is bit-identical.
func (s *TaskState) DeltaBoundsIfAddBuf(bufs *scratch.Buffers, prob, arrival, angle float64) diversity.Bounds {
	before := s.BoundsBuf(bufs)
	angles := append(append(bufs.F64Cap(len(s.angles)+1), s.angles...), angle)
	arrivals := append(append(bufs.F64Cap(len(s.arrivals)+1), s.arrivals...), arrival)
	probs := append(append(bufs.F64Cap(len(s.probs)+1), s.probs...), prob)
	after := diversity.BoundsESTDBuf(bufs, s.Beta, angles, arrivals, probs, s.Task.Start, s.Task.End)
	bufs.PutF64(probs)
	bufs.PutF64(arrivals)
	bufs.PutF64(angles)
	return diversity.DeltaBounds(before, after)
}

// Clone returns a deep copy of the state, including its version and cached
// bounds.
func (s *TaskState) Clone() *TaskState {
	c := &TaskState{
		Task: s.Task, Beta: s.Beta, r: s.r, estd: s.estd,
		version: s.version, bounds: s.bounds, boundsValid: s.boundsValid,
	}
	c.workers = append([]model.WorkerID(nil), s.workers...)
	c.angles = append([]float64(nil), s.angles...)
	c.arrivals = append([]float64(nil), s.arrivals...)
	c.probs = append([]float64(nil), s.probs...)
	return c
}

func (s *TaskState) computeESTD(angles, arrivals, probs []float64) float64 {
	return diversity.ExpectedSTD(s.Beta, angles, arrivals, probs, s.Task.Start, s.Task.End)
}
