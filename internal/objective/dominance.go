package objective

import (
	"sort"

	"rdbsc/internal/scratch"
)

// This file implements the bi-objective Pareto machinery the paper uses to
// pick winners among candidate pairs/samples: skyline filtering [13] and
// the top-k dominating score [22] (an item's score is the number of other
// items it dominates).

// Vec2 is a point in the (reliability gain, diversity gain) objective
// plane. Bigger is better in both coordinates.
type Vec2 struct {
	R, D float64
}

// dominates2 reports whether (r1, d1) dominates (r2, d2): at least as good
// in both coordinates and strictly better in one.
func dominates2(r1, d1, r2, d2 float64) bool {
	if r1 < r2 || d1 < d2 {
		return false
	}
	return r1 > r2 || d1 > d2
}

// Dominates reports whether v dominates u.
func (v Vec2) Dominates(u Vec2) bool { return dominates2(v.R, v.D, u.R, u.D) }

// Skyline returns the indices of the non-dominated points of items, in
// ascending index order. Runs in O(n log n): sort by R descending (ties: D
// descending) and sweep, keeping points whose D exceeds the best D seen.
func Skyline(items []Vec2) []int { return SkylineBuf(nil, items) }

// SkylineBuf is Skyline with its temporaries — and the returned index
// slice — drawn from bufs (nil disables pooling and behaves exactly like
// Skyline). The caller releases the result with bufs.PutInt when done.
func SkylineBuf(bufs *scratch.Buffers, items []Vec2) []int {
	n := len(items)
	if n == 0 {
		return nil
	}
	idx := bufs.Int(n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := items[idx[a]], items[idx[b]]
		if ia.R != ib.R {
			return ia.R > ib.R
		}
		return ia.D > ib.D
	})
	out := bufs.IntCap(n)
	bestD := 0.0
	haveBest := false
	prevR := 0.0
	// Points with equal R and equal D duplicate each other and neither
	// dominates: keep all of them (they are equally optimal).
	for _, i := range idx {
		it := items[i]
		switch {
		case !haveBest:
			out = append(out, i)
			bestD, prevR, haveBest = it.D, it.R, true
		case it.D > bestD:
			out = append(out, i)
			bestD, prevR = it.D, it.R
		case it.D == bestD && it.R == prevR:
			out = append(out, i)
		}
	}
	sort.Ints(out)
	bufs.PutInt(idx)
	return out
}

// DominanceScores returns, for every item, the number of other items it
// dominates — the top-k dominating score of [22]. Runs in O(n log n) using
// coordinate compression and a Fenwick tree; DominanceScoresNaive is the
// O(n²) reference used in tests.
func DominanceScores(items []Vec2) []int { return DominanceScoresBuf(nil, items) }

// DominanceScoresBuf is DominanceScores with its temporaries — and the
// returned scores slice — drawn from bufs (nil disables pooling and
// behaves exactly like DominanceScores). The caller releases the result
// with bufs.PutInt when done.
func DominanceScoresBuf(bufs *scratch.Buffers, items []Vec2) []int {
	n := len(items)
	scores := bufs.IntZero(n)
	if n == 0 {
		return scores
	}

	// Compress D coordinates to ranks 1..k.
	ds := bufs.F64(n)
	for i, it := range items {
		ds[i] = it.D
	}
	sort.Float64s(ds)
	uniq := ds[:0]
	for i, d := range ds {
		if i == 0 || d != uniq[len(uniq)-1] {
			uniq = append(uniq, d)
		}
	}
	rank := func(d float64) int { return sort.SearchFloat64s(uniq, d) + 1 }

	// Process groups of equal R in ascending order. For item i:
	//   score = #{j : R_j < R_i, D_j ≤ D_i}  (strictness from R)
	//         + #{j : R_j = R_i, D_j < D_i}  (strictness from D)
	idx := bufs.Int(n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return items[idx[a]].R < items[idx[b]].R })

	ft := fenwick{tree: bufs.IntZero(len(uniq) + 1)}
	inGroup := bufs.IntCap(n)
	for g := 0; g < n; {
		h := g
		for h < n && items[idx[h]].R == items[idx[g]].R {
			h++
		}
		group := idx[g:h]
		// Within-group: sort by D and count strictly smaller Ds.
		inGroup = append(inGroup[:0], group...)
		sort.Slice(inGroup, func(a, b int) bool { return items[inGroup[a]].D < items[inGroup[b]].D })
		for a := 0; a < len(inGroup); {
			b := a
			for b < len(inGroup) && items[inGroup[b]].D == items[inGroup[a]].D {
				b++
			}
			for _, i := range inGroup[a:b] {
				scores[i] = a // items before position a have strictly smaller D
			}
			a = b
		}
		// Cross-group: all previously inserted items have strictly smaller R.
		for _, i := range group {
			scores[i] += ft.prefixSum(rank(items[i].D))
		}
		for _, i := range group {
			ft.add(rank(items[i].D), 1)
		}
		g = h
	}
	bufs.PutInt(inGroup)
	bufs.PutInt(ft.tree)
	bufs.PutInt(idx)
	bufs.PutF64(ds)
	return scores
}

// DominanceScoresNaive is the quadratic reference implementation of
// DominanceScores.
func DominanceScoresNaive(items []Vec2) []int {
	scores := make([]int, len(items))
	for i, a := range items {
		for j, b := range items {
			if i != j && a.Dominates(b) {
				scores[i]++
			}
		}
	}
	return scores
}

// TopKDominating returns the indices of the k items with the highest
// dominance scores, in decreasing score order (ties broken by higher R,
// then higher D, then lower index) — the top-k dominating query of [22]
// that the paper uses to rank candidate pairs and samples.
func TopKDominating(items []Vec2, k int) []int {
	if k <= 0 || len(items) == 0 {
		return nil
	}
	scores := DominanceScores(items)
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if scores[i] != scores[j] {
			return scores[i] > scores[j]
		}
		if items[i].R != items[j].R {
			return items[i].R > items[j].R
		}
		if items[i].D != items[j].D {
			return items[i].D > items[j].D
		}
		return i < j
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// ArgmaxScore returns the index with the highest dominance score, breaking
// ties toward higher R then higher D then lower index (deterministic).
func ArgmaxScore(items []Vec2, scores []int) int {
	best := -1
	for i := range items {
		if best == -1 {
			best = i
			continue
		}
		switch {
		case scores[i] > scores[best]:
			best = i
		case scores[i] == scores[best]:
			if items[i].R > items[best].R ||
				(items[i].R == items[best].R && items[i].D > items[best].D) {
				best = i
			}
		}
	}
	return best
}

// fenwick is a 1-indexed binary indexed tree over integer counts.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, v int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += v
	}
}

func (f *fenwick) prefixSum(i int) int {
	var s int
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}
