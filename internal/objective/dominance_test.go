package objective

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates2(t *testing.T) {
	tests := []struct {
		name          string
		a, b          Vec2
		want, wantRev bool
	}{
		{"strictly better both", Vec2{2, 2}, Vec2{1, 1}, true, false},
		{"better R equal D", Vec2{2, 1}, Vec2{1, 1}, true, false},
		{"better D equal R", Vec2{1, 2}, Vec2{1, 1}, true, false},
		{"equal", Vec2{1, 1}, Vec2{1, 1}, false, false},
		{"incomparable", Vec2{2, 1}, Vec2{1, 2}, false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Dominates(tc.b); got != tc.want {
				t.Errorf("a.Dominates(b) = %v, want %v", got, tc.want)
			}
			if got := tc.b.Dominates(tc.a); got != tc.wantRev {
				t.Errorf("b.Dominates(a) = %v, want %v", got, tc.wantRev)
			}
		})
	}
}

func TestDominanceIrreflexiveAntisymmetric(t *testing.T) {
	f := func(r1, d1, r2, d2 float64) bool {
		a, b := Vec2{r1, d1}, Vec2{r2, d2}
		if a.Dominates(a) {
			return false
		}
		return !(a.Dominates(b) && b.Dominates(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkylineSimple(t *testing.T) {
	items := []Vec2{
		{1, 5}, // skyline
		{3, 3}, // skyline
		{2, 2}, // dominated by (3,3)
		{5, 1}, // skyline
		{0, 0}, // dominated
	}
	got := Skyline(items)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("Skyline = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Skyline = %v, want %v", got, want)
		}
	}
}

func TestSkylineKeepsDuplicatesOfBest(t *testing.T) {
	items := []Vec2{{1, 1}, {1, 1}, {0, 0}}
	got := Skyline(items)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Skyline = %v, want [0 1]", got)
	}
}

func TestSkylineMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(60)
		items := make([]Vec2, n)
		for i := range items {
			// Small value grid to force plenty of ties.
			items[i] = Vec2{float64(r.Intn(5)), float64(r.Intn(5))}
		}
		got := Skyline(items)
		inGot := make(map[int]bool, len(got))
		for _, i := range got {
			inGot[i] = true
		}
		for i, a := range items {
			dominated := false
			for j, b := range items {
				if i != j && b.Dominates(a) {
					dominated = true
					break
				}
			}
			if dominated == inGot[i] {
				t.Fatalf("trial %d: item %d dominated=%v but inSkyline=%v", trial, i, dominated, inGot[i])
			}
		}
	}
}

func TestDominanceScoresMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(80)
		items := make([]Vec2, n)
		for i := range items {
			items[i] = Vec2{float64(r.Intn(6)), float64(r.Intn(6))}
		}
		got := DominanceScores(items)
		want := DominanceScoresNaive(items)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: scores[%d] = %d, want %d (items=%v)", trial, i, got[i], want[i], items)
			}
		}
	}
}

func TestDominanceScoresContinuous(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(100)
		items := make([]Vec2, n)
		for i := range items {
			items[i] = Vec2{r.Float64(), r.Float64()}
		}
		got := DominanceScores(items)
		want := DominanceScoresNaive(items)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: scores[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestArgmaxScore(t *testing.T) {
	items := []Vec2{{1, 1}, {3, 3}, {2, 2}}
	scores := DominanceScores(items)
	if got := ArgmaxScore(items, scores); got != 1 {
		t.Errorf("ArgmaxScore = %d, want 1", got)
	}
}

func TestArgmaxScoreTieBreaking(t *testing.T) {
	// Two items with equal scores: prefer higher R, then higher D.
	items := []Vec2{{1, 2}, {2, 1}}
	scores := []int{0, 0}
	if got := ArgmaxScore(items, scores); got != 1 {
		t.Errorf("ArgmaxScore = %d, want 1 (higher R wins ties)", got)
	}
	items = []Vec2{{2, 1}, {2, 3}}
	if got := ArgmaxScore(items, scores); got != 1 {
		t.Errorf("ArgmaxScore = %d, want 1 (higher D wins R ties)", got)
	}
	if got := ArgmaxScore(nil, nil); got != -1 {
		t.Errorf("ArgmaxScore(empty) = %d, want -1", got)
	}
}

func TestFenwick(t *testing.T) {
	ft := newFenwick(10)
	ft.add(3, 1)
	ft.add(7, 2)
	ft.add(3, 1)
	tests := []struct{ i, want int }{
		{0, 0}, {2, 0}, {3, 2}, {6, 2}, {7, 4}, {10, 4},
	}
	for _, tc := range tests {
		if got := ft.prefixSum(tc.i); got != tc.want {
			t.Errorf("prefixSum(%d) = %d, want %d", tc.i, got, tc.want)
		}
	}
}

func TestTopKDominating(t *testing.T) {
	items := []Vec2{{0, 0}, {3, 3}, {2, 2}, {1, 4}}
	top := TopKDominating(items, 2)
	if len(top) != 2 || top[0] != 1 {
		t.Fatalf("TopKDominating = %v, want [1 ...]", top)
	}
	// k larger than n returns everything; k<=0 returns nothing.
	if got := TopKDominating(items, 10); len(got) != 4 {
		t.Errorf("oversized k = %v", got)
	}
	if got := TopKDominating(items, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	if got := TopKDominating(nil, 3); got != nil {
		t.Errorf("empty items = %v", got)
	}
}

func TestTopKDominatingOrderConsistentWithArgmax(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(50)
		items := make([]Vec2, n)
		for i := range items {
			items[i] = Vec2{float64(r.Intn(8)), float64(r.Intn(8))}
		}
		top := TopKDominating(items, 1)
		best := ArgmaxScore(items, DominanceScores(items))
		if top[0] != best {
			t.Fatalf("trial %d: TopK[0]=%d, Argmax=%d", trial, top[0], best)
		}
		full := TopKDominating(items, n)
		scores := DominanceScores(items)
		for i := 1; i < len(full); i++ {
			if scores[full[i-1]] < scores[full[i]] {
				t.Fatalf("trial %d: scores not sorted at %d", trial, i)
			}
		}
	}
}
