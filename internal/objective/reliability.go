// Package objective implements the two optimization goals of the RDB-SC
// problem (Definition 4) and the machinery the solvers need to compare
// candidate assignments:
//
//   - the reliability rel(t_i, W_i) = 1 − Π(1−p_j) (Eq. 1) and its additive
//     reduction R = −ln(1 − rel) = Σ −ln(1−p_j) (Eq. 8, Section 3.1);
//   - incremental per-task state that maintains R and E[STD] under worker
//     insertion (Lemmas 4.1 and 4.2) with exact and bounded Δ computation;
//   - whole-assignment evaluation (min reliability across tasks, total
//     expected diversity);
//   - Pareto dominance and the top-k-dominating score of [22] used by the
//     greedy pair selection and the sampling ranking.
package objective

import "math"

// Rel returns the reliability 1 − Π(1−p) of a worker confidence set
// (Eq. 1): the probability that at least one assigned worker completes the
// task.
func Rel(probs []float64) float64 {
	allFail := 1.0
	for _, p := range probs {
		allFail *= 1 - clamp01(p)
	}
	return 1 - allFail
}

// RFromProbs returns the additive reliability R = Σ −ln(1−p_j) (Eq. 8).
// A worker with p = 1 contributes +Inf, matching the limit of the formula.
func RFromProbs(probs []float64) float64 {
	var r float64
	for _, p := range probs {
		r += RTerm(p)
	}
	return r
}

// RTerm returns a single worker's additive reliability contribution,
// −ln(1−p) (Lemma 4.1).
func RTerm(p float64) float64 {
	p = clamp01(p)
	if p >= 1 {
		return math.Inf(1)
	}
	// math.Log1p(-p) is more accurate than math.Log(1-p) for small p.
	return -math.Log1p(-p)
}

// RelFromR converts the additive reliability back: rel = 1 − e^(−R).
func RelFromR(r float64) float64 {
	if math.IsInf(r, 1) {
		return 1
	}
	// -Expm1(-r) = 1 - e^{-r} computed stably for small r.
	return -math.Expm1(-r)
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
