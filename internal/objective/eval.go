package objective

import (
	"fmt"
	"math"
	"sort"

	"rdbsc/internal/model"
	"rdbsc/internal/scratch"
)

// Evaluation summarizes an assignment against the two RDB-SC goals.
type Evaluation struct {
	// MinRel is the minimum reliability among tasks that received at least
	// one worker (goal 2 of Definition 4). Tasks with no assigned worker are
	// excluded from the minimum — with more tasks than reachable workers a
	// literal minimum over all tasks would be identically zero and carry no
	// signal, and the paper's reported values (≈ the lower confidence bound)
	// confirm this reading. AssignedTasks reports coverage separately.
	MinRel float64
	// MinR is the additive form of MinRel, min Σ −ln(1−p).
	MinR float64
	// TotalESTD is Σ_i E[STD(t_i)] (goal 3 of Definition 4).
	TotalESTD float64
	// AssignedWorkers is the number of workers holding an assignment.
	AssignedWorkers int
	// AssignedTasks is the number of tasks with ≥ 1 worker.
	AssignedTasks int
}

// String implements fmt.Stringer.
func (e Evaluation) String() string {
	return fmt.Sprintf("minRel=%.4f totalSTD=%.4f (workers=%d tasks=%d)",
		e.MinRel, e.TotalESTD, e.AssignedWorkers, e.AssignedTasks)
}

// Dominates reports whether e is strictly better than other in the Pareto
// sense used throughout the paper: at least as good in both goals and
// strictly better in one.
func (e Evaluation) Dominates(other Evaluation) bool {
	return dominates2(e.MinR, e.TotalESTD, other.MinR, other.TotalESTD)
}

// Evaluate computes the Evaluation of assignment a on instance in.
// Pair validity is not re-checked here; use in.CheckAssignment for that.
func Evaluate(in *model.Instance, a *model.Assignment) Evaluation {
	return EvaluateBuf(nil, in, a)
}

// EvaluateBuf is Evaluate with the per-add diversity temporaries drawn
// from bufs (nil disables pooling); the result is bit-identical.
func EvaluateBuf(bufs *scratch.Buffers, in *model.Instance, a *model.Assignment) Evaluation {
	states := BuildStatesBuf(bufs, in, a)
	return EvaluateStates(states)
}

// BuildStates constructs per-task incremental states from a full
// assignment. Tasks with no workers get no state.
func BuildStates(in *model.Instance, a *model.Assignment) map[model.TaskID]*TaskState {
	return BuildStatesBuf(nil, in, a)
}

// BuildStatesBuf is BuildStates with pooled scratch for the incremental
// E[STD] refreshes; the resulting states are identical.
func BuildStatesBuf(bufs *scratch.Buffers, in *model.Instance, a *model.Assignment) map[model.TaskID]*TaskState {
	workers := make(map[model.WorkerID]*model.Worker, len(in.Workers))
	for i := range in.Workers {
		workers[in.Workers[i].ID] = &in.Workers[i]
	}
	tasks := make(map[model.TaskID]*model.Task, len(in.Tasks))
	for i := range in.Tasks {
		tasks[in.Tasks[i].ID] = &in.Tasks[i]
	}
	// Collect and sort the assigned pairs first: map iteration order is
	// random, and floating-point summation inside the diversity engine is
	// order-sensitive at the ULP level. Sorting makes evaluation exactly
	// reproducible for a given assignment.
	type wt struct {
		w model.WorkerID
		t model.TaskID
	}
	pairs := make([]wt, 0, a.Len())
	a.Workers(func(wid model.WorkerID, tid model.TaskID) {
		pairs = append(pairs, wt{wid, tid})
	})
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].t != pairs[j].t {
			return pairs[i].t < pairs[j].t
		}
		return pairs[i].w < pairs[j].w
	})
	states := make(map[model.TaskID]*TaskState)
	for _, pr := range pairs {
		w, t := workers[pr.w], tasks[pr.t]
		if w == nil || t == nil {
			continue
		}
		st := states[pr.t]
		if st == nil {
			st = NewTaskState(*t, in.Beta)
			states[pr.t] = st
		}
		arrival, ok := model.Arrival(*t, *w, in.Opt)
		if !ok {
			// Invalid pairs contribute nothing; CheckAssignment reports them.
			continue
		}
		st.AddBuf(bufs, pr.w, w.Confidence, arrival, model.ApproachAngle(*t, *w))
	}
	return states
}

// EvaluateStates aggregates per-task states into an Evaluation. Tasks are
// visited in ID order so the floating-point total is reproducible.
func EvaluateStates(states map[model.TaskID]*TaskState) Evaluation {
	ids := make([]model.TaskID, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ev := Evaluation{MinRel: 0, MinR: 0}
	first := true
	for _, id := range ids {
		st := states[id]
		if st.Len() == 0 {
			continue
		}
		ev.AssignedTasks++
		ev.AssignedWorkers += st.Len()
		ev.TotalESTD += st.ESTD()
		if first || st.R() < ev.MinR {
			ev.MinR = st.R()
			first = false
		}
	}
	if first {
		ev.MinR = 0
		ev.MinRel = 0
		return ev
	}
	ev.MinRel = RelFromR(ev.MinR)
	return ev
}

// MinRelOverAllTasks returns the literal minimum reliability over every
// task in the instance (unassigned tasks count as reliability 0). Exposed
// for analyses that need the strict Definition 4 reading.
func MinRelOverAllTasks(in *model.Instance, states map[model.TaskID]*TaskState) float64 {
	min := math.Inf(1)
	for i := range in.Tasks {
		st := states[in.Tasks[i].ID]
		if st == nil || st.Len() == 0 {
			return 0
		}
		if rel := st.Rel(); rel < min {
			min = rel
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}
