// Package kmeans implements 2D k-means clustering with k-means++ seeding
// and Lloyd iterations, plus the balanced two-way split that the paper's
// BG_Partition step needs ("partition tasks into two even sets T1 and T2
// with KMeans", Section 6.2).
package kmeans

import (
	"math"
	"sort"

	"rdbsc/internal/geo"
	"rdbsc/internal/rng"
)

// Result holds a clustering: the final centroids and, for every input
// point, the index of its centroid.
type Result struct {
	Centroids []geo.Point
	Labels    []int
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Options tunes the clustering.
type Options struct {
	// MaxIterations bounds the Lloyd loop (default 64).
	MaxIterations int
	// Tolerance stops the loop when no centroid moves farther than this
	// (default 1e-9).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 64
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// Cluster partitions points into k clusters. It panics if k <= 0. When
// there are fewer points than clusters, the surplus clusters are empty
// (their centroids duplicate seeded points).
func Cluster(points []geo.Point, k int, src *rng.Source, opt Options) Result {
	if k <= 0 {
		panic("kmeans: k must be positive")
	}
	opt = opt.withDefaults()
	n := len(points)
	res := Result{Labels: make([]int, n)}
	if n == 0 {
		res.Centroids = make([]geo.Point, k)
		return res
	}
	res.Centroids = seedPlusPlus(points, k, src)

	for iter := 0; iter < opt.MaxIterations; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		for i, p := range points {
			res.Labels[i] = nearest(res.Centroids, p)
		}
		// Update step.
		sums := make([]geo.Point, k)
		counts := make([]int, k)
		for i, p := range points {
			l := res.Labels[i]
			sums[l] = sums[l].Add(p)
			counts[l]++
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			next := sums[c].Scale(1 / float64(counts[c]))
			if d := next.Dist(res.Centroids[c]); d > moved {
				moved = d
			}
			res.Centroids[c] = next
		}
		if moved <= opt.Tolerance {
			break
		}
	}
	// Final assignment against the last centroids.
	for i, p := range points {
		res.Labels[i] = nearest(res.Centroids, p)
	}
	return res
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// the first uniformly, each subsequent one with probability proportional to
// its squared distance to the nearest chosen centroid.
func seedPlusPlus(points []geo.Point, k int, src *rng.Source) []geo.Point {
	n := len(points)
	centroids := make([]geo.Point, 0, k)
	centroids = append(centroids, points[src.Intn(n)])
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := p.Dist2(last)
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with chosen centroids; duplicate one.
			centroids = append(centroids, points[src.Intn(n)])
			continue
		}
		target := src.Float64() * total
		idx := n - 1
		acc := 0.0
		for i := range points {
			acc += d2[i]
			if acc >= target {
				idx = i
				break
			}
		}
		centroids = append(centroids, points[idx])
	}
	return centroids
}

func nearest(centroids []geo.Point, p geo.Point) int {
	best, bestD := 0, math.Inf(1)
	for c, ct := range centroids {
		if d := p.Dist2(ct); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// BalancedBisect splits points into two groups of sizes ⌈n/2⌉ and ⌊n/2⌋
// that respect spatial locality: a 2-means clustering provides the split
// direction, then points are ordered by the difference of their distances
// to the two centroids and the first half goes to side 0. This realizes
// BG_Partition's "two almost even subsets based on their locations".
//
// The returned slice assigns 0 or 1 to every point; side 0 receives the
// ⌈n/2⌉ points closest (in the relative sense) to centroid 0.
func BalancedBisect(points []geo.Point, src *rng.Source) []int {
	n := len(points)
	side := make([]int, n)
	if n <= 1 {
		return side
	}
	res := Cluster(points, 2, src, Options{})
	c0, c1 := res.Centroids[0], res.Centroids[1]
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by affinity to c0 (distance difference); stable tie-break by
	// index keeps the split deterministic.
	sort.SliceStable(idx, func(a, b int) bool {
		da := points[idx[a]].Dist2(c0) - points[idx[a]].Dist2(c1)
		db := points[idx[b]].Dist2(c0) - points[idx[b]].Dist2(c1)
		return da < db
	})
	half := (n + 1) / 2
	for rank, i := range idx {
		if rank < half {
			side[i] = 0
		} else {
			side[i] = 1
		}
	}
	return side
}

// Inertia returns the within-cluster sum of squared distances of a
// clustering result, the quantity Lloyd iterations minimize. Useful for
// tests and diagnostics.
func Inertia(points []geo.Point, res Result) float64 {
	var s float64
	for i, p := range points {
		s += p.Dist2(res.Centroids[res.Labels[i]])
	}
	return s
}
