package kmeans

import (
	"testing"

	"rdbsc/internal/geo"
	"rdbsc/internal/rng"
)

// twoBlobs returns points in two well-separated clusters.
func twoBlobs(src *rng.Source, nPer int) []geo.Point {
	pts := make([]geo.Point, 0, 2*nPer)
	for i := 0; i < nPer; i++ {
		pts = append(pts, geo.Pt(0.1+0.05*src.Float64(), 0.1+0.05*src.Float64()))
	}
	for i := 0; i < nPer; i++ {
		pts = append(pts, geo.Pt(0.8+0.05*src.Float64(), 0.8+0.05*src.Float64()))
	}
	return pts
}

func TestClusterSeparatesBlobs(t *testing.T) {
	src := rng.New(1)
	pts := twoBlobs(src, 50)
	res := Cluster(pts, 2, src, Options{})
	// All points of one blob must share a label, and the blobs must differ.
	first := res.Labels[0]
	for i := 1; i < 50; i++ {
		if res.Labels[i] != first {
			t.Fatalf("blob 1 split: label[%d]=%d, want %d", i, res.Labels[i], first)
		}
	}
	second := res.Labels[50]
	if second == first {
		t.Fatal("blobs not separated")
	}
	for i := 51; i < 100; i++ {
		if res.Labels[i] != second {
			t.Fatalf("blob 2 split at %d", i)
		}
	}
}

func TestClusterSingleCluster(t *testing.T) {
	src := rng.New(2)
	pts := twoBlobs(src, 20)
	res := Cluster(pts, 1, src, Options{})
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("k=1 must label everything 0")
		}
	}
	// Centroid must be the mean.
	var mean geo.Point
	for _, p := range pts {
		mean = mean.Add(p)
	}
	mean = mean.Scale(1 / float64(len(pts)))
	if res.Centroids[0].Dist(mean) > 1e-9 {
		t.Errorf("centroid %v, want mean %v", res.Centroids[0], mean)
	}
}

func TestClusterEmptyInput(t *testing.T) {
	src := rng.New(3)
	res := Cluster(nil, 3, src, Options{})
	if len(res.Centroids) != 3 || len(res.Labels) != 0 {
		t.Errorf("empty input: %+v", res)
	}
}

func TestClusterPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	Cluster([]geo.Point{geo.Pt(0, 0)}, 0, rng.New(4), Options{})
}

func TestClusterFewerPointsThanK(t *testing.T) {
	src := rng.New(5)
	pts := []geo.Point{geo.Pt(0.1, 0.1), geo.Pt(0.9, 0.9)}
	res := Cluster(pts, 5, src, Options{})
	if len(res.Centroids) != 5 {
		t.Fatalf("centroids = %d, want 5", len(res.Centroids))
	}
	for i, p := range pts {
		if res.Centroids[res.Labels[i]].Dist(p) > 1e-9 {
			t.Errorf("point %d not matched to its own centroid", i)
		}
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	src := rng.New(6)
	pts := make([]geo.Point, 10)
	for i := range pts {
		pts[i] = geo.Pt(0.5, 0.5)
	}
	res := Cluster(pts, 3, src, Options{})
	if got := Inertia(pts, res); got != 0 {
		t.Errorf("Inertia of identical points = %v, want 0", got)
	}
}

func TestLloydNeverIncreasesInertia(t *testing.T) {
	// Run clustering with increasing iteration caps; inertia must be
	// non-increasing in the cap (Lloyd's monotonicity).
	pts := twoBlobs(rng.New(7), 40)
	prev := -1.0
	for _, iters := range []int{1, 2, 4, 8, 16, 32} {
		res := Cluster(pts, 3, rng.New(99), Options{MaxIterations: iters})
		in := Inertia(pts, res)
		if prev >= 0 && in > prev+1e-9 {
			t.Fatalf("inertia increased from %v to %v at cap %d", prev, in, iters)
		}
		prev = in
	}
}

func TestBalancedBisectEven(t *testing.T) {
	src := rng.New(8)
	for _, n := range []int{0, 1, 2, 3, 10, 101, 500} {
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = src.UniformPoint(geo.UnitSquare)
		}
		side := BalancedBisect(pts, src)
		c0, c1 := 0, 0
		for _, s := range side {
			switch s {
			case 0:
				c0++
			case 1:
				c1++
			default:
				t.Fatalf("n=%d: invalid side %d", n, s)
			}
		}
		if d := c0 - c1; d < 0 || d > 1 {
			t.Errorf("n=%d: unbalanced split %d/%d", n, c0, c1)
		}
	}
}

func TestBalancedBisectRespectsLocality(t *testing.T) {
	src := rng.New(9)
	pts := twoBlobs(src, 30) // perfectly balanced blobs
	side := BalancedBisect(pts, src)
	// Each blob must be wholly on one side.
	for i := 1; i < 30; i++ {
		if side[i] != side[0] {
			t.Fatalf("blob 1 split by balanced bisect")
		}
	}
	for i := 31; i < 60; i++ {
		if side[i] != side[30] {
			t.Fatalf("blob 2 split by balanced bisect")
		}
	}
	if side[0] == side[30] {
		t.Fatal("blobs on same side")
	}
}

func TestBalancedBisectDeterministic(t *testing.T) {
	pts := twoBlobs(rng.New(10), 25)
	a := BalancedBisect(pts, rng.New(42))
	b := BalancedBisect(pts, rng.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BalancedBisect not deterministic for equal seeds")
		}
	}
}
