// Package applyloop is the single-writer mutation plane shared by the
// serving layers: a bounded queue drained by one goroutine that widens the
// first queued mutation into a batch, coalesces the batch last-wins per
// entity (so the grid index and the decompose builder are touched once per
// entity, not once per mutation), hands the survivors to an Applier
// callback under one engine version bump, and acknowledges every enqueuer
// — coalesced mutations included.
//
// There is exactly one implementation of last-wins coalescing, queue-full
// backpressure (ErrQueueFull, mapped to HTTP 429 by the callers), and
// graceful drain (Close stops intake; the loop exits only after applying
// every accepted mutation): internal/serve runs one Loop in front of its
// engine, and internal/cluster runs one Loop per shard.
package applyloop

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// Errors reported by Enqueue, mapped to HTTP statuses by the serving
// layers.
var (
	// ErrQueueFull rejects an enqueue when the mutation queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("applyloop: mutation queue full")
	// ErrClosed rejects an enqueue after Close began (HTTP 503).
	ErrClosed = errors.New("applyloop: loop closed")
)

// Ack reports one mutation's fate after its batch was applied.
type Ack struct {
	// Changed reports whether the engine changed (an effective upsert, a
	// found removal).
	Changed bool
	// Coalesced marks a mutation superseded by a later same-entity
	// mutation within its batch; it never reached the engine.
	Coalesced bool
	// Version is the engine version after the batch.
	Version uint64
	// Err is set when the batch was dropped before reaching the engine —
	// today that means the durability append hook failed (disk full,
	// closed WAL). The mutation was neither logged nor applied; callers
	// surface it as a server error (HTTP 503), never as silent loss.
	Err error
}

// Applier applies one coalesced batch to the engine plane it owns and
// returns the per-mutation changed flags plus the version after the batch.
// It runs on the loop goroutine — the single writer — so it may touch the
// engine freely and is expected to publish the post-batch snapshot before
// returning.
type Applier func(muts []engine.Mutation) (changed []bool, version uint64)

// Config parameterizes a Loop.
type Config struct {
	// Apply drains each coalesced batch. Required.
	Apply Applier
	// Append, when non-nil, durably logs each coalesced batch BEFORE
	// Apply runs (write-ahead logging). If it fails, the batch is dropped
	// without touching the engine and every enqueuer's Ack carries the
	// error — a logged-but-unapplied batch can replay after a crash
	// (harmless: the client never got an ack), but an applied-yet-unlogged
	// batch would be silent data loss. Runs on the loop goroutine.
	Append func(muts []engine.Mutation) error
	// QueueDepth bounds the mutation queue; a full queue rejects enqueues
	// with ErrQueueFull. Default 1024.
	QueueDepth int
	// BatchMax caps how many queued mutations one batch drains. Default 256.
	BatchMax int
	// BatchLinger is how long the loop waits for more mutations after
	// draining the queue dry, to widen batches under bursty load. Default 0
	// (apply immediately whatever is pending).
	BatchLinger time.Duration
	// StallForTest, when non-nil, runs on the loop goroutine after it wakes
	// for a batch's first mutation and before it drains the rest — tests
	// block here to build deterministic batches. Never set in production.
	// It is read only after a queue receive, so setting it before the first
	// Enqueue is properly synchronized.
	StallForTest func()
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	return c
}

// Stats is a point-in-time copy of the loop's counters.
type Stats struct {
	Enqueued     uint64 // mutations accepted into the queue
	Applied      uint64 // mutations applied through the Applier
	Coalesced    uint64 // mutations superseded within their batch
	Batches      uint64 // batches drained
	RejectedFull uint64 // enqueues rejected with ErrQueueFull
	AppendFailed uint64 // batches dropped because the Append hook failed
}

// queued is one mutation in flight, with an optional reply channel
// (buffered by the enqueuer; the loop never blocks on it).
type queued struct {
	mut   engine.Mutation
	reply chan<- Ack
}

// Loop is the single-writer apply loop. Construct with New (which starts
// the goroutine), feed it with Enqueue, and stop it with Close; Drained is
// closed once every accepted mutation has been applied.
type Loop struct {
	cfg     Config
	ch      chan queued
	drained chan struct{}

	mu     sync.RWMutex // guards closed against Enqueue/Close races
	closed bool

	enqueued     atomic.Uint64
	applied      atomic.Uint64
	coalesced    atomic.Uint64
	batches      atomic.Uint64
	rejectedFull atomic.Uint64
	appendFailed atomic.Uint64
}

// New validates the configuration and starts the loop goroutine.
func New(cfg Config) (*Loop, error) {
	if cfg.Apply == nil {
		return nil, errors.New("applyloop: Config.Apply is required")
	}
	cfg = cfg.withDefaults()
	l := &Loop{
		cfg:     cfg,
		ch:      make(chan queued, cfg.QueueDepth),
		drained: make(chan struct{}),
	}
	go l.run()
	return l, nil
}

// Enqueue hands one mutation to the loop, failing fast on a full queue
// (ErrQueueFull) or a closed loop (ErrClosed). reply, when non-nil,
// receives the mutation's Ack after its batch applied; it must be buffered
// by the caller — the loop never blocks on it.
func (l *Loop) Enqueue(mut engine.Mutation, reply chan<- Ack) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return ErrClosed
	}
	select {
	case l.ch <- queued{mut: mut, reply: reply}:
		l.enqueued.Add(1)
		return nil
	default:
		l.rejectedFull.Add(1)
		return ErrQueueFull
	}
}

// Close stops intake: subsequent Enqueues fail with ErrClosed, and the
// loop exits once the queue is fully drained (every accepted mutation
// applied and acknowledged). Idempotent.
func (l *Loop) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		// No Enqueue can be in flight: Enqueue holds mu.RLock and checks
		// closed, which is set here under mu.Lock.
		l.closed = true
		close(l.ch)
	}
}

// Drained is closed when the loop has applied every accepted mutation and
// exited (only after Close).
func (l *Loop) Drained() <-chan struct{} { return l.drained }

// Len returns the current queue length.
func (l *Loop) Len() int { return len(l.ch) }

// Cap returns the queue capacity.
func (l *Loop) Cap() int { return cap(l.ch) }

// Stats returns a copy of the loop's counters.
func (l *Loop) Stats() Stats {
	return Stats{
		Enqueued:     l.enqueued.Load(),
		Applied:      l.applied.Load(),
		Coalesced:    l.coalesced.Load(),
		Batches:      l.batches.Load(),
		RejectedFull: l.rejectedFull.Load(),
		AppendFailed: l.appendFailed.Load(),
	}
}

// run is the single writer. It blocks for the first queued mutation,
// widens it into a batch, applies the batch, and acknowledges the
// enqueuers. It exits only when the queue is closed and fully drained,
// which is what makes the callers' Shutdown lossless.
func (l *Loop) run() {
	defer close(l.drained)
	for {
		qm, ok := <-l.ch
		if !ok {
			return
		}
		if l.cfg.StallForTest != nil {
			l.cfg.StallForTest()
		}
		l.applyBatch(l.fillBatch(qm))
	}
}

// fillBatch grows a batch from the queue: everything already pending is
// drained without waiting (up to BatchMax), and with a positive
// BatchLinger the loop keeps listening that much longer for stragglers —
// widening batches under bursty load at the cost of that much apply
// latency.
func (l *Loop) fillBatch(first queued) []queued {
	batch := append(make([]queued, 0, min(l.cfg.BatchMax, 16)), first)
	var linger <-chan time.Time
	for len(batch) < l.cfg.BatchMax {
		select {
		case qm, ok := <-l.ch:
			if !ok {
				return batch
			}
			batch = append(batch, qm)
		default:
			if l.cfg.BatchLinger <= 0 {
				return batch
			}
			if linger == nil {
				linger = time.After(l.cfg.BatchLinger)
			}
			select {
			case qm, ok := <-l.ch:
				if !ok {
					return batch
				}
				batch = append(batch, qm)
			case <-linger:
				return batch
			}
		}
	}
	return batch
}

// applyBatch coalesces the batch (last mutation per entity wins — the
// engine state after applying every mutation in order is identical, but
// the engine plane is touched once per entity instead of once per
// mutation), applies it through the Applier, and acknowledges every
// enqueuer, coalesced mutations included.
func (l *Loop) applyBatch(batch []queued) {
	lastTask := make(map[model.TaskID]int)
	lastWorker := make(map[model.WorkerID]int)
	for i, qm := range batch {
		tid, wid, isTask := qm.mut.EntityKey()
		if isTask {
			lastTask[tid] = i
		} else {
			lastWorker[wid] = i
		}
	}
	muts := make([]engine.Mutation, 0, len(lastTask)+len(lastWorker))
	kept := make([]int, 0, len(lastTask)+len(lastWorker))
	for i, qm := range batch {
		tid, wid, isTask := qm.mut.EntityKey()
		if (isTask && lastTask[tid] == i) || (!isTask && lastWorker[wid] == i) {
			muts = append(muts, qm.mut)
			kept = append(kept, i)
		}
	}

	if l.cfg.Append != nil {
		if err := l.cfg.Append(muts); err != nil {
			// WAL-before-apply: an unloggable batch never reaches the
			// engine. Acknowledge everyone with the error so the serving
			// layer reports it instead of silently losing the mutations.
			l.appendFailed.Add(1)
			for _, qm := range batch {
				if qm.reply != nil {
					qm.reply <- Ack{Err: err} // buffered by the enqueuer; never blocks
				}
			}
			return
		}
	}

	changed, version := l.cfg.Apply(muts)

	l.batches.Add(1)
	l.applied.Add(uint64(len(muts)))
	l.coalesced.Add(uint64(len(batch) - len(muts)))

	acks := make([]Ack, len(batch))
	for i := range acks {
		acks[i] = Ack{Coalesced: true, Version: version}
	}
	for k, i := range kept {
		acks[i] = Ack{Changed: changed[k], Version: version}
	}
	for i, qm := range batch {
		if qm.reply != nil {
			qm.reply <- acks[i] // buffered by the enqueuer; never blocks
		}
	}
}
