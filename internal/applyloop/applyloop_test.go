package applyloop

import (
	"errors"
	"sync"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// countingApplier records every batch it is handed and bumps a version per
// batch.
type countingApplier struct {
	mu      sync.Mutex
	batches [][]engine.Mutation
	version uint64
}

func (a *countingApplier) apply(muts []engine.Mutation) ([]bool, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.batches = append(a.batches, append([]engine.Mutation(nil), muts...))
	a.version++
	changed := make([]bool, len(muts))
	for i := range changed {
		changed[i] = true
	}
	return changed, a.version
}

func task(id int, x float64) engine.Mutation {
	return engine.TaskUpsert(model.Task{ID: model.TaskID(id), Loc: geo.Pt(x, 0.5), End: 4})
}

func TestNewRequiresApplier(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Apply should fail")
	}
}

// TestCoalescingLastWins: same-entity mutations queued into one batch reach
// the applier once, as the last version, and every enqueuer — coalesced
// included — is acknowledged with the batch version.
func TestCoalescingLastWins(t *testing.T) {
	ap := &countingApplier{}
	release := make(chan struct{})
	var stallOnce sync.Once
	l, err := New(Config{
		Apply: ap.apply,
		// Stall the loop on the first mutation so the rest of the burst
		// queues behind it into one batch.
		StallForTest: func() { stallOnce.Do(func() { <-release }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	reply := make(chan Ack, 4)
	if err := l.Enqueue(task(1, 0.1), reply); err != nil {
		t.Fatal(err)
	}
	if err := l.Enqueue(task(1, 0.2), reply); err != nil {
		t.Fatal(err)
	}
	if err := l.Enqueue(task(1, 0.3), reply); err != nil {
		t.Fatal(err)
	}
	if err := l.Enqueue(task(2, 0.9), reply); err != nil {
		t.Fatal(err)
	}
	close(release)

	coalesced := 0
	for i := 0; i < 4; i++ {
		a := <-reply
		if a.Coalesced {
			coalesced++
		}
		if a.Version != 1 {
			t.Errorf("ack %d version %d, want 1", i, a.Version)
		}
	}
	if coalesced != 2 {
		t.Errorf("%d acks coalesced, want 2 (two superseded task-1 upserts)", coalesced)
	}
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if len(ap.batches) != 1 || len(ap.batches[0]) != 2 {
		t.Fatalf("applier saw %d batches %v, want one batch of 2", len(ap.batches), ap.batches)
	}
	if ap.batches[0][0].Task.Loc.X != 0.3 {
		t.Errorf("survivor for task 1 is the upsert at x=%v, want the last one (0.3)", ap.batches[0][0].Task.Loc.X)
	}
	st := l.Stats()
	if st.Enqueued != 4 || st.Applied != 2 || st.Coalesced != 2 || st.Batches != 1 {
		t.Errorf("stats %+v, want enqueued 4 / applied 2 / coalesced 2 / batches 1", st)
	}
}

// TestQueueFullBackpressure: a stalled loop with a full queue rejects with
// ErrQueueFull and counts the rejection.
func TestQueueFullBackpressure(t *testing.T) {
	ap := &countingApplier{}
	release := make(chan struct{})
	var stallOnce sync.Once
	l, err := New(Config{
		Apply:        ap.apply,
		QueueDepth:   2,
		StallForTest: func() { stallOnce.Do(func() { <-release }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// First enqueue wakes the loop (which stalls holding it); two more fill
	// the depth-2 queue. The wake is asynchronous, so wait until the loop
	// has taken the first mutation off the channel before filling.
	if err := l.Enqueue(task(1, 0.1), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop never picked up the first mutation")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Enqueue(task(2, 0.2), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Enqueue(task(3, 0.3), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Enqueue(task(4, 0.4), nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue into a full queue returned %v, want ErrQueueFull", err)
	}
	if st := l.Stats(); st.RejectedFull != 1 {
		t.Errorf("RejectedFull = %d, want 1", st.RejectedFull)
	}
	close(release)
}

// TestCloseDrainsLosslessly: Close stops intake immediately but every
// accepted mutation still applies before Drained closes.
func TestCloseDrainsLosslessly(t *testing.T) {
	ap := &countingApplier{}
	release := make(chan struct{})
	var stallOnce sync.Once
	l, err := New(Config{
		Apply:        ap.apply,
		StallForTest: func() { stallOnce.Do(func() { <-release }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if err := l.Enqueue(task(i, float64(i)/10), nil); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l.Close() // idempotent
	if err := l.Enqueue(task(99, 0.9), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after Close returned %v, want ErrClosed", err)
	}
	close(release)
	select {
	case <-l.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("loop never drained")
	}
	if st := l.Stats(); st.Applied != 8 {
		t.Errorf("drained loop applied %d mutations, want all 8", st.Applied)
	}
}
