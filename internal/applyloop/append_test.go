package applyloop

import (
	"errors"
	"sync"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// TestAppendRunsBeforeApply pins write-ahead ordering: the Append hook sees
// every coalesced batch before the Applier does, with identical contents.
func TestAppendRunsBeforeApply(t *testing.T) {
	var mu sync.Mutex
	var order []string
	loop, err := New(Config{
		Append: func(muts []engine.Mutation) error {
			mu.Lock()
			order = append(order, "append")
			mu.Unlock()
			return nil
		},
		Apply: func(muts []engine.Mutation) ([]bool, uint64) {
			mu.Lock()
			order = append(order, "apply")
			mu.Unlock()
			return make([]bool, len(muts)), 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reply := make(chan Ack, 1)
	if err := loop.Enqueue(engine.TaskRemoval(1), reply); err != nil {
		t.Fatal(err)
	}
	ack := <-reply
	if ack.Err != nil {
		t.Fatalf("ack error: %v", ack.Err)
	}
	loop.Close()
	<-loop.Drained()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "append" || order[1] != "apply" {
		t.Fatalf("hook order %v, want [append apply]", order)
	}
}

// TestAppendFailureDropsBatch pins the no-silent-loss contract: when the
// durability hook fails, the batch never reaches the engine and every
// enqueuer — coalesced mutations included — gets the error in its Ack.
func TestAppendFailureDropsBatch(t *testing.T) {
	boom := errors.New("disk full")
	applied := false
	release := make(chan struct{})
	loop, err := New(Config{
		QueueDepth: 16,
		Append:     func([]engine.Mutation) error { return boom },
		Apply: func(muts []engine.Mutation) ([]bool, uint64) {
			applied = true
			return make([]bool, len(muts)), 2
		},
		StallForTest: func() { <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two mutations on the same task: the first coalesces away, and its
	// ack must still carry the append error.
	r1, r2 := make(chan Ack, 1), make(chan Ack, 1)
	if err := loop.Enqueue(engine.TaskUpsert(model.Task{ID: 5}), r1); err != nil {
		t.Fatal(err)
	}
	if err := loop.Enqueue(engine.TaskRemoval(5), r2); err != nil {
		t.Fatal(err)
	}
	close(release)
	for i, r := range []chan Ack{r1, r2} {
		select {
		case ack := <-r:
			if !errors.Is(ack.Err, boom) {
				t.Fatalf("ack %d error = %v, want the append error", i, ack.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("ack %d never arrived", i)
		}
	}
	loop.Close()
	<-loop.Drained()
	if applied {
		t.Fatal("batch reached the Applier despite the append failure")
	}
	if st := loop.Stats(); st.AppendFailed != 1 || st.Applied != 0 {
		t.Fatalf("stats %+v, want AppendFailed=1 Applied=0", st)
	}
}
