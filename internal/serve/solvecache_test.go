package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestSolveCacheLRUSemantics(t *testing.T) {
	var nc *SolveCache // disabled cache: every method is a safe no-op
	if _, ok := nc.Get(SolveCacheKey{}, nil, 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	nc.Put(SolveCacheKey{}, nil, 0, "x")
	if nc.Len() != 0 || nc.Stats() != (SolveCacheStats{}) {
		t.Fatal("nil cache reported state")
	}
	if NewSolveCache(0) != nil {
		t.Fatal("NewSolveCache(0) should be nil (disabled)")
	}

	c := NewSolveCache(2)
	k1 := SolveCacheKey{Fingerprint: 1, Solver: "g", Seed: 1}
	k2 := SolveCacheKey{Fingerprint: 2, Solver: "g", Seed: 1}
	k3 := SolveCacheKey{Fingerprint: 3, Solver: "g", Seed: 1}
	c.Put(k1, []uint64{1}, 0, "a")
	c.Put(k2, []uint64{2}, 0, "b")
	if v, ok := c.Get(k1, []uint64{1}, 0); !ok || v != "a" {
		t.Fatalf("Get(k1) = (%v, %v), want (a, true)", v, ok)
	}
	// k1 was just used, so inserting k3 must evict k2.
	c.Put(k3, []uint64{3}, 0, "c")
	if _, ok := c.Get(k2, []uint64{2}, 0); ok {
		t.Fatal("k2 survived past capacity; LRU eviction broken")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}

	// A fingerprint collision (same key, different exact state) must miss
	// AND drop the stale entry.
	if _, ok := c.Get(k1, []uint64{9}, 0); ok {
		t.Fatal("collision Get returned a hit")
	}
	if _, ok := c.Get(k1, []uint64{1}, 0); ok {
		t.Fatal("stale collided entry was not dropped")
	}

	// routeGen participates in the exact-state check.
	c.Put(k1, []uint64{1}, 5, "r")
	if _, ok := c.Get(k1, []uint64{1}, 6); ok {
		t.Fatal("routeGen mismatch returned a hit")
	}
	if v, ok := c.Get(k1, []uint64{1}, 5); ok || v != nil {
		t.Fatal("entry should have been dropped after the routeGen mismatch")
	}
}

// TestSolveCacheHTTP drives the full serve-plane contract: a repeat solve
// against an unchanged snapshot replays the identical answer flagged
// cached, and any applied mutation batch invalidates by construction.
func TestSolveCacheHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{SolverName: "greedy", SolveCache: 8})
	for i := 0; i < 4; i++ {
		doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(i))
		doJSON(t, "POST", ts.URL+"/v1/workers", testWorker(i))
	}

	_, first := doJSON(t, "POST", ts.URL+"/v1/solve", `{"seed":7}`)
	if first["cached"] == true {
		t.Fatal("first solve reported cached")
	}
	_, second := doJSON(t, "POST", ts.URL+"/v1/solve", `{"seed":7}`)
	if second["cached"] != true {
		t.Fatalf("repeat solve not served from cache: %v", second)
	}
	for _, field := range []string{"version", "assignment", "min_reliability", "total_diversity", "solver", "seed"} {
		if !reflect.DeepEqual(first[field], second[field]) {
			t.Fatalf("cached %s diverged: %v vs %v", field, first[field], second[field])
		}
	}

	// A different seed is a different request identity: miss.
	_, other := doJSON(t, "POST", ts.URL+"/v1/solve", `{"seed":8}`)
	if other["cached"] == true {
		t.Fatal("different seed hit the cache")
	}

	// Any applied batch bumps the snapshot version; the old entries can
	// never be served again.
	doJSON(t, "POST", ts.URL+"/v1/workers", testWorker(99))
	_, third := doJSON(t, "POST", ts.URL+"/v1/solve", `{"seed":7}`)
	if third["cached"] == true {
		t.Fatal("solve after a mutation batch hit the cache")
	}
	if third["version"] == second["version"] {
		t.Fatal("version did not advance after the mutation batch")
	}

	_, stats := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	if hits := stats["solve_cache_hits"].(float64); hits != 1 {
		t.Fatalf("solve_cache_hits = %v, want 1", hits)
	}
	if misses := stats["solve_cache_misses"].(float64); misses != 3 {
		t.Fatalf("solve_cache_misses = %v, want 3", misses)
	}
	// Cache hits answer without running a solver.
	if solves := stats["solves"].(float64); solves != 3 {
		t.Fatalf("solves = %v, want 3 (hits must not count)", solves)
	}
	_ = s
}

// TestSolveCacheHammer races solves (alternating seeds) against mutation
// batches through a tiny cache; the race detector is the assertion.
func TestSolveCacheHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{SolverName: "greedy", SolveCache: 2})
	for i := 0; i < 3; i++ {
		doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(i))
		doJSON(t, "POST", ts.URL+"/v1/workers", testWorker(i))
	}
	const iters = 30
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g == 3 {
					// One goroutine churns the engine to force invalidations.
					_, _, err := tryJSON("POST", ts.URL+"/v1/workers", testWorker(100+i))
					if err != nil {
						t.Error(err)
						return
					}
					continue
				}
				body := fmt.Sprintf(`{"seed":%d}`, g%2)
				code, _, err := tryJSON("POST", ts.URL+"/v1/solve", body)
				if err != nil || code != 200 {
					t.Errorf("solve: code=%d err=%v", code, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
