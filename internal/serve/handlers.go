package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"rdbsc/internal/adaptive"
	"rdbsc/internal/benchreport"
	"rdbsc/internal/core"
	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/store"
)

// routes wires the HTTP/JSON API.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", s.handleUpsertTasks)
	mux.HandleFunc("DELETE /v1/tasks/{id}", s.handleRemoveTask)
	mux.HandleFunc("POST /v1/workers", s.handleUpsertWorkers)
	mux.HandleFunc("DELETE /v1/workers/{id}", s.handleRemoveWorker)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/assignment", s.handleAssignment)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// TaskJSON is the wire form of a task, mirroring the dataset CSV columns
// (id,x,y,start,end). It is exported so HTTP clients in this repository
// (rdbsc-loadgen's replay) share the schema with the server at compile
// time instead of duplicating JSON tags.
type TaskJSON struct {
	ID    model.TaskID `json:"id"`
	X     float64      `json:"x"`
	Y     float64      `json:"y"`
	Start float64      `json:"start"`
	End   float64      `json:"end"`
}

// NewTaskJSON converts a task to its wire form.
func NewTaskJSON(t model.Task) TaskJSON {
	return TaskJSON{ID: t.ID, X: t.Loc.X, Y: t.Loc.Y, Start: t.Start, End: t.End}
}

// ToModel converts the wire form back to a task.
func (t TaskJSON) ToModel() model.Task {
	return model.Task{ID: t.ID, Loc: geo.Pt(t.X, t.Y), Start: t.Start, End: t.End}
}

// WorkerJSON is the wire form of a worker, mirroring the dataset CSV
// columns (id,x,y,speed,dir_lo,dir_width,confidence,depart); omitting
// dir_width leaves the worker's direction cone unconstrained.
type WorkerJSON struct {
	ID         model.WorkerID `json:"id"`
	X          float64        `json:"x"`
	Y          float64        `json:"y"`
	Speed      float64        `json:"speed"`
	DirLo      float64        `json:"dir_lo"`
	DirWidth   *float64       `json:"dir_width,omitempty"`
	Confidence float64        `json:"confidence"`
	Depart     float64        `json:"depart"`
}

// NewWorkerJSON converts a worker to its wire form (the direction cone is
// always spelled out, even when it is the full circle).
func NewWorkerJSON(w model.Worker) WorkerJSON {
	width := w.Dir.Width
	return WorkerJSON{
		ID: w.ID, X: w.Loc.X, Y: w.Loc.Y, Speed: w.Speed,
		DirLo: w.Dir.Lo, DirWidth: &width,
		Confidence: w.Confidence, Depart: w.Depart,
	}
}

// ToModel converts the wire form back to a worker.
func (w WorkerJSON) ToModel() model.Worker {
	dir := geo.FullCircle
	if w.DirWidth != nil {
		dir = geo.AngInterval{Lo: geo.NormalizeAngle(w.DirLo), Width: *w.DirWidth}
	}
	return model.Worker{
		ID: w.ID, Loc: geo.Pt(w.X, w.Y), Speed: w.Speed,
		Dir: dir, Confidence: w.Confidence, Depart: w.Depart,
	}
}

// DecodeBody reads the request body as either a single T or a JSON array
// of T, capped at 8 MiB. Exported for the cluster layer, which accepts the
// same wire forms.
func DecodeBody[T any](r *http.Request) ([]T, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	body = bytes.TrimSpace(body)
	if len(body) == 0 {
		return nil, errors.New("empty request body")
	}
	if body[0] == '[' {
		var list []T
		if err := json.Unmarshal(body, &list); err != nil {
			return nil, err
		}
		return list, nil
	}
	var one T
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, err
	}
	return []T{one}, nil
}

// enqueueAndWait queues the mutations and blocks until their batch (or
// batches — a large request may straddle several) applied, reporting the
// aggregate. Backpressure surfaces as 429 with the count already accepted
// (those still apply); a request context that ends first gets 202, since
// the accepted mutations remain queued and will apply.
func (s *Server) enqueueAndWait(w http.ResponseWriter, r *http.Request, muts []mutationIntent) {
	reply := make(chan applyAck, len(muts))
	for i, m := range muts {
		if err := s.enqueue(queuedMutation{mut: m.mut, reply: reply}); err != nil {
			status := http.StatusTooManyRequests
			if errors.Is(err, ErrShuttingDown) {
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, map[string]any{"error": err.Error(), "enqueued": i})
			return
		}
	}
	var changed, coalesced int
	var version uint64
	var ackErr error
	for n := 0; n < len(muts); n++ {
		select {
		case ack := <-reply:
			if ack.Err != nil {
				ackErr = ack.Err
			}
			if ack.Changed {
				changed++
			}
			if ack.Coalesced {
				coalesced++
			}
			if ack.Version > version {
				version = ack.Version
			}
		case <-r.Context().Done():
			writeJSON(w, http.StatusAccepted, map[string]any{
				"queued": len(muts),
				"note":   "request ended before the batch applied; the mutations remain queued",
			})
			return
		}
	}
	if ackErr != nil {
		// The durability append failed, so the batch was dropped before
		// reaching the engine: report the loss loudly (503), never silently.
		writeError(w, http.StatusServiceUnavailable, ackErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted":  len(muts),
		"applied":   len(muts) - coalesced, // what actually reached the engine
		"changed":   changed,
		"coalesced": coalesced,
		"version":   version,
	})
}

// mutationIntent pairs a mutation with nothing else for now; a named type
// keeps enqueueAndWait's signature honest about taking validated intents.
type mutationIntent struct{ mut engine.Mutation }

func (s *Server) handleUpsertTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := DecodeBody[TaskJSON](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	muts := make([]mutationIntent, 0, len(tasks))
	for _, tj := range tasks {
		t := tj.ToModel()
		if err := t.Valid(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		muts = append(muts, mutationIntent{engine.TaskUpsert(t)})
	}
	s.enqueueAndWait(w, r, muts)
}

func (s *Server) handleUpsertWorkers(w http.ResponseWriter, r *http.Request) {
	workers, err := DecodeBody[WorkerJSON](r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	muts := make([]mutationIntent, 0, len(workers))
	for _, wj := range workers {
		wk := wj.ToModel()
		if err := wk.Valid(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		muts = append(muts, mutationIntent{engine.WorkerUpsert(wk)})
	}
	s.enqueueAndWait(w, r, muts)
}

// handleRemove queues a single removal and reports whether the entity was
// present ("removed"). A removal superseded within its batch by a later
// mutation of the same entity reports "coalesced" instead.
func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request, mut engine.Mutation) {
	reply := make(chan applyAck, 1)
	if err := s.enqueue(queuedMutation{mut: mut, reply: reply}); err != nil {
		status := http.StatusTooManyRequests
		if errors.Is(err, ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	select {
	case ack := <-reply:
		if ack.Err != nil {
			writeError(w, http.StatusServiceUnavailable, ack.Err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"removed": ack.Changed, "coalesced": ack.Coalesced, "version": ack.Version,
		})
	case <-r.Context().Done():
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": 1})
	}
}

func (s *Server) handleRemoveTask(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.handleRemove(w, r, engine.TaskRemoval(model.TaskID(id)))
}

func (s *Server) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.handleRemove(w, r, engine.WorkerRemoval(model.WorkerID(id)))
}

// SolveRequest configures one /v1/solve call. All fields are optional.
type SolveRequest struct {
	// Solver overrides the server's default solver by registry name.
	Solver string `json:"solver,omitempty"`
	// Seed seeds the solve (0 means the solver default).
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS bounds the solve; it is clamped to the server's
	// SolveTimeout. On expiry the best partial assignment is returned with
	// "partial": true.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// AssignedPair is one (worker, task) edge of a returned assignment.
type AssignedPair struct {
	Worker model.WorkerID `json:"worker"`
	Task   model.TaskID   `json:"task"`
}

// SolveResponse is the /v1/solve answer, also stored as the current
// assignment for GET /v1/assignment.
type SolveResponse struct {
	Version        uint64 `json:"version"`
	CurrentVersion uint64 `json:"current_version,omitempty"`
	Solver         string `json:"solver"`
	Seed           int64  `json:"seed"`
	Partial        bool   `json:"partial"`
	Feasible       bool   `json:"feasible"`
	// Cached is true when the response was replayed from the solve cache
	// (bit-identical to re-solving; ElapsedMS and At are the original
	// solve's).
	Cached bool `json:"cached,omitempty"`
	// Degraded marks a graceful-degradation answer from the adaptive tier:
	// the predicted solve time exceeded the SLO budget, so this is the
	// cached last assignment rather than a fresh solve. StaleMS is its
	// explicit staleness bound — wall milliseconds since the served
	// assignment was computed, never more than the server's -max-stale.
	Degraded bool    `json:"degraded,omitempty"`
	StaleMS  float64 `json:"stale_ms,omitempty"`
	// Lanes breaks an adaptive solve down by lane: how many component
	// solves ran on each (absent outside adaptive mode).
	Lanes           map[string]int `json:"lanes,omitempty"`
	ElapsedMS       float64        `json:"elapsed_ms"`
	AssignedWorkers int            `json:"assigned_workers"`
	AssignedTasks   int            `json:"assigned_tasks"`
	MinReliability  float64        `json:"min_reliability"`
	TotalDiversity  float64        `json:"total_diversity"`
	Assignment      []AssignedPair `json:"assignment"`
	Stats           core.Stats     `json:"stats"`
	At              time.Time      `json:"at"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	// The snapshot is pinned for the whole solve: batches applied while the
	// solver runs replace the published pointer but never touch this view.
	snap := *s.snap.Load()

	// The adaptive tier handles only requests that name no solver: an
	// explicit solver is a contract (the client asked for that algorithm's
	// exact answer) the controller must not override.
	var solver core.Solver
	var dispatcher *adaptive.Solver
	adaptiveActive := s.adapt != nil && req.Solver == ""
	if adaptiveActive {
		plan := s.adapt.ctrl.PlanRequest(s.adapt.shapeFor(&snap))
		if plan.OverBudget {
			// Even the minimum-effort plan is predicted over budget: serve
			// the last assignment within the staleness bound, shed with 429
			// only when none exists — admission control as final backstop.
			if resp, ok := s.adapt.degradeResponse(s.lastRes.Load(), snap.Version); ok {
				s.adapt.ctrl.NoteDegraded(true)
				writeJSON(w, http.StatusOK, resp)
				return
			}
			s.adapt.ctrl.NoteDegraded(false)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				errors.New("predicted solve time exceeds the SLO budget and no assignment within the staleness bound exists"))
			return
		}
		dispatcher = adaptive.NewSolver(s.adapt.ctrl)
		// Sharded dispatch: the wrapper hands each connected component to
		// the dispatcher, which routes it to its own lane.
		solver = core.NewSharded(dispatcher)
	} else {
		name := req.Solver
		if name == "" {
			name = s.cfg.SolverName
		}
		// A fresh solver instance per request: registry factories are cheap
		// and nothing is shared across concurrent solves.
		named, err := core.NewByName(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if _, sharded := named.(*core.Sharded); s.shardSolves && !sharded {
			// The engine decomposes by connected components; snapshot-plane
			// solves keep that semantics (minus the engine's cross-batch
			// result cache, which needs the single-writer plane).
			named = core.NewSharded(named)
		}
		solver = named
	}

	timeout := s.cfg.SolveTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	key := SolveCacheKey{Fingerprint: snap.Version, Solver: solver.Name(), Seed: req.Seed}
	if v, ok := s.cache.Get(key, []uint64{snap.Version}, 0); ok {
		resp := *v.(*SolveResponse) // shallow copy; the cached value is never mutated
		resp.Cached = true
		s.lastRes.Store(&resp)
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	start := time.Now()
	res, err := solver.Solve(ctx, snap.Problem, &core.SolveOptions{Seed: req.Seed})
	elapsed := time.Since(start)

	if adaptiveActive {
		// Close the headroom loop on the observed request latency (the
		// per-lane coefficients were fed per component by the dispatcher).
		s.adapt.ctrl.ObserveRequest(elapsed)
	}
	s.solves.Add(1)
	partial := errors.Is(err, core.ErrInterrupted)
	if partial {
		s.partials.Add(1)
	}
	if err != nil && !partial {
		if errors.Is(err, core.ErrPopulationTooLarge) {
			// A request-shaped refusal, like an unknown solver name: the
			// client picked exhaustive on an instance over its cap.
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		s.solveErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.statsMu.Lock()
	s.solveStats = s.solveStats.Add(res.Stats)
	s.statsMu.Unlock()
	s.recordSolveLatency(float64(elapsed) / float64(time.Millisecond))

	pairs := make([]AssignedPair, 0, res.Assignment.Len())
	res.Assignment.Workers(func(wid model.WorkerID, tid model.TaskID) {
		pairs = append(pairs, AssignedPair{Worker: wid, Task: tid})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Worker < pairs[j].Worker })

	resp := &SolveResponse{
		Version:         snap.Version,
		Solver:          solver.Name(),
		Seed:            req.Seed,
		Partial:         partial,
		Feasible:        len(pairs) > 0,
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
		AssignedWorkers: res.Eval.AssignedWorkers,
		AssignedTasks:   res.Eval.AssignedTasks,
		MinReliability:  res.Eval.MinRel,
		TotalDiversity:  res.Eval.TotalESTD,
		Assignment:      pairs,
		Stats:           res.Stats,
		At:              time.Now().UTC(),
	}
	if dispatcher != nil {
		resp.Lanes = dispatcher.LaneCounts()
	}
	s.lastRes.Store(resp)
	if err == nil {
		// Only clean, complete solves are cached; a partial depends on how
		// far the deadline let the solver run, which is not a state key.
		s.cache.Put(key, []uint64{snap.Version}, 0, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAssignment serves the most recently computed assignment, stamped
// with the engine version it was solved at and the current version (equal
// when no batch applied since).
func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	last := s.lastRes.Load()
	if last == nil {
		writeError(w, http.StatusNotFound, errors.New("no solve has completed yet"))
		return
	}
	resp := *last // shallow copy; the stored value is never mutated
	resp.CurrentVersion = s.snap.Load().Version
	writeJSON(w, http.StatusOK, &resp)
}

// statsResponse is the /v1/stats view: the snapshot's shape, the mutation
// plane's batching counters, and the solver plane's cumulative core.Stats.
type statsResponse struct {
	Version uint64  `json:"version"`
	Tasks   int     `json:"tasks"`
	Workers int     `json:"workers"`
	Pairs   int     `json:"pairs"`
	Beta    float64 `json:"beta"`

	QueueLen          int     `json:"queue_len"`
	QueueCap          int     `json:"queue_cap"`
	Enqueued          uint64  `json:"mutations_enqueued"`
	Applied           uint64  `json:"mutations_applied"`
	Coalesced         uint64  `json:"mutations_coalesced"`
	Batches           uint64  `json:"batches"`
	Rebuilds          uint64  `json:"rebuilds"`
	RetrieveMS        float64 `json:"retrieve_ms"`
	RejectedQueueFull uint64  `json:"rejected_queue_full"`

	Solves      uint64     `json:"solves"`
	SolveErrors uint64     `json:"solve_errors"`
	Partials    uint64     `json:"partial_solves"`
	SolverStats core.Stats `json:"solver_stats"`

	// Solve-cache counters (all zero when the cache is disabled). A hit is
	// a /v1/solve request answered without running a solver.
	SolveCacheHits      uint64 `json:"solve_cache_hits"`
	SolveCacheMisses    uint64 `json:"solve_cache_misses"`
	SolveCacheEvictions uint64 `json:"solve_cache_evictions"`
	// SolveLatencyMS summarizes the most recent solves (up to the latency
	// ring's capacity), completed and partial alike.
	SolveLatencyMS benchreport.Quantiles `json:"solve_latency_ms"`

	// Adaptive is the latency-SLO tier's controller state (per-lane
	// counters and learned costs, thresholds, degrade/shed accounting);
	// absent when -adaptive is off.
	Adaptive *adaptive.Stats `json:"adaptive,omitempty"`

	Durability DurabilityJSON `json:"durability"`

	UptimeMS float64 `json:"uptime_ms"`
}

// DurabilityJSON is the stats view of the durability plane. The cluster
// layer reports one per shard plus an aggregate.
type DurabilityJSON struct {
	Backend           string `json:"backend"`
	WALAppends        uint64 `json:"wal_appends"`
	WALSyncs          uint64 `json:"wal_syncs"`
	WALAppendFailures uint64 `json:"wal_append_failures"`
	Snapshots         uint64 `json:"snapshots"`
	SnapshotErrors    uint64 `json:"snapshot_errors"`
	RecoveredBatches  uint64 `json:"recovered_batches"`
}

// NewDurabilityJSON assembles the stats view for one store: the backend
// label and WAL counters come from the store itself (via the optional
// Backend/Stats interfaces the built-in backends implement), the failure
// and recovery counters from the serving layer that wraps it.
func NewDurabilityJSON(st store.Store, appendFailures, snapshotErrors, recoveredBatches uint64) DurabilityJSON {
	d := DurabilityJSON{
		Backend:           "custom",
		WALAppendFailures: appendFailures,
		SnapshotErrors:    snapshotErrors,
		RecoveredBatches:  recoveredBatches,
	}
	if b, ok := st.(interface{ Backend() string }); ok {
		d.Backend = b.Backend()
	}
	if s, ok := st.(interface{ Stats() store.FileStats }); ok {
		fs := s.Stats()
		d.WALAppends = fs.Appends
		d.WALSyncs = fs.Syncs
		d.Snapshots = fs.Snapshots
	}
	return d
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	loopStats := s.loop.Stats()
	cacheStats := s.cache.Stats()
	s.statsMu.Lock()
	solverStats := s.solveStats
	s.statsMu.Unlock()
	writeJSON(w, http.StatusOK, &statsResponse{
		Version: snap.Version,
		Tasks:   snap.Tasks(),
		Workers: snap.Workers(),
		Pairs:   len(snap.Problem.Pairs),
		Beta:    snap.Problem.In.Beta,

		QueueLen:          s.loop.Len(),
		QueueCap:          s.loop.Cap(),
		Enqueued:          loopStats.Enqueued,
		Applied:           loopStats.Applied,
		Coalesced:         loopStats.Coalesced,
		Batches:           loopStats.Batches,
		Rebuilds:          s.rebuilds.Load(),
		RetrieveMS:        float64(s.retrieveNS.Load()) / float64(time.Millisecond),
		RejectedQueueFull: loopStats.RejectedFull,

		Solves:         s.solves.Load(),
		SolveErrors:    s.solveErrors.Load(),
		Partials:       s.partials.Load(),
		SolverStats:    solverStats,
		SolveLatencyMS: benchreport.Summarize(s.latencySample()),

		SolveCacheHits:      cacheStats.Hits,
		SolveCacheMisses:    cacheStats.Misses,
		SolveCacheEvictions: cacheStats.Evictions,

		Adaptive: s.adaptiveStats(),

		Durability: NewDurabilityJSON(s.store, loopStats.AppendFailed, s.snapErrors.Load(), s.recoveredBatches),

		UptimeMS: float64(time.Since(s.started)) / float64(time.Millisecond),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"version": s.snap.Load().Version,
	})
}
