package serve

import (
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// applyLoop is the single writer: the only goroutine that touches the
// engine after New. It blocks for the first queued mutation, widens it
// into a batch, applies the batch, publishes the resulting snapshot, and
// acknowledges the enqueuers. It exits only when the queue is closed and
// fully drained, which is what makes Shutdown lossless.
func (s *Server) applyLoop() {
	defer close(s.done)
	for {
		qm, ok := <-s.mutCh
		if !ok {
			return
		}
		if s.testStallApply != nil {
			s.testStallApply()
		}
		s.applyBatch(s.fillBatch(qm))
	}
}

// fillBatch grows a batch from the queue: everything already pending is
// drained without waiting (up to BatchMax), and with a positive
// BatchLinger the loop keeps listening that much longer for stragglers —
// widening batches under bursty load at the cost of that much apply
// latency.
func (s *Server) fillBatch(first queuedMutation) []queuedMutation {
	batch := append(make([]queuedMutation, 0, min(s.cfg.BatchMax, 16)), first)
	var linger <-chan time.Time
	for len(batch) < s.cfg.BatchMax {
		select {
		case qm, ok := <-s.mutCh:
			if !ok {
				return batch
			}
			batch = append(batch, qm)
		default:
			if s.cfg.BatchLinger <= 0 {
				return batch
			}
			if linger == nil {
				linger = time.After(s.cfg.BatchLinger)
			}
			select {
			case qm, ok := <-s.mutCh:
				if !ok {
					return batch
				}
				batch = append(batch, qm)
			case <-linger:
				return batch
			}
		}
	}
	return batch
}

// applyBatch coalesces the batch (last mutation per entity wins — the
// engine state after applying every mutation in order is identical, but
// the grid index and the decompose builder are touched once per entity
// instead of once per mutation), applies it under one engine version bump,
// publishes the new snapshot, and acknowledges every enqueuer, coalesced
// mutations included.
func (s *Server) applyBatch(batch []queuedMutation) {
	lastTask := make(map[model.TaskID]int)
	lastWorker := make(map[model.WorkerID]int)
	for i, qm := range batch {
		tid, wid, isTask := qm.mut.EntityKey()
		if isTask {
			lastTask[tid] = i
		} else {
			lastWorker[wid] = i
		}
	}
	muts := make([]engine.Mutation, 0, len(lastTask)+len(lastWorker))
	kept := make([]int, 0, len(lastTask)+len(lastWorker))
	for i, qm := range batch {
		tid, wid, isTask := qm.mut.EntityKey()
		if (isTask && lastTask[tid] == i) || (!isTask && lastWorker[wid] == i) {
			muts = append(muts, qm.mut)
			kept = append(kept, i)
		}
	}

	changed := s.eng.ApplyBatch(muts)
	// Snapshot re-derives the valid pairs here, on the apply loop, so solve
	// requests always find a prepared problem and never pay the rebuild.
	snap := s.eng.Snapshot()
	s.snap.Store(&snap)

	s.batches.Add(1)
	s.applied.Add(uint64(len(muts)))
	s.coalesced.Add(uint64(len(batch) - len(muts)))
	if snap.Rebuilt {
		s.rebuilds.Add(1)
		s.retrieveNS.Add(int64(snap.Retrieve))
	}

	acks := make([]applyAck, len(batch))
	for i := range acks {
		acks[i] = applyAck{coalesced: true, version: snap.Version}
	}
	for k, i := range kept {
		acks[i] = applyAck{changed: changed[k], version: snap.Version}
	}
	for i, qm := range batch {
		if qm.reply != nil {
			qm.reply <- acks[i] // buffered by the enqueuer; never blocks
		}
	}
}
