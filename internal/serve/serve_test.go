package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/engine"
	"rdbsc/internal/gen"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// Test solvers, registered once per binary. "test-sleep" parks until its
// deadline and returns an empty partial result (the ErrInterrupted path);
// "test-capture" publishes the problem it was handed and parks until
// released, so tests can churn the engine mid-solve.
var (
	captureProblem = make(chan *core.Problem, 8)
	captureRelease = make(chan struct{})
)

type sleepSolver struct{}

func (sleepSolver) Name() string { return "TEST-SLEEP" }
func (sleepSolver) Solve(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Result, error) {
	<-ctx.Done()
	a := model.NewAssignment()
	return &core.Result{Assignment: a, Eval: p.Evaluate(a)},
		fmt.Errorf("%w: %w", core.ErrInterrupted, context.Cause(ctx))
}

type captureSolver struct{}

func (captureSolver) Name() string { return "TEST-CAPTURE" }
func (captureSolver) Solve(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Result, error) {
	captureProblem <- p
	select {
	case <-captureRelease:
	case <-ctx.Done():
	}
	return core.NewGreedy().Solve(ctx, p, opts)
}

func init() {
	core.Register("test-sleep", func() core.Solver { return sleepSolver{} })
	core.Register("test-capture", func() core.Solver { return captureSolver{} })
}

// testTask and testWorker build a trivially reachable population around the
// center of the unit square.
func testTask(id int) string {
	return fmt.Sprintf(`{"id":%d,"x":0.5,"y":0.5,"start":0,"end":10}`, id)
}

func testWorker(id int) string {
	return fmt.Sprintf(`{"id":%d,"x":0.4,"y":0.4,"speed":1,"confidence":0.9}`, id)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = engine.New(engine.Config{SolverName: "greedy"})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// tryJSON performs a request and decodes the JSON response; safe to call
// from any goroutine.
func tryJSON(method, url, body string) (int, map[string]any, error) {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("%s %s: decoding response: %w", method, url, err)
	}
	return resp.StatusCode, out, nil
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	code, out, err := tryJSON(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, out
}

func TestServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{SolverName: "greedy"})

	code, body := doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(1))
	if code != http.StatusOK || body["changed"].(float64) != 1 {
		t.Fatalf("single task upsert: %d %v", code, body)
	}
	code, body = doJSON(t, "POST", ts.URL+"/v1/tasks", "["+testTask(2)+","+testTask(3)+"]")
	if code != http.StatusOK || body["applied"].(float64) != 2 {
		t.Fatalf("task list upsert: %d %v", code, body)
	}
	code, body = doJSON(t, "POST", ts.URL+"/v1/workers",
		"["+testWorker(1)+","+testWorker(2)+","+testWorker(3)+","+testWorker(4)+"]")
	if code != http.StatusOK || body["changed"].(float64) != 4 {
		t.Fatalf("worker list upsert: %d %v", code, body)
	}

	code, body = doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"greedy","seed":3}`)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %v", code, body)
	}
	if body["feasible"] != true || body["partial"] != false {
		t.Fatalf("solve should be feasible and complete: %v", body)
	}
	assigned := body["assignment"].([]any)
	if len(assigned) == 0 {
		t.Fatal("solve returned an empty assignment")
	}
	solveVersion := body["version"].(float64)

	code, body = doJSON(t, "GET", ts.URL+"/v1/assignment", "")
	if code != http.StatusOK {
		t.Fatalf("assignment: %d %v", code, body)
	}
	if body["version"].(float64) != solveVersion || body["current_version"].(float64) != solveVersion {
		t.Fatalf("assignment version mismatch: %v", body)
	}
	if len(body["assignment"].([]any)) != len(assigned) {
		t.Fatal("stored assignment diverged from the solve response")
	}

	code, body = doJSON(t, "DELETE", ts.URL+"/v1/workers/4", "")
	if code != http.StatusOK || body["removed"] != true {
		t.Fatalf("remove worker: %d %v", code, body)
	}
	code, body = doJSON(t, "DELETE", ts.URL+"/v1/workers/99", "")
	if code != http.StatusOK || body["removed"] != false {
		t.Fatalf("remove absent worker: %d %v", code, body)
	}

	code, body = doJSON(t, "GET", ts.URL+"/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	if body["tasks"].(float64) != 3 || body["workers"].(float64) != 3 {
		t.Fatalf("stats population wrong: %v", body)
	}
	if body["batches"].(float64) == 0 || body["solves"].(float64) != 1 {
		t.Fatalf("stats counters wrong: %v", body)
	}
	if body["solver_stats"].(map[string]any)["Rounds"].(float64) == 0 {
		t.Fatalf("cumulative solver stats empty: %v", body)
	}

	code, body = doJSON(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || body["ok"] != true {
		t.Fatalf("healthz: %d %v", code, body)
	}
}

// TestDecomposeEngineShardsServeSolves pins that a Decompose engine keeps
// its component decomposition on the snapshot plane: serve-layer solves go
// through core.Sharded, and the exhaustive population cap surfaces as 422,
// not 500.
func TestDecomposeEngineShardsServeSolves(t *testing.T) {
	islands := gen.GenerateIslands(gen.Default().WithScale(24, 48).WithSeed(9), 4)
	eng := engine.NewFromInstance(islands, engine.Config{SolverName: "greedy", Decompose: true})
	s, ts := newTestServer(t, Config{Engine: eng, SolverName: "greedy"})

	code, body := doJSON(t, "POST", ts.URL+"/v1/solve", `{"seed":2}`)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %v", code, body)
	}
	if comps := body["stats"].(map[string]any)["Components"].(float64); comps < 2 {
		t.Fatalf("Decompose engine solved monolithically on the serve plane: %v components", comps)
	}
	if body["solver"] != "SHARDED(GREEDY)" {
		t.Errorf("solver = %v, want the sharded wrapper", body["solver"])
	}
	// An explicitly sharded request must not be double-wrapped.
	code, body = doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"sharded-greedy","seed":2}`)
	if code != http.StatusOK || body["solver"] != "SHARDED(GREEDY)" {
		t.Fatalf("explicit sharded solve: %d %v", code, body)
	}

	// Exhaustive over its population cap: a request-shaped refusal.
	code, body = doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"exhaustive"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("exhaustive over cap: %d %v, want 422", code, body)
	}
	if s.solveErrors.Load() != 0 {
		t.Errorf("population-cap refusal counted as a solve error")
	}
}

// TestUpsertResponseCoalescedAccounting pins the mutation response fields:
// "accepted" counts the request's mutations, "applied" only what reached
// the engine — matching /v1/stats mutations_applied. The batch linger keeps
// both duplicates in one batch deterministically.
func TestUpsertResponseCoalescedAccounting(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchLinger: 100 * time.Millisecond})
	code, body := doJSON(t, "POST", ts.URL+"/v1/workers", "["+testWorker(5)+","+testWorker(5)+"]")
	if code != http.StatusOK || body["accepted"].(float64) != 2 ||
		body["applied"].(float64) != 1 || body["coalesced"].(float64) != 1 {
		t.Fatalf("coalesced upsert accounting: %d %v", code, body)
	}
	if got := s.loop.Stats().Applied; got != 1 {
		t.Fatalf("stats applied = %d, want 1 (matching the response's applied field)", got)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path, body string
	}{
		{"POST", "/v1/tasks", `{"id":1,"start":5,"end":1}`}, // End before Start
		{"POST", "/v1/tasks", `not json`},
		{"POST", "/v1/workers", `{"id":1,"speed":0}`}, // non-positive speed
		{"POST", "/v1/solve", `{"solver":"no-such-solver"}`},
		{"DELETE", "/v1/tasks/abc", ""},
	} {
		if code, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s %s %q: got %d %v, want 400", tc.method, tc.path, tc.body, code, body)
		}
	}
}

// TestBatchCoalescingSingleBump holds the apply loop on its first mutation,
// queues nine more edits of the same two entities, and releases: everything
// must drain as ONE batch — one engine version bump, coalesced duplicates
// never touching the engine.
func TestBatchCoalescingSingleBump(t *testing.T) {
	release := make(chan struct{})
	eng := engine.New(engine.Config{SolverName: "greedy"})
	s, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	s.testStallApply = func() { <-release }
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	v0 := s.Snapshot().Version
	reply := make(chan applyAck, 10)
	enq := func(m engine.Mutation) {
		t.Helper()
		if err := s.enqueue(queuedMutation{mut: m, reply: reply}); err != nil {
			t.Fatal(err)
		}
	}
	// First mutation wakes the loop, which parks in the stall hook while
	// the rest queue up behind it.
	enq(engine.TaskUpsert(model.Task{ID: 1, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 10}))
	for i := 0; i < 8; i++ {
		enq(engine.TaskUpsert(model.Task{ID: 1, Loc: geo.Pt(0.5, 0.5), Start: 0, End: float64(1 + i)}))
	}
	enq(engine.WorkerUpsert(model.Worker{ID: 7, Loc: geo.Pt(0.4, 0.4), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9}))
	close(release)

	var acks []applyAck
	for i := 0; i < 10; i++ {
		select {
		case a := <-reply:
			acks = append(acks, a)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d acks", i)
		}
	}
	snap := s.Snapshot()
	if snap.Version != v0+1 {
		t.Errorf("10 queued mutations bumped the version %d times, want 1", snap.Version-v0)
	}
	var coalesced int
	for _, a := range acks {
		if a.Version != snap.Version {
			t.Errorf("ack version %d, want %d", a.Version, snap.Version)
		}
		if a.Coalesced {
			coalesced++
		}
	}
	if coalesced != 8 {
		t.Errorf("coalesced %d mutations, want 8 (duplicate task upserts)", coalesced)
	}
	if got := s.loop.Stats().Applied; got != 2 {
		t.Errorf("applied %d mutations to the engine, want 2", got)
	}
	if got := s.loop.Stats().Batches; got != 1 {
		t.Errorf("drained %d batches, want 1", got)
	}
	if tk, ok := eng.Task(1); !ok || tk.End != 8 {
		t.Errorf("last-wins coalescing broken: task = %v, present=%v", tk, ok)
	}
}

// TestQueueFullBackpressure fills the bounded queue while the apply loop is
// parked and checks that further mutations — direct and over HTTP — are
// rejected with ErrQueueFull / 429, then drain cleanly on release.
func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	eng := engine.New(engine.Config{SolverName: "greedy"})
	s, err := New(Config{Engine: eng, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.testStallApply = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	mk := func(id int) engine.Mutation {
		return engine.TaskUpsert(model.Task{ID: model.TaskID(id), Loc: geo.Pt(0.5, 0.5), Start: 0, End: 10})
	}
	// One mutation wakes (and parks) the loop; four more fill the queue.
	if err := s.enqueue(queuedMutation{mut: mk(0)}); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 1; i <= 4; i++ {
		if err := s.enqueue(queuedMutation{mut: mk(i)}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := s.enqueue(queuedMutation{mut: mk(5)}); err != ErrQueueFull {
		t.Fatalf("over-capacity enqueue: err = %v, want ErrQueueFull", err)
	}
	code, body := doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(6))
	if code != http.StatusTooManyRequests {
		t.Fatalf("HTTP enqueue over capacity: %d %v, want 429", code, body)
	}

	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for s.loop.Stats().Applied < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tasks := s.Snapshot().Tasks(); tasks != 5 {
		t.Fatalf("drained to %d tasks, want 5", tasks)
	}
	if s.loop.Stats().RejectedFull < 2 {
		t.Errorf("rejected_queue_full = %d, want >= 2", s.loop.Stats().RejectedFull)
	}
}

// TestSolveDeadlinePartial maps a per-request timeout to the solve context
// and verifies the interrupted partial result comes back flagged, not as
// an error.
func TestSolveDeadlinePartial(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	start := time.Now()
	code, body := doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"test-sleep","timeout_ms":50}`)
	if code != http.StatusOK {
		t.Fatalf("interrupted solve: %d %v", code, body)
	}
	if body["partial"] != true {
		t.Fatalf("deadline-bound solve not flagged partial: %v", body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout_ms not honored: solve took %v", elapsed)
	}
	if s.partials.Load() != 1 || s.solveErrors.Load() != 0 {
		t.Errorf("partials=%d solveErrors=%d, want 1/0", s.partials.Load(), s.solveErrors.Load())
	}
}

// TestSnapshotIsolationAcrossBatches starts a solve, applies a batch while
// it runs, and verifies the solve kept its pre-batch view while the
// published snapshot moved on.
func TestSnapshotIsolationAcrossBatches(t *testing.T) {
	eng := engine.New(engine.Config{SolverName: "greedy"})
	eng.UpsertTask(model.Task{ID: 1, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 10})
	eng.UpsertWorker(model.Worker{ID: 1, Loc: geo.Pt(0.4, 0.4), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9})
	s, ts := newTestServer(t, Config{Engine: eng})
	preVersion := s.Snapshot().Version

	solveDone := make(chan map[string]any, 1)
	go func() {
		_, body, err := tryJSON("POST", ts.URL+"/v1/solve", `{"solver":"test-capture"}`)
		if err != nil {
			t.Error(err)
		}
		solveDone <- body
	}()
	captured := <-captureProblem
	preTasks := len(captured.In.Tasks)

	// Churn while the solve is parked: the apply loop is free (solves never
	// hold it), so the batch applies and the published snapshot advances.
	code, _ := doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(2))
	if code != http.StatusOK {
		t.Fatalf("mutation during solve: %d", code)
	}
	after := s.Snapshot()
	if after.Version == preVersion {
		t.Fatal("published snapshot did not advance")
	}
	if after.Problem == captured {
		t.Fatal("published snapshot still aliases the solving problem")
	}
	if len(captured.In.Tasks) != preTasks {
		t.Fatal("batch mutated the problem an in-flight solve holds")
	}

	close(captureRelease)
	body := <-solveDone
	if body["version"].(float64) != float64(preVersion) {
		t.Fatalf("solve reported version %v, want its snapshot version %d", body["version"], preVersion)
	}
	// The current assignment view exposes the staleness.
	_, body = doJSON(t, "GET", ts.URL+"/v1/assignment", "")
	if body["current_version"].(float64) == body["version"].(float64) {
		t.Fatal("assignment view should show a newer current_version after churn")
	}
}

// TestShutdownDrainsQueue: mutations accepted before Shutdown must be
// applied before the apply loop exits, and intake must answer 503 after.
func TestShutdownDrainsQueue(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	eng := engine.New(engine.Config{SolverName: "greedy"})
	s, err := New(Config{Engine: eng, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.testStallApply = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 20; i++ {
		m := engine.TaskUpsert(model.Task{ID: model.TaskID(i), Loc: geo.Pt(0.5, 0.5), Start: 0, End: 10})
		if err := s.enqueue(queuedMutation{mut: m}); err != nil {
			t.Fatal(err)
		}
	}
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Intake must close even while the queue still drains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Probe with a no-op mutation (removing an absent task), so probes
		// that sneak in before intake closes cannot change the engine.
		if err := s.enqueue(queuedMutation{mut: engine.TaskRemoval(9_999)}); err == ErrShuttingDown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("enqueue never started failing with ErrShuttingDown")
		}
		time.Sleep(time.Millisecond)
	}
	code, _ := doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(99))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP mutation during shutdown: %d, want 503", code)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := s.Snapshot().Tasks(); got != 20 {
		t.Fatalf("shutdown drained to %d tasks, want all 20 accepted mutations applied", got)
	}
}

// TestConcurrentChurnAndSolves is the -race hammer: parallel clients mix
// upserts, removals, solves, and reads over HTTP while the apply loop
// batches under them.
func TestConcurrentChurnAndSolves(t *testing.T) {
	eng := engine.New(engine.Config{SolverName: "greedy"})
	for i := 0; i < 10; i++ {
		eng.UpsertTask(model.Task{ID: model.TaskID(i), Loc: geo.Pt(0.5, 0.5), Start: 0, End: 10})
		eng.UpsertWorker(model.Worker{ID: model.WorkerID(i), Loc: geo.Pt(0.4, 0.4), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9})
	}
	s, ts := newTestServer(t, Config{Engine: eng, QueueDepth: 4096, BatchMax: 64})

	const clients = 8
	const iters = 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (c*iters + i) % 40
				var code int
				var err error
				switch i % 5 {
				case 0:
					code, _, err = tryJSON("POST", ts.URL+"/v1/tasks", testTask(id))
				case 1:
					code, _, err = tryJSON("POST", ts.URL+"/v1/workers", testWorker(id))
				case 2:
					code, _, err = tryJSON("POST", ts.URL+"/v1/solve", `{"solver":"greedy","seed":2,"timeout_ms":500}`)
				case 3:
					code, _, err = tryJSON("DELETE", fmt.Sprintf("%s/v1/workers/%d", ts.URL, id), "")
				default:
					code, _, err = tryJSON("GET", ts.URL+"/v1/stats", "")
				}
				if err != nil {
					t.Error(err)
					continue
				}
				switch code {
				case http.StatusOK, http.StatusAccepted, http.StatusTooManyRequests:
				default:
					t.Errorf("client %d iter %d: unexpected status %d", c, i, code)
				}
			}
		}(c)
	}
	wg.Wait()

	// The engine must come out of the storm internally consistent: the
	// indexed pair set equals a brute-force scan of the final population.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	p := eng.Problem()
	if want := eng.Instance().ValidPairs(); len(p.Pairs) != len(want) {
		t.Fatalf("index retrieved %d pairs, scan found %d", len(p.Pairs), len(want))
	}
}
