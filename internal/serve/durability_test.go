package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/gen"
	"rdbsc/internal/model"
	"rdbsc/internal/store"
)

// startDurable boots a server over a file store in dir and returns a stop
// function that drains and closes it — the graceful half of a restart
// cycle; crash-restart (SIGKILL) is exercised end-to-end by the
// cmd/rdbsc-server harness.
func startDurable(t *testing.T, dir string, snapEvery int, eng *engine.Engine) (*Server, *httptest.Server, func()) {
	t.Helper()
	fs, err := store.Open(dir, store.FileOptions{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if eng == nil {
		eng = engine.New(engine.Config{SolverName: "greedy"})
	}
	s, err := New(Config{Engine: eng, SolverName: "greedy", Store: fs, SnapshotEvery: snapEvery})
	if err != nil {
		fs.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}
	t.Cleanup(stop)
	return s, ts, stop
}

// TestDurableRecoveryExact pins the serve-layer recovery contract: after a
// stop and a reboot from the data directory, the engine version and the
// solve answer are identical to the pre-stop server's.
func TestDurableRecoveryExact(t *testing.T) {
	dir := t.TempDir()
	_, ts, stop := startDurable(t, dir, 3, nil) // snapshot every 3 batches: exercises snapshot + WAL suffix

	for i := 1; i <= 7; i++ {
		if code, body := doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(i)); code != http.StatusOK {
			t.Fatalf("task %d: %d %v", i, code, body)
		}
		if code, body := doJSON(t, "POST", ts.URL+"/v1/workers", testWorker(i)); code != http.StatusOK {
			t.Fatalf("worker %d: %d %v", i, code, body)
		}
	}
	_, statsBefore := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	code, solveBefore := doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"greedy","seed":3}`)
	if code != http.StatusOK || solveBefore["feasible"] != true {
		t.Fatalf("pre-stop solve: %d %v", code, solveBefore)
	}
	stop()

	_, ts2, _ := startDurable(t, dir, 3, engine.New(engine.Config{SolverName: "greedy"}))
	_, statsAfter := doJSON(t, "GET", ts2.URL+"/v1/stats", "")
	for _, k := range []string{"version", "tasks", "workers"} {
		if statsBefore[k] != statsAfter[k] {
			t.Errorf("recovered %s = %v, want %v", k, statsAfter[k], statsBefore[k])
		}
	}
	dur, ok := statsAfter["durability"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing durability block: %v", statsAfter)
	}
	if dur["backend"] != "file" || dur["recovered_batches"].(float64) < 1 {
		t.Errorf("durability after recovery = %v, want file backend with recovered batches", dur)
	}
	code, solveAfter := doJSON(t, "POST", ts2.URL+"/v1/solve", `{"solver":"greedy","seed":3}`)
	if code != http.StatusOK {
		t.Fatalf("post-recovery solve: %d %v", code, solveAfter)
	}
	// Timing and caching fields legitimately differ across boots;
	// everything else — version, objective, the full assignment — must be
	// identical.
	for _, volatile := range []string{"elapsed_ms", "at", "stats", "cached"} {
		delete(solveBefore, volatile)
		delete(solveAfter, volatile)
	}
	if !reflect.DeepEqual(solveBefore, solveAfter) {
		t.Errorf("solve diverged across recovery:\n before: %v\n after:  %v", solveBefore, solveAfter)
	}
}

// TestBootSnapshotSeedsStore: a server booted with a preloaded engine and
// an empty store must seed the store, so a later restart recovers the
// preloaded population without the original input files.
func TestBootSnapshotSeedsStore(t *testing.T) {
	dir := t.TempDir()
	in := gen.Generate(gen.Default().WithScale(10, 20).WithSeed(3))
	eng := engine.NewFromInstance(in, engine.Config{SolverName: "greedy"})
	wantEta := eng.GridEta()
	_, ts, stop := startDurable(t, dir, 0, eng)
	_, statsBefore := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	stop()

	// Recover into an engine configured like the preloaded one (β and
	// options come from the instance; the grid eta must come back from the
	// snapshot, not from the empty-engine default).
	fresh := engine.New(engine.Config{Beta: in.Beta, BetaSet: true, Opt: in.Opt, SolverName: "greedy"})
	_, ts2, _ := startDurable(t, dir, 0, fresh)
	_, statsAfter := doJSON(t, "GET", ts2.URL+"/v1/stats", "")
	for _, k := range []string{"version", "tasks", "workers", "pairs"} {
		if statsBefore[k] != statsAfter[k] {
			t.Errorf("recovered %s = %v, want %v", k, statsAfter[k], statsBefore[k])
		}
	}
	if got := fresh.GridEta(); got != wantEta {
		t.Errorf("recovered grid eta %v, want the boot engine's %v", got, wantEta)
	}
}

// TestRecoveredStatePreloadConflict: recovered state plus a preloaded
// engine is ambiguous — New must refuse rather than guess.
func TestRecoveredStatePreloadConflict(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.Open(dir, store.FileOptions{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendBatch([]engine.Mutation{engine.TaskRemoval(1)}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.Open(dir, store.FileOptions{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	in := gen.Generate(gen.Default().WithScale(5, 10).WithSeed(1))
	if _, err := New(Config{Engine: engine.NewFromInstance(in, engine.Config{}), Store: fs2}); err == nil {
		t.Fatal("New accepted recovered state plus a preloaded engine")
	}
}

// failStore fails every append the way a full disk would; everything else
// behaves like the memory backend.
type failStore struct {
	store.Memory
	err error
}

func (f *failStore) AppendBatch([]engine.Mutation) error { return f.err }

func (f *failStore) WriteSnapshot(uint64, float64, *model.Instance, store.EntityEpochs) error {
	return nil
}

// TestAppendFailureIs503 pins the no-silent-loss surface: when the WAL
// cannot be written, mutations are rejected with 503 — never acknowledged
// and dropped — and the failure is visible in the stats.
func TestAppendFailureIs503(t *testing.T) {
	boom := errors.New("no space left on device")
	s, err := New(Config{
		Engine: engine.New(engine.Config{SolverName: "greedy"}),
		Store:  &failStore{err: boom},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := doJSON(t, "POST", ts.URL+"/v1/tasks", testTask(1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("mutation with a failing WAL: %d %v, want 503", code, body)
	}
	if fmt.Sprint(body["error"]) == "" {
		t.Fatalf("503 body carries no error: %v", body)
	}
	// Nothing may have reached the engine.
	_, stats := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	if stats["tasks"].(float64) != 0 {
		t.Fatalf("engine holds %v tasks after a failed append, want 0", stats["tasks"])
	}
	dur := stats["durability"].(map[string]any)
	if dur["wal_append_failures"].(float64) < 1 {
		t.Fatalf("durability stats %v, want wal_append_failures >= 1", dur)
	}
}
