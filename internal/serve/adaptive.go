package serve

import (
	"sync/atomic"
	"time"

	"rdbsc/internal/adaptive"
	"rdbsc/internal/decompose"
	"rdbsc/internal/engine"
)

// adaptiveState is the server's slice of the adaptive solve tier: the
// shared controller (learned lane costs, thresholds, degrade counters) and
// a per-snapshot-version cache of the component shape the controller plans
// against. nil when Config.Adaptive is off — the solve path is then
// byte-identical to the fixed-solver server.
type adaptiveState struct {
	ctrl  *adaptive.Controller
	shape atomic.Pointer[versionedShape]
}

// versionedShape pins a computed component shape to the snapshot version
// it was derived from. Versions only move forward, so an equal version
// means an identical problem and the shape can be reused without
// re-partitioning.
type versionedShape struct {
	version uint64
	shape   *adaptive.Shape
}

func newAdaptiveState(budget, maxStale time.Duration) *adaptiveState {
	return &adaptiveState{ctrl: adaptive.New(adaptive.Config{
		Budget:   budget,
		MaxStale: maxStale,
	})}
}

// shapeFor returns the component shape of the snapshot's problem, serving
// repeat requests against an unchanged snapshot from the one-entry cache.
// Concurrent first requests at a new version may race to compute it; the
// shape is a pure function of the snapshot, so last-store-wins is
// harmless.
func (a *adaptiveState) shapeFor(snap *engine.Snapshot) *adaptive.Shape {
	if vs := a.shape.Load(); vs != nil && vs.version == snap.Version {
		return vs.shape
	}
	p := snap.Problem
	part := decompose.BuildSized(p.Pairs, len(p.In.Tasks), len(p.In.Workers))
	shape := adaptive.NewShape(p, part)
	a.shape.Store(&versionedShape{version: snap.Version, shape: shape})
	return shape
}

// adaptiveStats returns the /v1/stats "adaptive" block, nil when the tier
// is off (the field is then omitted from the JSON).
func (s *Server) adaptiveStats() *adaptive.Stats {
	if s.adapt == nil {
		return nil
	}
	st := s.adapt.ctrl.StatsSnapshot()
	return &st
}

// degradeResponse renders the graceful-degradation answer from the most
// recent completed solve: the cached last assignment, stamped with its
// explicit staleness ("stale_ms", wall time since it was computed) and the
// degraded marker, plus the current version so clients can see how far
// behind the assignment is. ok is false when no previous solve exists or
// the last one is older than the staleness bound — the caller must then
// shed (429).
func (a *adaptiveState) degradeResponse(last *SolveResponse, currentVersion uint64) (*SolveResponse, bool) {
	if last == nil {
		return nil, false
	}
	stale := time.Since(last.At)
	if stale < 0 {
		stale = 0
	}
	if stale > a.ctrl.MaxStale() {
		return nil, false
	}
	resp := *last // shallow copy; the stored value is never mutated
	resp.Degraded = true
	resp.StaleMS = float64(stale) / float64(time.Millisecond)
	resp.CurrentVersion = currentVersion
	return &resp, true
}
