package serve

import (
	"fmt"
	"testing"
	"time"
)

// populate seeds a server with a small reachable population so solves have
// valid pairs to assign.
func populate(t *testing.T, base string, tasks, workers int) {
	t.Helper()
	for i := 0; i < tasks; i++ {
		if code, out := doJSON(t, "POST", base+"/v1/tasks", testTask(100+i)); code != 200 {
			t.Fatalf("seeding task: %d %v", code, out)
		}
	}
	for i := 0; i < workers; i++ {
		if code, out := doJSON(t, "POST", base+"/v1/workers", testWorker(100+i)); code != 200 {
			t.Fatalf("seeding worker: %d %v", code, out)
		}
	}
}

func TestAdaptiveSolveWithinBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{SolverName: "greedy", Adaptive: true, SLOp99: 5 * time.Second})
	populate(t, ts.URL, 3, 4)

	code, out := doJSON(t, "POST", ts.URL+"/v1/solve", `{"seed":7}`)
	if code != 200 {
		t.Fatalf("adaptive solve: %d %v", code, out)
	}
	if got := out["solver"]; got != "SHARDED(ADAPTIVE)" {
		t.Errorf("solver = %v, want SHARDED(ADAPTIVE)", got)
	}
	if out["degraded"] != nil {
		t.Errorf("within-budget solve marked degraded: %v", out)
	}
	lanes, ok := out["lanes"].(map[string]any)
	if !ok || len(lanes) == 0 {
		t.Errorf("adaptive solve carried no lane breakdown: %v", out["lanes"])
	}
	if out["feasible"] != true {
		t.Errorf("adaptive solve infeasible on a reachable population: %v", out)
	}

	// The stats surface exposes the controller block.
	code, stats := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	ad, ok := stats["adaptive"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no adaptive block: %v", stats["adaptive"])
	}
	if ad["budget_ms"] != 5000.0 {
		t.Errorf("adaptive.budget_ms = %v, want 5000", ad["budget_ms"])
	}
}

// TestAdaptiveExplicitSolverBypass: a request that names a solver gets the
// fixed-solver path even on an adaptive server — same answer, field for
// field, as a server with the tier off.
func TestAdaptiveExplicitSolverBypass(t *testing.T) {
	_, adaptiveTS := newTestServer(t, Config{SolverName: "greedy", Adaptive: true, SLOp99: 5 * time.Second})
	_, plainTS := newTestServer(t, Config{SolverName: "greedy"})

	for _, base := range []string{adaptiveTS.URL, plainTS.URL} {
		populate(t, base, 4, 6)
	}

	body := `{"solver":"greedy","seed":42}`
	codeA, outA := doJSON(t, "POST", adaptiveTS.URL+"/v1/solve", body)
	codeP, outP := doJSON(t, "POST", plainTS.URL+"/v1/solve", body)
	if codeA != 200 || codeP != 200 {
		t.Fatalf("solves: %d vs %d", codeA, codeP)
	}
	if outA["lanes"] != nil || outA["degraded"] != nil {
		t.Errorf("explicit-solver request carried adaptive fields: %v", outA)
	}
	// Everything but the wall-clock fields must match exactly.
	for _, k := range []string{"solver", "seed", "version", "feasible", "assigned_workers",
		"assigned_tasks", "min_reliability", "total_diversity"} {
		if fmt.Sprint(outA[k]) != fmt.Sprint(outP[k]) {
			t.Errorf("field %q differs: adaptive %v vs plain %v", k, outA[k], outP[k])
		}
	}
	if fmt.Sprint(outA["assignment"]) != fmt.Sprint(outP["assignment"]) {
		t.Errorf("assignments differ:\nadaptive: %v\nplain:    %v", outA["assignment"], outP["assignment"])
	}

	// With the tier off, /v1/stats has no adaptive block at all.
	_, stats := doJSON(t, "GET", plainTS.URL+"/v1/stats", "")
	if _, present := stats["adaptive"]; present {
		t.Errorf("non-adaptive server exposes an adaptive stats block")
	}
}

// TestAdaptiveDegradeStaleThenShed exercises the overload valve end to end
// under an impossible budget: the first unnamed solve degrades to the last
// assignment with a stale_ms stamp, every degraded answer honors the
// staleness bound, and once the bound passes the server sheds with 429.
func TestAdaptiveDegradeStaleThenShed(t *testing.T) {
	const maxStale = 300 * time.Millisecond
	_, ts := newTestServer(t, Config{
		SolverName: "greedy",
		Adaptive:   true,
		SLOp99:     time.Nanosecond, // every nonempty plan is over budget
		MaxStale:   maxStale,
	})
	populate(t, ts.URL, 3, 4)

	// No solve has completed yet: nothing to serve stale, so the tier sheds
	// immediately.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/solve", `{}`); code != 429 {
		t.Fatalf("over-budget solve with no previous assignment: %d, want 429", code)
	}

	// An explicit solver bypasses the tier and seeds the last assignment.
	if code, out := doJSON(t, "POST", ts.URL+"/v1/solve", `{"solver":"greedy","seed":1}`); code != 200 {
		t.Fatalf("explicit solve: %d %v", code, out)
	}

	// Poll the degrade path across the staleness window. Every 200 must be
	// degraded with stale_ms inside the bound; after the bound only 429.
	maxStaleMS := float64(maxStale) / float64(time.Millisecond)
	sawDegraded, sawShed := false, false
	deadline := time.Now().Add(2 * maxStale)
	for time.Now().Before(deadline) {
		code, out := doJSON(t, "POST", ts.URL+"/v1/solve", `{}`)
		switch code {
		case 200:
			if out["degraded"] != true {
				t.Fatalf("over-budget 200 not marked degraded: %v", out)
			}
			stale, _ := out["stale_ms"].(float64)
			if stale > maxStaleMS {
				t.Fatalf("served stale_ms %.1f exceeds the %v bound", stale, maxStale)
			}
			sawDegraded = true
		case 429:
			sawShed = true
		default:
			t.Fatalf("unexpected status %d: %v", code, out)
		}
		time.Sleep(40 * time.Millisecond)
	}
	if !sawDegraded {
		t.Error("never saw a degraded (stale-served) response inside the bound")
	}
	if !sawShed {
		t.Error("never saw a 429 shed after the staleness bound passed")
	}

	// The controller accounted for both valves.
	_, stats := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	ad, ok := stats["adaptive"].(map[string]any)
	if !ok {
		t.Fatal("stats has no adaptive block")
	}
	if s, _ := ad["stale_served"].(float64); s < 1 {
		t.Errorf("adaptive.stale_served = %v, want >= 1", ad["stale_served"])
	}
	if s, _ := ad["shed"].(float64); s < 2 {
		t.Errorf("adaptive.shed = %v, want >= 2", ad["shed"])
	}
}
