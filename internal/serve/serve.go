// Package serve turns an engine.Engine into a concurrent assignment
// service. The engine itself is not safe for concurrent use, so the server
// splits the work between two planes:
//
//   - a single-writer apply loop (internal/applyloop, shared with the
//     multi-shard internal/cluster) owns the engine and is the only
//     goroutine that ever touches it. Mutations (task/worker upserts and
//     removals) arrive through a bounded queue, are drained in batches,
//     coalesced (only the last mutation per entity touches the grid index),
//     and applied through Engine.ApplyBatch under one version bump — so the
//     valid pairs are re-derived at most once per batch, not once per
//     mutation. After each batch the loop publishes a fresh
//     engine.Snapshot through an atomic pointer.
//
//   - solve and read requests never touch the engine: they load the most
//     recently published snapshot and run against its immutable problem.
//     A solve that started before a batch keeps its snapshot for its whole
//     run (the engine replaces, never edits, prepared problems), so it can
//     never observe a half-applied batch — snapshot isolation by
//     copy-on-write hand-off.
//
// Backpressure is explicit: when the mutation queue is full, enqueues fail
// and the HTTP layer answers 429 Too Many Requests. Every solve runs under
// a per-request deadline mapped to its context; when the deadline expires
// the solver's best-so-far partial assignment is returned, flagged as
// partial. Shutdown stops intake first, then drains the queue completely
// before the apply loop exits, so every accepted mutation is applied.
//
// See handlers.go for the HTTP/JSON surface (POST/DELETE /v1/tasks and
// /v1/workers, POST /v1/solve, GET /v1/assignment, GET /v1/stats,
// /healthz) and cmd/rdbsc-server for the binary.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rdbsc/internal/applyloop"
	"rdbsc/internal/core"
	"rdbsc/internal/engine"
	"rdbsc/internal/store"
)

// Config parameterizes a Server.
type Config struct {
	// Engine is the engine the server drives. Required. The server's apply
	// loop takes ownership: after New, no other goroutine may call Engine
	// methods.
	Engine *engine.Engine
	// SolverName selects the default solver for /v1/solve requests that
	// name none, resolved through the core registry per request (solver
	// instances are not shared across concurrent solves). Default "dc".
	SolverName string
	// QueueDepth bounds the mutation queue; a full queue rejects enqueues
	// (HTTP 429). Default 1024.
	QueueDepth int
	// BatchMax caps how many queued mutations one batch drains. Default 256.
	BatchMax int
	// BatchLinger is how long the apply loop waits for more mutations after
	// draining the queue dry, to widen batches under bursty load. Default 0
	// (apply immediately whatever is pending).
	BatchLinger time.Duration
	// SolveTimeout is both the default and the upper bound for per-request
	// solve deadlines (requests may ask for less via timeout_ms, never
	// more). Default 30s.
	SolveTimeout time.Duration
	// SolveCache is the capacity of the cross-request solve cache: completed
	// solves are cached under (snapshot version, solver, seed) and replayed
	// verbatim while no mutation batch has applied since. Versions only move
	// forward, so a cached answer is always bit-identical to re-solving.
	// Default 0 (disabled).
	SolveCache int
	// Store is the durability backend behind the apply loop: every
	// coalesced batch is appended to it before it is applied, and recovery
	// replays it into the engine before the server accepts traffic. Default
	// store.NewMemory() (nothing persists — the historical behavior). When
	// the store holds recovered state the Engine must be empty; a
	// bulk-loaded engine paired with a fresh store is seeded into it as the
	// boot snapshot.
	Store store.Store
	// SnapshotEvery compacts the WAL into a full-state snapshot after every
	// N applied batches (0 = never; the WAL then grows until shutdown).
	SnapshotEvery int
	// Adaptive enables the latency-SLO solve tier (internal/adaptive):
	// /v1/solve requests that name no explicit solver are routed per
	// connected component to a lane picked to fit SLOp99, and over-budget
	// load degrades to the cached last assignment (stamped "stale_ms")
	// before shedding with 429. Off by default — the solve path is then
	// byte-identical to the fixed-solver server. Requests naming a solver
	// always bypass the adaptive tier.
	Adaptive bool
	// SLOp99 is the solve-latency p99 budget the adaptive controller plans
	// against. Only meaningful with Adaptive; default 50ms.
	SLOp99 time.Duration
	// MaxStale bounds how old a degraded (stale-served) assignment may be;
	// past it the request is shed with 429 instead. Only meaningful with
	// Adaptive; default 5s.
	MaxStale time.Duration
}

func (c Config) withDefaults() Config {
	if c.SolverName == "" {
		c.SolverName = "dc"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	if c.Store == nil {
		c.Store = store.NewMemory()
	}
	if c.Adaptive {
		if c.SLOp99 <= 0 {
			c.SLOp99 = 50 * time.Millisecond
		}
		if c.MaxStale <= 0 {
			c.MaxStale = 5 * time.Second
		}
	}
	return c
}

// Errors mapped to HTTP statuses by the handler layer. They are the apply
// loop's own sentinels (one backpressure vocabulary across serve and
// cluster), re-exported under the names this package has always used.
var (
	// ErrQueueFull rejects an enqueue when the mutation queue is at
	// capacity (HTTP 429).
	ErrQueueFull = applyloop.ErrQueueFull
	// ErrShuttingDown rejects an enqueue after Shutdown began (HTTP 503).
	ErrShuttingDown = applyloop.ErrClosed
)

// queuedMutation is one mutation in flight, with an optional reply channel
// (buffered by the enqueuer; the apply loop never blocks on it).
type queuedMutation struct {
	mut   engine.Mutation
	reply chan<- applyloop.Ack
}

// applyAck reports one mutation's fate after its batch was applied.
type applyAck = applyloop.Ack

// Server is the concurrent assignment service. Construct with New (which
// starts the apply loop), expose Handler over HTTP or call ListenAndServe,
// and stop with Shutdown.
type Server struct {
	cfg   Config
	eng   *engine.Engine
	mux   *http.ServeMux
	loop  *applyloop.Loop
	store store.Store

	// batchesSinceSnap counts applied batches toward the next compaction;
	// touched only on the apply loop goroutine.
	batchesSinceSnap int
	// recoveredBatches is how many WAL batches boot recovery replayed;
	// written once before the loop starts, read-only afterwards.
	recoveredBatches uint64

	mu      sync.RWMutex // guards closing and http against Shutdown races
	closing bool
	http    *http.Server

	snap    atomic.Pointer[engine.Snapshot]
	lastRes atomic.Pointer[SolveResponse] // most recent completed solve
	cache   *SolveCache                   // nil when Config.SolveCache == 0

	// shardSolves wraps snapshot-plane solvers in component decomposition,
	// mirroring an engine built with Config.Decompose.
	shardSolves bool

	// adapt carries the adaptive solve tier's controller and shape cache;
	// nil when Config.Adaptive is off.
	adapt *adaptiveState

	started time.Time
	counters

	// testStallApply, when non-nil, runs on the apply loop after it wakes
	// for a batch's first mutation and before it drains the rest — tests
	// block here to build deterministic batches. Never set in production.
	testStallApply func()
}

// counters are the solver-plane diagnostics behind /v1/stats (the mutation
// plane's counters live in the apply loop). rebuilds/retrieveNS are updated
// on the apply loop only; the core.Stats aggregate needs a mutex (it is a
// struct fold, not a counter).
type counters struct {
	rebuilds    atomic.Uint64 // batches whose snapshot re-derived the pairs
	retrieveNS  atomic.Int64  // cumulative pair-retrieval time
	solves      atomic.Uint64 // /v1/solve requests that ran a solver
	solveErrors atomic.Uint64 // solves that ended in a terminal error
	partials    atomic.Uint64 // solves interrupted by their deadline
	snapErrors  atomic.Uint64 // periodic WAL compactions that failed

	statsMu    sync.Mutex
	solveStats core.Stats // cumulative per-solve diagnostics

	// solveLatMS is a ring of recent solve latencies (completed and partial
	// solves), summarized into /v1/stats' solve_latency_ms quantiles — the
	// server-side complement of rdbsc-loadgen's client-side percentiles.
	solveLatMS [1024]float64
	latN       int // total recorded (ring index = latN % len)
}

// recordSolveLatency appends one solve's wall time to the latency ring.
func (c *counters) recordSolveLatency(ms float64) {
	c.statsMu.Lock()
	c.solveLatMS[c.latN%len(c.solveLatMS)] = ms
	c.latN++
	c.statsMu.Unlock()
}

// latencySample copies the recorded latencies out of the ring.
func (c *counters) latencySample() []float64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	n := c.latN
	if n > len(c.solveLatMS) {
		n = len(c.solveLatMS)
	}
	return append([]float64(nil), c.solveLatMS[:n]...)
}

// New validates the configuration, publishes the initial snapshot, starts
// the apply loop, and returns the server. The engine must not be used by
// any other goroutine afterwards.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	if _, err := core.NewByName(cfg.SolverName); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		store:   cfg.Store,
		cache:   NewSolveCache(cfg.SolveCache),
		started: time.Now(),
		// Read once here, not per request: after the apply loop starts, the
		// engine belongs to it alone. A Decompose engine keeps its sharded
		// semantics on the snapshot plane via core.Sharded (the cross-batch
		// per-component result cache stays engine-plane only).
		shardSolves: cfg.Engine.Decomposes(),
	}
	if cfg.Adaptive {
		s.adapt = newAdaptiveState(cfg.SLOp99, cfg.MaxStale)
	}
	// Recovery runs before the apply loop starts and before the first
	// snapshot is published, so no request can ever observe the pre-replay
	// state. A recovered store and a preloaded engine are mutually
	// exclusive — merging them would fabricate a state neither run had.
	rs, err := cfg.Store.Recover()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	nt, nw := s.eng.Len()
	switch {
	case !rs.Empty():
		if nt > 0 || nw > 0 {
			return nil, fmt.Errorf("serve: store holds recovered state but the engine is preloaded (%d tasks, %d workers); drop the preload or the data directory", nt, nw)
		}
		batches, _, err := store.Replay(rs, s.eng)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.recoveredBatches = uint64(batches)
	case nt > 0 || nw > 0:
		// Fresh store under a bulk-loaded engine: persist the load as the
		// boot snapshot, or a crash before the first compaction would
		// silently drop it.
		// The serve plane never stamps recency epochs (single shard, no
		// cross-shard moves), so the snapshot carries none.
		if err := cfg.Store.WriteSnapshot(s.eng.Version(), s.eng.GridEta(), s.eng.Instance(), store.EntityEpochs{}); err != nil {
			return nil, fmt.Errorf("serve: seeding boot snapshot: %w", err)
		}
	}
	// The apply loop has not started yet, so this Snapshot call is still
	// single-threaded; from here on only the loop touches the engine.
	snap := s.eng.Snapshot()
	s.snap.Store(&snap)
	s.mux = s.routes()
	loop, err := applyloop.New(applyloop.Config{
		QueueDepth:  cfg.QueueDepth,
		BatchMax:    cfg.BatchMax,
		BatchLinger: cfg.BatchLinger,
		Apply:       s.applyToEngine,
		Append:      cfg.Store.AppendBatch,
		StallForTest: func() {
			if s.testStallApply != nil {
				s.testStallApply()
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.loop = loop
	return s, nil
}

// applyToEngine is the server's applyloop.Applier: it runs on the apply
// loop — the single writer — applies the coalesced batch under one engine
// version bump, and publishes the resulting snapshot. Snapshot re-derives
// the valid pairs here, on the apply loop, so solve requests always find a
// prepared problem and never pay the rebuild.
func (s *Server) applyToEngine(muts []engine.Mutation) ([]bool, uint64) {
	changed := s.eng.ApplyBatch(muts)
	snap := s.eng.Snapshot()
	s.snap.Store(&snap)
	if snap.Rebuilt {
		s.rebuilds.Add(1)
		s.retrieveNS.Add(int64(snap.Retrieve))
	}
	if s.cfg.SnapshotEvery > 0 {
		if s.batchesSinceSnap++; s.batchesSinceSnap >= s.cfg.SnapshotEvery {
			s.batchesSinceSnap = 0
			// A failed compaction is not data loss — the WAL still holds
			// everything — so it is counted, not fatal.
			if err := s.store.WriteSnapshot(snap.Version, s.eng.GridEta(), s.eng.Instance(), store.EntityEpochs{}); err != nil {
				s.snapErrors.Add(1)
			}
		}
	}
	return changed, snap.Version
}

// Handler returns the server's HTTP handler, for mounting under a custom
// http.Server or a test server.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the most recently published engine snapshot. Safe for
// concurrent use; the returned view is immutable.
func (s *Server) Snapshot() engine.Snapshot { return *s.snap.Load() }

// enqueue hands one mutation to the apply loop, failing fast on a full
// queue or a closing server.
func (s *Server) enqueue(qm queuedMutation) error {
	return s.loop.Enqueue(qm.mut, qm.reply)
}

// ListenAndServe serves the handler on addr until Shutdown (which returns
// http.ErrServerClosed here) or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrShuttingDown
	}
	s.http = hs
	s.mu.Unlock()
	return hs.ListenAndServe()
}

// Serve is ListenAndServe over an already-bound listener, for callers that
// need to know the resolved address (e.g. -addr :0) before serving starts.
func (s *Server) Serve(ln net.Listener) error {
	hs := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrShuttingDown
	}
	s.http = hs
	s.mu.Unlock()
	return hs.Serve(ln)
}

// Shutdown stops the server gracefully: new mutations are rejected with
// ErrShuttingDown (503), the embedded HTTP server (if ListenAndServe was
// used) stops accepting and waits for in-flight handlers — including those
// blocked on their batch's application — and the apply loop drains every
// queued mutation before exiting. ctx bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	hs := s.http
	s.mu.Unlock()

	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	s.loop.Close()
	select {
	case <-s.loop.Drained():
	case <-ctx.Done():
		// The undrained loop may still be appending; leave the store open
		// rather than yank the WAL from under it.
		return errors.Join(err, ctx.Err())
	}
	// The loop has drained, so no appender is alive; closing the store
	// group-commits any unsynced tail.
	return errors.Join(err, s.store.Close())
}
