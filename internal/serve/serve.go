// Package serve turns an engine.Engine into a concurrent assignment
// service. The engine itself is not safe for concurrent use, so the server
// splits the work between two planes:
//
//   - a single-writer apply loop (internal/applyloop, shared with the
//     multi-shard internal/cluster) owns the engine and is the only
//     goroutine that ever touches it. Mutations (task/worker upserts and
//     removals) arrive through a bounded queue, are drained in batches,
//     coalesced (only the last mutation per entity touches the grid index),
//     and applied through Engine.ApplyBatch under one version bump — so the
//     valid pairs are re-derived at most once per batch, not once per
//     mutation. After each batch the loop publishes a fresh
//     engine.Snapshot through an atomic pointer.
//
//   - solve and read requests never touch the engine: they load the most
//     recently published snapshot and run against its immutable problem.
//     A solve that started before a batch keeps its snapshot for its whole
//     run (the engine replaces, never edits, prepared problems), so it can
//     never observe a half-applied batch — snapshot isolation by
//     copy-on-write hand-off.
//
// Backpressure is explicit: when the mutation queue is full, enqueues fail
// and the HTTP layer answers 429 Too Many Requests. Every solve runs under
// a per-request deadline mapped to its context; when the deadline expires
// the solver's best-so-far partial assignment is returned, flagged as
// partial. Shutdown stops intake first, then drains the queue completely
// before the apply loop exits, so every accepted mutation is applied.
//
// See handlers.go for the HTTP/JSON surface (POST/DELETE /v1/tasks and
// /v1/workers, POST /v1/solve, GET /v1/assignment, GET /v1/stats,
// /healthz) and cmd/rdbsc-server for the binary.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rdbsc/internal/applyloop"
	"rdbsc/internal/core"
	"rdbsc/internal/engine"
)

// Config parameterizes a Server.
type Config struct {
	// Engine is the engine the server drives. Required. The server's apply
	// loop takes ownership: after New, no other goroutine may call Engine
	// methods.
	Engine *engine.Engine
	// SolverName selects the default solver for /v1/solve requests that
	// name none, resolved through the core registry per request (solver
	// instances are not shared across concurrent solves). Default "dc".
	SolverName string
	// QueueDepth bounds the mutation queue; a full queue rejects enqueues
	// (HTTP 429). Default 1024.
	QueueDepth int
	// BatchMax caps how many queued mutations one batch drains. Default 256.
	BatchMax int
	// BatchLinger is how long the apply loop waits for more mutations after
	// draining the queue dry, to widen batches under bursty load. Default 0
	// (apply immediately whatever is pending).
	BatchLinger time.Duration
	// SolveTimeout is both the default and the upper bound for per-request
	// solve deadlines (requests may ask for less via timeout_ms, never
	// more). Default 30s.
	SolveTimeout time.Duration
	// SolveCache is the capacity of the cross-request solve cache: completed
	// solves are cached under (snapshot version, solver, seed) and replayed
	// verbatim while no mutation batch has applied since. Versions only move
	// forward, so a cached answer is always bit-identical to re-solving.
	// Default 0 (disabled).
	SolveCache int
}

func (c Config) withDefaults() Config {
	if c.SolverName == "" {
		c.SolverName = "dc"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	return c
}

// Errors mapped to HTTP statuses by the handler layer. They are the apply
// loop's own sentinels (one backpressure vocabulary across serve and
// cluster), re-exported under the names this package has always used.
var (
	// ErrQueueFull rejects an enqueue when the mutation queue is at
	// capacity (HTTP 429).
	ErrQueueFull = applyloop.ErrQueueFull
	// ErrShuttingDown rejects an enqueue after Shutdown began (HTTP 503).
	ErrShuttingDown = applyloop.ErrClosed
)

// queuedMutation is one mutation in flight, with an optional reply channel
// (buffered by the enqueuer; the apply loop never blocks on it).
type queuedMutation struct {
	mut   engine.Mutation
	reply chan<- applyloop.Ack
}

// applyAck reports one mutation's fate after its batch was applied.
type applyAck = applyloop.Ack

// Server is the concurrent assignment service. Construct with New (which
// starts the apply loop), expose Handler over HTTP or call ListenAndServe,
// and stop with Shutdown.
type Server struct {
	cfg  Config
	eng  *engine.Engine
	mux  *http.ServeMux
	loop *applyloop.Loop

	mu      sync.RWMutex // guards closing and http against Shutdown races
	closing bool
	http    *http.Server

	snap    atomic.Pointer[engine.Snapshot]
	lastRes atomic.Pointer[SolveResponse] // most recent completed solve
	cache   *SolveCache                   // nil when Config.SolveCache == 0

	// shardSolves wraps snapshot-plane solvers in component decomposition,
	// mirroring an engine built with Config.Decompose.
	shardSolves bool

	started time.Time
	counters

	// testStallApply, when non-nil, runs on the apply loop after it wakes
	// for a batch's first mutation and before it drains the rest — tests
	// block here to build deterministic batches. Never set in production.
	testStallApply func()
}

// counters are the solver-plane diagnostics behind /v1/stats (the mutation
// plane's counters live in the apply loop). rebuilds/retrieveNS are updated
// on the apply loop only; the core.Stats aggregate needs a mutex (it is a
// struct fold, not a counter).
type counters struct {
	rebuilds    atomic.Uint64 // batches whose snapshot re-derived the pairs
	retrieveNS  atomic.Int64  // cumulative pair-retrieval time
	solves      atomic.Uint64 // /v1/solve requests that ran a solver
	solveErrors atomic.Uint64 // solves that ended in a terminal error
	partials    atomic.Uint64 // solves interrupted by their deadline

	statsMu    sync.Mutex
	solveStats core.Stats // cumulative per-solve diagnostics

	// solveLatMS is a ring of recent solve latencies (completed and partial
	// solves), summarized into /v1/stats' solve_latency_ms quantiles — the
	// server-side complement of rdbsc-loadgen's client-side percentiles.
	solveLatMS [1024]float64
	latN       int // total recorded (ring index = latN % len)
}

// recordSolveLatency appends one solve's wall time to the latency ring.
func (c *counters) recordSolveLatency(ms float64) {
	c.statsMu.Lock()
	c.solveLatMS[c.latN%len(c.solveLatMS)] = ms
	c.latN++
	c.statsMu.Unlock()
}

// latencySample copies the recorded latencies out of the ring.
func (c *counters) latencySample() []float64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	n := c.latN
	if n > len(c.solveLatMS) {
		n = len(c.solveLatMS)
	}
	return append([]float64(nil), c.solveLatMS[:n]...)
}

// New validates the configuration, publishes the initial snapshot, starts
// the apply loop, and returns the server. The engine must not be used by
// any other goroutine afterwards.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	if _, err := core.NewByName(cfg.SolverName); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		cache:   NewSolveCache(cfg.SolveCache),
		started: time.Now(),
		// Read once here, not per request: after the apply loop starts, the
		// engine belongs to it alone. A Decompose engine keeps its sharded
		// semantics on the snapshot plane via core.Sharded (the cross-batch
		// per-component result cache stays engine-plane only).
		shardSolves: cfg.Engine.Decomposes(),
	}
	// The apply loop has not started yet, so this Snapshot call is still
	// single-threaded; from here on only the loop touches the engine.
	snap := s.eng.Snapshot()
	s.snap.Store(&snap)
	s.mux = s.routes()
	loop, err := applyloop.New(applyloop.Config{
		QueueDepth:  cfg.QueueDepth,
		BatchMax:    cfg.BatchMax,
		BatchLinger: cfg.BatchLinger,
		Apply:       s.applyToEngine,
		StallForTest: func() {
			if s.testStallApply != nil {
				s.testStallApply()
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.loop = loop
	return s, nil
}

// applyToEngine is the server's applyloop.Applier: it runs on the apply
// loop — the single writer — applies the coalesced batch under one engine
// version bump, and publishes the resulting snapshot. Snapshot re-derives
// the valid pairs here, on the apply loop, so solve requests always find a
// prepared problem and never pay the rebuild.
func (s *Server) applyToEngine(muts []engine.Mutation) ([]bool, uint64) {
	changed := s.eng.ApplyBatch(muts)
	snap := s.eng.Snapshot()
	s.snap.Store(&snap)
	if snap.Rebuilt {
		s.rebuilds.Add(1)
		s.retrieveNS.Add(int64(snap.Retrieve))
	}
	return changed, snap.Version
}

// Handler returns the server's HTTP handler, for mounting under a custom
// http.Server or a test server.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the most recently published engine snapshot. Safe for
// concurrent use; the returned view is immutable.
func (s *Server) Snapshot() engine.Snapshot { return *s.snap.Load() }

// enqueue hands one mutation to the apply loop, failing fast on a full
// queue or a closing server.
func (s *Server) enqueue(qm queuedMutation) error {
	return s.loop.Enqueue(qm.mut, qm.reply)
}

// ListenAndServe serves the handler on addr until Shutdown (which returns
// http.ErrServerClosed here) or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrShuttingDown
	}
	s.http = hs
	s.mu.Unlock()
	return hs.ListenAndServe()
}

// Shutdown stops the server gracefully: new mutations are rejected with
// ErrShuttingDown (503), the embedded HTTP server (if ListenAndServe was
// used) stops accepting and waits for in-flight handlers — including those
// blocked on their batch's application — and the apply loop drains every
// queued mutation before exiting. ctx bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	hs := s.http
	s.mu.Unlock()

	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	s.loop.Close()
	select {
	case <-s.loop.Drained():
	case <-ctx.Done():
		return errors.Join(err, ctx.Err())
	}
	return err
}
