// Package serve turns an engine.Engine into a concurrent assignment
// service. The engine itself is not safe for concurrent use, so the server
// splits the work between two planes:
//
//   - a single-writer apply loop owns the engine and is the only goroutine
//     that ever touches it. Mutations (task/worker upserts and removals)
//     arrive through a bounded queue, are drained in batches, coalesced
//     (only the last mutation per entity touches the grid index), and
//     applied through Engine.ApplyBatch under one version bump — so the
//     valid pairs are re-derived at most once per batch, not once per
//     mutation. After each batch the loop publishes a fresh
//     engine.Snapshot through an atomic pointer.
//
//   - solve and read requests never touch the engine: they load the most
//     recently published snapshot and run against its immutable problem.
//     A solve that started before a batch keeps its snapshot for its whole
//     run (the engine replaces, never edits, prepared problems), so it can
//     never observe a half-applied batch — snapshot isolation by
//     copy-on-write hand-off.
//
// Backpressure is explicit: when the mutation queue is full, enqueues fail
// and the HTTP layer answers 429 Too Many Requests. Every solve runs under
// a per-request deadline mapped to its context; when the deadline expires
// the solver's best-so-far partial assignment is returned, flagged as
// partial. Shutdown stops intake first, then drains the queue completely
// before the apply loop exits, so every accepted mutation is applied.
//
// See handlers.go for the HTTP/JSON surface (POST/DELETE /v1/tasks and
// /v1/workers, POST /v1/solve, GET /v1/assignment, GET /v1/stats,
// /healthz) and cmd/rdbsc-server for the binary.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/engine"
)

// Config parameterizes a Server.
type Config struct {
	// Engine is the engine the server drives. Required. The server's apply
	// loop takes ownership: after New, no other goroutine may call Engine
	// methods.
	Engine *engine.Engine
	// SolverName selects the default solver for /v1/solve requests that
	// name none, resolved through the core registry per request (solver
	// instances are not shared across concurrent solves). Default "dc".
	SolverName string
	// QueueDepth bounds the mutation queue; a full queue rejects enqueues
	// (HTTP 429). Default 1024.
	QueueDepth int
	// BatchMax caps how many queued mutations one batch drains. Default 256.
	BatchMax int
	// BatchLinger is how long the apply loop waits for more mutations after
	// draining the queue dry, to widen batches under bursty load. Default 0
	// (apply immediately whatever is pending).
	BatchLinger time.Duration
	// SolveTimeout is both the default and the upper bound for per-request
	// solve deadlines (requests may ask for less via timeout_ms, never
	// more). Default 30s.
	SolveTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.SolverName == "" {
		c.SolverName = "dc"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	return c
}

// Errors mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull rejects an enqueue when the mutation queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: mutation queue full")
	// ErrShuttingDown rejects an enqueue after Shutdown began (HTTP 503).
	ErrShuttingDown = errors.New("serve: server shutting down")
)

// queuedMutation is one mutation in flight, with an optional reply channel
// (buffered by the enqueuer; the apply loop never blocks on it).
type queuedMutation struct {
	mut   engine.Mutation
	reply chan<- applyAck
}

// applyAck reports one mutation's fate after its batch was applied.
type applyAck struct {
	changed   bool   // the engine changed (effective upsert / found removal)
	coalesced bool   // superseded by a later same-entity mutation in the batch
	version   uint64 // engine version after the batch
}

// Server is the concurrent assignment service. Construct with New (which
// starts the apply loop), expose Handler over HTTP or call ListenAndServe,
// and stop with Shutdown.
type Server struct {
	cfg   Config
	eng   *engine.Engine
	mux   *http.ServeMux
	mutCh chan queuedMutation
	done  chan struct{} // closed when the apply loop has drained and exited

	mu      sync.RWMutex // guards closing and http against enqueue/Shutdown races
	closing bool
	http    *http.Server

	snap    atomic.Pointer[engine.Snapshot]
	lastRes atomic.Pointer[SolveResponse] // most recent completed solve

	// shardSolves wraps snapshot-plane solvers in component decomposition,
	// mirroring an engine built with Config.Decompose.
	shardSolves bool

	started time.Time
	counters

	// testStallApply, when non-nil, runs on the apply loop after it wakes
	// for a batch's first mutation and before it drains the rest — tests
	// block here to build deterministic batches. Never set in production.
	testStallApply func()
}

// counters are the serving-plane diagnostics behind /v1/stats, all updated
// lock-free. The solver-plane core.Stats aggregate needs a mutex (it is a
// struct fold, not a counter).
type counters struct {
	enqueued     atomic.Uint64 // mutations accepted into the queue
	applied      atomic.Uint64 // mutations applied to the engine
	coalesced    atomic.Uint64 // mutations superseded within their batch
	batches      atomic.Uint64 // batches drained
	rebuilds     atomic.Uint64 // batches whose snapshot re-derived the pairs
	retrieveNS   atomic.Int64  // cumulative pair-retrieval time
	rejectedFull atomic.Uint64 // enqueues rejected with ErrQueueFull
	solves       atomic.Uint64 // /v1/solve requests that ran a solver
	solveErrors  atomic.Uint64 // solves that ended in a terminal error
	partials     atomic.Uint64 // solves interrupted by their deadline

	statsMu    sync.Mutex
	solveStats core.Stats // cumulative per-solve diagnostics

	// solveLatMS is a ring of recent solve latencies (completed and partial
	// solves), summarized into /v1/stats' solve_latency_ms quantiles — the
	// server-side complement of rdbsc-loadgen's client-side percentiles.
	solveLatMS [1024]float64
	latN       int // total recorded (ring index = latN % len)
}

// recordSolveLatency appends one solve's wall time to the latency ring.
func (c *counters) recordSolveLatency(ms float64) {
	c.statsMu.Lock()
	c.solveLatMS[c.latN%len(c.solveLatMS)] = ms
	c.latN++
	c.statsMu.Unlock()
}

// latencySample copies the recorded latencies out of the ring.
func (c *counters) latencySample() []float64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	n := c.latN
	if n > len(c.solveLatMS) {
		n = len(c.solveLatMS)
	}
	return append([]float64(nil), c.solveLatMS[:n]...)
}

// New validates the configuration, publishes the initial snapshot, starts
// the apply loop, and returns the server. The engine must not be used by
// any other goroutine afterwards.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	if _, err := core.NewByName(cfg.SolverName); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		mutCh:   make(chan queuedMutation, cfg.QueueDepth),
		done:    make(chan struct{}),
		started: time.Now(),
		// Read once here, not per request: after the apply loop starts, the
		// engine belongs to it alone. A Decompose engine keeps its sharded
		// semantics on the snapshot plane via core.Sharded (the cross-batch
		// per-component result cache stays engine-plane only).
		shardSolves: cfg.Engine.Decomposes(),
	}
	// The apply loop has not started yet, so this Snapshot call is still
	// single-threaded; from here on only the loop touches the engine.
	snap := s.eng.Snapshot()
	s.snap.Store(&snap)
	s.mux = s.routes()
	go s.applyLoop()
	return s, nil
}

// Handler returns the server's HTTP handler, for mounting under a custom
// http.Server or a test server.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the most recently published engine snapshot. Safe for
// concurrent use; the returned view is immutable.
func (s *Server) Snapshot() engine.Snapshot { return *s.snap.Load() }

// enqueue hands one mutation to the apply loop, failing fast on a full
// queue or a closing server.
func (s *Server) enqueue(qm queuedMutation) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closing {
		return ErrShuttingDown
	}
	select {
	case s.mutCh <- qm:
		s.enqueued.Add(1)
		return nil
	default:
		s.rejectedFull.Add(1)
		return ErrQueueFull
	}
}

// ListenAndServe serves the handler on addr until Shutdown (which returns
// http.ErrServerClosed here) or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrShuttingDown
	}
	s.http = hs
	s.mu.Unlock()
	return hs.ListenAndServe()
}

// Shutdown stops the server gracefully: new mutations are rejected with
// ErrShuttingDown (503), the embedded HTTP server (if ListenAndServe was
// used) stops accepting and waits for in-flight handlers — including those
// blocked on their batch's application — and the apply loop drains every
// queued mutation before exiting. ctx bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	hs := s.http
	s.mu.Unlock()

	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	if !already {
		// No enqueue can be in flight: enqueue holds mu.RLock and checks
		// closing, and closing was set under mu.Lock above.
		close(s.mutCh)
	}
	select {
	case <-s.done:
	case <-ctx.Done():
		return errors.Join(err, ctx.Err())
	}
	return err
}
