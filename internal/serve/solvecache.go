package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// SolveCacheKey identifies one cacheable solve: a snapshot fingerprint plus
// the full solve request identity (solver name and seed — two requests that
// differ in either may legitimately produce different assignments).
//
// On the single-engine serve plane the fingerprint is the snapshot version
// itself (versions are strictly increasing, so equal version ⇒ identical
// snapshot). On the cluster plane it is a hash of the per-shard version
// vector and the routing generation; because a hash can collide, every
// entry also stores the exact vector, which Get re-verifies.
type SolveCacheKey struct {
	Fingerprint uint64
	Solver      string
	Seed        int64
}

// SolveCacheStats is a point-in-time snapshot of the cache counters.
type SolveCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// solveCacheEntry is one cached solve with the exact state identity it was
// produced under.
type solveCacheEntry struct {
	key      SolveCacheKey
	versions []uint64
	routeGen uint64
	value    any
}

// SolveCache is a fixed-capacity LRU of completed solve results, shared by
// the serve and cluster planes. Only clean, complete solves belong in it —
// never partials or errors — and Get returns an entry only when the exact
// version vector (and routing generation) of the current state matches the
// one the entry was computed under, so a cached result is bit-identical to
// what re-running the solve would produce: staleness is zero by
// construction, not by TTL.
//
// A nil *SolveCache is valid and means "disabled": Get always misses
// (without counting), Put is a no-op. All methods are safe for concurrent
// use.
type SolveCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[SolveCacheKey]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewSolveCache returns an LRU holding up to capacity entries, or nil (a
// disabled cache) when capacity <= 0.
func NewSolveCache(capacity int) *SolveCache {
	if capacity <= 0 {
		return nil
	}
	return &SolveCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[SolveCacheKey]*list.Element, capacity),
	}
}

// Get returns the cached value for key if present AND computed under
// exactly the given version vector and routing generation. A fingerprint
// collision (key present, vector different) is treated as a miss and the
// stale entry is dropped.
func (c *SolveCache) Get(key SolveCacheKey, versions []uint64, routeGen uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*solveCacheEntry)
	if e.routeGen != routeGen || !sameVersions(e.versions, versions) {
		// Same fingerprint, different state: the entry can never become
		// valid again (versions only move forward), so drop it.
		c.ll.Remove(el)
		delete(c.items, key)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return e.value, true
}

// Put stores a completed solve under key. The versions slice is copied, so
// callers may reuse their backing array.
func (c *SolveCache) Put(key SolveCacheKey, versions []uint64, routeGen uint64, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*solveCacheEntry)
		e.versions = append([]uint64(nil), versions...)
		e.routeGen = routeGen
		e.value = value
		c.ll.MoveToFront(el)
		return
	}
	e := &solveCacheEntry{
		key:      key,
		versions: append([]uint64(nil), versions...),
		routeGen: routeGen,
		value:    value,
	}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*solveCacheEntry).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of cached entries (0 for a disabled cache).
func (c *SolveCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit/miss/eviction counters (zero for a
// disabled cache).
func (c *SolveCache) Stats() SolveCacheStats {
	if c == nil {
		return SolveCacheStats{}
	}
	return SolveCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

func sameVersions(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
