package store

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// FuzzWALDecode pins the WAL codec's safety and canonicality:
//
//   - DecodeRecord must never panic on arbitrary bytes (a corrupt log must
//     fail recovery with an error, not crash the server at boot);
//   - every input that decodes must re-encode byte-identically — the
//     encoding is canonical, so there is exactly one wire form per record;
//   - flipping any single bit of a valid record must make it undecodable
//     (the CRC plus strict structural validation leave no blind spots).
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: one record per mutation op, an empty batch, a mixed
	// batch with float edge cases, and a few structurally-broken frames so
	// the fuzzer starts on both sides of the validity boundary.
	f.Add(EncodeRecord(Record{Seq: 1}))
	f.Add(EncodeRecord(Record{Seq: 2, Muts: []engine.Mutation{
		engine.TaskUpsert(model.Task{ID: 1, Loc: geo.Pt(0.5, 0.5), Start: 0, End: 4}),
	}}))
	f.Add(EncodeRecord(Record{Seq: 3, Muts: []engine.Mutation{engine.TaskRemoval(7)}}))
	f.Add(EncodeRecord(Record{Seq: 4, Muts: []engine.Mutation{
		engine.WorkerUpsert(model.Worker{ID: 2, Loc: geo.Pt(0.25, 0.75), Speed: 1.5, Dir: geo.FullCircle, Confidence: 0.9, Depart: 6}),
	}}))
	f.Add(EncodeRecord(Record{Seq: 5, Muts: []engine.Mutation{engine.WorkerRemoval(-3)}}))
	f.Add(EncodeRecord(Record{Seq: 6, Muts: []engine.Mutation{
		{Op: engine.OpUpsertTask, Task: model.Task{ID: 4, Loc: geo.Pt(0.1, 0.9), Start: 1, End: 3}, Epoch: 12},
		{Op: engine.OpUpsertWorker, Worker: model.Worker{ID: 5, Loc: geo.Pt(0.9, 0.1), Speed: 2, Dir: geo.FullCircle, Confidence: 0.8, Depart: 4}, Epoch: 1 << 62},
	}}))
	f.Add(EncodeRecord(Record{Seq: 1 << 40, Muts: []engine.Mutation{
		engine.TaskUpsert(model.Task{ID: -1, Loc: geo.Pt(math.Inf(1), -0.0), Start: math.NaN(), End: math.MaxFloat64}),
		engine.WorkerUpsert(model.Worker{ID: 0, Loc: geo.Pt(1e-308, 0), Speed: 0, Dir: geo.AngInterval{Lo: -math.Pi, Width: 2 * math.Pi}, Confidence: 1, Depart: 0}),
		engine.TaskRemoval(0),
		engine.WorkerRemoval(1 << 30),
	}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	f.Add([]byte{4, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4}) // bad checksum
	f.Add(bytes.Repeat([]byte{0}, frameHeaderLen+1))  // zero-length frame + junk

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeRecord(b) // must not panic
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error outside the ErrTorn/ErrCorrupt taxonomy: %v", err)
			}
			return
		}
		enc := EncodeRecord(rec)
		if !bytes.Equal(enc, b) {
			t.Fatalf("non-canonical accept: decoded %d-byte input re-encodes to %d bytes", len(b), len(enc))
		}
		// Valid records are fully checksum-protected: no single-bit flip
		// may still decode. (Bounded work: records the fuzzer finds are
		// small; the unit test covers a fixed record exhaustively too.)
		if len(b) <= 1024 {
			for byteIdx := range b {
				mut := append([]byte(nil), b...)
				mut[byteIdx] ^= 1 << (byteIdx % 8)
				if _, err := DecodeRecord(mut); err == nil {
					t.Fatalf("bit flip at byte %d still decodes", byteIdx)
				}
			}
		}
	})
}
