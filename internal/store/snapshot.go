package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// Snapshot wire format. A snapshot file is:
//
//	8-byte magic "RDBSSNP1"
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// and the payload captures a full compacted engine state:
//
//	u64 engine version at snapshot time
//	u64 last WAL sequence the snapshot covers (records with seq <= this
//	    are folded in and skipped during recovery)
//	f64 grid cell size (eta; 0 when the engine runs without the index)
//	f64 beta | u8 wait-allowed flag
//	u32 task count, then each task (i32 id, u64 recency epoch, f64 x y
//	    start end)
//	u32 worker count, then each worker (i32 id, u64 recency epoch, f64 x y
//	    speed dirLo dirWidth confidence depart)
//
// Snapshots are written to a temp file and atomically renamed into place,
// so a crash mid-write leaves either the old snapshot or none — never a
// partial one — and the CRC catches any rename that raced a dirty page.

// SnapshotData is a decoded snapshot: the compacted engine state plus the
// metadata recovery needs to splice the WAL suffix on top.
type SnapshotData struct {
	// Version is the engine version at snapshot time; recovery pins the
	// rebuilt engine to exactly this version before replaying the suffix.
	Version uint64
	// Seq is the last WAL sequence number folded into the snapshot. WAL
	// records with Seq <= this are skipped during recovery (they can
	// survive a crash between snapshot rename and WAL truncation).
	Seq uint64
	// GridEta is the index cell size the engine ran with (0 without the
	// index). Recovery pins the rebuilt grid to it, because pair
	// enumeration order — and with it solver tie-breaking — follows the
	// cell walk (see engine.GridEta).
	GridEta float64
	// Instance is the full compacted task/worker population, ID-sorted as
	// produced by Engine.Instance.
	Instance *model.Instance
	// Epochs carries each entity's recency stamp (entries only for stamped
	// entities; empty on the serve plane, which never stamps).
	Epochs EntityEpochs
}

var snapshotMagic = [8]byte{'R', 'D', 'B', 'S', 'S', 'N', 'P', '2'}

// encodeSnapshot renders the snapshot file contents (magic + framed
// payload).
func encodeSnapshot(s SnapshotData) []byte {
	in := s.Instance
	n := 8 + 8 + 8 + 8 + 1 + 4 + len(in.Tasks)*(4+8+4*8) + 4 + len(in.Workers)*(4+8+7*8)
	payload := make([]byte, 0, n)
	payload = appendU64(payload, s.Version)
	payload = appendU64(payload, s.Seq)
	payload = appendF64(payload, s.GridEta)
	payload = appendF64(payload, in.Beta)
	if in.Opt.WaitAllowed {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	payload = appendU32(payload, uint32(len(in.Tasks)))
	for _, t := range in.Tasks {
		payload = appendU32(payload, uint32(t.ID))
		payload = appendU64(payload, s.Epochs.Task(t.ID))
		payload = appendF64(payload, t.Loc.X)
		payload = appendF64(payload, t.Loc.Y)
		payload = appendF64(payload, t.Start)
		payload = appendF64(payload, t.End)
	}
	payload = appendU32(payload, uint32(len(in.Workers)))
	for _, w := range in.Workers {
		payload = appendU32(payload, uint32(w.ID))
		payload = appendU64(payload, s.Epochs.Worker(w.ID))
		payload = appendF64(payload, w.Loc.X)
		payload = appendF64(payload, w.Loc.Y)
		payload = appendF64(payload, w.Speed)
		payload = appendF64(payload, w.Dir.Lo)
		payload = appendF64(payload, w.Dir.Width)
		payload = appendF64(payload, w.Confidence)
		payload = appendF64(payload, w.Depart)
	}
	out := make([]byte, 0, len(snapshotMagic)+frameHeaderLen+len(payload))
	out = append(out, snapshotMagic[:]...)
	out = appendU32(out, uint32(len(payload)))
	out = appendU32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// maxSnapshotEntities caps the declared task/worker counts so a corrupt
// count field cannot drive a giant allocation before the per-entity bounds
// checks kick in.
const maxSnapshotEntities = 1 << 24

// decodeSnapshot parses a full snapshot file. Unlike the WAL, a snapshot
// has no torn-tail tolerance: the atomic rename guarantees completeness,
// so every failure is ErrCorrupt.
func decodeSnapshot(b []byte) (SnapshotData, error) {
	if len(b) < len(snapshotMagic)+frameHeaderLen {
		return SnapshotData{}, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(b))
	}
	if [8]byte(b[:8]) != snapshotMagic {
		return SnapshotData{}, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, b[:8])
	}
	body := b[8:]
	ln := binary.LittleEndian.Uint32(body[0:4])
	if uint64(ln) != uint64(len(body)-frameHeaderLen) {
		return SnapshotData{}, fmt.Errorf("%w: snapshot payload length %d, have %d bytes",
			ErrCorrupt, ln, len(body)-frameHeaderLen)
	}
	payload := body[frameHeaderLen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(body[4:8]); got != want {
		return SnapshotData{}, fmt.Errorf("%w: snapshot checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	r := &byteReader{b: payload}
	s := SnapshotData{Version: r.u64(), Seq: r.u64(), GridEta: r.f64()}
	in := &model.Instance{Beta: r.f64(), Opt: model.Options{WaitAllowed: r.u8() != 0}}
	nt := r.u32()
	if r.err == nil && nt > maxSnapshotEntities {
		return SnapshotData{}, fmt.Errorf("%w: task count %d exceeds cap", ErrCorrupt, nt)
	}
	if r.err == nil && nt > 0 {
		in.Tasks = make([]model.Task, 0, min(int(nt), 65536))
	}
	for i := uint32(0); i < nt && r.err == nil; i++ {
		id := model.TaskID(int32(r.u32()))
		if epoch := r.u64(); epoch != 0 {
			if s.Epochs.Tasks == nil {
				s.Epochs.Tasks = make(map[model.TaskID]uint64)
			}
			s.Epochs.Tasks[id] = epoch
		}
		in.Tasks = append(in.Tasks, model.Task{
			ID:    id,
			Loc:   geo.Point{X: r.f64(), Y: r.f64()},
			Start: r.f64(),
			End:   r.f64(),
		})
	}
	nw := r.u32()
	if r.err == nil && nw > maxSnapshotEntities {
		return SnapshotData{}, fmt.Errorf("%w: worker count %d exceeds cap", ErrCorrupt, nw)
	}
	if r.err == nil && nw > 0 {
		in.Workers = make([]model.Worker, 0, min(int(nw), 65536))
	}
	for i := uint32(0); i < nw && r.err == nil; i++ {
		id := model.WorkerID(int32(r.u32()))
		if epoch := r.u64(); epoch != 0 {
			if s.Epochs.Workers == nil {
				s.Epochs.Workers = make(map[model.WorkerID]uint64)
			}
			s.Epochs.Workers[id] = epoch
		}
		w := model.Worker{
			ID:  id,
			Loc: geo.Point{X: r.f64(), Y: r.f64()},
		}
		w.Speed = r.f64()
		w.Dir = geo.AngInterval{Lo: r.f64(), Width: r.f64()}
		w.Confidence = r.f64()
		w.Depart = r.f64()
		in.Workers = append(in.Workers, w)
	}
	if r.err != nil {
		return SnapshotData{}, r.err
	}
	if r.off != len(payload) {
		return SnapshotData{}, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(payload)-r.off)
	}
	s.Instance = in
	return s, nil
}
