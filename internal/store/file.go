package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// FsyncMode selects when the file backend flushes WAL appends to stable
// storage.
type FsyncMode int

const (
	// FsyncAlways syncs after every appended batch: no acknowledged
	// mutation is lost even to power failure. Slowest.
	FsyncAlways FsyncMode = iota
	// FsyncBatch group-commits: the append path syncs at most once per
	// FsyncInterval, so a power failure can lose up to one interval of
	// acknowledged batches. Process crashes (SIGKILL) lose nothing —
	// written pages survive in the OS cache. This is the recommended
	// production mode.
	FsyncBatch
	// FsyncOff never syncs on the append path (snapshots still sync).
	// Durable against process crashes only; fastest.
	FsyncOff
)

// ParseFsyncMode maps the -fsync flag values to a mode.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync mode %q (want always, batch, or off)", s)
}

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// FileOptions configures the file backend.
type FileOptions struct {
	// Fsync selects the append-path sync policy (default FsyncAlways —
	// the zero value is the safe one).
	Fsync FsyncMode
	// FsyncInterval is the FsyncBatch group-commit window (default 10ms).
	FsyncInterval time.Duration
}

// FileStats are the file backend's cumulative counters, readable
// concurrently with appends (the stats endpoint polls them).
type FileStats struct {
	Appends   uint64 // WAL records written
	Syncs     uint64 // fsync calls on the WAL
	Snapshots uint64 // compacted snapshots written
}

const (
	walName      = "wal.log"
	snapName     = "snapshot.db"
	snapTempName = "snapshot.db.tmp"
)

var walMagic = [8]byte{'R', 'D', 'B', 'S', 'W', 'A', 'L', '2'}

// FileStore is the durable backend: one directory holding one WAL and at
// most one compacted snapshot. The apply loop is the single external
// writer (see Store); the internal mutex exists only because FsyncBatch
// mode runs a background flusher that group-commits idle dirty appends —
// without it, a traffic pause would leave acknowledged batches unsynced
// until the next append or Close, an unbounded power-failure loss window
// instead of the documented one-interval one.
type FileStore struct {
	dir  string
	opts FileOptions

	// mu serializes WAL writes, syncs, and truncation between the caller
	// (apply loop) and the FsyncBatch idle flusher.
	mu  sync.Mutex
	wal *os.File
	off int64  // current WAL end offset
	seq uint64 // next record sequence number
	// broken is set when an append failed and the partial write could not
	// be rolled back: anything written after it would be unreachable
	// garbage, so every later append fails fast instead.
	broken error

	dirty    bool      // batch mode: unsynced appends pending
	lastSync time.Time // batch mode: last group-commit time

	flushStop chan struct{} // non-nil while the idle flusher runs
	flushDone chan struct{}

	recovered *RecoveredState // scanned at Open, handed out by Recover

	appends   atomic.Uint64
	syncs     atomic.Uint64
	snapshots atomic.Uint64
}

// Open opens (creating if needed) the durable store in dir. It validates
// the whole WAL up front: a torn final record — the crash-mid-append
// signature — is truncated away and recovery proceeds; a corrupt record
// anywhere earlier fails Open with ErrCorrupt, because the log suffix
// after it cannot be trusted.
func Open(dir string, opts FileOptions) (*FileStore, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 10 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A leftover temp snapshot is a crash mid-WriteSnapshot before the
	// rename: the real snapshot (if any) is still the old one.
	_ = os.Remove(filepath.Join(dir, snapTempName))

	fs := &FileStore{dir: dir, opts: opts, seq: 1}
	rs := &RecoveredState{}
	if b, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		snap, err := decodeSnapshot(b)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot %s: %w", snapName, err)
		}
		rs.Snapshot = &snap
		fs.seq = snap.Seq + 1
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}

	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs.wal = wal
	b, err := io.ReadAll(wal)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: reading WAL: %w", err)
	}
	switch {
	case len(b) == 0:
		// Fresh log: write the magic and sync it so the header survives
		// any later crash (a once-per-boot cost even with FsyncOff).
		if _, err := wal.Write(walMagic[:]); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: writing WAL header: %w", err)
		}
		if err := wal.Sync(); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: syncing WAL header: %w", err)
		}
		fs.off = int64(len(walMagic))
	case len(b) < len(walMagic):
		// Torn header: the process died between create and magic write.
		// Nothing could have been logged yet; heal by rewriting it.
		if err := fs.rewriteHeader(); err != nil {
			wal.Close()
			return nil, err
		}
	case [8]byte(b[:8]) != walMagic:
		wal.Close()
		return nil, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, b[:8])
	default:
		off := int64(len(walMagic))
		rest := b[len(walMagic):]
		snapSeq := uint64(0)
		if rs.Snapshot != nil {
			snapSeq = rs.Snapshot.Seq
		}
		lastSeq := snapSeq
		for len(rest) > 0 {
			rec, n, err := readRecord(rest)
			if errors.Is(err, ErrTorn) {
				// Crash mid-append: drop the tail so later appends start
				// from a clean record boundary.
				if terr := wal.Truncate(off); terr != nil {
					wal.Close()
					return nil, fmt.Errorf("store: truncating torn WAL tail: %w", terr)
				}
				break
			}
			if err != nil {
				wal.Close()
				return nil, fmt.Errorf("store: WAL at offset %d: %w", off, err)
			}
			if rec.Seq <= snapSeq {
				// Covered by the snapshot: a crash landed between the
				// snapshot rename and the WAL truncation. Skip it.
			} else {
				if rec.Seq != lastSeq+1 {
					wal.Close()
					return nil, fmt.Errorf("%w: WAL sequence %d after %d at offset %d",
						ErrCorrupt, rec.Seq, lastSeq, off)
				}
				lastSeq = rec.Seq
				rs.Records = append(rs.Records, rec)
			}
			off += int64(n)
			rest = rest[n:]
		}
		fs.off = off
		fs.seq = lastSeq + 1
	}
	if _, err := wal.Seek(fs.off, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	fs.recovered = rs
	fs.lastSync = time.Now()
	if opts.Fsync == FsyncBatch {
		fs.flushStop = make(chan struct{})
		fs.flushDone = make(chan struct{})
		go fs.flushLoop()
	}
	return fs, nil
}

// flushLoop is FsyncBatch's idle guard. The append path only group-commits
// on the first append after FsyncInterval elapses, so without this loop a
// traffic pause would leave the last acknowledged batches dirty until the
// next append or Close — an unbounded power-failure loss window. The loop
// syncs any dirty tail once the interval has passed without an append,
// keeping the documented "up to one interval" bound. A failed background
// sync leaves the tail dirty so the next tick (and the next append) retry
// and surface the error.
func (fs *FileStore) flushLoop() {
	defer close(fs.flushDone)
	t := time.NewTicker(fs.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-fs.flushStop:
			return
		case <-t.C:
			fs.mu.Lock()
			if fs.dirty && time.Since(fs.lastSync) >= fs.opts.FsyncInterval {
				if err := fs.wal.Sync(); err == nil {
					fs.syncs.Add(1)
					fs.dirty = false
					fs.lastSync = time.Now()
				}
			}
			fs.mu.Unlock()
		}
	}
}

func (fs *FileStore) rewriteHeader() error {
	if err := fs.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating torn WAL header: %w", err)
	}
	if _, err := fs.wal.WriteAt(walMagic[:], 0); err != nil {
		return fmt.Errorf("store: writing WAL header: %w", err)
	}
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL header: %w", err)
	}
	fs.off = int64(len(walMagic))
	return nil
}

// Dir returns the store's directory.
func (fs *FileStore) Dir() string { return fs.dir }

// Backend returns the backend label for stats reporting.
func (fs *FileStore) Backend() string { return "file" }

// Backend returns the backend label for stats reporting.
func (*Memory) Backend() string { return "memory" }

// Stats returns the cumulative counters; safe to call concurrently with
// appends.
func (fs *FileStore) Stats() FileStats {
	return FileStats{
		Appends:   fs.appends.Load(),
		Syncs:     fs.syncs.Load(),
		Snapshots: fs.snapshots.Load(),
	}
}

// AppendBatch implements Store: one framed record per batch, written (and
// per the fsync policy, synced) before the caller applies the batch. A
// batch whose encoding would exceed the WAL record payload cap is rejected
// up front — recovery refuses oversized records, so writing one would
// produce a log the store could never boot from.
func (fs *FileStore) AppendBatch(muts []engine.Mutation) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.broken != nil {
		return fmt.Errorf("store: WAL unusable after failed append: %w", fs.broken)
	}
	if n := recordPayloadLen(muts); n > maxRecordPayload {
		return fmt.Errorf("store: batch of %d mutations encodes to %d bytes, over the %d-byte WAL record cap; lower the apply loop's BatchMax", len(muts), n, maxRecordPayload)
	}
	buf := EncodeRecord(Record{Seq: fs.seq, Muts: muts})
	n, err := fs.wal.Write(buf)
	if err != nil {
		// Roll the partial frame back so the log still ends on a record
		// boundary; if even that fails (the ENOSPC double-fault), poison
		// the store — appending after a partial frame would bury every
		// later record behind a corrupt one.
		if n > 0 {
			if terr := fs.wal.Truncate(fs.off); terr != nil {
				fs.broken = err
			} else if _, serr := fs.wal.Seek(fs.off, io.SeekStart); serr != nil {
				fs.broken = err
			}
		}
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	fs.off += int64(n)
	fs.seq++
	fs.appends.Add(1)
	switch fs.opts.Fsync {
	case FsyncAlways:
		if err := fs.wal.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
		fs.syncs.Add(1)
	case FsyncBatch:
		fs.dirty = true
		if now := time.Now(); now.Sub(fs.lastSync) >= fs.opts.FsyncInterval {
			if err := fs.wal.Sync(); err != nil {
				return fmt.Errorf("store: syncing WAL: %w", err)
			}
			fs.syncs.Add(1)
			fs.dirty = false
			fs.lastSync = now
		}
	}
	return nil
}

// WriteSnapshot implements Store: the full state is written to a temp
// file, synced, atomically renamed over the previous snapshot, and then
// the WAL records it covers are truncated away. A crash at any point
// leaves a recoverable store: before the rename the old snapshot + full
// WAL stand; between rename and truncation the new snapshot's Seq makes
// recovery skip the still-present covered records.
func (fs *FileStore) WriteSnapshot(version uint64, gridEta float64, in *model.Instance, epochs EntityEpochs) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data := encodeSnapshot(SnapshotData{Version: version, Seq: fs.seq - 1, GridEta: gridEta, Instance: in, Epochs: epochs})
	tmp := filepath.Join(fs.dir, snapTempName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(fs.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if d, err := os.Open(fs.dir); err == nil {
		// Sync the directory so the rename itself is durable; best-effort
		// on filesystems that reject directory fsync.
		_ = d.Sync()
		d.Close()
	}
	fs.snapshots.Add(1)
	// The WAL records covered by the snapshot are dead weight now.
	if err := fs.wal.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("store: truncating WAL after snapshot: %w", err)
	}
	if _, err := fs.wal.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing truncated WAL: %w", err)
	}
	fs.syncs.Add(1)
	fs.off = int64(len(walMagic))
	fs.dirty = false
	fs.lastSync = time.Now()
	return nil
}

// HasState reports whether the store held any persisted state at Open (a
// snapshot or WAL records). Callers use it to decide whether a bulk
// preload should be ignored; only meaningful before Recover is called.
func (fs *FileStore) HasState() bool {
	return fs.recovered != nil && !fs.recovered.Empty()
}

// Recover implements Store, returning the state scanned at Open. It may
// be called once; the scanned records are released afterwards.
func (fs *FileStore) Recover() (RecoveredState, error) {
	if fs.recovered == nil {
		return RecoveredState{}, errors.New("store: Recover called twice")
	}
	rs := *fs.recovered
	fs.recovered = nil
	return rs, nil
}

// Close implements Store, stopping the idle flusher and group-committing
// any unsynced appends first.
func (fs *FileStore) Close() error {
	if fs.flushStop != nil {
		// Stop the flusher before taking mu: it may be mid-tick holding it.
		close(fs.flushStop)
		<-fs.flushDone
		fs.flushStop = nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var err error
	if fs.dirty && fs.opts.Fsync != FsyncOff {
		if serr := fs.wal.Sync(); serr != nil {
			err = fmt.Errorf("store: syncing WAL at close: %w", serr)
		} else {
			fs.syncs.Add(1)
		}
		fs.dirty = false
	}
	if cerr := fs.wal.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("store: %w", cerr)
	}
	return err
}
