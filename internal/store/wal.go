package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// WAL record wire format. Every record is one framed entry:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// and the payload is a fixed-width little-endian encoding of one coalesced
// mutation batch:
//
//	u8 record kind (recordBatch)
//	u64 sequence number (strictly increasing per append, 1-based)
//	u32 mutation count
//	per mutation: u8 op, then the op's fields (IDs as i32, floats as raw
//	IEEE-754 bits — NaNs and signed zeros round-trip exactly). Upserts
//	carry a u64 recency epoch after the ID (see engine.Mutation.Epoch);
//	removals carry only the ID.
//
// The encoding is canonical: every field is fixed-width, the op and kind
// bytes are validated, and DecodeRecord requires the payload to be consumed
// exactly — so Encode(Decode(b)) == b for every b that decodes, which is
// what the FuzzWALDecode round-trip property pins.
const (
	// recordBatch is the only record kind today; the byte exists so future
	// kinds (e.g. a routing epoch marker) stay decodable.
	recordBatch = 1

	frameHeaderLen = 8 // u32 length + u32 crc

	// maxRecordPayload caps a record's declared payload length. A batch is
	// bounded by the apply loop's BatchMax (256 by default), so anything
	// near this cap is corruption, and the cap keeps a corrupt length field
	// from driving a giant allocation during recovery or fuzzing.
	maxRecordPayload = 16 << 20

	// maxBatchMuts caps the declared mutation count for the same reason.
	maxBatchMuts = 1 << 20
)

// Errors reported by the WAL decoding layer.
var (
	// ErrTorn marks an incomplete record at the end of the buffer: the
	// declared frame extends past the available bytes. A torn tail is the
	// signature of a crash mid-append; recovery tolerates it by truncating
	// the log at the last complete record.
	ErrTorn = errors.New("store: torn WAL record")
	// ErrCorrupt marks a structurally complete record that fails
	// validation (checksum mismatch, bad kind or op byte, inconsistent
	// lengths). Corruption anywhere before the tail is a hard recovery
	// error: the suffix cannot be trusted.
	ErrCorrupt = errors.New("store: corrupt WAL record")
)

// Record is one decoded WAL entry: a coalesced mutation batch and its
// append sequence number.
type Record struct {
	Seq  uint64
	Muts []engine.Mutation
}

// mutEncodedLen returns the fixed encoded size of one mutation.
func mutEncodedLen(m engine.Mutation) int {
	switch m.Op {
	case engine.OpUpsertTask:
		return 1 + 4 + 8 + 4*8 // op, id, epoch, loc/start/end
	case engine.OpUpsertWorker:
		return 1 + 4 + 8 + 7*8 // op, id, epoch, loc/speed/dir/conf/depart
	default: // removals carry only the ID
		return 1 + 4
	}
}

// recordPayloadLen returns the encoded payload size of one record holding
// muts. AppendBatch enforces maxRecordPayload against it before writing, so
// the WAL never holds a record recovery would refuse to read.
func recordPayloadLen(muts []engine.Mutation) int {
	n := 1 + 8 + 4 // kind, seq, count
	for _, m := range muts {
		n += mutEncodedLen(m)
	}
	return n
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// EncodeRecord renders the record as one framed WAL entry.
func EncodeRecord(rec Record) []byte {
	payload := make([]byte, 0, recordPayloadLen(rec.Muts))
	payload = append(payload, recordBatch)
	payload = appendU64(payload, rec.Seq)
	payload = appendU32(payload, uint32(len(rec.Muts)))
	for _, m := range rec.Muts {
		payload = append(payload, byte(m.Op))
		switch m.Op {
		case engine.OpUpsertTask:
			payload = appendU32(payload, uint32(m.Task.ID))
			payload = appendU64(payload, m.Epoch)
			payload = appendF64(payload, m.Task.Loc.X)
			payload = appendF64(payload, m.Task.Loc.Y)
			payload = appendF64(payload, m.Task.Start)
			payload = appendF64(payload, m.Task.End)
		case engine.OpRemoveTask:
			payload = appendU32(payload, uint32(m.TaskID))
		case engine.OpUpsertWorker:
			payload = appendU32(payload, uint32(m.Worker.ID))
			payload = appendU64(payload, m.Epoch)
			payload = appendF64(payload, m.Worker.Loc.X)
			payload = appendF64(payload, m.Worker.Loc.Y)
			payload = appendF64(payload, m.Worker.Speed)
			payload = appendF64(payload, m.Worker.Dir.Lo)
			payload = appendF64(payload, m.Worker.Dir.Width)
			payload = appendF64(payload, m.Worker.Confidence)
			payload = appendF64(payload, m.Worker.Depart)
		case engine.OpRemoveWorker:
			payload = appendU32(payload, uint32(m.WorkerID))
		default:
			panic(fmt.Sprintf("store: unknown mutation op %d", m.Op))
		}
	}
	out := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// byteReader walks a payload with bounds checking.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("%w: payload truncated at offset %d", ErrCorrupt, r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *byteReader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *byteReader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *byteReader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *byteReader) f64() float64 { return math.Float64frombits(r.u64()) }

// decodePayload parses a record payload, requiring exact consumption.
func decodePayload(payload []byte) (Record, error) {
	r := &byteReader{b: payload}
	if kind := r.u8(); r.err == nil && kind != recordBatch {
		return Record{}, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	rec := Record{Seq: r.u64()}
	n := r.u32()
	if r.err == nil && n > maxBatchMuts {
		return Record{}, fmt.Errorf("%w: mutation count %d exceeds cap", ErrCorrupt, n)
	}
	if r.err == nil && n > 0 {
		rec.Muts = make([]engine.Mutation, 0, min(int(n), 4096))
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		var m engine.Mutation
		m.Op = engine.Op(r.u8())
		switch m.Op {
		case engine.OpUpsertTask:
			m.Task.ID = model.TaskID(int32(r.u32()))
			m.Epoch = r.u64()
			m.Task.Loc = geo.Point{X: r.f64(), Y: r.f64()}
			m.Task.Start = r.f64()
			m.Task.End = r.f64()
		case engine.OpRemoveTask:
			m.TaskID = model.TaskID(int32(r.u32()))
		case engine.OpUpsertWorker:
			m.Worker.ID = model.WorkerID(int32(r.u32()))
			m.Epoch = r.u64()
			m.Worker.Loc = geo.Point{X: r.f64(), Y: r.f64()}
			m.Worker.Speed = r.f64()
			m.Worker.Dir = geo.AngInterval{Lo: r.f64(), Width: r.f64()}
			m.Worker.Confidence = r.f64()
			m.Worker.Depart = r.f64()
		case engine.OpRemoveWorker:
			m.WorkerID = model.WorkerID(int32(r.u32()))
		default:
			return Record{}, fmt.Errorf("%w: unknown mutation op %d", ErrCorrupt, m.Op)
		}
		rec.Muts = append(rec.Muts, m)
	}
	if r.err != nil {
		return Record{}, r.err
	}
	if r.off != len(payload) {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-r.off)
	}
	return rec, nil
}

// readRecord parses one framed record at the head of b, returning the
// bytes consumed. ErrTorn means b ends before the declared frame does (the
// crash-mid-append signature); ErrCorrupt means the frame is complete but
// invalid.
func readRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, fmt.Errorf("%w: %d header bytes", ErrTorn, len(b))
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	if ln > maxRecordPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds cap", ErrCorrupt, ln)
	}
	if uint64(len(b)-frameHeaderLen) < uint64(ln) {
		return Record{}, 0, fmt.Errorf("%w: %d of %d payload bytes", ErrTorn, len(b)-frameHeaderLen, ln)
	}
	payload := b[frameHeaderLen : frameHeaderLen+int(ln)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderLen + int(ln), nil
}

// DecodeRecord parses exactly one framed record occupying all of b. It is
// the fuzzing entry point: arbitrary input must never panic, and every
// input it accepts must re-encode byte-identically.
func DecodeRecord(b []byte) (Record, error) {
	rec, n, err := readRecord(b)
	if err != nil {
		return Record{}, err
	}
	if n != len(b) {
		return Record{}, fmt.Errorf("%w: %d trailing bytes after record", ErrCorrupt, len(b)-n)
	}
	return rec, nil
}
