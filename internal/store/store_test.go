package store

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// testRecord carries every mutation op plus the float edge cases the raw
// IEEE-754 encoding must round-trip (NaN, signed zero, infinities). The
// upserts are epoch-stamped so the recency field is covered by the
// round-trip, bit-flip, and truncation suites.
func testRecord(seq uint64) Record {
	tu := engine.TaskUpsert(model.Task{ID: 7, Loc: geo.Pt(0.25, -0.0), Start: math.NaN(), End: math.Inf(1)})
	tu.Epoch = 3
	wu := engine.WorkerUpsert(model.Worker{
		ID: 9, Loc: geo.Pt(1e-300, 0.75), Speed: 1.5, Dir: geo.AngInterval{Lo: 0.1, Width: math.Pi},
		Confidence: 0.9, Depart: math.Inf(-1),
	})
	wu.Epoch = 1 << 50
	return Record{Seq: seq, Muts: []engine.Mutation{
		tu,
		engine.TaskRemoval(-3),
		wu,
		engine.WorkerRemoval(12),
	}}
}

// recordsEqual compares via the canonical encoding, which treats NaN
// payloads bit-exactly where reflect.DeepEqual would not.
func recordsEqual(a, b Record) bool {
	return bytes.Equal(EncodeRecord(a), EncodeRecord(b))
}

func randMut(rng *rand.Rand) engine.Mutation {
	switch rng.Intn(4) {
	case 0:
		return engine.TaskUpsert(model.Task{
			ID: model.TaskID(rng.Intn(40)), Loc: geo.Pt(rng.Float64(), rng.Float64()),
			Start: 0, End: rng.Float64() * 6,
		})
	case 1:
		return engine.TaskRemoval(model.TaskID(rng.Intn(40)))
	case 2:
		return engine.WorkerUpsert(model.Worker{
			ID: model.WorkerID(rng.Intn(40)), Loc: geo.Pt(rng.Float64(), rng.Float64()),
			Speed: 0.5 + rng.Float64(), Dir: geo.FullCircle,
			Confidence: 0.5 + 0.5*rng.Float64(), Depart: 1 + rng.Float64()*8,
		})
	default:
		return engine.WorkerRemoval(model.WorkerID(rng.Intn(40)))
	}
}

func randBatch(rng *rand.Rand) []engine.Mutation {
	muts := make([]engine.Mutation, 1+rng.Intn(6))
	for i := range muts {
		muts[i] = randMut(rng)
	}
	return muts
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, rec := range []Record{
		{Seq: 1},       // empty batch
		testRecord(42), // every op + float edge cases
		{Seq: 1 << 60, Muts: []engine.Mutation{engine.TaskRemoval(0)}},
	} {
		enc := EncodeRecord(rec)
		dec, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("DecodeRecord(EncodeRecord(%+v)): %v", rec, err)
		}
		if dec.Seq != rec.Seq || len(dec.Muts) != len(rec.Muts) {
			t.Fatalf("decoded seq=%d muts=%d, want seq=%d muts=%d", dec.Seq, len(dec.Muts), rec.Seq, len(rec.Muts))
		}
		if re := EncodeRecord(dec); !bytes.Equal(re, enc) {
			t.Fatalf("re-encoding differs from original (%d vs %d bytes)", len(re), len(enc))
		}
	}
}

// TestDecodeRejectsBitFlips pins the checksum contract: any single-bit
// corruption of a valid record must fail to decode — either as ErrCorrupt
// (checksum/structure) or ErrTorn (a length-field flip declaring a longer
// frame). No flip may decode successfully.
func TestDecodeRejectsBitFlips(t *testing.T) {
	enc := EncodeRecord(testRecord(3))
	for byteIdx := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[byteIdx] ^= 1 << bit
			if _, err := DecodeRecord(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", byteIdx, bit)
			}
		}
	}
}

func TestDecodeTruncationIsTorn(t *testing.T) {
	enc := EncodeRecord(testRecord(5))
	for cut := 0; cut < len(enc); cut++ {
		_, err := DecodeRecord(enc[:cut])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrTorn", cut, err)
		}
	}
	// Trailing bytes after a complete record are corruption, not tearing:
	// DecodeRecord demands exactly one record.
	if _, err := DecodeRecord(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotCodecRejectsCorruption(t *testing.T) {
	in := &model.Instance{
		Tasks:   []model.Task{{ID: 1, Loc: geo.Pt(0.1, 0.2), Start: 0, End: 4}},
		Workers: []model.Worker{{ID: 2, Loc: geo.Pt(0.3, 0.4), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9, Depart: 6}},
		Beta:    0.5,
	}
	epochs := EntityEpochs{
		Tasks:   map[model.TaskID]uint64{1: 11},
		Workers: map[model.WorkerID]uint64{2: 22},
	}
	enc := encodeSnapshot(SnapshotData{Version: 17, Seq: 9, GridEta: 0.25, Instance: in, Epochs: epochs})
	snap, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decodeSnapshot(encodeSnapshot): %v", err)
	}
	if snap.Version != 17 || snap.Seq != 9 || !reflect.DeepEqual(snap.Instance, in) {
		t.Fatalf("snapshot round-trip mismatch: %+v", snap)
	}
	if !reflect.DeepEqual(snap.Epochs, epochs) {
		t.Fatalf("snapshot epochs round-trip mismatch: %+v, want %+v", snap.Epochs, epochs)
	}
	for byteIdx := range enc {
		mut := append([]byte(nil), enc...)
		mut[byteIdx] ^= 0x40
		if _, err := decodeSnapshot(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("snapshot byte flip at %d: got %v, want ErrCorrupt", byteIdx, err)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeSnapshot(enc[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("snapshot truncated to %d bytes: got %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncOff} {
		got, err := ParseFsyncMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseFsyncMode(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Error("ParseFsyncMode accepted an unknown mode")
	}
}

func TestMemoryStoreIsNoOp(t *testing.T) {
	m := NewMemory()
	if err := m.AppendBatch([]engine.Mutation{engine.TaskRemoval(1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSnapshot(5, 0, &model.Instance{}, EntityEpochs{}); err != nil {
		t.Fatal(err)
	}
	rs, err := m.Recover()
	if err != nil || !rs.Empty() {
		t.Fatalf("memory Recover = %+v, %v; want empty", rs, err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func openT(t *testing.T, dir string, opts FileOptions) *FileStore {
	t.Helper()
	fs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return fs
}

func TestFileStoreAppendCloseRecover(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	var batches [][]engine.Mutation
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	if fs.HasState() {
		t.Fatal("fresh store reports state")
	}
	for i := 0; i < 5; i++ {
		b := randBatch(rng)
		batches = append(batches, b)
		if err := fs.AppendBatch(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	if !fs2.HasState() {
		t.Fatal("reopened store reports no state")
	}
	rs, err := fs2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Snapshot != nil || len(rs.Records) != len(batches) {
		t.Fatalf("recovered snapshot=%v records=%d, want nil snapshot, %d records", rs.Snapshot, len(rs.Records), len(batches))
	}
	for i, rec := range rs.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
		if !recordsEqual(rec, Record{Seq: rec.Seq, Muts: batches[i]}) {
			t.Fatalf("record %d mutations differ from appended batch", i)
		}
	}
	if _, err := fs2.Recover(); err == nil {
		t.Fatal("second Recover succeeded")
	}
	// Appends continue the sequence after recovery.
	if err := fs2.AppendBatch(randBatch(rng)); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	fs3 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	rs3, err := fs3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs3.Records) != 6 || rs3.Records[5].Seq != 6 {
		t.Fatalf("after post-recovery append: %d records, last seq %d; want 6, 6", len(rs3.Records), rs3.Records[len(rs3.Records)-1].Seq)
	}
	fs3.Close()
}

// TestFileStoreTornTailHealed pins the crash-mid-append path: a partial
// frame at the end of the WAL is truncated away at Open, the complete
// prefix is recovered, and the log accepts appends again.
func TestFileStoreTornTailHealed(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	for i := 0; i < 2; i++ {
		if err := fs.AppendBatch(randBatch(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn append: a full frame cut mid-payload, as a crash between the
	// kernel accepting part of a write and the rest would leave it.
	frame := EncodeRecord(Record{Seq: 3, Muts: randBatch(rng)})
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs2 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	rs, err := fs2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 2 {
		t.Fatalf("recovered %d records through a torn tail, want 2", len(rs.Records))
	}
	// The tail must be gone from disk, and the next append reuses seq 3.
	if err := fs2.AppendBatch(randBatch(rng)); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	fs3 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	rs3, err := fs3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs3.Records) != 3 || rs3.Records[2].Seq != 3 {
		t.Fatalf("after heal+append: %d records, want 3 ending at seq 3", len(rs3.Records))
	}
	fs3.Close()
}

// TestFileStoreTornHeaderHealed covers a crash between WAL creation and the
// magic write: the file exists but is shorter than the magic.
func TestFileStoreTornHeaderHealed(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), []byte("RDB"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	rs, err := fs.Recover()
	if err != nil || !rs.Empty() {
		t.Fatalf("torn-header store recovered %+v, %v; want empty", rs, err)
	}
	if err := fs.AppendBatch([]engine.Mutation{engine.TaskRemoval(1)}); err != nil {
		t.Fatal(err)
	}
	fs.Close()
}

func TestFileStoreCorruptRecordFailsOpen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	for i := 0; i < 2; i++ {
		if err := fs.AppendBatch(randBatch(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walName)
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record (just past magic + frame
	// header): complete-but-invalid, which recovery must refuse.
	b[len(walMagic)+frameHeaderLen] ^= 0xff
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, FileOptions{Fsync: FsyncOff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over a corrupt record: %v, want ErrCorrupt", err)
	}

	// Bad magic is equally fatal.
	copy(b, "XXXXXXXX")
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, FileOptions{Fsync: FsyncOff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over bad magic: %v, want ErrCorrupt", err)
	}
}

func newTestEngine() *engine.Engine {
	return engine.New(engine.Config{Beta: 0.5, BetaSet: true})
}

// TestSnapshotCompactionEquivalence is the central recovery property:
// recovering from (snapshot + suffix WAL) yields an engine identical — same
// version, same instance — to recovering the same history from a full WAL,
// and both match the engine that lived through the history. Randomized over
// histories and snapshot cut points.
func TestSnapshotCompactionEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nBatches := 8 + rng.Intn(8)
		cut := 1 + rng.Intn(nBatches-1) // snapshot after this many batches

		live := newTestEngine()
		dirSnap, dirFull := t.TempDir(), t.TempDir()
		fsSnap := openT(t, dirSnap, FileOptions{Fsync: FsyncOff})
		fsFull := openT(t, dirFull, FileOptions{Fsync: FsyncOff})
		for i := 0; i < nBatches; i++ {
			b := randBatch(rng)
			if err := fsSnap.AppendBatch(b); err != nil {
				t.Fatal(err)
			}
			if err := fsFull.AppendBatch(b); err != nil {
				t.Fatal(err)
			}
			live.ApplyBatch(b)
			if i+1 == cut {
				if err := fsSnap.WriteSnapshot(live.Version(), live.GridEta(), live.Instance(), EntityEpochs{}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := fsSnap.Close(); err != nil {
			t.Fatal(err)
		}
		if err := fsFull.Close(); err != nil {
			t.Fatal(err)
		}

		recover := func(dir string) *engine.Engine {
			t.Helper()
			fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
			defer fs.Close()
			rs, err := fs.Recover()
			if err != nil {
				t.Fatal(err)
			}
			eng := newTestEngine()
			if _, _, err := Replay(rs, eng); err != nil {
				t.Fatal(err)
			}
			return eng
		}
		fromSnap, fromFull := recover(dirSnap), recover(dirFull)
		for name, eng := range map[string]*engine.Engine{"snapshot+suffix": fromSnap, "full WAL": fromFull} {
			if eng.Version() != live.Version() {
				t.Fatalf("seed %d: %s recovered version %d, want %d", seed, name, eng.Version(), live.Version())
			}
			if !reflect.DeepEqual(eng.Instance(), live.Instance()) {
				t.Fatalf("seed %d: %s recovered instance differs from live engine", seed, name)
			}
		}
	}
}

// TestSnapshotRenameCrashWindow simulates a crash between the snapshot
// rename and the WAL truncation: the WAL still holds records the snapshot
// covers, and recovery must skip them instead of double-applying.
func TestSnapshotRenameCrashWindow(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	live := newTestEngine()
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	for i := 0; i < 3; i++ {
		b := randBatch(rng)
		if err := fs.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
		live.ApplyBatch(b)
	}
	walPath := filepath.Join(dir, walName)
	preSnapshotWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteSnapshot(live.Version(), live.GridEta(), live.Instance(), EntityEpochs{}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Undo the truncation: snapshot installed, covered records still live.
	if err := os.WriteFile(walPath, preSnapshotWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	fs2 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	rs, err := fs2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Snapshot == nil || len(rs.Records) != 0 {
		t.Fatalf("recovered snapshot=%v records=%d, want snapshot and 0 records", rs.Snapshot, len(rs.Records))
	}
	eng := newTestEngine()
	if _, _, err := Replay(rs, eng); err != nil {
		t.Fatal(err)
	}
	if eng.Version() != live.Version() || !reflect.DeepEqual(eng.Instance(), live.Instance()) {
		t.Fatalf("crash-window recovery diverged: version %d vs %d", eng.Version(), live.Version())
	}
	// The next append must continue past the covered sequence numbers.
	if err := fs2.AppendBatch(randBatch(rng)); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	fs3 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	rs3, err := fs3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs3.Records) != 1 || rs3.Records[0].Seq != 4 {
		t.Fatalf("post-window append recovered %d records (first seq %v), want 1 at seq 4", len(rs3.Records), rs3.Records)
	}
	fs3.Close()
}

// TestFileStoreTempSnapshotCleanup: a crash mid-WriteSnapshot leaves a temp
// file; Open must discard it and keep the previous snapshot.
func TestFileStoreTempSnapshotCleanup(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	if err := fs.AppendBatch([]engine.Mutation{engine.TaskRemoval(1)}); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	tmp := filepath.Join(dir, snapTempName)
	if err := os.WriteFile(tmp, []byte("partial snapshot junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp snapshot survived Open: %v", err)
	}
	rs, err := fs2.Recover()
	if err != nil || len(rs.Records) != 1 {
		t.Fatalf("recovery after temp cleanup: %d records, %v", len(rs.Records), err)
	}
	fs2.Close()
}

// TestFileStoreAppendFailureSurfaces: once the WAL is unwritable the append
// error must reach the caller (the apply loop turns it into a 503) instead
// of being swallowed.
func TestFileStoreAppendFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	// Close the descriptor out from under the store: every append now fails
	// the way a dead disk or ENOSPC would.
	if err := fs.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendBatch([]engine.Mutation{engine.TaskRemoval(1)}); err == nil {
		t.Fatal("append on a closed WAL succeeded")
	}
}

func TestFsyncAccounting(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, FileOptions{Fsync: FsyncAlways})
	for i := 0; i < 3; i++ {
		if err := fs.AppendBatch([]engine.Mutation{engine.TaskRemoval(model.TaskID(i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := fs.Stats()
	if st.Appends != 3 || st.Syncs != 3 {
		t.Fatalf("always mode: %+v, want 3 appends and 3 syncs", st)
	}
	fs.Close()

	// Batch mode with an hour-long window: appends stay dirty, Close
	// group-commits exactly once.
	fs2 := openT(t, t.TempDir(), FileOptions{Fsync: FsyncBatch, FsyncInterval: time.Hour})
	for i := 0; i < 3; i++ {
		if err := fs2.AppendBatch([]engine.Mutation{engine.TaskRemoval(model.TaskID(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if st := fs2.Stats(); st.Syncs != 0 {
		t.Fatalf("batch mode synced %d times inside the window, want 0", st.Syncs)
	}
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := fs2.Stats(); st.Syncs != 1 {
		t.Fatalf("batch-mode Close synced %d times, want 1", st.Syncs)
	}
}

// TestFsyncBatchIdleFlush pins the group-commit loss bound during a
// traffic pause: with no further appends arriving, the background flusher
// must sync a dirty tail within roughly one interval, instead of leaving
// it unsynced until the next append or Close.
func TestFsyncBatchIdleFlush(t *testing.T) {
	fs := openT(t, t.TempDir(), FileOptions{Fsync: FsyncBatch, FsyncInterval: 20 * time.Millisecond})
	defer fs.Close()
	if err := fs.AppendBatch([]engine.Mutation{engine.TaskRemoval(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fs.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle flusher never synced the dirty tail")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOversizedBatchRejected pins the append-time record cap: a batch
// whose encoding exceeds the WAL payload limit must be rejected up front —
// recovery refuses oversized records, so writing one would produce a log
// the store could never boot from — and the store must stay fully usable.
func TestOversizedBatchRejected(t *testing.T) {
	dir := t.TempDir()
	fs := openT(t, dir, FileOptions{Fsync: FsyncOff})
	mut := engine.WorkerUpsert(model.Worker{ID: 1, Loc: geo.Pt(0.5, 0.5), Speed: 1, Dir: geo.FullCircle, Confidence: 0.9, Depart: 5})
	big := make([]engine.Mutation, maxRecordPayload/mutEncodedLen(mut)+1)
	for i := range big {
		big[i] = mut
	}
	if err := fs.AppendBatch(big); err == nil {
		t.Fatal("oversized batch was appended")
	}
	// The rejection must not poison the store: a normal append still lands
	// and is the only thing recovery sees.
	if err := fs.AppendBatch([]engine.Mutation{mut}); err != nil {
		t.Fatalf("append after oversized rejection: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2 := openT(t, dir, FileOptions{Fsync: FsyncOff})
	defer fs2.Close()
	rs, err := fs2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 1 || rs.Records[0].Seq != 1 || len(rs.Records[0].Muts) != 1 {
		t.Fatalf("recovered %d records after oversized rejection, want 1 normal record at seq 1", len(rs.Records))
	}
}
