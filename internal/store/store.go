// Package store provides the durability subsystem of the serving planes: a
// write-ahead log of coalesced mutation batches plus periodic compacted
// snapshots, behind a small Store interface with two backends.
//
// The Memory backend is a no-op — appends and snapshots vanish, recovery
// is always empty — and preserves the historical in-RAM-only behavior; it
// is the default. The file backend (Open) persists every mutation batch as
// a length-prefixed, CRC32-checksummed WAL record before the batch is
// applied (WAL-before-apply: the apply loop invokes AppendBatch first, and
// a failed append fails the batch rather than applying it unlogged), and
// periodically compacts the log into a full-state snapshot written with an
// atomic rename, truncating the WAL records the snapshot covers.
//
// Recovery (Recover + Replay) rebuilds an engine that is exactly the
// pre-crash one: LoadSnapshot pins the engine to the snapshot's version,
// and replaying the WAL suffix re-applies each batch through the same
// ApplyBatch path that produced it, so the version counter and the solve
// answers come back identical. A torn final record — the signature of a
// crash mid-append — is tolerated and truncated; corruption anywhere
// earlier is a hard error, because the suffix after a bad record cannot be
// trusted.
package store

import (
	"fmt"

	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// Store is the durability boundary the serving planes write through. One
// Store instance backs exactly one engine (one shard); implementations
// need not be safe for concurrent use — the single-writer apply loop is
// the only caller of AppendBatch, and WriteSnapshot/Recover/Close happen
// on the same goroutine or with the loop quiesced.
type Store interface {
	// AppendBatch durably logs one coalesced mutation batch. The apply
	// loop calls it BEFORE applying the batch; an error means the batch
	// must not be applied (the caller surfaces it to clients, e.g. as a
	// 503) so no acknowledged mutation is ever unlogged.
	AppendBatch(muts []engine.Mutation) error
	// WriteSnapshot persists the full compacted state at the given engine
	// version — along with the index cell size gridEta, which recovery
	// pins so pair enumeration order survives the restart — and truncates
	// the WAL records it covers.
	WriteSnapshot(version uint64, gridEta float64, in *model.Instance) error
	// Recover returns the persisted state: the newest snapshot (if any)
	// plus the WAL records appended after it, in order.
	Recover() (RecoveredState, error)
	// Close releases the backing resources, syncing any buffered appends
	// first.
	Close() error
}

// RecoveredState is everything a Store holds at boot.
type RecoveredState struct {
	// Snapshot is the newest compacted state, nil when none was written.
	Snapshot *SnapshotData
	// Records are the WAL batches appended after the snapshot (all
	// batches when Snapshot is nil), in append order.
	Records []Record
}

// Empty reports whether the store held no persisted state at all — the
// signal that a bulk-loaded initial instance should seed it.
func (rs RecoveredState) Empty() bool {
	return rs.Snapshot == nil && len(rs.Records) == 0
}

// Replay rebuilds the recovered state into an empty engine: the snapshot
// is bulk-loaded with the version pinned (engine.LoadSnapshot), then each
// WAL batch re-applies through ApplyBatch — the same path that produced
// it, so no-op batches no-op again and the version counter lands exactly
// where it was. It returns the number of WAL batches replayed.
func Replay(rs RecoveredState, eng *engine.Engine) (batches int, err error) {
	if rs.Snapshot != nil {
		if err := eng.LoadSnapshot(rs.Snapshot.Instance, rs.Snapshot.Version, rs.Snapshot.GridEta); err != nil {
			return 0, fmt.Errorf("store: loading snapshot: %w", err)
		}
	}
	for _, rec := range rs.Records {
		eng.ApplyBatch(rec.Muts)
		batches++
	}
	return batches, nil
}

// Memory is the no-op backend: nothing persists, recovery is always
// empty. It keeps the memory-only serving behavior (and its data loss on
// restart) as the explicit default.
type Memory struct{}

// NewMemory returns the no-op backend.
func NewMemory() *Memory { return &Memory{} }

// AppendBatch implements Store as a no-op.
func (*Memory) AppendBatch([]engine.Mutation) error { return nil }

// WriteSnapshot implements Store as a no-op.
func (*Memory) WriteSnapshot(uint64, float64, *model.Instance) error { return nil }

// Recover implements Store; memory recovery is always empty.
func (*Memory) Recover() (RecoveredState, error) { return RecoveredState{}, nil }

// Close implements Store as a no-op.
func (*Memory) Close() error { return nil }
