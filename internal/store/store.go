// Package store provides the durability subsystem of the serving planes: a
// write-ahead log of coalesced mutation batches plus periodic compacted
// snapshots, behind a small Store interface with two backends.
//
// The Memory backend is a no-op — appends and snapshots vanish, recovery
// is always empty — and preserves the historical in-RAM-only behavior; it
// is the default. The file backend (Open) persists every mutation batch as
// a length-prefixed, CRC32-checksummed WAL record before the batch is
// applied (WAL-before-apply: the apply loop invokes AppendBatch first, and
// a failed append fails the batch rather than applying it unlogged), and
// periodically compacts the log into a full-state snapshot written with an
// atomic rename, truncating the WAL records the snapshot covers.
//
// Recovery (Recover + Replay) rebuilds an engine that is exactly the
// pre-crash one: LoadSnapshot pins the engine to the snapshot's version,
// and replaying the WAL suffix re-applies each batch through the same
// ApplyBatch path that produced it, so the version counter and the solve
// answers come back identical. A torn final record — the signature of a
// crash mid-append — is tolerated and truncated; corruption anywhere
// earlier is a hard error, because the suffix after a bad record cannot be
// trusted.
package store

import (
	"fmt"

	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// Store is the durability boundary the serving planes write through. One
// Store instance backs exactly one engine (one shard); implementations
// need not be safe for concurrent use — the single-writer apply loop is
// the only caller of AppendBatch, and WriteSnapshot/Recover/Close happen
// on the same goroutine or with the loop quiesced.
type Store interface {
	// AppendBatch durably logs one coalesced mutation batch. The apply
	// loop calls it BEFORE applying the batch; an error means the batch
	// must not be applied (the caller surfaces it to clients, e.g. as a
	// 503) so no acknowledged mutation is ever unlogged.
	AppendBatch(muts []engine.Mutation) error
	// WriteSnapshot persists the full compacted state at the given engine
	// version — along with the index cell size gridEta, which recovery
	// pins so pair enumeration order survives the restart, and the
	// entities' recency epochs, which crash recovery uses to resolve
	// duplicate copies — and truncates the WAL records it covers.
	WriteSnapshot(version uint64, gridEta float64, in *model.Instance, epochs EntityEpochs) error
	// Recover returns the persisted state: the newest snapshot (if any)
	// plus the WAL records appended after it, in order.
	Recover() (RecoveredState, error)
	// Close releases the backing resources, syncing any buffered appends
	// first.
	Close() error
}

// EntityEpochs maps each live entity to the recency epoch of its last
// stamped upsert (engine.Mutation.Epoch). The cluster plane maintains one
// per shard so that after a crash in the middle of a cross-shard move —
// which can leave the same entity recovered on two shards — the registry
// rebuild keeps the copy carrying the later acknowledged write. Entities
// whose upserts were never stamped (the serve plane stamps nothing) simply
// have no entry. The zero value is ready to use.
type EntityEpochs struct {
	Tasks   map[model.TaskID]uint64
	Workers map[model.WorkerID]uint64
}

// Apply folds one mutation batch into the epoch maps: a stamped upsert
// records its epoch, an unstamped upsert and a removal clear the entry.
func (e *EntityEpochs) Apply(muts []engine.Mutation) {
	for _, m := range muts {
		switch m.Op {
		case engine.OpUpsertTask:
			if m.Epoch == 0 {
				delete(e.Tasks, m.Task.ID)
			} else {
				if e.Tasks == nil {
					e.Tasks = make(map[model.TaskID]uint64)
				}
				e.Tasks[m.Task.ID] = m.Epoch
			}
		case engine.OpRemoveTask:
			delete(e.Tasks, m.TaskID)
		case engine.OpUpsertWorker:
			if m.Epoch == 0 {
				delete(e.Workers, m.Worker.ID)
			} else {
				if e.Workers == nil {
					e.Workers = make(map[model.WorkerID]uint64)
				}
				e.Workers[m.Worker.ID] = m.Epoch
			}
		case engine.OpRemoveWorker:
			delete(e.Workers, m.WorkerID)
		}
	}
}

// Task returns the task's recency epoch (0 when unstamped or absent).
func (e EntityEpochs) Task(id model.TaskID) uint64 { return e.Tasks[id] }

// Worker returns the worker's recency epoch (0 when unstamped or absent).
func (e EntityEpochs) Worker(id model.WorkerID) uint64 { return e.Workers[id] }

// Max returns the largest epoch present; the cluster resumes its stamp
// counter past the maximum across all recovered shards so post-recovery
// upserts always outrank recovered state.
func (e EntityEpochs) Max() uint64 {
	var m uint64
	for _, v := range e.Tasks {
		m = max(m, v)
	}
	for _, v := range e.Workers {
		m = max(m, v)
	}
	return m
}

// RecoveredState is everything a Store holds at boot.
type RecoveredState struct {
	// Snapshot is the newest compacted state, nil when none was written.
	Snapshot *SnapshotData
	// Records are the WAL batches appended after the snapshot (all
	// batches when Snapshot is nil), in append order.
	Records []Record
}

// Empty reports whether the store held no persisted state at all — the
// signal that a bulk-loaded initial instance should seed it.
func (rs RecoveredState) Empty() bool {
	return rs.Snapshot == nil && len(rs.Records) == 0
}

// Replay rebuilds the recovered state into an empty engine: the snapshot
// is bulk-loaded with the version pinned (engine.LoadSnapshot), then each
// WAL batch re-applies through ApplyBatch — the same path that produced
// it, so no-op batches no-op again and the version counter lands exactly
// where it was. It returns the number of WAL batches replayed plus the
// recovered entities' recency epochs (the snapshot's, updated by the
// replayed suffix), which the cluster's registry rebuild needs to resolve
// duplicate copies left by a crash mid cross-shard move.
func Replay(rs RecoveredState, eng *engine.Engine) (batches int, epochs EntityEpochs, err error) {
	if rs.Snapshot != nil {
		if err := eng.LoadSnapshot(rs.Snapshot.Instance, rs.Snapshot.Version, rs.Snapshot.GridEta); err != nil {
			return 0, EntityEpochs{}, fmt.Errorf("store: loading snapshot: %w", err)
		}
		epochs = rs.Snapshot.Epochs
	}
	for _, rec := range rs.Records {
		eng.ApplyBatch(rec.Muts)
		epochs.Apply(rec.Muts)
		batches++
	}
	return batches, epochs, nil
}

// Memory is the no-op backend: nothing persists, recovery is always
// empty. It keeps the memory-only serving behavior (and its data loss on
// restart) as the explicit default.
type Memory struct{}

// NewMemory returns the no-op backend.
func NewMemory() *Memory { return &Memory{} }

// AppendBatch implements Store as a no-op.
func (*Memory) AppendBatch([]engine.Mutation) error { return nil }

// WriteSnapshot implements Store as a no-op.
func (*Memory) WriteSnapshot(uint64, float64, *model.Instance, EntityEpochs) error { return nil }

// Recover implements Store; memory recovery is always empty.
func (*Memory) Recover() (RecoveredState, error) { return RecoveredState{}, nil }

// Close implements Store as a no-op.
func (*Memory) Close() error { return nil }
