// Package adaptive implements latency-SLO solve-tier selection: per
// request, it inspects the snapshot's component-size histogram (from
// internal/decompose) and a hardness-derived difficulty estimate
// (internal/hardness), and picks a solver lane per connected component —
// exhaustive for tiny components, greedy-parallel for mid-sized ones,
// sampling under a computed round cap for hard ones — so that the
// predicted solve time fits an operator-declared p99 budget
// (rdbsc-server -slo-p99).
//
// The loop is closed against observation, not assumption: a Controller
// keeps one EWMA cost coefficient per lane (nanoseconds per unit of work,
// updated from every observed solve) and derives the per-lane size
// thresholds from budget/coefficient, so a lane that gets slower tightens
// its own threshold until the predicted latency fits again. A second,
// request-level loop scales a global headroom factor down whenever an
// observed solve exceeds the budget (and relaxes it slowly while solves
// stay under), which pulls the p99 — not just the mean — back under the
// budget after a latency regime change.
//
// When even the minimum-effort plan (sampling at the floor sample count)
// is predicted over budget, the serving layer degrades gracefully: it
// serves the cached last assignment stamped with an explicit staleness
// bound ("stale_ms") instead of answering 429, and sheds the request only
// when no assignment younger than the configured staleness bound exists —
// admission control as the final backstop, not the first resort.
//
// Everything here trades exactness knowingly: adaptive mode may answer a
// request with a different (faster) solver than an unconstrained run would
// use, so its results are not bit-identical to the fixed-solver path.
// The trade is opt-in per server (-adaptive) and never touches requests
// that name an explicit solver. See docs/ARCHITECTURE.md for where the
// exactness contract holds and docs/SLO_TUNING.md for operating the
// controller.
package adaptive

import (
	"math"
	"runtime"
	"sync"
	"time"
)

// Lane is one of the controller's solver tiers.
type Lane uint8

// The lanes, cheapest-exact first: LaneExhaustive enumerates tiny
// components exactly, LaneGreedy runs the parallel greedy approximation on
// mid-sized ones, LaneSampling draws a budget-capped number of random
// assignments from hard ones.
const (
	LaneExhaustive Lane = iota
	LaneGreedy
	LaneSampling

	numLanes = 3
)

// String returns the lane's stats/wire label.
func (l Lane) String() string {
	switch l {
	case LaneExhaustive:
		return "exhaustive"
	case LaneGreedy:
		return "greedy"
	case LaneSampling:
		return "sampling"
	}
	return "unknown"
}

// Config parameterizes a Controller. The zero value of every field except
// Budget is usable; New fills defaults.
type Config struct {
	// Budget is the p99 solve-latency target the controller plans against.
	// Required (> 0).
	Budget time.Duration
	// MaxStale bounds how old a degraded (stale-served) assignment may be;
	// past it the serving layer sheds with 429 instead. Default 5s.
	MaxStale time.Duration
	// Alpha is the EWMA weight for cost-coefficient updates in (0, 1].
	// Default 0.3: new observations dominate within a handful of solves.
	Alpha float64
	// ExhaustiveMaxPairs caps the component size (in valid pairs) the
	// exhaustive lane considers, independent of its population cap.
	// Default 64.
	ExhaustiveMaxPairs int
	// ExhaustivePop caps the enumerated population of the exhaustive lane
	// (core.Exhaustive.MaxAssignments). Default 1 << 14.
	ExhaustivePop int
	// MinSamples floors the sampling lane's computed round cap (quality
	// floor); MaxSamples ceilings it. Defaults 64 and 1 << 16.
	MinSamples int
	MaxSamples int
	// MinGreedyPairs floors the greedy lane's size threshold so the
	// controller never starves the mid tier entirely. Default 32.
	MinGreedyPairs int
}

func (c Config) withDefaults() Config {
	if c.MaxStale <= 0 {
		c.MaxStale = 5 * time.Second
	}
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		c.Alpha = 0.3
	}
	if c.ExhaustiveMaxPairs <= 0 {
		c.ExhaustiveMaxPairs = 64
	}
	if c.ExhaustivePop <= 0 {
		c.ExhaustivePop = 1 << 14
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1 << 16
	}
	if c.MaxSamples < c.MinSamples {
		c.MaxSamples = c.MinSamples
	}
	if c.MinGreedyPairs <= 0 {
		c.MinGreedyPairs = 32
	}
	return c
}

// Decision is one planned component solve: the lane, the sampling round
// cap when the lane is LaneSampling, and the latency the controller
// predicted for it. Pass it back to Observe with the measured elapsed time
// so the coefficients learn.
type Decision struct {
	Lane        Lane
	SampleCap   int // > 0 only for LaneSampling
	PredictedMS float64
}

// RequestPlan is the admission verdict for a whole request over a
// component shape: the predicted request latency (components solve
// concurrently, so it follows the critical path, not the sum) and whether
// even the minimum-effort plan is predicted over budget — the degrade
// signal.
type RequestPlan struct {
	PredictedMS float64
	OverBudget  bool
}

// Initial cost coefficients (nanoseconds per unit of work), deliberately
// rough: the EWMA replaces them within a handful of observed solves, and
// starting pessimistic only means the first requests run a cheaper lane
// than strictly necessary.
const (
	initExhaustiveNSPerPair = 2000 // ns per pair (population-capped components)
	initGreedyNSPerPair     = 1500 // ns per pair
	initSamplingNSPerUnit   = 25   // ns per pair·sample
)

// headroom adaptation: every observed over-budget solve tightens the
// effective budget multiplicatively; under-budget solves relax it slowly
// back toward 1. The asymmetry (fast tighten, slow relax) is what bends
// the p99 — a 1-in-100 violation still moves the controller.
const (
	headroomTighten = 0.85
	headroomRelax   = 1.02
	headroomFloor   = 0.10
)

// Controller plans per-component solver lanes under a latency budget and
// re-tunes its per-lane thresholds from observed solve latencies. All
// methods are safe for concurrent use; a nil *Controller means "adaptive
// off" (Plan and Observe must not be called on it — the serving layers
// gate on enablement first).
type Controller struct {
	cfg Config

	mu       sync.Mutex
	coefNS   [numLanes]float64 // EWMA cost per work unit, ns
	latEWMA  [numLanes]float64 // EWMA observed solve latency per lane, ms
	solves   [numLanes]uint64
	headroom float64

	violations  uint64 // observed request solves over budget
	degraded    uint64 // requests answered by the degrade path
	staleServed uint64 // degraded requests served a stale assignment
	shed        uint64 // degraded requests shed with 429
	fallbacks   uint64 // exhaustive refusals re-run on the greedy lane
}

// New returns a controller for the given budget configuration. It panics
// when cfg.Budget is not positive — an SLO of zero is a configuration
// error, not a mode.
func New(cfg Config) *Controller {
	if cfg.Budget <= 0 {
		panic("adaptive: Config.Budget must be > 0")
	}
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, headroom: 1}
	c.coefNS[LaneExhaustive] = initExhaustiveNSPerPair
	c.coefNS[LaneGreedy] = initGreedyNSPerPair
	c.coefNS[LaneSampling] = initSamplingNSPerUnit
	return c
}

// Budget returns the configured p99 target.
func (c *Controller) Budget() time.Duration { return c.cfg.Budget }

// MaxStale returns the configured staleness bound for degraded responses.
func (c *Controller) MaxStale() time.Duration { return c.cfg.MaxStale }

// ExhaustivePop returns the population cap the exhaustive lane runs under.
func (c *Controller) ExhaustivePop() int { return c.cfg.ExhaustivePop }

// budgetMS is the effective (headroom-scaled) per-solve budget in
// milliseconds. Callers hold c.mu.
func (c *Controller) budgetMS() float64 {
	return float64(c.cfg.Budget) / float64(time.Millisecond) * c.headroom
}

// greedyMaxPairsLocked derives the greedy lane's size threshold from the
// effective budget and the lane's learned cost. Callers hold c.mu.
func (c *Controller) greedyMaxPairsLocked() int {
	budgetNS := c.budgetMS() * float64(time.Millisecond)
	limit := int(budgetNS / c.coefNS[LaneGreedy])
	if limit < c.cfg.MinGreedyPairs {
		limit = c.cfg.MinGreedyPairs
	}
	return limit
}

// sampleCapLocked computes the sampling round cap that fits the effective
// budget for a component of the given pair count. Callers hold c.mu.
func (c *Controller) sampleCapLocked(pairs int) int {
	budgetNS := c.budgetMS() * float64(time.Millisecond)
	k := int(budgetNS / (c.coefNS[LaneSampling] * float64(pairs)))
	if k < c.cfg.MinSamples {
		k = c.cfg.MinSamples
	}
	if k > c.cfg.MaxSamples {
		k = c.cfg.MaxSamples
	}
	return k
}

// Plan selects the lane for one component: pairs is its valid-pair count,
// lnPop the log of its complete-assignment population (the
// hardness-derived difficulty estimate; see hardness.Score).
func (c *Controller) Plan(pairs int, lnPop float64) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	budget := c.budgetMS()
	if pairs <= 0 {
		return Decision{Lane: LaneGreedy}
	}
	// Tiny population and tiny pair set: exact enumeration, if predicted
	// affordable.
	exMS := c.coefNS[LaneExhaustive] * float64(pairs) / float64(time.Millisecond)
	if pairs <= c.cfg.ExhaustiveMaxPairs &&
		lnPop <= math.Log(float64(c.cfg.ExhaustivePop)) && exMS <= budget {
		return Decision{Lane: LaneExhaustive, PredictedMS: exMS}
	}
	if pairs <= c.greedyMaxPairsLocked() {
		ms := c.coefNS[LaneGreedy] * float64(pairs) / float64(time.Millisecond)
		return Decision{Lane: LaneGreedy, PredictedMS: ms}
	}
	k := c.sampleCapLocked(pairs)
	ms := c.coefNS[LaneSampling] * float64(pairs) * float64(k) / float64(time.Millisecond)
	return Decision{Lane: LaneSampling, SampleCap: k, PredictedMS: ms}
}

// PlanRequest renders the admission verdict for a whole request over its
// component shape. Components solve concurrently under a GOMAXPROCS pool,
// so the predicted request latency is the larger of the critical path (the
// slowest single component) and the pool-limited average. The request is
// over budget when the minimum-effort plan — sampling floored at
// MinSamples on every component too big for the cheaper lanes — still
// exceeds the unscaled budget: below that point no lane choice can help,
// and the serving layer should degrade instead of burning the budget on a
// doomed solve.
func (c *Controller) PlanRequest(shape *Shape) RequestPlan {
	if shape == nil || len(shape.Components) == 0 {
		return RequestPlan{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	budgetMS := float64(c.cfg.Budget) / float64(time.Millisecond)
	var maxMS, sumMS, maxFloorMS float64
	for _, comp := range shape.Components {
		// Planned cost, mirroring Plan's lane choice.
		var ms float64
		exMS := c.coefNS[LaneExhaustive] * float64(comp.Pairs) / float64(time.Millisecond)
		switch {
		case comp.Pairs <= c.cfg.ExhaustiveMaxPairs &&
			comp.LnPopulation <= math.Log(float64(c.cfg.ExhaustivePop)) &&
			exMS <= c.budgetMS():
			ms = exMS
		case comp.Pairs <= c.greedyMaxPairsLocked():
			ms = c.coefNS[LaneGreedy] * float64(comp.Pairs) / float64(time.Millisecond)
		default:
			k := c.sampleCapLocked(comp.Pairs)
			ms = c.coefNS[LaneSampling] * float64(comp.Pairs) * float64(k) / float64(time.Millisecond)
		}
		if ms > maxMS {
			maxMS = ms
		}
		sumMS += ms
		// Minimum-effort floor for the same component: the cheapest thing
		// any lane can do.
		floorMS := ms
		if comp.Pairs > c.greedyMaxPairsLocked() {
			floorMS = c.coefNS[LaneSampling] * float64(comp.Pairs) *
				float64(c.cfg.MinSamples) / float64(time.Millisecond)
		}
		if floorMS > maxFloorMS {
			maxFloorMS = floorMS
		}
	}
	workers := runtime.GOMAXPROCS(0)
	predicted := sumMS / float64(workers)
	if maxMS > predicted {
		predicted = maxMS
	}
	return RequestPlan{PredictedMS: predicted, OverBudget: maxFloorMS > budgetMS}
}

// Observe feeds one component solve's measured latency back into the
// decision's lane: the lane's cost coefficient moves by EWMA toward the
// observed cost per work unit, which is what re-tunes the size thresholds
// online.
func (c *Controller) Observe(d Decision, pairs int, elapsed time.Duration) {
	if pairs <= 0 {
		return
	}
	units := float64(pairs)
	if d.Lane == LaneSampling && d.SampleCap > 0 {
		units *= float64(d.SampleCap)
	}
	perUnit := float64(elapsed) / units // ns per work unit
	ms := float64(elapsed) / float64(time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.cfg.Alpha
	c.coefNS[d.Lane] = (1-a)*c.coefNS[d.Lane] + a*perUnit
	if c.solves[d.Lane] == 0 {
		c.latEWMA[d.Lane] = ms
	} else {
		c.latEWMA[d.Lane] = (1-a)*c.latEWMA[d.Lane] + a*ms
	}
	c.solves[d.Lane]++
}

// ObserveRequest feeds one whole request's solve latency into the
// headroom loop: an over-budget solve tightens the effective budget every
// lane plans against, an under-budget one relaxes it slowly back toward
// the configured value.
func (c *Controller) ObserveRequest(elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elapsed > c.cfg.Budget {
		c.violations++
		c.headroom *= headroomTighten
		if c.headroom < headroomFloor {
			c.headroom = headroomFloor
		}
		return
	}
	c.headroom *= headroomRelax
	if c.headroom > 1 {
		c.headroom = 1
	}
}

// NoteDegraded counts one request that entered the degrade path;
// staleServed reports whether it was answered with a stale assignment
// (true) or shed with 429 (false).
func (c *Controller) NoteDegraded(staleServed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degraded++
	if staleServed {
		c.staleServed++
	} else {
		c.shed++
	}
}

// NoteFallback counts one exhaustive-lane refusal re-run on the greedy
// lane.
func (c *Controller) NoteFallback() {
	c.mu.Lock()
	c.fallbacks++
	c.mu.Unlock()
}

// Thresholds is the controller's current derived tuning, exposed for
// stats and tests.
type Thresholds struct {
	// GreedyMaxPairs is the largest component (in pairs) the greedy lane
	// currently accepts.
	GreedyMaxPairs int
	// ExhaustiveMaxPairs is the (static) pair cap of the exhaustive lane.
	ExhaustiveMaxPairs int
	// Headroom is the current budget scale in (0, 1].
	Headroom float64
}

// CurrentThresholds returns the derived per-lane size thresholds.
func (c *Controller) CurrentThresholds() Thresholds {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Thresholds{
		GreedyMaxPairs:     c.greedyMaxPairsLocked(),
		ExhaustiveMaxPairs: c.cfg.ExhaustiveMaxPairs,
		Headroom:           c.headroom,
	}
}

// LaneStats is one lane's row in the stats view.
type LaneStats struct {
	// Solves counts component solves the lane ran.
	Solves uint64 `json:"solves"`
	// EWMALatencyMS is the lane's smoothed observed solve latency.
	EWMALatencyMS float64 `json:"ewma_latency_ms"`
	// EWMACostNS is the lane's learned cost coefficient in nanoseconds per
	// work unit (per pair; per pair·sample for the sampling lane).
	EWMACostNS float64 `json:"ewma_cost_ns"`
}

// Stats is the /v1/stats "adaptive" block: configuration, learned
// thresholds, per-lane counters, and the degrade/shed accounting.
type Stats struct {
	BudgetMS           float64   `json:"budget_ms"`
	MaxStaleMS         float64   `json:"max_stale_ms"`
	Headroom           float64   `json:"headroom"`
	GreedyMaxPairs     int       `json:"greedy_max_pairs"`
	ExhaustiveMaxPairs int       `json:"exhaustive_max_pairs"`
	Exhaustive         LaneStats `json:"exhaustive"`
	Greedy             LaneStats `json:"greedy"`
	Sampling           LaneStats `json:"sampling"`
	SLOViolations      uint64    `json:"slo_violations"`
	Degraded           uint64    `json:"degraded"`
	StaleServed        uint64    `json:"stale_served"`
	Shed               uint64    `json:"shed"`
	Fallbacks          uint64    `json:"fallbacks"`
}

// StatsSnapshot returns a point-in-time copy of the controller's state for
// /v1/stats.
func (c *Controller) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	lane := func(l Lane) LaneStats {
		return LaneStats{
			Solves:        c.solves[l],
			EWMALatencyMS: c.latEWMA[l],
			EWMACostNS:    c.coefNS[l],
		}
	}
	return Stats{
		BudgetMS:           float64(c.cfg.Budget) / float64(time.Millisecond),
		MaxStaleMS:         float64(c.cfg.MaxStale) / float64(time.Millisecond),
		Headroom:           c.headroom,
		GreedyMaxPairs:     c.greedyMaxPairsLocked(),
		ExhaustiveMaxPairs: c.cfg.ExhaustiveMaxPairs,
		Exhaustive:         lane(LaneExhaustive),
		Greedy:             lane(LaneGreedy),
		Sampling:           lane(LaneSampling),
		SLOViolations:      c.violations,
		Degraded:           c.degraded,
		StaleServed:        c.staleServed,
		Shed:               c.shed,
		Fallbacks:          c.fallbacks,
	}
}
