package adaptive

import (
	"context"
	"errors"
	"sync"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/hardness"
)

// Solver is the lane-dispatching core.Solver: each Solve call scores the
// problem it is handed (hardness.Score), asks the shared Controller for a
// lane, runs the lane's solver, and feeds the observed latency back. Wrap
// it in core.NewSharded to get per-component dispatch — the Sharded
// wrapper calls the inner solver once per connected component, so each
// component is routed to its own lane; a single-component problem reaches
// Solve whole and is routed as one.
//
// A Solver instance is cheap and scoped to one request (it accumulates the
// request's per-lane solve counts for the response); the Controller behind
// it is shared across requests and carries all learned state. Safe for
// concurrent use within the request (component solves run concurrently
// under Sharded's pool).
type Solver struct {
	ctrl *Controller

	mu    sync.Mutex
	lanes [numLanes]int
}

// NewSolver returns a per-request dispatcher over the shared controller.
func NewSolver(ctrl *Controller) *Solver { return &Solver{ctrl: ctrl} }

// Name implements core.Solver.
func (s *Solver) Name() string { return "ADAPTIVE" }

// laneSolver builds the fresh inner solver for one decision. Greedy is the
// registry's "greedy-parallel" configuration (incremental candidate cache
// with sharded exact-Δ evaluation); sampling runs in parallel mode under
// the decision's round cap — both deterministic for a fixed seed.
func (s *Solver) laneSolver(d Decision) core.Solver {
	switch d.Lane {
	case LaneExhaustive:
		return &core.Exhaustive{MaxAssignments: s.ctrl.ExhaustivePop()}
	case LaneSampling:
		return &core.Sampling{FixedK: d.SampleCap, Parallel: true}
	default:
		return &core.Greedy{Prune: true, Incremental: true, Parallel: true}
	}
}

// Solve implements core.Solver: plan, run, observe. An exhaustive-lane
// refusal (core.ErrPopulationTooLarge — the population estimate and the
// enumerator's exact count can disagree on saturation) falls back to the
// greedy lane rather than failing the request; the exhaustive oracle
// consumes no randomness before refusing, so the fallback sees the exact
// random stream the greedy lane would have seen first.
func (s *Solver) Solve(ctx context.Context, p *core.Problem, opts *core.SolveOptions) (*core.Result, error) {
	if len(p.Pairs) == 0 {
		// Nothing to assign; run the greedy lane's trivial no-op so the
		// result shape (empty assignment, zeroed stats) stays uniform.
		return s.laneSolver(Decision{Lane: LaneGreedy}).Solve(ctx, p, opts)
	}
	diff := hardness.Score(p)
	d := s.ctrl.Plan(diff.Pairs, diff.LnPopulation)
	start := time.Now()
	res, err := s.laneSolver(d).Solve(ctx, p, opts)
	if d.Lane == LaneExhaustive && errors.Is(err, core.ErrPopulationTooLarge) {
		s.ctrl.NoteFallback()
		d = Decision{Lane: LaneGreedy}
		res, err = s.laneSolver(d).Solve(ctx, p, opts)
	}
	s.ctrl.Observe(d, diff.Pairs, time.Since(start))
	s.mu.Lock()
	s.lanes[d.Lane]++
	s.mu.Unlock()
	return res, err
}

// LaneCounts returns how many component solves this request ran per lane,
// keyed by lane label — the response's "lanes" field. Lanes with zero
// solves are omitted.
func (s *Solver) LaneCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, numLanes)
	for l := Lane(0); l < numLanes; l++ {
		if s.lanes[l] > 0 {
			out[l.String()] = s.lanes[l]
		}
	}
	return out
}
