package adaptive

import (
	"rdbsc/internal/core"
	"rdbsc/internal/decompose"
	"rdbsc/internal/hardness"
)

// ComponentShape is one connected component's cost-relevant footprint: its
// valid-pair count and its hardness estimate (the log of its
// complete-assignment population).
type ComponentShape struct {
	Pairs        int
	LnPopulation float64
}

// Shape is the component-size histogram of one snapshot's problem — the
// input to Controller.PlanRequest. It is immutable once built; the serving
// layers cache one per snapshot version (single shard) or per assembled
// version vector (cluster).
type Shape struct {
	// Pairs is the total valid-pair count across components.
	Pairs int
	// Components holds one entry per connected component, in partition
	// order (ascending component key).
	Components []ComponentShape
}

// NewShape condenses a problem and its component partition into the shape
// the controller plans against. The partition must have been built from
// p.Pairs (decompose.Build or an engine/cluster-maintained equivalent).
func NewShape(p *core.Problem, part *decompose.Partition) *Shape {
	sh := &Shape{Pairs: len(p.Pairs), Components: make([]ComponentShape, 0, part.Len())}
	for i := range part.Components {
		c := &part.Components[i]
		// Worker degrees never cross components, so the global degrees are
		// the component degrees and the component's population factors over
		// its own workers only.
		degrees := make([]int, 0, len(c.Workers))
		for _, wid := range c.Workers {
			degrees = append(degrees, p.Degree(wid))
		}
		sh.Components = append(sh.Components, ComponentShape{
			Pairs:        len(c.Pairs),
			LnPopulation: hardness.LogPopulation(degrees),
		})
	}
	return sh
}
