package adaptive

import (
	"math"
	"testing"
	"time"
)

func TestNewPanicsWithoutBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with a zero budget did not panic")
		}
	}()
	New(Config{})
}

func TestPlanLaneSelection(t *testing.T) {
	c := New(Config{Budget: 50 * time.Millisecond})

	// Tiny component, tiny population: exact enumeration.
	if d := c.Plan(8, math.Log(100)); d.Lane != LaneExhaustive {
		t.Errorf("tiny component planned lane %v, want exhaustive", d.Lane)
	}
	// Small pair set but an astronomically large population: the population
	// cap rules exhaustive out and the greedy lane takes it.
	if d := c.Plan(8, 200); d.Lane != LaneGreedy {
		t.Errorf("large-population component planned lane %v, want greedy", d.Lane)
	}
	// Mid-size component, well under the initial greedy threshold.
	if d := c.Plan(1000, 500); d.Lane != LaneGreedy {
		t.Errorf("mid component planned lane %v, want greedy", d.Lane)
	}
	// Past the greedy threshold: budget-capped sampling, with the round cap
	// inside the configured clamp.
	big := c.CurrentThresholds().GreedyMaxPairs + 1
	d := c.Plan(big, 5000)
	if d.Lane != LaneSampling {
		t.Fatalf("huge component planned lane %v, want sampling", d.Lane)
	}
	if d.SampleCap < 64 || d.SampleCap > 1<<16 {
		t.Errorf("sampling round cap %d outside the default clamp [64, 65536]", d.SampleCap)
	}
	// An empty component degenerates to the greedy no-op.
	if d := c.Plan(0, 0); d.Lane != LaneGreedy {
		t.Errorf("empty component planned lane %v, want greedy", d.Lane)
	}
}

// TestConvergenceUnderLatencyStep drives the controller with a simulated
// latency regime change — greedy solves suddenly cost 20µs/pair instead of
// the assumed 1.5µs — and checks the greedy size threshold converges to a
// value whose predicted latency fits the budget again.
func TestConvergenceUnderLatencyStep(t *testing.T) {
	const budget = 50 * time.Millisecond
	c := New(Config{Budget: budget})
	before := c.CurrentThresholds().GreedyMaxPairs

	// A 5000-pair component is comfortably greedy under the initial
	// coefficient (predicted 7.5ms).
	if d := c.Plan(5000, 1e6); d.Lane != LaneGreedy {
		t.Fatalf("pre-step: 5000-pair component planned lane %v, want greedy", d.Lane)
	}

	// The step: every observed greedy solve of 1000 pairs now takes 20ms
	// (20µs/pair — 13x the initial coefficient).
	for i := 0; i < 40; i++ {
		c.Observe(Decision{Lane: LaneGreedy}, 1000, 20*time.Millisecond)
	}

	after := c.CurrentThresholds().GreedyMaxPairs
	if after >= before {
		t.Fatalf("greedy threshold did not tighten after the latency step: %d -> %d", before, after)
	}
	// Converged coefficient ~20000ns/pair => threshold ~ budget/coef = 2500
	// pairs. Allow EWMA slack but require the right decade.
	if after < 2000 || after > 3500 {
		t.Errorf("greedy threshold after convergence = %d pairs, want ~2500", after)
	}
	// The threshold is self-consistent: a component at the threshold is
	// predicted within budget.
	d := c.Plan(after, 1e6)
	if d.Lane != LaneGreedy {
		t.Fatalf("component at threshold planned lane %v, want greedy", d.Lane)
	}
	if budgetMS := float64(budget) / float64(time.Millisecond); d.PredictedMS > budgetMS {
		t.Errorf("predicted latency at threshold %.2fms exceeds budget %.0fms", d.PredictedMS, budgetMS)
	}
	// The 5000-pair component that used to be greedy is now routed to
	// sampling — the re-tuned threshold changed the decision.
	if d := c.Plan(5000, 1e6); d.Lane != LaneSampling {
		t.Errorf("post-step: 5000-pair component planned lane %v, want sampling", d.Lane)
	}

	// The regime relaxes back: fast greedy solves (0.5µs/pair) widen the
	// threshold again.
	for i := 0; i < 60; i++ {
		c.Observe(Decision{Lane: LaneGreedy}, 1000, 500*time.Microsecond)
	}
	if relaxed := c.CurrentThresholds().GreedyMaxPairs; relaxed <= after {
		t.Errorf("greedy threshold did not relax after latency recovered: %d -> %d", after, relaxed)
	}
}

func TestSampleCapAdaptsToCoefficient(t *testing.T) {
	c := New(Config{Budget: 10 * time.Second})
	// Make the greedy lane look expensive so a 100-pair component must
	// sample (exhaustive is ruled out by the population estimate).
	for i := 0; i < 40; i++ {
		c.Observe(Decision{Lane: LaneGreedy}, 32, time.Minute)
	}
	d := c.Plan(100, 1e6)
	if d.Lane != LaneSampling {
		t.Fatalf("planned lane %v, want sampling", d.Lane)
	}
	// 10s over 25ns/unit and 100 pairs allows millions of samples; the cap
	// must clamp at MaxSamples.
	if d.SampleCap != 1<<16 {
		t.Errorf("generous budget: sample cap %d, want the MaxSamples ceiling %d", d.SampleCap, 1<<16)
	}

	// A tiny budget floors at MinSamples instead (the quality floor).
	tight := New(Config{Budget: time.Microsecond})
	d = tight.Plan(100000, 1e6)
	if d.Lane != LaneSampling {
		t.Fatalf("tight budget: planned lane %v, want sampling", d.Lane)
	}
	if d.SampleCap != 64 {
		t.Errorf("tight budget: sample cap %d, want the MinSamples floor 64", d.SampleCap)
	}
}

func TestHeadroomLoop(t *testing.T) {
	c := New(Config{Budget: 10 * time.Millisecond})
	// Sustained violations tighten the effective budget down to the floor.
	for i := 0; i < 50; i++ {
		c.ObserveRequest(20 * time.Millisecond)
	}
	th := c.CurrentThresholds()
	if math.Abs(th.Headroom-headroomFloor) > 1e-9 {
		t.Errorf("headroom after sustained violations = %v, want the floor %v", th.Headroom, headroomFloor)
	}
	if got := c.StatsSnapshot().SLOViolations; got != 50 {
		t.Errorf("SLOViolations = %d, want 50", got)
	}
	// The tightened headroom shrinks every derived threshold.
	if full := New(Config{Budget: 10 * time.Millisecond}).CurrentThresholds().GreedyMaxPairs; th.GreedyMaxPairs >= full {
		t.Errorf("tightened greedy threshold %d not below the unconstrained %d", th.GreedyMaxPairs, full)
	}
	// Sustained under-budget solves relax it back to exactly 1.
	for i := 0; i < 400; i++ {
		c.ObserveRequest(time.Millisecond)
	}
	if h := c.CurrentThresholds().Headroom; h != 1 {
		t.Errorf("headroom after recovery = %v, want 1", h)
	}
}

func TestPlanRequestMinEffortFloor(t *testing.T) {
	c := New(Config{Budget: time.Millisecond})

	// Empty shape: nothing to solve, never over budget.
	if p := c.PlanRequest(nil); p.OverBudget || p.PredictedMS != 0 {
		t.Errorf("nil shape: PlanRequest = %+v, want zero", p)
	}
	if p := c.PlanRequest(&Shape{}); p.OverBudget {
		t.Errorf("empty shape reported over budget")
	}

	// A huge component whose minimum-effort cost (sampling at the
	// MinSamples floor) dwarfs the budget: the degrade signal.
	huge := &Shape{Pairs: 100000, Components: []ComponentShape{{Pairs: 100000, LnPopulation: 1e6}}}
	p := c.PlanRequest(huge)
	if !p.OverBudget {
		t.Errorf("100k-pair component under a 1ms budget not flagged over budget (predicted %.2fms)", p.PredictedMS)
	}

	// The same component under a generous budget is admitted.
	roomy := New(Config{Budget: 30 * time.Second})
	if p := roomy.PlanRequest(huge); p.OverBudget {
		t.Errorf("100k-pair component under a 30s budget flagged over budget (predicted %.2fms)", p.PredictedMS)
	}
	if p := roomy.PlanRequest(huge); p.PredictedMS <= 0 {
		t.Errorf("PlanRequest predicted %.4fms, want > 0", p.PredictedMS)
	}
}

func TestDegradeAndFallbackCounters(t *testing.T) {
	c := New(Config{Budget: time.Millisecond})
	c.NoteDegraded(true)
	c.NoteDegraded(true)
	c.NoteDegraded(false)
	c.NoteFallback()
	st := c.StatsSnapshot()
	if st.Degraded != 3 || st.StaleServed != 2 || st.Shed != 1 || st.Fallbacks != 1 {
		t.Errorf("counters = degraded %d staleServed %d shed %d fallbacks %d, want 3/2/1/1",
			st.Degraded, st.StaleServed, st.Shed, st.Fallbacks)
	}
	if st.BudgetMS != 1 {
		t.Errorf("BudgetMS = %v, want 1", st.BudgetMS)
	}
	if st.MaxStaleMS != 5000 {
		t.Errorf("MaxStaleMS = %v, want the 5000 default", st.MaxStaleMS)
	}
}
