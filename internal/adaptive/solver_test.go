package adaptive

import (
	"context"
	"reflect"
	"testing"
	"time"

	"rdbsc/internal/core"
	"rdbsc/internal/decompose"
	"rdbsc/internal/gen"
	"rdbsc/internal/model"
)

// assignmentMap flattens an assignment for comparison.
func assignmentMap(a *model.Assignment) map[model.WorkerID]model.TaskID {
	out := make(map[model.WorkerID]model.TaskID, a.Len())
	a.Workers(func(w model.WorkerID, t model.TaskID) { out[w] = t })
	return out
}

func TestSolverDispatchAndObservation(t *testing.T) {
	in := gen.Generate(gen.Default().WithScale(10, 20).WithSeed(3))
	p := core.NewProblem(in)
	if len(p.Pairs) == 0 {
		t.Fatal("generated instance has no valid pairs")
	}

	ctrl := New(Config{Budget: 5 * time.Second})
	s := NewSolver(ctrl)
	res, err := s.Solve(context.Background(), p, &core.SolveOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Assignment == nil {
		t.Fatal("adaptive solve returned no result")
	}

	counts := s.LaneCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 1 {
		t.Fatalf("one Solve call produced lane counts %v, want exactly one dispatch", counts)
	}
	st := ctrl.StatsSnapshot()
	if got := st.Exhaustive.Solves + st.Greedy.Solves + st.Sampling.Solves; got != 1 {
		t.Errorf("controller observed %d solves, want 1", got)
	}
}

// TestSolverShardedDispatch wraps the dispatcher the way the serve layer
// does and checks every connected component is routed (lane counts sum to
// the component count).
func TestSolverShardedDispatch(t *testing.T) {
	in := gen.Generate(gen.Default().WithScale(40, 80).WithSeed(5))
	p := core.NewProblem(in)
	parts := decompose.BuildSized(p.Pairs, len(in.Tasks), len(in.Workers)).Len()
	if parts < 2 {
		t.Skipf("instance decomposed into %d component(s); need >= 2", parts)
	}

	ctrl := New(Config{Budget: 5 * time.Second})
	s := NewSolver(ctrl)
	res, err := core.NewSharded(s).Solve(context.Background(), p, &core.SolveOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Len() == 0 {
		t.Fatal("sharded adaptive solve assigned nothing")
	}
	total := 0
	for _, n := range s.LaneCounts() {
		total += n
	}
	if total != parts {
		t.Errorf("lane counts sum to %d, want one dispatch per component (%d)", total, parts)
	}
}

// TestSolverSamplingDeterministic: two fresh controllers with identical
// configuration make the same plan, so the same seed yields the same
// assignment even on the randomized sampling lane.
func TestSolverSamplingDeterministic(t *testing.T) {
	in := gen.Generate(gen.Default().WithScale(60, 120).WithSeed(9))
	p := core.NewProblem(in)

	solveOnce := func() *core.Result {
		t.Helper()
		// ExhaustiveMaxPairs 1 rules the exact lane out regardless of how
		// sparse the generated instance happens to be.
		ctrl := New(Config{Budget: time.Millisecond, ExhaustiveMaxPairs: 1, MinGreedyPairs: 1})
		// Make the greedy lane look expensive so the problem routes to the
		// sampling lane deterministically.
		for i := 0; i < 40; i++ {
			ctrl.Observe(Decision{Lane: LaneGreedy}, 32, time.Minute)
		}
		s := NewSolver(ctrl)
		res, err := s.Solve(context.Background(), p, &core.SolveOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if n := s.LaneCounts()["sampling"]; n != 1 {
			t.Fatalf("lane counts %v, want the sampling lane", s.LaneCounts())
		}
		return res
	}

	a, b := solveOnce(), solveOnce()
	if !reflect.DeepEqual(assignmentMap(a.Assignment), assignmentMap(b.Assignment)) {
		t.Error("same seed and same controller state produced different sampling-lane assignments")
	}
}

func TestSolverEmptyProblem(t *testing.T) {
	in := gen.Generate(gen.Default().WithScale(1, 1).WithSeed(1))
	p := core.NewProblemWithPairs(in, nil) // force an empty pair set
	ctrl := New(Config{Budget: time.Second})
	s := NewSolver(ctrl)
	res, err := s.Solve(context.Background(), p, &core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Len() != 0 {
		t.Errorf("empty problem assigned %d workers", res.Assignment.Len())
	}
}
