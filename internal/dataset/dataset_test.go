package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rdbsc/internal/gen"
)

func TestTaskRoundTrip(t *testing.T) {
	in := gen.Generate(gen.Default().WithScale(50, 0))
	var buf bytes.Buffer
	if err := WriteTasks(&buf, in.Tasks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTasks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in.Tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(got), len(in.Tasks))
	}
	for i := range got {
		if got[i] != in.Tasks[i] {
			t.Fatalf("task %d changed: %+v vs %+v", i, got[i], in.Tasks[i])
		}
	}
}

func TestWorkerRoundTrip(t *testing.T) {
	in := gen.Generate(gen.Default().WithScale(0, 50))
	var buf bytes.Buffer
	if err := WriteWorkers(&buf, in.Workers); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in.Workers) {
		t.Fatalf("round trip lost workers: %d vs %d", len(got), len(in.Workers))
	}
	for i := range got {
		if got[i] != in.Workers[i] {
			t.Fatalf("worker %d changed:\n%+v\n%+v", i, got[i], in.Workers[i])
		}
	}
}

func TestSaveLoadInstance(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "w")
	in := gen.Generate(gen.Default().WithScale(20, 30))
	if err := SaveInstance(prefix, in); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstance(prefix, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Beta != 0.5 {
		t.Errorf("beta = %v", got.Beta)
	}
	if len(got.Tasks) != 20 || len(got.Workers) != 30 {
		t.Errorf("sizes: %d tasks %d workers", len(got.Tasks), len(got.Workers))
	}
	for i := range got.Tasks {
		if got.Tasks[i] != in.Tasks[i] {
			t.Fatal("task mismatch after save/load")
		}
	}
}

func TestLoadInstanceMissingFiles(t *testing.T) {
	if _, err := LoadInstance(filepath.Join(t.TempDir(), "nope"), 0.5); err == nil {
		t.Error("expected error for missing files")
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := ReadTasks(strings.NewReader("a,b,c,d,e\n1,2,3,4,5\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadWorkers(strings.NewReader("id,x\n")); err == nil {
		t.Error("short header accepted")
	}
}

func TestReadRejectsBadData(t *testing.T) {
	cases := []string{
		"id,x,y,start,end\nfoo,0,0,0,1\n", // bad id
		"id,x,y,start,end\n1,zz,0,0,1\n",  // bad float
		"id,x,y,start,end\n1,0,0,2,1\n",   // end before start
		"id,x,y,start,end\n",              // header only is fine -> no error
	}
	for i, c := range cases[:3] {
		if _, err := ReadTasks(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad data accepted", i)
		}
	}
	if got, err := ReadTasks(strings.NewReader(cases[3])); err != nil || len(got) != 0 {
		t.Errorf("header-only file: %v, %v", got, err)
	}
}

func TestReadRejectsInvalidWorker(t *testing.T) {
	bad := "id,x,y,speed,dir_lo,dir_width,confidence,depart\n1,0,0,0,0,1,0.9,0\n" // zero speed
	if _, err := ReadWorkers(strings.NewReader(bad)); err == nil {
		t.Error("invalid worker accepted")
	}
}

func TestReadEmptyFile(t *testing.T) {
	if _, err := ReadTasks(strings.NewReader("")); err == nil {
		t.Error("empty file accepted")
	}
}
