package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTasks fuzzes the task-table ingestion path: arbitrary bytes must
// either fail cleanly or parse into tasks that re-serialize to a fixed
// point (write → read → write is byte-stable), so hostile or corrupt CSV
// can never panic a loader or smuggle values that don't round-trip.
func FuzzReadTasks(f *testing.F) {
	f.Add([]byte("id,x,y,start,end\n0,0.5,0.5,0,1\n1,0.25,0.75,0.5,2\n"))
	f.Add([]byte("id,x,y,start,end\n"))
	f.Add([]byte("id,x,y,start,end\n0,NaN,0.5,0,1\n"))
	f.Add([]byte("id,x,y,start,end\n0,0.5,0.5,2,1\n")) // End before Start
	f.Add([]byte("wrong,header\n"))
	f.Add([]byte("id,x,y,start,end\n9223372036854775807,1e308,-1e308,0,1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tasks, err := ReadTasks(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteTasks(&first, tasks); err != nil {
			t.Fatalf("serializing parsed tasks: %v", err)
		}
		again, err := ReadTasks(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing serialized tasks: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteTasks(&second, again); err != nil {
			t.Fatalf("re-serializing tasks: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("task table is not a serialization fixed point:\n%s\nvs\n%s",
				first.Bytes(), second.Bytes())
		}
		for _, task := range again {
			if err := task.Valid(); err != nil {
				t.Fatalf("parser admitted an invalid task: %v", err)
			}
		}
	})
}

// FuzzReadWorkers is the worker-table mirror of FuzzReadTasks.
func FuzzReadWorkers(f *testing.F) {
	f.Add([]byte("id,x,y,speed,dir_lo,dir_width,confidence,depart\n0,0.5,0.5,0.25,0,6.28,0.95,0\n"))
	f.Add([]byte("id,x,y,speed,dir_lo,dir_width,confidence,depart\n"))
	f.Add([]byte("id,x,y,speed,dir_lo,dir_width,confidence,depart\n0,0.5,0.5,0,0,1,0.9,0\n")) // zero speed
	f.Add([]byte("id,x,y,speed,dir_lo,dir_width,confidence,depart\n0,0.5,0.5,1,0,1,1.5,0\n")) // confidence > 1
	f.Add([]byte("id,x,y,speed,dir_lo,dir_width,confidence,depart\n0,0.5,0.5,1,NaN,Inf,0.9,0\n"))
	f.Add([]byte("id;x;y\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		workers, err := ReadWorkers(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteWorkers(&first, workers); err != nil {
			t.Fatalf("serializing parsed workers: %v", err)
		}
		again, err := ReadWorkers(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing serialized workers: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteWorkers(&second, again); err != nil {
			t.Fatalf("re-serializing workers: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("worker table is not a serialization fixed point:\n%s\nvs\n%s",
				first.Bytes(), second.Bytes())
		}
		for _, w := range again {
			if err := w.Valid(); err != nil {
				t.Fatalf("parser admitted an invalid worker: %v", err)
			}
		}
	})
}

// TestFuzzSeedHeadersMatch keeps the inline seed corpus honest: the valid
// seeds really are valid under the current schema.
func TestFuzzSeedHeadersMatch(t *testing.T) {
	if _, err := ReadTasks(strings.NewReader("id,x,y,start,end\n0,0.5,0.5,0,1\n")); err != nil {
		t.Fatalf("canonical task seed no longer parses: %v", err)
	}
	if _, err := ReadWorkers(strings.NewReader(
		"id,x,y,speed,dir_lo,dir_width,confidence,depart\n0,0.5,0.5,0.25,0,6.28,0.95,0\n")); err != nil {
		t.Fatalf("canonical worker seed no longer parses: %v", err)
	}
}
