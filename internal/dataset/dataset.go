// Package dataset reads and writes RDB-SC instances as CSV, the
// interchange format used by cmd/rdbsc-gen and by downstream tooling.
// Tasks and workers are stored in two files:
//
//	<prefix>_tasks.csv:   id,x,y,start,end
//	<prefix>_workers.csv: id,x,y,speed,dir_lo,dir_width,confidence,depart
//
// The instance-wide β is not part of the CSV (it is a requester knob, not
// data); callers set it after loading.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"rdbsc/internal/geo"
	"rdbsc/internal/model"
)

// taskHeader and workerHeader are the canonical column sets.
var (
	taskHeader   = []string{"id", "x", "y", "start", "end"}
	workerHeader = []string{"id", "x", "y", "speed", "dir_lo", "dir_width", "confidence", "depart"}
)

// WriteTasks writes the task table to w.
func WriteTasks(w io.Writer, tasks []model.Task) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(taskHeader); err != nil {
		return err
	}
	for _, t := range tasks {
		rec := []string{
			strconv.Itoa(int(t.ID)),
			fmtF(t.Loc.X), fmtF(t.Loc.Y),
			fmtF(t.Start), fmtF(t.End),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWorkers writes the worker table to w.
func WriteWorkers(w io.Writer, workers []model.Worker) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(workerHeader); err != nil {
		return err
	}
	for _, wk := range workers {
		rec := []string{
			strconv.Itoa(int(wk.ID)),
			fmtF(wk.Loc.X), fmtF(wk.Loc.Y),
			fmtF(wk.Speed),
			fmtF(wk.Dir.Lo), fmtF(wk.Dir.Width),
			fmtF(wk.Confidence), fmtF(wk.Depart),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTasks parses a task table.
func ReadTasks(r io.Reader) ([]model.Task, error) {
	rows, err := readRows(r, taskHeader)
	if err != nil {
		return nil, fmt.Errorf("dataset: tasks: %w", err)
	}
	tasks := make([]model.Task, 0, len(rows))
	for i, rec := range rows {
		vals, err := parseFloats(rec[1:])
		if err != nil {
			return nil, fmt.Errorf("dataset: tasks row %d: %w", i+1, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: tasks row %d: bad id %q", i+1, rec[0])
		}
		t := model.Task{
			ID:    model.TaskID(id),
			Loc:   geo.Pt(vals[0], vals[1]),
			Start: vals[2],
			End:   vals[3],
		}
		if err := t.Valid(); err != nil {
			return nil, fmt.Errorf("dataset: tasks row %d: %w", i+1, err)
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// ReadWorkers parses a worker table.
func ReadWorkers(r io.Reader) ([]model.Worker, error) {
	rows, err := readRows(r, workerHeader)
	if err != nil {
		return nil, fmt.Errorf("dataset: workers: %w", err)
	}
	workers := make([]model.Worker, 0, len(rows))
	for i, rec := range rows {
		vals, err := parseFloats(rec[1:])
		if err != nil {
			return nil, fmt.Errorf("dataset: workers row %d: %w", i+1, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: workers row %d: bad id %q", i+1, rec[0])
		}
		w := model.Worker{
			ID:         model.WorkerID(id),
			Loc:        geo.Pt(vals[0], vals[1]),
			Speed:      vals[2],
			Dir:        geo.AngInterval{Lo: vals[3], Width: vals[4]},
			Confidence: vals[5],
			Depart:     vals[6],
		}
		if err := w.Valid(); err != nil {
			return nil, fmt.Errorf("dataset: workers row %d: %w", i+1, err)
		}
		workers = append(workers, w)
	}
	return workers, nil
}

// SaveInstance writes <prefix>_tasks.csv and <prefix>_workers.csv.
func SaveInstance(prefix string, in *model.Instance) error {
	tf, err := os.Create(prefix + "_tasks.csv")
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := WriteTasks(tf, in.Tasks); err != nil {
		return err
	}
	wf, err := os.Create(prefix + "_workers.csv")
	if err != nil {
		return err
	}
	defer wf.Close()
	return WriteWorkers(wf, in.Workers)
}

// LoadInstance reads <prefix>_tasks.csv and <prefix>_workers.csv into a new
// instance with the given β.
func LoadInstance(prefix string, beta float64) (*model.Instance, error) {
	tf, err := os.Open(prefix + "_tasks.csv")
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	tasks, err := ReadTasks(tf)
	if err != nil {
		return nil, err
	}
	wf, err := os.Open(prefix + "_workers.csv")
	if err != nil {
		return nil, err
	}
	defer wf.Close()
	workers, err := ReadWorkers(wf)
	if err != nil {
		return nil, err
	}
	in := &model.Instance{Tasks: tasks, Workers: workers, Beta: beta}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

func readRows(r io.Reader, header []string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	all, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("empty file")
	}
	for i, h := range header {
		if all[0][i] != h {
			return nil, fmt.Errorf("bad header: got %v, want %v", all[0], header)
		}
	}
	return all[1:], nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }
