// Package workload defines the named scenario suite behind the repository's
// benchmark pipeline. Every scenario is parameterized by a common Params
// block and fully determined by its seed, and produces two shapes of
// workload:
//
//   - a one-shot model.Instance, the input of a single solve — what
//     rdbsc-bench's -scenario mode measures and writes to BENCH_<name>.json;
//   - a timed churn Trace — an explicit event sequence (task/worker arrivals
//     and departures on a simulated clock) that internal/stream replays
//     against an engine (Config.Trace) and cmd/rdbsc-loadgen replays against
//     rdbsc-server as open-loop HTTP load (Replay).
//
// The scenarios deliberately go beyond the paper's Table 2 settings (which
// package gen covers as the uniform/dense/islands generators): Zipf-skewed
// task popularity, rush-hour arrival bursts, a moving spatial hotspot,
// heavy worker churn, multi-city disconnected regions, and an adversarial
// near-clique worst case. Together they are the fixed vocabulary that
// BENCH_*.json reports and the CI perf-smoke gate are keyed on.
package workload

import (
	"fmt"
	"sort"

	"rdbsc/internal/model"
)

// Params is the common scenario parameter block. The zero value selects the
// defaults below; scenarios derive every internal knob (hotspot counts,
// burst widths, churn rates) from these plus fixed documented constants, so
// a (name, Params) pair pins a workload exactly.
type Params struct {
	// M and N are the task and worker counts of the one-shot instance and
	// the arrival-volume scale of the trace (defaults 80/160, the bench
	// scale used across the repository).
	M, N int
	// Seed drives all randomness (default 1).
	Seed int64
	// Horizon is the trace span in simulated hours (default 4). One-shot
	// instances ignore it except where noted per scenario.
	Horizon float64
}

func (p Params) withDefaults() Params {
	if p.M <= 0 {
		p.M = 80
	}
	if p.N <= 0 {
		p.N = 160
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Horizon <= 0 {
		p.Horizon = 4
	}
	return p
}

// Scenario is one named workload. Both constructors are always non-nil:
// trace-first scenarios derive their one-shot instance from a snapshot of
// the churn profile, and instance-first scenarios derive their trace from
// the entities' own timestamps (tasks arrive at Start, workers at Depart).
type Scenario struct {
	// Name is the registry key, also the <name> of BENCH_<name>.json.
	Name string
	// Description is a one-line summary for -list-scenarios and the README.
	Description string
	// Instance builds the one-shot instance.
	Instance func(p Params) *model.Instance
	// Trace builds the timed churn trace.
	Trace func(p Params) *Trace
}

// Registry returns every scenario in presentation order.
func Registry() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// Names returns the registered scenario names in presentation order.
func Names() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// ByName looks a scenario up by name.
func ByName(name string) (Scenario, error) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q (known: %v)", name, known)
}
