package workload

import (
	"errors"
	"net/http"
	"testing"
	"time"
)

// TestExpectRestartAbsorbsOutage pins the -expect-restart accounting:
// transport failures inside the restart window are absorbed as connection
// errors (never counted against mutations or solves), a success closes the
// outage, and a later outage opens a fresh window.
func TestExpectRestartAbsorbsOutage(t *testing.T) {
	st := &replayStats{expectRestart: true, restartWindow: time.Hour}
	boom := errors.New("connection refused")

	st.record(classMutation, 1, http.StatusOK, false, nil)
	st.record(classMutation, 0, 0, false, boom)
	st.record(classSolve, 0, 0, false, boom)
	if st.outageStart.IsZero() {
		t.Fatal("failures under expectRestart did not open an outage window")
	}
	st.record(classMutation, 1, http.StatusOK, false, nil) // server is back

	if !st.outageStart.IsZero() {
		t.Error("a success did not close the outage window")
	}
	if st.connErrs != 2 {
		t.Errorf("connErrs = %d, want 2 absorbed failures", st.connErrs)
	}
	if st.mutErr != 0 || st.solveErr != 0 {
		t.Errorf("absorbed failures leaked into error counters: mutErr=%d solveErr=%d", st.mutErr, st.solveErr)
	}
	if st.mutOK != 2 {
		t.Errorf("mutOK = %d, want 2", st.mutOK)
	}

	// A second outage opens its own window.
	st.record(classMutation, 0, 0, false, boom)
	if st.connErrs != 3 {
		t.Errorf("connErrs = %d after a fresh outage, want 3", st.connErrs)
	}
	if st.outageStart.IsZero() {
		t.Error("fresh outage did not reopen the window")
	}
}

// TestExpectRestartWindowExpiry: an outage older than the window stops being
// absorbed — subsequent failures count as real errors again.
func TestExpectRestartWindowExpiry(t *testing.T) {
	st := &replayStats{expectRestart: true, restartWindow: 50 * time.Millisecond}
	boom := errors.New("connection refused")

	st.record(classMutation, 0, 0, false, boom)
	if st.connErrs != 1 || st.mutErr != 0 {
		t.Fatalf("first failure: connErrs=%d mutErr=%d, want 1/0", st.connErrs, st.mutErr)
	}
	// Backdate the outage past the window instead of sleeping.
	st.outageStart = time.Now().Add(-time.Second)
	st.record(classMutation, 0, 0, false, boom)
	st.record(classSolve, 0, 0, false, boom)
	if st.connErrs != 1 {
		t.Errorf("connErrs = %d, want 1 (expired outages are not absorbed)", st.connErrs)
	}
	if st.mutErr != 1 || st.solveErr != 1 {
		t.Errorf("expired-outage failures: mutErr=%d solveErr=%d, want 1/1", st.mutErr, st.solveErr)
	}
	// Recovery still records the full outage length, even an over-window one.
	st.record(classMutation, 1, http.StatusOK, false, nil)
	if st.maxOutageMS < 900 {
		t.Errorf("maxOutageMS = %v after recovery, want >= 900 for a backdated 1s outage", st.maxOutageMS)
	}
}

// TestExpectRestartOffIsUntouched: without the flag, failures hit the
// ordinary error counters and no outage state accrues.
func TestExpectRestartOffIsUntouched(t *testing.T) {
	st := &replayStats{}
	st.record(classMutation, 0, 0, false, errors.New("refused"))
	st.record(classSolve, 0, 0, false, errors.New("refused"))
	if st.connErrs != 0 || st.maxOutageMS != 0 {
		t.Errorf("restart accounting ran without expectRestart: connErrs=%d maxOutageMS=%v", st.connErrs, st.maxOutageMS)
	}
	if st.mutErr != 1 || st.solveErr != 1 {
		t.Errorf("mutErr=%d solveErr=%d, want 1/1", st.mutErr, st.solveErr)
	}
}

// TestReplayConfigRestartDefaults pins the default window.
func TestReplayConfigRestartDefaults(t *testing.T) {
	c := ReplayConfig{ExpectRestart: true}.withDefaults()
	if c.RestartWindow != 10*time.Second {
		t.Errorf("default RestartWindow = %v, want 10s", c.RestartWindow)
	}
	if got := (ReplayConfig{}).withDefaults().RestartWindow; got != 0 {
		t.Errorf("RestartWindow defaulted to %v without ExpectRestart, want 0", got)
	}
}
