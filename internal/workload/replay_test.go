package workload

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdbsc/internal/engine"
	"rdbsc/internal/serve"
)

// TestReplayAgainstHTTPTestServer is the loadgen dry run: replay a small
// dense trace against an in-process serve.Server and check the report
// accounts for every request, at least one solve completed feasibly, and
// the server's own /v1/stats latency view was populated.
func TestReplayAgainstHTTPTestServer(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Engine:     engine.New(engine.Config{}),
		SolverName: "greedy",
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown(context.Background())

	sc, err := ByName("dense")
	if err != nil {
		t.Fatal(err)
	}
	tr := sc.Trace(Params{M: 15, N: 30, Seed: 3})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Replay(ctx, tr, ReplayConfig{
		BaseURL: hs.URL,
		// ~2s of wall clock: compressed enough to stay fast, slow enough
		// that tasks live tens of milliseconds and solve ticks reliably
		// observe a populated snapshot (600 h/s made every task's alive
		// window ~2ms and flaked under -race).
		HoursPerSecond: 120,
		SolveEvery:     0.2,
		Solver:         "greedy",
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Kind != "load" || rep.Scenario != "dense" {
		t.Fatalf("report header %q/%q", rep.Kind, rep.Scenario)
	}

	l := rep.Load
	if l == nil {
		t.Fatal("missing load metrics")
	}
	if l.MutationsSent != len(tr.Events) {
		t.Errorf("sent %d mutations, trace has %d events", l.MutationsSent, len(tr.Events))
	}
	if l.MutationsOK+l.MutationsRejected+l.MutationErrors != l.MutationsSent {
		t.Errorf("mutation accounting leaks: ok %d + 429 %d + err %d != sent %d",
			l.MutationsOK, l.MutationsRejected, l.MutationErrors, l.MutationsSent)
	}
	if l.MutationErrors != 0 {
		t.Errorf("%d mutation errors against a healthy server", l.MutationErrors)
	}
	if l.SolvesOK == 0 {
		t.Fatal("no solve completed")
	}
	if !rep.Feasible {
		t.Error("no feasible solve on a dense trace")
	}
	if rep.WallMS.P50 <= 0 || l.MutationMS.P50 <= 0 {
		t.Errorf("latency percentiles not recorded: solve p50 %v, mutation p50 %v",
			rep.WallMS.P50, l.MutationMS.P50)
	}

	// Server-side complement: /v1/stats must have seen the solves and
	// summarized their latency.
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Solves         uint64 `json:"solves"`
		SolveLatencyMS struct {
			P50 float64 `json:"p50"`
		} `json:"solve_latency_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Solves == 0 {
		t.Error("server recorded no solves")
	}
	if stats.SolveLatencyMS.P50 <= 0 {
		t.Error("server solve_latency_ms not populated")
	}
}

// TestReplayReArrival is the regression test for a double-close panic:
// a trace that re-arrives the same entity ID (an upsert, legal for every
// other trace consumer) must replay cleanly, with the departure gated on
// the first arrival.
func TestReplayReArrival(t *testing.T) {
	srv, err := serve.New(serve.Config{Engine: engine.New(engine.Config{}), SolverName: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown(context.Background())

	sc, _ := ByName("dense")
	tr := sc.Trace(Params{M: 5, N: 10, Seed: 1})
	// Duplicate the first task/worker arrivals as same-ID upserts.
	var extra []Event
	for _, e := range tr.Events {
		if (e.Kind == TaskArrive || e.Kind == WorkerArrive) && len(extra) < 4 {
			extra = append(extra, e)
		}
	}
	tr.Events = append(tr.Events, extra...)
	rep, err := Replay(context.Background(), tr, ReplayConfig{
		BaseURL:        hs.URL,
		HoursPerSecond: 120,
		SolveEvery:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.MutationsSent != len(tr.Events) {
		t.Fatalf("sent %d of %d mutations", rep.Load.MutationsSent, len(tr.Events))
	}
	if rep.Load.MutationErrors != 0 {
		t.Fatalf("%d mutation errors", rep.Load.MutationErrors)
	}
}

// TestReplayRetry429: against a server that backpressures every first
// attempt, the default (retry-less) replay records rejections, while a
// replay with a retry budget converts them into successes and tallies the
// extra attempts in MutationRetries.
func TestReplayRetry429(t *testing.T) {
	// Each run gets its own fake server that 429s the first attempt on
	// every method+path and succeeds afterwards.
	newFake := func() *httptest.Server {
		var hits sync.Map // method+path -> *atomic.Int64
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			key := r.Method + " " + r.URL.Path
			v, _ := hits.LoadOrStore(key, new(atomic.Int64))
			if v.(*atomic.Int64).Add(1) == 1 {
				http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{}`))
		}))
	}

	sc, _ := ByName("dense")
	mkTrace := func() *Trace { return sc.Trace(Params{M: 6, N: 12, Seed: 2, Horizon: 1}) }

	fake := newFake()
	rep, err := Replay(context.Background(), mkTrace(), ReplayConfig{
		BaseURL: fake.URL, HoursPerSecond: 240, SolveEvery: -1,
	})
	fake.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.MutationsRejected == 0 {
		t.Fatal("control run saw no 429s; the fake server is not backpressuring")
	}
	if rep.Load.MutationRetries != 0 {
		t.Errorf("retry-less replay recorded %d retries", rep.Load.MutationRetries)
	}

	fake = newFake()
	defer fake.Close()
	rep, err = Replay(context.Background(), mkTrace(), ReplayConfig{
		BaseURL: fake.URL, HoursPerSecond: 240, SolveEvery: -1,
		Retry429: 3, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Load
	if l.MutationsRejected != 0 {
		t.Errorf("%d mutations stayed rejected despite the retry budget", l.MutationsRejected)
	}
	if l.MutationsOK != l.MutationsSent {
		t.Errorf("ok %d != sent %d with retries on", l.MutationsOK, l.MutationsSent)
	}
	if l.MutationRetries == 0 {
		t.Error("retries were taken but not tallied")
	}
	if l.MutationsPerSecond <= 0 {
		t.Errorf("mutations_per_second not recorded: %v", l.MutationsPerSecond)
	}
}

// TestReplayRequiresBaseURL pins the config contract.
func TestReplayRequiresBaseURL(t *testing.T) {
	tr := &Trace{Scenario: "x", Horizon: 1}
	if _, err := Replay(context.Background(), tr, ReplayConfig{}); err == nil {
		t.Fatal("Replay without BaseURL should fail")
	}
}

// TestReplayCancellation: a cancelled context stops dispatch early and
// still returns a consistent report.
func TestReplayCancellation(t *testing.T) {
	srv, err := serve.New(serve.Config{Engine: engine.New(engine.Config{}), SolverName: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown(context.Background())

	sc, _ := ByName("churn")
	tr := sc.Trace(Params{M: 20, N: 40, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rep, err := Replay(ctx, tr, ReplayConfig{
		BaseURL:        hs.URL,
		HoursPerSecond: 2, // slow enough that the deadline cuts the replay
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.MutationsSent >= len(tr.Events) {
		t.Errorf("cancellation did not truncate the replay: %d of %d sent",
			rep.Load.MutationsSent, len(tr.Events))
	}
}
