package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"rdbsc/internal/benchreport"
	"rdbsc/internal/serve"
)

// ReplayConfig parameterizes an open-loop HTTP replay of a trace against a
// running rdbsc-server.
type ReplayConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// Client is the HTTP client (default: 10s-timeout client).
	Client *http.Client
	// HoursPerSecond compresses trace time onto the wall clock: a trace
	// hour replays in 1/HoursPerSecond wall seconds (default 60 — a 4-hour
	// trace replays in 4 seconds).
	HoursPerSecond float64
	// SolveEvery issues an open-loop POST /v1/solve every so many trace
	// hours (default 0.25; negative disables).
	SolveEvery float64
	// Solver names the solver for those solve requests (empty = server
	// default).
	Solver string
	// SolveTimeoutMS bounds each solve request server-side (default 2000).
	SolveTimeoutMS int64
	// Seed seeds the solve requests.
	Seed int64
	// MaxInFlight bounds concurrently outstanding requests (default 256).
	// The replay is open-loop up to this cap: dispatch never waits for the
	// previous response, only for a free slot, and MaxScheduleLagMS records
	// how far dispatch fell behind the schedule.
	MaxInFlight int
	// Retry429 is the retry budget per mutation when the server answers 429
	// (shard queue full). 0 — the default — records the rejection and moves
	// on, keeping the replay strictly open-loop; with N > 0 a rejected
	// mutation is retried up to N times with jittered doubling backoff
	// before it counts as rejected. Retries are tallied in the load record's
	// MutationRetries.
	Retry429 int
	// RetryBackoff is the first retry's base delay (default 5ms; doubles per
	// attempt, each wait jittered uniformly over [base/2, base)).
	RetryBackoff time.Duration
	// SLOBudget, when positive, scores every successful non-degraded solve
	// response against this latency budget using the server-reported
	// elapsed_ms (solve time on the server, excluding network): responses
	// over budget count as SLO violations in the load record. Degraded
	// (stale) responses and shed solves (429) are tallied separately — they
	// are the adaptive tier's overload valves, not violations.
	SLOBudget time.Duration
	// ExpectRestart tolerates a bounded server outage mid-replay: transport
	// failures (connection refused/reset while the server is down between a
	// kill and a restart) are absorbed as ConnErrors in the load record
	// instead of counting as mutation/solve errors, as long as the outage
	// stays within RestartWindow. Any successful response closes the window;
	// failures past the window count as real errors again.
	ExpectRestart bool
	// RestartWindow bounds a tolerated outage under ExpectRestart (default
	// 10s). Measured from the first failure of the current outage.
	RestartWindow time.Duration
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.HoursPerSecond <= 0 {
		c.HoursPerSecond = 60
	}
	if c.SolveEvery == 0 {
		c.SolveEvery = 0.25
	}
	if c.SolveTimeoutMS <= 0 {
		c.SolveTimeoutMS = 2000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.Retry429 > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.ExpectRestart && c.RestartWindow <= 0 {
		c.RestartWindow = 10 * time.Second
	}
	return c
}

// replayStats collects request outcomes under one mutex (latency lists are
// appended per request; the replay is bounded by MaxInFlight, so contention
// is negligible next to the HTTP round-trips).
type replayStats struct {
	mu sync.Mutex

	mutSent, mutOK, mut429, mutErr   int
	mutRetries                       int
	solveSent, solveOK, solvePartial int
	solveErr, solveShed              int
	mutLatMS, solveLatMS             []float64
	maxLagMS                         float64

	// SLO accounting (SLOBudget mode): violations scored on the
	// server-reported solve time, degraded/stale answers tallied with the
	// largest staleness the server admitted to.
	sloViolations    int
	degraded         int
	maxServedStaleMS float64

	// Restart-tolerance accounting (ExpectRestart mode). outageStart is the
	// first failure of the current outage; zero when the server is reachable.
	expectRestart bool
	restartWindow time.Duration
	outageStart   time.Time
	connErrs      int
	maxOutageMS   float64
}

// request classes for record().
const (
	classMutation = iota
	classSolve
)

func (st *replayStats) record(class int, latMS float64, status int, partial bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.expectRestart {
		if err != nil {
			now := time.Now()
			if st.outageStart.IsZero() {
				st.outageStart = now
			}
			if d := now.Sub(st.outageStart); d <= st.restartWindow {
				st.connErrs++
				if ms := float64(d) / float64(time.Millisecond); ms > st.maxOutageMS {
					st.maxOutageMS = ms
				}
				return // absorbed: not a mutation/solve error
			}
			// Outage outlived the window — fall through as a real error.
		} else if !st.outageStart.IsZero() {
			// Server is back: the outage is over, future failures start a
			// fresh window.
			if ms := float64(time.Since(st.outageStart)) / float64(time.Millisecond); ms > st.maxOutageMS {
				st.maxOutageMS = ms
			}
			st.outageStart = time.Time{}
		}
	}
	switch class {
	case classMutation:
		switch {
		case err != nil:
			st.mutErr++
		case status == http.StatusTooManyRequests:
			st.mut429++
		case status >= 200 && status < 300:
			st.mutOK++
			st.mutLatMS = append(st.mutLatMS, latMS)
		default:
			st.mutErr++
		}
	case classSolve:
		switch {
		case err != nil:
			st.solveErr++
		case status == http.StatusTooManyRequests:
			// The adaptive tier shed the solve (over budget, nothing fresh
			// enough to serve stale). Not an error: the valve worked.
			st.solveShed++
		case status >= 200 && status < 300:
			st.solveOK++
			if partial {
				st.solvePartial++
			}
			st.solveLatMS = append(st.solveLatMS, latMS)
		default:
			st.solveErr++
		}
	}
}

// scheduled is one wall-clock dispatch: a trace event or a solve tick.
type scheduled struct {
	offset time.Duration // from replay start
	ev     *Event        // nil for a solve tick
}

// entityKey identifies a task or worker in the arrival-gate map.
type entityKey struct {
	task bool
	id   int64
}

// gate opens (once) when an entity's first arrival round-trip completes.
// The sync.Once tolerates traces that re-arrive the same entity ID — legal
// for the other trace consumers, which treat arrivals as upserts.
type gate struct {
	ch   chan struct{}
	once sync.Once
}

func (g *gate) open() { g.once.Do(func() { close(g.ch) }) }

// waitGate blocks until g opens or ctx ends; a nil gate (an entity the
// trace never delivered an arrival for) passes immediately.
func waitGate(ctx context.Context, g *gate) {
	if g == nil {
		return
	}
	select {
	case <-g.ch:
	case <-ctx.Done():
	}
}

// Replay replays the trace against a server as open-loop HTTP load and
// summarizes it as a benchreport.Report of kind "load": solve latency
// percentiles in WallMS, the mutation-plane split and error mix under Load,
// and the objective of the most recent feasible solve (Feasible reports
// whether any solve assigned at all — the ticks at the end of a replay run
// against a drained population and are expected to be empty).
// cmd/rdbsc-loadgen is a thin flag wrapper around this; tests drive it
// against an httptest server.
//
// A ctx cancellation stops dispatching and waits for in-flight requests;
// the report covers what was sent.
func Replay(ctx context.Context, tr *Trace, cfg ReplayConfig) (*benchreport.Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("workload: ReplayConfig.BaseURL is required")
	}

	// Build the merged dispatch schedule: every trace event plus periodic
	// solve ticks, in time order (events first on ties, so a tick sees the
	// population that arrived at the same instant).
	//
	// arrived gates per-entity ordering: an entity's departure request is
	// held until its arrival's HTTP round-trip finished (success or not).
	// Without the gate, at high time compression a DELETE can overtake its
	// in-flight POST on the server's single-writer queue — the DELETE
	// no-ops and the late insert leaves a phantom entity alive for the rest
	// of the run, silently inflating the measured population. The replay
	// stays open-loop across entities; only same-entity pairs serialize.
	arrived := make(map[entityKey]*gate)
	ensureGate := func(k entityKey) {
		if _, ok := arrived[k]; !ok {
			arrived[k] = &gate{ch: make(chan struct{})}
		}
	}
	var sched []scheduled
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Kind {
		case TaskArrive:
			ensureGate(entityKey{task: true, id: int64(ev.Task.ID)})
		case WorkerArrive:
			ensureGate(entityKey{id: int64(ev.Worker.ID)})
		}
		sched = append(sched, scheduled{
			offset: time.Duration(ev.At / cfg.HoursPerSecond * float64(time.Second)),
			ev:     ev,
		})
	}
	if cfg.SolveEvery > 0 {
		for at := cfg.SolveEvery; at <= tr.Horizon; at += cfg.SolveEvery {
			sched = append(sched, scheduled{
				offset: time.Duration(at/cfg.HoursPerSecond*float64(time.Second)) + time.Millisecond,
			})
		}
	}
	sortSchedule(sched)

	st := &replayStats{expectRestart: cfg.ExpectRestart, restartWindow: cfg.RestartWindow}
	var lastSolve struct {
		mu   sync.Mutex
		resp serve.SolveResponse
		ok   bool
	}
	slots := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	dispatched := 0
	for i := range sched {
		item := sched[i]
		if err := sleepUntil(ctx, start.Add(item.offset)); err != nil {
			break // cancelled: stop dispatching, keep what we have
		}
		if lag := time.Since(start.Add(item.offset)); lag > 0 {
			st.mu.Lock()
			if ms := float64(lag) / float64(time.Millisecond); ms > st.maxLagMS {
				st.maxLagMS = ms
			}
			st.mu.Unlock()
		}
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		dispatched++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			if item.ev == nil {
				res, latMS, status, err := doSolve(ctx, cfg, tr)
				st.record(classSolve, latMS, status, res.Partial, err)
				if err == nil && status == http.StatusOK && res.Feasible {
					// Keep the most recent feasible solve: the final ticks
					// of a replay often land after the population drained,
					// so "the last solve" would usually be an empty one.
					lastSolve.mu.Lock()
					lastSolve.resp, lastSolve.ok = res, true
					lastSolve.mu.Unlock()
				}
				st.mu.Lock()
				st.solveSent++
				if err == nil && status == http.StatusOK {
					if res.Degraded {
						st.degraded++
						if res.StaleMS > st.maxServedStaleMS {
							st.maxServedStaleMS = res.StaleMS
						}
					} else if cfg.SLOBudget > 0 &&
						res.ElapsedMS > float64(cfg.SLOBudget)/float64(time.Millisecond) {
						st.sloViolations++
					}
				}
				st.mu.Unlock()
				return
			}
			// Departures wait for their entity's arrival round-trip; the
			// wait happens inside the goroutine (the slot is held, but the
			// arrival was dispatched earlier in schedule order and never
			// waits itself, so it always completes and releases the gate).
			switch item.ev.Kind {
			case TaskExpire:
				waitGate(ctx, arrived[entityKey{task: true, id: int64(item.ev.TaskID)}])
			case WorkerLeave:
				waitGate(ctx, arrived[entityKey{id: int64(item.ev.WorkerID)}])
			}
			latMS, status, retries, err := doMutationWithRetry(ctx, cfg, *item.ev)
			st.record(classMutation, latMS, status, false, err)
			st.mu.Lock()
			st.mutSent++
			st.mutRetries += retries
			st.mu.Unlock()
			switch item.ev.Kind {
			case TaskArrive:
				arrived[entityKey{task: true, id: int64(item.ev.Task.ID)}].open()
			case WorkerArrive:
				arrived[entityKey{id: int64(item.ev.Worker.ID)}].open()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	ta, te, wa, wl := tr.Counts()
	rep := benchreport.New("load", tr.Scenario, cfg.Solver, cfg.Seed)
	// Runs is the sample behind the WallMS quantiles (successful solves
	// only, matching oneshot mode); SolvesSent under Load keeps the total.
	rep.Runs = len(st.solveLatMS)
	rep.WallMS = benchreport.Summarize(st.solveLatMS)
	rep.Load = &benchreport.LoadMetrics{
		Events:             ta + te + wa + wl,
		MutationsSent:      st.mutSent,
		MutationsOK:        st.mutOK,
		MutationsRejected:  st.mut429,
		MutationErrors:     st.mutErr,
		MutationRetries:    st.mutRetries,
		SolvesSent:         st.solveSent,
		SolvesOK:           st.solveOK,
		SolvePartials:      st.solvePartial,
		SolveErrors:        st.solveErr,
		WallSeconds:        wall.Seconds(),
		RequestsPerSecond:  float64(dispatched) / wall.Seconds(),
		MutationsPerSecond: float64(st.mutOK) / wall.Seconds(),
		MutationMS:         benchreport.Summarize(st.mutLatMS),
		MaxScheduleLagMS:   st.maxLagMS,
		ConnErrors:         st.connErrs,
		MaxOutageMS:        st.maxOutageMS,
		SLOBudgetMS:        float64(cfg.SLOBudget) / float64(time.Millisecond),
		SLOViolations:      st.sloViolations,
		DegradedResponses:  st.degraded,
		SolvesShed:         st.solveShed,
		MaxServedStaleMS:   st.maxServedStaleMS,
	}
	lastSolve.mu.Lock()
	if lastSolve.ok {
		rep.Feasible = lastSolve.resp.Feasible
		rep.Objective = benchreport.Objective{
			MinReliability:  lastSolve.resp.MinReliability,
			TotalDiversity:  lastSolve.resp.TotalDiversity,
			AssignedWorkers: lastSolve.resp.AssignedWorkers,
			AssignedTasks:   lastSolve.resp.AssignedTasks,
		}
	}
	lastSolve.mu.Unlock()
	return rep, nil
}

func sortSchedule(sched []scheduled) {
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].offset < sched[j].offset })
}

func sleepUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doSolve posts one solve request and decodes the server's response (the
// wire types are serve's own, so a schema change breaks this at compile
// time, not silently at decode time).
func doSolve(ctx context.Context, cfg ReplayConfig, tr *Trace) (serve.SolveResponse, float64, int, error) {
	body, _ := json.Marshal(serve.SolveRequest{Solver: cfg.Solver, Seed: cfg.Seed, TimeoutMS: cfg.SolveTimeoutMS})
	start := time.Now()
	resp, err := post(ctx, cfg, "/v1/solve", body)
	latMS := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return serve.SolveResponse{}, latMS, 0, err
	}
	defer resp.Body.Close()
	var res serve.SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return serve.SolveResponse{}, latMS, resp.StatusCode, err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return res, latMS, resp.StatusCode, nil
}

// doMutationWithRetry sends one mutation, retrying up to cfg.Retry429
// times on 429 with jittered doubling backoff. The returned latency is the
// final attempt's (the per-request cost dashboards track), the status is
// the final outcome, and retries counts the extra attempts made.
func doMutationWithRetry(ctx context.Context, cfg ReplayConfig, ev Event) (float64, int, int, error) {
	latMS, status, err := doMutation(ctx, cfg, ev)
	retries := 0
	backoff := cfg.RetryBackoff
	for err == nil && status == http.StatusTooManyRequests && retries < cfg.Retry429 {
		// Full-ish jitter: uniform over [backoff/2, backoff) keeps retries
		// from re-converging on the queue in lockstep.
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if sleepUntil(ctx, time.Now().Add(wait)) != nil {
			break
		}
		retries++
		latMS, status, err = doMutation(ctx, cfg, ev)
		backoff *= 2
	}
	return latMS, status, retries, err
}

func doMutation(ctx context.Context, cfg ReplayConfig, ev Event) (float64, int, error) {
	var (
		method = http.MethodPost
		path   string
		body   []byte
	)
	switch ev.Kind {
	case TaskArrive:
		path = "/v1/tasks"
		body, _ = json.Marshal(serve.NewTaskJSON(ev.Task))
	case TaskExpire:
		method, path = http.MethodDelete, fmt.Sprintf("/v1/tasks/%d", ev.TaskID)
	case WorkerArrive:
		path = "/v1/workers"
		body, _ = json.Marshal(serve.NewWorkerJSON(ev.Worker))
	case WorkerLeave:
		method, path = http.MethodDelete, fmt.Sprintf("/v1/workers/%d", ev.WorkerID)
	default:
		return 0, 0, fmt.Errorf("workload: unknown event kind %d", ev.Kind)
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, method, cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	latMS := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return latMS, 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return latMS, resp.StatusCode, nil
}

func post(ctx context.Context, cfg ReplayConfig, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return cfg.Client.Do(req)
}
