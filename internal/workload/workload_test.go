package workload

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"rdbsc/internal/core"
	"rdbsc/internal/decompose"
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

func params() Params { return Params{M: 80, N: 160, Seed: 1, Horizon: 4} }

// TestRegistry pins the scenario vocabulary: the BENCH_*.json pipeline and
// the CI perf gate are keyed on these names.
func TestRegistry(t *testing.T) {
	want := []string{"uniform", "dense", "islands", "zipf", "rush-hour", "hotspot", "churn", "clique"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Instance == nil || s.Trace == nil {
			t.Fatalf("scenario %q must provide both Instance and Trace", name)
		}
	}
	if _, err := ByName("no-such"); err == nil {
		t.Fatal("ByName(no-such) should fail")
	}
}

// TestSeedDeterminism is the reproducibility contract: the same seed yields
// a byte-identical trace encoding and a deeply equal instance; a different
// seed yields different bytes.
func TestSeedDeterminism(t *testing.T) {
	for _, s := range Registry() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			p := params()
			a, b := s.Trace(p).Encode(), s.Trace(p).Encode()
			if !bytes.Equal(a, b) {
				t.Errorf("same seed produced different trace bytes")
			}
			other := p
			other.Seed = 999
			if bytes.Equal(a, s.Trace(other).Encode()) {
				t.Errorf("different seeds produced identical traces")
			}
			in1, in2 := s.Instance(p), s.Instance(p)
			if !reflect.DeepEqual(in1, in2) {
				t.Errorf("same seed produced different instances")
			}
		})
	}
}

// TestTraceWellFormed checks structural trace invariants: sorted events,
// horizon respected, departures only for entities that arrived, and a
// decodable canonical encoding.
func TestTraceWellFormed(t *testing.T) {
	for _, s := range Registry() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			tr := s.Trace(params())
			if len(tr.Events) == 0 {
				t.Fatal("empty trace")
			}
			if tr.Scenario != s.Name {
				t.Errorf("trace scenario %q, want %q", tr.Scenario, s.Name)
			}
			tasks := map[model.TaskID]bool{}
			workers := map[model.WorkerID]bool{}
			last := 0.0
			for i, e := range tr.Events {
				if e.At < last {
					t.Fatalf("event %d out of order: %v after %v", i, e.At, last)
				}
				last = e.At
				if e.At < 0 || e.At > tr.Horizon {
					t.Fatalf("event %d at %v outside [0, %v]", i, e.At, tr.Horizon)
				}
				switch e.Kind {
				case TaskArrive:
					tasks[e.Task.ID] = true
				case TaskExpire:
					if !tasks[e.TaskID] {
						t.Fatalf("task %d expires before arriving", e.TaskID)
					}
				case WorkerArrive:
					workers[e.Worker.ID] = true
				case WorkerLeave:
					if !workers[e.WorkerID] {
						t.Fatalf("worker %d leaves before arriving", e.WorkerID)
					}
				}
			}
			dec, err := Decode(tr.Encode())
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(dec, tr) {
				t.Error("Encode/Decode round trip lost information")
			}
		})
	}
}

// TestInstancesSolvable checks every scenario's one-shot instance is
// well-formed, has valid pairs, and admits a feasible greedy assignment —
// a scenario that cannot be solved cannot be benchmarked.
func TestInstancesSolvable(t *testing.T) {
	for _, s := range Registry() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			in := s.Instance(params())
			if err := in.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			p := core.NewProblem(in)
			if len(p.Pairs) == 0 {
				t.Fatal("no valid pairs")
			}
			res, err := core.NewGreedy().Solve(context.Background(), p, nil)
			if err != nil {
				t.Fatalf("greedy: %v", err)
			}
			if res.Assignment.Len() == 0 {
				t.Fatal("greedy assigned nothing: scenario is infeasible")
			}
			if err := in.CheckAssignment(res.Assignment); err != nil {
				t.Fatalf("invalid assignment: %v", err)
			}
		})
	}
}

// TestIslandsDisconnected verifies the multi-city scenario really is
// disconnected per internal/decompose: at least islandCount components and
// no component spanning two islands' ID ranges.
func TestIslandsDisconnected(t *testing.T) {
	p := params()
	in := islandsInstance(p)
	part := decompose.Build(in.ValidPairs())
	if part.Len() < islandCount {
		t.Fatalf("islands decomposed into %d components, want >= %d", part.Len(), islandCount)
	}
	perM := p.M / islandCount
	for _, c := range part.Components {
		island := int(c.Tasks[0]) / perM
		for _, id := range c.Tasks {
			if int(id)/perM != island {
				t.Fatalf("component %v spans islands %d and %d", c.Key, island, int(id)/perM)
			}
		}
	}
}

// TestCliqueIsOneGiantComponent verifies the adversarial scenario's shape:
// a single component covering nearly all of m×n.
func TestCliqueIsOneGiantComponent(t *testing.T) {
	in := cliqueInstance(params())
	pairs := in.ValidPairs()
	if got, want := len(pairs), int(0.8*80*160); got < want {
		t.Fatalf("clique has %d valid pairs, want >= %d (near-clique)", got, want)
	}
	if n := decompose.Build(pairs).Len(); n != 1 {
		t.Fatalf("clique decomposed into %d components, want 1", n)
	}
}

// TestZipfConcentration verifies popularity skew: the busiest 0.1×0.1 cell
// holds far more than the uniform share of tasks.
func TestZipfConcentration(t *testing.T) {
	in := zipfInstance(params())
	bins := map[[2]int]int{}
	for _, task := range in.Tasks {
		bins[[2]int{int(task.Loc.X * 10), int(task.Loc.Y * 10)}]++
	}
	best := 0
	for _, c := range bins {
		if c > best {
			best = c
		}
	}
	if frac := float64(best) / float64(len(in.Tasks)); frac < 0.10 {
		t.Fatalf("busiest cell holds %.0f%% of tasks; want >= 10%% (Zipf skew)", 100*frac)
	}
}

// TestRushHourBursty verifies temporal concentration around the two bursts.
func TestRushHourBursty(t *testing.T) {
	p := params()
	in := rushHourInstance(p)
	inBurst := 0
	for _, task := range in.Tasks {
		d1 := math.Abs(task.Start - rushBurst1Frac*p.Horizon)
		d2 := math.Abs(task.Start - rushBurst2Frac*p.Horizon)
		if math.Min(d1, d2) < 0.15*p.Horizon {
			inBurst++
		}
	}
	if frac := float64(inBurst) / float64(len(in.Tasks)); frac < 0.75 {
		t.Fatalf("only %.0f%% of task starts near a burst; want >= 75%%", 100*frac)
	}
}

// TestHotspotDrifts verifies the hotspot actually moves: late demand sits
// far from early demand.
func TestHotspotDrifts(t *testing.T) {
	p := params()
	in := hotspotInstance(p)
	var earlyX, lateX float64
	var earlyN, lateN int
	for _, task := range in.Tasks {
		switch {
		case task.Start < p.Horizon/4:
			earlyX += task.Loc.X
			earlyN++
		case task.Start > 3*p.Horizon/4:
			lateX += task.Loc.X
			lateN++
		}
	}
	if earlyN == 0 || lateN == 0 {
		t.Fatal("no early or late tasks")
	}
	if drift := lateX/float64(lateN) - earlyX/float64(earlyN); drift < 0.3 {
		t.Fatalf("hotspot drifted only %.2f in X; want >= 0.3", drift)
	}
}

// TestChurnSteadyState verifies the churn scenario's rates produce a
// mid-horizon alive population near the target scale, and that the trace
// is dominated by worker churn.
func TestChurnSteadyState(t *testing.T) {
	p := params()
	in := churnInstance(p)
	if got := len(in.Tasks); got < p.M/2 || got > 2*p.M {
		t.Fatalf("alive tasks %d far from target %d", got, p.M)
	}
	if got := len(in.Workers); got < p.N/2 || got > 2*p.N {
		t.Fatalf("alive workers %d far from target %d", got, p.N)
	}
	_, _, wa, wl := churnTrace(p).Counts()
	if wa < 2*p.N {
		t.Fatalf("worker arrivals %d; want heavy churn (>= %d)", wa, 2*p.N)
	}
	if wl == 0 {
		t.Fatal("no worker departures in a churn trace")
	}
}

// TestTraceFromInstanceDropsLateWorkers is the regression test for a
// confirmed bug: a worker checking in after the trace horizon used to keep
// its WorkerLeave event (scheduled exactly at the horizon) while its
// arrival was dropped, producing a departure for an entity that never
// arrived.
func TestTraceFromInstanceDropsLateWorkers(t *testing.T) {
	in := denseInstance(params())
	in.Tasks = in.Tasks[:4]
	late := in.Workers[0]
	late.ID = 9999
	late.Depart = 1e6 // far beyond any task expiry
	in.Workers = append(in.Workers, late)
	tr := TraceFromInstance(in, "dense", 1, 0)
	_, _, wa, wl := tr.Counts()
	if wa != wl {
		t.Fatalf("worker arrivals %d != departures %d", wa, wl)
	}
	for _, e := range tr.Events {
		if e.Kind == WorkerLeave && e.WorkerID == late.ID {
			t.Fatal("late worker has a departure without an arrival")
		}
	}
}

// TestTraceHorizonCap: Params.Horizon bounds instance-first traces (the
// loadgen's -horizon contract); a cap above the instance extent is a no-op.
func TestTraceHorizonCap(t *testing.T) {
	sc, _ := ByName("uniform")
	p := params()
	p.Horizon = 2
	tr := sc.Trace(p)
	if tr.Horizon > 2 {
		t.Fatalf("horizon %v, want <= 2", tr.Horizon)
	}
	for _, e := range tr.Events {
		if e.At > 2 {
			t.Fatalf("event at %v beyond the capped horizon", e.At)
		}
	}
	p.Horizon = 1e6
	if got := sc.Trace(p).Horizon; got > 30 {
		t.Fatalf("uncapped horizon %v should be the instance extent (~24h)", got)
	}
}

// TestEventMutationBatch applies a trace through Event.Mutation and
// Engine.ApplyBatch in chunks — the batch-plane equivalent of Apply — and
// checks unknown kinds panic instead of becoming a removal.
func TestEventMutationBatch(t *testing.T) {
	sc, _ := ByName("dense")
	trace := sc.Trace(params())
	eng := engine.New(engine.Config{Beta: trace.Beta, Opt: trace.Opt})
	for i := 0; i < len(trace.Events); i += 16 {
		end := min(i+16, len(trace.Events))
		batch := make([]engine.Mutation, 0, 16)
		for _, e := range trace.Events[i:end] {
			batch = append(batch, e.Mutation())
		}
		eng.ApplyBatch(batch)
	}
	if gotT, gotW := eng.Len(); gotT != 0 || gotW != 0 {
		t.Fatalf("batch replay left %d tasks, %d workers", gotT, gotW)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Mutation() on an unknown kind should panic")
		}
	}()
	_ = Event{Kind: EventKind(99)}.Mutation()
}

// TestApplyTrace replays a full trace into an engine event by event: after
// every arrival and departure has applied, the engine must be empty again
// (instance-derived traces expire every task and retire every worker by
// the horizon), and mid-replay the engine must hold exactly the alive set.
func TestApplyTrace(t *testing.T) {
	tr, _ := ByName("dense")
	trace := tr.Trace(params())
	eng := engine.New(engine.Config{Beta: trace.Beta, Opt: trace.Opt})
	aliveTasks, aliveWorkers := 0, 0
	for i, e := range trace.Events {
		if !Apply(eng, e) {
			t.Fatalf("event %d (%v at %v) did not change the engine", i, e.Kind, e.At)
		}
		switch e.Kind {
		case TaskArrive:
			aliveTasks++
		case TaskExpire:
			aliveTasks--
		case WorkerArrive:
			aliveWorkers++
		case WorkerLeave:
			aliveWorkers--
		}
		gotT, gotW := eng.Len()
		if gotT != aliveTasks || gotW != aliveWorkers {
			t.Fatalf("after event %d: engine %d/%d, trace alive %d/%d", i, gotT, gotW, aliveTasks, aliveWorkers)
		}
	}
	if aliveTasks != 0 || aliveWorkers != 0 {
		t.Fatalf("trace left %d tasks, %d workers alive at horizon", aliveTasks, aliveWorkers)
	}
}
