package workload

import (
	"math"

	"rdbsc/internal/gen"
	"rdbsc/internal/geo"
	"rdbsc/internal/model"
	"rdbsc/internal/rng"
)

// Fixed scenario-internal knobs. They are part of each scenario's identity:
// changing one changes every trace byte and every BENCH_<name>.json, so they
// are named constants rather than Params fields.
const (
	// islandCount is the number of disconnected regions in the islands
	// scenario (a 2×2 city grid).
	islandCount = 4

	// zipfHotspots and zipfSkew shape task popularity: rank k attracts
	// tasks with probability ∝ (1+k)^(-zipfSkew).
	zipfHotspots = 8
	zipfSkew     = 1.4
	zipfSigma    = 0.04 // spatial spread around a hotspot

	// rushBurstFrac places each of the two rush-hour bursts as a fraction
	// of the horizon; rushBurstWeight is the probability mass per burst
	// (the remainder arrives uniformly).
	rushBurst1Frac  = 0.25
	rushBurst2Frac  = 0.70
	rushBurstWeight = 0.45

	// hotspotSigmaTask/Worker spread entities around the moving center.
	hotspotSigmaTask   = 0.05
	hotspotSigmaWorker = 0.10

	// churnTaskLifetime/churnWorkerLifetime are the mean lifetimes (hours)
	// of the heavy-churn scenario; arrival rates are derived so the
	// steady-state alive population matches Params.M and Params.N.
	churnTaskLifetime   = 0.5
	churnWorkerLifetime = 0.4

	// cliqueSigma/cliqueSpread shape the adversarial near-clique: tasks in
	// a tight cluster, workers in a box around it, all mutually reachable.
	cliqueSigma  = 0.02
	cliqueSpread = 0.2

	confSigma = 0.02 // Table 2's worker-confidence σ
)

// scenarios is the registry, in presentation order.
var scenarios = []Scenario{
	{
		Name:        "uniform",
		Description: "Table 2 UNIFORM over a 24h horizon, waiting allowed",
		Instance:    uniformInstance,
		Trace:       instanceTrace("uniform", uniformInstance),
	},
	{
		Name:        "dense",
		Description: "well-connected bench workload: windows clustered near time zero",
		Instance:    denseInstance,
		Trace:       instanceTrace("dense", denseInstance),
	},
	{
		Name:        "islands",
		Description: "multi-city: 4 disconnected regions (exact decomposition's best case)",
		Instance:    islandsInstance,
		Trace:       instanceTrace("islands", islandsInstance),
	},
	{
		Name:        "zipf",
		Description: "Zipf-skewed task popularity: 8 hotspots, rank k drawing ∝ (1+k)^-1.4",
		Instance:    zipfInstance,
		Trace:       instanceTrace("zipf", zipfInstance),
	},
	{
		Name:        "rush-hour",
		Description: "two arrival bursts (morning/evening) over the horizon",
		Instance:    rushHourInstance,
		Trace:       rushHourTrace,
	},
	{
		Name:        "hotspot",
		Description: "moving spatial hotspot: demand drifts corner to corner over the horizon",
		Instance:    hotspotInstance,
		Trace:       hotspotTrace,
	},
	{
		Name:        "churn",
		Description: "heavy worker churn: short sessions, arrival rates sized for a full steady-state",
		Instance:    churnInstance,
		Trace:       churnTrace,
	},
	{
		Name:        "clique",
		Description: "adversarial worst case: one giant near-clique component (~all m·n pairs valid)",
		Instance:    cliqueInstance,
		Trace:       instanceTrace("clique", cliqueInstance),
	},
}

// instanceTrace adapts an instance-first scenario: the trace replays the
// instance's own timestamps.
func instanceTrace(name string, mk func(Params) *model.Instance) func(Params) *Trace {
	return func(p Params) *Trace {
		p = p.withDefaults()
		return TraceFromInstance(mk(p), name, p.Seed, p.Horizon)
	}
}

func uniformInstance(p Params) *model.Instance {
	p = p.withDefaults()
	in := gen.Generate(gen.Default().WithScale(p.M, p.N).WithSeed(p.Seed))
	// At bench scale the strict 24h UNIFORM setting is extremely sparse;
	// allowing workers to wait for a window to open keeps the scenario
	// solvable without touching its spatial/temporal shape.
	in.Opt.WaitAllowed = true
	return in
}

func denseInstance(p Params) *model.Instance {
	p = p.withDefaults()
	return gen.GenerateDense(gen.Default().WithScale(p.M, p.N).WithSeed(p.Seed))
}

func islandsInstance(p Params) *model.Instance {
	p = p.withDefaults()
	perM := max(2, p.M/islandCount)
	perN := max(2, p.N/islandCount)
	return gen.GenerateIslands(gen.Default().WithScale(perM, perN).WithSeed(p.Seed), islandCount)
}

// tableWorker draws a worker with the Table 2 default attribute ranges at
// the given location and check-in time.
func tableWorker(src *rng.Source, id model.WorkerID, loc geo.Point, depart float64, angleMax float64) model.Worker {
	width := src.Uniform(0, angleMax)
	if width <= 0 {
		width = angleMax / 2
	}
	cfg := gen.Default()
	return model.Worker{
		ID:         id,
		Loc:        loc,
		Speed:      src.Uniform(cfg.VMin, cfg.VMax),
		Dir:        geo.AngIntervalAround(src.Angle(), width),
		Confidence: src.TruncNormal((cfg.PMin+cfg.PMax)/2, confSigma, cfg.PMin, cfg.PMax),
		Depart:     depart,
	}
}

func zipfInstance(p Params) *model.Instance {
	p = p.withDefaults()
	src := rng.New(p.Seed)
	cfg := gen.Default()
	in := &model.Instance{
		Beta: src.Uniform(cfg.BetaMin, cfg.BetaMax),
		Opt:  model.Options{WaitAllowed: true},
	}
	inner := geo.Rect{Min: geo.Pt(0.1, 0.1), Max: geo.Pt(0.9, 0.9)}
	centers := make([]geo.Point, zipfHotspots)
	for k := range centers {
		centers[k] = src.UniformPoint(inner)
	}
	rank := src.Zipf(zipfSkew, zipfHotspots-1)
	for i := 0; i < p.M; i++ {
		c := centers[rank()]
		st := src.Uniform(0, 0.5)
		rt := src.Uniform(cfg.RtMin, cfg.RtMax)
		in.Tasks = append(in.Tasks, model.Task{
			ID:    model.TaskID(i),
			Loc:   src.GaussianPointIn(c, zipfSigma, geo.UnitSquare),
			Start: st,
			End:   st + rt,
		})
	}
	for j := 0; j < p.N; j++ {
		// Supply only half-follows demand: half the workers cluster at a
		// Zipf-ranked hotspot, half roam uniformly — the mismatch is what
		// makes popularity skew interesting for assignment quality.
		loc := src.UniformPoint(geo.UnitSquare)
		if src.Bernoulli(0.5) {
			loc = src.GaussianPointIn(centers[rank()], 2*zipfSigma, geo.UnitSquare)
		}
		in.Workers = append(in.Workers, tableWorker(src, model.WorkerID(j), loc, 0, math.Pi))
	}
	return in
}

// rushTime draws one arrival in the two-burst rush-hour mixture over
// [0, horizon).
func rushTime(src *rng.Source, horizon float64) float64 {
	u := src.Float64()
	var at float64
	switch {
	case u < rushBurstWeight:
		at = src.Normal(rushBurst1Frac*horizon, horizon/20)
	case u < 2*rushBurstWeight:
		at = src.Normal(rushBurst2Frac*horizon, horizon/20)
	default:
		at = src.Uniform(0, horizon)
	}
	return math.Min(math.Max(at, 0), horizon*0.999)
}

// rushHourDraw generates the rush-hour population once; the instance and
// the trace are two views of the same draw.
func rushHourDraw(p Params) (in *model.Instance, workerLeave []float64) {
	src := rng.New(p.Seed)
	cfg := gen.Default()
	in = &model.Instance{
		Beta: src.Uniform(cfg.BetaMin, cfg.BetaMax),
		Opt:  model.Options{WaitAllowed: true},
	}
	for i := 0; i < p.M; i++ {
		st := rushTime(src, p.Horizon)
		rt := src.Uniform(0.3, 0.6)
		in.Tasks = append(in.Tasks, model.Task{
			ID:    model.TaskID(i),
			Loc:   src.UniformPoint(geo.UnitSquare),
			Start: st,
			End:   st + rt,
		})
	}
	workerLeave = make([]float64, p.N)
	for j := 0; j < p.N; j++ {
		// Workers check in slightly ahead of the demand bursts and stay for
		// a one-to-two-hour session.
		at := math.Max(0, rushTime(src, p.Horizon)-0.05*p.Horizon)
		in.Workers = append(in.Workers, tableWorker(src, model.WorkerID(j), src.UniformPoint(geo.UnitSquare), at, math.Pi))
		workerLeave[j] = at + src.Uniform(1, 2)
	}
	return in, workerLeave
}

func rushHourInstance(p Params) *model.Instance {
	p = p.withDefaults()
	in, _ := rushHourDraw(p)
	return in
}

func rushHourTrace(p Params) *Trace {
	p = p.withDefaults()
	in, leaves := rushHourDraw(p)
	b := &traceBuilder{t: Trace{
		Scenario: "rush-hour",
		Seed:     p.Seed,
		Beta:     in.Beta,
		Opt:      in.Opt,
		Horizon:  p.Horizon,
	}}
	for _, t := range in.Tasks {
		b.addTask(t.Start, t)
	}
	for j, w := range in.Workers {
		b.addWorker(w.Depart, leaves[j], w)
	}
	return b.finish()
}

// hotspotCenter is the moving demand center: it drifts diagonally across
// the data space over the horizon.
func hotspotCenter(frac float64) geo.Point {
	return geo.Pt(0.15+0.7*frac, 0.2+0.6*frac)
}

func hotspotDraw(p Params) (in *model.Instance, workerLeave []float64) {
	src := rng.New(p.Seed)
	cfg := gen.Default()
	in = &model.Instance{
		Beta: src.Uniform(cfg.BetaMin, cfg.BetaMax),
		Opt:  model.Options{WaitAllowed: true},
	}
	for i := 0; i < p.M; i++ {
		st := src.Uniform(0, p.Horizon)
		c := hotspotCenter(st / p.Horizon)
		rt := src.Uniform(0.4, 0.8)
		in.Tasks = append(in.Tasks, model.Task{
			ID:    model.TaskID(i),
			Loc:   src.GaussianPointIn(c, hotspotSigmaTask, geo.UnitSquare),
			Start: st,
			End:   st + rt,
		})
	}
	workerLeave = make([]float64, p.N)
	for j := 0; j < p.N; j++ {
		at := src.Uniform(0, p.Horizon)
		c := hotspotCenter(at / p.Horizon)
		w := tableWorker(src, model.WorkerID(j), src.GaussianPointIn(c, hotspotSigmaWorker, geo.UnitSquare), at, geo.TwoPi)
		in.Workers = append(in.Workers, w)
		workerLeave[j] = at + src.Uniform(0.5, 1.5)
	}
	return in, workerLeave
}

func hotspotInstance(p Params) *model.Instance {
	p = p.withDefaults()
	in, _ := hotspotDraw(p)
	return in
}

func hotspotTrace(p Params) *Trace {
	p = p.withDefaults()
	in, leaves := hotspotDraw(p)
	b := &traceBuilder{t: Trace{
		Scenario: "hotspot",
		Seed:     p.Seed,
		Beta:     in.Beta,
		Opt:      in.Opt,
		Horizon:  p.Horizon,
	}}
	for _, t := range in.Tasks {
		b.addTask(t.Start, t)
	}
	for j, w := range in.Workers {
		b.addWorker(w.Depart, leaves[j], w)
	}
	return b.finish()
}

// churnDraw generates the heavy-churn event stream: Poisson arrivals with
// rates sized so the steady-state alive population is about Params.M tasks
// and Params.N workers, with deliberately short worker sessions.
func churnDraw(p Params) *Trace {
	src := rng.New(p.Seed)
	cfg := gen.Default()
	b := &traceBuilder{t: Trace{
		Scenario: "churn",
		Seed:     p.Seed,
		Beta:     src.Uniform(cfg.BetaMin, cfg.BetaMax),
		Opt:      model.Options{WaitAllowed: true},
		Horizon:  p.Horizon,
	}}
	taskRate := float64(p.M) / churnTaskLifetime
	workerRate := float64(p.N) / churnWorkerLifetime
	var nextTask model.TaskID
	for at := src.Exp(taskRate); at < p.Horizon; at += src.Exp(taskRate) {
		life := src.Exp(1 / churnTaskLifetime)
		b.addTask(at, model.Task{
			ID:    nextTask,
			Loc:   src.UniformPoint(geo.UnitSquare),
			Start: at,
			End:   at + life,
		})
		nextTask++
	}
	var nextWorker model.WorkerID
	for at := src.Exp(workerRate); at < p.Horizon; at += src.Exp(workerRate) {
		w := tableWorker(src, nextWorker, src.UniformPoint(geo.UnitSquare), at, math.Pi)
		// Short sessions are the scenario's point: the index and the
		// decompose builder churn constantly.
		b.addWorker(at, at+src.Exp(1/churnWorkerLifetime), w)
		nextWorker++
	}
	return b.finish()
}

func churnTrace(p Params) *Trace {
	return churnDraw(p.withDefaults())
}

// churnInstance is the alive population halfway through the churn trace — a
// photo of the platform mid-churn, sized near the steady state.
func churnInstance(p Params) *model.Instance {
	p = p.withDefaults()
	tr := churnDraw(p)
	mid := p.Horizon / 2
	alive := &model.Instance{Beta: tr.Beta, Opt: tr.Opt}
	leaveAt := make(map[model.WorkerID]float64)
	expireAt := make(map[model.TaskID]float64)
	for _, e := range tr.Events {
		switch e.Kind {
		case TaskExpire:
			expireAt[e.TaskID] = e.At
		case WorkerLeave:
			leaveAt[e.WorkerID] = e.At
		}
	}
	for _, e := range tr.Events {
		switch e.Kind {
		case TaskArrive:
			if end, ok := expireAt[e.Task.ID]; e.At <= mid && (!ok || end > mid) {
				alive.Tasks = append(alive.Tasks, e.Task)
			}
		case WorkerArrive:
			if end, ok := leaveAt[e.Worker.ID]; e.At <= mid && (!ok || end > mid) {
				alive.Workers = append(alive.Workers, e.Worker)
			}
		}
	}
	return alive
}

func cliqueInstance(p Params) *model.Instance {
	p = p.withDefaults()
	src := rng.New(p.Seed)
	cfg := gen.Default()
	in := &model.Instance{
		Beta: src.Uniform(cfg.BetaMin, cfg.BetaMax),
		Opt:  model.Options{WaitAllowed: true},
	}
	center := geo.Pt(0.5, 0.5)
	box := geo.Rect{
		Min: geo.Pt(center.X-cliqueSpread, center.Y-cliqueSpread),
		Max: geo.Pt(center.X+cliqueSpread, center.Y+cliqueSpread),
	}
	for i := 0; i < p.M; i++ {
		in.Tasks = append(in.Tasks, model.Task{
			ID:    model.TaskID(i),
			Loc:   src.GaussianPointIn(center, cliqueSigma, geo.UnitSquare),
			Start: 0,
			End:   src.Uniform(2, 3),
		})
	}
	for j := 0; j < p.N; j++ {
		// Fast, omnidirectional workers right next to the task cluster:
		// every worker reaches every task well before any deadline, so the
		// reachability graph is one near-complete bipartite component — the
		// worst case for candidate-set maintenance and for decomposition
		// (nothing to shard).
		w := model.Worker{
			ID:         model.WorkerID(j),
			Loc:        src.UniformPoint(box),
			Speed:      src.Uniform(1, 2),
			Dir:        geo.FullCircle,
			Confidence: src.TruncNormal(0.95, confSigma, 0.9, 1),
			Depart:     src.Uniform(0, 0.2),
		}
		in.Workers = append(in.Workers, w)
	}
	return in
}
