package workload

import (
	"encoding/json"
	"fmt"
	"sort"

	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// TaskArrive inserts Event.Task at Event.At.
	TaskArrive EventKind = iota + 1
	// TaskExpire removes the task Event.TaskID.
	TaskExpire
	// WorkerArrive inserts Event.Worker.
	WorkerArrive
	// WorkerLeave removes the worker Event.WorkerID.
	WorkerLeave
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case TaskArrive:
		return "task-arrive"
	case TaskExpire:
		return "task-expire"
	case WorkerArrive:
		return "worker-arrive"
	case WorkerLeave:
		return "worker-leave"
	default:
		return "unknown"
	}
}

// Event is one timed churn step. Exactly one payload field is meaningful,
// selected by Kind.
type Event struct {
	// At is the event time in simulated hours from the trace start.
	At   float64   `json:"at"`
	Kind EventKind `json:"kind"`

	Task     model.Task     `json:"task"`
	Worker   model.Worker   `json:"worker"`
	TaskID   model.TaskID   `json:"task_id"`
	WorkerID model.WorkerID `json:"worker_id"`
}

// Trace is a named, seed-deterministic churn workload: an event sequence
// sorted by time (ties broken by generation order), plus the instance-level
// context (β, reachability options) every consumer needs. Traces are
// self-contained — arrivals carry full entities and departures are explicit
// events, so replaying one requires no generator state.
type Trace struct {
	// Scenario and Seed identify how the trace was generated.
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Beta and Opt configure the objective and reachability semantics of
	// every solve run over the churning population.
	Beta float64       `json:"beta"`
	Opt  model.Options `json:"opt"`
	// Horizon is the trace span in hours; events beyond it are not emitted.
	Horizon float64 `json:"horizon"`
	// Events is sorted ascending by At.
	Events []Event `json:"events"`
}

// Encode renders the trace as canonical JSON. Struct field order is fixed
// and float formatting is deterministic, so two traces are byte-identical
// exactly when they are semantically identical — the seed-determinism
// contract tests (and golden files) compare these bytes.
func (t *Trace) Encode() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		// All fields are plain data; marshal cannot fail.
		panic(err)
	}
	return b
}

// Decode parses a trace previously rendered with Encode.
func Decode(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// Apply replays one event into an engine, reporting whether the engine
// changed. internal/stream uses the same semantics for its Config.Trace
// replay; this entry point serves direct engine-plane consumers and tests.
func Apply(eng *engine.Engine, ev Event) bool {
	switch ev.Kind {
	case TaskArrive:
		return eng.UpsertTask(ev.Task)
	case TaskExpire:
		return eng.RemoveTask(ev.TaskID)
	case WorkerArrive:
		return eng.UpsertWorker(ev.Worker)
	case WorkerLeave:
		return eng.RemoveWorker(ev.WorkerID)
	default:
		return false
	}
}

// Mutation converts the event to the engine's batch-mutation form, for
// consumers that apply trace spans through Engine.ApplyBatch. It panics on
// an unknown kind (a corrupted or future trace encoding) rather than
// guessing a mutation.
func (e Event) Mutation() engine.Mutation {
	switch e.Kind {
	case TaskArrive:
		return engine.TaskUpsert(e.Task)
	case TaskExpire:
		return engine.TaskRemoval(e.TaskID)
	case WorkerArrive:
		return engine.WorkerUpsert(e.Worker)
	case WorkerLeave:
		return engine.WorkerRemoval(e.WorkerID)
	default:
		panic(fmt.Sprintf("workload: unknown event kind %d", e.Kind))
	}
}

// traceBuilder accumulates events and finalizes them into time order.
type traceBuilder struct {
	t Trace
}

func (b *traceBuilder) add(ev Event) {
	if ev.At <= b.t.Horizon {
		b.t.Events = append(b.t.Events, ev)
	}
}

func (b *traceBuilder) addTask(at float64, t model.Task) {
	b.add(Event{At: at, Kind: TaskArrive, Task: t})
	b.add(Event{At: t.End, Kind: TaskExpire, TaskID: t.ID})
}

func (b *traceBuilder) addWorker(at, leave float64, w model.Worker) {
	b.add(Event{At: at, Kind: WorkerArrive, Worker: w})
	b.add(Event{At: leave, Kind: WorkerLeave, WorkerID: w.ID})
}

// finish sorts events by time, preserving generation order on ties, and
// returns the trace.
func (b *traceBuilder) finish() *Trace {
	sort.SliceStable(b.t.Events, func(i, j int) bool {
		return b.t.Events[i].At < b.t.Events[j].At
	})
	return &b.t
}

// TraceFromInstance derives a churn trace from a one-shot instance's own
// timestamps: every task arrives at max(Start, 0) and expires at End, every
// worker arrives at its check-in time Depart and leaves at the horizon. The
// horizon is the latest task expiry (so nothing is cut off), capped at
// maxHorizon when positive — instance-first scenarios pass Params.Horizon
// through, so a loadgen replay's span stays bounded even for instances
// spanning a full day. Entities whose arrival misses the horizon are
// omitted entirely (arrival and departure both), keeping the trace
// well-formed: no departure ever references an entity that never arrived.
func TraceFromInstance(in *model.Instance, scenario string, seed int64, maxHorizon float64) *Trace {
	horizon := 0.0
	for _, t := range in.Tasks {
		if t.End > horizon {
			horizon = t.End
		}
	}
	if maxHorizon > 0 && maxHorizon < horizon {
		horizon = maxHorizon
	}
	b := &traceBuilder{t: Trace{
		Scenario: scenario,
		Seed:     seed,
		Beta:     in.Beta,
		Opt:      in.Opt,
		Horizon:  horizon,
	}}
	for _, t := range in.Tasks {
		at := t.Start
		if at < 0 {
			at = 0
		}
		if at > horizon {
			continue
		}
		b.addTask(at, t)
	}
	for _, w := range in.Workers {
		at := w.Depart
		if at < 0 {
			at = 0
		}
		if at > horizon {
			continue
		}
		b.addWorker(at, horizon, w)
	}
	return b.finish()
}

// Counts tallies the trace's event kinds.
func (t *Trace) Counts() (taskArrive, taskExpire, workerArrive, workerLeave int) {
	for _, e := range t.Events {
		switch e.Kind {
		case TaskArrive:
			taskArrive++
		case TaskExpire:
			taskExpire++
		case WorkerArrive:
			workerArrive++
		case WorkerLeave:
			workerLeave++
		}
	}
	return
}
