package scratchfix

import (
	"sort"

	"rdbsc/internal/scratch"
)

// SumWithScratch is the canonical balanced pattern: acquire, defer the
// releases, use.
func SumWithScratch(n int) float64 {
	bufs := scratch.Get()
	defer scratch.Put(bufs)
	xs := bufs.F64(n)
	defer bufs.PutF64(xs)
	s := 0.0
	for i := range xs {
		xs[i] = float64(i)
		s += xs[i]
	}
	return s
}

// TopIdxBuf returns a pooled index slice; the *Buf suffix transfers
// ownership — the caller releases with bufs.PutInt.
func TopIdxBuf(bufs *scratch.Buffers, n int) []int {
	idx := bufs.IntZero(n)
	sort.Ints(idx)
	return idx
}

// UseTopIdx takes ownership from TopIdxBuf and releases it.
func UseTopIdx(bufs *scratch.Buffers, n int) int {
	idx := TopIdxBuf(bufs, n)
	total := 0
	for _, i := range idx {
		total += i
	}
	bufs.PutInt(idx)
	return total
}

// histogram owns a pooled field; release returns it to the pool.
type histogram struct {
	counts []int
}

func (h histogram) release(bufs *scratch.Buffers) { bufs.PutInt(h.counts) }

func newHistogramBuf(bufs *scratch.Buffers, n int) histogram {
	return histogram{counts: bufs.IntZero(n)}
}

// UseHistogram balances a release-method acquisition.
func UseHistogram(bufs *scratch.Buffers, n int) int {
	h := newHistogramBuf(bufs, n)
	total := 0
	for _, c := range h.counts {
		total += c
	}
	h.release(bufs)
	return total
}

// BalancedBranches releases on every path, including the early return.
func BalancedBranches(bufs *scratch.Buffers, n int) int {
	marks := bufs.BoolZero(n)
	if n == 0 {
		bufs.PutBool(marks)
		return 0
	}
	count := 0
	for i := range marks {
		if !marks[i] {
			count++
		}
	}
	bufs.PutBool(marks)
	return count
}
