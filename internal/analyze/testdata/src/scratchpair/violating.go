// Package scratchfix (fixture): seeded scratch.Buffers ownership
// violations.
package scratchfix

import "rdbsc/internal/scratch"

// LeakOnEarlyReturn releases on the fall-through path only.
func LeakOnEarlyReturn(bufs *scratch.Buffers, n int) float64 {
	xs := bufs.F64(n) // want `pooled f64 "xs" is not released on every path`
	if n == 0 {
		return 0
	}
	s := 0.0
	for i := range xs {
		s += xs[i]
	}
	bufs.PutF64(xs)
	return s
}

// BranchLeak releases in one branch of an if, not the other.
func BranchLeak(bufs *scratch.Buffers, n int, flag bool) {
	xs := bufs.F64(n) // want `pooled f64 "xs" is not released on every path`
	if flag {
		bufs.PutF64(xs)
	}
}

// EscapeReturn hands pooled memory to the caller without the *Buf
// ownership-transfer naming convention.
func EscapeReturn(bufs *scratch.Buffers, n int) []int {
	idx := bufs.Int(n)
	return idx // want `escapes via return`
}

// GoroutineCapture shares pooled memory with another goroutine.
func GoroutineCapture(bufs *scratch.Buffers, n int) {
	xs := bufs.F64(n)
	go func() {
		_ = xs[0] // want `captured by a goroutine`
	}()
	bufs.PutF64(xs)
}

// Discard acquires into the void: the slice can never be released.
func Discard(bufs *scratch.Buffers, n int) {
	bufs.Int(n) // want `discarded result`
}
