package core

import (
	"sort"
	"time"
)

// CollectSorted is the canonical collect-then-sort idiom: the append
// happens in map order, but the sort re-establishes determinism.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MergeSorted collects into extra, merges it into a derived slice, and
// sorts the merge — order is laundered through append but still ends
// deterministic.
func MergeSorted(m map[string]int, base []string) []string {
	var extra []string
	for k := range m {
		extra = append(extra, k)
	}
	all := append(append(make([]string, 0, len(base)+len(extra)), base...), extra...)
	sort.Strings(all)
	return all
}

// CollectViaHelper sorts through a package-local helper.
func CollectViaHelper(m map[string]int) []string {
	ids := make([]string, 0, len(m))
	for k := range m {
		ids = append(ids, k)
	}
	sortIDs(ids)
	return ids
}

func sortIDs(ids []string) { sort.Strings(ids) }

// LocalCollect appends only to a loop-local slice whose order never
// leaves the iteration.
func LocalCollect(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// Timed is the one permitted wall-clock use: duration measurement.
func Timed() time.Duration {
	start := time.Now()
	busywork()
	return time.Since(start)
}

func busywork() {}
