// Package core (fixture): seeded determinism violations. The package is
// named core so the analyzer treats it as a deterministic solve-plane
// package.
package core

import (
	"fmt"
	"math/rand"
	"time"
)

// CollectUnsorted leaks map iteration order into its result.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

// PrintAll writes output in map iteration order.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside range over map`
	}
}

// SendAll exposes map iteration order to a channel receiver.
func SendAll(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `send on a channel inside range over map`
	}
}

// Jitter draws from the process-global random source.
func Jitter() float64 {
	return rand.Float64() // want `math/rand.Float64 uses the global random source`
}

// StampNow feeds a wall-clock value into data.
func StampNow() int64 {
	now := time.Now() // want `time.Now in a deterministic package`
	return now.UnixNano()
}
