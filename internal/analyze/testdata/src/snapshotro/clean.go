package snapfix

import (
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// ReadOnly reads through the snapshot — always fine.
func ReadOnly(snap *engine.Snapshot) int {
	p := snap.Problem
	return len(p.In.Tasks)
}

// CopyThenGrow copies the snapshot-owned slice before growing it.
func CopyThenGrow(snap *engine.Snapshot, t model.Task) []model.Task {
	src := snap.Problem.In.Tasks
	out := make([]model.Task, len(src), len(src)+1)
	copy(out, src)
	out = append(out, t)
	return out
}

// StoreHandle stores snapshot pointers into a local container: assigning
// a snapshot is not writing through one.
func StoreHandle(snaps []*engine.Snapshot, i int, snap *engine.Snapshot) {
	snaps[i] = snap
}

// SwapLocal rebinding a local snapshot variable is a read of the new
// value, not a write through the old.
func SwapLocal(a, b *engine.Snapshot) *engine.Snapshot {
	cur := a
	if b.Version > a.Version {
		cur = b
	}
	return cur
}
