// Package snapfix (fixture): seeded writes through engine.Snapshot from
// outside internal/engine.
package snapfix

import (
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// ClobberProblem replaces the shared problem under every concurrent
// solve's feet.
func ClobberProblem(snap *engine.Snapshot) {
	snap.Problem = nil // want `write through engine.Snapshot`
}

// BumpVersion mutates the snapshot's identity.
func BumpVersion(snap *engine.Snapshot) {
	snap.Version++ // want `increment through engine.Snapshot`
}

// AliasWrite launders the write through a local alias.
func AliasWrite(snap *engine.Snapshot) {
	p := snap.Problem
	p.In = nil // want `write through engine.Snapshot`
}

// GrowTasks appends into the snapshot-owned backing array.
func GrowTasks(snap *engine.Snapshot, t model.Task) {
	snap.Problem.In.Tasks = append(snap.Problem.In.Tasks, t) // want `write through engine.Snapshot` `append to a snapshot-owned slice`
}

// DeepWrite reaches several levels into snapshot-owned state.
func DeepWrite(snap *engine.Snapshot, beta float64) {
	snap.Problem.In.Beta = beta // want `write through engine.Snapshot`
}
