// Package serve (fixture): seeded context-threading violations. The
// package is named serve so its exported entry points fall under the
// ctxflow contract.
package serve

import "context"

// Runner is a long-running component whose entry points must be
// cancellable.
type Runner struct{}

// Run blocks until done but offers the caller no way to cancel it.
func (r *Runner) Run() error { // want `exported entry point serve.Run does not accept a context.Context`
	return nil
}

// Mutate applies a batch with no deadline propagation.
func Mutate(items []int) { // want `exported entry point serve.Mutate does not accept a context.Context`
	_ = context.TODO() // want `context.TODO in library code`
}

// fetch severs the caller's deadline by minting a root context.
func fetch() error {
	ctx := context.Background() // want `context.Background in library code`
	_ = ctx
	return nil
}
