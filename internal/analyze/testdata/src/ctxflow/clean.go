package serve

import (
	"context"
	"net"
	"net/http"
)

// Engine demonstrates the exempt idioms.
type Engine struct{}

// SolveContext is the context-threading entry point.
func (e *Engine) SolveContext(ctx context.Context) error {
	return ctx.Err()
}

// Solve is the convenience twin: it delegates to SolveContext, which is
// where cancellation is handled.
func (e *Engine) Solve() error { return e.SolveContext(context.Background()) }

// RunSeeded is a compat shim kept only for old callers.
//
// Deprecated: use SolveContext.
func (e *Engine) RunSeeded(seed int64) error {
	_ = seed
	return e.SolveContext(context.Background())
}

// Solver is an accessor, not a Solve entry point: the prefix match is
// word-boundary aware.
func (e *Engine) Solver() string { return "greedy" }

// Serve follows the net/http lifecycle idiom: cancellation arrives via
// Shutdown/Close, not a parameter.
func (e *Engine) Serve(ln net.Listener) error {
	_ = ln
	return nil
}

// ServeHTTP threads its context through the request (r.Context()).
func (e *Engine) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_ = r.Context()
	w.WriteHeader(http.StatusNoContent)
}

// MutateContext threads the caller's context.
func MutateContext(ctx context.Context, items []int) error {
	_ = items
	return ctx.Err()
}
