// Package cluster (fixture): the pre-fix PR-8 bug shape. This Cluster's
// Enqueue forwards upserts to its queue without ever assigning Epoch, so
// no stamping function exists in the package and every upsert
// construction is flagged — exactly what the real internal/cluster
// looked like before the crash-safety fix.
package cluster

import (
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// Cluster forwards mutations without stamping them.
type Cluster struct {
	queue []engine.Mutation
}

// Enqueue hands the mutation to a shard loop as-is: an upsert arriving
// here with Epoch zero loses recovery's higher-epoch-wins duplicate
// resolution after a crash mid cross-shard move.
func (c *Cluster) Enqueue(mut engine.Mutation) {
	c.queue = append(c.queue, mut)
}

func (c *Cluster) handleTask(t model.Task) {
	mut := engine.TaskUpsert(t) // want `upsert mutation constructed without a recency epoch`
	c.Enqueue(mut)
}

func (c *Cluster) handleWorker(w model.Worker) {
	c.Enqueue(engine.WorkerUpsert(w)) // want `upsert mutation constructed without a recency epoch`
}

func (c *Cluster) handleBatch(ts []model.Task) {
	muts := make([]engine.Mutation, 0, len(ts))
	for _, t := range ts {
		muts = append(muts, engine.TaskUpsert(t)) // want `upsert mutation constructed without a recency epoch`
	}
	for _, m := range muts {
		c.Enqueue(m)
	}
}

func (c *Cluster) handleLiteral(t model.Task) {
	mut := engine.Mutation{Op: engine.OpUpsertTask, Task: t} // want `upsert mutation constructed without a recency epoch`
	c.Enqueue(mut)
}

func (c *Cluster) handleZeroOp(t model.Task) {
	// Op's zero value is OpUpsertTask: omitting the field still builds an
	// (unstamped) upsert.
	mut := engine.Mutation{Task: t} // want `upsert mutation constructed without a recency epoch`
	c.Enqueue(mut)
}
