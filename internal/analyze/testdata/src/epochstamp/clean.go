package cluster

import (
	"rdbsc/internal/engine"
	"rdbsc/internal/model"
)

// StampedCluster is the post-fix shape: Enqueue is the stamping
// chokepoint, and forwarding helpers inherit stamping status
// transitively.
type StampedCluster struct {
	epoch uint64
	queue []engine.Mutation
}

// Enqueue assigns the cluster's recency epoch to every upsert before it
// reaches a shard loop.
func (c *StampedCluster) Enqueue(mut engine.Mutation) {
	switch mut.Op {
	case engine.OpUpsertTask, engine.OpUpsertWorker:
		mut.Epoch = c.epoch
	}
	c.queue = append(c.queue, mut)
}

// enqueueAll forwards to Enqueue, so it stamps too (fixpoint).
func (c *StampedCluster) enqueueAll(muts []engine.Mutation) {
	for _, m := range muts {
		c.Enqueue(m)
	}
}

func (c *StampedCluster) handleTask(t model.Task) {
	mut := engine.TaskUpsert(t)
	c.Enqueue(mut)
}

func (c *StampedCluster) handleWorker(w model.Worker) {
	c.Enqueue(engine.WorkerUpsert(w))
}

func (c *StampedCluster) handleBatch(ts []model.Task) {
	muts := make([]engine.Mutation, 0, len(ts))
	for _, t := range ts {
		muts = append(muts, engine.TaskUpsert(t))
	}
	c.enqueueAll(muts)
}

func (c *StampedCluster) handleExplicit(t model.Task) {
	mut := engine.TaskUpsert(t)
	mut.Epoch = c.epoch
	c.queue = append(c.queue, mut)
}

func (c *StampedCluster) handleLiteral(t model.Task) {
	c.queue = append(c.queue, engine.Mutation{Op: engine.OpUpsertTask, Task: t, Epoch: c.epoch})
}

func (c *StampedCluster) handleRemoval(id model.TaskID) {
	// Removals carry no epoch: recovery resolves them by absence, not
	// recency, so construction is unconstrained.
	c.queue = append(c.queue, engine.TaskRemoval(id))
}
