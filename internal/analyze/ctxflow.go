package analyze

import (
	"go/ast"
	"strings"
)

// ctxEntryPkgs are the packages whose exported entry points must accept
// a context.Context: the solve plane's public surface (core), the
// serving layer (serve), the multi-shard plane (cluster), and the
// engine facade. Matching is by package name so fixtures exercise the
// same path.
var ctxEntryPkgs = map[string]bool{
	"core":    true,
	"serve":   true,
	"cluster": true,
	"engine":  true,
}

// ctxEntryPrefixes match entry-point names: long-running, cancellable
// operations. Constructors, accessors and stats readers are not entry
// points and carry no context.
var ctxEntryPrefixes = []string{"Solve", "Serve", "Run", "Mutate"}

// CtxFlow enforces context threading on the serving path:
//
//   - exported entry points (Solve*/Serve*/Run*/Mutate* in core, serve,
//     cluster, engine) must accept a context.Context parameter, so
//     deadlines and shutdown propagate end-to-end;
//   - library code (non-main, non-test) must not manufacture
//     context.Background() or context.TODO(): a fresh root context
//     severs the caller's deadline and makes the call uncancellable.
//
// Two idioms are exempt, by refinement rather than suppression:
// functions documented "Deprecated:" (compat shims whose whole purpose
// is to supply the missing context), and X() convenience twins that
// delegate to XContext(...) — the stdlib's own Run/RunContext pattern.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "exported solver/serve/cluster entry points must accept and thread " +
		"context.Context; library code must not call context.Background()/TODO()",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, fd := range funcDecls(pass.NonTestFiles()) {
		checkEntryPoint(pass, fd)
		checkBackground(pass, fd)
	}
	return nil
}

// checkEntryPoint requires a context parameter on exported entry points.
func checkEntryPoint(pass *Pass, fd *ast.FuncDecl) {
	if !ctxEntryPkgs[pass.Pkg.Name()] || !fd.Name.IsExported() {
		return
	}
	entry := false
	for _, prefix := range ctxEntryPrefixes {
		// Word-boundary match: "SolveSeeded" is a Solve entry point,
		// "Solver" (the accessor) is not.
		if rest, ok := strings.CutPrefix(fd.Name.Name, prefix); ok &&
			(rest == "" || rest[0] < 'a' || rest[0] > 'z') {
			entry = true
			break
		}
	}
	if !entry || isDeprecated(fd.Doc) || delegatesToContextTwin(pass, fd) {
		return
	}
	if hasCtxParam(pass, fd) {
		return
	}
	// Serve(ln net.Listener) follows the net/http lifecycle idiom:
	// cancellation arrives via Shutdown(ctx)/Close, not a parameter.
	for _, field := range fd.Type.Params.List {
		if isNamed(pass.Info.Types[field.Type].Type, "net", "Listener") {
			return
		}
	}
	pass.Reportf(fd.Name.Pos(), "exported entry point %s.%s does not accept a context.Context: "+
		"deadlines and shutdown cannot propagate through it (add ctx as the first parameter)",
		pass.Pkg.Name(), fd.Name.Name)
}

func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if isNamed(t, "context", "Context") {
			return true
		}
		// An *http.Request carries its context (r.Context()), so handler
		// signatures like ServeHTTP(w, r) thread it implicitly.
		if isNamed(t, "net/http", "Request") {
			return true
		}
	}
	return false
}

// delegatesToContextTwin reports whether fd is the X() convenience
// wrapper of an XContext method: its body calls <name>Context.
func delegatesToContextTwin(pass *Pass, fd *ast.FuncDecl) bool {
	twin := fd.Name.Name + "Context"
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			found = fn.Name == twin
		case *ast.SelectorExpr:
			found = fn.Sel.Name == twin
		}
		return !found
	})
	return found
}

// checkBackground flags context.Background()/TODO() in library code.
func checkBackground(pass *Pass, fd *ast.FuncDecl) {
	if isDeprecated(fd.Doc) || delegatesToContextTwin(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name := calleePkgFunc(pass.Info, call)
		if path == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "context.%s in library code: accept a ctx from the caller instead — a fresh "+
				"root context severs deadlines and cancellation (only main packages may mint one)", name)
		}
		return true
	})
}
