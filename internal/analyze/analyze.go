// Package analyze is rdbsc-vet's analysis suite: five custom static
// analyzers that mechanically enforce the repository's correctness
// invariants — the properties every exactness guarantee (bit-identical
// sharded vs monolithic solves, solve-identical crash recovery,
// zero-staleness solve caching) quietly depends on:
//
//   - determinism: no map-iteration-order or wall-clock/global-rand
//     nondeterminism in the solve-plane packages.
//   - scratchpair: every scratch.Buffers acquisition is released on every
//     return path, and pooled slices never escape their owner.
//   - snapshotro: engine.Snapshot is immutable outside internal/engine.
//   - ctxflow: solver/serve/cluster entry points thread context.Context;
//     library code never manufactures context.Background().
//   - epochstamp: every cluster-constructed upsert mutation reaches a
//     shard with a recency epoch assigned (the PR-8 crash-safety bug
//     class, caught at build time forever after).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone, so the module stays dependency-free. cmd/rdbsc-vet drives the
// suite either standalone (rdbsc-vet ./...) or as a `go vet -vettool`
// compatible unit checker.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single package
// through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and enable flags.
	Name string
	// Doc is the one-paragraph description shown by `rdbsc-vet help`.
	Doc string
	// Run performs the check. A non-nil error aborts the whole run (it
	// means the analyzer itself failed, not that the code is in
	// violation — violations are Diagnostics).
	Run func(*Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the violation and, where possible, the fix.
	Message string
}

// Pass carries one package's syntax and type information through an
// Analyzer.Run invocation.
type Pass struct {
	// Analyzer is the currently running analyzer.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files holds the package's parsed sources. Test files
	// (*_test.go) may be present when driven by `go vet`; analyzers
	// skip them via NonTestFiles, since every invariant in this suite
	// is about library code.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the package's type information (fully populated).
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// NonTestFiles returns the pass's files excluding *_test.go sources.
func (p *Pass) NonTestFiles() []*ast.File {
	files := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		ScratchPair,
		SnapshotRO,
		CtxFlow,
		EpochStamp,
	}
}

// RunAnalyzers runs each analyzer over the package described by (fset,
// files, pkg, info) and returns the diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	less := func(a, b Diagnostic) bool {
		pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		if pa.Line != pb.Line {
			return pa.Line < pb.Line
		}
		if pa.Column != pb.Column {
			return pa.Column < pb.Column
		}
		return a.Analyzer < b.Analyzer
	}
	// Insertion sort: diagnostic counts are tiny (zero, on a clean tree).
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && less(diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}
