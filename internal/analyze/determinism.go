package analyze

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs names the solve-plane packages whose outputs must be
// bit-reproducible for a given input and seed: every exactness guarantee
// in the repo (sharded == monolithic, recovery == uninterrupted run,
// cache key == result identity) is a statement about these packages.
// Matching is by package name so the analysistest fixtures — which live
// under synthetic import paths — exercise the same code path.
var deterministicPkgs = map[string]bool{
	"core":      true,
	"objective": true,
	"decompose": true,
	"engine":    true,
	"diversity": true,
	"grid":      true,
}

// Determinism flags the nondeterminism sources that have historically
// produced order-dependent output in the solve plane:
//
//   - ranging over a map while appending to an outer slice (unless the
//     slice is sorted afterwards in the same function — the canonical
//     collect-then-sort idiom), writing output, or sending on a channel:
//     map iteration order is randomized per run, and floating-point
//     summation plus solver tie-breaking are both order-sensitive.
//   - time.Now, except the start/time.Since pattern used purely for
//     duration measurement: wall-clock values must never feed data.
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...): all
//     solver randomness must come from an explicitly seeded source so
//     runs replay.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag map-iteration-order, wall-clock, and global-rand nondeterminism " +
		"in the deterministic solve-plane packages (core, objective, decompose, " +
		"engine, diversity, grid)",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.NonTestFiles() {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
			checkClockAndRand(pass, fd.Body)
		}
	}
	return nil
}

// checkMapRanges inspects every `range` over a map inside body (body is
// a whole function body, so "sorted later in the same function" can be
// resolved lexically).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.Info.Types[rng.X].Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(stmt.Pos(), "send on a channel inside range over map: receiver observes randomized iteration order")
		case *ast.CallExpr:
			checkMapRangeCall(pass, fnBody, rng, stmt)
		}
		return true
	})
}

func checkMapRangeCall(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, call *ast.CallExpr) {
	// Ordered output: fmt printing or io writing inside the loop body.
	if path, name := calleePkgFunc(pass.Info, call); path == "fmt" &&
		(hasPrefix(name, "Print") || hasPrefix(name, "Fprint")) {
		pass.Reportf(call.Pos(), "%s.%s inside range over map: output follows randomized iteration order", "fmt", name)
		return
	}
	if _, _, method, ok := methodOn(pass.Info, call); ok &&
		(method == "Write" || method == "WriteString" || method == "WriteByte" || method == "WriteRune") {
		pass.Reportf(call.Pos(), "%s inside range over map: output follows randomized iteration order", method)
		return
	}
	// Appends to a slice declared outside the loop, in iteration order.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return
	} else if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	target := objectOf(pass.Info, rootExpr(call.Args[0]))
	if target == nil {
		return
	}
	if target.Pos() > rng.Pos() && target.Pos() < rng.End() {
		return // loop-local slice: its order never leaves the iteration
	}
	if sortedAfter(pass, fnBody, rng, target) {
		return // collect-then-sort: order is re-established
	}
	pass.Reportf(call.Pos(), "append to %s inside range over map without a subsequent sort: "+
		"element order follows randomized map iteration (collect then sort, or iterate sorted keys)", target.Name())
}

// sortedAfter reports whether the collected slice is re-ordered
// deterministically after the range statement: passed — directly, or via
// an append-derived slice (merged := append(other, v...)) — to a sort.*
// or slices.* call, or to a package-local helper that sorts the
// corresponding parameter. This is the canonical way map-iteration order
// is laundered back to determinism.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	// carriers tracks every variable holding the collected order: v
	// itself plus slices derived from it by append.
	carriers := map[*types.Var]bool{v: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fnBody, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || assign.Pos() < rng.End() {
				return true
			}
			for i, rhs := range assign.Rhs {
				if i >= len(assign.Lhs) || !appendsCarrier(pass, rhs, carriers) {
					continue
				}
				if lv := objectOf(pass.Info, assign.Lhs[i]); lv != nil && !carriers[lv] {
					carriers[lv] = true
					changed = true
				}
			}
			return true
		})
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		argIdx := -1
		for i, arg := range call.Args {
			if o := objectOf(pass.Info, rootExpr(arg)); o != nil && carriers[o] {
				argIdx = i
			}
		}
		if argIdx == -1 {
			return true
		}
		path, name := calleePkgFunc(pass.Info, call)
		if path == "sort" || path == "slices" {
			found = true
		} else if path == pass.Pkg.Path() && helperSortsParam(pass, name, argIdx) {
			found = true
		}
		return !found
	})
	return found
}

// appendsCarrier reports whether e contains an append call taking a
// carrier variable as an argument (including variadic c... spreads).
func appendsCarrier(pass *Pass, e ast.Expr, carriers map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
		if !isIdent || id.Name != "append" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		for _, arg := range call.Args {
			if o := objectOf(pass.Info, rootExpr(arg)); o != nil && carriers[o] {
				found = true
			}
		}
		return !found
	})
	return found
}

// helperSortsParam reports whether the same-package function name sorts
// its argIdx-th parameter with sort.*/slices.* — the sortWIDs(ids)
// pattern, where the sort lives behind a tiny local helper.
func helperSortsParam(pass *Pass, name string, argIdx int) bool {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name.Name != name || fd.Body == nil {
				continue
			}
			// Resolve the argIdx-th parameter's variable.
			var param *types.Var
			i := 0
			for _, field := range fd.Type.Params.List {
				for _, pname := range field.Names {
					if i == argIdx {
						param, _ = pass.Info.Defs[pname].(*types.Var)
					}
					i++
				}
			}
			if param == nil {
				return false
			}
			sorts := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || sorts {
					return !sorts
				}
				if path, _ := calleePkgFunc(pass.Info, call); path != "sort" && path != "slices" {
					return true
				}
				for _, arg := range call.Args {
					if objectOf(pass.Info, rootExpr(arg)) == param {
						sorts = true
					}
				}
				return !sorts
			})
			return sorts
		}
	}
	return false
}

// checkClockAndRand flags time.Now outside the duration-measurement
// idiom and any use of math/rand's global source.
func checkClockAndRand(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name := calleePkgFunc(pass.Info, call)
		switch {
		case path == "time" && name == "Now":
			if !onlyFeedsSince(pass, body, call) {
				pass.Reportf(call.Pos(), "time.Now in a deterministic package: wall-clock values must not feed solver data "+
					"(only the start := time.Now(); ...; time.Since(start) measurement idiom is allowed)")
			}
		case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name]:
			pass.Reportf(call.Pos(), "%s.%s uses the global random source: solver randomness must come from an "+
				"explicitly seeded source (internal/rng) so runs replay", path, name)
		}
		return true
	})
}

// globalRandFuncs are the math/rand package-level functions backed by
// the process-global, non-replayable source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true, "IntN": true,
	"Int64": true, "Int64N": true, "Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// onlyFeedsSince reports whether the time.Now() call is the canonical
// duration-measurement idiom: its result is bound to a variable whose
// every use is as the argument of time.Since, or it is itself the
// direct argument of time.Sub/Since-style elapsed computation.
func onlyFeedsSince(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr) bool {
	// Find the assignment binding the call's result.
	var bound *types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || bound != nil {
			return bound == nil
		}
		for i, rhs := range assign.Rhs {
			if ast.Unparen(rhs) == call && i < len(assign.Lhs) {
				bound = objectOf(pass.Info, assign.Lhs[i])
			}
		}
		return bound == nil
	})
	if bound == nil {
		return false
	}
	// Every other use of the variable must be time.Since(v) or a
	// subtraction method receiver/operand (t2.Sub(v)).
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || pass.Info.Uses[id] != bound {
			return true
		}
		if !insideSinceOrSub(pass, body, id) {
			ok = false
		}
		return ok
	})
	return ok
}

// insideSinceOrSub reports whether the identifier use sits inside a
// time.Since(...) or (time.Time).Sub(...) call.
func insideSinceOrSub(pass *Pass, body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if call.Pos() > id.Pos() || call.End() < id.End() {
			return true
		}
		if path, name := calleePkgFunc(pass.Info, call); path == "time" && name == "Since" {
			if containsNode(call, id) {
				found = true
			}
		}
		if _, recvName, method, ok := methodOn(pass.Info, call); ok && method == "Sub" && recvName == "Time" {
			if containsNode(call, id) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsNode(outer ast.Node, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
