package analyze

import (
	"go/ast"
	"go/types"
)

const enginePath = "rdbsc/internal/engine"

// SnapshotRO enforces engine.Snapshot immutability outside
// internal/engine. A Snapshot is the copy-on-write hand-off that lets
// any number of concurrent solves share one engine state: the contract
// (documented on the type) is that the problem, the instance inside it,
// and every slice they own are never mutated after the snapshot is
// taken. A single write through a snapshot — or an append into a
// snapshot-owned slice, which writes into the shared backing array
// whenever spare capacity exists — silently corrupts every other solve
// holding the same version.
//
// The analyzer flags, in every package except internal/engine itself:
//
//   - assignments (including op-assign and ++/--) through an lvalue
//     rooted at an engine.Snapshot value, e.g. snap.Problem = p or
//     snap.Problem.In.Tasks[i].Loc = l;
//   - append whose first argument is a snapshot-rooted slice;
//   - the same through one level of local aliasing
//     (p := snap.Problem; p.In = ... is still a snapshot write).
var SnapshotRO = &Analyzer{
	Name: "snapshotro",
	Doc: "flag writes through an engine.Snapshot (directly or via a local " +
		"alias) outside internal/engine: snapshots are shared copy-on-write " +
		"state and must stay immutable",
	Run: runSnapshotRO,
}

func runSnapshotRO(pass *Pass) error {
	if pass.Pkg.Path() == enginePath || pass.Pkg.Name() == "engine" {
		return nil
	}
	for _, fd := range funcDecls(pass.NonTestFiles()) {
		checkSnapshotFunc(pass, fd.Body)
	}
	return nil
}

func checkSnapshotFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: collect local aliases of snapshot-owned reference values
	// (p := snap.Problem). One level is enough for the repo's idioms;
	// deeper laundering is caught by review, not this analyzer.
	tainted := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if i >= len(assign.Lhs) {
				break
			}
			if !snapshotRooted(pass, rhs, nil) {
				continue
			}
			if !referenceType(pass.Info.Types[rhs].Type) {
				continue // value copies (struct, number) detach from the snapshot
			}
			if v := objectOf(pass.Info, assign.Lhs[i]); v != nil {
				tainted[v] = true
			}
		}
		return true
	})

	// Pass 2: flag writes and appends through snapshot-rooted lvalues.
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				root := rootExpr(lhs)
				// v := snap.Problem itself is a read, not a write: only
				// flag when the *written-through* expression is deeper
				// than the root identifier.
				if ast.Unparen(lhs) == root {
					continue
				}
				if snapshotRooted(pass, lhs, tainted) {
					pass.Reportf(stmt.Lhs[i].Pos(), "write through engine.Snapshot outside internal/engine: snapshots are "+
						"immutable shared state; mutate via the engine's apply loop instead")
				}
			}
		case *ast.IncDecStmt:
			if snapshotRooted(pass, stmt.X, tainted) {
				pass.Reportf(stmt.Pos(), "increment through engine.Snapshot outside internal/engine: snapshots are "+
					"immutable shared state")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(stmt.Args) > 0 {
					if snapshotRooted(pass, stmt.Args[0], tainted) {
						pass.Reportf(stmt.Pos(), "append to a snapshot-owned slice: append writes into the shared backing "+
							"array when capacity remains; copy the slice before growing it")
					}
				}
			}
		}
		return true
	})
}

// snapshotRooted reports whether e is a reference chain reaching INTO an
// engine.Snapshot value (snap.Problem.In...) or into a tainted local
// alias of snapshot-owned state. The Snapshot-typed expression must be a
// proper prefix of the chain: `snaps[i] = s` stores a snapshot pointer
// into a local container (fine), `snaps[i].Problem = p` writes through
// one (flagged).
func snapshotRooted(pass *Pass, e ast.Expr, tainted map[*types.Var]bool) bool {
	stepped := false
	for {
		e = ast.Unparen(e)
		if stepped && isNamed(pass.Info.Types[e].Type, enginePath, "Snapshot") {
			// The chain passes through a Snapshot-typed expression; the
			// full expression reaches into snapshot-owned state.
			return true
		}
		stepped = true
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			if tainted == nil {
				return false
			}
			v, _ := pass.Info.Uses[x].(*types.Var)
			return v != nil && tainted[v]
		default:
			return false
		}
	}
}

// referenceType reports whether t shares memory when copied.
func referenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}
