package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Loader type-checks module packages against the build cache's export
// data: `go list -export` surfaces each dependency's compiled type
// information, which the stdlib gc importer reads directly. This is the
// same modular strategy `go vet` uses, without a go/packages dependency.
type Loader struct {
	// Dir is the directory go list runs in (any directory inside the
	// target module). Empty means the current directory.
	Dir string

	fset     *token.FileSet
	exports  map[string]string // import path -> export data file
	importer types.ImporterFrom
}

// Load lists patterns (e.g. "./..."), then parses and type-checks every
// matched package that belongs to the surrounding module. Dependencies
// are imported from export data, not re-analyzed.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Standard,Dir,GoFiles,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	l.fset = token.NewFileSet()
	l.exports = make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	l.importer = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := l.check(t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files as
// import path as, resolving its imports through a previous Load's
// export data. The fixture tests use it to check testdata packages that
// import real repo packages.
func (l *Loader) LoadDir(dir, as string) (*Package, error) {
	if l.importer == nil {
		return nil, fmt.Errorf("analyze: LoadDir before Load")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyze: no Go files in %s", dir)
	}
	return l.check(as, dir, files)
}

// check parses files and type-checks them as one package.
func (l *Loader) check(path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.importer}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
