package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const scratchPath = "rdbsc/internal/scratch"

// ScratchPair enforces the scratch.Buffers ownership contract that keeps
// the allocation-free solve plane leak-free:
//
//   - every pooled acquisition — a Buffers getter (F64/Int/I32/Bool and
//     their Cap/Zero variants), scratch.Get(), or a call to a *Buf
//     function that returns pooled memory — must be released (matching
//     Put*, scratch.Put, or the value's release method) on every return
//     path of the acquiring function;
//   - pooled memory must not escape its owner: not returned (except from
//     a *Buf-suffixed function, whose name is the repo's ownership-
//     transfer convention), not stored through a non-local lvalue, and
//     not handed to a goroutine.
//
// The analysis is per-function and path-merging: a release inside one
// branch of an if/switch does not count for the other branches.
var ScratchPair = &Analyzer{
	Name: "scratchpair",
	Doc: "require a matching Put for every scratch.Buffers acquisition on all " +
		"return paths, and flag pooled slices that escape their owning function",
	Run: runScratchPair,
}

// getterKinds maps Buffers getter methods to pool kinds.
var getterKinds = map[string]string{
	"F64": "f64", "F64Cap": "f64",
	"Int": "int", "IntZero": "int", "IntCap": "int",
	"I32": "i32", "I32Cap": "i32",
	"Bool": "bool", "BoolZero": "bool",
}

// putKinds maps Buffers Put methods to the pool kinds they release.
var putKinds = map[string]string{
	"PutF64": "f64", "PutInt": "int", "PutI32": "i32", "PutBool": "bool",
}

// putNameFor maps pool kinds back to the release call a diagnostic
// should suggest.
var putNameFor = map[string]string{
	"f64": "PutF64", "int": "PutInt", "i32": "PutI32", "bool": "PutBool",
	"buffers": "scratch.Put", "release": "its release method",
}

// spToken is one live pooled acquisition: the variable (and, for
// composite-literal field acquisitions like fenwick{tree: bufs.IntZero(n)},
// the field) that owns the memory.
type spToken struct {
	id    token.Pos // acquisition position; doubles as identity
	root  *types.Var
	field string
	kind  string
	what  string // human description for diagnostics
}

// spState is the per-path analysis state.
type spState struct {
	pass     *Pass
	fname    string
	reported map[string]bool
	aliases  map[*types.Var]*types.Var
}

type spLive map[token.Pos]spToken

func runScratchPair(pass *Pass) error {
	for _, fd := range funcDecls(pass.NonTestFiles()) {
		checkScratchFunc(pass, funcDeclName(fd), fd.Body)
		// Function literals own their acquisitions separately: a worker
		// goroutine that does bufs := scratch.Get() ... scratch.Put(bufs)
		// is balanced within the literal, not the enclosing function.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkScratchFunc(pass, funcDeclName(fd)+" (func literal)", lit.Body)
			}
			return true
		})
	}
	return nil
}

func funcDeclName(fd *ast.FuncDecl) string { return fd.Name.Name }

func checkScratchFunc(pass *Pass, fname string, body *ast.BlockStmt) {
	st := &spState{
		pass:     pass,
		fname:    fname,
		reported: make(map[string]bool),
		aliases:  make(map[*types.Var]*types.Var),
	}
	live := st.simBlock(body.List, make(spLive))
	// Falling off the end of the function is an implicit return.
	for _, tok := range live {
		st.reportLeak(tok, "function end")
	}
}

// simBlock simulates stmts in order over a copy-on-branch live set and
// returns the live set at the block's end (empty if control cannot fall
// through).
func (st *spState) simBlock(stmts []ast.Stmt, live spLive) spLive {
	for _, s := range stmts {
		live = st.simStmt(s, live)
	}
	return live
}

func (st *spState) simStmt(s ast.Stmt, live spLive) spLive {
	switch stmt := s.(type) {
	case *ast.AssignStmt:
		st.simAssign(stmt, live)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					st.simBind(identExprs(vs.Names), vs.Values, live)
				}
			}
		}
	case *ast.ExprStmt:
		st.simReleases(stmt.X, live)
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
			if isPanicCall(st.pass.Info, call) {
				return make(spLive) // terminates the path
			}
			// A discarded acquisition can never be released.
			for _, acq := range st.findAcquisitions(stmt.X) {
				tok := spToken{id: acq.pos, kind: acq.kind, what: acq.what}
				st.reportLeak(tok, "discarded result")
			}
		}
	case *ast.DeferStmt:
		// A deferred release covers every return path from here on.
		st.simReleases(stmt.Call, live)
		if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
			st.simReleases(lit.Body, live)
		}
	case *ast.GoStmt:
		st.checkGoroutineCapture(stmt, live)
	case *ast.ReturnStmt:
		st.simReturn(stmt, live)
		return make(spLive)
	case *ast.BlockStmt:
		return st.simBlock(stmt.List, live)
	case *ast.LabeledStmt:
		return st.simStmt(stmt.Stmt, live)
	case *ast.IfStmt:
		if stmt.Init != nil {
			live = st.simStmt(stmt.Init, live)
		}
		thenOut := st.simBlock(stmt.Body.List, copyLive(live))
		var elseOut spLive
		if stmt.Else != nil {
			elseOut = st.simStmt(stmt.Else, copyLive(live))
		} else {
			elseOut = live
		}
		return unionLive(thenOut, elseOut)
	case *ast.ForStmt:
		if stmt.Init != nil {
			live = st.simStmt(stmt.Init, live)
		}
		bodyOut := st.simBlock(stmt.Body.List, copyLive(live))
		return unionLive(live, bodyOut)
	case *ast.RangeStmt:
		bodyOut := st.simBlock(stmt.Body.List, copyLive(live))
		return unionLive(live, bodyOut)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return st.simSwitch(stmt, live)
	case *ast.SelectStmt:
		var out spLive
		for _, c := range stmt.Body.List {
			clause := c.(*ast.CommClause)
			out = unionLive(out, st.simBlock(clause.Body, copyLive(live)))
		}
		if out == nil {
			return live
		}
		return out
	}
	return live
}

func (st *spState) simSwitch(s ast.Stmt, live spLive) spLive {
	var body *ast.BlockStmt
	var init ast.Stmt
	hasDefault := false
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		body, init = sw.Body, sw.Init
	case *ast.TypeSwitchStmt:
		body, init = sw.Body, sw.Init
	}
	if init != nil {
		live = st.simStmt(init, live)
	}
	var out spLive
	for _, c := range body.List {
		clause := c.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		out = unionLive(out, st.simBlock(clause.Body, copyLive(live)))
	}
	if !hasDefault {
		out = unionLive(out, live)
	}
	if out == nil {
		return live
	}
	return out
}

// simAssign handles acquisitions, aliases, releases, and store-escapes.
func (st *spState) simAssign(assign *ast.AssignStmt, live spLive) {
	// Releases can appear in assignment RHS (rare but legal).
	for _, rhs := range assign.Rhs {
		st.simReleases(rhs, live)
	}
	// Store-escape: a live pooled value assigned through a non-local
	// lvalue (struct field of escaping value, map/slice element, deref).
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) {
			break
		}
		if v := objectOf(st.pass.Info, rhs); v != nil {
			if tok, ok := st.findByRoot(live, v, ""); ok {
				if _, isIdent := ast.Unparen(assign.Lhs[i]).(*ast.Ident); !isIdent {
					st.report(assign.Pos(), "pooled %s %s is stored through %s: pooled memory must not outlive its owning function (release with %s instead)",
						tok.kind, tok.what, exprString(assign.Lhs[i]), putNameFor[tok.kind])
				}
			}
		}
	}
	st.simBind(assign.Lhs, assign.Rhs, live)
}

// identExprs converts a ValueSpec's name list to expressions.
func identExprs(names []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// acquisition is one pooled-memory-producing call found inside an
// expression, with the composite-literal field it initializes (if any).
type acquisition struct {
	pos   token.Pos
	kind  string
	field string
	what  string
}

// simBind records acquisitions and aliases for lhs = rhs bindings.
func (st *spState) simBind(lhs, rhs []ast.Expr, live spLive) {
	// Multi-value call: x, y := fBuf(...)
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			st.bindMultiResult(lhs, call, live)
			return
		}
	}
	for i, r := range rhs {
		if i >= len(lhs) {
			break
		}
		st.bindOne(lhs[i], r, live)
	}
}

// bindMultiResult tracks pooled results of a multi-return *Buf call.
func (st *spState) bindMultiResult(lhs []ast.Expr, call *ast.CallExpr, live spLive) {
	kinds := st.bufCallResultKinds(call)
	for i, kind := range kinds {
		if kind == "" || i >= len(lhs) {
			continue
		}
		if v := objectOf(st.pass.Info, lhs[i]); v != nil {
			st.addToken(live, spToken{id: call.Pos(), root: v, field: "", kind: kind,
				what: fmt.Sprintf("%q (from %s)", exprString(lhs[i]), exprString(call.Fun))})
		}
	}
	// Acquisitions nested in the call's arguments still leak if unbound.
	for _, arg := range call.Args {
		for _, acq := range st.findAcquisitions(arg) {
			st.reportLeak(spToken{id: acq.pos, kind: acq.kind, what: acq.what}, "unbound argument")
		}
	}
}

// bindOne tracks acquisitions inside a single rhs bound to a single lhs.
func (st *spState) bindOne(lhs, rhs ast.Expr, live spLive) {
	acqs := st.findAcquisitions(rhs)
	if len(acqs) == 0 {
		st.bindAlias(lhs, rhs, live)
		return
	}
	v := objectOf(st.pass.Info, lhs)
	if v == nil {
		// Acquisition stored directly through a non-local lvalue.
		for _, acq := range acqs {
			st.report(acq.pos, "pooled %s acquisition is stored through %s: pooled memory must stay owned by the acquiring function",
				acq.kind, exprString(lhs))
		}
		return
	}
	for _, acq := range acqs {
		// Re-binding a variable that already owns live pooled memory of
		// the same kind replaces the old token (treated as an update,
		// not a leak, to stay conservative about loops).
		if old, ok := st.findByRootKindField(live, v, acq.field, acq.kind); ok {
			delete(live, old.id)
		}
		what := fmt.Sprintf("%q", exprString(lhs))
		if acq.field != "" {
			what = fmt.Sprintf("%q.%s", exprString(lhs), acq.field)
		}
		st.addToken(live, spToken{id: acq.pos, root: v, field: acq.field, kind: acq.kind, what: what})
	}
}

// bindAlias records w := v / w := v[a:b] slice aliasing so that a later
// Put through either name releases the same token.
func (st *spState) bindAlias(lhs, rhs ast.Expr, live spLive) {
	v := objectOf(st.pass.Info, lhs)
	if v == nil {
		return
	}
	var src ast.Expr
	switch r := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		src = r
	case *ast.SliceExpr:
		src = r.X
	default:
		return
	}
	if sv := objectOf(st.pass.Info, src); sv != nil {
		if root, ok := st.aliases[sv]; ok {
			st.aliases[v] = root
		} else if _, isLive := st.findByRoot(live, sv, ""); isLive {
			st.aliases[v] = sv
		}
	}
}

// findAcquisitions locates pooled-memory-producing calls inside e,
// tagged with the composite-literal field they initialize, if any.
func (st *spState) findAcquisitions(e ast.Expr) []acquisition {
	var out []acquisition
	var walk func(e ast.Expr, field string)
	walk = func(e ast.Expr, field string) {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if kind, what, ok := st.acquisitionKind(x); ok {
				out = append(out, acquisition{pos: x.Pos(), kind: kind, field: field, what: what})
				// Arguments of an acquiring call (append chains) keep
				// the same binding target.
			}
			for _, arg := range x.Args {
				walk(arg, field)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					name := ""
					if id, ok := kv.Key.(*ast.Ident); ok {
						name = id.Name
					}
					walk(kv.Value, name)
				} else {
					walk(el, field)
				}
			}
		case *ast.UnaryExpr:
			walk(x.X, field)
		case *ast.BinaryExpr:
			walk(x.X, field)
			walk(x.Y, field)
		}
	}
	walk(e, "")
	return out
}

// acquisitionKind classifies a call as a pooled acquisition.
func (st *spState) acquisitionKind(call *ast.CallExpr) (kind, what string, ok bool) {
	// Buffers getter: bufs.F64(n) etc.
	if recvPath, recvName, method, isMethod := methodOn(st.pass.Info, call); isMethod {
		if recvPath == scratchPath && recvName == "Buffers" {
			if k, isGetter := getterKinds[method]; isGetter {
				return k, "scratch." + method + " result", true
			}
		}
	}
	// Package-level scratch.Get().
	if path, name := calleePkgFunc(st.pass.Info, call); path == scratchPath && name == "Get" {
		return "buffers", "scratch.Get result", true
	}
	// *Buf convention: a Buf-suffixed call with a non-nil *scratch.Buffers
	// argument transfers ownership of its pooled results to the caller.
	kinds := st.bufCallResultKinds(call)
	for _, k := range kinds {
		if k != "" {
			return k, exprString(call.Fun) + " result", true
		}
	}
	return "", "", false
}

// bufCallResultKinds returns, per result of a *Buf call, the pooled kind
// the caller becomes responsible for ("" for untracked results). A nil
// Buffers argument disables pooling, so such calls transfer nothing.
func (st *spState) bufCallResultKinds(call *ast.CallExpr) []string {
	fn := funcOf(st.pass.Info, call)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Buf") {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	// Locate a *scratch.Buffers parameter and require the call site to
	// pass something other than untyped nil.
	bufArg := -1
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isNamed(params.At(i).Type(), scratchPath, "Buffers") {
			bufArg = i
			break
		}
	}
	if bufArg == -1 || bufArg >= len(call.Args) {
		return nil
	}
	if id, isIdent := ast.Unparen(call.Args[bufArg]).(*ast.Ident); isIdent && id.Name == "nil" {
		return nil
	}
	results := sig.Results()
	kinds := make([]string, results.Len())
	tracked := false
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if k := pooledSliceKind(t); k != "" {
			kinds[i] = k
			tracked = true
		} else if hasReleaseMethod(t, st.pass.Pkg) {
			kinds[i] = "release"
			tracked = true
		}
	}
	if !tracked {
		return nil
	}
	return kinds
}

// pooledSliceKind maps a type to the scratch pool backing it.
func pooledSliceKind(t types.Type) string {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return ""
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Float64:
		return "f64"
	case types.Int:
		return "int"
	case types.Int32:
		return "i32"
	case types.Bool:
		return "bool"
	}
	return ""
}

// hasReleaseMethod reports whether t (or *t) has a release/Release
// method visible from pkg that takes a *scratch.Buffers.
func hasReleaseMethod(t types.Type, pkg *types.Package) bool {
	for _, name := range [...]string{"release", "Release"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
		if fn, ok := obj.(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 1 && isNamed(sig.Params().At(0).Type(), scratchPath, "Buffers") {
				return true
			}
		}
	}
	return false
}

// simReleases clears tokens released anywhere inside node: Put* method
// calls, scratch.Put, and release-method calls.
func (st *spState) simReleases(node ast.Node, live spLive) {
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recvPath, recvName, method, isMethod := methodOn(st.pass.Info, call); isMethod {
			if recvPath == scratchPath && recvName == "Buffers" {
				if kind, isPut := putKinds[method]; isPut && len(call.Args) == 1 {
					st.clearByExpr(live, call.Args[0], kind)
					return true
				}
			}
			if method == "release" || method == "Release" {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if v := st.resolveRoot(objectOf(st.pass.Info, rootExpr(sel.X))); v != nil {
						st.clearRoot(live, v)
					}
				}
				return true
			}
		}
		if path, name := calleePkgFunc(st.pass.Info, call); path == scratchPath && name == "Put" && len(call.Args) == 1 {
			st.clearByExpr(live, call.Args[0], "buffers")
		}
		return true
	})
}

// clearByExpr releases the token named by an argument expression: a
// plain identifier (ident aliasing resolved) or a field selector like
// ft.tree / run.bufs.
func (st *spState) clearByExpr(live spLive, arg ast.Expr, kind string) {
	switch a := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if v := st.resolveRoot(objectOf(st.pass.Info, a)); v != nil {
			if tok, ok := st.findByRootKindField(live, v, "", kind); ok {
				delete(live, tok.id)
			} else if tok, ok := st.findByRoot(live, v, ""); ok && tok.kind == kind {
				delete(live, tok.id)
			}
		}
	case *ast.SelectorExpr:
		if v := st.resolveRoot(objectOf(st.pass.Info, rootExpr(a))); v != nil {
			if tok, ok := st.findByRootKindField(live, v, a.Sel.Name, kind); ok {
				delete(live, tok.id)
			}
		}
	case *ast.SliceExpr:
		st.clearByExpr(live, a.X, kind)
	}
}

// checkGoroutineCapture flags pooled memory reaching a goroutine.
func (st *spState) checkGoroutineCapture(stmt *ast.GoStmt, live spLive) {
	ast.Inspect(stmt.Call, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Walk into literals too: captures are uses.
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := st.pass.Info.Uses[id].(*types.Var)
		if v == nil {
			return true
		}
		if tok, found := st.findByRoot(live, st.resolveRoot(v), ""); found {
			st.report(id.Pos(), "pooled %s %s is captured by a goroutine: pooled memory belongs to exactly one goroutine "+
				"(take a fresh scratch.Get inside the goroutine instead)", tok.kind, tok.what)
		}
		return true
	})
}

// simReturn checks escapes and outstanding tokens at a return.
func (st *spState) simReturn(ret *ast.ReturnStmt, live spLive) {
	bufFn := strings.HasSuffix(st.fname, "Buf")
	for _, res := range ret.Results {
		v := st.resolveRoot(objectOf(st.pass.Info, ast.Unparen(res)))
		if v == nil {
			continue
		}
		for {
			tok, ok := st.findByRoot(live, v, "")
			if !ok {
				break
			}
			if bufFn {
				// The *Buf suffix is the ownership-transfer convention:
				// the caller now owes the Put.
				delete(live, tok.id)
				continue
			}
			st.report(ret.Pos(), "pooled %s %s escapes via return: only *Buf-suffixed functions may transfer pooled "+
				"memory to their caller (release with %s before returning, or rename the function to *Buf)",
				tok.kind, tok.what, putNameFor[tok.kind])
			delete(live, tok.id)
		}
	}
	for _, tok := range live {
		st.reportLeak(tok, "return")
	}
}

// reportLeak reports an unreleased token once per acquisition site.
func (st *spState) reportLeak(tok spToken, where string) {
	st.report(tok.id, "pooled %s %s is not released on every path (%s reached with it live): call %s, or defer it",
		tok.kind, tok.what, where, putNameFor[tok.kind])
}

func (st *spState) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if st.reported[key] {
		return
	}
	st.reported[key] = true
	st.pass.Reportf(pos, "%s", msg)
}

func (st *spState) addToken(live spLive, tok spToken) { live[tok.id] = tok }

func (st *spState) resolveRoot(v *types.Var) *types.Var {
	if v == nil {
		return nil
	}
	if root, ok := st.aliases[v]; ok {
		return root
	}
	return v
}

// findByRoot finds any live token rooted at v (field "" matches any
// when the field argument is empty and no exact match exists).
func (st *spState) findByRoot(live spLive, v *types.Var, field string) (spToken, bool) {
	if v == nil {
		return spToken{}, false
	}
	for _, tok := range live {
		if tok.root == v && (field == "" || tok.field == field) {
			return tok, true
		}
	}
	return spToken{}, false
}

func (st *spState) findByRootKindField(live spLive, v *types.Var, field, kind string) (spToken, bool) {
	for _, tok := range live {
		if tok.root == v && tok.field == field && tok.kind == kind {
			return tok, true
		}
	}
	return spToken{}, false
}

// clearRoot releases every token rooted at v (a release() call frees
// all pooled fields of its receiver).
func (st *spState) clearRoot(live spLive, v *types.Var) {
	for id, tok := range live {
		if tok.root == v {
			delete(live, id)
		}
	}
}

func copyLive(live spLive) spLive {
	out := make(spLive, len(live))
	for k, v := range live {
		out[k] = v
	}
	return out
}

// unionLive keeps a token if it is live on either incoming path: a
// release must happen on every path to count.
func unionLive(a, b spLive) spLive {
	if a == nil {
		return b
	}
	out := copyLive(a)
	for k, v := range b {
		out[k] = v
	}
	return out
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
