package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochStamp enforces the cluster's recency-epoch invariant, the PR-8
// crash-safety bug class caught at build time: every upsert mutation the
// cluster plane constructs must reach a shard apply loop with
// Mutation.Epoch assigned. Recovery resolves duplicate entity copies —
// left on two shards by a crash mid cross-shard move — by
// higher-epoch-wins; an unstamped upsert (Epoch zero) loses that
// comparison to any stamped copy, so a stale pre-move copy could clobber
// an acknowledged post-move write after a crash.
//
// Within internal/cluster (non-test), the analyzer flags any upsert
// construction — engine.TaskUpsert(...), engine.WorkerUpsert(...), or an
// engine.Mutation literal whose Op is (or defaults to) an upsert — that
// is neither stamped in the constructing function (a later `.Epoch =`
// assignment, or Epoch set in the literal) nor handed to a *stamping*
// function of the package. A function stamps if it assigns `.Epoch` on a
// mutation itself or forwards mutations to another stamping function
// (computed as a fixpoint), so the exemption survives refactors of the
// chokepoint but disappears the moment nobody stamps — exactly the
// pre-fix PR-8 shape.
var EpochStamp = &Analyzer{
	Name: "epochstamp",
	Doc: "every engine.Mutation upsert constructed in internal/cluster must " +
		"have Epoch assigned before it reaches a shard apply loop",
	Run: runEpochStamp,
}

func runEpochStamp(pass *Pass) error {
	if pass.Pkg.Path() != "rdbsc/internal/cluster" && pass.Pkg.Name() != "cluster" {
		return nil
	}
	files := pass.NonTestFiles()
	decls := funcDecls(files)
	stampers := stampingFunctions(pass, decls)
	for _, fd := range decls {
		checkUpsertConstructions(pass, fd, stampers)
	}
	return nil
}

// stampingFunctions computes the package's stamping set: functions that
// assign .Epoch on an engine.Mutation, plus (transitively) functions
// that forward mutation-typed arguments to a stamping function.
func stampingFunctions(pass *Pass, decls []*ast.FuncDecl) map[*types.Func]bool {
	stampers := make(map[*types.Func]bool)
	objOf := func(fd *ast.FuncDecl) *types.Func {
		f, _ := pass.Info.Defs[fd.Name].(*types.Func)
		return f
	}
	// Seed: direct .Epoch writers.
	for _, fd := range decls {
		if fn := objOf(fd); fn != nil && assignsEpoch(pass, fd.Body) {
			stampers[fn] = true
		}
	}
	// Fixpoint: forwarding mutations to a stamper stamps.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			fn := objOf(fd)
			if fn == nil || stampers[fn] {
				continue
			}
			if forwardsMutationToStamper(pass, fd.Body, stampers) {
				stampers[fn] = true
				changed = true
			}
		}
	}
	return stampers
}

// assignsEpoch reports whether body assigns <mutation>.Epoch.
func assignsEpoch(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for _, lhs := range assign.Lhs {
			if isEpochSelector(pass, lhs) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isEpochSelector(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Epoch" {
		return false
	}
	return mutationType(pass.Info.Types[sel.X].Type)
}

// mutationType reports whether t is engine.Mutation, *engine.Mutation,
// or a slice of either.
func mutationType(t types.Type) bool {
	if t == nil {
		return false
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		t = sl.Elem()
	}
	return isNamed(t, enginePath, "Mutation")
}

// forwardsMutationToStamper reports whether body calls a known stamping
// function with a mutation-typed argument.
func forwardsMutationToStamper(pass *Pass, body *ast.BlockStmt, stampers map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		callee := funcOf(pass.Info, call)
		if callee == nil || !stampers[callee] {
			return true
		}
		for _, arg := range call.Args {
			if mutationType(pass.Info.Types[arg].Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkUpsertConstructions flags unstamped upsert constructions in fd.
func checkUpsertConstructions(pass *Pass, fd *ast.FuncDecl, stampers map[*types.Func]bool) {
	// Parent tracking: ast.Inspect with an explicit stack.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		e, ok := n.(ast.Expr)
		if !ok || !isUpsertConstruction(pass, e) {
			return true
		}
		if !upsertObligationMet(pass, fd, e, stack, stampers) {
			pass.Reportf(e.Pos(), "upsert mutation constructed without a recency epoch: assign .Epoch (or route "+
				"through the cluster's stamping entry point) before it reaches a shard — an unstamped upsert loses "+
				"recovery's higher-epoch-wins duplicate resolution (the PR-8 crash bug)")
		}
		return true
	})
}

// isUpsertConstruction matches engine.TaskUpsert / engine.WorkerUpsert
// calls and engine.Mutation literals whose Op is (or defaults to, Op's
// zero value being OpUpsertTask) an upsert.
func isUpsertConstruction(pass *Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		path, name := calleePkgFunc(pass.Info, x)
		return path == enginePath && (name == "TaskUpsert" || name == "WorkerUpsert")
	case *ast.CompositeLit:
		if !isNamed(pass.Info.Types[x].Type, enginePath, "Mutation") {
			return false
		}
		if epochKeyed(x, "Epoch") {
			return false // stamped in the literal itself
		}
		opSet, opIsUpsert := false, false
		payload := false
		for i, el := range x.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				// Positional literal: field 0 is Op.
				if i == 0 {
					opSet = true
					opIsUpsert = isUpsertOp(pass, el)
				}
				continue
			}
			key, _ := kv.Key.(*ast.Ident)
			if key == nil {
				continue
			}
			switch key.Name {
			case "Op":
				opSet = true
				opIsUpsert = isUpsertOp(pass, kv.Value)
			case "Task", "Worker":
				payload = true
			}
		}
		if opSet {
			return opIsUpsert
		}
		// No Op field: the zero Op is OpUpsertTask, so a literal carrying
		// an upsert payload is an (easy to miss) upsert construction.
		return payload
	}
	return false
}

func epochKeyed(lit *ast.CompositeLit, field string) bool {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
				return true
			}
		}
	}
	return false
}

func isUpsertOp(pass *Pass, e ast.Expr) bool {
	id := identOf(e)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != enginePath {
		return false
	}
	return obj.Name() == "OpUpsertTask" || obj.Name() == "OpUpsertWorker"
}

func identOf(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// upsertObligationMet resolves how the constructed upsert is used and
// whether that use satisfies the stamping obligation.
func upsertObligationMet(pass *Pass, fd *ast.FuncDecl, c ast.Expr, stack []ast.Node, stampers map[*types.Func]bool) bool {
	// Find the construction's immediate consumer in the parent chain.
	var parent ast.Node
	for i := len(stack) - 2; i >= 0; i-- {
		if _, isParen := stack[i+1].(*ast.ParenExpr); isParen {
			continue
		}
		parent = stack[i]
		break
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		// Direct argument: append(s, C) inherits the obligation on s;
		// a call to a stamper satisfies it; anything else does not.
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				if carrier := appendTarget(pass, stack, p); carrier != nil {
					return carrierDischarged(pass, fd, c.Pos(), carrier, stampers)
				}
				return false
			}
		}
		callee := funcOf(pass.Info, p)
		return callee != nil && stampers[callee]
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) == c && i < len(p.Lhs) {
				if v := objectOf(pass.Info, p.Lhs[i]); v != nil {
					return carrierDischarged(pass, fd, c.Pos(), v, stampers)
				}
			}
		}
		return false
	case *ast.KeyValueExpr, *ast.CompositeLit:
		// Element of a larger literal ([]engine.Mutation{...}): find the
		// literal's binding through the stack.
		for i := len(stack) - 2; i >= 0; i-- {
			if as, ok := stack[i].(*ast.AssignStmt); ok {
				for j, rhs := range as.Rhs {
					if containsNode(rhs, c) && j < len(as.Lhs) {
						if v := objectOf(pass.Info, as.Lhs[j]); v != nil {
							return carrierDischarged(pass, fd, c.Pos(), v, stampers)
						}
					}
				}
				return false
			}
			if call, ok := stack[i].(*ast.CallExpr); ok {
				callee := funcOf(pass.Info, call)
				return callee != nil && stampers[callee]
			}
		}
		return false
	}
	return false
}

// appendTarget resolves s in s = append(s, ...) through the stack.
func appendTarget(pass *Pass, stack []ast.Node, appendCall *ast.CallExpr) *types.Var {
	for i := len(stack) - 1; i >= 0; i-- {
		if as, ok := stack[i].(*ast.AssignStmt); ok {
			for j, rhs := range as.Rhs {
				if containsNode(rhs, appendCall) && j < len(as.Lhs) {
					return objectOf(pass.Info, as.Lhs[j])
				}
			}
		}
	}
	if len(appendCall.Args) > 0 {
		return objectOf(pass.Info, rootExpr(appendCall.Args[0]))
	}
	return nil
}

// carrierDischarged reports whether, after pos, the carrier variable is
// stamped (carrier.Epoch = ... / carrier[i].Epoch = ...) or handed to a
// stamping function.
func carrierDischarged(pass *Pass, fd *ast.FuncDecl, pos token.Pos, carrier *types.Var, stampers map[*types.Func]bool) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok || n == nil || n.Pos() < pos {
			return !ok
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Epoch" {
					if objectOf(pass.Info, rootExpr(sel)) == carrier {
						ok = true
					}
				}
			}
		case *ast.CallExpr:
			callee := funcOf(pass.Info, x)
			if callee == nil || !stampers[callee] {
				return true
			}
			for _, arg := range x.Args {
				if objectOf(pass.Info, rootExpr(arg)) == carrier {
					ok = true
				}
			}
		}
		return !ok
	})
	if ok {
		return true
	}
	// The carrier may itself be ranged over with the element handed to a
	// stamper: for _, m := range muts { c.Enqueue(m, reply) }.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, isRange := n.(*ast.RangeStmt)
		if ok || !isRange || rng.Pos() < pos {
			return !ok
		}
		if objectOf(pass.Info, rootExpr(rng.X)) != carrier || rng.Value == nil {
			return true
		}
		elem := objectOf(pass.Info, rng.Value)
		if elem == nil {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, isCall := m.(*ast.CallExpr)
			if ok || !isCall {
				return !ok
			}
			callee := funcOf(pass.Info, call)
			if callee == nil || !stampers[callee] {
				return true
			}
			for _, arg := range call.Args {
				if objectOf(pass.Info, rootExpr(arg)) == elem {
					ok = true
				}
			}
			return !ok
		})
		return !ok
	})
	return ok
}
