package analyze

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader loads the whole module (plus the std packages fixtures
// import) once for all tests: go list -export is the expensive step.
var (
	loadOnce   sync.Once
	sharedL    *Loader
	repoPkgs   []*Package
	sharedErr  error
	stdImports = []string{"fmt", "math/rand", "sort", "time", "context", "net", "net/http"}
)

func load(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	loadOnce.Do(func() {
		sharedL = &Loader{}
		patterns := append([]string{"rdbsc/..."}, stdImports...)
		repoPkgs, sharedErr = sharedL.Load(patterns...)
	})
	if sharedErr != nil {
		t.Fatalf("loading module: %v", sharedErr)
	}
	return sharedL, repoPkgs
}

// want is one expected diagnostic: a regexp anchored to a fixture line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantToken = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

// runFixture analyzes testdata/src/<name> with the single analyzer and
// checks its diagnostics against the fixture's // want comments.
func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	l, _ := load(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantToken.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range matches {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}

	diags, err := RunAnalyzers([]*Analyzer{a}, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(pos.Filename) && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, "determinism", Determinism) }
func TestScratchPairFixture(t *testing.T) { runFixture(t, "scratchpair", ScratchPair) }
func TestSnapshotROFixture(t *testing.T)  { runFixture(t, "snapshotro", SnapshotRO) }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, "ctxflow", CtxFlow) }
func TestEpochStampFixture(t *testing.T)  { runFixture(t, "epochstamp", EpochStamp) }

// TestRepoClean runs the full suite over every package in the module and
// requires zero findings: the repository must satisfy its own
// invariants. A failure here means either a real violation slipped in
// (fix the code) or the analyzer over-matches an established idiom
// (refine the analyzer — never suppress).
func TestRepoClean(t *testing.T) {
	_, pkgs := load(t)
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(All(), pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			total++
			t.Errorf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if total == 0 {
		t.Logf("suite clean over %d packages", len(pkgs))
	}
}

// TestAnalyzerMetadata keeps names and docs present — they surface in
// rdbsc-vet's usage output and diagnostics.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 5 {
		t.Errorf("expected 5 analyzers, got %d", len(seen))
	}
}

// TestDiagnosticSorting pins the position ordering RunAnalyzers promises.
func TestDiagnosticSorting(t *testing.T) {
	l, _ := load(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "determinism"), "fixture/determinism-sort")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(All(), pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := pkg.Fset.Position(diags[i-1].Pos), pkg.Fset.Position(diags[i].Pos)
		ka := fmt.Sprintf("%s:%08d:%08d", a.Filename, a.Line, a.Column)
		kb := fmt.Sprintf("%s:%08d:%08d", b.Filename, b.Line, b.Column)
		if ka > kb {
			t.Errorf("diagnostics out of order: %s before %s", ka, kb)
		}
	}
}
