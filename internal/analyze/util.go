package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// Cross-package type identity in this suite is always by (package path,
// type name) strings, never by types.Object pointer equality: a package
// analyzed from source and the same package imported from export data
// produce distinct objects for the same type.

// namedOf unwraps pointers and aliases and returns the (package path,
// name) of t's named type, or ("", "") for unnamed types.
func namedOf(t types.Type) (path, name string) {
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if alias, ok := t.(*types.Alias); ok {
		t = types.Unalias(alias)
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// isNamed reports whether t (or *t) is the named type path.name.
func isNamed(t types.Type, path, name string) bool {
	p, n := namedOf(t)
	return p == path && n == name
}

// funcOf resolves the called function or method object of call, or nil.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleePkgFunc returns the (package path, function name) of a called
// package-level function, or ("", "") for methods and non-functions.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (path, name string) {
	f := funcOf(info, call)
	if f == nil || f.Pkg() == nil {
		return "", ""
	}
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		return "", ""
	}
	return f.Pkg().Path(), f.Name()
}

// methodOn returns the receiver's named type info and method name when
// call is a method call, or ok=false.
func methodOn(info *types.Info, call *ast.CallExpr) (recvPath, recvName, method string, ok bool) {
	f := funcOf(info, call)
	if f == nil {
		return "", "", "", false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", "", false
	}
	p, n := namedOf(recv.Type())
	return p, n, f.Name(), true
}

// rootExpr strips selectors, indexing, slicing, dereferences, parens and
// type assertions and returns the base expression of a reference chain:
// rootExpr(s.Problem.In.Tasks[i].X) == s.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return e
		}
	}
}

// objectOf returns the variable an identifier denotes, or nil.
func objectOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// isDeprecated reports whether a declaration's doc comment carries a
// "Deprecated:" marker, the standard Go convention.
func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
		if strings.HasPrefix(strings.TrimSpace(text), "Deprecated:") {
			return true
		}
	}
	return false
}

// funcDecls yields every function declaration in the given files.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	return decls
}
